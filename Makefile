# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short test-race bench bench-json reproduce examples vet lint glvet fuzz-smoke chaos-smoke alloc-gates trace-smoke serve-smoke serve-chaos-smoke

all: build lint test test-race

build:
	go build ./...

vet:
	go vet ./...

# The repo's own analyzer suite (cmd/glvet): determinism, cycle-path purity,
# metric-name and fault-site hygiene. See DESIGN.md §8.
glvet:
	go run ./cmd/glvet ./...

# Static gate: vet, the glvet suite, and a gofmt cleanliness check over the
# whole tree.
lint: vet glvet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Alloc regression gates: the AllocsPerRun tests pinning zero steady-state
# allocation on the engine/noc/coherence/cpu cycle paths and the disabled
# span-emit path, plus the allocfree static check over //glvet:cyclepath
# functions. See DESIGN.md §10.
alloc-gates:
	go test -run ZeroAlloc -v ./internal/engine ./internal/noc ./internal/coherence ./internal/cpu ./internal/trace
	go run ./cmd/glvet -only allocfree ./...

# Timeline smoke: export a small traced run as Chrome trace-event JSON into
# artifacts/ and run the exporter/attribution validation tests. The artifact
# loads at ui.perfetto.dev; CI uploads artifacts/ when a test job fails.
trace-smoke:
	mkdir -p artifacts
	go run ./cmd/glsim -bench SYNTH -barrier GL -cores 16 -tier test -trace-out artifacts/synth_gl_16.trace.json
	go test -run 'TestWriteChrome|TestTraceAttribution' -v ./internal/trace .

# Job-server smoke: glsimd starts on a random loopback port, a test-tier
# job is submitted and polled to completion, then the identical spec is
# resubmitted and the check asserts a pure cache hit (no new simulation,
# cache.hits counted, byte-identical report). End to end in ~2 s; see
# DESIGN.md §12.
serve-smoke:
	go run ./cmd/glsimd -smoke

# Service chaos smoke: the host-fault campaign against in-process glsimd
# servers — seeded random plans checked by the accounting/monotonicity/
# identity/conservation oracles, the committed quarantine corpus, and the
# journal kill-and-restart recovery check — all under the race detector.
# Deterministic and well under a minute; see DESIGN.md §14.
serve-chaos-smoke:
	go test -race -count=1 ./internal/hostchaos/

# Ten-second fuzz smoke over the fault-plan parser: catches grammar
# regressions without a dedicated fuzzing job.
fuzz-smoke:
	go test -fuzz=FuzzParsePlan -fuzztime=10s -run '^$$' ./internal/fault

# Chaos smoke: replay the minimized-reproducer corpus (pinned oracle
# verdicts), then explore a small fixed-seed campaign under every protocol
# oracle. Deterministic and well under a minute; see DESIGN.md §9.
chaos-smoke:
	go test -short -run TestChaosCorpusReplay .
	go run ./cmd/reproduce -seed 7 -budget 24 -corpus testdata/chaos-corpus chaos
	go run ./cmd/reproduce -seed 7 -budget 24 chaos

test:
	go test ./...

test-short:
	go test -short ./...

# Race-detector gate over the fast tests; part of `all`.
test-race:
	go test -race -short ./...

bench:
	go test -bench=. -benchmem .

# Machine-readable benchmark snapshot: BENCH_<date>.json carries the git
# SHA and UTC timestamp the numbers were taken at plus one entry per
# benchmark result, for diffing runs over time. The bench run lands in a
# temp file first so a failing `go test -bench` propagates its exit code
# instead of leaving a truncated JSON behind. Values are located by their
# unit token (ns/op, B/op, allocs/op) rather than by column, so benchmarks
# with extra b.ReportMetric columns parse correctly. When an older
# BENCH_*.json exists, cmd/benchdelta prints the per-benchmark delta
# against the most recent one (it reads legacy bare-array snapshots too).
# Set BENCH_FAIL_ABOVE=<pct> to turn the delta into a gate: the target
# fails when any benchmark's ns/op regressed by more than that percentage.
bench-json:
	@tmp=$$(mktemp); \
	if ! go test -bench=. -benchmem -run '^$$' ./... >"$$tmp" 2>&1; then \
		cat "$$tmp"; rm -f "$$tmp"; \
		echo "bench-json: benchmark run failed; no JSON written" >&2; exit 1; \
	fi; \
	cat "$$tmp"; \
	prev=$$(ls BENCH_*.json 2>/dev/null | grep -v "BENCH_$$(date +%Y%m%d).json" | sort | tail -1); \
	sha=$$(git rev-parse HEAD 2>/dev/null || echo unknown); \
	ts=$$(date -u +%Y-%m-%dT%H:%M:%SZ); \
	awk -v sha="$$sha" -v ts="$$ts" \
		'BEGIN{printf("{\n\"git_sha\": \"%s\",\n\"generated_at\": \"%s\",\n\"results\": [\n", sha, ts)} \
		/^Benchmark/{ ns="0"; bytes="0"; allocs="0"; \
		for (i = 3; i <= NF; i++) { \
			if ($$i == "ns/op") ns = $$(i-1); \
			else if ($$i == "B/op") bytes = $$(i-1); \
			else if ($$i == "allocs/op") allocs = $$(i-1); \
		} \
		if (n++) printf(",\n"); \
		printf("  {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", $$1, $$2, ns, bytes, allocs) } \
		END{print "\n]\n}"}' "$$tmp" > BENCH_$$(date +%Y%m%d).json; \
	rm -f "$$tmp"; \
	echo "wrote BENCH_$$(date +%Y%m%d).json"; \
	if [ -n "$$prev" ]; then \
		go run ./cmd/benchdelta $${BENCH_FAIL_ABOVE:+-fail-above $$BENCH_FAIL_ABOVE} "$$prev" BENCH_$$(date +%Y%m%d).json; \
	else echo "bench-json: no previous BENCH_*.json baseline; nothing to compare yet"; fi

# Regenerate every paper table/figure at the repro tier (paper data sizes).
reproduce:
	go run ./cmd/reproduce -tier repro all

examples:
	go run ./examples/quickstart
	go run ./examples/stencil
	go run ./examples/multibarrier
	go run ./examples/hierarchical
