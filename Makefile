# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short test-race bench reproduce examples vet

all: build vet test test-race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

# Race-detector gate over the fast tests; part of `all`.
test-race:
	go test -race -short ./...

bench:
	go test -bench=. -benchmem .

# Regenerate every paper table/figure at the repro tier (paper data sizes).
reproduce:
	go run ./cmd/reproduce -tier repro all

examples:
	go run ./examples/quickstart
	go run ./examples/stencil
	go run ./examples/multibarrier
	go run ./examples/hierarchical
