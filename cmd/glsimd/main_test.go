package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestKillRecovery is the honest crash test: a real glsimd process with a
// journal is SIGKILLed mid-job, and a restarted process over the same
// journal and cache must replay the job to completion with every cell's
// bytes identical to an undisturbed run. Skipped in -short mode (it
// builds and launches real processes).
func TestKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real glsimd processes")
	}
	bin := buildGlsimd(t)
	// Sixteen cells on one worker: enough runway that SIGKILL lands while
	// the job is mid-flight. If the job still outruns the kill, retry the
	// whole scenario with a fresh state directory.
	const spec = "bench=SYNTH barrier=GL cores=16 seed=0|1|2|3|4|5|6|7|8|9|10|11|12|13|14|15 tier=test"

	var recovered *proc
	for attempt := 1; ; attempt++ {
		dir := t.TempDir()
		args := []string{
			"-addr", "127.0.0.1:0",
			"-journal", filepath.Join(dir, "journal.wal"),
			"-cache-dir", filepath.Join(dir, "cache"),
			"-jobs", "1", "-cell-workers", "1",
		}
		victim := startGlsimd(t, bin, args)
		st := submitJob(t, victim.addr, spec)
		if st.State == "done" || st.State == "failed" {
			t.Fatalf("job terminal (%s) in the submit response", st.State)
		}
		victim.kill(t) // SIGKILL: no drain, no journal close, torn tail allowed
		if terminalAlready(t, victim) {
			if attempt >= 3 {
				t.Fatal("job finished before SIGKILL on 3 attempts; cannot stage a mid-flight crash")
			}
			t.Logf("attempt %d: job outran the kill; retrying", attempt)
			continue
		}
		recovered = startGlsimd(t, bin, args)
		if n := recovered.replayed(t); n != 1 {
			t.Fatalf("restart replayed %d job(s), want 1", n)
		}
		break
	}
	defer recovered.terminate(t)
	if state := waitTerminal(t, recovered.addr, "j1"); state != "done" {
		t.Fatalf("recovered job ended %q, want done", state)
	}

	// An undisturbed run of the same spec is the byte-identity reference.
	cleanDir := t.TempDir()
	clean := startGlsimd(t, bin, []string{
		"-addr", "127.0.0.1:0",
		"-journal", filepath.Join(cleanDir, "journal.wal"),
		"-cache-dir", filepath.Join(cleanDir, "cache"),
		"-jobs", "1", "-cell-workers", "1",
	})
	defer clean.terminate(t)
	if st := submitJob(t, clean.addr, spec); st.ID != "j1" {
		t.Fatalf("clean run job id %q, want j1", st.ID)
	}
	if state := waitTerminal(t, clean.addr, "j1"); state != "done" {
		t.Fatalf("clean job ended %q, want done", state)
	}

	fps := resultFingerprints(t, recovered.addr, "j1")
	if len(fps) != 16 {
		t.Fatalf("recovered job has %d cells, want 16", len(fps))
	}
	for _, fp := range fps {
		got := fetchCell(t, recovered.addr, fp)
		want := fetchCell(t, clean.addr, fp)
		if !bytes.Equal(got, want) {
			t.Fatalf("cell %s: recovered bytes differ from the undisturbed run (%d vs %d bytes)", fp, len(got), len(want))
		}
	}
}

func buildGlsimd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "glsimd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// proc is one running glsimd process with its stderr captured line by line.
type proc struct {
	cmd  *exec.Cmd
	addr string

	mu    sync.Mutex
	lines []string
	done  chan struct{}
}

// startGlsimd launches the binary and waits for its "listening on" line.
func startGlsimd(t *testing.T, bin string, args []string) *proc {
	t.Helper()
	p := &proc{cmd: exec.Command(bin, args...), done: make(chan struct{})}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	listening := make(chan string, 1)
	go func() {
		defer close(p.done)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.lines = append(p.lines, line)
			p.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "glsimd: listening on "); ok {
				select {
				case listening <- rest:
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-listening:
	case <-p.done:
		p.cmd.Wait()
		t.Fatalf("glsimd exited before listening; stderr:\n%s", strings.Join(p.stderr(), "\n"))
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatal("glsimd did not start listening within 30s")
	}
	return p
}

func (p *proc) stderr() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.lines...)
}

// replayed extracts the replay count from the journal-attach log line.
func (p *proc) replayed(t *testing.T) int {
	t.Helper()
	for _, line := range p.stderr() {
		if i := strings.Index(line, "attached, "); i >= 0 {
			var n int
			if _, err := fmt.Sscanf(line[i:], "attached, %d job(s) replayed", &n); err == nil {
				return n
			}
		}
	}
	t.Fatalf("no journal-attach line in stderr:\n%s", strings.Join(p.stderr(), "\n"))
	return 0
}

// kill delivers SIGKILL — the crash under test — and reaps the process.
func (p *proc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
	<-p.done
}

// terminate shuts a healthy server down via SIGTERM (the drain path).
func (p *proc) terminate(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	werr := make(chan error, 1)
	go func() { werr <- p.cmd.Wait() }()
	select {
	case <-werr:
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("glsimd did not drain within 30s; stderr:\n%s", strings.Join(p.stderr(), "\n"))
	}
	<-p.done
}

// terminalAlready reports whether the victim's job reached a terminal
// state before the kill, by scanning the journal it left behind for a
// terminal record (the journal is the only trustworthy witness — the
// process is gone).
func terminalAlready(t *testing.T, victim *proc) bool {
	t.Helper()
	var journal string
	for i, a := range victim.cmd.Args {
		if a == "-journal" {
			journal = victim.cmd.Args[i+1]
		}
	}
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("reading the victim's journal: %v", err)
	}
	return strings.Contains(string(raw), `"done"`) || strings.Contains(string(raw), `"failed"`)
}

type jobStatusDoc struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

func submitJob(t *testing.T, addr, spec string) jobStatusDoc {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"spec": spec})
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	return st
}

func waitTerminal(t *testing.T, addr, id string) string {
	t.Helper()
	for i := 0; i < 1200; i++ {
		resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatusDoc
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st.State
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal after 60s", id)
	return ""
}

// resultFingerprints lists a terminal job's cell fingerprints.
func resultFingerprints(t *testing.T, addr, id string) []string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", resp.StatusCode)
	}
	var doc struct {
		Cells []struct {
			InputFP string `json:"input_fingerprint"`
			Error   string `json:"error"`
		} `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	var fps []string
	for _, c := range doc.Cells {
		if c.Error != "" {
			t.Fatalf("cell %s failed: %s", c.InputFP, c.Error)
		}
		fps = append(fps, c.InputFP)
	}
	return fps
}

// fetchCell reads one cached report's verbatim bytes.
func fetchCell(t *testing.T, addr, fp string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/cells/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cell %s: HTTP %d: %s", fp, resp.StatusCode, raw)
	}
	return raw
}
