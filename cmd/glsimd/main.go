// Command glsimd is the simulation job server: a long-running HTTP/JSON
// service that accepts sweep-grid job specs, executes them on a bounded
// worker pool, and serves results out of a content-addressed cache keyed
// by input fingerprints — resubmitting a spec that has already been
// simulated costs no simulation at all, and concurrent identical
// submissions collapse onto one run.
//
//	glsimd -addr :8100 -cache-dir /var/tmp/glsimd -journal /var/tmp/glsimd/journal.wal
//
// Submit and poll with any HTTP client:
//
//	curl -s -X POST localhost:8100/v1/jobs \
//	     -d '{"spec": "bench=SYNTH|KERN2 barrier=GL|CSW cores=16|32 tier=test"}'
//	curl -s localhost:8100/v1/jobs/j1
//	curl -s localhost:8100/v1/jobs/j1/result
//	curl -s localhost:8100/v1/stats
//
// The server self-heals: executor panics and transient host faults retry
// with exponential backoff (bounded per cell and per job), cells that
// exhaust their attempts land in a quarantine visible at /v1/quarantine,
// and -journal enables a crash-safe write-ahead log — a killed process
// restarted with the same journal replays every job that never reached a
// terminal state, and content-addressed results make the replay
// byte-identical.
//
// On SIGINT/SIGTERM the server drains: new submissions bounce with 503,
// queued and running jobs finish (bounded by -drain-timeout), then the
// process exits.
//
// -smoke runs the self-contained end-to-end smoke check (start a server,
// submit, resubmit, assert the second pass is a pure cache hit) and
// exits; CI uses it as the serve gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/hostfault"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8100", "listen address")
	cacheDir := flag.String("cache-dir", "", "disk spill directory for the result cache (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 1024, "in-memory result cache capacity")
	jobs := flag.Int("jobs", 2, "jobs simulating concurrently")
	cellWorkers := flag.Int("cell-workers", 0, "worker goroutines per job (0 = all CPUs)")
	queueDepth := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-clock bound (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "max time to finish jobs on shutdown")
	journal := flag.String("journal", "", "write-ahead log path; restart with the same path to replay unfinished jobs")
	cellAttempts := flag.Int("cell-attempts", 0, "runs of one cell before quarantine (0 = default)")
	retryBudget := flag.Int("retry-budget", 0, "total retries allowed across one job's cells (0 = default)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request handling bound for non-streaming routes (0 = unbounded)")
	faults := flag.String("faults", "", "host-fault plan for chaos drills, e.g. 'seed=7,exec.panic=0.05,spill.readfail#2'")
	smoke := flag.Bool("smoke", false, "run the end-to-end smoke check and exit")
	flag.Parse()

	if *smoke {
		if err := serve.Smoke(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	plan, err := hostfault.ParsePlan(*faults)
	if err != nil {
		fatal(err)
	}
	if plan != nil {
		fmt.Fprintf(os.Stderr, "glsimd: host-fault injection active: %s\n", plan)
	}

	srv := serve.NewServer(serve.Options{
		ConcurrentJobs: *jobs,
		CellWorkers:    *cellWorkers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheEntries,
		CacheDir:       *cacheDir,
		CellTimeout:    *cellTimeout,
		CellAttempts:   *cellAttempts,
		JobRetryBudget: *retryBudget,
		RequestTimeout: *requestTimeout,
		HostFaults:     plan,
	})
	if *journal != "" {
		replayed, err := srv.AttachJournal(*journal)
		if err != nil {
			fatal(fmt.Errorf("journal: %w", err))
		}
		fmt.Fprintf(os.Stderr, "glsimd: journal %s attached, %d job(s) replayed\n", *journal, replayed)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// Slow-loris resistance: a client must finish its headers promptly
		// and keep-alive connections are reaped when idle. Body reads stay
		// unbounded — job submissions are small, results can be large.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "glsimd: listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "glsimd: %v — draining (up to %v)\n", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	derr := srv.Drain(ctx)
	hs.Shutdown(context.Background())
	if derr != nil {
		fatal(fmt.Errorf("drain: %w", derr))
	}
	fmt.Fprintln(os.Stderr, "glsimd: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "glsimd:", err)
	os.Exit(1)
}
