// Command benchdelta compares two BENCH_<date>.json snapshots produced by
// `make bench-json` and prints a per-benchmark delta table: time and
// allocations per op, old → new, with the relative change. It is the
// regression-reading companion to the alloc gates: the gates pin the
// steady-state floor at zero, benchdelta shows the trend of everything
// else.
//
// Usage:
//
//	benchdelta OLD.json NEW.json
//
// Exit status: 0 on success (any deltas, including regressions — judging
// them is the reader's job), 2 on usage or parse errors. Benchmarks present
// in only one file are listed as added/removed.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// result mirrors one entry of a BENCH_<date>.json array.
type result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, out *os.File) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: benchdelta OLD.json NEW.json")
	}
	oldRes, err := load(args[0])
	if err != nil {
		return err
	}
	newRes, err := load(args[1])
	if err != nil {
		return err
	}
	oldBy := map[string]result{}
	for _, r := range oldRes {
		oldBy[r.Name] = r
	}
	fmt.Fprintf(out, "benchdelta %s -> %s\n", args[0], args[1])
	fmt.Fprintf(out, "%-40s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δtime", "old allocs", "new allocs", "Δallocs")
	seen := map[string]bool{}
	for _, n := range newRes {
		seen[n.Name] = true
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Fprintf(out, "%-40s %14s %14.0f %8s %12s %12.0f %8s\n",
				n.Name, "-", n.NsPerOp, "added", "-", n.AllocsPerOp, "added")
			continue
		}
		fmt.Fprintf(out, "%-40s %14.0f %14.0f %8s %12.0f %12.0f %8s\n",
			n.Name, o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp, pct(o.AllocsPerOp, n.AllocsPerOp))
	}
	for _, o := range oldRes {
		if !seen[o.Name] {
			fmt.Fprintf(out, "%-40s %14.0f %14s %8s\n", o.Name, o.NsPerOp, "-", "removed")
		}
	}
	return nil
}

func load(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// pct renders the relative change from old to new as a signed percentage,
// or "-" when the baseline is zero (no meaningful ratio).
func pct(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0%"
		}
		return "-"
	}
	p := 100 * (new - old) / old
	if math.Abs(p) < 0.05 {
		return "0%"
	}
	return fmt.Sprintf("%+.1f%%", p)
}
