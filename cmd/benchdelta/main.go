// Command benchdelta compares two BENCH_<date>.json snapshots produced by
// `make bench-json` and prints a per-benchmark delta table: time and
// allocations per op, old → new, with the relative change. It is the
// regression-reading companion to the alloc gates: the gates pin the
// steady-state floor at zero, benchdelta shows the trend of everything
// else.
//
// Usage:
//
//	benchdelta [-fail-above <pct>] OLD.json NEW.json
//
// Snapshots are either the current object form ({git_sha, generated_at,
// results}) or the legacy bare array of results; both load. A missing OLD
// baseline is not an error — the first snapshot of a repo has nothing to
// diff against — so benchdelta says so and exits 0.
//
// With `-fail-above <pct>`, any benchmark whose time per op regressed by
// more than pct percent fails the run — the CI gate mode. Without it, any
// deltas (including regressions — judging them is the reader's job) exit 0.
//
// Exit status: 0 on success, 1 when -fail-above tripped, 2 on usage or
// parse errors. Benchmarks present in only one file are listed as
// added/removed; they never trip the gate (no pair to compare).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"strings"
)

// result mirrors one benchmark entry of a BENCH_<date>.json snapshot.
type result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// snapshot is one BENCH_<date>.json document: provenance (which commit and
// when the numbers were taken) plus the results. Legacy snapshots were a
// bare result array with no provenance; load normalizes both shapes here.
type snapshot struct {
	GitSHA      string   `json:"git_sha"`
	GeneratedAt string   `json:"generated_at"`
	Results     []result `json:"results"`
}

// errRegression marks a -fail-above trip: exit 1, distinct from usage and
// parse errors (exit 2).
var errRegression = errors.New("time regression above threshold")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %v\n", err)
		if errors.Is(err, errRegression) {
			os.Exit(1)
		}
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs2 := flag.NewFlagSet("benchdelta", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	failAbove := fs2.Float64("fail-above", -1,
		"fail (exit 1) when any benchmark's ns/op regressed by more than this percentage; negative disables")
	if err := fs2.Parse(args); err != nil {
		return fmt.Errorf("usage: benchdelta [-fail-above <pct>] OLD.json NEW.json")
	}
	paths := fs2.Args()
	if len(paths) != 2 {
		return fmt.Errorf("usage: benchdelta [-fail-above <pct>] OLD.json NEW.json")
	}
	oldSnap, err := load(paths[0])
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// First snapshot: nothing to diff against is normal, not a
			// failure.
			fmt.Fprintf(out, "benchdelta: no baseline %s; nothing to compare yet\n", paths[0])
			return nil
		}
		return err
	}
	newSnap, err := load(paths[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchdelta %s -> %s\n", describe(paths[0], oldSnap), describe(paths[1], newSnap))
	fmt.Fprintf(out, "%-40s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δtime", "old allocs", "new allocs", "Δallocs")
	oldBy := map[string]result{}
	for _, r := range oldSnap.Results {
		oldBy[r.Name] = r
	}
	seen := map[string]bool{}
	var regressed []string
	worst, worstPct := "", 0.0
	for _, n := range newSnap.Results {
		seen[n.Name] = true
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Fprintf(out, "%-40s %14s %14.0f %8s %12s %12.0f %8s\n",
				n.Name, "-", n.NsPerOp, "added", "-", n.AllocsPerOp, "added")
			continue
		}
		fmt.Fprintf(out, "%-40s %14.0f %14.0f %8s %12.0f %12.0f %8s\n",
			n.Name, o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp, pct(o.AllocsPerOp, n.AllocsPerOp))
		if *failAbove >= 0 && o.NsPerOp > 0 {
			if p := 100 * (n.NsPerOp - o.NsPerOp) / o.NsPerOp; p > *failAbove {
				regressed = append(regressed, n.Name)
				if p > worstPct || worst == "" {
					worst, worstPct = n.Name, p
				}
			}
		}
	}
	for _, o := range oldSnap.Results {
		if !seen[o.Name] {
			fmt.Fprintf(out, "%-40s %14.0f %14s %8s\n", o.Name, o.NsPerOp, "-", "removed")
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%w: %d benchmark(s) slower by more than %.1f%% (worst: %s %+.1f%%)",
			errRegression, len(regressed), *failAbove, worst, worstPct)
	}
	return nil
}

// describe renders one side of the comparison header: the path plus the
// snapshot's provenance when it carries any.
func describe(path string, s snapshot) string {
	var tags []string
	if s.GitSHA != "" && s.GitSHA != "unknown" {
		sha := s.GitSHA
		if len(sha) > 12 {
			sha = sha[:12]
		}
		tags = append(tags, sha)
	}
	if s.GeneratedAt != "" {
		tags = append(tags, s.GeneratedAt)
	}
	if len(tags) == 0 {
		return path
	}
	return fmt.Sprintf("%s (%s)", path, strings.Join(tags, ", "))
}

// load reads one snapshot, accepting both the object form and the legacy
// bare-array form (sniffed from the first non-space byte).
func load(path string) (snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, "[") {
		var rs []result
		if err := json.Unmarshal(data, &rs); err != nil {
			return snapshot{}, fmt.Errorf("%s: %w", path, err)
		}
		return snapshot{Results: rs}, nil
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// pct renders the relative change from old to new as a signed percentage,
// or "-" when the baseline is zero (no meaningful ratio).
func pct(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0%"
		}
		return "-"
	}
	p := 100 * (new - old) / old
	if math.Abs(p) < 0.05 {
		return "0%"
	}
	return fmt.Sprintf("%+.1f%%", p)
}
