package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const newSnapshot = `{
  "git_sha": "0123456789abcdef0123456789abcdef01234567",
  "generated_at": "2026-08-08T12:00:00Z",
  "results": [
    {"name":"BenchmarkRun-8","iters":100,"ns_per_op":900,"bytes_per_op":0,"allocs_per_op":0},
    {"name":"BenchmarkNew-8","iters":100,"ns_per_op":50,"bytes_per_op":0,"allocs_per_op":1}
  ]
}`

const legacySnapshot = `[
  {"name":"BenchmarkRun-8","iters":100,"ns_per_op":1000,"bytes_per_op":0,"allocs_per_op":0},
  {"name":"BenchmarkOld-8","iters":100,"ns_per_op":10,"bytes_per_op":0,"allocs_per_op":0}
]`

// TestMissingBaselineIsNotAnError pins the first-snapshot path: no OLD file
// means nothing to compare, a friendly message and success.
func TestMissingBaselineIsNotAnError(t *testing.T) {
	dir := t.TempDir()
	newPath := write(t, dir, "new.json", newSnapshot)
	var out strings.Builder
	err := run([]string{filepath.Join(dir, "does-not-exist.json"), newPath}, &out)
	if err != nil {
		t.Fatalf("missing baseline returned error: %v", err)
	}
	if !strings.Contains(out.String(), "no baseline") {
		t.Errorf("output does not explain the missing baseline:\n%s", out.String())
	}
}

// TestLegacyArrayAndProvenanceHeader diffs a legacy bare-array snapshot
// against the current object form and checks the delta table plus the
// provenance rendered in the header.
func TestLegacyArrayAndProvenanceHeader(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "old.json", legacySnapshot)
	newPath := write(t, dir, "new.json", newSnapshot)
	var out strings.Builder
	if err := run([]string{oldPath, newPath}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"0123456789ab",         // truncated git SHA of the new snapshot
		"2026-08-08T12:00:00Z", // its timestamp
		"-10.0%",               // 1000 -> 900 ns/op
		"added",                // BenchmarkNew only in new
		"removed",              // BenchmarkOld only in old
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestFailAbove pins the CI gate mode: a regression past the threshold
// returns errRegression (exit 1 in main), one within it passes, and
// added/removed benchmarks never trip the gate.
func TestFailAbove(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "old.json", legacySnapshot)
	// BenchmarkRun: 1000 -> 1200 ns/op = +20%.
	newPath := write(t, dir, "new.json", `{
  "results": [
    {"name":"BenchmarkRun-8","iters":100,"ns_per_op":1200,"bytes_per_op":0,"allocs_per_op":0},
    {"name":"BenchmarkNew-8","iters":100,"ns_per_op":50,"bytes_per_op":0,"allocs_per_op":1}
  ]
}`)
	var out strings.Builder
	err := run([]string{"-fail-above", "10", oldPath, newPath}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("+20%% over a 10%% threshold returned %v, want errRegression", err)
	}
	for _, want := range []string{"BenchmarkRun-8", "+20.0%"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error does not name %q: %v", want, err)
		}
	}
	// The full delta table still prints before the verdict.
	if !strings.Contains(out.String(), "added") {
		t.Errorf("gate mode suppressed the delta table:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-fail-above", "25", oldPath, newPath}, &out); err != nil {
		t.Errorf("+20%% over a 25%% threshold failed: %v", err)
	}
	out.Reset()
	if err := run([]string{oldPath, newPath}, &out); err != nil {
		t.Errorf("no threshold still failed: %v", err)
	}
}

func TestUsageAndParseErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"one.json"}, &out); err == nil {
		t.Error("one argument accepted")
	}
	dir := t.TempDir()
	bad := write(t, dir, "bad.json", "{not json")
	good := write(t, dir, "good.json", newSnapshot)
	if err := run([]string{bad, good}, &out); err == nil {
		t.Error("unparsable OLD accepted")
	}
	if err := run([]string{good, bad}, &out); err == nil {
		t.Error("unparsable NEW accepted")
	}
}
