// Command glsim runs one benchmark on the simulated CMP and prints the full
// statistics report:
//
//	glsim -bench SYNTH -barrier GL -cores 32 -tier scaled
//
// Benchmarks: SYNTH, KERN2, KERN3, KERN6, UNSTR, OCEAN, EM3D.
// Barriers:   GL (the paper's G-line hardware barrier), DSW (combining
// tree), CSW (centralized lock-based).
package main

import (
	"flag"
	"fmt"
	"os"

	repro "repro"
	"repro/internal/barrier"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	benchName := flag.String("bench", "SYNTH", "benchmark name")
	barrierName := flag.String("barrier", "GL", "barrier implementation: GL, DSW or CSW")
	cores := flag.Int("cores", 32, "number of cores")
	threads := flag.Int("threads", 0, "threads (default: all cores)")
	tierName := flag.String("tier", "scaled", "input scale: scaled, repro or paper")
	maxCycles := flag.Uint64("max-cycles", 4_000_000_000, "simulation cycle budget")
	traceN := flag.Int("trace", 0, "dump the last N coherence-protocol events after the run")
	heatmap := flag.Bool("heatmap", false, "print the per-tile link-utilization heatmap")
	flag.Parse()

	kind, err := barrier.ParseKind(*barrierName)
	if err != nil {
		fatal(err)
	}
	tier, err := workload.ParseTier(*tierName)
	if err != nil {
		fatal(err)
	}
	bench, err := workload.ByName(*benchName, tier)
	if err != nil {
		fatal(err)
	}
	if *threads == 0 {
		*threads = *cores
	}
	cfg := repro.DefaultConfig(*cores)
	if bench.Name() == "PIPE" {
		cfg.GLContexts = 2 // the pipeline runs two concurrent barrier groups
	}
	sys, err := repro.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	var ring *trace.Ring
	if *traceN > 0 {
		ring = trace.NewRing(*traceN)
		sys.Prot.SetTracer(ring)
	}
	rep, err := workload.Run(sys, bench, kind, *threads, *maxCycles)
	if ring != nil {
		fmt.Fprintf(os.Stderr, "--- last %d protocol events ---\n", ring.Len())
		if derr := ring.Dump(os.Stderr); derr != nil {
			fatal(derr)
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s / %s / %d cores (%s tier)\n\n", bench.Name(), kind, *cores, tier)
	fmt.Print(rep)
	if *heatmap {
		fmt.Println("\nlink-utilization heatmap:")
		fmt.Print(sys.Prot.Mesh().Heatmap())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "glsim:", err)
	os.Exit(1)
}
