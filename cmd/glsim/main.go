// Command glsim runs one benchmark on the simulated CMP and prints the full
// statistics report:
//
//	glsim -bench SYNTH -barrier GL -cores 32 -tier scaled
//
// Benchmarks: SYNTH, KERN2, KERN3, KERN6, UNSTR, OCEAN, EM3D.
// Barriers:   GL (the paper's G-line hardware barrier), DSW (combining
// tree), CSW (centralized lock-based).
//
// With -replicas N the same run executes N times on fresh systems across
// -jobs worker goroutines and glsim verifies all determinism fingerprints
// agree — the quick way to prove a configuration simulates reproducibly.
//
// -faults installs a deterministic fault-injection plan (and, unless the
// plan says recovery.off, the recovering barrier guard):
//
//	glsim -bench SYNTH -barrier GL -faults 'seed=7,gl.drop=1e-4,noc.corrupt=1e-4'
//
// The plan grammar is documented in internal/fault (ParsePlan).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	repro "repro"
	"repro/internal/barrier"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	benchName := flag.String("bench", "SYNTH", "benchmark name")
	barrierName := flag.String("barrier", "GL", "barrier implementation: GL, DSW or CSW")
	cores := flag.Int("cores", 32, "number of cores")
	threads := flag.Int("threads", 0, "threads (default: all cores)")
	tierName := flag.String("tier", "scaled", "input scale: test, scaled, repro or paper")
	maxCycles := flag.Uint64("max-cycles", 4_000_000_000, "simulation cycle budget")
	traceN := flag.Int("trace", 0, "dump the last N coherence-protocol events after the run")
	heatmap := flag.Bool("heatmap", false, "print the per-tile link-utilization heatmap")
	jsonPath := flag.String("json", "", "write the full report as JSON to this file ('-' for stdout)")
	traceOut := flag.String("trace-out", "", "write the span timeline as Chrome trace-event JSON to this file (load at ui.perfetto.dev)")
	replicas := flag.Int("replicas", 1, "run N identical fresh-system replicas and verify fingerprints agree")
	jobs := flag.Int("jobs", 0, "parallel replica runs (0 = all CPUs)")
	faultsSpec := flag.String("faults", "", "fault-injection plan, e.g. 'seed=7,gl.drop=1e-4,@100-200:noc.linkdown:3' (see internal/fault)")
	flag.Parse()

	kind, err := barrier.ParseKind(*barrierName)
	if err != nil {
		fatal(err)
	}
	tier, err := workload.ParseTier(*tierName)
	if err != nil {
		fatal(err)
	}
	bench, err := workload.ByName(*benchName, tier)
	if err != nil {
		fatal(err)
	}
	if *threads == 0 {
		*threads = *cores
	}
	cfg := repro.DefaultConfig(*cores)
	if bench.Name() == "PIPE" {
		cfg.GLContexts = 2 // the pipeline runs two concurrent barrier groups
	}
	plan, err := fault.ParsePlan(*faultsSpec)
	if err != nil {
		fatal(err)
	}
	cfg.Faults = plan
	if *replicas > 1 {
		verifyReplicas(cfg, tier, *benchName, kind, *threads, *maxCycles, *replicas, *jobs)
		return
	}
	sys, err := repro.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	// A trace ring is always attached so the hang watchdog has protocol
	// history to dump; tracing is lazy, so an unread ring costs almost
	// nothing. -trace N sizes it explicitly and prints it after the run.
	ringCap := *traceN
	if ringCap < 256 {
		ringCap = 256
	}
	ring := sys.AttachRing(ringCap)
	var tl *trace.Timeline
	if *traceOut != "" {
		tl = sys.AttachTimeline(1 << 20)
	}
	rep, err := workload.Run(sys, bench, kind, *threads, *maxCycles)
	if tl != nil {
		// Write the timeline even when the run failed: a hang's trace is
		// exactly when you want to open Perfetto.
		if terr := writeTrace(*traceOut, tl, bench.Name(), string(kind), *cores); terr != nil {
			fatal(terr)
		}
	}
	if *traceN > 0 {
		fmt.Fprintf(os.Stderr, "--- last %d protocol events ---\n", ring.Len())
		if derr := ring.Dump(os.Stderr); derr != nil {
			fatal(derr)
		}
	}
	if rep != nil && *jsonPath != "" {
		if jerr := writeJSON(*jsonPath, rep); jerr != nil {
			fatal(jerr)
		}
	}
	if err != nil {
		if rep != nil && rep.Hang != nil {
			fmt.Fprint(os.Stderr, rep.Hang)
		}
		fatal(err)
	}
	fmt.Printf("%s / %s / %d cores (%s tier)\n\n", bench.Name(), kind, *cores, tier)
	fmt.Print(rep)
	if *heatmap {
		fmt.Println("\nlink-utilization heatmap:")
		fmt.Print(sys.Prot.Mesh().Heatmap())
	}
}

// writeJSON renders the report to path, or stdout when path is "-".
func writeJSON(path string, rep *sim.Report) error {
	raw, err := rep.JSON()
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// writeTrace exports the span timeline as Chrome trace-event JSON, stamped
// with enough run metadata to identify the artifact later.
func writeTrace(path string, tl *trace.Timeline, bench, kind string, cores int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tl.WriteChrome(f, map[string]string{
		"bench":   bench,
		"barrier": kind,
		"cores":   fmt.Sprint(cores),
	})
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// verifyReplicas runs the benchmark n times on fresh systems through the
// sweep pool and checks every run's determinism fingerprint matches.
func verifyReplicas(cfg repro.Config, tier workload.Tier, benchName string, kind barrier.Kind, threads int, maxCycles uint64, n, jobs int) {
	specs := make([]sweep.Spec, n)
	for i := range specs {
		i := i
		specs[i] = sweep.Spec{
			Label: fmt.Sprintf("replica%d", i),
			Run: func() (*sim.Report, error) {
				// A fresh benchmark instance per replica: replicas must
				// share nothing, or the check proves too little.
				bench, err := workload.ByName(benchName, tier)
				if err != nil {
					return nil, err
				}
				sys, err := repro.NewSystem(cfg)
				if err != nil {
					return nil, err
				}
				return workload.Run(sys, bench, kind, threads, maxCycles)
			},
		}
	}
	results := sweep.Run(sweep.Options{Jobs: jobs}, specs)
	if err := sweep.Errs(results); err != nil {
		fatal(err)
	}
	summary, err := diagnoseReplicas(results)
	fmt.Print(summary)
	if err != nil {
		fatal(err)
	}
}

// diagnoseReplicas checks all replica fingerprints agree. On divergence
// the report names every minority replica with its fingerprint next to
// the majority's, so the output answers "which replica diverged, and from
// what" instead of stopping at the first mismatch.
func diagnoseReplicas(results []sweep.Result) (string, error) {
	var b strings.Builder
	counts := make(map[string]int)
	for i, r := range results {
		fmt.Fprintf(&b, "replica %2d: %s\n", i, r.Fingerprint())
		counts[r.Fingerprint()]++
	}
	if len(counts) == 1 {
		fmt.Fprintf(&b, "%d replicas agree: %s\n", len(results), results[0].Fingerprint())
		return b.String(), nil
	}
	// Majority fingerprint is the reference; ties break toward the
	// earliest replica so the diagnosis is deterministic.
	want := results[0].Fingerprint()
	for _, r := range results {
		if counts[r.Fingerprint()] > counts[want] {
			want = r.Fingerprint()
		}
	}
	var diverged []string
	for i, r := range results {
		if got := r.Fingerprint(); got != want {
			diverged = append(diverged, fmt.Sprintf("replica %d got %s, majority %s", i, got, want))
		}
	}
	fmt.Fprintf(&b, "%d of %d replicas diverge from majority fingerprint %s\n",
		len(diverged), len(results), want)
	return b.String(), fmt.Errorf("nondeterminism: %s", strings.Join(diverged, "; "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "glsim:", err)
	os.Exit(1)
}
