package main

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// fpResult fabricates a sweep result whose fingerprint is fixed by
// constructing a report with a distinguishing field. Fingerprints hash the
// report's final statistics, so distinct cycle counts give distinct
// fingerprints and equal reports give equal ones.
func fpResult(cycles uint64) sweep.Result {
	return sweep.Result{Report: &sim.Report{Cycles: cycles}}
}

func TestDiagnoseReplicasAgree(t *testing.T) {
	results := []sweep.Result{fpResult(100), fpResult(100), fpResult(100)}
	summary, err := diagnoseReplicas(results)
	if err != nil {
		t.Fatalf("agreeing replicas diagnosed as divergent: %v", err)
	}
	want := results[0].Fingerprint()
	if !strings.Contains(summary, "3 replicas agree: "+want) {
		t.Fatalf("summary missing agreement line:\n%s", summary)
	}
}

func TestDiagnoseReplicasDivergence(t *testing.T) {
	// Replicas 0,2,3 form the majority; replica 1 diverges.
	results := []sweep.Result{fpResult(100), fpResult(999), fpResult(100), fpResult(100)}
	majority := results[0].Fingerprint()
	minority := results[1].Fingerprint()
	if majority == minority {
		t.Fatal("test fixture fingerprints collide")
	}
	summary, err := diagnoseReplicas(results)
	if err == nil {
		t.Fatalf("divergence not reported:\n%s", summary)
	}
	msg := err.Error()
	// The error names the diverging replica and shows BOTH fingerprints.
	if !strings.Contains(msg, "replica 1 got "+minority) || !strings.Contains(msg, "majority "+majority) {
		t.Fatalf("error does not identify the divergent replica and both fingerprints: %s", msg)
	}
	if strings.Contains(msg, "replica 0 ") || strings.Contains(msg, "replica 2 ") {
		t.Fatalf("majority replicas misreported as divergent: %s", msg)
	}
	// The per-replica listing still shows every fingerprint.
	for _, frag := range []string{
		"replica  0: " + majority,
		"replica  1: " + minority,
		"1 of 4 replicas diverge",
	} {
		if !strings.Contains(summary, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, summary)
		}
	}
}

func TestDiagnoseReplicasMajorityWins(t *testing.T) {
	// Two fingerprints, the later one in the majority: the reference must
	// be the majority, not simply replica 0.
	results := []sweep.Result{fpResult(7), fpResult(42), fpResult(42), fpResult(42)}
	majority := results[1].Fingerprint()
	_, err := diagnoseReplicas(results)
	if err == nil {
		t.Fatal("divergence not reported")
	}
	if !strings.Contains(err.Error(), "replica 0 got "+results[0].Fingerprint()) ||
		!strings.Contains(err.Error(), "majority "+majority) {
		t.Fatalf("majority not used as reference: %v", err)
	}
}
