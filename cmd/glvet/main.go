// Command glvet runs the repo's custom static-analysis suite over the
// simulator tree, multichecker-style: it loads the named packages from
// source (stdlib-only; see internal/analysis), runs every registered
// analyzer, and prints the surviving diagnostics as
//
//	file:line:col: analyzer: message
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage errors.
//
// Usage:
//
//	glvet [-only detrand,cyclepure] [-list] [-json] [packages...]
//
// Package patterns are directories, or `dir/...` trees; the default is
// `./...` from the working directory. Suppress a finding with a
// `//lint:allow <analyzer> <reason>` comment on or directly above its line
// (the reason is mandatory). The invariants enforced — seed-determinism,
// cycle-path purity, metric-name and fault-site hygiene — are documented in
// DESIGN.md §8.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/cyclepure"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/faultsite"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/spanname"
)

// Suite is the full glvet analyzer set.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		cyclepure.Analyzer,
		metricname.Analyzer,
		spanname.Analyzer,
		faultsite.Analyzer,
		allocfree.Analyzer,
		lockguard.Analyzer,
		lockorder.Analyzer,
		ctxflow.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("glvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	only := fs.String("only", "", "comma-separated analyzer subset to run")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := suite()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		known := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			known[a.Name] = a
		}
		var sel []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := known[name]
			if !ok {
				names := make([]string, len(analyzers))
				for i, a := range analyzers {
					names[i] = a.Name
				}
				fmt.Fprintf(errOut, "glvet: unknown analyzer %q (valid: %s)\n", name, strings.Join(names, ", "))
				return 2
			}
			sel = append(sel, a)
		}
		analyzers = sel
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analyze(patterns, analyzers, errOut)
	if err != nil {
		fmt.Fprintf(errOut, "glvet: %v\n", err)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(out, diags); err != nil {
			fmt.Fprintf(errOut, "glvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDiagnostic is the machine-readable diagnostic shape: stable field
// names for CI tooling, one object per finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders the diagnostics as an indented JSON array (an empty
// run emits `[]`, never `null`, so consumers can always iterate).
func writeJSON(out io.Writer, diags []analysis.Diagnostic) error {
	jd := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		jd = append(jd, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(jd)
}

// errTypeCheck marks a run aborted because target packages do not
// type-check; the individual errors were already printed.
var errTypeCheck = errors.New("target packages have type errors")

// analyze loads the patterns and runs the analyzers. Type errors in target
// packages abort the run with errTypeCheck (exit 2) before any analyzer
// sees the broken types — findings over a tree that does not build would
// be noise at best and a panic at worst. Fixture packages under testdata
// are exempt: analyzer fixtures tolerate soft errors by design.
func analyze(patterns []string, analyzers []*analysis.Analyzer, errOut io.Writer) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader("")
	if err != nil {
		return nil, err
	}
	prog, targets, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	broken := false
	for _, pkg := range targets {
		if strings.Contains(pkg.Path, "/testdata/") {
			continue
		}
		for _, terr := range pkg.TypeErrors {
			broken = true
			fmt.Fprintf(errOut, "glvet: %s: %v\n", pkg.Path, terr)
		}
	}
	if broken {
		return nil, errTypeCheck
	}
	return analysis.Run(prog, targets, analyzers)
}
