// Command glvet runs the repo's custom static-analysis suite over the
// simulator tree, multichecker-style: it loads the named packages from
// source (stdlib-only; see internal/analysis), runs every registered
// analyzer, and prints the surviving diagnostics as
//
//	file:line:col: analyzer: message
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage errors.
//
// Usage:
//
//	glvet [-only detrand,cyclepure] [-list] [packages...]
//
// Package patterns are directories, or `dir/...` trees; the default is
// `./...` from the working directory. Suppress a finding with a
// `//lint:allow <analyzer> <reason>` comment on or directly above its line
// (the reason is mandatory). The invariants enforced — seed-determinism,
// cycle-path purity, metric-name and fault-site hygiene — are documented in
// DESIGN.md §8.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/cyclepure"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/faultsite"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/spanname"
)

// Suite is the full glvet analyzer set.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		cyclepure.Analyzer,
		metricname.Analyzer,
		spanname.Analyzer,
		faultsite.Analyzer,
		allocfree.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("glvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	only := fs.String("only", "", "comma-separated analyzer subset to run")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := suite()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		known := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			known[a.Name] = a
		}
		var sel []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := known[name]
			if !ok {
				fmt.Fprintf(errOut, "glvet: unknown analyzer %q\n", name)
				return 2
			}
			sel = append(sel, a)
		}
		analyzers = sel
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analyze(patterns, analyzers, errOut)
	if err != nil {
		fmt.Fprintf(errOut, "glvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// analyze loads the patterns and runs the analyzers. Type errors in target
// packages are reported to errOut (the tree should build; glvet does not
// hide a broken package behind analyzer output) but do not abort analysis.
func analyze(patterns []string, analyzers []*analysis.Analyzer, errOut io.Writer) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader("")
	if err != nil {
		return nil, err
	}
	prog, targets, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	for _, pkg := range targets {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(errOut, "glvet: %s: %v\n", pkg.Path, terr)
		}
	}
	return analysis.Run(prog, targets, analyzers)
}
