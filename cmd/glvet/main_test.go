package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGlvetClean is the repo gate: the full analyzer suite over every
// package in the module must report nothing. A failure here means a change
// introduced a nondeterminism source, an impure cycle-path construct, a
// metrics/fault-site hygiene violation, a concurrency-discipline breach
// (lockguard/lockorder/ctxflow), or a stale `//lint:allow` left behind by
// refactored code — fix it or justify a `//lint:allow <analyzer> <reason>`.
func TestGlvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is not short")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"../../..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("glvet exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if errOut.Len() != 0 {
		t.Fatalf("glvet reported load problems:\n%s", errOut.String())
	}
}

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("glvet -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"detrand", "cyclepure", "metricname", "faultsite", "lockguard", "lockorder", "ctxflow"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("glvet -only nosuch exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("missing unknown-analyzer message: %s", errOut.String())
	}
	// The error names every valid analyzer, so the fix is in the message.
	for _, name := range []string{"detrand", "cyclepure", "metricname", "spanname",
		"faultsite", "allocfree", "lockguard", "lockorder", "ctxflow"} {
		if !strings.Contains(errOut.String(), name) {
			t.Errorf("unknown-analyzer message does not list %s: %s", name, errOut.String())
		}
	}
}

// TestJSONOutput runs the suite over a fixture package that is known to
// produce diagnostics and checks the machine-readable shape.
func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-only", "ctxflow",
		"../../internal/analysis/ctxflow/testdata/src/ctxflowtest"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("glvet -json over fixture exited %d, want 1\nstderr: %s", code, errOut.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Column <= 0 || d.Analyzer != "ctxflow" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestTypeErrorExitsTwo pins the broken-tree contract: a target package
// that fails type-checking aborts the run with exit 2 — the type errors on
// stderr, no analyzer findings over garbage types, and no panic.
func TestTypeErrorExitsTwo(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module broken\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "bad"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package bad\n\nfunc B() int { return undefinedName }\n"
	if err := os.WriteFile(filepath.Join(dir, "bad", "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errOut bytes.Buffer
	if code := run([]string{"./bad"}, &out, &errOut); code != 2 {
		t.Fatalf("glvet over broken package exited %d, want 2\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "undefinedName") {
		t.Errorf("stderr does not carry the type error: %s", errOut.String())
	}
}

// TestJSONEmpty checks a clean run emits an empty array, not null.
func TestJSONEmpty(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "."}, &out, &errOut); code != 0 {
		t.Fatalf("glvet -json . exited %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json output = %q, want []", out.String())
	}
}
