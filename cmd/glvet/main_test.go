package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestGlvetClean is the repo gate: the full analyzer suite over every
// package in the module must report nothing. A failure here means a change
// introduced a nondeterminism source, an impure cycle-path construct, or a
// metrics/fault-site hygiene violation — fix it or justify a
// `//lint:allow <analyzer> <reason>`.
func TestGlvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is not short")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"../..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("glvet exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if errOut.Len() != 0 {
		t.Fatalf("glvet reported load problems:\n%s", errOut.String())
	}
}

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("glvet -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"detrand", "cyclepure", "metricname", "faultsite"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("glvet -only nosuch exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("missing unknown-analyzer message: %s", errOut.String())
	}
}
