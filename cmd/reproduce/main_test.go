package main

import "testing"

func TestCoreSweep(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{32, []int{1, 2, 4, 8, 16, 32}},
		{20, []int{1, 2, 4, 8, 16, 20}},
		{1, []int{1}},
	}
	for _, tc := range cases {
		got := coreSweep(tc.max)
		if len(got) != len(tc.want) {
			t.Errorf("coreSweep(%d) = %v, want %v", tc.max, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("coreSweep(%d) = %v, want %v", tc.max, got, tc.want)
				break
			}
		}
	}
}
