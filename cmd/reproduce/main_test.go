package main

import (
	"testing"

	repro "repro"
	"repro/internal/chaos"
	"repro/internal/sweep"
)

func TestCoreSweep(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{32, []int{1, 2, 4, 8, 16, 32}},
		{20, []int{1, 2, 4, 8, 16, 20}},
		{1, []int{1}},
	}
	for _, tc := range cases {
		got := coreSweep(tc.max)
		if len(got) != len(tc.want) {
			t.Errorf("coreSweep(%d) = %v, want %v", tc.max, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("coreSweep(%d) = %v, want %v", tc.max, got, tc.want)
				break
			}
		}
	}
}

func TestRunChaosCampaignSavesCorpus(t *testing.T) {
	dir := t.TempDir()
	opts := chaosOptions{
		budget:  8,
		seed:    7,
		oracles: "all",
		save:    dir,
		sweep:   sweep.Options{Jobs: 4},
	}
	var cellFailures []error
	err := runChaos(opts,
		func(string, *repro.Report) {},
		func(name string, err error) {
			if err != nil {
				cellFailures = append(cellFailures, err)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(cellFailures) > 0 {
		t.Fatalf("campaign machinery failed: %v", cellFailures)
	}
	entries, err := chaos.LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("campaign saved no reproducers")
	}
	// Saved reproducers must replay their pinned verdicts immediately.
	for _, r := range entries {
		if _, err := r.Replay(); err != nil {
			t.Errorf("fresh reproducer drifted: %v", err)
		}
	}
}

func TestRunChaosCorpusReplay(t *testing.T) {
	dir := t.TempDir()
	if _, err := chaos.WriteCorpus(dir, chaos.Reproducer{
		Name:    "wedge",
		Plan:    "seed=1,@0-100000:gl.drop:-1:0,recovery.off",
		Verdict: chaos.Violation{Oracle: chaos.OracleLiveness, Kind: chaos.KindNoProgress},
		Iters:   4,
	}); err != nil {
		t.Fatal(err)
	}
	recorded := 0
	failures := 0
	opts := chaosOptions{oracles: "all", corpus: dir}
	err := runChaos(opts,
		func(string, *repro.Report) { recorded++ },
		func(name string, err error) {
			if err != nil {
				failures++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("replay of a valid corpus reported %d failures", failures)
	}
	if recorded != 1 {
		t.Fatalf("recorded %d reports, want 1", recorded)
	}
	// A drifted verdict must surface through cellErrs.
	if _, err := chaos.WriteCorpus(dir, chaos.Reproducer{
		Name:    "drifted",
		Plan:    "seed=1", // clean plan trips nothing
		Verdict: chaos.Violation{Oracle: chaos.OracleLiveness, Kind: chaos.KindNoProgress},
		Iters:   2,
	}); err != nil {
		t.Fatal(err)
	}
	failures = 0
	err = runChaos(opts,
		func(string, *repro.Report) {},
		func(name string, err error) {
			if err != nil {
				failures++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("drifted reproducer reported %d failures, want 1", failures)
	}
}

func TestRunChaosRejectsBadFlags(t *testing.T) {
	if err := runChaos(chaosOptions{oracles: "sloth"}, nil, nil); err == nil {
		t.Fatal("want error for unknown oracle")
	}
	if err := runChaos(chaosOptions{oracles: "all", corpus: t.TempDir()}, nil, nil); err == nil {
		t.Fatal("want error for empty corpus directory")
	}
}
