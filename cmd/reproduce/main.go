// Command reproduce regenerates every table and figure of the paper's
// evaluation:
//
//	reproduce [-tier repro] [-cores 32] [-jobs N] table1|table2|fig5|fig6|fig7|ablation|energy|faults|all
//
// Tiers: "test" (miniature, for goldens/CI), "scaled" (seconds), "repro"
// (paper data sizes, fewer iterations; the default), "paper" (exact
// Table 2 inputs; slow). Independent simulation runs fan out across -jobs
// worker goroutines (default: all CPUs) without changing any result —
// every run carries a determinism fingerprint, and sweeps collect results
// in submission order. A failed run renders as an error cell in its table
// instead of aborting the sweep; reproduce then exits non-zero after
// printing everything. Results and the paper's reference numbers are
// discussed in EXPERIMENTS.md.
//
// Beyond the paper's figures, `reproduce chaos` runs a seeded
// chaos campaign against the barrier protocol (see internal/chaos): it
// generates -budget randomized fault plans from -seed, checks every run
// against the protocol oracles selected by -oracles, and delta-debugs each
// oracle trip to a minimal reproducer (optionally saved with -save).
// `reproduce -corpus DIR chaos` skips exploration and replays a corpus of
// saved reproducers, failing if any pinned verdict drifted. Chaos is not
// part of "all": it explores failure space instead of reproducing a paper
// result.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	repro "repro"
	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	tierFlag := flag.String("tier", "repro", "input scale: test, scaled, repro or paper")
	cores := flag.Int("cores", 32, "number of cores (Table 1 baseline: 32)")
	jobs := flag.Int("jobs", 0, "parallel simulation runs (0 = all CPUs, 1 = sequential)")
	failFast := flag.Bool("fail-fast", false, "cancel runs that have not started after the first failure")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline per simulation run (0 = unbounded)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	jsonPath := flag.String("json", "", "write every run's full report as one JSON document to this file ('-' for stdout)")
	artifacts := flag.String("artifacts", "", "write each sweep cell's report as an individual JSON file into this directory")
	traceOut := flag.String("trace-out", "", "write each run's span timeline as Chrome trace-event JSON into this directory (chaos: one per saved reproducer)")
	budget := flag.Int("budget", 64, "chaos: number of randomized fault plans to explore")
	seed := flag.Uint64("seed", 1, "chaos: campaign seed (same seed, same campaign)")
	oracles := flag.String("oracles", "all", "chaos: comma-separated oracle selection (safety,liveness,conservation or all)")
	corpusDir := flag.String("corpus", "", "chaos: replay saved reproducers from this directory instead of exploring")
	saveDir := flag.String("save", "", "chaos: write each finding's minimized reproducer into this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reproduce [flags] table1|table2|fig5|fig6|fig7|ablation|energy|faults|chaos|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	tier, err := workload.ParseTier(*tierFlag)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		if err := os.MkdirAll(*traceOut, 0o755); err != nil {
			fatal(err)
		}
		repro.SetTraceDir(*traceOut)
	}
	opt := repro.SweepOptions{Jobs: *jobs, FailFast: *failFast, ArtifactDir: *artifacts, Timeout: *timeout}
	what := flag.Arg(0)
	// jsonRuns collects every experiment's raw reports under stable
	// "experiment/cell" keys for the -json export.
	jsonRuns := map[string]*repro.Report{}
	record := func(key string, rep *repro.Report) {
		if rep != nil {
			jsonRuns[key] = rep
		}
	}
	emit := func(name string, t stats.Table) {
		fmt.Println(t)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	// Experiments render failed cells into their tables and return the
	// aggregated cell errors: report those after the table, keep going,
	// and exit non-zero at the end.
	failures := 0
	cellErrs := func(name string, err error) {
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", name, err)
		}
	}
	run := func(name string, fn func() error) {
		if what == name || what == "all" {
			if err := fn(); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
		}
	}
	ran := what == "chaos"
	for _, name := range []string{"table1", "table2", "fig5", "fig6", "fig7", "ablation", "energy", "faults"} {
		if what == name || what == "all" {
			ran = true
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}

	run("table1", func() error {
		fmt.Println("== Table 1: CMP baseline configuration ==")
		emit("table1", repro.Table1(repro.DefaultConfig(*cores)))
		return nil
	})
	run("table2", func() error {
		fmt.Printf("== Table 2: benchmark configuration (tier=%s, %d cores, DSW baseline) ==\n", tier, *cores)
		rows, err := repro.Table2(tier, *cores, opt)
		emit("table2", repro.RenderTable2(rows))
		for _, r := range rows {
			record("table2/"+r.Name, r.Report)
		}
		cellErrs("table2", err)
		return nil
	})
	run("fig5", func() error {
		fmt.Printf("== Figure 5: average barrier latency (cycles) vs cores (tier=%s) ==\n", tier)
		points, err := repro.Fig5(tier, coreSweep(*cores), opt)
		emit("fig5", repro.RenderFig5(points))
		for _, p := range points {
			// Fixed series order: artifact recording must not depend on map
			// iteration order.
			for _, kind := range []repro.BarrierKind{repro.CSW, repro.DSW, repro.GL} {
				if rep, ok := p.Reports[kind]; ok {
					record(fmt.Sprintf("fig5/%dc/%s", p.Cores, kind), rep)
				}
			}
		}
		cellErrs("fig5", err)
		return nil
	})
	var cmps []repro.Comparison
	fig67 := func() error {
		if cmps != nil {
			return nil
		}
		var err error
		cmps, err = repro.Fig6And7(tier, *cores, opt)
		for _, c := range cmps {
			record("fig6_7/"+c.Name+"/DSW", c.DSW)
			record("fig6_7/"+c.Name+"/GL", c.GL)
		}
		cellErrs("fig6/7", err)
		return nil
	}
	run("fig6", func() error {
		if err := fig67(); err != nil {
			return err
		}
		fmt.Printf("== Figure 6: normalized execution time, DSW vs GL (tier=%s, %d cores) ==\n", tier, *cores)
		emit("fig6", repro.RenderFig6(cmps))
		tk, ta, _, _ := repro.Averages(cmps)
		fmt.Printf("AVG_K time reduction: %s (paper: 68%%)\nAVG_A time reduction: %s (paper: 21%%)\n\n",
			stats.Pct(tk), stats.Pct(ta))
		return nil
	})
	run("fig7", func() error {
		if err := fig67(); err != nil {
			return err
		}
		fmt.Printf("== Figure 7: normalized network traffic, DSW vs GL (tier=%s, %d cores) ==\n", tier, *cores)
		emit("fig7", repro.RenderFig7(cmps))
		_, _, fk, fa := repro.Averages(cmps)
		fmt.Printf("AVG_K traffic reduction: %s (paper: 74%%)\nAVG_A traffic reduction: %s (paper: 18%%)\n\n",
			stats.Pct(fk), stats.Pct(fa))
		return nil
	})
	run("energy", func() error {
		fmt.Printf("== Interconnect energy, DSW vs GL (tier=%s, %d cores) ==\n", tier, *cores)
		rows, err := repro.EnergyStudy(tier, *cores, opt)
		emit("energy", repro.RenderEnergy(rows))
		for _, r := range rows {
			record("energy/"+r.Name+"/DSW", r.DSW)
			record("energy/"+r.Name+"/GL", r.GL)
		}
		cellErrs("energy", err)
		return nil
	})
	run("faults", func() error {
		fmt.Printf("== Resilience: barrier degradation under injected G-line/NoC faults (tier=%s, %d cores) ==\n", tier, *cores)
		fmt.Println("(cycles/barrier per series; a wedged GL-raw cell is the expected deadlock of the unguarded protocol)")
		points, err := repro.FaultStudy(tier, *cores, repro.DefaultFaultRates, opt)
		barriers := workload.SyntheticFor(tier).Barriers(*cores)
		emit("faults", repro.RenderFaults(points, barriers))
		for _, p := range points {
			for _, series := range repro.FaultSeries() {
				if c, ok := p.Cells[series]; ok && c.Err == nil {
					record(fmt.Sprintf("faults/%g/%s", p.Rate, series), c.Report)
				}
			}
		}
		cellErrs("faults", err)
		return nil
	})
	run("ablation", func() error {
		iters := 200
		if tier == repro.TierTest {
			iters = 30
		}
		// Fixed 16-core (4x4, flat) geometry for the network-local
		// ablations: the paper's ideal 4-cycle dance needs a flat
		// network, and TDM shares one physical line set.
		const flatCores = 16
		fmt.Println("== Ablation: GL software call overhead (flat 4x4; ideal hardware = 4 cycles) ==")
		t, err := repro.AblationOverhead(flatCores, []uint64{0, 3, 6, 9, 18}, iters, opt)
		fmt.Println(t)
		cellErrs("ablation/overhead", err)
		fmt.Println("== Ablation: flat vs hierarchical G-line network (36 cores) ==")
		t, err = repro.AblationHierarchy(iters, opt)
		fmt.Println(t)
		cellErrs("ablation/hierarchy", err)
		fmt.Println("== Ablation: time-multiplexed barrier contexts (flat 4x4) ==")
		t, err = repro.AblationTDM(flatCores, []int{1, 2, 4, 8}, iters, opt)
		fmt.Println(t)
		cellErrs("ablation/tdm", err)
		fmt.Println("== Ablation: S-CSMA counting vs serialized signaling (7x7) ==")
		t, err = repro.AblationSCSMA(iters, opt)
		fmt.Println(t)
		cellErrs("ablation/scsma", err)
		fmt.Println("== Ablation: router pipeline depth (cycles/barrier) ==")
		t, err = repro.AblationRouterDepth(*cores, []uint64{1, 2, 3, 4}, iters, opt)
		fmt.Println(t)
		cellErrs("ablation/router", err)
		fmt.Println("== Ablation: coherence ownership transfer, 4-hop vs 3-hop ==")
		t, err = repro.AblationProtocol(*cores, iters, opt)
		fmt.Println(t)
		cellErrs("ablation/protocol", err)
		return nil
	})
	if what == "chaos" {
		opts := chaosOptions{
			budget:   *budget,
			seed:     *seed,
			oracles:  *oracles,
			corpus:   *corpusDir,
			save:     *saveDir,
			traceDir: *traceOut,
			sweep:    sweep.Options{Jobs: *jobs, FailFast: *failFast, Timeout: *timeout},
		}
		if err := runChaos(opts, record, cellErrs); err != nil {
			fatal(fmt.Errorf("chaos: %w", err))
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, string(tier), *cores, what, jsonRuns); err != nil {
			fatal(err)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "reproduce: %d experiment(s) had failed cells\n", failures)
		os.Exit(1)
	}
}

// chaosOptions carries the chaos subcommand's flag values.
type chaosOptions struct {
	budget   int
	seed     uint64
	oracles  string
	corpus   string
	save     string
	traceDir string
	sweep    sweep.Options
}

// runChaos drives the chaos subcommand: corpus replay when -corpus is set,
// a fresh exploration campaign otherwise. Findings and replayed runs are
// recorded for the -json export; verdict drifts and machinery failures go
// through cellErrs so reproduce exits non-zero.
func runChaos(opts chaosOptions, record func(string, *repro.Report), cellErrs func(string, error)) error {
	set, err := chaos.ParseOracles(opts.oracles)
	if err != nil {
		return err
	}
	if opts.corpus != "" {
		entries, err := chaos.LoadCorpus(opts.corpus)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			return fmt.Errorf("no reproducers under %s", opts.corpus)
		}
		fmt.Printf("== Chaos corpus replay: %d reproducer(s) from %s ==\n", len(entries), opts.corpus)
		for _, r := range entries {
			out, err := r.Replay()
			if err != nil {
				fmt.Printf("FAIL %-24s %s\n", r.Name, err)
				cellErrs("corpus/"+r.Name, err)
			} else {
				fmt.Printf("ok   %-24s trips %s (%s)\n", r.Name, r.Verdict.Key(), r.Plan)
			}
			record("chaos/corpus/"+r.Name, out.Report)
		}
		return nil
	}

	cfg := chaos.CampaignConfig{
		Seed:   opts.seed,
		Budget: opts.budget,
		Run:    chaos.RunConfig{Oracles: set},
		Sweep:  opts.sweep,
	}
	fmt.Printf("== Chaos campaign: %d plans from seed %d, oracles %s ==\n",
		opts.budget, opts.seed, set)
	rep, err := chaos.Campaign(cfg)
	cellErrs("campaign", err)
	if rep == nil {
		return nil
	}
	fmt.Printf("runs %d  clean %d  tripped %d  errors %d  findings %d\n",
		rep.Runs, rep.Clean, rep.Tripped, rep.Errors, len(rep.Findings))
	for i, f := range rep.Findings {
		fmt.Printf("\nfinding %d (plan %d): %s\n", i, f.Index, f.Verdict)
		fmt.Printf("  original:  %s\n", f.Plan)
		fmt.Printf("  minimized: %s  (%d site(s), %d shrink runs)\n",
			f.Minimized, f.MinimizedSites, f.Shrink.Runs)
		record(fmt.Sprintf("chaos/finding-%02d", i), f.Report)
		name := fmt.Sprintf("seed%d-plan%04d-%s-%s", rep.Seed, f.Index, f.Verdict.Oracle, f.Verdict.Kind)
		if opts.traceDir != "" {
			// Replay the minimized plan with a span timeline attached and
			// export the Chrome trace next to the finding's other artifacts —
			// the failing episode, phase by phase, loadable in Perfetto.
			plan, perr := fault.ParsePlan(f.Minimized)
			if perr != nil {
				cellErrs("trace/"+name, perr)
				continue
			}
			out := chaos.RunPlan(chaos.RunConfig{Oracles: set, TraceCapacity: 1 << 16}, plan)
			if out.Timeline != nil {
				tp := filepath.Join(opts.traceDir, name+".trace.json")
				if terr := writeChromeFile(tp, out.Timeline); terr != nil {
					cellErrs("trace/"+name, terr)
				} else {
					fmt.Printf("  trace:     %s\n", tp)
				}
			}
		}
		if opts.save == "" {
			continue
		}
		r := chaos.Reproducer{
			Name: name,
			Note: fmt.Sprintf("chaos campaign seed=%d plan=%d; minimized %d->%d atoms in %d runs",
				rep.Seed, f.Index, f.Shrink.FromAtoms, f.Shrink.ToAtoms, f.Shrink.Runs),
			Plan:    f.Minimized,
			Verdict: chaos.Violation{Oracle: f.Verdict.Oracle, Kind: f.Verdict.Kind},
		}
		path, err := chaos.WriteCorpus(opts.save, r)
		if err != nil {
			cellErrs("save/"+r.Name, err)
			continue
		}
		fmt.Printf("  saved:     %s\n", path)
	}
	return nil
}

// writeChromeFile exports one timeline as a Chrome trace-event JSON file.
func writeChromeFile(path string, tl *trace.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tl.WriteChrome(f, nil)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeJSON exports every collected run — keyed "experiment/cell", each a
// full sim.Report document with metrics, NoC stats and fingerprint — to
// path, or stdout when path is "-".
func writeJSON(path, tier string, cores int, what string, runs map[string]*repro.Report) error {
	doc := struct {
		Tier       string                   `json:"tier"`
		Cores      int                      `json:"cores"`
		Experiment string                   `json:"experiment"`
		Runs       map[string]*repro.Report `json:"runs"`
	}{Tier: tier, Cores: cores, Experiment: what, Runs: runs}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// coreSweep returns the Figure 5 x-axis: powers of two up to max.
func coreSweep(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}
