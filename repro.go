// Package repro is the public facade of the G-line barrier reproduction:
// it re-exports the pieces needed to build a simulated CMP, run the
// paper's benchmarks, and regenerate every table and figure of the
// evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Quick use:
//
//	cfg := repro.DefaultConfig(32)
//	sys, _ := repro.NewSystem(cfg)
//	rep, _ := repro.RunBenchmark(sys, repro.Benchmark("SYNTH", repro.TierScaled), repro.GL, 32)
//	fmt.Println(rep)
//
// The experiment drivers (Fig5, Fig6, Fig7, Table1, Table2) each rerun the
// paper's corresponding evaluation and return both the raw reports and the
// derived table the paper prints.
package repro

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported names for the public API surface.
type (
	// Config is the CMP configuration (Table 1).
	Config = config.Config
	// System is a simulated CMP instance.
	System = sim.System
	// Report is the result of one simulation run.
	Report = sim.Report
	// BarrierKind selects CSW, DSW or GL.
	BarrierKind = barrier.Kind
	// Tier selects benchmark input scale.
	Tier = workload.Tier
	// Workload is one of the paper's benchmarks.
	Workload = workload.Benchmark
)

// SweepOptions configure how an experiment's grid of independent runs
// executes (worker count, fail-fast); see internal/sweep.
type SweepOptions = sweep.Options

// Sequential runs an experiment's cells one at a time on the calling
// goroutine: the reference execution parallel sweeps must match.
var Sequential = SweepOptions{Jobs: 1}

// Parallel runs an experiment's cells on one worker per available CPU.
var Parallel = SweepOptions{}

// Barrier kinds and tiers, re-exported.
const (
	CSW = barrier.KindCSW
	DSW = barrier.KindDSW
	GL  = barrier.KindGL

	TierTest   = workload.TierTest
	TierScaled = workload.TierScaled
	TierRepro  = workload.TierRepro
	TierPaper  = workload.TierPaper
)

// DefaultConfig returns the paper's Table 1 configuration scaled to n
// cores (n=32 reproduces the paper exactly).
func DefaultConfig(n int) Config { return config.Default(n) }

// NewSystem builds a simulated CMP.
func NewSystem(cfg Config) (*System, error) { return sim.New(cfg) }

// Benchmark looks up a paper benchmark by name ("SYNTH", "KERN2", "KERN3",
// "KERN6", "UNSTR", "OCEAN", "EM3D") at the given tier; it panics on an
// unknown name (use workload.ByName for error handling).
func Benchmark(name string, tier Tier) Workload {
	b, err := workload.ByName(name, tier)
	if err != nil {
		panic(err)
	}
	return b
}

// RunBenchmark executes one benchmark on a fresh system with the given
// barrier implementation and thread count.
func RunBenchmark(sys *System, w Workload, kind BarrierKind, threads int) (*Report, error) {
	return workload.Run(sys, w, kind, threads, defaultCycleBudget)
}

// defaultCycleBudget bounds any single run; the paper-scale OCEAN run is
// the largest at ~75M cycles.
const defaultCycleBudget = 4_000_000_000

// traceDir, when non-empty, makes every fresh-system experiment cell attach
// a span timeline and export it as Chrome trace-event JSON into this
// directory, one file per cell. Set once, before any experiment runs; the
// cells themselves then execute in parallel writing distinct files.
var traceDir string

// SetTraceDir enables per-cell timeline export for the experiment drivers
// (the `reproduce -trace-out DIR` flag). Call it before Fig5/Fig6And7/
// Table2/... start; passing "" disables export again.
func SetTraceDir(dir string) { traceDir = dir }

// runFresh builds a system and runs one benchmark on it.
func runFresh(cores int, w Workload, kind BarrierKind) (*Report, error) {
	sys, err := sim.New(config.Default(cores))
	if err != nil {
		return nil, err
	}
	var tl *trace.Timeline
	if traceDir != "" {
		tl = sys.AttachTimeline(1 << 18)
	}
	rep, rerr := workload.Run(sys, w, kind, cores, defaultCycleBudget)
	if tl != nil {
		// Export even when the run failed — a hang's timeline is the most
		// interesting one — but never let an export error mask a run error.
		if terr := writeTraceArtifact(tl, w.Name(), kind, cores); terr != nil && rerr == nil {
			rerr = terr
		}
	}
	if rerr != nil {
		return rep, fmt.Errorf("%s on %d cores with %s: %w", w.Name(), cores, kind, rerr)
	}
	return rep, nil
}

// writeTraceArtifact exports one cell's timeline as
// <traceDir>/<bench>_<kind>_<cores>.trace.json.
func writeTraceArtifact(tl *trace.Timeline, bench string, kind BarrierKind, cores int) error {
	path := filepath.Join(traceDir, fmt.Sprintf("%s_%s_%d.trace.json", bench, kind, cores))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tl.WriteChrome(f, map[string]string{
		"bench":   bench,
		"barrier": string(kind),
		"cores":   fmt.Sprint(cores),
	})
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// benchSpec is the sweep cell for one fresh-system benchmark run: the
// experiment grids are built from these.
func benchSpec(cores int, w Workload, kind BarrierKind) sweep.Spec {
	return sweep.Spec{
		Label: fmt.Sprintf("%s/%s/%d", w.Name(), kind, cores),
		Run:   func() (*Report, error) { return runFresh(cores, w, kind) },
	}
}
