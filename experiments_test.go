package repro

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func TestTable1Rendering(t *testing.T) {
	out := Table1(DefaultConfig(32)).String()
	for _, want := range []string{"32", "3GHz, in-order 2-way model", "64 Bytes",
		"32KB, 4-way, 1 cycle", "256KB, 4-way, 6+2 cycles", "400 cycles", "2D-mesh"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ScaledTier(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scaled suite")
	}
	rows, err := Table2(TierScaled, 16, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.Barriers == 0 || r.Period <= 0 {
			t.Errorf("%s: barriers=%d period=%f", r.Name, r.Barriers, r.Period)
		}
	}
	out := RenderTable2(rows).String()
	if !strings.Contains(out, "KERN2") || !strings.Contains(out, "EM3D") {
		t.Error("render missing benchmarks")
	}
}

func TestFig5ShapeSmall(t *testing.T) {
	points, err := Fig5(TierScaled, []int{2, 8}, Parallel)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		// At 2 cores CSW and DSW degenerate to the same lock+counter
		// structure, so only require a weak ordering there.
		ok := p.Latency[GL] < p.Latency[DSW] && p.Latency[DSW] <= p.Latency[CSW]
		if p.Cores >= 4 {
			ok = ok && p.Latency[DSW] < p.Latency[CSW]
		}
		if !ok {
			t.Errorf("cores=%d: GL=%.1f DSW=%.1f CSW=%.1f ordering broken",
				p.Cores, p.Latency[GL], p.Latency[DSW], p.Latency[CSW])
		}
	}
	out := RenderFig5(points).String()
	if !strings.Contains(out, "Cores") {
		t.Error("Fig5 render missing header")
	}
}

func TestCompareAndAverages(t *testing.T) {
	if testing.Short() {
		t.Skip("full DSW+GL comparison")
	}
	cmp, err := Compare(workload.ScaledKernel3(), 16, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TimeReduction <= 0 {
		t.Errorf("KERN3 time reduction %.3f, want >0", cmp.TimeReduction)
	}
	if cmp.TrafficReduction <= 0.5 {
		t.Errorf("KERN3 traffic reduction %.3f, want >0.5 (paper: 99.8%%)", cmp.TrafficReduction)
	}
	// DSW normalizes to exactly 1.0 total.
	var dswTotal float64
	for _, v := range cmp.NormTime[DSW] {
		dswTotal += v
	}
	if dswTotal < 0.999 || dswTotal > 1.001 {
		t.Errorf("DSW normalized total %.4f, want 1.0", dswTotal)
	}
	tk, ta, fk, fa := Averages([]Comparison{cmp})
	if tk != cmp.TimeReduction || fk != cmp.TrafficReduction {
		t.Error("kernel averages wrong")
	}
	if ta != 0 || fa != 0 {
		t.Error("app averages should be zero with only a kernel")
	}
	// Renders include the reduction column.
	if !strings.Contains(RenderFig6([]Comparison{cmp}).String(), "%") {
		t.Error("Fig6 render missing reduction")
	}
	if !strings.Contains(RenderFig7([]Comparison{cmp}).String(), "%") {
		t.Error("Fig7 render missing reduction")
	}
}

func TestAblationOverheadShowsIdealFour(t *testing.T) {
	tab, err := AblationOverhead(16, []uint64{0, 9}, 50, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "4.0") {
		t.Errorf("ideal 4-cycle latency not visible:\n%s", out)
	}
	if !strings.Contains(out, "13.0") {
		t.Errorf("measured 13-cycle latency not visible:\n%s", out)
	}
}

func TestAblationHierarchy(t *testing.T) {
	tab, err := AblationHierarchy(30, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	// Flat 6x6: 4+9=13; clustered: 6+9=15.
	if !strings.Contains(out, "13.0") || !strings.Contains(out, "15.0") {
		t.Errorf("hierarchy ablation:\n%s", out)
	}
}

func TestAblationTDM(t *testing.T) {
	tab, err := AblationTDM(16, []int{1, 2}, 30, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tab.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("TDM table:\n%s", tab.String())
	}
	// Period-2 TDM should be slower than dedicated.
	if !strings.Contains(lines[2], "13.0") {
		t.Errorf("1-context TDM should match the dedicated 13 cycles:\n%s", tab.String())
	}
}

func TestBenchmarkLookup(t *testing.T) {
	for _, name := range workload.Names() {
		for _, tier := range []Tier{TierTest, TierScaled, TierRepro, TierPaper} {
			w, err := workload.ByName(name, tier)
			if err != nil {
				t.Errorf("ByName(%s,%s): %v", name, tier, err)
				continue
			}
			if w.Name() != name {
				t.Errorf("ByName(%s) returned %s", name, w.Name())
			}
			if w.Barriers(32) == 0 {
				t.Errorf("%s/%s: zero barriers", name, tier)
			}
			if w.Input() == "" {
				t.Errorf("%s/%s: empty input description", name, tier)
			}
		}
	}
	if _, err := workload.ByName("NOPE", TierScaled); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := workload.ParseTier("huge"); err == nil {
		t.Error("unknown tier accepted")
	}
}

func TestPublicFacade(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunBenchmark(sys, Benchmark("SYNTH", TierScaled), GL, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BarrierEpisodes == 0 {
		t.Error("no episodes")
	}
	defer func() {
		if recover() == nil {
			t.Error("Benchmark with unknown name should panic")
		}
	}()
	Benchmark("NOPE", TierScaled)
}

// TestFig6ShapeScaled asserts the qualitative Figure 6 result on the fast
// tier: every kernel improves substantially; no benchmark regresses badly.
func TestFig6ShapeScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite comparison")
	}
	cmps, err := Fig6And7(TierScaled, 16, Parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 6 {
		t.Fatalf("%d comparisons", len(cmps))
	}
	for _, c := range cmps {
		if kernel := map[string]bool{"KERN2": true, "KERN3": true, "KERN6": true}[c.Name]; kernel {
			if c.TimeReduction < 0.10 {
				t.Errorf("%s: kernel reduction %.1f%%, want >=10%%", c.Name, 100*c.TimeReduction)
			}
		}
		if c.TimeReduction < -0.10 {
			t.Errorf("%s: GL regressed by %.1f%%", c.Name, -100*c.TimeReduction)
		}
		if c.TrafficReduction < -0.05 {
			t.Errorf("%s: traffic regressed by %.1f%%", c.Name, -100*c.TrafficReduction)
		}
	}
	tk, _, fk, _ := Averages(cmps)
	if tk < 0.3 {
		t.Errorf("AVG_K time reduction %.1f%%, want large (paper: 68%%)", 100*tk)
	}
	if fk < 0.3 {
		t.Errorf("AVG_K traffic reduction %.1f%%, want large (paper: 74%%)", 100*fk)
	}
	_ = stats.Pct
}
