package repro

import (
	"strconv"
	"strings"
	"testing"
)

func TestAblationSCSMA(t *testing.T) {
	tab, err := AblationSCSMA(30, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tab.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table:\n%s", tab.String())
	}
	parse := func(line string) float64 {
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	scsma := parse(lines[2])
	serial := parse(lines[3])
	if scsma != 13.0 {
		t.Errorf("S-CSMA latency %.1f, want 13.0", scsma)
	}
	// On 7x7 the serialized receiver queues 6 slaves per row and 6 rows
	// vertically: roughly +10 cycles.
	if serial < scsma+8 {
		t.Errorf("serialized latency %.1f, want >= %.1f+8", serial, scsma)
	}
}

func TestAblationRouterDepth(t *testing.T) {
	tab, err := AblationRouterDepth(16, []uint64{1, 4}, 30, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tab.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table:\n%s", tab.String())
	}
	row := func(line string) (dsw, gl float64) {
		fields := strings.Fields(line)
		d, err1 := strconv.ParseFloat(fields[1], 64)
		g, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("parse %q", line)
		}
		return d, g
	}
	d1, g1 := row(lines[2])
	d4, g4 := row(lines[3])
	if g1 != g4 {
		t.Errorf("GL latency changed with router depth: %.1f vs %.1f", g1, g4)
	}
	if d4 <= d1 {
		t.Errorf("DSW latency did not grow with router depth: %.1f vs %.1f", d1, d4)
	}
}

func TestEnergyStudyScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite energy study")
	}
	rows, err := EnergyStudy(TierScaled, 16, Parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.DSWPJ <= 0 || r.GLPJ <= 0 {
			t.Errorf("%s: non-positive energy %f/%f", r.Name, r.DSWPJ, r.GLPJ)
		}
		if r.GLPJ > r.DSWPJ {
			t.Errorf("%s: GL interconnect energy (%.0f pJ) above DSW (%.0f pJ)", r.Name, r.GLPJ, r.DSWPJ)
		}
		// The G-line wires themselves are a small share even when (as in
		// KERN3) they carry nearly all the synchronization.
		if r.GLofWhichLines > 0.10*r.GLPJ {
			t.Errorf("%s: G-line share %.1f pJ of %.1f pJ too large", r.Name, r.GLofWhichLines, r.GLPJ)
		}
	}
	out := RenderEnergy(rows).String()
	if !strings.Contains(out, "Reduction") {
		t.Error("render missing header")
	}
}

func TestAblationProtocol(t *testing.T) {
	tab, err := AblationProtocol(16, 30, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tab.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table:\n%s", tab.String())
	}
	parse := func(line string) float64 {
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	fourHop := parse(lines[2])
	threeHop := parse(lines[3])
	if threeHop >= fourHop {
		t.Errorf("3-hop DSW (%.1f) not faster than 4-hop (%.1f)", threeHop, fourHop)
	}
}
