package repro

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// readGoldenFingerprints loads the committed golden file, skipping the test
// when it does not exist yet.
func readGoldenFingerprints(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skipf("no golden file: %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) == 2 {
			want[fields[0]] = fields[1]
		}
	}
	return want
}

// runWithPlan is runFresh with a fault plan installed (nil plan = plain run).
func runWithPlan(cores int, w Workload, kind BarrierKind, plan *fault.Plan) (*Report, error) {
	cfg := config.Default(cores)
	cfg.Faults = plan
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return workload.Run(sys, w, kind, cores, defaultCycleBudget)
}

// TestEmptyFaultPlanDoesNotChangeFingerprints reruns every golden cell with
// an armed-but-empty fault plan: the injector is wired into the G-lines, the
// NoC and the L1 watches, and the GL runs sit behind the recovering guard —
// but no site has a rate or event, so every fingerprint must still match the
// committed golden value. This is the zero-fault transparency guarantee.
func TestEmptyFaultPlanDoesNotChangeFingerprints(t *testing.T) {
	want := readGoldenFingerprints(t)
	cells := goldenCells()
	specs := make([]sweep.Spec, len(cells))
	for i, c := range cells {
		c := c
		specs[i] = sweep.Spec{
			Label: c.key,
			Run: func() (*Report, error) {
				return runWithPlan(goldenCores, c.w, c.kind, &fault.Plan{Seed: 0xfee1})
			},
		}
	}
	results := sweep.Run(Parallel, specs)
	for i, c := range cells {
		if results[i].Err != nil {
			t.Fatalf("%s: %v", c.key, results[i].Err)
		}
		wantFP, ok := want[c.key]
		if !ok {
			t.Errorf("%s: no golden entry", c.key)
			continue
		}
		if got := results[i].Fingerprint(); got != wantFP {
			t.Errorf("%s: empty-plan fingerprint %s != golden %s — a dormant injector changed behavior", c.key, got, wantFP)
		}
	}
}

// TestFaultPlanFingerprintDeterminism runs the same faulty configuration
// several times — sequentially and across a parallel sweep — and requires
// every determinism fingerprint to agree: fault injection is a pure function
// of (plan, cycle, site), never of scheduling.
func TestFaultPlanFingerprintDeterminism(t *testing.T) {
	const replicas = 4
	plan := FaultPlan(1e-3)
	specs := make([]sweep.Spec, replicas)
	for i := range specs {
		i := i
		specs[i] = sweep.Spec{
			Label: fmt.Sprintf("replica%d", i),
			Run: func() (*Report, error) {
				return runWithPlan(goldenCores, workload.TestSynthetic(), GL, FaultPlan(1e-3))
			},
		}
	}
	results := sweep.Run(SweepOptions{Jobs: replicas}, specs)
	if err := sweep.Errs(results); err != nil {
		t.Fatal(err)
	}
	want := results[0].Fingerprint()
	for i, r := range results {
		if r.Fingerprint() != want {
			t.Fatalf("parallel replica %d fingerprint %s != %s under plan %q", i, r.Fingerprint(), want, plan)
		}
	}
	seq, err := runWithPlan(goldenCores, workload.TestSynthetic(), GL, FaultPlan(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Fingerprint() != want {
		t.Fatalf("sequential run fingerprint %s != parallel %s under plan %q", seq.Fingerprint(), want, plan)
	}
	if seq.Metrics.Counters["fault.injected"] == 0 {
		t.Fatalf("plan %q injected no faults; the determinism check proved nothing", plan)
	}
}

// TestGuardedRecoversWhereUnguardedWedges is the resilience subsystem's core
// claim: at a fault rate where the published (unguarded) G-line protocol
// deadlocks, the recovering guard completes every barrier with bounded
// retries and fallbacks. The comparison runs at 32 cores — an 8x4 mesh needs
// the hierarchical network, whose one-shot global-layer handshake (unlike
// the flat network's re-asserting slaves) is where dropped pulses wedge the
// published protocol.
func TestGuardedRecoversWhereUnguardedWedges(t *testing.T) {
	const cores = 32
	const rate = 1e-2

	guarded := FaultPlan(rate)
	rep, err := runWithPlan(cores, workload.TestSynthetic(), GL, guarded)
	if err != nil {
		t.Fatalf("guarded run failed: %v", err)
	}
	if retries := rep.Metrics.Counters["gl.retries"]; retries == 0 {
		t.Errorf("guarded run saw no retries at rate %g; the fault load proved nothing", rate)
	}
	if rep.Hang != nil {
		t.Errorf("guarded run tripped the watchdog: %s", rep.Hang.Reason)
	}

	raw := FaultPlan(rate)
	raw.Recovery.Disabled = true
	cfg := config.Default(cores)
	cfg.Faults = raw
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Eng.StallLimit = rawStallLimit
	rawRep, err := workload.Run(sys, workload.TestSynthetic(), GL, cores, defaultCycleBudget)
	if err == nil {
		t.Fatalf("unguarded run completed at rate %g; expected a wedged barrier (fingerprint %s)", rate, rawRep.Fingerprint())
	}
}

// TestRandomFaultSchedulesLiveness is the liveness property test: under
// randomly drawn fault plans (random seeds, random per-site rates) on a
// small mesh, every guarded GL run must still complete all its barriers
// within the cycle budget — the escalation ladder may never strand a core.
// Safety (no early release) is asserted by the guard tests in internal/core;
// here workload.Run additionally verifies the logical episode count.
func TestRandomFaultSchedulesLiveness(t *testing.T) {
	plans := 12
	if testing.Short() {
		plans = 4
	}
	rng := rand.New(rand.NewSource(0x600d))
	for i := 0; i < plans; i++ {
		plan := &fault.Plan{
			Seed:     rng.Uint64(),
			Recovery: fault.Recovery{Timeout: 2_000},
		}
		for s := fault.Site(0); s < fault.NumSites; s++ {
			if s == fault.GLStuckLow || s == fault.GLStuckHigh {
				continue // event-only sites carry no rate
			}
			if rng.Intn(2) == 1 {
				plan.Rates[s] = rng.Float64() * 2e-2
			}
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("plan %d invalid: %v", i, err)
		}
		rep, err := runWithPlan(8, workload.TestSynthetic(), GL, plan)
		if err != nil {
			t.Errorf("plan %d (%s): guarded run failed: %v", i, plan, err)
			continue
		}
		if rep.Hang != nil {
			t.Errorf("plan %d (%s): watchdog fired: %s", i, plan, rep.Hang.Reason)
		}
	}
}
