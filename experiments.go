package repro

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Table 1 — CMP baseline configuration.

// Table1 renders the simulated CMP's baseline configuration, matching the
// paper's Table 1.
func Table1(cfg Config) stats.Table {
	t := stats.Table{Header: []string{"Parameter", "Value"}}
	t.AddRow("Number of cores", fmt.Sprintf("%d", cfg.Cores))
	t.AddRow("Core", fmt.Sprintf("%.0fGHz, in-order %d-way model", cfg.ClockGHz, cfg.IssueWidth))
	t.AddRow("Cache line size", fmt.Sprintf("%d Bytes", cfg.LineSize))
	t.AddRow("L1 I/D-Cache", fmt.Sprintf("%dKB, %d-way, %d cycle", cfg.L1Size/1024, cfg.L1Ways, cfg.L1HitLatency))
	t.AddRow("L2 Cache (per core)", fmt.Sprintf("%dKB, %d-way, %d+%d cycles", cfg.L2SizePerCore/1024, cfg.L2Ways, cfg.L2TagLatency, cfg.L2DataLatency))
	t.AddRow("Memory access time", fmt.Sprintf("%d cycles", cfg.MemLatency))
	t.AddRow("Network configuration", fmt.Sprintf("2D-mesh (%dx%d)", cfg.MeshCols, cfg.MeshRows))
	t.AddRow("G-lines per barrier", fmt.Sprintf("%d", cfg.GLLinesPerBarrier()))
	t.AddRow("G-line transmitters/line", fmt.Sprintf("%d", cfg.GLMaxTransmitters))
	return t
}

// ---------------------------------------------------------------------------
// Table 2 — benchmark configuration: #barriers and barrier period.

// Table2Row is one benchmark's Table 2 entry, measured under the given
// baseline barrier.
type Table2Row struct {
	Name     string
	Input    string
	Barriers uint64
	Period   float64
	Cycles   uint64
}

// Table2 measures every benchmark's barrier count and period under the DSW
// baseline (the paper's best software barrier), at the given tier.
func Table2(tier Tier, cores int) ([]Table2Row, error) {
	benches := append([]Workload{workload.SyntheticFor(tier)}, workload.Suite(tier)...)
	rows := make([]Table2Row, 0, len(benches))
	for _, w := range benches {
		rep, err := runFresh(cores, w, DSW)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Name:     w.Name(),
			Input:    w.Input(),
			Barriers: rep.BarrierEpisodes,
			Period:   rep.BarrierPeriod,
			Cycles:   rep.Cycles,
		})
	}
	return rows, nil
}

// RenderTable2 formats Table 2 rows like the paper.
func RenderTable2(rows []Table2Row) stats.Table {
	t := stats.Table{Header: []string{"Benchmark", "Input Size", "#Barriers", "Barrier Period"}}
	for _, r := range rows {
		t.AddRow(r.Name, r.Input, fmt.Sprintf("%d", r.Barriers), fmt.Sprintf("%.0f", r.Period))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 5 — average barrier latency vs core count.

// Fig5Point is the measured per-barrier latency of the three barrier
// implementations at one core count.
type Fig5Point struct {
	Cores   int
	Latency map[BarrierKind]float64
}

// Fig5 sweeps core counts with the synthetic benchmark, reproducing the
// paper's Figure 5 series for CSW, DSW and GL.
func Fig5(tier Tier, coreCounts []int) ([]Fig5Point, error) {
	synth := workload.SyntheticFor(tier)
	var points []Fig5Point
	for _, n := range coreCounts {
		p := Fig5Point{Cores: n, Latency: map[BarrierKind]float64{}}
		for _, kind := range []BarrierKind{CSW, DSW, GL} {
			rep, err := runFresh(n, synth, kind)
			if err != nil {
				return nil, err
			}
			p.Latency[kind] = float64(rep.Cycles) / float64(synth.Barriers(n))
		}
		points = append(points, p)
	}
	return points, nil
}

// RenderFig5 formats the Figure 5 series.
func RenderFig5(points []Fig5Point) stats.Table {
	t := stats.Table{Header: []string{"Cores", "CSW", "DSW", "GL"}}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Cores),
			fmt.Sprintf("%.1f", p.Latency[CSW]),
			fmt.Sprintf("%.1f", p.Latency[DSW]),
			fmt.Sprintf("%.1f", p.Latency[GL]))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figures 6 and 7 — normalized execution time and network traffic, DSW vs GL.

// Comparison holds one benchmark's DSW-vs-GL pair and the derived
// normalized metrics of Figures 6 and 7.
type Comparison struct {
	Name string
	DSW  *Report
	GL   *Report

	// NormTime[kind][region]: execution-time share, normalized so the DSW
	// total is 1.0 (Figure 6's stacked bars).
	NormTime map[BarrierKind][stats.NumRegions]float64
	// NormTraffic[kind][class]: message share, normalized so the DSW
	// total is 1.0 (Figure 7's stacked bars).
	NormTraffic map[BarrierKind][stats.NumMsgClasses]float64

	// TimeReduction and TrafficReduction are GL's relative savings.
	TimeReduction    float64
	TrafficReduction float64
}

// Compare runs one benchmark under DSW and GL on fresh systems and derives
// the Figure 6/7 normalized metrics.
func Compare(w Workload, cores int) (Comparison, error) {
	cmp := Comparison{Name: w.Name()}
	dsw, err := runFresh(cores, w, DSW)
	if err != nil {
		return cmp, err
	}
	gl, err := runFresh(cores, w, GL)
	if err != nil {
		return cmp, err
	}
	cmp.DSW, cmp.GL = dsw, gl

	cmp.NormTime = map[BarrierKind][stats.NumRegions]float64{}
	base := float64(dsw.Breakdown.Total())
	for kind, rep := range map[BarrierKind]*Report{DSW: dsw, GL: gl} {
		var norm [stats.NumRegions]float64
		for r := range rep.Breakdown {
			norm[r] = float64(rep.Breakdown[r]) / base
		}
		cmp.NormTime[kind] = norm
	}
	cmp.NormTraffic = map[BarrierKind][stats.NumMsgClasses]float64{}
	tbase := float64(dsw.Traffic.TotalMessages())
	for kind, rep := range map[BarrierKind]*Report{DSW: dsw, GL: gl} {
		var norm [stats.NumMsgClasses]float64
		for c := range rep.Traffic.Messages {
			norm[c] = float64(rep.Traffic.Messages[c]) / tbase
		}
		cmp.NormTraffic[kind] = norm
	}
	cmp.TimeReduction = stats.Reduction(float64(dsw.Cycles), float64(gl.Cycles))
	cmp.TrafficReduction = stats.Reduction(float64(dsw.Traffic.TotalMessages()), float64(gl.Traffic.TotalMessages()))
	return cmp, nil
}

// Fig6And7 runs the full DSW-vs-GL comparison over the tier's suite at the
// given core count (the paper uses 32), producing both figures' data.
func Fig6And7(tier Tier, cores int) ([]Comparison, error) {
	var cmps []Comparison
	for _, w := range workload.Suite(tier) {
		cmp, err := Compare(w, cores)
		if err != nil {
			return nil, err
		}
		cmps = append(cmps, cmp)
	}
	return cmps, nil
}

// kernelNames identifies the Livermore kernels for the AVG_K/AVG_A split.
var kernelNames = map[string]bool{"KERN2": true, "KERN3": true, "KERN6": true}

// Averages returns the mean time and traffic reductions for the kernels
// (the paper's AVG_K) and the applications (AVG_A).
func Averages(cmps []Comparison) (timeK, timeA, trafK, trafA float64) {
	var nk, na int
	for _, c := range cmps {
		if kernelNames[c.Name] {
			timeK += c.TimeReduction
			trafK += c.TrafficReduction
			nk++
		} else {
			timeA += c.TimeReduction
			trafA += c.TrafficReduction
			na++
		}
	}
	if nk > 0 {
		timeK /= float64(nk)
		trafK /= float64(nk)
	}
	if na > 0 {
		timeA /= float64(na)
		trafA /= float64(na)
	}
	return timeK, timeA, trafK, trafA
}

// RenderFig6 formats the normalized execution-time breakdown.
func RenderFig6(cmps []Comparison) stats.Table {
	t := stats.Table{Header: []string{"Benchmark", "Barrier", "Busy", "Read", "Write", "Lock", "Total", "Reduction"}}
	for _, c := range cmps {
		for _, kind := range []BarrierKind{DSW, GL} {
			n := c.NormTime[kind]
			total := 0.0
			for _, v := range n {
				total += v
			}
			red := ""
			if kind == GL {
				red = stats.Pct(c.TimeReduction)
			}
			t.AddRow(fmt.Sprintf("%s/%s", c.Name, kind),
				fmt.Sprintf("%.3f", n[stats.RegionBarrier]),
				fmt.Sprintf("%.3f", n[stats.RegionBusy]),
				fmt.Sprintf("%.3f", n[stats.RegionRead]),
				fmt.Sprintf("%.3f", n[stats.RegionWrite]),
				fmt.Sprintf("%.3f", n[stats.RegionLock]),
				fmt.Sprintf("%.3f", total), red)
		}
	}
	return t
}

// RenderFig7 formats the normalized traffic breakdown.
func RenderFig7(cmps []Comparison) stats.Table {
	t := stats.Table{Header: []string{"Benchmark", "Request", "Reply", "Coherence", "Total", "Reduction"}}
	for _, c := range cmps {
		for _, kind := range []BarrierKind{DSW, GL} {
			n := c.NormTraffic[kind]
			total := n[stats.ClassRequest] + n[stats.ClassReply] + n[stats.ClassCoherence]
			red := ""
			if kind == GL {
				red = stats.Pct(c.TrafficReduction)
			}
			t.AddRow(fmt.Sprintf("%s/%s", c.Name, kind),
				fmt.Sprintf("%.3f", n[stats.ClassRequest]),
				fmt.Sprintf("%.3f", n[stats.ClassReply]),
				fmt.Sprintf("%.3f", n[stats.ClassCoherence]),
				fmt.Sprintf("%.3f", total), red)
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// Ablations — design-choice studies beyond the paper's figures.

// AblationOverhead sweeps the GL software call overhead, isolating the
// hardware's ideal 4-cycle latency from the library cost (the paper's 13
// vs 4 discussion in Section 4.3.1).
func AblationOverhead(cores int, overheads []uint64, iters int) (stats.Table, error) {
	t := stats.Table{Header: []string{"CallOverhead", "cycles/barrier"}}
	synth := &workload.Synthetic{Iters: iters}
	for _, ov := range overheads {
		cfg := config.Default(cores)
		cfg.GLCallOverhead = ov
		sys, err := sim.New(cfg)
		if err != nil {
			return t, err
		}
		rep, err := workload.Run(sys, synth, GL, cores, defaultCycleBudget)
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("%d", ov), fmt.Sprintf("%.1f", float64(rep.Cycles)/float64(synth.Barriers(cores))))
	}
	return t, nil
}

// AblationHierarchy compares the flat network against forced clustering on
// a mesh that fits both, quantifying the clustering latency cost (the
// future-work scaling scheme).
func AblationHierarchy(iters int) (stats.Table, error) {
	t := stats.Table{Header: []string{"Network", "cycles/barrier"}}
	synth := &workload.Synthetic{Iters: iters}
	// 6x6 fits flat (36 cores, 5 transmitters per line needed <= 6).
	cfg := config.Default(36)
	if cfg.MeshCols != 6 || cfg.MeshRows != 6 {
		return t, fmt.Errorf("expected 6x6 mesh for 36 cores, got %dx%d", cfg.MeshCols, cfg.MeshRows)
	}
	flatSys, err := sim.New(cfg)
	if err != nil {
		return t, err
	}
	rep, err := workload.Run(flatSys, synth, GL, 36, defaultCycleBudget)
	if err != nil {
		return t, err
	}
	t.AddRow("flat 6x6", fmt.Sprintf("%.1f", float64(rep.Cycles)/float64(synth.Barriers(36))))

	hier, err := core.NewHierarchical(6, 6, 3, cfg.GLMaxTransmitters, 1)
	if err != nil {
		return t, err
	}
	hierSys, err := sim.New(cfg)
	if err != nil {
		return t, err
	}
	swapGL(hierSys, hier)
	rep, err = workload.Run(hierSys, synth, GL, 36, defaultCycleBudget)
	if err != nil {
		return t, err
	}
	t.AddRow("2x2 clusters of 3x3", fmt.Sprintf("%.1f", float64(rep.Cycles)/float64(synth.Barriers(36))))
	return t, nil
}

// AblationTDM measures time-multiplexed barrier contexts: one physical set
// of G-lines shared by k contexts, with the synthetic loop running on
// context 0. Latency grows with the TDM period. The mesh must fit a flat
// network (TDM shares one physical line set).
func AblationTDM(cores int, contexts []int, iters int) (stats.Table, error) {
	t := stats.Table{Header: []string{"TDM contexts", "cycles/barrier"}}
	synth := &workload.Synthetic{Iters: iters}
	cfg := config.Default(cores)
	if !cfg.GLFitsFlat() {
		return t, fmt.Errorf("TDM ablation needs a flat-capable mesh; %dx%d exceeds the limit (use <=49 cores)", cfg.MeshCols, cfg.MeshRows)
	}
	for _, k := range contexts {
		net, err := core.NewNetwork(core.NetworkConfig{
			Cols: cfg.MeshCols, Rows: cfg.MeshRows,
			MaxTransmitters: cfg.GLMaxTransmitters,
			Contexts:        k,
			Mux:             core.MuxTime,
		})
		if err != nil {
			return t, err
		}
		sys, err := sim.New(cfg)
		if err != nil {
			return t, err
		}
		swapGL(sys, net)
		rep, err := workload.Run(sys, synth, GL, cores, defaultCycleBudget)
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.1f", float64(rep.Cycles)/float64(synth.Barriers(cores))))
	}
	return t, nil
}

// swapGL replaces a system's barrier network before any program launches.
func swapGL(s *sim.System, gl sim.GLNetwork) {
	s.ReplaceGL(gl)
}

// AblationSCSMA quantifies the paper's key sensing technique: with S-CSMA
// a master counts all simultaneous arrivals in one cycle; without it
// (serialized receiver) arrivals queue at the masters.
func AblationSCSMA(iters int) (stats.Table, error) {
	t := stats.Table{Header: []string{"Signaling", "cycles/barrier"}}
	synth := &workload.Synthetic{Iters: iters}
	cfg := config.Default(49) // 7x7: the largest flat mesh, 6 slaves/line
	for _, serial := range []bool{false, true} {
		net, err := core.NewNetwork(core.NetworkConfig{
			Cols: cfg.MeshCols, Rows: cfg.MeshRows,
			MaxTransmitters: cfg.GLMaxTransmitters,
			Contexts:        1,
			SerialSignaling: serial,
		})
		if err != nil {
			return t, err
		}
		sys, err := sim.New(cfg)
		if err != nil {
			return t, err
		}
		sys.ReplaceGL(net)
		rep, err := workload.Run(sys, synth, GL, 49, defaultCycleBudget)
		if err != nil {
			return t, err
		}
		label := "S-CSMA (paper)"
		if serial {
			label = "serialized receiver"
		}
		t.AddRow(label, fmt.Sprintf("%.1f", float64(rep.Cycles)/float64(synth.Barriers(49))))
	}
	return t, nil
}

// EnergyRow is one benchmark's interconnect-energy comparison (the paper's
// future-work power study): total NoC + G-line energy under DSW vs GL.
type EnergyRow struct {
	Name            string
	DSWPJ, GLPJ     float64
	GLofWhichLines  float64
	EnergyReduction float64
}

// EnergyStudy measures interconnect energy for every benchmark of the
// tier's suite under both barrier implementations.
func EnergyStudy(tier Tier, cores int) ([]EnergyRow, error) {
	var rows []EnergyRow
	for _, w := range workload.Suite(tier) {
		dsw, err := runFresh(cores, w, DSW)
		if err != nil {
			return nil, err
		}
		gl, err := runFresh(cores, w, GL)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EnergyRow{
			Name:            w.Name(),
			DSWPJ:           dsw.Energy.Total(),
			GLPJ:            gl.Energy.Total(),
			GLofWhichLines:  gl.Energy.GLinePJ,
			EnergyReduction: stats.Reduction(dsw.Energy.Total(), gl.Energy.Total()),
		})
	}
	return rows, nil
}

// RenderEnergy formats the energy study.
func RenderEnergy(rows []EnergyRow) stats.Table {
	t := stats.Table{Header: []string{"Benchmark", "DSW (nJ)", "GL (nJ)", "G-line part (nJ)", "Reduction"}}
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%.1f", r.DSWPJ/1000),
			fmt.Sprintf("%.1f", r.GLPJ/1000),
			fmt.Sprintf("%.4f", r.GLofWhichLines/1000),
			stats.Pct(r.EnergyReduction))
	}
	return t
}

// AblationRouterDepth sweeps the mesh router pipeline depth: software
// barriers ride the data NoC and slow down with it, while the dedicated
// G-line barrier is untouched — the core argument for a dedicated network.
func AblationRouterDepth(cores int, depths []uint64, iters int) (stats.Table, error) {
	t := stats.Table{Header: []string{"RouterStages", "DSW", "GL"}}
	synth := &workload.Synthetic{Iters: iters}
	for _, d := range depths {
		var row [2]float64
		for i, kind := range []BarrierKind{DSW, GL} {
			cfg := config.Default(cores)
			cfg.RouterLatency = d
			sys, err := sim.New(cfg)
			if err != nil {
				return t, err
			}
			rep, err := workload.Run(sys, synth, kind, cores, defaultCycleBudget)
			if err != nil {
				return t, err
			}
			row[i] = float64(rep.Cycles) / float64(synth.Barriers(cores))
		}
		t.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%.1f", row[0]), fmt.Sprintf("%.1f", row[1]))
	}
	return t, nil
}

// AblationProtocol compares the calibrated 4-hop home-relay ownership
// transfer against SGI-Origin-style 3-hop direct forwarding on the access
// pattern it targets: a dirty line migrating between two distant writers
// (measured at the protocol level, back-to-back transfers with nothing
// else in flight). Barrier algorithms barely exercise owner-to-owner
// writes — their hand-offs are read-forwards and upgrades — so this is a
// substrate ablation, not a barrier result.
func AblationProtocol(cores int, transfers int) (stats.Table, error) {
	t := stats.Table{Header: []string{"Ownership transfer", "cycles/transfer"}}
	for _, threeHop := range []bool{false, true} {
		cfg := config.Default(cores)
		cfg.ThreeHopOwnership = threeHop
		sys, err := sim.New(cfg)
		if err != nil {
			return t, err
		}
		// Writers at opposite mesh corners, with the line homed midway so
		// both protocols pay full-distance indirections.
		a, b := 0, cores-1
		addr := sys.Alloc.Line()
		for sys.Prot.HomeOf(addr) != cores/2 {
			addr = sys.Alloc.Line()
		}
		left := transfers
		var ping func(tile int)
		ping = func(tile int) {
			if left == 0 {
				return
			}
			left--
			next := a + b - tile
			sys.Prot.L1(tile).Access(coherence.Write, addr, 0, uint64(left), true,
				func(uint64) { ping(next) })
		}
		ping(a)
		if _, err := sys.Eng.Run(uint64(transfers)*100_000, func() bool { return left == 0 }); err != nil {
			return t, err
		}
		label := "4-hop via home (default)"
		if threeHop {
			label = "3-hop direct"
		}
		t.AddRow(label, fmt.Sprintf("%.1f", float64(sys.Eng.Now())/float64(transfers)))
	}
	return t, nil
}
