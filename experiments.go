package repro

import (
	"errors"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Every experiment in this file is a grid of independent simulation runs.
// The grids execute through internal/sweep: cells fan out across opt.Jobs
// worker goroutines, results return in deterministic submission order, and
// a failing cell is reported in its table row instead of aborting the
// sweep. Experiments return their rendered data together with the
// aggregated cell errors (nil when every cell succeeded).

// ---------------------------------------------------------------------------
// Table 1 — CMP baseline configuration.

// Table1 renders the simulated CMP's baseline configuration, matching the
// paper's Table 1.
func Table1(cfg Config) stats.Table {
	t := stats.Table{Header: []string{"Parameter", "Value"}}
	t.AddRow("Number of cores", fmt.Sprintf("%d", cfg.Cores))
	t.AddRow("Core", fmt.Sprintf("%.0fGHz, in-order %d-way model", cfg.ClockGHz, cfg.IssueWidth))
	t.AddRow("Cache line size", fmt.Sprintf("%d Bytes", cfg.LineSize))
	t.AddRow("L1 I/D-Cache", fmt.Sprintf("%dKB, %d-way, %d cycle", cfg.L1Size/1024, cfg.L1Ways, cfg.L1HitLatency))
	t.AddRow("L2 Cache (per core)", fmt.Sprintf("%dKB, %d-way, %d+%d cycles", cfg.L2SizePerCore/1024, cfg.L2Ways, cfg.L2TagLatency, cfg.L2DataLatency))
	t.AddRow("Memory access time", fmt.Sprintf("%d cycles", cfg.MemLatency))
	t.AddRow("Network configuration", fmt.Sprintf("2D-mesh (%dx%d)", cfg.MeshCols, cfg.MeshRows))
	t.AddRow("G-lines per barrier", fmt.Sprintf("%d", cfg.GLLinesPerBarrier()))
	t.AddRow("G-line transmitters/line", fmt.Sprintf("%d", cfg.GLMaxTransmitters))
	return t
}

// ---------------------------------------------------------------------------
// Table 2 — benchmark configuration: #barriers and barrier period.

// Table2Row is one benchmark's Table 2 entry, measured under the given
// baseline barrier. A failed run leaves the metrics zero and sets Err.
type Table2Row struct {
	Name     string
	Input    string
	Barriers uint64
	Period   float64
	Cycles   uint64

	// Report is the raw run result (nil when the run failed).
	Report *Report
	// Err is the run's failure, if any.
	Err error
}

// Table2 measures every benchmark's barrier count and period under the DSW
// baseline (the paper's best software barrier), at the given tier. The
// returned error aggregates failed cells; rows cover every benchmark
// either way.
func Table2(tier Tier, cores int, opt SweepOptions) ([]Table2Row, error) {
	benches := append([]Workload{workload.SyntheticFor(tier)}, workload.Suite(tier)...)
	specs := make([]sweep.Spec, len(benches))
	for i, w := range benches {
		specs[i] = benchSpec(cores, w, DSW)
	}
	results := sweep.Run(opt, specs)
	rows := make([]Table2Row, len(benches))
	for i, w := range benches {
		rows[i] = Table2Row{Name: w.Name(), Input: w.Input(), Err: results[i].Err}
		if results[i].Err != nil {
			continue
		}
		rep := results[i].Report
		rows[i].Report = rep
		rows[i].Barriers = rep.BarrierEpisodes
		rows[i].Period = rep.BarrierPeriod
		rows[i].Cycles = rep.Cycles
	}
	return rows, sweep.Errs(results)
}

// RenderTable2 formats Table 2 rows like the paper.
func RenderTable2(rows []Table2Row) stats.Table {
	t := stats.Table{Header: []string{"Benchmark", "Input Size", "#Barriers", "Barrier Period"}}
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Name, r.Input, stats.ErrCell(r.Err), "")
			continue
		}
		t.AddRow(r.Name, r.Input, fmt.Sprintf("%d", r.Barriers), fmt.Sprintf("%.0f", r.Period))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 5 — average barrier latency vs core count.

// fig5Kinds is the series order of the paper's Figure 5.
var fig5Kinds = []BarrierKind{CSW, DSW, GL}

// Fig5Point is the measured per-barrier latency of the three barrier
// implementations at one core count.
type Fig5Point struct {
	Cores   int
	Latency map[BarrierKind]float64

	// Reports holds the raw run results; Errs the per-kind failures.
	Reports map[BarrierKind]*Report
	Errs    map[BarrierKind]error
}

// Fig5 sweeps core counts with the synthetic benchmark, reproducing the
// paper's Figure 5 series for CSW, DSW and GL. All cells of the
// (cores × kind) grid run through one sweep.
func Fig5(tier Tier, coreCounts []int, opt SweepOptions) ([]Fig5Point, error) {
	var specs []sweep.Spec
	for _, n := range coreCounts {
		for _, kind := range fig5Kinds {
			specs = append(specs, benchSpec(n, workload.SyntheticFor(tier), kind))
		}
	}
	results := sweep.Run(opt, specs)
	points := make([]Fig5Point, 0, len(coreCounts))
	i := 0
	for _, n := range coreCounts {
		p := Fig5Point{
			Cores:   n,
			Latency: map[BarrierKind]float64{},
			Reports: map[BarrierKind]*Report{},
			Errs:    map[BarrierKind]error{},
		}
		barriers := workload.SyntheticFor(tier).Barriers(n)
		for _, kind := range fig5Kinds {
			res := results[i]
			i++
			if res.Err != nil {
				p.Errs[kind] = res.Err
				continue
			}
			p.Reports[kind] = res.Report
			p.Latency[kind] = float64(res.Report.Cycles) / float64(barriers)
		}
		points = append(points, p)
	}
	return points, sweep.Errs(results)
}

// RenderFig5 formats the Figure 5 series.
func RenderFig5(points []Fig5Point) stats.Table {
	t := stats.Table{Header: []string{"Cores", "CSW", "DSW", "GL"}}
	for _, p := range points {
		cells := []string{fmt.Sprintf("%d", p.Cores)}
		for _, kind := range fig5Kinds {
			if err := p.Errs[kind]; err != nil {
				cells = append(cells, stats.ErrCell(err))
				continue
			}
			cells = append(cells, fmt.Sprintf("%.1f", p.Latency[kind]))
		}
		t.AddRow(cells...)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figures 6 and 7 — normalized execution time and network traffic, DSW vs GL.

// Comparison holds one benchmark's DSW-vs-GL pair and the derived
// normalized metrics of Figures 6 and 7. A failed run on either side
// leaves the metrics zero and sets Err.
type Comparison struct {
	Name string
	DSW  *Report
	GL   *Report
	Err  error

	// NormTime[kind][region]: execution-time share, normalized so the DSW
	// total is 1.0 (Figure 6's stacked bars).
	NormTime map[BarrierKind][stats.NumRegions]float64
	// NormTraffic[kind][class]: message share, normalized so the DSW
	// total is 1.0 (Figure 7's stacked bars).
	NormTraffic map[BarrierKind][stats.NumMsgClasses]float64

	// TimeReduction and TrafficReduction are GL's relative savings.
	TimeReduction    float64
	TrafficReduction float64
}

// newComparison derives the Figure 6/7 normalized metrics from a finished
// DSW/GL pair.
func newComparison(name string, dsw, gl *Report) Comparison {
	cmp := Comparison{Name: name, DSW: dsw, GL: gl}
	// Iterate the kinds in fixed order, not over a map literal: ranging a
	// map here is needless nondeterminism (and the glvet detrand analyzer's
	// first scalp).
	kindReports := []struct {
		kind BarrierKind
		rep  *Report
	}{{DSW, dsw}, {GL, gl}}
	cmp.NormTime = map[BarrierKind][stats.NumRegions]float64{}
	base := float64(dsw.Breakdown.Total())
	for _, kr := range kindReports {
		var norm [stats.NumRegions]float64
		for r := range kr.rep.Breakdown {
			norm[r] = float64(kr.rep.Breakdown[r]) / base
		}
		cmp.NormTime[kr.kind] = norm
	}
	cmp.NormTraffic = map[BarrierKind][stats.NumMsgClasses]float64{}
	tbase := float64(dsw.Traffic.TotalMessages())
	for _, kr := range kindReports {
		var norm [stats.NumMsgClasses]float64
		for c := range kr.rep.Traffic.Messages {
			norm[c] = float64(kr.rep.Traffic.Messages[c]) / tbase
		}
		cmp.NormTraffic[kr.kind] = norm
	}
	cmp.TimeReduction = stats.Reduction(float64(dsw.Cycles), float64(gl.Cycles))
	cmp.TrafficReduction = stats.Reduction(float64(dsw.Traffic.TotalMessages()), float64(gl.Traffic.TotalMessages()))
	return cmp
}

// compareAll runs every benchmark under DSW and GL as one flat sweep and
// assembles the per-benchmark comparisons.
func compareAll(ws []Workload, cores int, opt SweepOptions) ([]Comparison, error) {
	specs := make([]sweep.Spec, 0, 2*len(ws))
	for _, w := range ws {
		specs = append(specs, benchSpec(cores, w, DSW), benchSpec(cores, w, GL))
	}
	results := sweep.Run(opt, specs)
	cmps := make([]Comparison, len(ws))
	for i, w := range ws {
		d, g := results[2*i], results[2*i+1]
		if err := errors.Join(d.Err, g.Err); err != nil {
			cmps[i] = Comparison{Name: w.Name(), Err: err}
			continue
		}
		cmps[i] = newComparison(w.Name(), d.Report, g.Report)
	}
	return cmps, sweep.Errs(results)
}

// Compare runs one benchmark under DSW and GL on fresh systems and derives
// the Figure 6/7 normalized metrics.
func Compare(w Workload, cores int, opt SweepOptions) (Comparison, error) {
	cmps, err := compareAll([]Workload{w}, cores, opt)
	return cmps[0], err
}

// Fig6And7 runs the full DSW-vs-GL comparison over the tier's suite at the
// given core count (the paper uses 32), producing both figures' data.
func Fig6And7(tier Tier, cores int, opt SweepOptions) ([]Comparison, error) {
	return compareAll(workload.Suite(tier), cores, opt)
}

// kernelNames identifies the Livermore kernels for the AVG_K/AVG_A split.
var kernelNames = map[string]bool{"KERN2": true, "KERN3": true, "KERN6": true}

// Averages returns the mean time and traffic reductions for the kernels
// (the paper's AVG_K) and the applications (AVG_A), skipping failed
// comparisons.
func Averages(cmps []Comparison) (timeK, timeA, trafK, trafA float64) {
	var nk, na int
	for _, c := range cmps {
		if c.Err != nil {
			continue
		}
		if kernelNames[c.Name] {
			timeK += c.TimeReduction
			trafK += c.TrafficReduction
			nk++
		} else {
			timeA += c.TimeReduction
			trafA += c.TrafficReduction
			na++
		}
	}
	if nk > 0 {
		timeK /= float64(nk)
		trafK /= float64(nk)
	}
	if na > 0 {
		timeA /= float64(na)
		trafA /= float64(na)
	}
	return timeK, timeA, trafK, trafA
}

// RenderFig6 formats the normalized execution-time breakdown.
func RenderFig6(cmps []Comparison) stats.Table {
	t := stats.Table{Header: []string{"Benchmark", "Barrier", "Busy", "Read", "Write", "Lock", "Total", "Reduction"}}
	for _, c := range cmps {
		if c.Err != nil {
			t.AddRow(c.Name, stats.ErrCell(c.Err), "", "", "", "", "", "")
			continue
		}
		for _, kind := range []BarrierKind{DSW, GL} {
			n := c.NormTime[kind]
			total := 0.0
			for _, v := range n {
				total += v
			}
			red := ""
			if kind == GL {
				red = stats.Pct(c.TimeReduction)
			}
			t.AddRow(fmt.Sprintf("%s/%s", c.Name, kind),
				fmt.Sprintf("%.3f", n[stats.RegionBarrier]),
				fmt.Sprintf("%.3f", n[stats.RegionBusy]),
				fmt.Sprintf("%.3f", n[stats.RegionRead]),
				fmt.Sprintf("%.3f", n[stats.RegionWrite]),
				fmt.Sprintf("%.3f", n[stats.RegionLock]),
				fmt.Sprintf("%.3f", total), red)
		}
	}
	return t
}

// RenderFig7 formats the normalized traffic breakdown.
func RenderFig7(cmps []Comparison) stats.Table {
	t := stats.Table{Header: []string{"Benchmark", "Request", "Reply", "Coherence", "Total", "Reduction"}}
	for _, c := range cmps {
		if c.Err != nil {
			t.AddRow(c.Name, stats.ErrCell(c.Err), "", "", "", "")
			continue
		}
		for _, kind := range []BarrierKind{DSW, GL} {
			n := c.NormTraffic[kind]
			total := n[stats.ClassRequest] + n[stats.ClassReply] + n[stats.ClassCoherence]
			red := ""
			if kind == GL {
				red = stats.Pct(c.TrafficReduction)
			}
			t.AddRow(fmt.Sprintf("%s/%s", c.Name, kind),
				fmt.Sprintf("%.3f", n[stats.ClassRequest]),
				fmt.Sprintf("%.3f", n[stats.ClassReply]),
				fmt.Sprintf("%.3f", n[stats.ClassCoherence]),
				fmt.Sprintf("%.3f", total), red)
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// Ablations — design-choice studies beyond the paper's figures.

// cellLatency renders one ablation cell: cycles/barrier, or the error.
func cellLatency(res sweep.Result, barriers uint64) string {
	if res.Err != nil {
		return stats.ErrCell(res.Err)
	}
	return fmt.Sprintf("%.1f", float64(res.Report.Cycles)/float64(barriers))
}

// AblationOverhead sweeps the GL software call overhead, isolating the
// hardware's ideal 4-cycle latency from the library cost (the paper's 13
// vs 4 discussion in Section 4.3.1).
func AblationOverhead(cores int, overheads []uint64, iters int, opt SweepOptions) (stats.Table, error) {
	t := stats.Table{Header: []string{"CallOverhead", "cycles/barrier"}}
	specs := make([]sweep.Spec, len(overheads))
	for i, ov := range overheads {
		ov := ov
		specs[i] = sweep.Spec{
			Label: fmt.Sprintf("overhead/%d", ov),
			Run: func() (*sim.Report, error) {
				cfg := config.Default(cores)
				cfg.GLCallOverhead = ov
				sys, err := sim.New(cfg)
				if err != nil {
					return nil, err
				}
				return workload.Run(sys, &workload.Synthetic{Iters: iters}, GL, cores, defaultCycleBudget)
			},
		}
	}
	results := sweep.Run(opt, specs)
	barriers := (&workload.Synthetic{Iters: iters}).Barriers(cores)
	for i, ov := range overheads {
		t.AddRow(fmt.Sprintf("%d", ov), cellLatency(results[i], barriers))
	}
	return t, sweep.Errs(results)
}

// AblationHierarchy compares the flat network against forced clustering on
// a mesh that fits both, quantifying the clustering latency cost (the
// future-work scaling scheme).
func AblationHierarchy(iters int, opt SweepOptions) (stats.Table, error) {
	t := stats.Table{Header: []string{"Network", "cycles/barrier"}}
	// 6x6 fits flat (36 cores, 5 transmitters per line needed <= 6).
	cfg := config.Default(36)
	if cfg.MeshCols != 6 || cfg.MeshRows != 6 {
		return t, fmt.Errorf("expected 6x6 mesh for 36 cores, got %dx%d", cfg.MeshCols, cfg.MeshRows)
	}
	specs := []sweep.Spec{
		{Label: "hierarchy/flat", Run: func() (*sim.Report, error) {
			sys, err := sim.New(cfg)
			if err != nil {
				return nil, err
			}
			return workload.Run(sys, &workload.Synthetic{Iters: iters}, GL, 36, defaultCycleBudget)
		}},
		{Label: "hierarchy/clustered", Run: func() (*sim.Report, error) {
			hier, err := core.NewHierarchical(6, 6, 3, cfg.GLMaxTransmitters, 1)
			if err != nil {
				return nil, err
			}
			sys, err := sim.New(cfg)
			if err != nil {
				return nil, err
			}
			swapGL(sys, hier)
			return workload.Run(sys, &workload.Synthetic{Iters: iters}, GL, 36, defaultCycleBudget)
		}},
	}
	results := sweep.Run(opt, specs)
	barriers := (&workload.Synthetic{Iters: iters}).Barriers(36)
	t.AddRow("flat 6x6", cellLatency(results[0], barriers))
	t.AddRow("2x2 clusters of 3x3", cellLatency(results[1], barriers))
	return t, sweep.Errs(results)
}

// AblationTDM measures time-multiplexed barrier contexts: one physical set
// of G-lines shared by k contexts, with the synthetic loop running on
// context 0. Latency grows with the TDM period. The mesh must fit a flat
// network (TDM shares one physical line set).
func AblationTDM(cores int, contexts []int, iters int, opt SweepOptions) (stats.Table, error) {
	t := stats.Table{Header: []string{"TDM contexts", "cycles/barrier"}}
	cfg := config.Default(cores)
	if !cfg.GLFitsFlat() {
		return t, fmt.Errorf("TDM ablation needs a flat-capable mesh; %dx%d exceeds the limit (use <=49 cores)", cfg.MeshCols, cfg.MeshRows)
	}
	specs := make([]sweep.Spec, len(contexts))
	for i, k := range contexts {
		k := k
		specs[i] = sweep.Spec{
			Label: fmt.Sprintf("tdm/%d", k),
			Run: func() (*sim.Report, error) {
				net, err := core.NewNetwork(core.NetworkConfig{
					Cols: cfg.MeshCols, Rows: cfg.MeshRows,
					MaxTransmitters: cfg.GLMaxTransmitters,
					Contexts:        k,
					Mux:             core.MuxTime,
				})
				if err != nil {
					return nil, err
				}
				sys, err := sim.New(cfg)
				if err != nil {
					return nil, err
				}
				swapGL(sys, net)
				return workload.Run(sys, &workload.Synthetic{Iters: iters}, GL, cores, defaultCycleBudget)
			},
		}
	}
	results := sweep.Run(opt, specs)
	barriers := (&workload.Synthetic{Iters: iters}).Barriers(cores)
	for i, k := range contexts {
		t.AddRow(fmt.Sprintf("%d", k), cellLatency(results[i], barriers))
	}
	return t, sweep.Errs(results)
}

// swapGL replaces a system's barrier network before any program launches.
func swapGL(s *sim.System, gl sim.GLNetwork) {
	s.ReplaceGL(gl)
}

// AblationSCSMA quantifies the paper's key sensing technique: with S-CSMA
// a master counts all simultaneous arrivals in one cycle; without it
// (serialized receiver) arrivals queue at the masters.
func AblationSCSMA(iters int, opt SweepOptions) (stats.Table, error) {
	t := stats.Table{Header: []string{"Signaling", "cycles/barrier"}}
	cfg := config.Default(49) // 7x7: the largest flat mesh, 6 slaves/line
	modes := []bool{false, true}
	specs := make([]sweep.Spec, len(modes))
	for i, serial := range modes {
		serial := serial
		specs[i] = sweep.Spec{
			Label: fmt.Sprintf("scsma/serial=%v", serial),
			Run: func() (*sim.Report, error) {
				net, err := core.NewNetwork(core.NetworkConfig{
					Cols: cfg.MeshCols, Rows: cfg.MeshRows,
					MaxTransmitters: cfg.GLMaxTransmitters,
					Contexts:        1,
					SerialSignaling: serial,
				})
				if err != nil {
					return nil, err
				}
				sys, err := sim.New(cfg)
				if err != nil {
					return nil, err
				}
				sys.ReplaceGL(net)
				return workload.Run(sys, &workload.Synthetic{Iters: iters}, GL, 49, defaultCycleBudget)
			},
		}
	}
	results := sweep.Run(opt, specs)
	barriers := (&workload.Synthetic{Iters: iters}).Barriers(49)
	labels := []string{"S-CSMA (paper)", "serialized receiver"}
	for i := range modes {
		t.AddRow(labels[i], cellLatency(results[i], barriers))
	}
	return t, sweep.Errs(results)
}

// EnergyRow is one benchmark's interconnect-energy comparison (the paper's
// future-work power study): total NoC + G-line energy under DSW vs GL.
type EnergyRow struct {
	Name            string
	DSWPJ, GLPJ     float64
	GLofWhichLines  float64
	EnergyReduction float64

	// DSW and GL are the raw run results; Err the pair's failure, if any.
	DSW, GL *Report
	Err     error
}

// EnergyStudy measures interconnect energy for every benchmark of the
// tier's suite under both barrier implementations.
func EnergyStudy(tier Tier, cores int, opt SweepOptions) ([]EnergyRow, error) {
	cmps, err := compareAll(workload.Suite(tier), cores, opt)
	rows := make([]EnergyRow, len(cmps))
	for i, c := range cmps {
		rows[i] = EnergyRow{Name: c.Name, Err: c.Err}
		if c.Err != nil {
			continue
		}
		rows[i].DSW, rows[i].GL = c.DSW, c.GL
		rows[i].DSWPJ = c.DSW.Energy.Total()
		rows[i].GLPJ = c.GL.Energy.Total()
		rows[i].GLofWhichLines = c.GL.Energy.GLinePJ
		rows[i].EnergyReduction = stats.Reduction(c.DSW.Energy.Total(), c.GL.Energy.Total())
	}
	return rows, err
}

// RenderEnergy formats the energy study.
func RenderEnergy(rows []EnergyRow) stats.Table {
	t := stats.Table{Header: []string{"Benchmark", "DSW (nJ)", "GL (nJ)", "G-line part (nJ)", "Reduction"}}
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Name, stats.ErrCell(r.Err), "", "", "")
			continue
		}
		t.AddRow(r.Name,
			fmt.Sprintf("%.1f", r.DSWPJ/1000),
			fmt.Sprintf("%.1f", r.GLPJ/1000),
			fmt.Sprintf("%.4f", r.GLofWhichLines/1000),
			stats.Pct(r.EnergyReduction))
	}
	return t
}

// AblationRouterDepth sweeps the mesh router pipeline depth: software
// barriers ride the data NoC and slow down with it, while the dedicated
// G-line barrier is untouched — the core argument for a dedicated network.
func AblationRouterDepth(cores int, depths []uint64, iters int, opt SweepOptions) (stats.Table, error) {
	t := stats.Table{Header: []string{"RouterStages", "DSW", "GL"}}
	kinds := []BarrierKind{DSW, GL}
	var specs []sweep.Spec
	for _, d := range depths {
		d := d
		for _, kind := range kinds {
			kind := kind
			specs = append(specs, sweep.Spec{
				Label: fmt.Sprintf("router/%d/%s", d, kind),
				Run: func() (*sim.Report, error) {
					cfg := config.Default(cores)
					cfg.RouterLatency = d
					sys, err := sim.New(cfg)
					if err != nil {
						return nil, err
					}
					return workload.Run(sys, &workload.Synthetic{Iters: iters}, kind, cores, defaultCycleBudget)
				},
			})
		}
	}
	results := sweep.Run(opt, specs)
	barriers := (&workload.Synthetic{Iters: iters}).Barriers(cores)
	for i, d := range depths {
		t.AddRow(fmt.Sprintf("%d", d),
			cellLatency(results[2*i], barriers),
			cellLatency(results[2*i+1], barriers))
	}
	return t, sweep.Errs(results)
}

// AblationProtocol compares the calibrated 4-hop home-relay ownership
// transfer against SGI-Origin-style 3-hop direct forwarding on the access
// pattern it targets: a dirty line migrating between two distant writers
// (measured at the protocol level, back-to-back transfers with nothing
// else in flight). Barrier algorithms barely exercise owner-to-owner
// writes — their hand-offs are read-forwards and upgrades — so this is a
// substrate ablation, not a barrier result.
func AblationProtocol(cores int, transfers int, opt SweepOptions) (stats.Table, error) {
	t := stats.Table{Header: []string{"Ownership transfer", "cycles/transfer"}}
	modes := []bool{false, true}
	specs := make([]sweep.Spec, len(modes))
	for i, threeHop := range modes {
		threeHop := threeHop
		specs[i] = sweep.Spec{
			Label: fmt.Sprintf("protocol/threeHop=%v", threeHop),
			Run: func() (*sim.Report, error) {
				cfg := config.Default(cores)
				cfg.ThreeHopOwnership = threeHop
				sys, err := sim.New(cfg)
				if err != nil {
					return nil, err
				}
				// Writers at opposite mesh corners, with the line homed
				// midway so both protocols pay full-distance indirections.
				a, b := 0, cores-1
				addr := sys.Alloc.Line()
				for sys.Prot.HomeOf(addr) != cores/2 {
					addr = sys.Alloc.Line()
				}
				left := transfers
				var ping func(tile int)
				ping = func(tile int) {
					if left == 0 {
						return
					}
					left--
					next := a + b - tile
					sys.Prot.L1(tile).Access(coherence.Write, addr, 0, uint64(left), true,
						func(uint64) { ping(next) })
				}
				ping(a)
				end, err := sys.Eng.Run(uint64(transfers)*100_000, func() bool { return left == 0 })
				if err != nil {
					return nil, err
				}
				return &sim.Report{Cycles: end, Traffic: sys.Prot.Traffic()}, nil
			},
		}
	}
	results := sweep.Run(opt, specs)
	labels := []string{"4-hop via home (default)", "3-hop direct"}
	for i := range modes {
		t.AddRow(labels[i], cellLatency(results[i], uint64(transfers)))
	}
	return t, sweep.Errs(results)
}
