package repro

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTraceAttributionReconciles is the timeline's accounting gate: on a
// traced GL run, the per-episode attribution table must reconcile exactly
// with the barrier.gl.latency histogram (same sample count, same cycle
// sum), every episode's phases must tile [Start, End] with no gap or
// overlap, the Chrome export must validate, and — the observation-only
// contract — the traced run's fingerprint must equal the untraced run's.
func TestTraceAttributionReconciles(t *testing.T) {
	const cores = 16
	w := workload.TestSynthetic()

	plain, err := runFresh(cores, w, GL)
	if err != nil {
		t.Fatalf("untraced run: %v", err)
	}

	sys, err := sim.New(config.Default(cores))
	if err != nil {
		t.Fatal(err)
	}
	tl := sys.AttachTimeline(1 << 20)
	rep, err := workload.Run(sys, w, GL, cores, defaultCycleBudget)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	if got, want := rep.Fingerprint(), plain.Fingerprint(); got != want {
		t.Fatalf("tracing changed behavior: fingerprint %s != untraced %s", got, want)
	}
	if len(rep.Episodes) == 0 {
		t.Fatal("traced GL run produced no episode attributions")
	}

	var latSum uint64
	for i, ep := range rep.Episodes {
		phases := ep.ArriveWait + ep.Retry + ep.Gather + ep.Release + ep.Fallback
		if phases != ep.End-ep.Start {
			t.Errorf("episode %d: phases sum %d != span %d", i, phases, ep.End-ep.Start)
		}
		if lat := ep.Retry + ep.Gather + ep.Release + ep.Fallback; lat != ep.Latency {
			t.Errorf("episode %d: post-arrival phases %d != latency %d", i, lat, ep.Latency)
		}
		if ep.ViaFallback {
			t.Errorf("episode %d: fault-free run attributed via_fallback", i)
		}
		latSum += ep.Latency
	}
	h, ok := rep.Metrics.Histograms["barrier.gl.latency"]
	if !ok {
		t.Fatal("no barrier.gl.latency histogram")
	}
	if uint64(len(rep.Episodes)) != h.Count {
		t.Errorf("attribution count %d != histogram count %d", len(rep.Episodes), h.Count)
	}
	if latSum != h.Sum {
		t.Errorf("attribution latency sum %d != histogram sum %d", latSum, h.Sum)
	}

	// The same reconciliation must hold through the Report.JSON export.
	raw, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var doc struct {
		GLEpisodes []struct {
			Latency uint64 `json:"latency"`
		} `json:"gl_episodes"`
		Metrics struct {
			Histograms map[string]struct {
				Count uint64 `json:"count"`
				Sum   uint64 `json:"sum"`
			} `json:"histograms"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	var jsonSum uint64
	for _, ep := range doc.GLEpisodes {
		jsonSum += ep.Latency
	}
	jh := doc.Metrics.Histograms["barrier.gl.latency"]
	if jsonSum != jh.Sum || uint64(len(doc.GLEpisodes)) != jh.Count {
		t.Errorf("JSON gl_episodes (n=%d, sum=%d) do not reconcile with histogram (count=%d, sum=%d)",
			len(doc.GLEpisodes), jsonSum, jh.Count, jh.Sum)
	}

	// The exported Chrome trace validates and carries one episode span per
	// attribution row (the ring was sized to drop nothing).
	if tl.Dropped() != 0 {
		t.Fatalf("timeline dropped %d events; size the test capacity up", tl.Dropped())
	}
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf, nil); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
	var cf struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &cf); err != nil {
		t.Fatalf("unmarshal chrome: %v", err)
	}
	episodeSpans := 0
	for _, ev := range cf.TraceEvents {
		if ev.Name == "barrier.episode" && ev.Phase == "X" {
			episodeSpans++
		}
	}
	if episodeSpans != len(rep.Episodes) {
		t.Errorf("chrome trace has %d barrier.episode spans, attribution table %d rows", episodeSpans, len(rep.Episodes))
	}
}

// TestReportProvenanceAndConfigEcho checks the report's self-description:
// build info from the running binary and the resolved Config echoed in
// snake_case.
func TestReportProvenanceAndConfigEcho(t *testing.T) {
	const cores = 8
	rep, err := runFresh(cores, workload.TestSynthetic(), GL)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Provenance struct {
			GoVersion string `json:"go_version"`
			Module    string `json:"module"`
		} `json:"provenance"`
		Config *struct {
			Cores      int `json:"cores"`
			MeshCols   int `json:"mesh_cols"`
			GLContexts int `json:"gl_contexts"`
		} `json:"config"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Provenance.GoVersion == "" {
		t.Error("provenance.go_version is empty")
	}
	if doc.Provenance.Module == "" {
		t.Error("provenance.module is empty")
	}
	if doc.Config == nil {
		t.Fatal("config echo missing from report JSON")
	}
	if doc.Config.Cores != cores {
		t.Errorf("config.cores = %d, want %d", doc.Config.Cores, cores)
	}
	if doc.Config.MeshCols == 0 || doc.Config.GLContexts == 0 {
		t.Errorf("config echo incomplete: %+v", doc.Config)
	}
}

// TestHangDumpTimelineTail wedges the unguarded protocol with the corpus's
// single-cycle drop plan on a traced system and checks the watchdog
// post-mortem carries the timeline tail: the typed view of what was in
// flight when the run stopped making progress.
func TestHangDumpTimelineTail(t *testing.T) {
	plan, err := fault.ParsePlan("seed=305887,recovery.off,recovery.timeout=2048,recovery.retries=2,recovery.penalty=256,recovery.sticky=4,@256:gl.drop:2")
	if err != nil {
		t.Fatal(err)
	}
	out := chaos.RunPlan(chaos.RunConfig{TraceCapacity: 1 << 14}, plan)
	if out.RunErr == "" {
		t.Fatal("the single-cycle wedge plan completed; expected a watchdog abort")
	}
	if out.Timeline == nil || out.Timeline.Len() == 0 {
		t.Fatal("chaos run with TraceCapacity produced no timeline")
	}
	if out.Report == nil || out.Report.Hang == nil {
		t.Fatal("wedged run carries no hang dump")
	}
	if len(out.Report.Hang.TimelineTail) == 0 {
		t.Fatal("hang dump has no timeline tail")
	}
	dump := out.Report.Hang.String()
	if !strings.Contains(dump, "timeline events:") {
		t.Errorf("hang dump does not render the timeline tail section:\n%s", dump)
	}
	// The tail must show the wedged barrier context's protocol activity —
	// arrivals that never gathered.
	if !strings.Contains(dump, "barrier.arrive") && !strings.Contains(dump, "gl.pulse") {
		t.Errorf("timeline tail shows no barrier/G-line activity:\n%s",
			strings.Join(out.Report.Hang.TimelineTail, "\n"))
	}
}
