package repro

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runObserved is runFresh with every observability feature turned on: a
// trace ring on the coherence protocol, a span timeline across every
// component, the JSON export, the Chrome trace export and the link heatmap
// all rendered after the run. Instrumentation must be pure observation —
// none of it may perturb simulated timing.
func runObserved(cores int, w Workload, kind BarrierKind) (*Report, error) {
	sys, err := sim.New(config.Default(cores))
	if err != nil {
		return nil, err
	}
	sys.AttachRing(256)
	tl := sys.AttachTimeline(1 << 16)
	rep, err := workload.Run(sys, w, kind, cores, defaultCycleBudget)
	if err != nil {
		return rep, err
	}
	if _, jerr := rep.JSON(); jerr != nil {
		return rep, fmt.Errorf("JSON export: %w", jerr)
	}
	var traceBuf strings.Builder
	if terr := tl.WriteChrome(&traceBuf, nil); terr != nil {
		return rep, fmt.Errorf("Chrome trace export: %w", terr)
	}
	if verr := trace.ValidateChrome([]byte(traceBuf.String())); verr != nil {
		return rep, fmt.Errorf("Chrome trace shape: %w", verr)
	}
	_ = sys.Prot.Mesh().Heatmap()
	return rep, nil
}

// TestObservabilityDoesNotChangeFingerprints reruns every golden cell with
// full observability enabled and requires each determinism fingerprint to
// match the committed golden value: metrics, tracing and report export must
// never alter a run's behavior.
func TestObservabilityDoesNotChangeFingerprints(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skipf("no golden file: %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 {
			want[fields[0]] = fields[1]
		}
	}

	cells := goldenCells()
	specs := make([]sweep.Spec, len(cells))
	for i, c := range cells {
		c := c
		specs[i] = sweep.Spec{
			Label: c.key,
			Run:   func() (*Report, error) { return runObserved(goldenCores, c.w, c.kind) },
		}
	}
	results := sweep.Run(Parallel, specs)
	for i, c := range cells {
		if results[i].Err != nil {
			t.Fatalf("%s: %v", c.key, results[i].Err)
		}
		wantFP, ok := want[c.key]
		if !ok {
			t.Errorf("%s: no golden entry", c.key)
			continue
		}
		if got := results[i].Fingerprint(); got != wantFP {
			t.Errorf("%s: observed run fingerprint %s != golden %s — instrumentation changed behavior", c.key, got, wantFP)
		}
	}
}
