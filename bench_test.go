package repro

// One benchmark per table and figure of the paper (see EXPERIMENTS.md).
// Each Fig/Table benchmark executes a full (scaled-tier) simulation per
// iteration and reports the paper's metric via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every evaluation number in
// miniature. The repro-tier numbers quoted in EXPERIMENTS.md come from
// `cmd/reproduce -tier repro all`.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchCores is the paper's CMP size.
const benchCores = 32

// mustRun executes one benchmark run for a testing.B iteration.
func mustRun(b *testing.B, w Workload, kind BarrierKind, cores int) *Report {
	b.Helper()
	rep, err := runFresh(cores, w, kind)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// --- Table 1 ---------------------------------------------------------------

func BenchmarkTable1Config(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := config.Default(benchCores)
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = Table1(cfg)
	}
}

// --- Table 2: #barriers and barrier period per benchmark --------------------

func benchTable2(b *testing.B, w Workload) {
	b.ReportAllocs()
	var period float64
	for i := 0; i < b.N; i++ {
		rep := mustRun(b, w, DSW, benchCores)
		period = rep.BarrierPeriod
	}
	b.ReportMetric(period, "cycles/barrier-period")
	b.ReportMetric(float64(w.Barriers(benchCores)), "barriers")
}

func BenchmarkTable2_SYNTH(b *testing.B) { benchTable2(b, workload.ScaledSynthetic()) }
func BenchmarkTable2_KERN2(b *testing.B) { benchTable2(b, workload.ScaledKernel2()) }
func BenchmarkTable2_KERN3(b *testing.B) { benchTable2(b, workload.ScaledKernel3()) }
func BenchmarkTable2_KERN6(b *testing.B) { benchTable2(b, workload.ScaledKernel6()) }
func BenchmarkTable2_UNSTR(b *testing.B) { benchTable2(b, workload.ScaledUnstructured()) }
func BenchmarkTable2_OCEAN(b *testing.B) { benchTable2(b, workload.ScaledOcean()) }
func BenchmarkTable2_EM3D(b *testing.B)  { benchTable2(b, workload.ScaledEM3D()) }

// --- Figure 5: average barrier latency vs cores ------------------------------

func benchFig5(b *testing.B, kind BarrierKind, cores int) {
	b.ReportAllocs()
	synth := &workload.Synthetic{Iters: 25}
	var lat float64
	for i := 0; i < b.N; i++ {
		rep := mustRun(b, synth, kind, cores)
		lat = float64(rep.Cycles) / float64(synth.Barriers(cores))
	}
	b.ReportMetric(lat, "cycles/barrier")
}

func BenchmarkFig5_CSW_2(b *testing.B)  { benchFig5(b, CSW, 2) }
func BenchmarkFig5_CSW_8(b *testing.B)  { benchFig5(b, CSW, 8) }
func BenchmarkFig5_CSW_32(b *testing.B) { benchFig5(b, CSW, 32) }
func BenchmarkFig5_DSW_2(b *testing.B)  { benchFig5(b, DSW, 2) }
func BenchmarkFig5_DSW_8(b *testing.B)  { benchFig5(b, DSW, 8) }
func BenchmarkFig5_DSW_32(b *testing.B) { benchFig5(b, DSW, 32) }
func BenchmarkFig5_GL_2(b *testing.B)   { benchFig5(b, GL, 2) }
func BenchmarkFig5_GL_8(b *testing.B)   { benchFig5(b, GL, 8) }
func BenchmarkFig5_GL_32(b *testing.B)  { benchFig5(b, GL, 32) }

// --- Figure 6: normalized execution time, DSW vs GL --------------------------

func benchFig6(b *testing.B, w Workload) {
	b.ReportAllocs()
	var reduction float64
	for i := 0; i < b.N; i++ {
		dsw := mustRun(b, w, DSW, benchCores)
		gl := mustRun(b, w, GL, benchCores)
		reduction = stats.Reduction(float64(dsw.Cycles), float64(gl.Cycles))
	}
	b.ReportMetric(100*reduction, "%time-reduction")
}

func BenchmarkFig6_KERN2(b *testing.B) { benchFig6(b, workload.ScaledKernel2()) }
func BenchmarkFig6_KERN3(b *testing.B) { benchFig6(b, workload.ScaledKernel3()) }
func BenchmarkFig6_KERN6(b *testing.B) { benchFig6(b, workload.ScaledKernel6()) }
func BenchmarkFig6_UNSTR(b *testing.B) { benchFig6(b, workload.ScaledUnstructured()) }
func BenchmarkFig6_OCEAN(b *testing.B) { benchFig6(b, workload.ScaledOcean()) }
func BenchmarkFig6_EM3D(b *testing.B)  { benchFig6(b, workload.ScaledEM3D()) }

// --- Figure 7: normalized network traffic, DSW vs GL -------------------------

func benchFig7(b *testing.B, w Workload) {
	b.ReportAllocs()
	var reduction float64
	for i := 0; i < b.N; i++ {
		dsw := mustRun(b, w, DSW, benchCores)
		gl := mustRun(b, w, GL, benchCores)
		reduction = stats.Reduction(float64(dsw.Traffic.TotalMessages()), float64(gl.Traffic.TotalMessages()))
	}
	b.ReportMetric(100*reduction, "%traffic-reduction")
}

func BenchmarkFig7_KERN2(b *testing.B) { benchFig7(b, workload.ScaledKernel2()) }
func BenchmarkFig7_KERN3(b *testing.B) { benchFig7(b, workload.ScaledKernel3()) }
func BenchmarkFig7_KERN6(b *testing.B) { benchFig7(b, workload.ScaledKernel6()) }
func BenchmarkFig7_UNSTR(b *testing.B) { benchFig7(b, workload.ScaledUnstructured()) }
func BenchmarkFig7_OCEAN(b *testing.B) { benchFig7(b, workload.ScaledOcean()) }
func BenchmarkFig7_EM3D(b *testing.B)  { benchFig7(b, workload.ScaledEM3D()) }

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblation_GLOverhead isolates the ideal 4-cycle hardware latency
// from the software call overhead (paper Section 4.3.1: 13 vs 4 cycles).
func BenchmarkAblation_GLOverhead(b *testing.B) {
	b.ReportAllocs()
	synth := &workload.Synthetic{Iters: 50}
	var ideal, measured float64
	for i := 0; i < b.N; i++ {
		for _, ov := range []uint64{0, 9} {
			cfg := config.Default(16)
			cfg.GLCallOverhead = ov
			sys, err := sim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := workload.Run(sys, synth, GL, 16, 1_000_000_000)
			if err != nil {
				b.Fatal(err)
			}
			lat := float64(rep.Cycles) / float64(synth.Barriers(16))
			if ov == 0 {
				ideal = lat
			} else {
				measured = lat
			}
		}
	}
	b.ReportMetric(ideal, "ideal-cycles/barrier")
	b.ReportMetric(measured, "measured-cycles/barrier")
}

// BenchmarkAblation_FlatVsHierarchical quantifies the clustering cost on a
// mesh both designs can serve (36 cores).
func BenchmarkAblation_FlatVsHierarchical(b *testing.B) {
	b.ReportAllocs()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := AblationHierarchy(50, Sequential)
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	_ = out
}

// BenchmarkAblation_TDMContexts measures the latency growth of time-shared
// barrier contexts.
func BenchmarkAblation_TDMContexts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AblationTDM(16, []int{1, 4}, 50, Sequential); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_DSWLockVsLLSC compares the paper's lock-based combining
// tree against a lock-free LL/SC variant.
func BenchmarkAblation_DSWLockVsLLSC(b *testing.B) {
	b.ReportAllocs()
	var lock, llsc float64
	synth := &workload.Synthetic{Iters: 50}
	for i := 0; i < b.N; i++ {
		for _, useLLSC := range []bool{false, true} {
			sys, err := sim.New(config.Default(benchCores))
			if err != nil {
				b.Fatal(err)
			}
			bar, err := sys.NewBarrier(DSW, benchCores)
			if err != nil {
				b.Fatal(err)
			}
			if useLLSC {
				bar.(interface{ UseLLSC(bool) }).UseLLSC(true)
			}
			rep, err := workload.RunWith(sys, synth, bar, benchCores, 1_000_000_000)
			if err != nil {
				b.Fatal(err)
			}
			lat := float64(rep.Cycles) / float64(synth.Barriers(benchCores))
			if useLLSC {
				llsc = lat
			} else {
				lock = lat
			}
		}
	}
	b.ReportMetric(lock, "lock-cycles/barrier")
	b.ReportMetric(llsc, "llsc-cycles/barrier")
}

// --- Sweep runner -------------------------------------------------------------

// BenchmarkSweepParallelism runs the Figure 5 grid through the sweep pool
// sequentially and with one worker per CPU. On a multi-core host the
// parallel variant's ns/op should drop roughly linearly with core count;
// the fingerprint-checked tables are identical either way (see
// TestParallelSweepMatchesSequential).
func BenchmarkSweepParallelism(b *testing.B) {
	grid := []int{2, 8, 16}
	for _, cfg := range []struct {
		name string
		opt  SweepOptions
	}{
		{"sequential/jobs=1", Sequential},
		{fmt.Sprintf("parallel/jobs=%d", runtime.NumCPU()), SweepOptions{Jobs: runtime.NumCPU()}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Fig5(workload.TierTest, grid, cfg.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Microbenchmarks of the substrates ---------------------------------------

// BenchmarkSimThroughput measures host performance: simulated cycles per
// wall-clock second on the EM3D workload.
func BenchmarkSimThroughput(b *testing.B) {
	b.ReportAllocs()
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		rep := mustRun(b, workload.ScaledEM3D(), DSW, benchCores)
		simCycles += rep.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkGLineBarrierStep measures the raw cost of one hardware barrier
// episode in the G-line network model.
func BenchmarkGLineBarrierStep(b *testing.B) {
	b.ReportAllocs()
	sys, err := sim.New(config.Default(16))
	if err != nil {
		b.Fatal(err)
	}
	net := sys.GL
	released := 0
	net.OnRelease(nil, func(int) { released++ })
	cycle := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < 16; c++ {
			net.Arrive(c, 0)
		}
		for j := 0; j < 4; j++ {
			net.Tick(cycle)
			cycle++
		}
	}
	if released == 0 {
		b.Fatal("no releases")
	}
}
