package repro

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/fault"
)

// TestChaosCorpusReplay replays every minimized reproducer under
// testdata/chaos-corpus and pins its recorded oracle verdict: each plan
// must still trip exactly the oracle/kind the chaos campaign minimized it
// to. The corpus is the regression net for the barrier protocol's failure
// modes — a verdict drift here means recovery or protocol semantics
// changed. Replays are deterministic and cheap, so this runs in -short.
func TestChaosCorpusReplay(t *testing.T) {
	entries, err := chaos.LoadCorpus("testdata/chaos-corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("corpus holds %d reproducer(s), want at least 2", len(entries))
	}
	for _, r := range entries {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			plan, err := fault.ParsePlan(r.Plan)
			if err != nil {
				t.Fatalf("reproducer does not parse: %v", err)
			}
			// Minimized reproducers stay minimal: at most 3 fault sites.
			var seen [fault.NumSites]bool
			sites := 0
			for s := fault.GLDrop; s < fault.NumSites; s++ {
				if plan.Rates[s] > 0 {
					seen[s] = true
				}
			}
			for _, e := range plan.Events {
				seen[e.Site] = true
			}
			for s := fault.GLDrop; s < fault.NumSites; s++ {
				if seen[s] {
					sites++
				}
			}
			if sites > 3 {
				t.Fatalf("reproducer touches %d sites, want <= 3 (not minimal): %s", sites, r.Plan)
			}
			if _, err := r.Replay(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
