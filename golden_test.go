package repro

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweep"
	"repro/internal/workload"
)

// updateGoldens rewrites the committed fingerprints from the current run:
//
//	go test -run TestGoldenFingerprints -update .
var updateGoldens = flag.Bool("update", false, "rewrite testdata/fingerprints.golden from this run")

const (
	goldenPath  = "testdata/fingerprints.golden"
	goldenCores = 16
)

// goldenCell names one pinned run of the test tier.
type goldenCell struct {
	key  string
	w    Workload
	kind BarrierKind
}

// goldenCells pins the synthetic workload under all three barrier kinds
// plus the full test-tier suite under the two Figure 6/7 barriers.
func goldenCells() []goldenCell {
	var cells []goldenCell
	for _, kind := range []BarrierKind{CSW, DSW, GL} {
		cells = append(cells, goldenCell{
			key:  fmt.Sprintf("SYNTH/%s/%d", kind, goldenCores),
			w:    workload.TestSynthetic(),
			kind: kind,
		})
	}
	for _, w := range workload.TestSuite() {
		for _, kind := range []BarrierKind{DSW, GL} {
			cells = append(cells, goldenCell{
				key:  fmt.Sprintf("%s/%s/%d", w.Name(), kind, goldenCores),
				w:    w,
				kind: kind,
			})
		}
	}
	return cells
}

// TestDeterminismTwice runs the synthetic workload twice per barrier kind
// on fresh systems and requires identical fingerprints: the simulator must
// be a pure function of its inputs.
func TestDeterminismTwice(t *testing.T) {
	for _, kind := range []BarrierKind{CSW, DSW, GL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			fp := func() string {
				rep, err := runFresh(goldenCores, workload.TestSynthetic(), kind)
				if err != nil {
					t.Fatal(err)
				}
				return rep.Fingerprint()
			}
			if a, b := fp(), fp(); a != b {
				t.Errorf("two fresh runs fingerprint differently: %s vs %s", a, b)
			}
		})
	}
}

// TestGoldenFingerprints regenerates every pinned test-tier run and
// compares fingerprints against the committed golden file. Run with
// -update after an intentional behavioral change to refresh the goldens
// (see EXPERIMENTS.md).
func TestGoldenFingerprints(t *testing.T) {
	cells := goldenCells()
	specs := make([]sweep.Spec, len(cells))
	for i, c := range cells {
		specs[i] = benchSpec(goldenCores, c.w, c.kind)
	}
	results := sweep.Run(Parallel, specs)
	got := make(map[string]string, len(cells))
	var lines []string
	for i, c := range cells {
		if results[i].Err != nil {
			t.Fatalf("%s: %v", c.key, results[i].Err)
		}
		got[c.key] = results[i].Fingerprint()
		lines = append(lines, c.key+" "+got[c.key])
	}

	if *updateGoldens {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		content := "# Determinism fingerprints of the test tier (" +
			fmt.Sprintf("%d cores", goldenCores) + ").\n" +
			"# Regenerate with: go test -run TestGoldenFingerprints -update .\n" +
			strings.Join(lines, "\n") + "\n"
		if err := os.WriteFile(goldenPath, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d fingerprints", goldenPath, len(lines))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenFingerprints -update .` to create it)", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	for key, fp := range got {
		wantFP, ok := want[key]
		if !ok {
			t.Errorf("%s: no golden entry (refresh with -update)", key)
			continue
		}
		if fp != wantFP {
			t.Errorf("%s: fingerprint %s, golden %s — behavior changed; refresh with -update if intended", key, fp, wantFP)
		}
	}
	for key := range want {
		if _, ok := got[key]; !ok {
			t.Errorf("stale golden entry %s (refresh with -update)", key)
		}
	}
}
