package repro

import (
	"testing"
)

// jobs8 is the parallel configuration the acceptance gate pins against
// the sequential reference.
var jobs8 = SweepOptions{Jobs: 8}

// TestParallelSweepMatchesSequential is the determinism gate for the
// sweep runner: every experiment of `reproduce -tier test all` must
// produce byte-identical tables — and identical per-run fingerprints —
// with -jobs 8 and -jobs 1.
func TestParallelSweepMatchesSequential(t *testing.T) {
	const cores = 16

	t.Run("table2", func(t *testing.T) {
		seq, err := Table2(TierTest, cores, Sequential)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Table2(TierTest, cores, jobs8)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
		}
		for i := range seq {
			sf, pf := seq[i].Report.Fingerprint(), par[i].Report.Fingerprint()
			if sf != pf {
				t.Errorf("%s: fingerprints diverge: seq=%s par=%s", seq[i].Name, sf, pf)
			}
		}
		if a, b := RenderTable2(seq).String(), RenderTable2(par).String(); a != b {
			t.Errorf("rendered tables differ:\nseq:\n%s\npar:\n%s", a, b)
		}
	})

	t.Run("fig5", func(t *testing.T) {
		grid := []int{2, 8, cores}
		seq, err := Fig5(TierTest, grid, Sequential)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Fig5(TierTest, grid, jobs8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			for _, kind := range []BarrierKind{CSW, DSW, GL} {
				sf, pf := seq[i].Reports[kind].Fingerprint(), par[i].Reports[kind].Fingerprint()
				if sf != pf {
					t.Errorf("cores=%d %s: fingerprints diverge: seq=%s par=%s", seq[i].Cores, kind, sf, pf)
				}
			}
		}
		if a, b := RenderFig5(seq).String(), RenderFig5(par).String(); a != b {
			t.Errorf("rendered tables differ:\nseq:\n%s\npar:\n%s", a, b)
		}
	})

	t.Run("fig6and7", func(t *testing.T) {
		seq, err := Fig6And7(TierTest, cores, Sequential)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Fig6And7(TierTest, cores, jobs8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if sf, pf := seq[i].DSW.Fingerprint(), par[i].DSW.Fingerprint(); sf != pf {
				t.Errorf("%s/DSW: fingerprints diverge: %s vs %s", seq[i].Name, sf, pf)
			}
			if sf, pf := seq[i].GL.Fingerprint(), par[i].GL.Fingerprint(); sf != pf {
				t.Errorf("%s/GL: fingerprints diverge: %s vs %s", seq[i].Name, sf, pf)
			}
		}
		if a, b := RenderFig6(seq).String(), RenderFig6(par).String(); a != b {
			t.Errorf("Figure 6 tables differ:\nseq:\n%s\npar:\n%s", a, b)
		}
		if a, b := RenderFig7(seq).String(), RenderFig7(par).String(); a != b {
			t.Errorf("Figure 7 tables differ:\nseq:\n%s\npar:\n%s", a, b)
		}
	})

	t.Run("ablations", func(t *testing.T) {
		if testing.Short() {
			t.Skip("ablation grids in -short mode")
		}
		type study struct {
			name string
			run  func(opt SweepOptions) (string, error)
		}
		studies := []study{
			{"overhead", func(opt SweepOptions) (string, error) {
				tab, err := AblationOverhead(16, []uint64{0, 9}, 20, opt)
				return tab.String(), err
			}},
			{"router", func(opt SweepOptions) (string, error) {
				tab, err := AblationRouterDepth(16, []uint64{1, 4}, 20, opt)
				return tab.String(), err
			}},
			{"tdm", func(opt SweepOptions) (string, error) {
				tab, err := AblationTDM(16, []int{1, 2}, 20, opt)
				return tab.String(), err
			}},
		}
		for _, s := range studies {
			seq, err := s.run(Sequential)
			if err != nil {
				t.Fatalf("%s sequential: %v", s.name, err)
			}
			par, err := s.run(jobs8)
			if err != nil {
				t.Fatalf("%s parallel: %v", s.name, err)
			}
			if seq != par {
				t.Errorf("%s tables differ:\nseq:\n%s\npar:\n%s", s.name, seq, par)
			}
		}
	})
}
