// Stencil: a user-written workload on the public API. A heat-diffusion
// kernel sweeps a 2D grid; every time step ends in a barrier. The example
// shows how barrier choice changes both runtime and the execution-time
// breakdown as the grid shrinks (finer-grained steps -> bigger barrier
// share), the crossover the paper's Figure 6 explores.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/barrier"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/stats"
)

// heatDiffusion builds one program per thread: row-partitioned Jacobi
// sweeps with halo exchange at band boundaries and a barrier per step.
func heatDiffusion(sys *repro.System, b barrier.Barrier, threads, grid, steps int) []cpu.Program {
	sys.Alloc.AlignLine()
	cells := sys.Alloc.Words(grid * grid)
	at := func(r, c int) uint64 { return cells + uint64(r*grid+c)*mem.WordSize }

	progs := make([]cpu.Program, threads)
	rows := grid - 2
	for tid := 0; tid < threads; tid++ {
		tid := tid
		lo := tid*rows/threads + 1
		hi := (tid+1)*rows/threads + 1
		progs[tid] = func(c *cpu.Ctx) {
			for s := 0; s < steps; s++ {
				for r := lo; r < hi; r++ {
					c.LoadRange(at(r-1, 1), grid-2, mem.WordSize)
					c.LoadRange(at(r+1, 1), grid-2, mem.WordSize)
					c.Work(6 * (grid - 2))
					c.StoreRange(at(r, 1), grid-2, mem.WordSize)
				}
				b.Wait(c, tid)
			}
		}
	}
	return progs
}

func main() {
	const cores = 16
	const steps = 20
	fmt.Println("Heat diffusion: runtime (cycles) and barrier share vs grid size")
	fmt.Printf("%8s  %12s  %12s  %10s\n", "grid", "DSW", "GL", "speedup")
	for _, grid := range []int{130, 66, 34, 18} {
		var cycles [2]uint64
		var barFrac [2]float64
		for i, kind := range []repro.BarrierKind{repro.DSW, repro.GL} {
			sys, err := repro.NewSystem(repro.DefaultConfig(cores))
			if err != nil {
				log.Fatal(err)
			}
			b, err := sys.NewBarrier(kind, cores)
			if err != nil {
				log.Fatal(err)
			}
			if err := sys.Launch(heatDiffusion(sys, b, cores, grid, steps)); err != nil {
				log.Fatal(err)
			}
			rep, err := sys.Run(1_000_000_000)
			if err != nil {
				log.Fatal(err)
			}
			cycles[i] = rep.Cycles
			barFrac[i] = rep.Breakdown.Fractions()[stats.RegionBarrier]
		}
		fmt.Printf("%5dx%-3d  %8d (%4.1f%% bar)  %8d (%4.1f%% bar)  %9.2fx\n",
			grid, grid,
			cycles[0], 100*barFrac[0], cycles[1], 100*barFrac[1],
			float64(cycles[0])/float64(cycles[1]))
	}
	fmt.Println("\nFiner grids synchronize more often: the hardware barrier's")
	fmt.Println("advantage grows as the barrier share of DSW time explodes.")
}
