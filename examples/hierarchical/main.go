// Hierarchical: the paper's future-work scheme for meshes beyond the
// electrical limit of one G-line (6 transmitters -> max 7x7 flat). A
// 64-core 8x8 CMP is served by 4 clusters of 4x4 linked through a global
// pair of G-lines; the ideal barrier stretches from 4 to 6 cycles — still
// orders of magnitude below the software barriers.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/workload"
)

func main() {
	const cores = 64 // 8x8: flat G-line network impossible
	synth := &workload.Synthetic{Iters: 100}

	fmt.Printf("64-core (8x8) CMP: flat G-line network impossible (7 slaves/line max);\n")
	fmt.Printf("the simulator builds 2x2 clusters of 4x4 linked by global lines.\n\n")
	for _, kind := range []repro.BarrierKind{repro.GL, repro.DSW} {
		sys, err := repro.NewSystem(repro.DefaultConfig(cores))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := repro.RunBenchmark(sys, synth, kind, cores)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s %8.1f cycles/barrier  (%d G-lines, %d NoC messages)\n",
			kind, float64(rep.Cycles)/float64(synth.Barriers(cores)),
			rep.GLLines, rep.Traffic.TotalMessages())
	}
	fmt.Println("\nGL = 6-cycle clustered dance + 9-cycle library overhead = 15 cycles,")
	fmt.Println("independent of core count; the combining tree keeps growing.")
}
