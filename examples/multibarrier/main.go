// Multibarrier: the paper's future-work extension — several concurrent
// barriers multiplexed on the G-line hardware. Two independent thread
// groups (a producer pipeline and a consumer pipeline) each synchronize on
// their own barrier context; the example compares space multiplexing
// (dedicated wires per context) against time multiplexing (shared wires,
// alternating cycles).
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/core"
	"repro/internal/cpu"
)

func run(mux core.MuxMode, label string) {
	const cores = 16 // 4x4 mesh
	cfg := repro.DefaultConfig(cores)
	sys, err := repro.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.NewNetwork(core.NetworkConfig{
		Cols: cfg.MeshCols, Rows: cfg.MeshRows,
		MaxTransmitters: cfg.GLMaxTransmitters,
		Contexts:        2,
		Mux:             mux,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.ReplaceGL(net)

	// Group A: cores 0-7 on context 0; group B: cores 8-15 on context 1.
	groupA := []int{0, 1, 2, 3, 4, 5, 6, 7}
	groupB := []int{8, 9, 10, 11, 12, 13, 14, 15}
	if err := net.SetParticipants(0, groupA); err != nil {
		log.Fatal(err)
	}
	if err := net.SetParticipants(1, groupB); err != nil {
		log.Fatal(err)
	}

	const iters = 300
	progs := make([]cpu.Program, cores)
	for i := 0; i < cores; i++ {
		ctx := 0
		work := uint64(5)
		if i >= 8 {
			ctx = 1
			work = 9 // group B runs a different phase length
		}
		progs[i] = func(c *cpu.Ctx) {
			for it := 0; it < iters; it++ {
				c.Compute(work)
				c.GLBarrier(ctx)
			}
		}
	}
	if err := sys.Launch(progs); err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run(10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %8d cycles  %4d G-lines  %6d episodes  %6d toggles\n",
		label, rep.Cycles, rep.GLLines, rep.BarrierEpisodes, rep.GLToggles)
}

func main() {
	fmt.Println("Two thread groups, each on its own barrier context, 300 iterations")
	fmt.Println()
	run(core.MuxSpace, "space-mux")
	run(core.MuxTime, "time-mux")
	fmt.Println("\nSpace multiplexing doubles the wires for full speed; time")
	fmt.Println("multiplexing keeps the paper's 2*(rows+1) lines and stretches the")
	fmt.Println("barrier dance over alternating cycles.")
}
