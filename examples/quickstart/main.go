// Quickstart: build a 16-core CMP, run the synthetic barrier benchmark
// with the hardware G-line barrier and with the software combining tree,
// and compare the average per-barrier latency — the paper's headline
// result (4 ideal / 13 measured cycles vs hundreds for software).
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/workload"
)

func main() {
	const cores = 16
	synth := &workload.Synthetic{Iters: 200}

	fmt.Printf("Synthetic barrier microbenchmark, %d cores, %d barriers\n\n",
		cores, synth.Barriers(cores))
	for _, kind := range []repro.BarrierKind{repro.GL, repro.DSW, repro.CSW} {
		sys, err := repro.NewSystem(repro.DefaultConfig(cores))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := repro.RunBenchmark(sys, synth, kind, cores)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s %8.1f cycles/barrier   %8d NoC messages   %6d G-line toggles\n",
			kind, float64(rep.Cycles)/float64(synth.Barriers(cores)),
			rep.Traffic.TotalMessages(), rep.GLToggles)
	}
	fmt.Println("\nThe G-line barrier is flat at 13 cycles (4-cycle hardware dance")
	fmt.Println("plus the 9-cycle library overhead the paper measures) and leaves")
	fmt.Println("the data network completely untouched.")
}
