package repro

import (
	"errors"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Fault-injection study — degradation curves under G-line/NoC faults.
//
// The paper assumes perfect wires; this study asks what the dedicated
// barrier network costs in resilience. Each cell runs the synthetic
// barrier loop under a seeded composite fault plan (see FaultPlan) and
// measures the slowdown. Four series:
//
//	GL      G-line barrier behind the recovering guard (the resilient
//	        protocol: suppress, retry, software fallback).
//	GL-raw  the bare hardware with recovery disabled — the paper's
//	        protocol as published. Expected to wedge (watchdog error
//	        cell) once drop faults land inside barrier dances.
//	DSW     the combining-tree software barrier: no G-line exposure,
//	        but every barrier message rides the faulty NoC.
//	CSW     the centralized software barrier, ditto.

// faultSeries is the column order of the resilience study.
var faultSeries = []string{"GL", "GL-raw", "DSW", "CSW"}

// FaultSeries returns the study's series names in column order, so callers
// rendering per-series artifacts iterate deterministically instead of
// ranging over FaultPoint.Cells.
func FaultSeries() []string {
	return append([]string(nil), faultSeries...)
}

// DefaultFaultRates is the study's fault-rate ladder (per sample-point
// probability; 0 is the fault-free baseline).
var DefaultFaultRates = []float64{0, 1e-5, 1e-4, 1e-3, 1e-2}

// faultStudyTimeout is the guard's episode timeout for the study: far above
// any healthy dance (~13 cycles) yet small enough that a wedged episode
// retries quickly relative to the synthetic barrier period.
const faultStudyTimeout = 2_000

// rawStallLimit cuts unguarded wedges short: a healthy GL barrier never
// stays event-free for more than a compute phase, so 1M idle active cycles
// can only be a dead barrier (the default watchdog would wait 5M).
const rawStallLimit = 1_000_000

// FaultPlan is the composite plan the study injects at a given base rate:
// G-line drops at the full rate (the dominant transient on shared wires),
// spurious assertions and S-CSMA miscounts at a quarter of it, and NoC flit
// corruption plus transient link-down and dropped L1 watch wakeups stressing
// the software paths. The same plan (same seed) drives every series, so the
// software barriers face exactly the same NoC weather as the G-line ones.
func FaultPlan(rate float64) *fault.Plan {
	p := &fault.Plan{
		Seed:     0x5eed,
		Recovery: fault.Recovery{Timeout: faultStudyTimeout},
	}
	p.Rates[fault.GLDrop] = rate
	p.Rates[fault.GLSpurious] = rate / 4
	p.Rates[fault.SCSMAMiscount] = rate / 4
	p.Rates[fault.NoCCorrupt] = rate
	p.Rates[fault.NoCLinkDown] = rate / 4
	p.Rates[fault.WatchDrop] = rate
	return p
}

// FaultCell is one (rate, series) run of the study.
type FaultCell struct {
	Report *Report
	Err    error
}

// FaultPoint holds one fault rate's cells, keyed by series name.
type FaultPoint struct {
	Rate  float64
	Cells map[string]FaultCell
}

// FaultStudy sweeps the fault-rate ladder over all four series with the
// synthetic benchmark. All cells run through one sweep; a wedged unguarded
// run becomes an error cell, it does not abort the grid.
func FaultStudy(tier Tier, cores int, rates []float64, opt SweepOptions) ([]FaultPoint, error) {
	var specs []sweep.Spec
	for _, rate := range rates {
		for _, series := range faultSeries {
			rate, series := rate, series
			specs = append(specs, sweep.Spec{
				Label: fmt.Sprintf("faults/%g/%s", rate, series),
				Run: func() (*sim.Report, error) {
					cfg := config.Default(cores)
					plan := FaultPlan(rate)
					kind := GL
					switch series {
					case "GL-raw":
						plan.Recovery.Disabled = true
					case "DSW":
						kind = DSW
					case "CSW":
						kind = CSW
					}
					cfg.Faults = plan
					sys, err := sim.New(cfg)
					if err != nil {
						return nil, err
					}
					if series == "GL-raw" {
						sys.Eng.StallLimit = rawStallLimit
					}
					w := workload.SyntheticFor(tier)
					return workload.Run(sys, w, kind, cores, defaultCycleBudget)
				},
			})
		}
	}
	results := sweep.Run(opt, specs)
	points := make([]FaultPoint, 0, len(rates))
	var errs []error
	i := 0
	for _, rate := range rates {
		p := FaultPoint{Rate: rate, Cells: map[string]FaultCell{}}
		for _, series := range faultSeries {
			res := results[i]
			i++
			p.Cells[series] = FaultCell{Report: res.Report, Err: res.Err}
			// A wedged GL-raw cell is the study's expected result (the
			// unguarded protocol deadlocking is the data point), so only
			// the resilient series' failures count as experiment errors.
			if res.Err != nil && series != "GL-raw" {
				errs = append(errs, fmt.Errorf("%s: %w", res.Label, res.Err))
			}
		}
		points = append(points, p)
	}
	return points, errors.Join(errs...)
}

// counter reads one metric counter from a cell's report (0 when absent).
func (c FaultCell) counter(name string) uint64 {
	if c.Report == nil {
		return 0
	}
	return c.Report.Metrics.Counters[name]
}

// RenderFaults formats the degradation table: cycles/barrier per series plus
// the guard's recovery work (retries, fallbacks), the guarded GL cell's
// injected-fault count, and the DSW cell's flit-hops (the software barrier
// pays for NoC faults in retransmitted traffic; SYNTH under GL sends none).
func RenderFaults(points []FaultPoint, barriers uint64) stats.Table {
	t := stats.Table{Header: []string{
		"FaultRate", "GL", "GL-raw", "DSW", "CSW",
		"GL retries", "GL fallbacks", "GL injected", "DSW flit-hops",
	}}
	cell := func(c FaultCell) string {
		if c.Err != nil {
			return stats.ErrCell(c.Err)
		}
		return fmt.Sprintf("%.1f", float64(c.Report.Cycles)/float64(barriers))
	}
	for _, p := range points {
		gl := p.Cells["GL"]
		row := []string{
			fmt.Sprintf("%g", p.Rate),
			cell(gl), cell(p.Cells["GL-raw"]), cell(p.Cells["DSW"]), cell(p.Cells["CSW"]),
		}
		if gl.Err != nil {
			row = append(row, "", "", "")
		} else {
			row = append(row,
				fmt.Sprintf("%d", gl.counter(core.MetricGLRetries)),
				fmt.Sprintf("%d", gl.counter(core.MetricGLFallbacks)),
				fmt.Sprintf("%d", gl.counter(fault.MetricInjected)))
		}
		if dsw := p.Cells["DSW"]; dsw.Err != nil {
			row = append(row, "")
		} else {
			row = append(row, fmt.Sprintf("%d", dsw.Report.FlitHops))
		}
		t.AddRow(row...)
	}
	return t
}
