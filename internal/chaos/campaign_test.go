package chaos

import (
	"encoding/json"
	"testing"

	"repro/internal/fault"
	"repro/internal/sweep"
)

// smallCampaign keeps unit-test campaigns quick: a dozen plans, short
// runs, modest shrink budget.
func smallCampaign(seed uint64) CampaignConfig {
	return CampaignConfig{
		Seed:        seed,
		Budget:      12,
		Run:         fastRun(),
		Sweep:       sweep.Options{Jobs: 4},
		ShrinkRuns:  120,
		MaxFindings: 4,
	}
}

func TestGeneratorPlansAreValid(t *testing.T) {
	gen := newGenerator(99, RunConfig{}.withDefaults())
	for i := 0; i < 200; i++ {
		p := gen.plan()
		if err := p.Validate(); err != nil {
			t.Fatalf("plan %d invalid: %v (%s)", i, err, p.String())
		}
		if p.Empty() {
			t.Fatalf("plan %d is empty", i)
		}
		if n := len(atomsOf(p)); n < 1 || n > 3 {
			t.Fatalf("plan %d has %d atoms, want 1..3", i, n)
		}
		// Round-trip through the grammar: campaigns report reproducers as
		// strings, so every generated plan must survive the parser.
		if _, err := fault.ParsePlan(p.String()); err != nil {
			t.Fatalf("plan %d does not round-trip: %v (%s)", i, err, p.String())
		}
	}
}

func TestGeneratorIsSeeded(t *testing.T) {
	a := newGenerator(5, RunConfig{}.withDefaults())
	b := newGenerator(5, RunConfig{}.withDefaults())
	for i := 0; i < 50; i++ {
		if a.plan().String() != b.plan().String() {
			t.Fatalf("same seed diverged at plan %d", i)
		}
	}
	c := newGenerator(6, RunConfig{}.withDefaults())
	same := 0
	for i := 0; i < 50; i++ {
		if newGeneratorPlanString(a) == newGeneratorPlanString(c) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical plan streams")
	}
}

func newGeneratorPlanString(g *generator) string { return g.plan().String() }

func TestCampaignFindsAndMinimizes(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign exploration is a long test")
	}
	rep, err := Campaign(smallCampaign(7))
	if err != nil {
		t.Fatalf("campaign machinery failed: %v", err)
	}
	if rep.Runs != rep.Budget {
		t.Fatalf("ran %d of %d plans", rep.Runs, rep.Budget)
	}
	if rep.Tripped == 0 {
		t.Fatalf("campaign found nothing: %+v", rep)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("tripped runs produced no findings")
	}
	for _, f := range rep.Findings {
		min, err := fault.ParsePlan(f.Minimized)
		if err != nil {
			t.Fatalf("finding %d reproducer does not parse: %v (%s)", f.Index, err, f.Minimized)
		}
		if !RunPlan(smallCampaign(7).Run, min).Matches(f.Verdict) {
			t.Fatalf("finding %d reproducer does not replay verdict %s: %s",
				f.Index, f.Verdict.Key(), f.Minimized)
		}
		if f.MinimizedSites > 3 {
			t.Fatalf("finding %d kept %d sites", f.Index, f.MinimizedSites)
		}
	}
}

func TestCampaignIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign exploration is a long test")
	}
	cfg := smallCampaign(21)
	cfg.Budget = 8
	cfg.MaxFindings = 2
	a, errA := Campaign(cfg)
	cfg.Sweep.Jobs = 1 // parallelism must not change verdicts
	b, errB := Campaign(cfg)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("machinery errors diverged: %v vs %v", errA, errB)
	}
	if a.Tripped != b.Tripped || a.Clean != b.Clean || len(a.Findings) != len(b.Findings) {
		t.Fatalf("campaign shape diverged: %+v vs %+v", a, b)
	}
	for i := range a.Findings {
		if a.Findings[i].Minimized != b.Findings[i].Minimized ||
			a.Findings[i].Verdict != b.Findings[i].Verdict {
			t.Fatalf("finding %d diverged:\n%+v\n%+v", i, a.Findings[i], b.Findings[i])
		}
	}
}

func TestCampaignReportMarshals(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign exploration is a long test")
	}
	cfg := smallCampaign(7)
	cfg.Budget = 4
	cfg.MaxFindings = 1
	rep, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back CampaignReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seed != rep.Seed || back.Budget != rep.Budget || len(back.Findings) != len(rep.Findings) {
		t.Fatalf("JSON round-trip lost fields: %+v", back)
	}
}
