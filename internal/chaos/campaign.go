package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// CampaignConfig shapes one chaos campaign: how many plans to explore,
// from which seed, under which oracles, and how hard to minimize finds.
type CampaignConfig struct {
	// Seed drives the plan generator; same seed, same campaign.
	Seed uint64
	// Budget is the number of generated plans to run (0 = 64).
	Budget int
	// Run configures the oracle-checked runs (zero value = defaults).
	Run RunConfig
	// Sweep configures the worker pool executing the exploration phase
	// (Jobs, Timeout, FailFast pass through; ArtifactDir applies to the
	// raw exploration reports).
	Sweep sweep.Options
	// ShrinkRuns bounds minimization candidates per finding (0 = 200).
	ShrinkRuns int
	// MaxFindings stops minimizing after this many distinct finds (0 = 8):
	// a hundred trips of the same wedge teach nothing new.
	MaxFindings int
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Budget == 0 {
		c.Budget = 64
	}
	if c.ShrinkRuns == 0 {
		c.ShrinkRuns = 200
	}
	if c.MaxFindings == 0 {
		c.MaxFindings = 8
	}
	c.Run = c.Run.withDefaults()
	return c
}

// Finding is one oracle trip, minimized: the plan the generator produced,
// the verdict, and the ddmin-reduced reproducer in fault.ParsePlan syntax.
type Finding struct {
	// Index is the plan's position in the campaign's generation order.
	Index int `json:"index"`
	// Plan is the original failing plan (ParsePlan syntax).
	Plan string `json:"plan"`
	// Verdict is the first violation of the original run.
	Verdict Violation `json:"verdict"`
	// Violations is the original run's full violation list.
	Violations []Violation `json:"violations,omitempty"`
	// Minimized is the ddmin-reduced reproducer (ParsePlan syntax); it
	// trips the same oracle/kind as Verdict, deterministically.
	Minimized string `json:"minimized"`
	// MinimizedSites counts the distinct fault sites the reproducer kept.
	MinimizedSites int `json:"minimized_sites"`
	// Shrink summarizes the minimization effort.
	Shrink ShrinkStats `json:"shrink"`
	// Report is the minimized reproducer's replay report.
	Report *sim.Report `json:"report,omitempty"`
}

// CampaignReport is the JSON document a campaign emits.
type CampaignReport struct {
	Seed    uint64 `json:"seed"`
	Budget  int    `json:"budget"`
	Oracles string `json:"oracles"`
	Cores   int    `json:"cores"`
	Iters   int    `json:"iters"`
	Runs    int    `json:"runs"`
	Clean   int    `json:"clean"`
	Tripped int    `json:"tripped"`
	// Errors counts machinery failures — sweep timeouts, config errors —
	// that produced no verdict (not oracle trips, which are the point).
	Errors   int       `json:"errors"`
	Findings []Finding `json:"findings,omitempty"`
}

// outcomeTable collects exploration outcomes from the sweep workers under
// a lock: a run abandoned by the sweep timeout may still write its slot
// later, harmlessly, while the campaign only reads after sweep.Run returns
// (and ignores slots whose sweep result says timeout).
type outcomeTable struct {
	mu sync.Mutex
	//glvet:guardedby mu
	outcomes []Outcome
	//glvet:guardedby mu
	wrote []bool
}

func newOutcomeTable(n int) *outcomeTable {
	return &outcomeTable{outcomes: make([]Outcome, n), wrote: make([]bool, n)}
}

// put records slot i's outcome.
func (t *outcomeTable) put(i int, out Outcome) {
	t.mu.Lock()
	t.outcomes[i], t.wrote[i] = out, true
	t.mu.Unlock()
}

// get reads slot i; ok reports whether the slot was ever written.
func (t *outcomeTable) get(i int) (out Outcome, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.outcomes[i], t.wrote[i]
}

// Campaign explores Budget generated fault plans on the sweep worker pool,
// then sequentially (and deterministically) delta-debugs up to MaxFindings
// oracle trips into minimal reproducers. The exploration order, the plans
// and every verdict are pure functions of the seed; only wall-clock
// effects (Sweep.Timeout expiring) can perturb a campaign, and those are
// reported as machinery errors, never as verdicts.
func Campaign(cfg CampaignConfig) (*CampaignReport, error) {
	cfg = cfg.withDefaults()
	gen := newGenerator(cfg.Seed, cfg.Run)
	plans := make([]*fault.Plan, cfg.Budget)
	for i := range plans {
		plans[i] = gen.plan()
	}

	table := newOutcomeTable(cfg.Budget)
	specs := make([]sweep.Spec, cfg.Budget)
	for i := range specs {
		i := i
		specs[i] = sweep.Spec{
			Label: fmt.Sprintf("chaos-%04d", i),
			Run: func() (*sim.Report, error) {
				out := RunPlan(cfg.Run, plans[i])
				table.put(i, out)
				return out.Report, nil
			},
		}
	}
	results := sweep.Run(cfg.Sweep, specs)

	rep := &CampaignReport{
		Seed:    cfg.Seed,
		Budget:  cfg.Budget,
		Oracles: cfg.Run.Oracles.String(),
		Cores:   cfg.Run.Cores,
		Iters:   cfg.Run.Iters,
	}
	var errs []error
	for i := 0; i < cfg.Budget; i++ {
		out, ok := table.get(i)
		if results[i].Err != nil || !ok {
			rep.Errors++
			err := results[i].Err
			if err == nil {
				err = fmt.Errorf("%s: no outcome recorded", results[i].Label)
			}
			errs = append(errs, err)
			continue
		}
		rep.Runs++
		v := out.Tripped()
		if v == nil {
			rep.Clean++
			continue
		}
		rep.Tripped++
		if len(rep.Findings) >= cfg.MaxFindings {
			continue
		}
		min, stats := Minimize(cfg.Run, plans[i], *v, cfg.ShrinkRuns)
		replay := RunPlan(cfg.Run, min)
		rep.Findings = append(rep.Findings, Finding{
			Index:          i,
			Plan:           plans[i].String(),
			Verdict:        *v,
			Violations:     out.Violations,
			Minimized:      min.String(),
			MinimizedSites: countSites(min),
			Shrink:         stats,
			Report:         replay.Report,
		})
	}
	if len(errs) > 0 {
		return rep, fmt.Errorf("chaos: %d of %d runs failed (first: %w)", len(errs), cfg.Budget, errs[0])
	}
	return rep, nil
}

// countSites counts the distinct fault sites a plan touches.
func countSites(p *fault.Plan) int {
	var seen [fault.NumSites]bool
	for s := fault.GLDrop; s < fault.NumSites; s++ {
		if p.Rates[s] > 0 {
			seen[s] = true
		}
	}
	for _, e := range p.Events {
		seen[e.Site] = true
	}
	n := 0
	for s := fault.GLDrop; s < fault.NumSites; s++ {
		if seen[s] {
			n++
		}
	}
	return n
}

// generator produces randomized fault plans over the fault.Plan grammar
// from one seeded source. The weights steer the budget toward the sites
// that stress the barrier protocol itself (G-line drops, phantom
// assertions, S-CSMA miscounts, stuck lines); NoC and watch sites get a
// light tail — the synthetic barrier loop never exercises them, so they
// are noise atoms the minimizer must learn to strip.
type generator struct {
	rng     *rand.Rand
	lines   int    // G-line ids per barrier context, for targeted events
	horizon uint64 // cycle range event windows are drawn from
	sites   []fault.Site
}

func newGenerator(seed uint64, run RunConfig) *generator {
	weights := map[fault.Site]int{
		fault.GLDrop:        5,
		fault.GLSpurious:    4,
		fault.SCSMAMiscount: 3,
		fault.GLStuckLow:    2,
		fault.GLStuckHigh:   2,
		fault.NoCCorrupt:    1,
		fault.NoCLinkDown:   1,
		fault.WatchDrop:     1,
		fault.WatchDelay:    1,
	}
	// Burst windows are drawn from the stretch of cycles the run will
	// actually execute: a fault-free episode is ~16 cycles, and faulty
	// episodes stretch, so ~32 cycles per expected barrier keeps most
	// windows overlapping live protocol activity instead of landing after
	// the programs finished.
	g := &generator{
		rng:     rand.New(rand.NewSource(int64(seed))),
		lines:   config.Default(run.Cores).GLLinesPerBarrier(),
		horizon: 32 * run.barriers(),
	}
	// Expand the weight table into a draw pool, in site order (map
	// iteration must not shape the sequence).
	for s := fault.GLDrop; s < fault.NumSites; s++ {
		for i := 0; i < weights[s]; i++ {
			g.sites = append(g.sites, s)
		}
	}
	return g
}

// plan draws one randomized fault plan: 1–3 distinct sites, each either a
// uniform rate (log-uniform in [1e-4, 1e-1]) or a burst window, over a
// recovery config tightened so guard escalation happens within the chaos
// run's small cycle budget. Half the plans run unguarded — that is where
// the protocol's raw failure modes live.
func (g *generator) plan() *fault.Plan {
	p := &fault.Plan{
		Seed: 1 + uint64(g.rng.Intn(1_000_000)),
		Recovery: fault.Recovery{
			Timeout:         2048,
			MaxRetries:      2,
			FallbackPenalty: 256,
			StickyAfter:     4,
		},
	}
	if g.rng.Intn(2) == 0 {
		p.Recovery.Disabled = true
	}
	n := 1 + g.rng.Intn(3)
	var used [fault.NumSites]bool
	for len(atomsOf(p)) < n {
		s := g.sites[g.rng.Intn(len(g.sites))]
		if used[s] {
			continue
		}
		used[s] = true
		burst := s.EventOnly() || g.rng.Intn(2) == 0
		if !burst {
			// Log-uniform in [1e-3, 1e-1]: chaos runs are short, so rates
			// below ~1e-3 rarely get an opportunity to fire at all.
			p.Rates[s] = math.Pow(10, -(1 + 2*g.rng.Float64()))
			continue
		}
		from := uint64(g.rng.Intn(int(g.horizon)))
		width := uint64(16 + g.rng.Intn(int(g.horizon/4)))
		e := fault.Event{Site: s, From: from, Until: from + width, Loc: -1}
		if (s == fault.GLDrop || s == fault.GLSpurious || s == fault.GLStuckLow || s == fault.GLStuckHigh) && g.rng.Intn(2) == 0 {
			e.Loc = int64(g.rng.Intn(g.lines))
		}
		p.Events = append(p.Events, e)
	}
	return p
}
