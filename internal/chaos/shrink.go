package chaos

import (
	"repro/internal/fault"
)

// ShrinkStats summarizes one minimization: how many candidate runs it
// spent and how far the plan shrank.
type ShrinkStats struct {
	Runs      int `json:"runs"`
	FromAtoms int `json:"from_atoms"`
	ToAtoms   int `json:"to_atoms"`
}

// atom is one removable ingredient of a fault plan: either a per-site rate
// directive or one scheduled event. ddmin minimizes over the atom set; the
// plan's scalar knobs (seed, recovery config, miscount magnitudes) are
// preserved verbatim so the failure stays the same failure.
type atom struct {
	site  fault.Site
	rate  float64      // > 0: rate atom
	event *fault.Event // non-nil: event atom
}

// atomsOf decomposes a plan into its removable ingredients.
func atomsOf(p *fault.Plan) []atom {
	var out []atom
	for s := fault.GLDrop; s < fault.NumSites; s++ {
		if p.Rates[s] > 0 {
			out = append(out, atom{site: s, rate: p.Rates[s]})
		}
	}
	for i := range p.Events {
		e := p.Events[i]
		out = append(out, atom{site: e.Site, event: &e})
	}
	return out
}

// assemble rebuilds a plan from the base's scalar knobs plus the kept
// atoms.
func assemble(base *fault.Plan, atoms []atom) *fault.Plan {
	p := &fault.Plan{
		Seed:               base.Seed,
		MiscountK:          base.MiscountK,
		WatchDelayCycles:   base.WatchDelayCycles,
		WatchRecheckCycles: base.WatchRecheckCycles,
		Recovery:           base.Recovery,
	}
	for _, a := range atoms {
		if a.event != nil {
			p.Events = append(p.Events, *a.event)
		} else {
			p.Rates[a.site] = a.rate
		}
	}
	return p
}

// shrinker runs minimization candidates against a budget.
type shrinker struct {
	cfg    RunConfig
	target Violation
	budget int
	runs   int
}

// fails reports whether the candidate plan still trips the target
// oracle/kind. A candidate past the run budget counts as not failing, so
// minimization degrades to "best so far" instead of running forever.
func (s *shrinker) fails(p *fault.Plan) bool {
	if s.runs >= s.budget {
		return false
	}
	s.runs++
	out := RunPlan(s.cfg, p)
	return out.Matches(s.target)
}

// Minimize delta-debugs a failing plan down to a minimal reproducer that
// still trips the same oracle/kind verdict. Phase one is classic ddmin
// over the plan's atoms (rate directives and events); phase two shrinks
// the surviving numbers — rates by decades, event windows by bisection.
// maxRuns bounds the total candidate executions (<=0 selects 200). The
// result is 1-minimal w.r.t. atom removal when the budget sufficed, and
// simply the best plan found otherwise.
func Minimize(cfg RunConfig, plan *fault.Plan, target Violation, maxRuns int) (*fault.Plan, ShrinkStats) {
	if maxRuns <= 0 {
		maxRuns = 200
	}
	s := &shrinker{cfg: cfg.withDefaults(), target: target, budget: maxRuns}
	atoms := atomsOf(plan)
	stats := ShrinkStats{FromAtoms: len(atoms)}
	atoms = s.ddmin(plan, atoms)
	min := assemble(plan, atoms)
	min = s.shrinkNumbers(min)
	stats.Runs = s.runs
	stats.ToAtoms = len(atomsOf(min))
	return min, stats
}

// ddmin is the classic Zeller/Hildebrandt minimizing delta debugger over
// the atom set: try ever-finer subsets and complements, keeping any that
// still fail, until the set is 1-minimal (or the budget runs out).
func (s *shrinker) ddmin(base *fault.Plan, atoms []atom) []atom {
	n := 2
	for len(atoms) >= 2 && s.runs < s.budget {
		chunks := split(atoms, n)
		reduced := false
		// Try each chunk alone: the failure may live entirely inside one.
		for _, c := range chunks {
			if s.fails(assemble(base, c)) {
				atoms, n = c, 2
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		// Try each complement: the chunk may be pure noise. (At n=2 the
		// complements are the chunks themselves, already tested above.)
		if n > 2 {
			for i := range chunks {
				comp := complement(chunks, i)
				if len(comp) == len(atoms) || len(comp) == 0 {
					continue
				}
				if s.fails(assemble(base, comp)) {
					atoms = comp
					if n > 2 {
						n--
					}
					reduced = true
					break
				}
			}
		}
		if reduced {
			continue
		}
		if n >= len(atoms) {
			break // 1-minimal
		}
		n *= 2
		if n > len(atoms) {
			n = len(atoms)
		}
	}
	return atoms
}

// split partitions atoms into n non-empty chunks.
func split(atoms []atom, n int) [][]atom {
	if n > len(atoms) {
		n = len(atoms)
	}
	chunks := make([][]atom, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(atoms)/n, (i+1)*len(atoms)/n
		if lo < hi {
			chunks = append(chunks, atoms[lo:hi])
		}
	}
	return chunks
}

// complement concatenates every chunk except the i-th.
func complement(chunks [][]atom, i int) []atom {
	var out []atom
	for j, c := range chunks {
		if j != i {
			out = append(out, c...)
		}
	}
	return out
}

// shrinkNumbers greedily reduces the surviving plan's magnitudes while the
// failure persists: rates drop by decades (a minimal reproducer should use
// the weakest fault intensity that still bites), event windows shrink by
// bisection from both ends.
func (s *shrinker) shrinkNumbers(p *fault.Plan) *fault.Plan {
	for st := fault.GLDrop; st < fault.NumSites; st++ {
		for p.Rates[st] > 1e-7 {
			cand := *p
			cand.Rates[st] = p.Rates[st] / 10
			if !s.fails(&cand) {
				break
			}
			*p = cand
		}
	}
	for i := range p.Events {
		for p.Events[i].Until > p.Events[i].From {
			w := p.Events[i].Until - p.Events[i].From
			cand := *p
			cand.Events = append([]fault.Event(nil), p.Events...)
			cand.Events[i].Until = cand.Events[i].From + w/2
			if s.fails(&cand) {
				*p = cand
				continue
			}
			cand = *p
			cand.Events = append([]fault.Event(nil), p.Events...)
			cand.Events[i].From = cand.Events[i].Until - w/2
			if s.fails(&cand) {
				*p = cand
				continue
			}
			break
		}
	}
	return p
}
