package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fault"
)

// Reproducer is one corpus entry: a minimized fault plan pinned to the
// oracle verdict it deterministically trips. The on-disk format is a plain
// text file of "key: value" lines with '#' comments:
//
//	# chaos campaign seed=7, minimized from 3 atoms in 41 runs
//	plan: seed=9,recovery.off,@100-200:gl.drop:-1:0
//	oracle: liveness/no-progress
//	cores: 16
//	iters: 8
//	budget: 4000000
//	stall: 100000
//
// cores/iters/budget/stall are optional and default to the chaos run
// defaults; plan and oracle are required.
type Reproducer struct {
	// Name is the corpus file's base name (without the .repro suffix).
	Name string `json:"name"`
	// Note is free-text provenance, written as comment lines.
	Note string `json:"note,omitempty"`
	// Plan is the minimized fault plan in fault.ParsePlan syntax.
	Plan string `json:"plan"`
	// Verdict is the pinned oracle/kind the plan must trip on replay.
	Verdict Violation `json:"verdict"`
	// Run shape (zero fields use the chaos defaults).
	Cores       int    `json:"cores,omitempty"`
	Iters       int    `json:"iters,omitempty"`
	CycleBudget uint64 `json:"budget,omitempty"`
	StallLimit  uint64 `json:"stall,omitempty"`
}

// reproSuffix is the corpus file extension.
const reproSuffix = ".repro"

// runConfig builds the replay RunConfig (all oracles armed: a reproducer
// must not trip anything beyond its pinned verdict's oracle surface).
func (r Reproducer) runConfig() RunConfig {
	return RunConfig{
		Cores:       r.Cores,
		Iters:       r.Iters,
		CycleBudget: r.CycleBudget,
		StallLimit:  r.StallLimit,
	}
}

// Replay runs the reproducer and checks its pinned verdict: the plan must
// still trip the same oracle/kind. It returns the outcome alongside a
// non-nil error when the verdict drifted — the regression signal the
// corpus exists for.
func (r Reproducer) Replay() (Outcome, error) {
	plan, err := fault.ParsePlan(r.Plan)
	if err != nil {
		return Outcome{}, fmt.Errorf("chaos: corpus %q: %w", r.Name, err)
	}
	out := RunPlan(r.runConfig(), plan)
	if !out.Matches(r.Verdict) {
		got := "no violation at all"
		if v := out.Tripped(); v != nil {
			got = v.String()
		}
		return out, fmt.Errorf("chaos: corpus %q: plan no longer trips %s (got %s)", r.Name, r.Verdict.Key(), got)
	}
	return out, nil
}

// format renders the reproducer in corpus file syntax.
func (r Reproducer) format() string {
	var b strings.Builder
	for _, line := range strings.Split(r.Note, "\n") {
		if line != "" {
			fmt.Fprintf(&b, "# %s\n", line)
		}
	}
	fmt.Fprintf(&b, "plan: %s\n", r.Plan)
	fmt.Fprintf(&b, "oracle: %s\n", r.Verdict.Key())
	if r.Cores != 0 {
		fmt.Fprintf(&b, "cores: %d\n", r.Cores)
	}
	if r.Iters != 0 {
		fmt.Fprintf(&b, "iters: %d\n", r.Iters)
	}
	if r.CycleBudget != 0 {
		fmt.Fprintf(&b, "budget: %d\n", r.CycleBudget)
	}
	if r.StallLimit != 0 {
		fmt.Fprintf(&b, "stall: %d\n", r.StallLimit)
	}
	return b.String()
}

// WriteCorpus saves the reproducer as <dir>/<name>.repro, creating dir if
// needed, and returns the file path. The entry is validated first: the
// plan must parse and the verdict must name a known oracle.
func WriteCorpus(dir string, r Reproducer) (string, error) {
	if r.Name == "" {
		return "", fmt.Errorf("chaos: corpus entry needs a name")
	}
	if _, err := fault.ParsePlan(r.Plan); err != nil {
		return "", fmt.Errorf("chaos: corpus %q: %w", r.Name, err)
	}
	if _, err := ParseVerdict(r.Verdict.Key()); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("chaos: corpus: %w", err)
	}
	path := filepath.Join(dir, r.Name+reproSuffix)
	if err := os.WriteFile(path, []byte(r.format()), 0o644); err != nil {
		return "", fmt.Errorf("chaos: corpus: %w", err)
	}
	return path, nil
}

// ParseReproducer parses one corpus file's contents.
func ParseReproducer(name, text string) (Reproducer, error) {
	r := Reproducer{Name: name}
	var notes []string
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			notes = append(notes, strings.TrimSpace(strings.TrimPrefix(line, "#")))
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return r, fmt.Errorf("chaos: corpus %q line %d: want key: value, got %q", name, ln+1, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "plan":
			_, err = fault.ParsePlan(val)
			r.Plan = val
		case "oracle":
			r.Verdict, err = ParseVerdict(val)
		case "cores":
			r.Cores, err = strconv.Atoi(val)
		case "iters":
			r.Iters, err = strconv.Atoi(val)
		case "budget":
			r.CycleBudget, err = strconv.ParseUint(val, 10, 64)
		case "stall":
			r.StallLimit, err = strconv.ParseUint(val, 10, 64)
		default:
			return r, fmt.Errorf("chaos: corpus %q line %d: unknown key %q", name, ln+1, key)
		}
		if err != nil {
			return r, fmt.Errorf("chaos: corpus %q line %d: %s: %w", name, ln+1, key, err)
		}
	}
	r.Note = strings.Join(notes, "\n")
	if r.Plan == "" {
		return r, fmt.Errorf("chaos: corpus %q: missing plan", name)
	}
	if r.Verdict.Oracle == "" {
		return r, fmt.Errorf("chaos: corpus %q: missing oracle", name)
	}
	return r, nil
}

// LoadCorpus reads every *.repro file under dir, sorted by name. A missing
// directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]Reproducer, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("chaos: corpus: %w", err)
	}
	var out []Reproducer
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), reproSuffix) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("chaos: corpus: %w", err)
		}
		r, err := ParseReproducer(strings.TrimSuffix(e.Name(), reproSuffix), string(raw))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
