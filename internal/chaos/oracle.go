package chaos

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Oracle names, used in Violation.Oracle, reproducer files and the
// -oracles CLI flag.
const (
	OracleSafety       = "safety"
	OracleLiveness     = "liveness"
	OracleConservation = "conservation"
)

// Violation kinds, grouped by oracle.
const (
	// safety: release delivered to a core before every participant arrived.
	KindPrematureRelease = "premature-release"
	// safety: a core released twice within one episode.
	KindDoubleRelease = "double-release"
	// safety: a core released without an arrival on record at all.
	KindPhantomRelease = "phantom-release"
	// safety: a core arrived twice without an intervening release — its
	// first arrival was lost by the network.
	KindLostArrival = "lost-arrival"
	// liveness: the run wedged (engine stall/deadlock, cycle budget, or a
	// protocol panic) before every program finished.
	KindNoProgress = "no-progress"
	// liveness: an episode outlived the fallback-path bound after its last
	// arrival.
	KindEpisodeOverrun = "episode-overrun"
	// conservation: metrics counters disagree with observed protocol events.
	KindMetricsMismatch = "metrics-mismatch"
	// conservation: recovery activity recorded with zero injected faults.
	KindRecoveryWithoutFault = "recovery-without-fault"
	// conservation: the run finished cleanly but the episode count does not
	// match the workload's barrier count.
	KindLostEpisodes = "lost-episodes"
)

// Violation is one oracle verdict: which invariant broke, how, and where.
type Violation struct {
	Oracle string `json:"oracle"`
	Kind   string `json:"kind"`
	Cycle  uint64 `json:"cycle,omitempty"`
	Detail string `json:"detail"`
}

// String renders "oracle/kind @cycle: detail".
func (v Violation) String() string {
	if v.Cycle > 0 {
		return fmt.Sprintf("%s/%s @%d: %s", v.Oracle, v.Kind, v.Cycle, v.Detail)
	}
	return fmt.Sprintf("%s/%s: %s", v.Oracle, v.Kind, v.Detail)
}

// Key returns the "oracle/kind" pair that identifies a failure class —
// what ddmin preserves while shrinking, and what corpus replays pin.
func (v Violation) Key() string { return v.Oracle + "/" + v.Kind }

// ParseVerdict parses an "oracle/kind" key back into a target Violation.
func ParseVerdict(s string) (Violation, error) {
	oracle, kind, ok := strings.Cut(strings.TrimSpace(s), "/")
	if !ok || oracle == "" || kind == "" {
		return Violation{}, fmt.Errorf("chaos: verdict %q is not oracle/kind", s)
	}
	switch oracle {
	case OracleSafety, OracleLiveness, OracleConservation:
		return Violation{Oracle: oracle, Kind: kind}, nil
	}
	return Violation{}, fmt.Errorf("chaos: unknown oracle %q in verdict %q", oracle, s)
}

// OracleSet selects which invariants a run checks.
type OracleSet struct {
	Safety       bool `json:"safety"`
	Liveness     bool `json:"liveness"`
	Conservation bool `json:"conservation"`
}

// AllOracles arms every invariant check.
func AllOracles() OracleSet {
	return OracleSet{Safety: true, Liveness: true, Conservation: true}
}

// ParseOracles parses a comma-separated oracle list ("safety,liveness"),
// or "all".
func ParseOracles(s string) (OracleSet, error) {
	if strings.TrimSpace(s) == "all" {
		return AllOracles(), nil
	}
	var set OracleSet
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case OracleSafety:
			set.Safety = true
		case OracleLiveness:
			set.Liveness = true
		case OracleConservation:
			set.Conservation = true
		case "":
		default:
			return OracleSet{}, fmt.Errorf("chaos: unknown oracle %q (want safety, liveness, conservation or all)", name)
		}
	}
	if !set.Safety && !set.Liveness && !set.Conservation {
		return OracleSet{}, fmt.Errorf("chaos: empty oracle selection %q", s)
	}
	return set, nil
}

// String renders the set in ParseOracles syntax.
func (s OracleSet) String() string {
	var names []string
	if s.Safety {
		names = append(names, OracleSafety)
	}
	if s.Liveness {
		names = append(names, OracleLiveness)
	}
	if s.Conservation {
		names = append(names, OracleConservation)
	}
	return strings.Join(names, ",")
}

// maxViolations caps recorded violations per run: after the first break the
// protocol's state is garbage and follow-on violations are noise.
const maxViolations = 16

// probe is the online oracle state machine. It implements both
// sim.BarrierObserver (core-visible arrivals/releases on the metering path)
// and core.GuardObserver (the recovering guard's internal suppressions,
// retries, fallbacks and episode closures), shadowing every barrier context
// independently. All methods run on the simulation's cycle path, so they
// only mutate probe fields — no I/O, no synchronization.
type probe struct {
	expected int // participants per episode
	bound    uint64
	oracles  OracleSet

	ctxs       []*probeCtx
	violations []Violation

	// Guard-event tallies, reconciled against metrics by the conservation
	// oracle.
	guardEpisodes uint64
	suppressed    uint64
	retries       uint64
	fallbacks     uint64
	// Episodes the probe itself saw fully close at the metering layer.
	closed uint64
}

// probeCtx shadows one barrier context's current episode.
type probeCtx struct {
	arrived  []bool
	released []bool
	nArrived int
	nRel     int
	lastAt   uint64 // cycle of the final expected arrival
	// next holds cores that re-arrived for episode N+1 while N was still
	// draining releases (legal: the guard buffers them).
	next []int
}

func newProbe(expected int, bound uint64, oracles OracleSet) *probe {
	return &probe{expected: expected, bound: bound, oracles: oracles}
}

func (p *probe) ctx(id int) *probeCtx {
	for len(p.ctxs) <= id {
		p.ctxs = append(p.ctxs, &probeCtx{
			arrived:  make([]bool, p.expected),
			released: make([]bool, p.expected),
		})
	}
	return p.ctxs[id]
}

func (p *probe) report(v Violation) {
	if len(p.violations) < maxViolations {
		p.violations = append(p.violations, v)
	}
}

// BarrierArrive implements sim.BarrierObserver.
func (p *probe) BarrierArrive(ctx, core int, cycle uint64) {
	c := p.ctx(ctx)
	if core < 0 || core >= p.expected {
		return
	}
	switch {
	case c.arrived[core] && c.released[core]:
		// Early arrival for the next episode while this one drains.
		c.next = append(c.next, core)
	case c.arrived[core]:
		if p.oracles.Safety {
			p.report(Violation{
				Oracle: OracleSafety, Kind: KindLostArrival, Cycle: cycle,
				Detail: fmt.Sprintf("core %d re-arrived on ctx %d with %d/%d arrivals and no release: its first arrival was dropped", core, ctx, c.nArrived, p.expected),
			})
		}
	default:
		c.arrived[core] = true
		c.nArrived++
		if c.nArrived == p.expected {
			c.lastAt = cycle
		}
	}
}

// BarrierRelease implements sim.BarrierObserver. It runs before the release
// reaches the core, so a violation is on record even when the core panics
// on an unexpected release one call later.
func (p *probe) BarrierRelease(ctx, core int, cycle uint64) {
	c := p.ctx(ctx)
	if core < 0 || core >= p.expected {
		return
	}
	if p.oracles.Safety {
		switch {
		case !c.arrived[core]:
			p.report(Violation{
				Oracle: OracleSafety, Kind: KindPhantomRelease, Cycle: cycle,
				Detail: fmt.Sprintf("core %d released on ctx %d without an arrival on record (%d/%d arrived)", core, ctx, c.nArrived, p.expected),
			})
		case c.released[core]:
			p.report(Violation{
				Oracle: OracleSafety, Kind: KindDoubleRelease, Cycle: cycle,
				Detail: fmt.Sprintf("core %d released twice on ctx %d within one episode", core, ctx),
			})
		case c.nArrived < p.expected:
			p.report(Violation{
				Oracle: OracleSafety, Kind: KindPrematureRelease, Cycle: cycle,
				Detail: fmt.Sprintf("core %d released on ctx %d with only %d/%d arrivals", core, ctx, c.nArrived, p.expected),
			})
		}
	}
	if c.arrived[core] && !c.released[core] {
		c.released[core] = true
		c.nRel++
		if c.nRel == p.expected {
			p.closeEpisode(c, cycle)
		}
	}
}

// closeEpisode finishes the shadow episode: check the liveness bound, reset
// the per-core state, and replay buffered early arrivals into the new
// episode.
func (p *probe) closeEpisode(c *probeCtx, cycle uint64) {
	p.closed++
	if p.oracles.Liveness && c.lastAt > 0 && cycle-c.lastAt > p.bound {
		p.report(Violation{
			Oracle: OracleLiveness, Kind: KindEpisodeOverrun, Cycle: cycle,
			Detail: fmt.Sprintf("episode completed %d cycles after its last arrival (bound %d)", cycle-c.lastAt, p.bound),
		})
	}
	for i := range c.arrived {
		c.arrived[i] = false
		c.released[i] = false
	}
	c.nArrived, c.nRel, c.lastAt = 0, 0, 0
	early := c.next
	c.next = nil
	sort.Ints(early)
	for _, core := range early {
		c.arrived[core] = true
		c.nArrived++
	}
	if c.nArrived == p.expected {
		c.lastAt = cycle
	}
}

// GuardSuppressed implements core.GuardObserver.
func (p *probe) GuardSuppressed(ctx, core int, cycle uint64) { p.suppressed++ }

// GuardRetry implements core.GuardObserver.
func (p *probe) GuardRetry(ctx, attempt int, cycle uint64) { p.retries++ }

// GuardFallback implements core.GuardObserver.
func (p *probe) GuardFallback(ctx int, cycle uint64, sticky bool) { p.fallbacks++ }

// GuardEpisode implements core.GuardObserver.
func (p *probe) GuardEpisode(ctx int, opened, closed uint64, retries int, viaFallback bool) {
	p.guardEpisodes++
}

// finish runs the post-mortem oracles once the simulation has returned:
// liveness on the run-level error, conservation on the metrics snapshot.
func (p *probe) finish(rep *sim.Report, runErr error, wantEpisodes uint64) {
	endCycle := uint64(0)
	if rep != nil {
		endCycle = rep.Cycles
	}
	if p.oracles.Liveness && runErr != nil {
		p.report(Violation{
			Oracle: OracleLiveness, Kind: KindNoProgress, Cycle: endCycle,
			Detail: fmt.Sprintf("run failed before completion: %s", firstLine(runErr.Error())),
		})
	}
	if !p.oracles.Conservation || rep == nil {
		return
	}
	counters := rep.Metrics.Counters
	injected := counters[fault.MetricInjected]
	check := func(name string, metric, observed uint64) {
		if metric != observed {
			p.report(Violation{
				Oracle: OracleConservation, Kind: KindMetricsMismatch, Cycle: endCycle,
				Detail: fmt.Sprintf("%s counter=%d but oracle observed %d", name, metric, observed),
			})
		}
	}
	check(core.MetricGLRetries, counters[core.MetricGLRetries], p.retries)
	check(core.MetricGLFallbacks, counters[core.MetricGLFallbacks], p.fallbacks)
	check(core.MetricGLSpuriousReleases, counters[core.MetricGLSpuriousReleases], p.suppressed)
	if injected == 0 && p.retries+p.fallbacks+p.suppressed > 0 {
		p.report(Violation{
			Oracle: OracleConservation, Kind: KindRecoveryWithoutFault, Cycle: endCycle,
			Detail: fmt.Sprintf("guard recorded %d retries, %d fallbacks, %d suppressions with zero injected faults", p.retries, p.fallbacks, p.suppressed),
		})
	}
	// Episode accounting only means something for a clean, safe run: after
	// a wedge or a safety break the counts legitimately disagree.
	if runErr == nil && !p.sawOracle(OracleSafety) {
		if rep.BarrierEpisodes != wantEpisodes {
			p.report(Violation{
				Oracle: OracleConservation, Kind: KindLostEpisodes, Cycle: endCycle,
				Detail: fmt.Sprintf("run completed with %d barrier episodes, workload issued %d", rep.BarrierEpisodes, wantEpisodes),
			})
		}
		if p.guardEpisodes > 0 && p.closed != p.guardEpisodes {
			p.report(Violation{
				Oracle: OracleConservation, Kind: KindLostEpisodes, Cycle: endCycle,
				Detail: fmt.Sprintf("guard closed %d episodes but the metering layer saw %d complete", p.guardEpisodes, p.closed),
			})
		}
	}
}

// sawOracle reports whether any recorded violation belongs to the oracle.
func (p *probe) sawOracle(oracle string) bool {
	for _, v := range p.violations {
		if v.Oracle == oracle {
			return true
		}
	}
	return false
}

// firstLine trims an error message to its first line (panic messages carry
// whole stack traces).
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
