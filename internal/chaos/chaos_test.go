package chaos

import (
	"strings"
	"testing"

	"repro/internal/fault"
)

// fastRun keeps unit-test chaos runs small: 4 iterations (16 episodes) on
// the default 16-core mesh, with a tight watchdog.
func fastRun() RunConfig {
	return RunConfig{Iters: 4, CycleBudget: 2_000_000, StallLimit: 60_000}
}

// chaosRecovery is the tightened guard config campaign plans use.
func chaosRecovery(disabled bool) fault.Recovery {
	return fault.Recovery{
		Disabled:        disabled,
		Timeout:         2048,
		MaxRetries:      2,
		FallbackPenalty: 256,
		StickyAfter:     4,
	}
}

func TestCleanPlanTripsNothing(t *testing.T) {
	out := RunPlan(fastRun(), &fault.Plan{Seed: 1, Recovery: chaosRecovery(false)})
	if out.RunErr != "" {
		t.Fatalf("clean run failed: %s", out.RunErr)
	}
	if v := out.Tripped(); v != nil {
		t.Fatalf("clean run tripped %s", v)
	}
	if out.Report == nil || out.Report.BarrierEpisodes != 16 {
		t.Fatalf("want 16 episodes, got %+v", out.Report)
	}
}

func TestUnguardedDropTripsLiveness(t *testing.T) {
	plan := &fault.Plan{
		Seed:     1,
		Recovery: chaosRecovery(true),
		Events:   []fault.Event{{Site: fault.GLDrop, From: 0, Until: 1 << 40, Loc: -1}},
	}
	out := RunPlan(fastRun(), plan)
	if out.RunErr == "" {
		t.Fatalf("unguarded total drop should wedge, got clean run")
	}
	v := out.Tripped()
	if v == nil || v.Oracle != OracleLiveness || v.Kind != KindNoProgress {
		t.Fatalf("want liveness/no-progress, got %v (violations %v)", v, out.Violations)
	}
}

func TestGuardedDropRecoversCleanly(t *testing.T) {
	plan := &fault.Plan{
		Seed:     1,
		Recovery: chaosRecovery(false),
		Events:   []fault.Event{{Site: fault.GLDrop, From: 0, Until: 1 << 40, Loc: -1}},
	}
	out := RunPlan(fastRun(), plan)
	if out.RunErr != "" {
		t.Fatalf("guarded run failed: %s", out.RunErr)
	}
	if v := out.Tripped(); v != nil {
		t.Fatalf("guarded recovery tripped %s (violations %v)", v, out.Violations)
	}
}

func TestUnguardedSpuriousTripsSafety(t *testing.T) {
	plan := &fault.Plan{
		Seed:     1,
		Recovery: chaosRecovery(true),
		Events:   []fault.Event{{Site: fault.GLSpurious, From: 0, Until: 1 << 40, Loc: -1}},
	}
	out := RunPlan(fastRun(), plan)
	found := false
	for _, v := range out.Violations {
		if v.Oracle == OracleSafety {
			found = true
		}
	}
	if !found {
		t.Fatalf("unguarded spurious assertions should break safety, got %v (runErr %s)",
			out.Violations, out.RunErr)
	}
}

func TestGuardedSpuriousIsSuppressed(t *testing.T) {
	plan := &fault.Plan{
		Seed:     7,
		Recovery: chaosRecovery(false),
		Events:   []fault.Event{{Site: fault.GLSpurious, From: 0, Until: 1 << 40, Loc: -1}},
	}
	out := RunPlan(fastRun(), plan)
	if out.RunErr != "" {
		t.Fatalf("guarded run failed: %s", out.RunErr)
	}
	for _, v := range out.Violations {
		if v.Oracle == OracleSafety {
			t.Fatalf("guard let a safety violation through: %s", v)
		}
	}
}

func TestRunPlanDeterministic(t *testing.T) {
	plan := &fault.Plan{
		Seed:     3,
		Recovery: chaosRecovery(true),
		Rates:    ratesWith(fault.GLDrop, 1e-2),
	}
	a := RunPlan(fastRun(), plan)
	b := RunPlan(fastRun(), plan)
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("violation counts differ: %d vs %d", len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		if a.Violations[i] != b.Violations[i] {
			t.Fatalf("violation %d differs: %v vs %v", i, a.Violations[i], b.Violations[i])
		}
	}
	if a.RunErr != b.RunErr {
		t.Fatalf("run errors differ: %q vs %q", a.RunErr, b.RunErr)
	}
	if a.Report != nil && b.Report != nil && a.Report.Fingerprint() != b.Report.Fingerprint() {
		t.Fatalf("fingerprints differ: %s vs %s", a.Report.Fingerprint(), b.Report.Fingerprint())
	}
}

func ratesWith(s fault.Site, r float64) [fault.NumSites]float64 {
	var rates [fault.NumSites]float64
	rates[s] = r
	return rates
}

func TestParseOracles(t *testing.T) {
	set, err := ParseOracles("safety,conservation")
	if err != nil {
		t.Fatal(err)
	}
	if !set.Safety || set.Liveness || !set.Conservation {
		t.Fatalf("bad set %+v", set)
	}
	if got := set.String(); got != "safety,conservation" {
		t.Fatalf("String() = %q", got)
	}
	if all, err := ParseOracles("all"); err != nil || all != AllOracles() {
		t.Fatalf("all: %+v, %v", all, err)
	}
	if _, err := ParseOracles("sloth"); err == nil {
		t.Fatal("want error for unknown oracle")
	}
	if _, err := ParseOracles(""); err == nil {
		t.Fatal("want error for empty selection")
	}
}

func TestParseVerdict(t *testing.T) {
	v, err := ParseVerdict("liveness/no-progress")
	if err != nil {
		t.Fatal(err)
	}
	if v.Oracle != OracleLiveness || v.Kind != KindNoProgress {
		t.Fatalf("bad verdict %+v", v)
	}
	for _, bad := range []string{"", "liveness", "sloth/naps"} {
		if _, err := ParseVerdict(bad); err == nil {
			t.Fatalf("want error for %q", bad)
		}
	}
}

func TestLivenessBound(t *testing.T) {
	plan := &fault.Plan{Recovery: chaosRecovery(false)}
	bound := livenessBound(plan, 4_000_000)
	// timeout 2048 with 2 retries: 2048 + 4096 + 8192 plus penalty+slack.
	want := uint64(2048+4096+8192) + 256 + 4096
	if bound != want {
		t.Fatalf("bound = %d, want %d", bound, want)
	}
	if b := livenessBound(plan, 1000); b != 1000 {
		t.Fatalf("bound should clamp to budget, got %d", b)
	}
}

func TestOutcomeMatches(t *testing.T) {
	out := Outcome{Violations: []Violation{
		{Oracle: OracleSafety, Kind: KindPrematureRelease},
		{Oracle: OracleLiveness, Kind: KindNoProgress},
	}}
	if !out.Matches(Violation{Oracle: OracleLiveness, Kind: KindNoProgress}) {
		t.Fatal("should match second violation")
	}
	if out.Matches(Violation{Oracle: OracleConservation, Kind: KindLostEpisodes}) {
		t.Fatal("should not match absent verdict")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Oracle: OracleSafety, Kind: KindDoubleRelease, Cycle: 42, Detail: "core 3"}
	s := v.String()
	for _, want := range []string{"safety/double-release", "@42", "core 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
