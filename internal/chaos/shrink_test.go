package chaos

import (
	"testing"

	"repro/internal/fault"
)

// noisyWedge builds a plan whose only real killer is the unguarded
// total G-line drop; the watch/NoC rates and the miscount burst are inert
// noise the minimizer must strip (the synthetic barrier loop never sends
// NoC packets or takes the spin-watch path).
func noisyWedge() *fault.Plan {
	p := &fault.Plan{
		Seed:     11,
		Recovery: chaosRecovery(true),
		Events: []fault.Event{
			{Site: fault.GLDrop, From: 0, Until: 1 << 40, Loc: -1},
			{Site: fault.SCSMAMiscount, From: 5000, Until: 6000, Loc: -1, K: 2},
		},
	}
	p.Rates[fault.WatchDrop] = 1e-2
	p.Rates[fault.NoCCorrupt] = 1e-3
	return p
}

func TestMinimizeStripsNoiseAtoms(t *testing.T) {
	plan := noisyWedge()
	out := RunPlan(fastRun(), plan)
	v := out.Tripped()
	if v == nil {
		t.Fatal("seed plan should trip an oracle")
	}
	min, stats := Minimize(fastRun(), plan, *v, 200)
	if stats.FromAtoms != 4 {
		t.Fatalf("want 4 starting atoms, got %d", stats.FromAtoms)
	}
	if stats.ToAtoms != 1 {
		t.Fatalf("want 1 surviving atom, got %d (plan %s)", stats.ToAtoms, min.String())
	}
	if n := countSites(min); n != 1 {
		t.Fatalf("want 1 site, got %d", n)
	}
	if min.Rates[fault.WatchDrop] != 0 || min.Rates[fault.NoCCorrupt] != 0 {
		t.Fatalf("noise rates survived: %s", min.String())
	}
	if !RunPlan(fastRun(), min).Matches(*v) {
		t.Fatalf("minimized plan lost the verdict %s: %s", v.Key(), min.String())
	}
	if stats.Runs > 200 {
		t.Fatalf("minimization overspent its budget: %d runs", stats.Runs)
	}
}

func TestMinimizeShrinksEventWindow(t *testing.T) {
	// A wedge only needs the drop window to cover one episode's arrivals;
	// the huge window should bisect down massively.
	plan := &fault.Plan{
		Seed:     11,
		Recovery: chaosRecovery(true),
		Events:   []fault.Event{{Site: fault.GLDrop, From: 0, Until: 1 << 40, Loc: -1}},
	}
	out := RunPlan(fastRun(), plan)
	v := out.Tripped()
	if v == nil {
		t.Fatal("seed plan should trip an oracle")
	}
	min, _ := Minimize(fastRun(), plan, *v, 300)
	if len(min.Events) != 1 {
		t.Fatalf("want 1 event, got %s", min.String())
	}
	if w := min.Events[0].Until - min.Events[0].From; w >= 1<<40 {
		t.Fatalf("window did not shrink: %s", min.String())
	}
	if !RunPlan(fastRun(), min).Matches(*v) {
		t.Fatalf("minimized plan lost the verdict: %s", min.String())
	}
}

func TestMinimizeIsDeterministic(t *testing.T) {
	plan := noisyWedge()
	v := *RunPlan(fastRun(), plan).Tripped()
	a, sa := Minimize(fastRun(), plan, v, 150)
	b, sb := Minimize(fastRun(), plan, v, 150)
	if a.String() != b.String() {
		t.Fatalf("minimization diverged: %q vs %q", a.String(), b.String())
	}
	if sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
}

func TestMinimizedPlanRoundTripsThroughParser(t *testing.T) {
	plan := noisyWedge()
	v := *RunPlan(fastRun(), plan).Tripped()
	min, _ := Minimize(fastRun(), plan, v, 150)
	parsed, err := fault.ParsePlan(min.String())
	if err != nil {
		t.Fatalf("minimized plan %q does not parse: %v", min.String(), err)
	}
	if !RunPlan(fastRun(), parsed).Matches(v) {
		t.Fatalf("re-parsed reproducer lost the verdict: %s", min.String())
	}
}

func TestSplitAndComplement(t *testing.T) {
	atoms := make([]atom, 5)
	for i := range atoms {
		atoms[i].rate = float64(i + 1)
	}
	chunks := split(atoms, 2)
	if len(chunks) != 2 || len(chunks[0])+len(chunks[1]) != 5 {
		t.Fatalf("bad split: %d chunks", len(chunks))
	}
	chunks = split(atoms, 9)
	if len(chunks) != 5 {
		t.Fatalf("overshooting n should clamp to len, got %d chunks", len(chunks))
	}
	comp := complement(chunks, 0)
	if len(comp) != 4 || comp[0].rate != 2 {
		t.Fatalf("bad complement: %+v", comp)
	}
}
