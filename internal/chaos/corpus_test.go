package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wedgeRepro is a hand-built minimal reproducer: unguarded total G-line
// drop wedges the first episode.
func wedgeRepro() Reproducer {
	return Reproducer{
		Name:        "unit-wedge",
		Note:        "hand-built for corpus tests",
		Plan:        "seed=1,@0-100000:gl.drop:-1:0,recovery.off",
		Verdict:     Violation{Oracle: OracleLiveness, Kind: KindNoProgress},
		Cores:       16,
		Iters:       4,
		CycleBudget: 2_000_000,
		StallLimit:  60_000,
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := wedgeRepro()
	path, err := WriteCorpus(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "unit-wedge.repro" {
		t.Fatalf("unexpected path %s", path)
	}
	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("want 1 entry, got %d", len(loaded))
	}
	if loaded[0] != r {
		t.Fatalf("round-trip drift:\nwrote %+v\nread  %+v", r, loaded[0])
	}
}

func TestCorpusReplayPinsVerdict(t *testing.T) {
	r := wedgeRepro()
	out, err := r.Replay()
	if err != nil {
		t.Fatalf("replay failed: %v (violations %v)", err, out.Violations)
	}
	// A plan pinned to the wrong verdict must be flagged as drifted.
	r.Verdict = Violation{Oracle: OracleSafety, Kind: KindDoubleRelease}
	if _, err := r.Replay(); err == nil {
		t.Fatal("want verdict-drift error")
	}
	// A clean plan pinned to any verdict must be flagged too.
	r = wedgeRepro()
	r.Plan = "seed=1"
	if _, err := r.Replay(); err == nil || !strings.Contains(err.Error(), "no longer trips") {
		t.Fatalf("want no-longer-trips error, got %v", err)
	}
}

func TestParseReproducerErrors(t *testing.T) {
	cases := map[string]string{
		"missing plan":   "oracle: liveness/no-progress\n",
		"missing oracle": "plan: seed=1\n",
		"bad plan":       "plan: seed=banana\noracle: liveness/no-progress\n",
		"bad oracle":     "plan: seed=1\noracle: sloth/naps\n",
		"bad key":        "plan: seed=1\noracle: liveness/no-progress\nflavor: mint\n",
		"bad number":     "plan: seed=1\noracle: liveness/no-progress\ncores: many\n",
		"bare line":      "plan: seed=1\noracle: liveness/no-progress\nnocolon\n",
	}
	for name, text := range cases {
		if _, err := ParseReproducer("x", text); err == nil {
			t.Errorf("%s: want parse error", name)
		}
	}
}

func TestParseReproducerComments(t *testing.T) {
	text := "# first note\n#  second note\n\nplan: seed=1,gl.drop=1e-3\noracle: liveness/no-progress\niters: 2\n"
	r, err := ParseReproducer("noted", text)
	if err != nil {
		t.Fatal(err)
	}
	if r.Note != "first note\nsecond note" {
		t.Fatalf("notes = %q", r.Note)
	}
	if r.Iters != 2 || r.Cores != 0 {
		t.Fatalf("fields = %+v", r)
	}
}

func TestLoadCorpusMissingDirIsEmpty(t *testing.T) {
	got, err := LoadCorpus(filepath.Join(t.TempDir(), "nope"))
	if err != nil || got != nil {
		t.Fatalf("want empty corpus, got %v, %v", got, err)
	}
}

func TestLoadCorpusIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("docs"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCorpus(dir, wedgeRepro()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("want 1 entry, got %d", len(loaded))
	}
}

func TestWriteCorpusValidates(t *testing.T) {
	dir := t.TempDir()
	r := wedgeRepro()
	r.Name = ""
	if _, err := WriteCorpus(dir, r); err == nil {
		t.Fatal("want error for empty name")
	}
	r = wedgeRepro()
	r.Plan = "seed=banana"
	if _, err := WriteCorpus(dir, r); err == nil {
		t.Fatal("want error for unparseable plan")
	}
}
