// Package chaos searches the fault space for plans that break the G-line
// barrier protocol, and reduces every find to a minimal, replayable
// reproducer.
//
// The paper's 4-cycle protocol (Figure 4 FSMs) has crisp invariants that
// make machine-checkable oracles:
//
//   - safety: no core is released from episode N before every participant
//     arrived at N, and no core is released twice in one episode;
//   - liveness: once every participant has arrived, the episode completes
//     within a bound derived from the recovery fallback path;
//   - conservation: the recovery metrics (gl.retries, gl.fallbacks,
//     gl.spurious_releases, fault.injected) must reconcile with the
//     protocol events the oracles observed.
//
// A campaign (see Campaign) generates randomized fault plans over the
// fault.Plan grammar from one seed, runs each through internal/sim with
// the oracles attached, and delta-debugs any failing plan (ddmin over
// fault sites, then over rates and windows) down to a minimal reproducer
// emitted in fault.ParsePlan syntax. Minimized reproducers live in a
// testdata corpus that `go test -short` replays (see corpus.go).
//
// Every run is deterministic: same plan, same verdict, regardless of sweep
// parallelism. The only randomness is the campaign generator's seeded
// source.
package chaos

import (
	"fmt"
	"runtime/debug"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RunConfig shapes one oracle-checked chaos run. The zero value selects
// the campaign defaults: a 16-core flat 4x4 mesh running the synthetic
// barrier loop, every oracle armed.
type RunConfig struct {
	// Cores is the CMP size (0 = 16, the largest flat mesh the chaos
	// grid uses; protocol bugs do not need a big chip to show).
	Cores int
	// Iters is the synthetic benchmark's iteration count (0 = 8, i.e.
	// 32 barrier episodes — enough for back-to-back episode faults).
	Iters int
	// CycleBudget bounds the run (0 = 4M cycles).
	CycleBudget uint64
	// StallLimit arms the engine watchdog (0 = 100k cycles): a wedged
	// unguarded barrier is cut short instead of burning the budget.
	StallLimit uint64
	// Oracles selects the invariant checks; the zero set arms all.
	Oracles OracleSet
	// TraceCapacity, when positive, attaches a span timeline of that many
	// events to the run; the Outcome carries it for artifact export.
	// Observation only — verdicts are identical with or without it.
	TraceCapacity int
}

// Chaos-run defaults; see RunConfig.
const (
	DefaultCores       = 16
	DefaultIters       = 8
	DefaultCycleBudget = 4_000_000
	DefaultStallLimit  = 100_000
)

// withDefaults resolves zero fields.
func (c RunConfig) withDefaults() RunConfig {
	if c.Cores == 0 {
		c.Cores = DefaultCores
	}
	if c.Iters == 0 {
		c.Iters = DefaultIters
	}
	if c.CycleBudget == 0 {
		c.CycleBudget = DefaultCycleBudget
	}
	if c.StallLimit == 0 {
		c.StallLimit = DefaultStallLimit
	}
	if !c.Oracles.Safety && !c.Oracles.Liveness && !c.Oracles.Conservation {
		c.Oracles = AllOracles()
	}
	return c
}

// barriers returns the run's expected episode count.
func (c RunConfig) barriers() uint64 {
	return (&workload.Synthetic{Iters: c.Iters}).Barriers(c.Cores)
}

// Outcome is one chaos run's result: the raw report (when the simulation
// got far enough to produce one), the run-level failure if any, and every
// oracle violation in detection order.
type Outcome struct {
	Report     *sim.Report `json:"report,omitempty"`
	RunErr     string      `json:"run_err,omitempty"`
	Violations []Violation `json:"violations,omitempty"`
	// Timeline is the run's span timeline when RunConfig.TraceCapacity
	// asked for one; export it with Timeline.WriteChrome. Not serialized —
	// the Chrome trace file is the artifact format.
	Timeline *trace.Timeline `json:"-"`
}

// Tripped returns the first violation, or nil when every oracle held.
func (o Outcome) Tripped() *Violation {
	if len(o.Violations) == 0 {
		return nil
	}
	return &o.Violations[0]
}

// Matches reports whether any violation has the target's oracle and kind —
// the "same failure" test ddmin reduces against.
func (o Outcome) Matches(target Violation) bool {
	for _, v := range o.Violations {
		if v.Oracle == target.Oracle && v.Kind == target.Kind {
			return true
		}
	}
	return false
}

// RunPlan executes the synthetic barrier loop under the given fault plan
// with the configured oracles attached and returns the verdict. The run is
// a pure function of (cfg, plan): chaos replays are bit-deterministic. A
// panic inside the simulation (e.g. the unguarded protocol releasing a
// non-waiting core) is captured into RunErr after the online oracles have
// seen the violating event.
func RunPlan(cfg RunConfig, plan *fault.Plan) Outcome {
	cfg = cfg.withDefaults()
	sysCfg := config.Default(cfg.Cores)
	sysCfg.Faults = plan
	p := newProbe(cfg.Cores, livenessBound(plan, cfg.CycleBudget), cfg.Oracles)
	rep, tl, err := runProtected(sysCfg, cfg, p)
	out := Outcome{Report: rep, Timeline: tl}
	if err != nil {
		out.RunErr = err.Error()
	}
	p.finish(rep, err, cfg.barriers())
	out.Violations = p.violations
	return out
}

// runProtected builds and drives the system, converting a panic into an
// error so one crashing plan degrades one campaign slot, not the process.
func runProtected(sysCfg config.Config, cfg RunConfig, p *probe) (rep *sim.Report, tl *trace.Timeline, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("chaos: run panicked: %v\n%s", r, debug.Stack())
		}
	}()
	sys, err := sim.New(sysCfg)
	if err != nil {
		return nil, nil, err
	}
	sys.Eng.StallLimit = cfg.StallLimit
	if cfg.TraceCapacity > 0 {
		tl = sys.AttachTimeline(cfg.TraceCapacity)
	}
	sys.ObserveBarrier(p)
	b, err := sys.NewBarrier(barrier.KindGL, cfg.Cores)
	if err != nil {
		return nil, tl, err
	}
	w := &workload.Synthetic{Iters: cfg.Iters}
	progs, err := w.Programs(sys, b, cfg.Cores)
	if err != nil {
		return nil, tl, err
	}
	if err := sys.Launch(progs); err != nil {
		return nil, tl, err
	}
	rep, err = sys.Run(cfg.CycleBudget)
	sys.Close()
	return rep, tl, err
}

// livenessBound derives the per-episode completion bound from the recovery
// fallback path: every hardware retry's (exponentially backed-off) timeout
// may elapse before the guard finishes the episode in software, plus the
// fallback release penalty and scheduling slack. Unguarded plans get the
// same bound — the bound the protocol is supposed to satisfy — though a
// wedged unguarded run usually trips the engine watchdog first.
func livenessBound(plan *fault.Plan, budget uint64) uint64 {
	rec := plan.Recovery.WithDefaults()
	bound := rec.FallbackPenalty + 4096
	t := rec.Timeout
	for i := 0; i <= rec.MaxRetries; i++ {
		if bound > budget-t || t > budget {
			return budget
		}
		bound += t
		t <<= 1
	}
	if bound > budget {
		bound = budget
	}
	return bound
}
