// Package cpu models the in-order cores of the CMP and the operation-level
// program interface workloads are written against.
//
// A Program is an ordinary Go function running in its own goroutine; it
// issues operations (compute, loads, stores, atomics, G-line barriers)
// through a Ctx. The core and the program hand off control synchronously —
// exactly one of them runs at any instant — so simulation remains
// deterministic while workloads read like straight-line code.
package cpu

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Timeline span names: one span per completed operation on the core's
// track, dispatch to completion, with the op's address (or barrier context)
// as arg. Coherence miss spans nest inside them.
const (
	spanOpCompute    = "cpu.compute"
	spanOpLoad       = "cpu.load"
	spanOpStore      = "cpu.store"
	spanOpAtomic     = "cpu.atomic"
	spanOpBarrier    = "cpu.barrier"
	spanOpSpin       = "cpu.spin"
	spanOpLoadRange  = "cpu.load.range"
	spanOpStoreRange = "cpu.store.range"
	spanOpLoadLinked = "cpu.load.linked"
	spanOpStoreCond  = "cpu.store.cond"
)

// opSpanNames maps an opKind to its timeline span name; entries are the
// package-level constants above, so emit sites stay spanname-clean.
var opSpanNames = [numOpKinds]string{
	opCompute:    spanOpCompute,
	opLoad:       spanOpLoad,
	opStore:      spanOpStore,
	opAtomic:     spanOpAtomic,
	opGLBarrier:  spanOpBarrier,
	opSpin:       spanOpSpin,
	opLoadRange:  spanOpLoadRange,
	opStoreRange: spanOpStoreRange,
	opLoadLinked: spanOpLoadLinked,
	opStoreCond:  spanOpStoreCond,
}

// Program is the code a core executes.
type Program func(c *Ctx)

// BarrierEngine is the hardware barrier the core's bar_reg is wired to
// (the G-line network). Arrive corresponds to `mov 1, bar_reg`; the engine
// calls the core's GLRelease when the hardware resets bar_reg.
type BarrierEngine interface {
	Arrive(core int, barrierCtx int)
}

type opKind int

const (
	opCompute opKind = iota
	opLoad
	opStore
	opAtomic
	opGLBarrier
	opSpin
	opLoadRange
	opStoreRange
	opLoadLinked
	opStoreCond

	numOpKinds
)

type op struct {
	kind       opKind
	cycles     uint64
	addr       uint64
	operand    uint64
	value      uint64
	hasValue   bool
	atomicKind coherence.AccessKind
	barrierCtx int
	region     stats.Region
}

// Core is one in-order processor. It executes at most one operation at a
// time, blocking on memory, and attributes every cycle of its run to a
// stats.Region.
type Core struct {
	id         int
	eng        *engine.Engine
	issueWidth int
	overhead   uint64 // G-line barrier software call overhead
	l1         *coherence.L1
	be         BarrierEngine

	opCh  chan op
	resCh chan uint64
	abort chan struct{}

	breakdown  stats.TimeBreakdown
	opCounts   [numOpKinds]uint64
	startCycle uint64
	endCycle   uint64
	running    bool
	done       bool
	err        error

	// curOp is the op being executed (valid while curValid); opStart is
	// the cycle it was dispatched. The core is in-order and blocking, so
	// one slot covers every op kind — no per-op allocation.
	curOp    op
	opStart  uint64
	curValid bool

	glPending bool // outstanding G-line barrier, waiting for GLRelease
	pendStart uint64

	// tl, when set, records one span per completed op on the core's track.
	tl *trace.Timeline

	rangeI uint64 // next element of an in-flight load/store range

	// Method values bound once at construction so the per-op hot path
	// passes existing funcs instead of building closures.
	completeFn    func(uint64)
	spinAttemptFn func()
	spinDoneFn    func(uint64)
	rangeMissFn   func(uint64)
}

// NewCore builds a core. be may be nil if the configuration has no G-line
// network; executing a GLBarrier op then fails the program.
func NewCore(id int, eng *engine.Engine, issueWidth int, glOverhead uint64, l1 *coherence.L1, be BarrierEngine) *Core {
	c := &Core{
		id:         id,
		eng:        eng,
		issueWidth: issueWidth,
		overhead:   glOverhead,
		l1:         l1,
		be:         be,
		opCh:       make(chan op),
		resCh:      make(chan uint64),
		abort:      make(chan struct{}),
	}
	c.completeFn = c.complete
	c.spinAttemptFn = c.spinAttempt
	c.spinDoneFn = c.spinDone
	c.rangeMissFn = c.rangeMiss
	return c
}

// ID returns the core's tile index.
func (c *Core) ID() int { return c.id }

// SetBarrierEngine rewires bar_reg to a different barrier network; only
// valid before the core starts running.
func (c *Core) SetBarrierEngine(be BarrierEngine) {
	if c.running {
		panic(fmt.Sprintf("cpu: core %d rewired while running", c.id))
	}
	c.be = be
}

// SetTimeline attaches a span timeline recording op handshakes; only valid
// before the core starts running.
func (c *Core) SetTimeline(tl *trace.Timeline) {
	if c.running {
		panic(fmt.Sprintf("cpu: core %d timeline attached while running", c.id))
	}
	c.tl = tl
}

// Done reports whether the program has finished.
func (c *Core) Done() bool { return c.done }

// Err returns the program's failure, if it panicked.
func (c *Core) Err() error { return c.err }

// Breakdown returns the per-region cycle attribution so far.
func (c *Core) Breakdown() stats.TimeBreakdown { return c.breakdown }

// OpCounts returns executed-operation counts indexed by
// compute/load/store/atomic/barrier.
func (c *Core) OpCounts() (compute, loads, stores, atomics, barriers uint64) {
	return c.opCounts[opCompute], c.opCounts[opLoad], c.opCounts[opStore], c.opCounts[opAtomic], c.opCounts[opGLBarrier]
}

// FinishCycle returns the cycle the program completed (valid once Done).
func (c *Core) FinishCycle() uint64 { return c.endCycle }

// errAborted is the sentinel carried by the panic that unwinds a program
// goroutine when the simulation is torn down early.
var errAborted = fmt.Errorf("cpu: simulation aborted")

// Start launches prog on the core. The program begins issuing operations at
// the engine's current cycle.
func (c *Core) Start(prog Program) {
	if c.running {
		panic(fmt.Sprintf("cpu: core %d already running", c.id))
	}
	c.running = true
	c.startCycle = c.eng.Now()
	ctx := &Ctx{core: c, region: stats.RegionBusy}
	// The program goroutine waits for the engine's first next-op event
	// before running. This start gate extends the op-handshake
	// serialization to the program's very first instructions: code a
	// program runs before its first operation (e.g. a barrier recorder
	// stamping an arrival) is ordered after everything the engine ran
	// earlier, so programs never execute concurrently with each other.
	gate := make(chan struct{})
	go func() {
		defer close(c.opCh)
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok && err == errAborted {
					return
				}
				c.err = fmt.Errorf("cpu: core %d program panic: %v", c.id, r)
			}
		}()
		select {
		case <-gate:
		case <-c.abort:
			return
		}
		prog(ctx)
	}()
	c.eng.At(c.eng.Now(), func() {
		close(gate)
		c.nextOp()
	})
}

// Abort tears the core down mid-run (watchdog/error paths). The program
// goroutine unwinds the next time it touches its Ctx.
func (c *Core) Abort() {
	select {
	case <-c.abort:
	default:
		close(c.abort)
	}
}

// complete finishes the current op: attribute its cycles, hand the result
// to the program, pull the next op. Bound once as c.completeFn so memory
// accesses pass an existing func value.
func (c *Core) complete(val uint64) {
	if c.tl != nil {
		//lint:allow spanname looked up in the const-initialized opSpanNames table
		c.tl.Span(trace.CoreTrack(c.id), opSpanNames[c.curOp.kind], c.opStart, c.eng.Now(), 0, c.curOp.addr)
	}
	c.breakdown.Add(c.curOp.region, c.eng.Now()-c.opStart)
	select {
	case c.resCh <- val:
	case <-c.abort:
		c.finishProgram()
		return
	}
	c.nextOp()
}

// completeZeroCB completes the current op with result 0 after a pure delay
// (compute spans, accumulated range hits).
func completeZeroCB(recv, _ any, _, _ uint64) { recv.(*Core).complete(0) }

// storeCondCB resolves a StoreConditional after the L1 hit latency.
func storeCondCB(recv, _ any, _, _ uint64) {
	c := recv.(*Core)
	if c.l1.StoreConditional(c.curOp.addr, c.curOp.value) {
		c.complete(1)
	} else {
		c.complete(0)
	}
}

// glArriveCB writes bar_reg after the software call overhead.
func glArriveCB(recv, _ any, _, _ uint64) {
	c := recv.(*Core)
	c.be.Arrive(c.id, c.curOp.barrierCtx)
}

// rangeFireCB issues the pending range miss after its accumulated hit run.
func rangeFireCB(recv, _ any, _, _ uint64) { recv.(*Core).rangeFire() }

// nextOp pulls the next operation from the program and executes it.
func (c *Core) nextOp() {
	var o op
	var ok bool
	select {
	case o, ok = <-c.opCh:
	case <-c.abort:
		c.finishProgram()
		return
	}
	if !ok {
		c.finishProgram()
		return
	}
	c.opCounts[o.kind]++
	c.curOp = o
	c.opStart = c.eng.Now()
	c.curValid = true
	switch o.kind {
	case opCompute:
		if o.cycles == 0 {
			c.complete(0)
			return
		}
		c.eng.CallAfter(o.cycles, completeZeroCB, c, nil, 0, 0)
	case opLoad:
		c.l1.Access(coherence.Read, o.addr, 0, 0, false, c.completeFn)
	case opLoadLinked:
		c.l1.Access(coherence.LoadLinked, o.addr, 0, 0, false, c.completeFn)
	case opStoreCond:
		c.eng.CallAfter(c.l1.HitLatency(), storeCondCB, c, nil, 0, 0)
	case opStore:
		c.l1.Access(coherence.Write, o.addr, 0, o.value, o.hasValue, c.completeFn)
	case opAtomic:
		c.l1.Access(o.atomicKind, o.addr, o.operand, 0, false, c.completeFn)
	case opSpin:
		c.spinAttempt()
	case opLoadRange, opStoreRange:
		c.rangeI = 0
		c.rangeStep()
	case opGLBarrier:
		if c.be == nil {
			c.err = fmt.Errorf("cpu: core %d executed GLBarrier without a barrier engine", c.id)
			c.Abort()
			c.finishProgram()
			return
		}
		c.glPending = true
		c.pendStart = c.opStart
		c.eng.CallAfter(c.overhead, glArriveCB, c, nil, 0, 0)
	}
}

// spinAttempt re-reads the spin target; bound once as c.spinAttemptFn so
// the L1's watch wakeup reuses it.
func (c *Core) spinAttempt() {
	c.l1.Access(coherence.Read, c.curOp.addr, 0, 0, false, c.spinDoneFn)
}

// spinDone inspects one spin read. The spin op stays current until it
// completes, so curOp carries addr/operand across wakeups.
func (c *Core) spinDone(v uint64) {
	if v == c.curOp.operand {
		c.complete(v)
		return
	}
	// The value can only change after an invalidation of the cached copy:
	// sleep until then (timing-identical to re-loading the L1-resident
	// line every cycle).
	c.l1.Watch(c.curOp.addr, c.spinAttemptFn)
}

// rangeStep executes a strided sequence of loads or stores element by
// element. Runs of L1 hits are accumulated into a single event (each hit
// still costs its full hit latency and updates cache state); every miss
// goes through the normal coherence path. Timing is equivalent to issuing
// the accesses one at a time.
func (c *Core) rangeStep() {
	o := &c.curOp
	isLoad := o.kind == opLoadRange
	hitLat := c.l1.HitLatency()
	var acc uint64
	for c.rangeI < o.cycles {
		a := o.addr + c.rangeI*o.operand
		if isLoad && c.l1.TryReadHit(a) {
			acc += hitLat
			c.rangeI++
			continue
		}
		if !isLoad && c.l1.TryWriteHit(a) {
			acc += hitLat
			c.rangeI++
			continue
		}
		break
	}
	if c.rangeI == o.cycles {
		if acc == 0 {
			c.complete(0)
		} else {
			c.eng.CallAfter(acc, completeZeroCB, c, nil, 0, 0)
		}
		return
	}
	if acc > 0 {
		c.eng.CallAfter(acc, rangeFireCB, c, nil, 0, 0)
	} else {
		c.rangeFire()
	}
}

// rangeFire issues the miss at the current range element.
func (c *Core) rangeFire() {
	o := &c.curOp
	kind := coherence.Read
	if o.kind != opLoadRange {
		kind = coherence.Write
	}
	missAddr := o.addr + c.rangeI*o.operand
	c.l1.Access(kind, missAddr, 0, 0, false, c.rangeMissFn)
}

// rangeMiss resumes the range after a miss completes.
func (c *Core) rangeMiss(uint64) {
	c.rangeI++
	c.rangeStep()
}

// GLRelease is called by the G-line network when the hardware resets this
// core's bar_reg: the pending barrier operation completes this cycle.
func (c *Core) GLRelease() {
	if !c.glPending {
		panic(fmt.Sprintf("cpu: core %d released with no barrier pending", c.id))
	}
	c.glPending = false
	c.tl.Span(trace.CoreTrack(c.id), spanOpBarrier, c.pendStart, c.eng.Now(), 0, uint64(c.curOp.barrierCtx))
	c.breakdown.Add(c.curOp.region, c.eng.Now()-c.pendStart)
	select {
	case c.resCh <- 0:
	case <-c.abort:
		c.finishProgram()
		return
	}
	c.nextOp()
}

// WaitingAtBarrier reports whether the core has a G-line barrier pending.
func (c *Core) WaitingAtBarrier() bool { return c.glPending }

// String names the op kind for post-mortem dumps.
func (k opKind) String() string {
	switch k {
	case opCompute:
		return "compute"
	case opLoad:
		return "load"
	case opStore:
		return "store"
	case opAtomic:
		return "atomic"
	case opGLBarrier:
		return "gl-barrier"
	case opSpin:
		return "spin"
	case opLoadRange:
		return "load-range"
	case opStoreRange:
		return "store-range"
	case opLoadLinked:
		return "load-linked"
	case opStoreCond:
		return "store-cond"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Status is a point-in-time snapshot of a core's execution state, the
// per-core line of the hang watchdog's post-mortem dump.
type Status struct {
	ID        int    `json:"id"`
	Done      bool   `json:"done"`
	AtBarrier bool   `json:"at_barrier"`        // blocked on a pending G-line barrier
	LastOp    string `json:"last_op,omitempty"` // most recently dispatched op kind
	OpStart   uint64 `json:"op_start"`          // cycle the op was dispatched
	TotalOps  uint64 `json:"total_ops"`         // operations executed so far
	Err       string `json:"err,omitempty"`     // program failure, if any
}

// Status snapshots the core's current execution state.
func (c *Core) Status() Status {
	s := Status{
		ID:        c.id,
		Done:      c.done,
		AtBarrier: c.glPending,
	}
	if c.curValid {
		s.LastOp = c.curOp.kind.String()
		s.OpStart = c.opStart
	}
	for _, n := range c.opCounts {
		s.TotalOps += n
	}
	if c.err != nil {
		s.Err = c.err.Error()
	}
	return s
}

// String renders the status as one dump line.
func (s Status) String() string {
	state := "running"
	switch {
	case s.Done:
		state = "done"
	case s.AtBarrier:
		state = "at-barrier"
	}
	line := fmt.Sprintf("core %3d: %-10s last-op %s@%d ops=%d", s.ID, state, s.LastOp, s.OpStart, s.TotalOps)
	if s.Err != "" {
		line += " err=" + s.Err
	}
	return line
}

func (c *Core) finishProgram() {
	if !c.done {
		c.done = true
		c.endCycle = c.eng.Now()
	}
}

// Ctx is the interface a Program uses to issue operations. It is only valid
// inside the program's goroutine.
type Ctx struct {
	core   *Core
	region stats.Region
}

// do hands one operation to the core's pipeline and blocks the program
// goroutine until the engine has timed it. The channel rendezvous below is
// the one sanctioned crossing between program goroutines and the cycle
// engine: opCh/resCh are unbuffered, so the handshake is synchronous with
// the core's tick and introduces no scheduling nondeterminism.
//
//lint:allow cyclepure op rendezvous is the synchronous core-program bridge
func (x *Ctx) do(o op) uint64 {
	o.region = x.region
	// Outside synchronization regions, memory stall time is attributed to
	// the paper's Read/Write categories; only pure compute stays Busy.
	if o.region == stats.RegionBusy {
		switch o.kind {
		case opLoad, opSpin, opLoadRange, opLoadLinked:
			o.region = stats.RegionRead
		case opStore, opStoreRange, opStoreCond:
			o.region = stats.RegionWrite
		case opAtomic:
			o.region = stats.RegionWrite
		}
	}
	select {
	case x.core.opCh <- o:
	case <-x.core.abort:
		panic(errAborted)
	}
	select {
	case v := <-x.core.resCh:
		return v
	case <-x.core.abort:
		panic(errAborted)
	}
}

// CoreID returns the executing core's tile index.
func (x *Ctx) CoreID() int { return x.core.id }

// Now returns the current simulation cycle.
func (x *Ctx) Now() uint64 { return x.core.eng.Now() }

// Compute advances the core by exactly n cycles of computation.
func (x *Ctx) Compute(n uint64) { x.do(op{kind: opCompute, cycles: n}) }

// Work models executing n instructions on the in-order pipeline: it costs
// ceil(n/issueWidth) cycles.
func (x *Ctx) Work(n int) {
	if n <= 0 {
		return
	}
	w := x.core.issueWidth
	x.Compute(uint64((n + w - 1) / w))
}

// Load reads the word at addr, returning its value.
func (x *Ctx) Load(addr uint64) uint64 { return x.do(op{kind: opLoad, addr: addr}) }

// LoadRange issues count loads starting at base with the given stride in
// bytes (default word size when strideBytes is 0), as a streaming read of
// bulk data. Equivalent in simulated time to count individual Loads.
func (x *Ctx) LoadRange(base uint64, count int, strideBytes uint64) {
	if count <= 0 {
		return
	}
	if strideBytes == 0 {
		strideBytes = 8
	}
	x.do(op{kind: opLoadRange, addr: base, cycles: uint64(count), operand: strideBytes})
}

// StoreRange issues count bulk stores starting at base with the given
// stride in bytes (default word size when strideBytes is 0).
func (x *Ctx) StoreRange(base uint64, count int, strideBytes uint64) {
	if count <= 0 {
		return
	}
	if strideBytes == 0 {
		strideBytes = 8
	}
	x.do(op{kind: opStoreRange, addr: base, cycles: uint64(count), operand: strideBytes})
}

// SpinUntilEq busy-waits (repeated loads) until the word at addr equals
// want, returning the observed value. It simulates a load spin loop with
// per-cycle fidelity but costs the host only one event per invalidation.
func (x *Ctx) SpinUntilEq(addr, want uint64) uint64 {
	return x.do(op{kind: opSpin, addr: addr, operand: want})
}

// LoadLinked reads addr while taking ownership of its line, so a following
// StoreCond can commit locally (the LL/SC pair of 2010-era ISAs).
func (x *Ctx) LoadLinked(addr uint64) uint64 {
	return x.do(op{kind: opLoadLinked, addr: addr})
}

// StoreCond conditionally stores value to addr; it reports whether the
// reservation from the preceding LoadLinked still held.
func (x *Ctx) StoreCond(addr, value uint64) bool {
	return x.do(op{kind: opStoreCond, addr: addr, value: value}) == 1
}

// FetchAddLLSC increments addr by delta with a LoadLinked/StoreCond retry
// loop, returning the previous value. Under contention the line bounces
// between cores — the realistic cost of a shared software counter.
func (x *Ctx) FetchAddLLSC(addr, delta uint64) uint64 {
	for {
		old := x.LoadLinked(addr)
		if x.StoreCond(addr, old+delta) {
			return old
		}
	}
}

// Store writes addr without a tracked value (bulk data).
func (x *Ctx) Store(addr uint64) { x.do(op{kind: opStore, addr: addr}) }

// StoreV writes value to addr with functional visibility (synchronization
// variables).
func (x *Ctx) StoreV(addr, value uint64) {
	x.do(op{kind: opStore, addr: addr, value: value, hasValue: true})
}

// FetchAdd atomically adds delta to addr, returning the previous value.
func (x *Ctx) FetchAdd(addr, delta uint64) uint64 {
	return x.do(op{kind: opAtomic, addr: addr, operand: delta, atomicKind: coherence.AtomicAdd})
}

// TestAndSet atomically stores v to addr, returning the previous value.
func (x *Ctx) TestAndSet(addr, v uint64) uint64 {
	return x.do(op{kind: opAtomic, addr: addr, operand: v, atomicKind: coherence.AtomicTAS})
}

// Swap atomically exchanges addr with v, returning the previous value.
func (x *Ctx) Swap(addr, v uint64) uint64 {
	return x.do(op{kind: opAtomic, addr: addr, operand: v, atomicKind: coherence.AtomicSwap})
}

// GLBarrier executes one hardware barrier on the given G-line context: it
// writes bar_reg and blocks until the network resets it. All cycles spent
// here are attributed to the Barrier region.
func (x *Ctx) GLBarrier(barrierCtx int) {
	prev := x.region
	x.region = stats.RegionBarrier
	x.do(op{kind: opGLBarrier, barrierCtx: barrierCtx})
	x.region = prev
}

// InRegion runs fn with all its operations attributed to region r (nesting
// restores the previous region).
func (x *Ctx) InRegion(r stats.Region, fn func()) {
	prev := x.region
	x.region = r
	defer func() { x.region = prev }()
	fn()
}

// Region returns the current attribution region.
func (x *Ctx) Region() stats.Region { return x.region }
