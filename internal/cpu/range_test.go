package cpu

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/stats"
)

// TestLoadRangeWithMisses: a strided range crossing many lines mixes hits
// and misses and must still match the one-by-one loop exactly.
func TestLoadRangeWithMisses(t *testing.T) {
	run := func(useRange bool) uint64 {
		eng := engine.New()
		cfg := config.Default(4)
		prot := coherence.New(eng, cfg, mem.NewStore())
		core := NewCore(0, eng, 2, 9, prot.L1(0), nil)
		var end uint64
		const stride = 64 // one line per element: every access misses cold
		core.Start(func(c *Ctx) {
			if useRange {
				c.LoadRange(0x8000, 32, stride)
				c.LoadRange(0x8000, 32, stride) // second pass: all hits
			} else {
				for p := 0; p < 2; p++ {
					for i := 0; i < 32; i++ {
						c.Load(0x8000 + uint64(i)*stride)
					}
				}
			}
			end = c.Now()
		})
		for i := 0; i < 10_000_000 && !core.Done(); i++ {
			eng.Step()
		}
		if !core.Done() {
			t.Fatal("program did not finish")
		}
		return end
	}
	a, b := run(true), run(false)
	if a != b {
		t.Errorf("range=%d loop=%d cycles", a, b)
	}
}

func TestStoreRangeTimingMatchesLoop(t *testing.T) {
	run := func(useRange bool) uint64 {
		eng := engine.New()
		cfg := config.Default(4)
		prot := coherence.New(eng, cfg, mem.NewStore())
		core := NewCore(0, eng, 2, 9, prot.L1(0), nil)
		var end uint64
		core.Start(func(c *Ctx) {
			if useRange {
				c.StoreRange(0x9000, 48, 8)
			} else {
				for i := 0; i < 48; i++ {
					c.Store(0x9000 + uint64(i)*8)
				}
			}
			end = c.Now()
		})
		for i := 0; i < 10_000_000 && !core.Done(); i++ {
			eng.Step()
		}
		return end
	}
	if a, b := run(true), run(false); a != b {
		t.Errorf("range=%d loop=%d cycles", a, b)
	}
}

func TestZeroCountRangesAreFree(t *testing.T) {
	h, _ := newCPUHarness(t)
	var at uint64
	h.core.Start(func(c *Ctx) {
		c.LoadRange(0x100, 0, 8)
		c.StoreRange(0x100, -1, 8)
		at = c.Now()
	})
	h.runUntilDone(t, 100)
	if at != 0 {
		t.Errorf("empty ranges took %d cycles", at)
	}
}

func TestInRegionNesting(t *testing.T) {
	h, _ := newCPUHarness(t)
	h.core.Start(func(c *Ctx) {
		c.InRegion(stats.RegionLock, func() {
			c.Compute(5)
			c.InRegion(stats.RegionBarrier, func() {
				c.Compute(7)
			})
			c.Compute(3)
		})
		c.Compute(2)
	})
	h.runUntilDone(t, 1000)
	b := h.core.Breakdown()
	if b[stats.RegionLock] != 8 || b[stats.RegionBarrier] != 7 || b[stats.RegionBusy] != 2 {
		t.Errorf("nesting: lock=%d barrier=%d busy=%d, want 8/7/2",
			b[stats.RegionLock], b[stats.RegionBarrier], b[stats.RegionBusy])
	}
}

func TestRegionAccessor(t *testing.T) {
	h, _ := newCPUHarness(t)
	var inside, outside stats.Region
	h.core.Start(func(c *Ctx) {
		outside = c.Region()
		c.InRegion(stats.RegionLock, func() { inside = c.Region() })
	})
	h.runUntilDone(t, 100)
	if outside != stats.RegionBusy || inside != stats.RegionLock {
		t.Errorf("regions %v/%v", outside, inside)
	}
}
