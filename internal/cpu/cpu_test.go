package cpu

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/stats"
)

type cpuHarness struct {
	eng  *engine.Engine
	prot *coherence.Protocol
	core *Core
}

// fakeBE records Arrive calls and releases on demand.
type fakeBE struct {
	arrivals []int
	core     *Core
}

func (f *fakeBE) Arrive(core int, ctx int) { f.arrivals = append(f.arrivals, core) }

func newCPUHarness(t *testing.T) (*cpuHarness, *fakeBE) {
	t.Helper()
	eng := engine.New()
	cfg := config.Default(4)
	prot := coherence.New(eng, cfg, mem.NewStore())
	be := &fakeBE{}
	core := NewCore(0, eng, cfg.IssueWidth, cfg.GLCallOverhead, prot.L1(0), be)
	be.core = core
	return &cpuHarness{eng: eng, prot: prot, core: core}, be
}

func (h *cpuHarness) runUntilDone(t *testing.T, max int) {
	t.Helper()
	for i := 0; i < max && !h.core.Done(); i++ {
		h.eng.Step()
	}
	if !h.core.Done() {
		t.Fatal("program did not finish")
	}
	if err := h.core.Err(); err != nil {
		t.Fatalf("program error: %v", err)
	}
}

func TestComputeTiming(t *testing.T) {
	h, _ := newCPUHarness(t)
	var at uint64
	h.core.Start(func(c *Ctx) {
		c.Compute(25)
		at = c.Now()
	})
	h.runUntilDone(t, 1000)
	if at != 25 {
		t.Errorf("Compute(25) finished at %d", at)
	}
	if h.core.Breakdown()[stats.RegionBusy] != 25 {
		t.Errorf("busy = %d", h.core.Breakdown()[stats.RegionBusy])
	}
}

func TestWorkUsesIssueWidth(t *testing.T) {
	h, _ := newCPUHarness(t)
	var at uint64
	h.core.Start(func(c *Ctx) {
		c.Work(10) // 2-way: 5 cycles
		c.Work(3)  // ceil(3/2) = 2
		at = c.Now()
	})
	h.runUntilDone(t, 1000)
	if at != 7 {
		t.Errorf("Work(10)+Work(3) took %d cycles, want 7", at)
	}
}

func TestMemoryOpsRegionAttribution(t *testing.T) {
	h, _ := newCPUHarness(t)
	h.core.Start(func(c *Ctx) {
		c.Load(0x1000)      // Read region (defaults from Busy)
		c.StoreV(0x2000, 1) // Write region
		c.Compute(10)       // Busy
		c.InRegion(stats.RegionBarrier, func() {
			c.Load(0x1000) // attributed to Barrier
		})
	})
	h.runUntilDone(t, 1_000_000)
	b := h.core.Breakdown()
	if b[stats.RegionRead] == 0 || b[stats.RegionWrite] == 0 {
		t.Errorf("read/write regions empty: %v", b)
	}
	if b[stats.RegionBusy] != 10 {
		t.Errorf("busy = %d, want 10", b[stats.RegionBusy])
	}
	if b[stats.RegionBarrier] == 0 {
		t.Error("barrier region empty despite InRegion load")
	}
	if b.Total() == 0 {
		t.Error("empty breakdown")
	}
}

func TestValuesRoundTrip(t *testing.T) {
	h, _ := newCPUHarness(t)
	var v1, v2, old uint64
	var scOK bool
	h.core.Start(func(c *Ctx) {
		c.StoreV(0x100, 7)
		v1 = c.Load(0x100)
		old = c.FetchAdd(0x100, 3)
		v2 = c.Load(0x100)
		ll := c.LoadLinked(0x200)
		scOK = c.StoreCond(0x200, ll+1)
	})
	h.runUntilDone(t, 1_000_000)
	if v1 != 7 || old != 7 || v2 != 10 {
		t.Errorf("v1=%d old=%d v2=%d, want 7,7,10", v1, old, v2)
	}
	if !scOK {
		t.Error("uncontended SC failed")
	}
}

func TestGLBarrierArriveAfterOverhead(t *testing.T) {
	h, be := newCPUHarness(t)
	h.core.Start(func(c *Ctx) {
		c.Compute(5)
		c.GLBarrier(0)
	})
	// Run past the arrival: Compute(5) then overhead 9 -> Arrive at 14.
	for i := 0; i < 20; i++ {
		h.eng.Step()
	}
	if len(be.arrivals) != 1 {
		t.Fatalf("arrivals = %v", be.arrivals)
	}
	if !h.core.WaitingAtBarrier() {
		t.Fatal("core not waiting at barrier")
	}
	h.core.GLRelease()
	h.runUntilDone(t, 100)
	if b := h.core.Breakdown()[stats.RegionBarrier]; b == 0 {
		t.Error("no barrier time recorded")
	}
}

func TestGLBarrierWithoutEngineFails(t *testing.T) {
	eng := engine.New()
	cfg := config.Default(4)
	prot := coherence.New(eng, cfg, mem.NewStore())
	core := NewCore(0, eng, 2, 9, prot.L1(0), nil)
	core.Start(func(c *Ctx) { c.GLBarrier(0) })
	for i := 0; i < 100 && !core.Done(); i++ {
		eng.Step()
	}
	if core.Err() == nil {
		t.Error("GLBarrier without a network should fail the program")
	}
}

func TestProgramPanicIsCaptured(t *testing.T) {
	h, _ := newCPUHarness(t)
	h.core.Start(func(c *Ctx) {
		c.Compute(1)
		panic("boom")
	})
	for i := 0; i < 100 && !h.core.Done(); i++ {
		h.eng.Step()
	}
	if h.core.Err() == nil {
		t.Error("panic not captured as program error")
	}
}

func TestAbortUnwindsProgram(t *testing.T) {
	h, _ := newCPUHarness(t)
	h.core.Start(func(c *Ctx) {
		for {
			c.Compute(100)
		}
	})
	for i := 0; i < 10; i++ {
		h.eng.Step()
	}
	h.core.Abort()
	for i := 0; i < 100 && !h.core.Done(); i++ {
		h.eng.Step()
	}
	if !h.core.Done() {
		t.Error("aborted core never finished")
	}
}

func TestSpinUntilEqWakesOnWrite(t *testing.T) {
	eng := engine.New()
	cfg := config.Default(4)
	prot := coherence.New(eng, cfg, mem.NewStore())
	spinner := NewCore(0, eng, 2, 9, prot.L1(0), nil)
	writer := NewCore(1, eng, 2, 9, prot.L1(1), nil)
	var sawValue uint64
	spinner.Start(func(c *Ctx) {
		sawValue = c.SpinUntilEq(0x900, 5)
	})
	writer.Start(func(c *Ctx) {
		c.Compute(500)
		c.StoreV(0x900, 5)
	})
	for i := 0; i < 100_000 && !spinner.Done(); i++ {
		eng.Step()
	}
	if !spinner.Done() {
		t.Fatal("spinner never woke")
	}
	if sawValue != 5 {
		t.Errorf("spin saw %d, want 5", sawValue)
	}
	// The spinner must have waited at least as long as the writer's delay.
	if b := spinner.Breakdown(); b[stats.RegionRead] < 400 {
		t.Errorf("spin time %d, want >= 400", b[stats.RegionRead])
	}
}

func TestRangeOpsMatchIndividualTiming(t *testing.T) {
	// Two identical systems: one uses LoadRange, the other a load loop.
	run := func(useRange bool) uint64 {
		eng := engine.New()
		cfg := config.Default(4)
		prot := coherence.New(eng, cfg, mem.NewStore())
		core := NewCore(0, eng, 2, 9, prot.L1(0), nil)
		var end uint64
		core.Start(func(c *Ctx) {
			if useRange {
				c.LoadRange(0x4000, 64, 8)
			} else {
				for i := 0; i < 64; i++ {
					c.Load(0x4000 + uint64(i)*8)
				}
			}
			end = c.Now()
		})
		for i := 0; i < 1_000_000 && !core.Done(); i++ {
			eng.Step()
		}
		return end
	}
	rangeCycles := run(true)
	loopCycles := run(false)
	if rangeCycles != loopCycles {
		t.Errorf("LoadRange took %d cycles, loop took %d; must be identical", rangeCycles, loopCycles)
	}
}

func TestStoreRangeMarksLinesDirty(t *testing.T) {
	h, _ := newCPUHarness(t)
	h.core.Start(func(c *Ctx) {
		c.StoreRange(0x5000, 16, 8)
	})
	h.runUntilDone(t, 1_000_000)
	_, _, stores, _, _ := h.core.OpCounts()
	_ = stores // range ops count once; the timing is what matters
	if h.core.Breakdown()[stats.RegionWrite] == 0 {
		t.Error("StoreRange recorded no write time")
	}
}

func TestOpCounts(t *testing.T) {
	h, _ := newCPUHarness(t)
	h.core.Start(func(c *Ctx) {
		c.Compute(1)
		c.Compute(1)
		c.Load(0x10)
		c.Store(0x20)
		c.FetchAdd(0x30, 1)
	})
	h.runUntilDone(t, 1_000_000)
	compute, loads, stores, atomics, barriers := h.core.OpCounts()
	if compute != 2 || loads != 1 || stores != 1 || atomics != 1 || barriers != 0 {
		t.Errorf("op counts %d/%d/%d/%d/%d", compute, loads, stores, atomics, barriers)
	}
}
