package cpu

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/mem"
)

// TestZeroAllocOpHandshake is the core's alloc regression gate: once a
// program is running and its working set is cached, the op handshake —
// channel rendezvous, L1 access, typed completion callback, resume — must
// not allocate per engine step (ISSUE: zero steady-state allocation in the
// cpu op-handshake).
func TestZeroAllocOpHandshake(t *testing.T) {
	eng := engine.New()
	cfg := config.Default(4)
	prot := coherence.New(eng, cfg, mem.NewStore())
	core := NewCore(0, eng, cfg.IssueWidth, cfg.GLCallOverhead, prot.L1(0), nil)

	const addr = 0x100040
	core.Start(func(c *Ctx) {
		// An endless steady-state mix: compute, cached load, cached
		// store, remote atomic. The test measures engine steps, not
		// program completion.
		for i := uint64(0); ; i++ {
			c.Compute(3)
			c.Load(addr)
			c.StoreV(addr, i)
			c.FetchAdd(addr+64, 1)
		}
	})

	// Warm up: fault in the two lines, fill the message and event pools,
	// and let the program goroutine's stack reach steady state.
	for i := 0; i < 5000; i++ {
		eng.Step()
	}
	if core.Done() {
		t.Fatalf("program finished during warm-up: %v", core.Err())
	}
	_, loads, _, _, _ := core.OpCounts()
	if loads == 0 {
		t.Fatal("warm-up executed no loads; harness is wired wrong")
	}

	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 200; i++ {
			eng.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("op-handshake steady state allocates %.1f objects per 200 steps, want 0", allocs)
	}
	core.Abort()
}
