package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type hierHarness struct {
	h        *Hierarchical
	cycle    uint64
	released map[int]uint64
}

func newHierHarness(t *testing.T, cols, rows, span, contexts int) *hierHarness {
	t.Helper()
	h, err := NewHierarchical(cols, rows, span, 6, contexts)
	if err != nil {
		t.Fatalf("NewHierarchical: %v", err)
	}
	hh := &hierHarness{h: h, released: map[int]uint64{}}
	h.OnRelease(nil, func(core int) { hh.released[core] = hh.cycle })
	return hh
}

func (hh *hierHarness) run(n int) {
	for i := 0; i < n; i++ {
		hh.h.Tick(hh.cycle)
		hh.cycle++
	}
}

// TestHierarchicalSixCycleLatency: clustered gather/release costs 6 cycles
// with simultaneous arrivals (2 local + 1 global up + 1 global down + 2
// local).
func TestHierarchicalSixCycleLatency(t *testing.T) {
	for _, geom := range []struct{ cols, rows, span int }{
		{4, 4, 2}, {6, 6, 3}, {8, 8, 4}, {8, 4, 4},
	} {
		hh := newHierHarness(t, geom.cols, geom.rows, geom.span, 1)
		n := geom.cols * geom.rows
		for c := 0; c < n; c++ {
			hh.h.Arrive(c, 0)
		}
		hh.run(8)
		if len(hh.released) != n {
			t.Errorf("%dx%d span %d: released %d/%d", geom.cols, geom.rows, geom.span, len(hh.released), n)
			continue
		}
		for c, cyc := range hh.released {
			if cyc != 5 {
				t.Errorf("%dx%d span %d: core %d released at %d, want 5 (6-cycle latency)", geom.cols, geom.rows, geom.span, c, cyc)
			}
		}
		if hh.h.Episodes() != 1 {
			t.Errorf("episodes=%d", hh.h.Episodes())
		}
	}
}

// TestHierarchicalScalesBeyondFlatLimit: an 8x8 mesh (64 cores) cannot use
// a flat network with 6 transmitters; the hierarchical one must work.
func TestHierarchicalScalesBeyondFlatLimit(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{Cols: 8, Rows: 8, MaxTransmitters: 6, Contexts: 1}); err == nil {
		t.Fatal("flat 8x8 should be rejected")
	}
	hh := newHierHarness(t, 8, 8, 4, 1)
	if got := hh.h.Clusters(); got != 4 {
		t.Fatalf("clusters=%d, want 4", got)
	}
	for c := 0; c < 64; c++ {
		hh.h.Arrive(c, 0)
	}
	hh.run(8)
	if len(hh.released) != 64 {
		t.Errorf("released %d/64", len(hh.released))
	}
}

func TestHierarchicalStaggeredArrivals(t *testing.T) {
	hh := newHierHarness(t, 4, 4, 2, 1)
	for c := 0; c < 15; c++ {
		hh.h.Arrive(c, 0)
	}
	hh.run(10)
	if len(hh.released) != 0 {
		t.Fatal("released before last arrival")
	}
	hh.h.Arrive(15, 0)
	arrival := hh.cycle
	hh.run(8)
	if len(hh.released) != 16 {
		t.Fatalf("released %d/16", len(hh.released))
	}
	for c, cyc := range hh.released {
		// Last arriver's cluster completes locally (2 cycles), global up
		// (1 registered +1), down, local release: <=7 cycles after.
		if cyc < arrival+3 || cyc > arrival+7 {
			t.Errorf("core %d released at %d (arrival %d)", c, cyc, arrival)
		}
	}
}

func TestHierarchicalRepeatedEpisodes(t *testing.T) {
	hh := newHierHarness(t, 4, 4, 2, 1)
	for e := 0; e < 5; e++ {
		for c := 0; c < 16; c++ {
			hh.h.Arrive(c, 0)
		}
		hh.run(6)
		if int(hh.h.Episodes()) != e+1 {
			t.Fatalf("episode %d: count=%d", e+1, hh.h.Episodes())
		}
		if len(hh.released) != 16 {
			t.Fatalf("episode %d: released %d", e+1, len(hh.released))
		}
		hh.released = map[int]uint64{}
	}
}

func TestHierarchicalParticipants(t *testing.T) {
	hh := newHierHarness(t, 4, 4, 2, 1)
	// Only cores in two of the four clusters participate.
	parts := []int{0, 1, 14, 15}
	if err := hh.h.SetParticipants(0, parts); err != nil {
		t.Fatal(err)
	}
	for _, c := range parts {
		hh.h.Arrive(c, 0)
	}
	hh.run(8)
	if len(hh.released) != len(parts) {
		t.Fatalf("released %d/%d", len(hh.released), len(parts))
	}
}

func TestHierarchicalValidation(t *testing.T) {
	cases := []struct{ cols, rows, span, maxTx, ctxs int }{
		{0, 4, 2, 6, 1},
		{4, 4, 1, 6, 1}, // span must be >1
		{4, 4, 9, 6, 1}, // span beyond electrical limit
		{16, 16, 2, 6, 1} /* 64 clusters > limit */, {4, 4, 2, 6, 0},
	}
	for i, tc := range cases {
		if _, err := NewHierarchical(tc.cols, tc.rows, tc.span, tc.maxTx, tc.ctxs); err == nil {
			t.Errorf("bad hierarchy %d accepted", i)
		}
	}
}

// TestPropHierarchicalSafetyLiveness mirrors the flat property on a
// clustered 8x8 network.
func TestPropHierarchicalSafetyLiveness(t *testing.T) {
	f := func(seed int64) bool {
		h, err := NewHierarchical(8, 8, 4, 6, 1)
		if err != nil {
			return false
		}
		released := map[int]uint64{}
		var cycle uint64
		h.OnRelease(nil, func(c int) { released[c] = cycle })
		r := rand.New(rand.NewSource(seed))
		arrivals := make([]uint64, 64)
		var last uint64
		for c := range arrivals {
			arrivals[c] = uint64(r.Intn(30))
			if arrivals[c] > last {
				last = arrivals[c]
			}
		}
		for cycle <= last+12 {
			for c, at := range arrivals {
				if at == cycle {
					h.Arrive(c, 0)
				}
			}
			if len(released) != 0 && cycle < last {
				return false
			}
			h.Tick(cycle)
			cycle++
		}
		if len(released) != 64 || h.Episodes() != 1 {
			return false
		}
		// All released the same cycle.
		var first uint64
		for _, cyc := range released {
			first = cyc
			break
		}
		for _, cyc := range released {
			if cyc != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalEnergyAndLines(t *testing.T) {
	hh := newHierHarness(t, 4, 4, 2, 1)
	// 4 clusters of 2x2: each 2*(2+1)=6 lines, plus 2 global = 26.
	if got := hh.h.LineCount(); got != 26 {
		t.Errorf("line count %d, want 26", got)
	}
	for c := 0; c < 16; c++ {
		hh.h.Arrive(c, 0)
	}
	hh.run(8)
	if hh.h.Toggles() == 0 {
		t.Error("no toggles recorded")
	}
	if hh.h.ActiveCycles() == 0 {
		t.Error("no active cycles recorded")
	}
}
