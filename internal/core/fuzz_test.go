package core

import "testing"

// FuzzBarrierSchedule feeds arbitrary byte strings interpreted as arrival
// schedules into a flat network and checks safety (nobody released before
// the last arrival) and liveness (everyone released 4 cycles after it).
// Run with `go test -fuzz FuzzBarrierSchedule ./internal/core`.
func FuzzBarrierSchedule(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 7, 7, 7, 9, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cols, rows := 4, 4
		n := cols * rows
		net, err := NewNetwork(NetworkConfig{Cols: cols, Rows: rows, MaxTransmitters: 6, Contexts: 1})
		if err != nil {
			t.Fatal(err)
		}
		released := map[int]uint64{}
		var cycle uint64
		net.OnRelease(nil, func(c int) { released[c] = cycle })
		// Derive one arrival cycle per core from the fuzz input.
		arrivals := make([]uint64, n)
		var last uint64
		for c := 0; c < n; c++ {
			v := uint64(0)
			if len(data) > 0 {
				v = uint64(data[c%len(data)]) % 50
			}
			arrivals[c] = v
			if v > last {
				last = v
			}
		}
		for cycle <= last+8 {
			for c, at := range arrivals {
				if at == cycle {
					net.Arrive(c, 0)
				}
			}
			if len(released) != 0 && cycle < last {
				t.Fatalf("released %d cores before last arrival (%d < %d)", len(released), cycle, last)
			}
			net.Tick(cycle)
			cycle++
		}
		if len(released) != n {
			t.Fatalf("released %d/%d cores", len(released), n)
		}
		for c, cyc := range released {
			if cyc != last+3 {
				t.Fatalf("core %d released at %d, want %d", c, cyc, last+3)
			}
		}
	})
}
