package core

import "testing"

// TestSerialSignalingAblation: without S-CSMA, simultaneous arrivals
// serialize at the row masters, stretching the barrier; with S-CSMA the
// latency stays 4 cycles.
func TestSerialSignalingAblation(t *testing.T) {
	build := func(serial bool) (*Network, map[int]uint64, *uint64) {
		net, err := NewNetwork(NetworkConfig{
			Cols: 7, Rows: 7, MaxTransmitters: 6, Contexts: 1,
			SerialSignaling: serial,
		})
		if err != nil {
			t.Fatal(err)
		}
		released := map[int]uint64{}
		cycle := new(uint64)
		net.OnRelease(nil, func(c int) { released[c] = *cycle })
		return net, released, cycle
	}

	run := func(serial bool) uint64 {
		net, released, cycle := build(serial)
		for c := 0; c < 49; c++ {
			net.Arrive(c, 0)
		}
		for *cycle < 40 && len(released) < 49 {
			net.Tick(*cycle)
			*cycle++
		}
		if len(released) != 49 {
			t.Fatalf("serial=%v: released %d/49", serial, len(released))
		}
		var rel uint64
		for _, cyc := range released {
			rel = cyc
			break
		}
		return rel
	}

	scsma := run(false)
	serial := run(true)
	if scsma != 3 {
		t.Errorf("S-CSMA release at cycle %d, want 3 (4-cycle barrier)", scsma)
	}
	// Serial: each row master needs 6 cycles to register its 6 slaves,
	// and the vertical master 6 more for the 6 other rows.
	if serial <= scsma+5 {
		t.Errorf("serial signaling released at %d, expected well beyond the S-CSMA %d", serial, scsma)
	}
	t.Logf("7x7 simultaneous barrier: S-CSMA=%d cycles, serial=%d cycles", scsma+1, serial+1)
}

// TestSerialSignalingStillCorrect: the ablated network still synchronizes
// correctly, just slower.
func TestSerialSignalingStillCorrect(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Cols: 4, Rows: 4, MaxTransmitters: 6, Contexts: 1, SerialSignaling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	released := 0
	net.OnRelease(nil, func(int) { released++ })
	for episode := 0; episode < 3; episode++ {
		for c := 0; c < 16; c++ {
			net.Arrive(c, 0)
		}
		for i := 0; i < 40 && released < 16*(episode+1); i++ {
			net.Tick(uint64(episode*100 + i))
		}
		if released != 16*(episode+1) {
			t.Fatalf("episode %d: released %d", episode, released)
		}
	}
	if net.Episodes() != 3 {
		t.Errorf("episodes=%d", net.Episodes())
	}
}
