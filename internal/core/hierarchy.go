package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/trace"
)

// Hierarchical implements the paper's future-work extension for CMPs larger
// than the flat network's electrical limit (7x7 with 6 transmitters per
// line): the mesh is partitioned into clusters, each served by a flat
// G-line network, and the cluster masters are linked by a second-level pair
// of global G-lines (arrival + release) using the same S-CSMA counting.
//
// The ideal latency becomes 6 cycles: 2 for the in-cluster gather, 1 for
// the global arrival line, 1 for the global release line, and 2 for the
// in-cluster release.
type Hierarchical struct {
	cols, rows int
	span       int
	gridC      int // clusters per mesh row of clusters
	gridR      int
	clusters   []*clusterSlot
	layers     []*globalLayer // one per context
	contexts   int

	release  func(core int)
	schedule func(delay uint64, fn func())
	cycles   uint64

	currentCycle uint64

	// tl records global-line pulses and global barrier completions; probe
	// reports completions to the latency-attribution collector. Cluster
	// networks carry their own copy of tl for in-cluster line pulses.
	tl    *trace.Timeline
	probe func(ctx int, cycle uint64)
}

// clusterSlot binds a flat sub-network to its region of the global mesh.
type clusterSlot struct {
	net                *Network
	colOff, rowOff     int
	subCols, subRows   int
	globalOfLocal      []int // local tile -> global core id
	participantsPerCtx [][]int
}

// globalLayer is the second-level synchronization for one context: the
// cluster masters behave like slaves on one global arrival line, with
// cluster 0's master acting as the global master.
type globalLayer struct {
	h     *Hierarchical
	ctxID int

	gArr, gRel *Line

	// Per-cluster registered completion state.
	complete   []bool
	flagCycle  []uint64 // cycle the cluster completed (registered)
	sent       []bool   // asserted the global arrival line
	active     []bool   // cluster has participants in this context
	nActive    int
	gCount     int
	gComplete  bool
	relPending bool
	drove      uint64 // cycle the release was driven + 1 (0 = not driven)

	episodes uint64
}

// NewHierarchical builds a clustered G-line network for a cols x rows mesh.
// span is the maximum cluster dimension; it must not exceed
// maxTransmitters+1, and the resulting cluster grid must itself respect the
// transmitter limit on the global lines (at most maxTransmitters+1
// clusters).
func NewHierarchical(cols, rows, span, maxTransmitters, contexts int) (*Hierarchical, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("gline: invalid mesh %dx%d", cols, rows)
	}
	if span <= 1 {
		return nil, fmt.Errorf("gline: cluster span must be >1, got %d", span)
	}
	if span > maxTransmitters+1 {
		return nil, fmt.Errorf("gline: span %d exceeds transmitter limit (max %d)", span, maxTransmitters+1)
	}
	if contexts < 1 {
		return nil, fmt.Errorf("gline: contexts must be >=1, got %d", contexts)
	}
	gridC := (cols + span - 1) / span
	gridR := (rows + span - 1) / span
	nClusters := gridC * gridR
	if nClusters-1 > maxTransmitters {
		return nil, fmt.Errorf("gline: %d clusters exceed the %d-transmitter global line limit; increase span or add levels", nClusters, maxTransmitters)
	}
	h := &Hierarchical{
		cols: cols, rows: rows, span: span,
		gridC: gridC, gridR: gridR,
		contexts: contexts,
	}
	for cr := 0; cr < gridR; cr++ {
		for cc := 0; cc < gridC; cc++ {
			colOff := cc * span
			rowOff := cr * span
			subCols := min(span, cols-colOff)
			subRows := min(span, rows-rowOff)
			net, err := NewNetwork(NetworkConfig{
				Cols: subCols, Rows: subRows,
				MaxTransmitters: maxTransmitters,
				Contexts:        contexts,
				Mux:             MuxSpace,
			})
			if err != nil {
				return nil, err
			}
			slot := &clusterSlot{
				net:    net,
				colOff: colOff, rowOff: rowOff,
				subCols: subCols, subRows: subRows,
			}
			for lr := 0; lr < subRows; lr++ {
				for lc := 0; lc < subCols; lc++ {
					slot.globalOfLocal = append(slot.globalOfLocal, (rowOff+lr)*cols+(colOff+lc))
				}
			}
			h.clusters = append(h.clusters, slot)
		}
	}
	for ctxID := 0; ctxID < contexts; ctxID++ {
		layer := &globalLayer{
			h:         h,
			ctxID:     ctxID,
			gArr:      NewLine(fmt.Sprintf("ctx%d-gArr", ctxID), maxTransmitters),
			gRel:      NewLine(fmt.Sprintf("ctx%d-gRel", ctxID), maxTransmitters),
			complete:  make([]bool, nClusters),
			flagCycle: make([]uint64, nClusters),
			sent:      make([]bool, nClusters),
			active:    make([]bool, nClusters),
			nActive:   nClusters,
		}
		for i := range layer.active {
			layer.active[i] = true
		}
		h.layers = append(h.layers, layer)
		for ci, slot := range h.clusters {
			if err := slot.net.GateRelease(ctxID, true); err != nil {
				return nil, err
			}
			ci, ctxID := ci, ctxID
			slot.net.contexts[ctxID].mv.episodeDone = func() { layer.clusterComplete(ci) }
		}
	}
	// Cluster networks release cores through the hierarchical wrapper.
	for _, slot := range h.clusters {
		slot := slot
		slot.net.OnRelease(nil, func(localTile int) {
			core := slot.globalOfLocal[localTile]
			if h.schedule != nil {
				h.schedule(1, func() { h.release(core) })
			} else if h.release != nil {
				h.release(core)
			}
		})
	}
	return h, nil
}

// Clusters returns the number of first-level networks.
func (h *Hierarchical) Clusters() int { return len(h.clusters) }

// Contexts returns the number of logical barrier contexts.
func (h *Hierarchical) Contexts() int { return h.contexts }

// SetInjector installs a fault injector on every G-line of the hierarchy.
// Each cluster network gets a disjoint line-id range (in cluster order),
// followed by the global arrival/release pair of each context, so fault
// decisions stay deterministic per line across runs.
func (h *Hierarchical) SetInjector(inj *fault.Injector) {
	id := uint64(0)
	for _, slot := range h.clusters {
		id = slot.net.setInjectorFrom(inj, id)
	}
	for _, l := range h.layers {
		l.gArr.inj, l.gArr.id = inj, id
		id++
		l.gRel.inj, l.gRel.id = inj, id
		id++
	}
}

// SetTimeline attaches a span timeline across the hierarchy: cluster lines
// get disjoint track-id ranges (in cluster order) followed by the global
// arrival/release pair of each context — the same layout SetInjector uses
// for fault ids.
func (h *Hierarchical) SetTimeline(tl *trace.Timeline) {
	h.tl = tl
	id := 0
	for _, slot := range h.clusters {
		id = slot.net.setTimelineFrom(tl, id)
	}
	for _, l := range h.layers {
		l.gArr.tlID = id
		id++
		l.gRel.tlID = id
		id++
	}
}

// SetEpisodeProbe installs the per-episode completion callback, as for
// Network. Only global (whole-chip) completions are reported; in-cluster
// completions are intermediate gather steps.
func (h *Hierarchical) SetEpisodeProbe(fn func(ctx int, cycle uint64)) {
	h.probe = fn
}

// ResetContext re-arms one context across the whole hierarchy: every
// cluster's controllers plus the global layer's registered completion
// state. Participant masks survive, as for Network.ResetContext.
func (h *Hierarchical) ResetContext(ctxID int) error {
	if ctxID < 0 || ctxID >= h.contexts {
		return fmt.Errorf("gline: context %d out of range [0,%d)", ctxID, h.contexts)
	}
	for _, slot := range h.clusters {
		if err := slot.net.ResetContext(ctxID); err != nil {
			return err
		}
	}
	l := h.layers[ctxID]
	for i := range l.complete {
		l.complete[i] = false
		l.sent[i] = false
		l.flagCycle[i] = 0
	}
	l.gCount = 0
	l.gComplete = false
	l.relPending = false
	l.drove = 0
	l.gArr.tx, l.gArr.sampled = 0, 0
	l.gRel.tx, l.gRel.sampled = 0, 0
	return nil
}

// clusterOf maps a global core id to its cluster index and local tile.
func (h *Hierarchical) clusterOf(core int) (clusterIdx, localTile int) {
	col := core % h.cols
	row := core / h.cols
	cc := col / h.span
	cr := row / h.span
	clusterIdx = cr*h.gridC + cc
	slot := h.clusters[clusterIdx]
	localTile = (row-slot.rowOff)*slot.subCols + (col - slot.colOff)
	return clusterIdx, localTile
}

// OnRelease installs the core release callback, as for Network.
func (h *Hierarchical) OnRelease(schedule func(delay uint64, fn func()), release func(core int)) {
	h.schedule = schedule
	h.release = release
}

// Arrive announces a core's arrival at the given context's barrier.
func (h *Hierarchical) Arrive(core int, ctxID int) {
	if core < 0 || core >= h.cols*h.rows {
		panic(fmt.Sprintf("gline: core %d out of range", core))
	}
	ci, local := h.clusterOf(core)
	h.clusters[ci].net.Arrive(local, ctxID)
}

// SetParticipants restricts a context to the given global core set.
func (h *Hierarchical) SetParticipants(ctxID int, cores []int) error {
	if ctxID < 0 || ctxID >= h.contexts {
		return fmt.Errorf("gline: context %d out of range [0,%d)", ctxID, h.contexts)
	}
	if len(cores) == 0 {
		return fmt.Errorf("gline: context %d: empty participant set", ctxID)
	}
	perCluster := make([][]int, len(h.clusters))
	for _, c := range cores {
		if c < 0 || c >= h.cols*h.rows {
			return fmt.Errorf("gline: participant %d out of range [0,%d)", c, h.cols*h.rows)
		}
		ci, local := h.clusterOf(c)
		perCluster[ci] = append(perCluster[ci], local)
	}
	layer := h.layers[ctxID]
	layer.nActive = 0
	for ci, locals := range perCluster {
		layer.active[ci] = len(locals) > 0
		if len(locals) == 0 {
			continue
		}
		layer.nActive++
		if err := h.clusters[ci].net.SetParticipants(ctxID, locals); err != nil {
			return err
		}
	}
	if layer.nActive == 0 {
		return fmt.Errorf("gline: context %d: no participating cluster", ctxID)
	}
	return nil
}

// Episodes returns completed global barrier episodes across contexts.
func (h *Hierarchical) Episodes() uint64 {
	var e uint64
	for _, l := range h.layers {
		e += l.episodes
	}
	return e
}

// Toggles sums wire transitions over cluster and global lines.
func (h *Hierarchical) Toggles() uint64 {
	var t uint64
	for _, slot := range h.clusters {
		t += slot.net.Toggles()
	}
	for _, l := range h.layers {
		t += l.gArr.Toggles() + l.gRel.Toggles()
	}
	return t
}

// LineCount returns the total number of physical G-lines, including the two
// global lines per context.
func (h *Hierarchical) LineCount() int {
	n := 0
	for _, slot := range h.clusters {
		n += slot.net.LineCount()
	}
	return n + 2*len(h.layers)
}

// ActiveCycles returns cycles the hierarchy was stepped with work pending.
func (h *Hierarchical) ActiveCycles() uint64 { return h.cycles }

// Tick steps the cluster networks and then the global layers.
func (h *Hierarchical) Tick(cycle uint64) bool {
	h.currentCycle = cycle
	active := false
	for _, slot := range h.clusters {
		if slot.net.Tick(cycle) {
			active = true
		}
	}
	for _, l := range h.layers {
		if l.step(cycle) {
			active = true
		}
	}
	if active {
		h.cycles++
	}
	return active
}

// clusterComplete registers a cluster's local barrier completion; the
// global layer observes it from the next cycle on (registered flag).
func (l *globalLayer) clusterComplete(ci int) {
	l.complete[ci] = true
	l.flagCycle[ci] = l.h.currentCycle
}

// step advances one context's global layer by one cycle: assert phase,
// line sampling, observe phase — the same two-phase discipline as the flat
// controllers.
func (l *globalLayer) step(cycle uint64) bool {
	busy := false
	// Assert phase: non-master clusters relay their completion onto the
	// global arrival line one cycle after it registered.
	for ci := 1; ci < len(l.complete); ci++ {
		if l.active[ci] && l.complete[ci] && !l.sent[ci] && cycle > l.flagCycle[ci] {
			l.gArr.Assert()
			l.sent[ci] = true
			busy = true
		}
	}
	if l.gComplete && l.relPending {
		l.gRel.Assert()
		l.drove = cycle + 1
		l.relPending = false
		busy = true
	}
	l.gArr.sample(cycle)
	l.gRel.sample(cycle)
	if tl := l.h.tl; tl != nil {
		if l.gArr.sampled > 0 {
			tl.Instant(trace.LineTrack(l.gArr.tlID), spanGLPulse, cycle, 0, uint64(l.gArr.sampled))
		}
		if l.gRel.sampled > 0 {
			tl.Instant(trace.LineTrack(l.gRel.tlID), spanGLPulse, cycle, 0, uint64(l.gRel.sampled))
		}
	}

	// Observe phase: the global master counts arrivals.
	if !l.gComplete {
		l.gCount += l.gArr.Count()
		ownDone := !l.active[0] || (l.complete[0] && cycle > l.flagCycle[0])
		needed := l.nActive
		if l.active[0] {
			needed--
		}
		if l.gCount == needed && ownDone {
			l.gComplete = true
			l.relPending = true
			l.episodes++
			if l.h.tl != nil {
				l.h.tl.Instant(trace.BarrierTrack(l.ctxID), spanGLComplete, cycle, l.episodes, 0)
			}
			if l.h.probe != nil {
				l.h.probe(l.ctxID, cycle)
			}
		}
	} else if l.drove == cycle+1 {
		// Release pulse on the wire this cycle: every active cluster's
		// master observes it and starts the local release next cycle.
		for ci := range l.complete {
			if l.active[ci] && l.complete[ci] {
				l.h.clusters[ci].net.TriggerRelease(l.ctxID)
			}
			l.complete[ci] = false
			l.sent[ci] = false
		}
		l.gCount = 0
		l.gComplete = false
		l.drove = 0
	}
	if l.gComplete || l.gCount > 0 || l.relPending || l.drove != 0 {
		busy = true
	}
	for _, c := range l.complete {
		if c {
			busy = true
		}
	}
	return busy
}
