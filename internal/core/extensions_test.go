package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParticipantMaskSubsetBarrier(t *testing.T) {
	h := newNetHarness(t, 4, 4, 1, MuxSpace)
	parts := []int{0, 3, 5, 10, 15} // spread over rows, includes masters and slaves
	if err := h.net.SetParticipants(0, parts); err != nil {
		t.Fatal(err)
	}
	for _, c := range parts[:len(parts)-1] {
		h.net.Arrive(c, 0)
	}
	h.run(8)
	if len(h.released) != 0 {
		t.Fatal("released before the last participant arrived")
	}
	h.net.Arrive(parts[len(parts)-1], 0)
	arrival := h.cycle
	h.run(6)
	if len(h.released) != len(parts) {
		t.Fatalf("released %d, want %d", len(h.released), len(parts))
	}
	for _, c := range parts {
		if h.released[c] != arrival+3 {
			t.Errorf("core %d released at %d, want %d", c, h.released[c], arrival+3)
		}
	}
}

func TestParticipantMaskRejectsNonParticipant(t *testing.T) {
	h := newNetHarness(t, 4, 4, 1, MuxSpace)
	if err := h.net.SetParticipants(0, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-participant Arrive did not panic")
		}
	}()
	h.net.Arrive(5, 0)
}

func TestParticipantMaskValidation(t *testing.T) {
	h := newNetHarness(t, 2, 2, 1, MuxSpace)
	if err := h.net.SetParticipants(0, nil); err == nil {
		t.Error("empty participant set accepted")
	}
	if err := h.net.SetParticipants(0, []int{7}); err == nil {
		t.Error("out-of-range participant accepted")
	}
	if err := h.net.SetParticipants(3, []int{0}); err == nil {
		t.Error("unknown context accepted")
	}
	h.net.Arrive(0, 0)
	if err := h.net.SetParticipants(0, []int{0, 1}); err == nil {
		t.Error("participant change with arrivals in flight accepted")
	}
}

// TestPropMaskedBarrier: random participant subsets behave like full
// barriers over the subset.
func TestPropMaskedBarrier(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cols := r.Intn(6) + 2
		rows := r.Intn(6) + 2
		n := cols * rows
		net, err := NewNetwork(NetworkConfig{Cols: cols, Rows: rows, MaxTransmitters: 6, Contexts: 1})
		if err != nil {
			return false
		}
		var parts []int
		for c := 0; c < n; c++ {
			if r.Intn(2) == 0 {
				parts = append(parts, c)
			}
		}
		if len(parts) == 0 {
			parts = []int{r.Intn(n)}
		}
		if err := net.SetParticipants(0, parts); err != nil {
			return false
		}
		released := map[int]bool{}
		net.OnRelease(nil, func(c int) { released[c] = true })
		var cycle uint64
		arrive := make(map[uint64][]int)
		var last uint64
		for _, c := range parts {
			at := uint64(r.Intn(20))
			arrive[at] = append(arrive[at], c)
			if at > last {
				last = at
			}
		}
		for cycle <= last+8 {
			for _, c := range arrive[cycle] {
				net.Arrive(c, 0)
			}
			net.Tick(cycle)
			cycle++
		}
		if len(released) != len(parts) {
			return false
		}
		for _, c := range parts {
			if !released[c] {
				return false
			}
		}
		return net.Episodes() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSpaceMultiplexedContextsAreIndependent(t *testing.T) {
	h := newNetHarness(t, 4, 2, 2, MuxSpace)
	// Context 0: cores 0-3. Context 1: cores 4-7.
	if err := h.net.SetParticipants(0, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := h.net.SetParticipants(1, []int{4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		h.net.Arrive(c, 0)
	}
	// Context 1 arrives 2 cycles later.
	h.run(2)
	for c := 4; c < 8; c++ {
		h.net.Arrive(c, 1)
	}
	h.run(8)
	for c := 0; c < 4; c++ {
		if h.released[c] != 3 {
			t.Errorf("ctx0 core %d released at %d, want 3", c, h.released[c])
		}
	}
	for c := 4; c < 8; c++ {
		if h.released[c] != 5 {
			t.Errorf("ctx1 core %d released at %d, want 5", c, h.released[c])
		}
	}
	if h.net.ContextEpisodes(0) != 1 || h.net.ContextEpisodes(1) != 1 {
		t.Error("per-context episode counts wrong")
	}
}

func TestTimeMultiplexedContexts(t *testing.T) {
	// Two contexts share one physical line set; context i steps on cycles
	// with cycle%2==i, so the ideal latency stretches to ~8 cycles.
	h := newNetHarness(t, 2, 2, 2, MuxTime)
	for c := 0; c < 4; c++ {
		h.net.Arrive(c, 0)
	}
	h.run(20)
	if len(h.released) != 4 {
		t.Fatalf("TDM ctx0: released %d", len(h.released))
	}
	var relCycle uint64
	for _, cyc := range h.released {
		relCycle = cyc
	}
	if relCycle < 5 || relCycle > 9 {
		t.Errorf("TDM release at %d, want ~6-8 (4 active cycles at period 2)", relCycle)
	}
	// Same barrier on context 1 while context 0 also runs.
	h.released = map[int]uint64{}
	for c := 0; c < 4; c++ {
		h.net.Arrive(c, 0)
		h.net.Arrive(c, 1)
	}
	h.run(24)
	if len(h.released) != 4 {
		t.Fatalf("TDM both: released %d cores (map keys collide only per core)", len(h.released))
	}
	if h.net.ContextEpisodes(0) != 2 || h.net.ContextEpisodes(1) != 1 {
		t.Errorf("episodes ctx0=%d ctx1=%d, want 2/1", h.net.ContextEpisodes(0), h.net.ContextEpisodes(1))
	}
}

func TestEnergyAccounting(t *testing.T) {
	h := newNetHarness(t, 2, 2, 1, MuxSpace)
	for c := 0; c < 4; c++ {
		h.net.Arrive(c, 0)
	}
	h.run(4)
	// 2x2 full barrier: 2 slave arrivals + 1 vertical arrival + 1
	// vertical release + 2 horizontal releases = 6 toggles.
	if got := h.net.Toggles(); got != 6 {
		t.Errorf("toggles = %d, want 6", got)
	}
	if h.net.ActiveCycles() == 0 {
		t.Error("network reported zero active cycles")
	}
	// Power gating: idle ticks do not count.
	before := h.net.ActiveCycles()
	h.run(10)
	if h.net.ActiveCycles() != before {
		t.Error("idle network accumulated active cycles")
	}
}

func TestGateAndTriggerRelease(t *testing.T) {
	h := newNetHarness(t, 2, 2, 1, MuxSpace)
	if err := h.net.GateRelease(0, true); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		h.net.Arrive(c, 0)
	}
	h.run(10)
	if len(h.released) != 0 {
		t.Fatal("gated context released on its own")
	}
	if h.net.Episodes() != 1 {
		t.Fatal("gated context did not report completion")
	}
	h.net.TriggerRelease(0)
	h.run(3)
	if len(h.released) != 4 {
		t.Fatalf("after trigger: released %d", len(h.released))
	}
}

func TestTriggerWithoutCompletionPanics(t *testing.T) {
	h := newNetHarness(t, 2, 2, 1, MuxSpace)
	defer func() {
		if recover() == nil {
			t.Error("TriggerRelease on idle context did not panic")
		}
	}()
	h.net.TriggerRelease(0)
}
