package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// netHarness drives a Network cycle by cycle, recording releases.
type netHarness struct {
	net      *Network
	cycle    uint64
	released map[int]uint64 // core -> cycle the release callback ran
}

func newNetHarness(t *testing.T, cols, rows, contexts int, mux MuxMode) *netHarness {
	t.Helper()
	net, err := NewNetwork(NetworkConfig{
		Cols: cols, Rows: rows,
		MaxTransmitters: 6,
		Contexts:        contexts,
		Mux:             mux,
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	h := &netHarness{net: net, released: map[int]uint64{}}
	// Releases are visible one cycle after the hardware clears bar_reg,
	// as in the simulator; here we record the clearing cycle directly.
	net.OnRelease(nil, func(core int) { h.released[core] = h.cycle })
	return h
}

// step advances one cycle.
func (h *netHarness) step() {
	h.net.Tick(h.cycle)
	h.cycle++
}

func (h *netHarness) run(n int) {
	for i := 0; i < n; i++ {
		h.step()
	}
}

// TestIdealLatencyFourCycles reproduces the paper's headline number: with
// simultaneous arrivals, the release reaches every core at the end of the
// 4th cycle (paper Figure 2).
func TestIdealLatencyFourCycles(t *testing.T) {
	for _, geom := range []struct{ cols, rows int }{{2, 2}, {4, 4}, {7, 7}, {1, 1}, {4, 1}, {1, 4}} {
		h := newNetHarness(t, geom.cols, geom.rows, 1, MuxSpace)
		n := geom.cols * geom.rows
		for c := 0; c < n; c++ {
			h.net.Arrive(c, 0)
		}
		h.run(4)
		if len(h.released) != n {
			t.Errorf("%dx%d: %d/%d cores released after 4 cycles", geom.cols, geom.rows, len(h.released), n)
			continue
		}
		for c, cyc := range h.released {
			if cyc != 3 {
				t.Errorf("%dx%d: core %d released at cycle %d, want 3 (end of 4th cycle)", geom.cols, geom.rows, c, cyc)
			}
		}
		if h.net.Episodes() != 1 {
			t.Errorf("%dx%d: episodes=%d", geom.cols, geom.rows, h.net.Episodes())
		}
	}
}

// TestFigure2Trace walks the 2x2 example cycle by cycle and checks the
// observable register state against the paper's Figure 2.
func TestFigure2Trace(t *testing.T) {
	h := newNetHarness(t, 2, 2, 1, MuxSpace)
	ctx := h.net.contexts[0]
	for c := 0; c < 4; c++ {
		h.net.Arrive(c, 0)
	}
	// Cycle 0: horizontal slaves signal; masters count ScntH=1, Mcnt=1.
	h.step()
	for r := 0; r < 2; r++ {
		if ctx.mastersH[r].scnt != 1 {
			t.Errorf("cycle 0: row %d ScntH=%d, want 1", r, ctx.mastersH[r].scnt)
		}
		if !ctx.mastersH[r].mcnt {
			t.Errorf("cycle 0: row %d Mcnt not set", r)
		}
		if !ctx.regs[2*r].flagH {
			t.Errorf("cycle 0: row %d flag not raised", r)
		}
	}
	// Cycle 1: vertical slave signals; MasterV counts ScntV=1 and sees
	// core 0's MasterH flag -> barrier complete.
	h.step()
	if ctx.mv.scnt != 1 {
		t.Errorf("cycle 1: ScntV=%d, want 1", ctx.mv.scnt)
	}
	if ctx.mv.state != masterWaiting {
		t.Error("cycle 1: MasterV did not complete")
	}
	if len(h.released) != 0 {
		t.Error("cycle 1: premature release")
	}
	// Cycle 2: vertical release pulse; counters reset.
	h.step()
	if ctx.mv.scnt != 0 {
		t.Errorf("cycle 2: ScntV=%d, want 0 after release", ctx.mv.scnt)
	}
	if len(h.released) != 0 {
		t.Error("cycle 2: premature release")
	}
	// Cycle 3: horizontal release; all bar_regs cleared.
	h.step()
	if len(h.released) != 4 {
		t.Fatalf("cycle 3: released %d cores, want 4", len(h.released))
	}
	for c := 0; c < 4; c++ {
		if h.net.BarRegSet(c, 0) {
			t.Errorf("cycle 3: core %d bar_reg still set", c)
		}
	}
	if ctx.mastersH[0].scnt != 0 || ctx.mastersH[1].scnt != 0 {
		t.Error("cycle 3: ScntH not reset")
	}
}

// TestLastArriverLatency checks the 4-cycle latency from the last arrival,
// wherever that arrival happens.
func TestLastArriverLatency(t *testing.T) {
	for last := 0; last < 16; last++ {
		h := newNetHarness(t, 4, 4, 1, MuxSpace)
		for c := 0; c < 16; c++ {
			if c != last {
				h.net.Arrive(c, 0)
			}
		}
		h.run(10) // others wait; nothing may happen
		if len(h.released) != 0 {
			t.Fatalf("released %d cores before last arrival", len(h.released))
		}
		h.net.Arrive(last, 0)
		arrival := h.cycle
		h.run(6)
		if len(h.released) != 16 {
			t.Fatalf("last=%d: %d cores released", last, len(h.released))
		}
		for c, cyc := range h.released {
			if cyc != arrival+3 {
				t.Errorf("last=%d: core %d released at %d, want %d", last, c, cyc, arrival+3)
			}
		}
	}
}

// TestBackToBackBarriers checks repeated episodes with immediate
// re-arrival (the synthetic benchmark's pattern).
func TestBackToBackBarriers(t *testing.T) {
	h := newNetHarness(t, 4, 2, 1, MuxSpace)
	const episodes = 10
	for e := 0; e < episodes; e++ {
		start := h.cycle
		for c := 0; c < 8; c++ {
			h.net.Arrive(c, 0)
		}
		h.run(4)
		if int(h.net.Episodes()) != e+1 {
			t.Fatalf("episode %d not completed", e+1)
		}
		for c, cyc := range h.released {
			if cyc != start+3 {
				t.Errorf("episode %d: core %d at %d, want %d", e, c, cyc, start+3)
			}
		}
		h.released = map[int]uint64{}
	}
}

// TestPropBarrierSafetyAndLiveness: under random staggered arrivals, no
// core is released before every participant has arrived, and all are
// released exactly 4 cycles after the last arrival.
func TestPropBarrierSafetyAndLiveness(t *testing.T) {
	f := func(seed int64, colsRaw, rowsRaw uint8) bool {
		cols := int(colsRaw%7) + 1
		rows := int(rowsRaw%7) + 1
		n := cols * rows
		net, err := NewNetwork(NetworkConfig{Cols: cols, Rows: rows, MaxTransmitters: 6, Contexts: 1})
		if err != nil {
			return false
		}
		released := map[int]uint64{}
		var cycle uint64
		net.OnRelease(nil, func(c int) { released[c] = cycle })
		r := rand.New(rand.NewSource(seed))
		arrivals := make([]uint64, n)
		var lastArrival uint64
		for c := range arrivals {
			arrivals[c] = uint64(r.Intn(40))
			if arrivals[c] > lastArrival {
				lastArrival = arrivals[c]
			}
		}
		for cycle < lastArrival+10 {
			for c, at := range arrivals {
				if at == cycle {
					net.Arrive(c, 0)
				}
			}
			if len(released) != 0 && cycle < lastArrival {
				return false // released before all arrived
			}
			net.Tick(cycle)
			cycle++
		}
		if len(released) != n {
			return false
		}
		for _, cyc := range released {
			if cyc != lastArrival+3 {
				return false
			}
		}
		return net.Episodes() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSCSMACountsSimultaneousTransmitters(t *testing.T) {
	// Property: a line's sampled count equals the number of Asserts that
	// cycle, for any k within the electrical limit.
	l := NewLine("x", 6)
	for k := 0; k <= 6; k++ {
		for i := 0; i < k; i++ {
			l.Assert()
		}
		l.sample(0)
		if l.Count() != k {
			t.Errorf("S-CSMA count %d, want %d", l.Count(), k)
		}
	}
	if l.Toggles() != 0+1+2+3+4+5+6 {
		t.Errorf("toggles %d", l.Toggles())
	}
}

func TestLineTransmitterLimitPanics(t *testing.T) {
	l := NewLine("x", 2)
	l.Assert()
	l.Assert()
	defer func() {
		if recover() == nil {
			t.Error("exceeding the transmitter limit did not panic")
		}
	}()
	l.Assert()
}

func TestNetworkConfigValidation(t *testing.T) {
	bad := []NetworkConfig{
		{Cols: 0, Rows: 2, MaxTransmitters: 6, Contexts: 1},
		{Cols: 8, Rows: 2, MaxTransmitters: 6, Contexts: 1}, // 7 slaves/row
		{Cols: 2, Rows: 8, MaxTransmitters: 6, Contexts: 1},
		{Cols: 2, Rows: 2, MaxTransmitters: 0, Contexts: 1},
		{Cols: 2, Rows: 2, MaxTransmitters: 6, Contexts: 0},
	}
	for i, cfg := range bad {
		if _, err := NewNetwork(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLineCountMatchesPaperFormula(t *testing.T) {
	// Paper Section 3.1: 2*(rows+1) lines per barrier; the 16-core 4x4
	// example needs 10.
	net, err := NewNetwork(NetworkConfig{Cols: 4, Rows: 4, MaxTransmitters: 6, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := net.LineCount(); got != 10 {
		t.Errorf("4x4 line count %d, want 10", got)
	}
	// Space multiplexing: k contexts -> k line sets.
	net3, err := NewNetwork(NetworkConfig{Cols: 4, Rows: 4, MaxTransmitters: 6, Contexts: 3, Mux: MuxSpace})
	if err != nil {
		t.Fatal(err)
	}
	if got := net3.LineCount(); got != 30 {
		t.Errorf("3-context space-mux line count %d, want 30", got)
	}
	// Time multiplexing: one shared set.
	netT, err := NewNetwork(NetworkConfig{Cols: 4, Rows: 4, MaxTransmitters: 6, Contexts: 3, Mux: MuxTime})
	if err != nil {
		t.Fatal(err)
	}
	if got := netT.LineCount(); got != 10 {
		t.Errorf("3-context time-mux line count %d, want 10", got)
	}
}

func TestArriveValidation(t *testing.T) {
	h := newNetHarness(t, 2, 2, 1, MuxSpace)
	h.net.Arrive(1, 0)
	for _, fn := range []func(){
		func() { h.net.Arrive(1, 0) },  // double arrival
		func() { h.net.Arrive(9, 0) },  // core out of range
		func() { h.net.Arrive(0, 5) },  // context out of range
		func() { h.net.Arrive(-1, 0) }, // negative core
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Arrive did not panic")
				}
			}()
			fn()
		}()
	}
}
