// Package core implements the paper's contribution: a dedicated barrier
// network built from G-lines (global 1-bit wires that broadcast across one
// chip dimension in a single cycle) and the S-CSMA technique (the receiver
// of a line learns how many transmitters asserted it in the same cycle).
//
// A barrier context for a C x R mesh uses 2 G-lines per row (arrival +
// release) plus 2 for the first column: 2*(R+1) lines. Four controller
// kinds implement the protocol of the paper's Figure 4:
//
//   - SlaveH  (tiles with col>0): asserts its row's arrival line when the
//     local core writes bar_reg; waits for the row's release line.
//   - MasterH (tiles with col==0): counts arrival signals with S-CSMA into
//     Scnt, tracks its own core's arrival in Mcnt, and raises its flag when
//     the whole row has arrived; on release it pulses the row's release
//     line and resets everything.
//   - SlaveV  (tiles with col==0, row>0): relays its row's completion onto
//     the vertical arrival line; clears its MasterH's flag when the
//     vertical release line pulses.
//   - MasterV (tile 0): counts vertical arrivals; when every row (and its
//     own row, via MasterH's flag) has arrived, the barrier is complete and
//     it pulses the vertical release line.
//
// With simultaneous arrivals the dance takes exactly 4 cycles: horizontal
// gather, vertical gather, vertical release, horizontal release — the
// paper's ideal barrier latency.
//
// Beyond the paper's evaluated design, the package implements the features
// its future-work section sketches: multiple barrier contexts with
// time-division multiplexing of the wires, participant masks, per-toggle
// energy accounting, and (in hierarchy.go) clustered G-line networks that
// scale past the 7x7 electrical limit.
package core

import (
	"fmt"

	"repro/internal/fault"
)

// Line is one G-line: a shared wire broadcasting one bit across a chip
// dimension per cycle. S-CSMA lets the single receiver count simultaneous
// transmitters, up to the electrical limit maxTx.
type Line struct {
	name    string
	maxTx   int
	tx      int    // assertions during the current cycle
	sampled int    // count observed by the receiver at end of cycle
	toggles uint64 // total assertions ever, for the energy model

	// id and inj are set by SetInjector: the fault injector perturbs the
	// S-CSMA sample of line id. inj stays nil in fault-free systems, so the
	// hot path pays one nil check.
	id  uint64
	inj *fault.Injector

	// tlID is the line's timeline-track id, assigned by SetTimeline with
	// the same deterministic traversal SetInjector uses for fault ids.
	tlID int
}

// NewLine builds a G-line supporting up to maxTx transmitters.
func NewLine(name string, maxTx int) *Line {
	return &Line{name: name, maxTx: maxTx}
}

// Assert drives the line for the current cycle. Driving a line beyond its
// electrical transmitter limit is a hardware-configuration bug, so it
// panics rather than mis-counting.
func (l *Line) Assert() {
	l.tx++
	l.toggles++
	if l.tx > l.maxTx {
		panic(fmt.Sprintf("gline %s: %d simultaneous transmitters exceeds the S-CSMA limit %d", l.name, l.tx, l.maxTx))
	}
}

// sample latches the cycle's transmitter count for the receiver and clears
// the wire for the next cycle. An installed fault injector may perturb the
// observed count (drops, spurious assertions, miscounts, stuck-at).
func (l *Line) sample(cycle uint64) {
	n := l.tx
	l.tx = 0
	if l.inj.GLActive() {
		n = l.inj.SampleLine(l.id, cycle, n)
	}
	l.sampled = n
}

// Count returns the S-CSMA count the receiver observed for the last
// sampled cycle.
func (l *Line) Count() int { return l.sampled }

// Toggles returns the total number of assertions, for energy accounting.
func (l *Line) Toggles() uint64 { return l.toggles }

// slaveState / masterState mirror the two states of each automaton in the
// paper's Figure 4.
type slaveState int

const (
	slaveSignaling slaveState = iota
	slaveWaiting
)

type masterState int

const (
	masterAccounting masterState = iota
	masterWaiting
)

// tileRegs are the per-tile architectural registers the controllers and the
// core share: bar_reg (written by the core, reset by the hardware) and the
// MasterH flag.
type tileRegs struct {
	barReg bool
	flagH  bool
}

// slaveH is the horizontal slave controller of one tile (col>0).
type slaveH struct {
	tile     int
	arr, rel *Line // arrival (tx) and release (rx) lines of the row
	regs     *tileRegs
	state    slaveState
}

func (s *slaveH) assertPhase() {
	if s.state == slaveSignaling && s.regs.barReg {
		s.arr.Assert()
	}
}

func (s *slaveH) samplePhase(release func(tile int)) {
	switch s.state {
	case slaveSignaling:
		if s.regs.barReg {
			s.state = slaveWaiting
		}
	case slaveWaiting:
		if s.rel.Count() > 0 {
			s.regs.barReg = false
			s.state = slaveSignaling
			release(s.tile)
		}
	}
}

// masterH is the horizontal master controller of a row (col==0 tile).
type masterH struct {
	tile     int
	arr, rel *Line
	regs     *tileRegs
	state    masterState
	scnt     int
	scntMax  int // number of participating slaves in the row
	// serial disables S-CSMA counting: the receiver registers at most one
	// arrival per cycle, queueing simultaneous signals (the ablation of
	// the paper's key technique).
	serial  bool
	backlog int
	mcnt    bool
	mcntReq bool // whether this tile's own core participates
	relPend bool // release requested by the vertical layer
	drove   bool // asserted the release line this cycle
	enabled bool // row has at least one participant
	// tolerant clamps over-counts instead of panicking: with a fault
	// injector wired, spurious assertions make scnt>scntMax a modeled
	// hardware fault rather than a simulator bug.
	tolerant bool
}

func (m *masterH) assertPhase() {
	if m.state == masterWaiting && m.relPend {
		m.rel.Assert()
		m.drove = true
	}
}

func (m *masterH) samplePhase(release func(tile int)) {
	if !m.enabled {
		return
	}
	switch m.state {
	case masterAccounting:
		if m.serial {
			m.backlog += m.arr.Count()
			if m.backlog > 0 {
				m.scnt++
				m.backlog--
			}
		} else {
			m.scnt += m.arr.Count()
		}
		if m.scnt > m.scntMax {
			if !m.tolerant {
				panic(fmt.Sprintf("gline barrier: row master %d counted %d arrivals, expected at most %d", m.tile, m.scnt, m.scntMax))
			}
			m.scnt = m.scntMax
		}
		if m.regs.barReg {
			m.mcnt = true
		}
		if m.scnt == m.scntMax && (m.mcnt || !m.mcntReq) {
			m.regs.flagH = true
			m.state = masterWaiting
		}
	case masterWaiting:
		if m.drove {
			// The release pulse was driven this cycle; reset for the
			// next barrier episode and release the local core.
			m.drove = false
			m.relPend = false
			m.scnt = 0
			m.mcnt = false
			m.state = masterAccounting
			if m.regs.barReg {
				m.regs.barReg = false
				release(m.tile)
			}
		}
	}
}

// slaveV is the vertical slave controller at a row's col==0 tile (row>0).
type slaveV struct {
	tile     int
	arr, rel *Line // vertical arrival (tx) and release (rx)
	regs     *tileRegs
	mh       *masterH
	state    slaveState
	enabled  bool // row has at least one participant
}

func (s *slaveV) assertPhase() {
	if s.enabled && s.state == slaveSignaling && s.regs.flagH {
		s.arr.Assert()
	}
}

func (s *slaveV) samplePhase() {
	if !s.enabled {
		return
	}
	switch s.state {
	case slaveSignaling:
		if s.regs.flagH {
			s.state = slaveWaiting
		}
	case slaveWaiting:
		if s.rel.Count() > 0 {
			s.regs.flagH = false
			s.mh.relPend = true
			s.state = slaveSignaling
		}
	}
}

// masterV is the vertical master controller at tile 0.
type masterV struct {
	tile     int
	arr, rel *Line
	regs     *tileRegs
	mh       *masterH
	state    masterState
	scnt     int
	serial   bool
	backlog  int
	scntMax  int  // participating rows other than row 0
	row0Req  bool // whether row 0 participates (via MasterH's flag)
	relPend  bool
	drove    bool
	tolerant bool // clamp over-counts under fault injection (see masterH)
	// gated defers the release phase: on completion the barrier is
	// reported via episodeDone but the vertical release pulse waits for
	// an external trigger (the hierarchical network's global layer).
	gated bool
	// episodeDone fires once per completed barrier, before release.
	episodeDone func()
}

func (m *masterV) assertPhase() {
	if m.state == masterWaiting && m.relPend {
		m.rel.Assert()
		m.drove = true
	}
}

func (m *masterV) samplePhase() {
	switch m.state {
	case masterAccounting:
		if m.serial {
			m.backlog += m.arr.Count()
			if m.backlog > 0 {
				m.scnt++
				m.backlog--
			}
		} else {
			m.scnt += m.arr.Count()
		}
		if m.scnt > m.scntMax {
			if !m.tolerant {
				panic(fmt.Sprintf("gline barrier: vertical master counted %d arrivals, expected at most %d", m.scnt, m.scntMax))
			}
			m.scnt = m.scntMax
		}
		if m.scnt == m.scntMax && (m.regs.flagH || !m.row0Req) {
			m.state = masterWaiting
			if !m.gated {
				m.relPend = true
			}
			if m.episodeDone != nil {
				m.episodeDone()
			}
		}
	case masterWaiting:
		if !m.drove {
			return
		}
		// The release pulse was driven this cycle; reset. Row 0's
		// MasterH is released the same way SlaveV releases the others.
		m.drove = false
		m.relPend = false
		m.scnt = 0
		m.regs.flagH = false
		if m.mh.enabled {
			m.mh.relPend = true
		}
		m.state = masterAccounting
	}
}
