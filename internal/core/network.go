package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/trace"
)

// Timeline span names emitted by the G-line networks. Instants: one
// spanGLPulse per line per cycle with assertions (the S-CSMA sample count
// as arg — arbitration visibility), one spanGLComplete when a context's
// barrier completes at the vertical master.
const (
	spanGLPulse    = "gl.pulse"
	spanGLComplete = "gl.complete"
)

// MuxMode selects how multiple barrier contexts share the chip's G-lines.
type MuxMode int

const (
	// MuxSpace gives every context its own physical set of G-lines
	// (2*(rows+1) lines each). Latency is the ideal 4 cycles per context.
	MuxSpace MuxMode = iota
	// MuxTime shares one physical set of G-lines between all contexts by
	// time-division: context i may drive/sample the wires only on cycles
	// where cycle mod N == i. Area stays constant; worst-case latency
	// scales with the number of contexts.
	MuxTime
)

// NetworkConfig configures a flat G-line barrier network.
type NetworkConfig struct {
	// Cols and Rows give the mesh geometry the network spans.
	Cols, Rows int
	// MaxTransmitters is the per-line electrical limit (paper: 6).
	MaxTransmitters int
	// Contexts is the number of independent logical barriers (>=1).
	Contexts int
	// Mux selects space- or time-multiplexing for Contexts > 1.
	Mux MuxMode
	// SerialSignaling disables S-CSMA: line receivers register at most
	// one arrival per cycle. An ablation of the paper's counting
	// technique; simultaneous arrivals then serialize at the masters.
	SerialSignaling bool
}

// Network is the flat G-line barrier network of one CMP: the paper's
// architecture of Figure 1, extended with multiple contexts. It implements
// engine.Ticker; the simulator registers it so it steps once per cycle
// while any barrier is in flight.
type Network struct {
	cfg      NetworkConfig
	contexts []*context
	release  func(core int)
	schedule func(delay uint64, fn func()) // release deferral hook

	activeCtxs int
	cycles     uint64 // cycles the network was actively stepped (power gating)

	// tl, when non-nil, records line pulses and barrier completions as
	// structured timeline events; probe additionally reports each context
	// completion (ctx id, cycle) to the latency-attribution collector.
	tl    *trace.Timeline
	probe func(ctx int, cycle uint64)
}

// context is one logical barrier: a full set of controllers plus (in
// MuxSpace) its own lines.
type context struct {
	id           int
	net          *Network
	regs         []tileRegs
	slavesH      []*slaveH
	mastersH     []*masterH
	slavesV      []*slaveV
	mv           *masterV
	lines        []*Line
	participants []bool
	nParts       int
	pending      int // cores arrived and not yet released
	slot, period int

	arrivals, episodes uint64
	lastEpisodeCycle   uint64
	nowCycle           uint64 // cycle of the step in progress (timeline hooks)

	// releasedBuf is per-context scratch reused across steps; it must not
	// be shared between networks, which may step on parallel goroutines.
	releasedBuf []int
}

// NewNetwork builds a flat G-line network. Every context initially includes
// all cores as participants; use SetParticipants to restrict a context.
// The mesh must fit the electrical limit: at most MaxTransmitters slaves
// per line (cols-1 and rows-1), i.e. up to 7x7 with the paper's limit of 6.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Cols <= 0 || cfg.Rows <= 0 {
		return nil, fmt.Errorf("gline: invalid mesh %dx%d", cfg.Cols, cfg.Rows)
	}
	if cfg.MaxTransmitters < 1 {
		return nil, fmt.Errorf("gline: MaxTransmitters must be >=1, got %d", cfg.MaxTransmitters)
	}
	if cfg.Cols-1 > cfg.MaxTransmitters || cfg.Rows-1 > cfg.MaxTransmitters {
		return nil, fmt.Errorf("gline: mesh %dx%d exceeds the %d-transmitter limit per line (max %dx%d); use a hierarchical network",
			cfg.Cols, cfg.Rows, cfg.MaxTransmitters, cfg.MaxTransmitters+1, cfg.MaxTransmitters+1)
	}
	if cfg.Contexts < 1 {
		return nil, fmt.Errorf("gline: Contexts must be >=1, got %d", cfg.Contexts)
	}
	n := &Network{cfg: cfg}
	var shared []*Line
	if cfg.Mux == MuxTime {
		shared = makeLines(cfg, -1)
	}
	for i := 0; i < cfg.Contexts; i++ {
		lines := shared
		if cfg.Mux == MuxSpace {
			lines = makeLines(cfg, i)
		}
		ctx := newContext(n, i, lines)
		if cfg.Mux == MuxTime {
			ctx.slot, ctx.period = i, cfg.Contexts
		}
		n.contexts = append(n.contexts, ctx)
	}
	return n, nil
}

// makeLines allocates the 2*(rows+1) lines of one physical network. ctx<0
// labels a time-shared set.
func makeLines(cfg NetworkConfig, ctxID int) []*Line {
	label := "shared"
	if ctxID >= 0 {
		label = fmt.Sprintf("ctx%d", ctxID)
	}
	lines := make([]*Line, 0, 2*(cfg.Rows+1))
	for r := 0; r < cfg.Rows; r++ {
		lines = append(lines,
			NewLine(fmt.Sprintf("%s-arrH%d", label, r), cfg.MaxTransmitters),
			NewLine(fmt.Sprintf("%s-relH%d", label, r), cfg.MaxTransmitters))
	}
	lines = append(lines,
		NewLine(label+"-arrV", cfg.MaxTransmitters),
		NewLine(label+"-relV", cfg.MaxTransmitters))
	return lines
}

func newContext(n *Network, id int, lines []*Line) *context {
	cfg := n.cfg
	ctx := &context{
		id:           id,
		net:          n,
		regs:         make([]tileRegs, cfg.Cols*cfg.Rows),
		lines:        lines,
		participants: make([]bool, cfg.Cols*cfg.Rows),
		period:       1,
	}
	for i := range ctx.participants {
		ctx.participants[i] = true
	}
	ctx.nParts = len(ctx.participants)
	arrV, relV := lines[2*cfg.Rows], lines[2*cfg.Rows+1]
	for r := 0; r < cfg.Rows; r++ {
		arrH, relH := lines[2*r], lines[2*r+1]
		masterTile := r * cfg.Cols
		mh := &masterH{tile: masterTile, arr: arrH, rel: relH, regs: &ctx.regs[masterTile], serial: cfg.SerialSignaling}
		ctx.mastersH = append(ctx.mastersH, mh)
		for c := 1; c < cfg.Cols; c++ {
			tile := r*cfg.Cols + c
			ctx.slavesH = append(ctx.slavesH, &slaveH{tile: tile, arr: arrH, rel: relH, regs: &ctx.regs[tile]})
		}
		if r == 0 {
			ctx.mv = &masterV{tile: masterTile, arr: arrV, rel: relV, regs: &ctx.regs[masterTile], mh: mh, serial: cfg.SerialSignaling}
			ctx.mv.episodeDone = ctx.onEpisode
		} else {
			ctx.slavesV = append(ctx.slavesV, &slaveV{tile: masterTile, arr: arrV, rel: relV, regs: &ctx.regs[masterTile], mh: mh})
		}
	}
	ctx.recomputeExpectations()
	return ctx
}

// SetParticipants restricts a context's barrier to the given cores. It must
// not be called while the context has arrivals in flight.
func (n *Network) SetParticipants(ctxID int, cores []int) error {
	ctx, err := n.ctx(ctxID)
	if err != nil {
		return err
	}
	if ctx.pending != 0 {
		return fmt.Errorf("gline: context %d has %d arrivals in flight", ctxID, ctx.pending)
	}
	if len(cores) == 0 {
		return fmt.Errorf("gline: context %d: empty participant set", ctxID)
	}
	for _, c := range cores {
		if c < 0 || c >= len(ctx.participants) {
			return fmt.Errorf("gline: participant %d out of range [0,%d)", c, len(ctx.participants))
		}
	}
	for i := range ctx.participants {
		ctx.participants[i] = false
	}
	for _, c := range cores {
		ctx.participants[c] = true
	}
	ctx.nParts = len(cores)
	ctx.recomputeExpectations()
	return nil
}

// recomputeExpectations derives every controller's expected arrival counts
// from the participant mask.
func (c *context) recomputeExpectations() {
	cols := c.net.cfg.Cols
	rows := c.net.cfg.Rows
	vMax := 0
	for r := 0; r < rows; r++ {
		slaves := 0
		for col := 1; col < cols; col++ {
			if c.participants[r*cols+col] {
				slaves++
			}
		}
		mh := c.mastersH[r]
		mh.scntMax = slaves
		mh.mcntReq = c.participants[r*cols]
		rowActive := slaves > 0 || mh.mcntReq
		mh.enabled = rowActive
		if r == 0 {
			c.mv.row0Req = rowActive
		} else if rowActive {
			vMax++
		}
		// A row with no participants never raises its flag; its SlaveV
		// stays silent and must not be counted by MasterV.
		if r > 0 {
			c.slavesV[r-1].enabled = rowActive
		}
	}
	c.mv.scntMax = vMax
}

// Contexts returns the number of logical barrier contexts.
func (n *Network) Contexts() int { return len(n.contexts) }

// SetInjector installs a fault injector on every G-line of the network and
// switches the masters to tolerant counting (injected spurious assertions
// may over-count). Line ids are assigned deterministically from the
// network's own layout, so fault decisions never depend on how many other
// networks exist in the process.
func (n *Network) SetInjector(inj *fault.Injector) {
	n.setInjectorFrom(inj, 0)
}

// setInjectorFrom assigns line ids starting at base and returns the next
// free id; the hierarchical network uses it to give every cluster a
// disjoint id range.
func (n *Network) setInjectorFrom(inj *fault.Injector, base uint64) uint64 {
	id := base
	seen := map[*Line]bool{}
	for _, c := range n.contexts {
		for _, l := range c.lines {
			if !seen[l] {
				seen[l] = true
				l.inj = inj
				l.id = id
				id++
			}
		}
		for _, m := range c.mastersH {
			m.tolerant = true
		}
		c.mv.tolerant = true
	}
	return id
}

// SetTimeline attaches a span timeline: line pulses and context completions
// are recorded on it. Track ids are assigned with the same deterministic
// traversal SetInjector uses, so a line keeps its track across runs.
func (n *Network) SetTimeline(tl *trace.Timeline) {
	n.setTimelineFrom(tl, 0)
}

// setTimelineFrom assigns line track ids starting at base and returns the
// next free id; the hierarchical network gives every cluster a disjoint
// range.
func (n *Network) setTimelineFrom(tl *trace.Timeline, base int) int {
	n.tl = tl
	id := base
	seen := map[*Line]bool{}
	for _, c := range n.contexts {
		for _, l := range c.lines {
			if !seen[l] {
				seen[l] = true
				l.tlID = id
				id++
			}
		}
	}
	return id
}

// SetEpisodeProbe installs a callback fired once per completed barrier
// episode with the context id and completion cycle (before release
// propagates). The latency-attribution collector uses it to pin the gather
// phase's end.
func (n *Network) SetEpisodeProbe(fn func(ctx int, cycle uint64)) {
	n.probe = fn
}

// ResetContext re-arms one context's controllers to their pristine state:
// all bar_regs cleared, counts zeroed, state machines back to their initial
// states. Participant masks and multiplexing slots survive. The recovery
// layer calls this on a wedged context before replaying arrivals.
func (n *Network) ResetContext(ctxID int) error {
	ctx, err := n.ctx(ctxID)
	if err != nil {
		return err
	}
	if ctx.pending > 0 {
		n.activeCtxs--
	}
	ctx.pending = 0
	for i := range ctx.regs {
		ctx.regs[i] = tileRegs{}
	}
	for _, s := range ctx.slavesH {
		s.state = slaveSignaling
	}
	for _, m := range ctx.mastersH {
		m.state = masterAccounting
		m.scnt = 0
		m.backlog = 0
		m.mcnt = false
		m.relPend = false
		m.drove = false
	}
	for _, s := range ctx.slavesV {
		s.state = slaveSignaling
	}
	mv := ctx.mv
	mv.state = masterAccounting
	mv.scnt = 0
	mv.backlog = 0
	mv.relPend = false
	mv.drove = false
	// Lines are idle between ticks (tx drains every sample), but clear them
	// anyway so a reset mid-wedge can never carry a stale pulse over.
	for _, l := range ctx.lines {
		l.tx = 0
		l.sampled = 0
	}
	return nil
}

// GateRelease configures a context so that barrier completion does not
// immediately start the release phase; TriggerRelease must be called to
// release the waiting cores. Used by the hierarchical network's global
// layer.
func (n *Network) GateRelease(ctxID int, gated bool) error {
	ctx, err := n.ctx(ctxID)
	if err != nil {
		return err
	}
	ctx.mv.gated = gated
	return nil
}

// TriggerRelease starts the release phase of a gated context whose barrier
// has completed. It panics if the context is not waiting: triggering an
// incomplete barrier is a hardware-logic bug.
func (n *Network) TriggerRelease(ctxID int) {
	ctx, err := n.ctx(ctxID)
	if err != nil {
		panic(err.Error())
	}
	if ctx.mv.state != masterWaiting {
		panic(fmt.Sprintf("gline: TriggerRelease on context %d with no completed barrier", ctxID))
	}
	ctx.mv.relPend = true
}

func (n *Network) ctx(id int) (*context, error) {
	if id < 0 || id >= len(n.contexts) {
		return nil, fmt.Errorf("gline: context %d out of range [0,%d)", id, len(n.contexts))
	}
	return n.contexts[id], nil
}

// OnRelease installs the callback invoked when the hardware resets a core's
// bar_reg. The callback is deferred by one cycle through schedule (the core
// observes the cleared register on the next cycle).
func (n *Network) OnRelease(schedule func(delay uint64, fn func()), release func(core int)) {
	n.schedule = schedule
	n.release = release
}

// Arrive is the core side of `mov 1, bar_reg`: core announces its arrival
// at the barrier of the given context.
func (n *Network) Arrive(core int, ctxID int) {
	ctx, err := n.ctx(ctxID)
	if err != nil {
		panic(err.Error())
	}
	if core < 0 || core >= len(ctx.regs) {
		panic(fmt.Sprintf("gline: core %d out of range", core))
	}
	if !ctx.participants[core] {
		panic(fmt.Sprintf("gline: core %d is not a participant of context %d", core, ctxID))
	}
	if ctx.regs[core].barReg {
		panic(fmt.Sprintf("gline: core %d arrived twice at context %d", core, ctxID))
	}
	ctx.regs[core].barReg = true
	ctx.arrivals++
	ctx.pending++
	if ctx.pending == 1 {
		n.activeCtxs++
	}
}

// BarRegSet reports whether a core's bar_reg is currently set, for tests.
func (n *Network) BarRegSet(core, ctxID int) bool {
	ctx, err := n.ctx(ctxID)
	if err != nil {
		panic(err.Error())
	}
	return ctx.regs[core].barReg
}

// Episodes returns the total completed barrier episodes across contexts.
func (n *Network) Episodes() uint64 {
	var e uint64
	for _, c := range n.contexts {
		e += c.episodes
	}
	return e
}

// ContextEpisodes returns the completed episodes of one context.
func (n *Network) ContextEpisodes(ctxID int) uint64 {
	ctx, err := n.ctx(ctxID)
	if err != nil {
		panic(err.Error())
	}
	return ctx.episodes
}

// Toggles returns total G-line assertions (each is one wire transition),
// the basis of the energy model.
func (n *Network) Toggles() uint64 {
	var t uint64
	seen := map[*Line]bool{}
	for _, c := range n.contexts {
		for _, l := range c.lines {
			if !seen[l] {
				seen[l] = true
				t += l.Toggles()
			}
		}
	}
	return t
}

// ActiveCycles returns how many cycles the network was powered (stepped
// with work pending) — controllers are switched off otherwise (paper §3.3).
func (n *Network) ActiveCycles() uint64 { return n.cycles }

// LineCount returns the total number of physical G-lines.
func (n *Network) LineCount() int {
	seen := map[*Line]bool{}
	cnt := 0
	for _, c := range n.contexts {
		for _, l := range c.lines {
			if !seen[l] {
				seen[l] = true
				cnt++
			}
		}
	}
	return cnt
}

func (c *context) onEpisode() {
	c.episodes++
	n := c.net
	if n.tl != nil {
		n.tl.Instant(trace.BarrierTrack(c.id), spanGLComplete, c.nowCycle, c.episodes, 0)
	}
	if n.probe != nil {
		n.probe(c.id, c.nowCycle)
	}
}

// Tick steps the network one cycle. Returns whether any barrier is in
// flight (contexts with no pending arrivals are power-gated).
func (n *Network) Tick(cycle uint64) bool {
	if n.activeCtxs == 0 {
		return false
	}
	n.cycles++
	for _, ctx := range n.contexts {
		if ctx.pending == 0 && !ctx.inFlight() {
			continue
		}
		if cycle%uint64(ctx.period) != uint64(ctx.slot) {
			continue
		}
		ctx.step(cycle)
	}
	return n.activeCtxs > 0
}

// inFlight reports whether any controller holds transient state (release
// still propagating after pending already dropped, which cannot happen
// today but keeps the gate conservative).
func (c *context) inFlight() bool {
	if c.mv.state != masterAccounting || c.mv.relPend || c.mv.backlog > 0 {
		return true
	}
	for _, m := range c.mastersH {
		if m.state != masterAccounting || m.relPend || m.backlog > 0 {
			return true
		}
	}
	return false
}

// step is one hardware cycle of one context: all controllers drive their
// lines, the lines latch (S-CSMA sampling), then all controllers observe.
// The sample order (masterV, slavesV, mastersH, slavesH) realizes the
// registered-flag semantics of the paper: a flag written by MasterH on
// cycle k is first visible to MasterV on cycle k+1.
func (c *context) step(cycle uint64) {
	c.nowCycle = cycle
	for _, s := range c.slavesH {
		s.assertPhase()
	}
	for _, m := range c.mastersH {
		m.assertPhase()
	}
	for _, s := range c.slavesV {
		s.assertPhase()
	}
	c.mv.assertPhase()

	for _, l := range c.lines {
		l.sample(cycle)
	}
	if c.net.tl != nil {
		// One instant per line with assertions this cycle; arg carries the
		// S-CSMA sample count, making arbitration rounds visible per wire.
		for _, l := range c.lines {
			if l.sampled > 0 {
				c.net.tl.Instant(trace.LineTrack(l.tlID), spanGLPulse, cycle, 0, uint64(l.sampled))
			}
		}
	}

	released := c.releasedBuf[:0]
	collect := func(tile int) { released = append(released, tile) }
	c.mv.samplePhase()
	for _, s := range c.slavesV {
		s.samplePhase()
	}
	for _, m := range c.mastersH {
		m.samplePhase(collect)
	}
	for _, s := range c.slavesH {
		s.samplePhase(collect)
	}

	if len(released) > 0 {
		c.pending -= len(released)
		if c.pending < 0 {
			panic("gline: released more cores than arrived")
		}
		if c.pending == 0 {
			c.net.activeCtxs--
		}
		c.lastEpisodeCycle = cycle
		n := c.net
		if n.release != nil {
			for _, tile := range released {
				tile := tile
				if n.schedule != nil {
					n.schedule(1, func() { n.release(tile) })
				} else {
					n.release(tile)
				}
			}
		}
	}
	c.releasedBuf = released[:0]
}
