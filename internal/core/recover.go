package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/metrics"
)

// BarrierNetwork is the contract the recovery layer needs from a G-line
// network: the simulator-facing surface plus the ability to re-arm a wedged
// context. Both Network and Hierarchical satisfy it.
type BarrierNetwork interface {
	Arrive(core int, barrierCtx int)
	Tick(cycle uint64) bool
	OnRelease(schedule func(delay uint64, fn func()), release func(core int))
	SetParticipants(ctxID int, cores []int) error
	Episodes() uint64
	Toggles() uint64
	LineCount() int
	ActiveCycles() uint64
	ResetContext(ctxID int) error
	Contexts() int
}

// Metric names registered by the recovering guard. Exported: the
// experiment tables read them from merged run reports.
const (
	MetricGLRetries          = "gl.retries"
	MetricGLFallbacks        = "gl.fallbacks"
	MetricGLSpuriousReleases = "gl.spurious_releases"
	MetricGLRecoveryLatency  = "gl.recovery.latency"
)

// GuardObserver receives the recovery guard's protocol-level events as they
// happen: suppressed releases, retries, fallbacks and episode closures. It
// is the observation surface the chaos oracles hook into (see
// internal/chaos); a nil observer costs one nil check per event.
type GuardObserver interface {
	// GuardSuppressed fires when a hardware release arrives before the
	// episode is complete (or for an already-released core) and is
	// swallowed by the safety layer.
	GuardSuppressed(ctx, core int, cycle uint64)
	// GuardRetry fires when an expired episode deadline triggers hardware
	// re-arm number `attempt` (1-based).
	GuardRetry(ctx, attempt int, cycle uint64)
	// GuardFallback fires when the guard completes an episode on the
	// software path; sticky reports whether the context has given up on
	// hardware retries entirely.
	GuardFallback(ctx int, cycle uint64, sticky bool)
	// GuardEpisode fires when a logical episode closes: opened/closed are
	// the first-arrival and completion cycles, retries the hardware
	// re-arms it took, viaFallback whether software finished it.
	GuardEpisode(ctx int, opened, closed uint64, retries int, viaFallback bool)
}

// Recovering wraps a G-line network with the fault-tolerance protocol the
// bare wires lack. The guard shadows every episode in software — which
// cores arrived, which were released — and drives an escalation ladder when
// the hardware misbehaves:
//
//  1. Suppression (safety): a hardware release arriving before every
//     participant has arrived is a fault (spurious assertion, miscount); it
//     is swallowed, so no core ever passes an incomplete barrier.
//  2. Retry (liveness): once all participants have arrived, completion is
//     due within Recovery.Timeout cycles. On expiry the guard re-arms the
//     context's controllers (ResetContext) and replays the outstanding
//     arrivals, backing off exponentially across retries.
//  3. Fallback: after Recovery.MaxRetries failed replays the guard
//     completes the episode itself, releasing the waiting cores after
//     Recovery.FallbackPenalty cycles each — the modeled cost of one DSW
//     software-barrier round.
//  4. Sticky fallback: Recovery.StickyAfter consecutive fallback episodes
//     (a stuck-at fault, not transient noise) stop the hardware retries
//     entirely; the context runs on the software path from then on.
//
// With no faults injected the guard is an exact pass-through: arrivals and
// releases forward synchronously and the timeout never fires, so simulated
// timing is bit-identical to the unwrapped network.
type Recovering struct {
	inner BarrierNetwork
	rec   fault.Recovery
	now   func() uint64

	schedule func(delay uint64, fn func())
	release  func(core int)

	ctxs  []*guardCtx
	ctxOf []int // last context each core arrived on

	episodes uint64 // logical completions (guard-owned; see Episodes)

	cRetries   *metrics.Counter
	cFallbacks *metrics.Counter
	cSpurious  *metrics.Counter
	recLat     *metrics.Histogram

	obs GuardObserver
}

// guardCtx is the guard's shadow of one barrier context.
type guardCtx struct {
	parts    []bool
	expected int

	arrived   []bool
	nArrived  int
	released  []bool
	nReleased int

	opened     uint64 // cycle of the episode's first arrival
	deadline   uint64 // completion due by this cycle; 0 = unarmed
	recovering bool   // a recovery step is scheduled
	retries    int
	needReset  bool // hardware state known inconsistent (suppressed release)
	fallbacks  int  // consecutive fallback-completed episodes
	sticky     bool // hardware given up on; software path only

	// early buffers next-episode arrivals from cores that were already
	// released while the current episode is still draining stragglers (a
	// faulty release can reach rows at different times). They are admitted
	// when the episode closes; forwarding them into hardware mid-recovery
	// would race the context resets.
	early []int
}

// NewRecovering wraps inner for a CMP with the given core count. now must
// report the current simulation cycle (the engine's clock).
func NewRecovering(inner BarrierNetwork, cores int, rec fault.Recovery, now func() uint64) *Recovering {
	r := &Recovering{
		inner: inner,
		rec:   rec.WithDefaults(),
		now:   now,
	}
	r.ctxOf = make([]int, cores)
	for i := 0; i < inner.Contexts(); i++ {
		g := &guardCtx{
			parts:    make([]bool, cores),
			arrived:  make([]bool, cores),
			released: make([]bool, cores),
			expected: cores,
		}
		for c := range g.parts {
			g.parts[c] = true
		}
		r.ctxs = append(r.ctxs, g)
	}
	r.SetMetrics(metrics.NewRegistry())
	return r
}

// SetObserver installs the guard's protocol observer (nil disables).
func (r *Recovering) SetObserver(o GuardObserver) { r.obs = o }

// SetMetrics re-homes the guard's counters and recovery-latency histogram
// into reg.
func (r *Recovering) SetMetrics(reg *metrics.Registry) {
	r.cRetries = reg.Counter(MetricGLRetries)
	r.cFallbacks = reg.Counter(MetricGLFallbacks)
	r.cSpurious = reg.Counter(MetricGLSpuriousReleases)
	r.recLat = reg.Histogram(MetricGLRecoveryLatency, metrics.CycleBuckets())
}

// OnRelease interposes the guard between the network's release path and
// the cores: the inner network reports releases to the guard, which
// forwards the legitimate ones.
func (r *Recovering) OnRelease(schedule func(delay uint64, fn func()), release func(core int)) {
	r.schedule = schedule
	r.release = release
	r.inner.OnRelease(schedule, r.onInnerRelease)
}

// SetParticipants forwards the participant set and resizes the guard's
// expectations. The context must be idle.
func (r *Recovering) SetParticipants(ctxID int, cores []int) error {
	if ctxID < 0 || ctxID >= len(r.ctxs) {
		return fmt.Errorf("gline: context %d out of range [0,%d)", ctxID, len(r.ctxs))
	}
	g := r.ctxs[ctxID]
	if g.nArrived != 0 {
		return fmt.Errorf("gline: context %d has %d arrivals in flight", ctxID, g.nArrived)
	}
	if err := r.inner.SetParticipants(ctxID, cores); err != nil {
		return err
	}
	for i := range g.parts {
		g.parts[i] = false
	}
	for _, c := range cores {
		g.parts[c] = true
	}
	g.expected = len(cores)
	return nil
}

// Arrive records a logical arrival and forwards it to the hardware (unless
// the context has gone sticky-software). A core that was already released
// this episode is arriving at the NEXT barrier while stragglers still
// drain; its arrival is buffered until the episode closes.
func (r *Recovering) Arrive(core int, ctxID int) {
	g := r.ctxs[ctxID]
	if !g.parts[core] {
		panic(fmt.Sprintf("gline: core %d is not a participant of context %d", core, ctxID))
	}
	if g.arrived[core] {
		if g.released[core] {
			g.early = append(g.early, core)
			return
		}
		panic(fmt.Sprintf("gline: core %d arrived twice at context %d", core, ctxID))
	}
	r.admit(ctxID, g, core)
}

// admit applies one arrival to the shadow state and the hardware.
func (r *Recovering) admit(ctxID int, g *guardCtx, core int) {
	now := r.now()
	if g.nArrived == 0 {
		g.opened = now
	}
	g.arrived[core] = true
	g.nArrived++
	r.ctxOf[core] = ctxID
	if !g.sticky {
		r.inner.Arrive(core, ctxID)
	}
	if g.nArrived == g.expected {
		switch {
		case g.sticky:
			r.fallbackComplete(ctxID, g)
		case g.needReset:
			// The hardware lost a release mid-episode; don't wait for a
			// timeout that cannot succeed.
			g.deadline = now
		default:
			g.deadline = now + r.timeout(g.retries)
		}
	}
}

// timeout returns the episode deadline for the given retry count, with
// bounded exponential backoff.
func (r *Recovering) timeout(retries int) uint64 {
	return r.rec.Timeout << uint(retries)
}

// onInnerRelease is the hardware's release callback. Releases before every
// participant has arrived (or duplicates) are faults and are suppressed —
// the affected core stays blocked and is re-released by a later retry or
// fallback.
func (r *Recovering) onInnerRelease(core int) {
	ctxID := r.ctxOf[core]
	g := r.ctxs[ctxID]
	if g.nArrived < g.expected || !g.arrived[core] || g.released[core] {
		r.cSpurious.Inc()
		if r.obs != nil {
			r.obs.GuardSuppressed(ctxID, core, r.now())
		}
		g.needReset = true
		return
	}
	g.released[core] = true
	g.nReleased++
	r.release(core)
	if g.nReleased == g.expected {
		r.completeEpisode(ctxID, g, false)
	}
}

// Tick steps the inner network, then checks episode deadlines. The guard
// reports itself busy while any episode is open so the engine keeps the
// clock running toward the deadline of a wedged barrier.
func (r *Recovering) Tick(cycle uint64) bool {
	active := r.inner.Tick(cycle)
	busy := false
	for ctxID, g := range r.ctxs {
		if g.nArrived > 0 {
			busy = true
		}
		if g.deadline != 0 && cycle >= g.deadline && !g.recovering {
			g.recovering = true
			ctxID, g := ctxID, g
			// Recovery runs as an engine event: it keeps the decision out
			// of the tick phase and resets the stall watchdog, which would
			// otherwise accumulate across back-to-back retry waits.
			r.schedule(1, func() {
				g.recovering = false
				r.recover(ctxID, g)
			})
		}
	}
	return active || busy
}

// recover handles an expired episode deadline.
func (r *Recovering) recover(ctxID int, g *guardCtx) {
	if g.deadline == 0 {
		return // episode completed while the recovery event was in flight
	}
	if g.nReleased > 0 || g.retries >= r.rec.MaxRetries {
		// Release propagation wedged after a completed dance, or retries
		// exhausted: finish the episode in software.
		r.fallbackComplete(ctxID, g)
		return
	}
	g.retries++
	r.cRetries.Inc()
	if r.obs != nil {
		r.obs.GuardRetry(ctxID, g.retries, r.now())
	}
	if err := r.inner.ResetContext(ctxID); err != nil {
		panic(fmt.Sprintf("gline: recovery reset failed: %v", err))
	}
	g.needReset = false
	for _, core := range r.outstanding(g) {
		r.inner.Arrive(core, ctxID)
	}
	g.deadline = r.now() + r.timeout(g.retries)
}

// fallbackComplete finishes the current episode on the software path:
// quiet the hardware, release every still-waiting core after the fallback
// penalty, and account the episode.
func (r *Recovering) fallbackComplete(ctxID int, g *guardCtx) {
	r.cFallbacks.Inc()
	g.fallbacks++
	if r.rec.StickyAfter > 0 && g.fallbacks >= r.rec.StickyAfter {
		g.sticky = true
	}
	if r.obs != nil {
		r.obs.GuardFallback(ctxID, r.now(), g.sticky)
	}
	if err := r.inner.ResetContext(ctxID); err != nil {
		panic(fmt.Sprintf("gline: fallback reset failed: %v", err))
	}
	for _, core := range r.outstanding(g) {
		core := core
		g.released[core] = true
		g.nReleased++
		r.schedule(r.rec.FallbackPenalty, func() { r.release(core) })
	}
	r.completeEpisode(ctxID, g, true)
}

// outstanding returns the arrived-but-unreleased cores in ascending core
// order (the deterministic replay/release order).
func (r *Recovering) outstanding(g *guardCtx) []int {
	var cores []int
	for c, a := range g.arrived {
		if a && !g.released[c] {
			cores = append(cores, c)
		}
	}
	return cores
}

// completeEpisode closes the current logical episode and resets the shadow
// state for the next one. Episodes that needed any recovery leave the
// hardware re-armed so stale controller state can never leak forward.
func (r *Recovering) completeEpisode(ctxID int, g *guardCtx, viaFallback bool) {
	r.episodes++
	recovered := viaFallback || g.retries > 0 || g.needReset
	if recovered {
		r.recLat.Observe(r.now() - g.opened)
	}
	if r.obs != nil {
		r.obs.GuardEpisode(ctxID, g.opened, r.now(), g.retries, viaFallback)
	}
	if !viaFallback {
		g.fallbacks = 0
		if recovered {
			if err := r.inner.ResetContext(ctxID); err != nil {
				panic(fmt.Sprintf("gline: post-episode reset failed: %v", err))
			}
		}
	}
	for c := range g.arrived {
		g.arrived[c] = false
		g.released[c] = false
	}
	g.nArrived = 0
	g.nReleased = 0
	g.deadline = 0
	g.retries = 0
	g.needReset = false
	// Open the next episode with the buffered early arrivals. A recursive
	// completion (sticky fallback with every core buffered) swaps in a
	// fresh queue, so the remaining admissions land in the episode after.
	early := g.early
	g.early = nil
	for _, core := range early {
		r.admit(ctxID, g, core)
	}
}

// GuardCtxStatus is a point-in-time snapshot of one guarded context's
// shadow state, carried by the hang watchdog's post-mortem dump so a
// wedged barrier is diagnosable without re-running the simulation.
type GuardCtxStatus struct {
	Ctx           int    `json:"ctx"`
	Episode       uint64 `json:"episode"`  // logical episodes completed so far
	Expected      int    `json:"expected"` // participants this episode waits for
	Arrived       int    `json:"arrived"`
	Released      int    `json:"released"`
	BufferedEarly int    `json:"buffered_early"` // next-episode arrivals held back
	Opened        uint64 `json:"opened,omitempty"`
	Deadline      uint64 `json:"deadline,omitempty"` // 0 = unarmed
	Retries       int    `json:"retries"`
	Fallbacks     int    `json:"consecutive_fallbacks"`
	NeedReset     bool   `json:"need_reset"`
	Recovering    bool   `json:"recovering"`
	Sticky        bool   `json:"sticky"`
}

// String renders the snapshot as one dump line.
func (s GuardCtxStatus) String() string {
	line := fmt.Sprintf("guard ctx %d: episode=%d arrived=%d/%d released=%d early=%d retries=%d fallbacks=%d",
		s.Ctx, s.Episode, s.Arrived, s.Expected, s.Released, s.BufferedEarly, s.Retries, s.Fallbacks)
	if s.Deadline != 0 {
		line += fmt.Sprintf(" deadline=%d (opened %d)", s.Deadline, s.Opened)
	}
	switch {
	case s.Sticky:
		line += " STICKY-FALLBACK"
	case s.Recovering:
		line += " RECOVERING"
	case s.NeedReset:
		line += " NEED-RESET"
	}
	return line
}

// Status snapshots every context's guard state for post-mortem dumps.
func (r *Recovering) Status() []GuardCtxStatus {
	out := make([]GuardCtxStatus, len(r.ctxs))
	for i, g := range r.ctxs {
		out[i] = GuardCtxStatus{
			Ctx:           i,
			Episode:       r.episodes,
			Expected:      g.expected,
			Arrived:       g.nArrived,
			Released:      g.nReleased,
			BufferedEarly: len(g.early),
			Retries:       g.retries,
			Fallbacks:     g.fallbacks,
			NeedReset:     g.needReset,
			Recovering:    g.recovering,
			Sticky:        g.sticky,
		}
		if g.nArrived > 0 {
			out[i].Opened = g.opened
			out[i].Deadline = g.deadline
		}
	}
	return out
}

// Episodes returns the guard's logical completion count: one per barrier
// episode regardless of how many hardware retries it took. The inner
// network's own count is not meaningful under recovery (a retried episode
// may complete in hardware zero or several times).
func (r *Recovering) Episodes() uint64 { return r.episodes }

// Retries returns total hardware retry attempts, for tests.
func (r *Recovering) Retries() uint64 { return r.cRetries.Value() }

// Fallbacks returns total software-fallback completions, for tests.
func (r *Recovering) Fallbacks() uint64 { return r.cFallbacks.Value() }

// Toggles delegates to the hardware.
func (r *Recovering) Toggles() uint64 { return r.inner.Toggles() }

// LineCount delegates to the hardware.
func (r *Recovering) LineCount() int { return r.inner.LineCount() }

// ActiveCycles delegates to the hardware.
func (r *Recovering) ActiveCycles() uint64 { return r.inner.ActiveCycles() }

// Unwrap exposes the guarded hardware network, so observability wiring
// (timeline attachment, episode probes) can reach the concrete Network or
// Hierarchical beneath the guard.
func (r *Recovering) Unwrap() BarrierNetwork { return r.inner }
