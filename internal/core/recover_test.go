package core

import (
	"testing"

	"repro/internal/fault"
)

// guardRig drives a Recovering-wrapped flat network with a miniature event
// loop standing in for the engine: schedule/now mirror engine.After/Now.
type guardRig struct {
	t      *testing.T
	cycle  uint64
	events map[uint64][]func()

	net   *Network
	guard *Recovering

	releasedAt map[int]uint64
	releases   int
}

func newGuardRig(t *testing.T, plan *fault.Plan) *guardRig {
	t.Helper()
	net, err := NewNetwork(NetworkConfig{Cols: 4, Rows: 2, MaxTransmitters: 6, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	rig := &guardRig{
		t:          t,
		events:     map[uint64][]func(){},
		net:        net,
		releasedAt: map[int]uint64{},
	}
	if inj := fault.NewInjector(plan); inj != nil {
		net.SetInjector(inj)
	}
	rig.guard = NewRecovering(net, 8, plan.Recovery, func() uint64 { return rig.cycle })
	rig.guard.OnRelease(rig.schedule, func(core int) {
		if _, dup := rig.releasedAt[core]; dup {
			t.Fatalf("core %d released twice in one episode (cycle %d)", core, rig.cycle)
		}
		rig.releasedAt[core] = rig.cycle
		rig.releases++
	})
	return rig
}

func (r *guardRig) schedule(d uint64, fn func()) {
	r.events[r.cycle+d] = append(r.events[r.cycle+d], fn)
}

func (r *guardRig) step() {
	r.cycle++
	for _, fn := range r.events[r.cycle] {
		fn()
	}
	delete(r.events, r.cycle)
	r.guard.Tick(r.cycle)
}

// runEpisode arrives all 8 cores at the given cycles (index = core) and
// steps until every core is released or the budget expires.
func (r *guardRig) runEpisode(arriveAt [8]uint64, budget uint64) bool {
	r.t.Helper()
	for core, at := range arriveAt {
		core := core
		r.events[at] = append(r.events[at], func() { r.guard.Arrive(core, 0) })
	}
	r.releasedAt = map[int]uint64{}
	start := r.cycle
	for r.cycle-start < budget {
		r.step()
		if len(r.releasedAt) == 8 {
			return true
		}
	}
	return false
}

func uniformArrivals(at uint64) [8]uint64 {
	var a [8]uint64
	for i := range a {
		a[i] = at
	}
	return a
}

func TestRecoveringPassthroughNoFaults(t *testing.T) {
	plan := &fault.Plan{Seed: 1, Recovery: fault.Recovery{Timeout: 100}}
	rig := newGuardRig(t, plan)
	if !rig.runEpisode(uniformArrivals(5), 1000) {
		t.Fatalf("fault-free episode did not complete")
	}
	if rig.guard.Retries() != 0 || rig.guard.Fallbacks() != 0 {
		t.Fatalf("fault-free episode used recovery: retries=%d fallbacks=%d",
			rig.guard.Retries(), rig.guard.Fallbacks())
	}
	if rig.guard.Episodes() != 1 {
		t.Fatalf("episodes = %d, want 1", rig.guard.Episodes())
	}
	// Ideal dance: all arrive at 5, release callbacks land ~6 cycles later
	// (4-cycle dance + scheduling). Sanity-bound it.
	for core, at := range rig.releasedAt {
		if at < 8 || at > 15 {
			t.Fatalf("core %d released at cycle %d, outside the ideal window", core, at)
		}
	}
}

func TestRecoveringRetriesThroughDroppedArrivals(t *testing.T) {
	// Drop every assertion on row 0's arrival line (id 0) for cycles 0-200:
	// the row never gathers, the barrier wedges, and the guard's retry
	// replays the arrivals after the window closes.
	plan := &fault.Plan{
		Seed:     1,
		Events:   []fault.Event{{Site: fault.GLDrop, From: 0, Until: 200, Loc: 0}},
		Recovery: fault.Recovery{Timeout: 100, MaxRetries: 4},
	}
	rig := newGuardRig(t, plan)
	if !rig.runEpisode(uniformArrivals(5), 5000) {
		t.Fatalf("episode did not recover from dropped arrivals")
	}
	if rig.guard.Retries() == 0 {
		t.Fatalf("expected at least one retry")
	}
	if rig.guard.Fallbacks() != 0 {
		t.Fatalf("transient drop should not need the fallback, got %d", rig.guard.Fallbacks())
	}
	if rig.guard.Episodes() != 1 {
		t.Fatalf("episodes = %d, want 1", rig.guard.Episodes())
	}
}

func TestRecoveringFallbackOnPersistentFault(t *testing.T) {
	// Stuck-low vertical arrival line (id 4, after 2 rows x 2 lines): the
	// global gather can never complete in hardware, so retries exhaust and
	// the guard completes the episode in software.
	plan := &fault.Plan{
		Seed:     1,
		Events:   []fault.Event{{Site: fault.GLStuckLow, From: 0, Until: 1 << 40, Loc: 4}},
		Recovery: fault.Recovery{Timeout: 100, MaxRetries: 2, FallbackPenalty: 10, StickyAfter: -1},
	}
	rig := newGuardRig(t, plan)
	if !rig.runEpisode(uniformArrivals(5), 20000) {
		t.Fatalf("episode did not complete via fallback")
	}
	if rig.guard.Retries() != 2 {
		t.Fatalf("retries = %d, want MaxRetries=2", rig.guard.Retries())
	}
	if rig.guard.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", rig.guard.Fallbacks())
	}
	if rig.guard.Episodes() != 1 {
		t.Fatalf("episodes = %d, want 1", rig.guard.Episodes())
	}
}

func TestRecoveringGoesStickyAfterConsecutiveFallbacks(t *testing.T) {
	plan := &fault.Plan{
		Seed:     1,
		Events:   []fault.Event{{Site: fault.GLStuckLow, From: 0, Until: 1 << 40, Loc: 4}},
		Recovery: fault.Recovery{Timeout: 100, MaxRetries: 1, FallbackPenalty: 10, StickyAfter: 2},
	}
	rig := newGuardRig(t, plan)
	for ep := 1; ep <= 4; ep++ {
		if !rig.runEpisode(uniformArrivals(rig.cycle+5), 20000) {
			t.Fatalf("episode %d did not complete", ep)
		}
	}
	if rig.guard.Fallbacks() != 4 {
		t.Fatalf("fallbacks = %d, want 4 (one per episode)", rig.guard.Fallbacks())
	}
	// Episodes 1-2 each retry once before falling back; 3-4 are sticky and
	// never touch the hardware again.
	if rig.guard.Retries() != 2 {
		t.Fatalf("retries = %d, want 2 (sticky mode must stop hardware retries)", rig.guard.Retries())
	}
	if rig.guard.Episodes() != 4 {
		t.Fatalf("episodes = %d, want 4", rig.guard.Episodes())
	}
}

func TestRecoveringSuppressesEarlyRelease(t *testing.T) {
	// Spuriously assert row 0's release line (id 1) while its slaves wait
	// but before the rest of the chip arrives: the raw hardware would let
	// cores 1-3 run through an incomplete barrier. The guard must hold
	// every core until all 8 arrived.
	plan := &fault.Plan{
		Seed:     1,
		Events:   []fault.Event{{Site: fault.GLSpurious, From: 10, Until: 12, Loc: 1}},
		Recovery: fault.Recovery{Timeout: 100, MaxRetries: 4},
	}
	rig := newGuardRig(t, plan)
	// Cores 1-3 (row 0 slaves) arrive early; the others at cycle 50.
	arrivals := [8]uint64{50, 5, 5, 5, 50, 50, 50, 50}
	if !rig.runEpisode(arrivals, 5000) {
		t.Fatalf("episode did not complete")
	}
	for core, at := range rig.releasedAt {
		if at < 50 {
			t.Fatalf("core %d released at cycle %d, before all cores arrived (safety violation)", core, at)
		}
	}
	if rig.guard.Episodes() != 1 {
		t.Fatalf("episodes = %d, want 1", rig.guard.Episodes())
	}
}

func TestResetContextPreservesParticipants(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Cols: 4, Rows: 2, MaxTransmitters: 6, Contexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetParticipants(0, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	net.Arrive(0, 0)
	net.Arrive(1, 0)
	if err := net.ResetContext(0); err != nil {
		t.Fatal(err)
	}
	if net.BarRegSet(0, 0) || net.BarRegSet(1, 0) {
		t.Fatalf("bar_regs survived reset")
	}
	// The context must accept the same arrivals again and complete with the
	// restricted participant set.
	released := map[int]bool{}
	net.OnRelease(nil, func(core int) { released[core] = true })
	for _, c := range []int{0, 1, 2} {
		net.Arrive(c, 0)
	}
	for cycle := uint64(1); cycle < 50 && len(released) < 3; cycle++ {
		net.Tick(cycle)
	}
	if len(released) != 3 {
		t.Fatalf("released %v after reset, want cores 0-2", released)
	}
}

// countingObserver tallies guard events for assertions, via the same
// GuardObserver interface the chaos oracles use.
type countingObserver struct {
	suppressed, retries, fallbacks, episodes int
}

func (o *countingObserver) GuardSuppressed(ctx, core int, cycle uint64) { o.suppressed++ }
func (o *countingObserver) GuardRetry(ctx, attempt int, cycle uint64)   { o.retries++ }
func (o *countingObserver) GuardFallback(ctx int, cycle uint64, sticky bool) {
	o.fallbacks++
}
func (o *countingObserver) GuardEpisode(ctx int, opened, closed uint64, retries int, viaFallback bool) {
	o.episodes++
}

func TestRecoveringFallbackDuringStragglerDrain(t *testing.T) {
	// Drop row 0's horizontal release line (id 1) persistently: the dance
	// completes and the vertical release reaches the row masters, but row
	// 0's slaves (cores 1-3) never hear their horizontal release. The
	// episode wedges mid-drain — some cores already running, stragglers
	// still blocked — and the guard must finish exactly the stragglers in
	// software (the rig fatals if an already-released core is released
	// again), without burning hardware retries on a completed dance.
	plan := &fault.Plan{
		Seed:     1,
		Events:   []fault.Event{{Site: fault.GLDrop, From: 0, Until: 1 << 40, Loc: 1}},
		Recovery: fault.Recovery{Timeout: 100, MaxRetries: 3, FallbackPenalty: 10, StickyAfter: -1},
	}
	rig := newGuardRig(t, plan)
	obs := &countingObserver{}
	rig.guard.SetObserver(obs)
	if !rig.runEpisode(uniformArrivals(5), 20000) {
		t.Fatalf("episode did not complete")
	}
	if rig.guard.Retries() != 0 {
		t.Fatalf("retries = %d, want 0: a wedged drain must go straight to fallback", rig.guard.Retries())
	}
	if rig.guard.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", rig.guard.Fallbacks())
	}
	if rig.guard.Episodes() != 1 {
		t.Fatalf("episodes = %d, want 1", rig.guard.Episodes())
	}
	// The hardware-released cores ran at dance speed; the stragglers were
	// held until the deadline (all-arrived + 100) plus the penalty.
	late := 0
	for core, at := range rig.releasedAt {
		if at > 100 {
			late++
			if core != 1 && core != 2 && core != 3 {
				t.Fatalf("core %d (not a row-0 slave) released late at cycle %d", core, at)
			}
		}
	}
	if late != 3 {
		t.Fatalf("%d cores released by the fallback, want the 3 row-0 slaves", late)
	}
	if obs.fallbacks != 1 || obs.episodes != 1 {
		t.Fatalf("observer saw fallbacks=%d episodes=%d, want 1/1", obs.fallbacks, obs.episodes)
	}
}

func TestRecoveringSpuriousReleaseRacingLegitimateRelease(t *testing.T) {
	// Spuriously assert the vertical release line (id 5) across the exact
	// cycles the legitimate global release fires: every receiver sees both
	// the real pulse and the phantom one. The guard must deliver exactly
	// one release per core (the rig fatals on duplicates), suppress the
	// extras, and leave the context clean enough that the next episode
	// completes at hardware speed.
	plan := &fault.Plan{
		Seed:     1,
		Events:   []fault.Event{{Site: fault.GLSpurious, From: 6, Until: 14, Loc: 5}},
		Recovery: fault.Recovery{Timeout: 100, MaxRetries: 4},
	}
	rig := newGuardRig(t, plan)
	obs := &countingObserver{}
	rig.guard.SetObserver(obs)
	if !rig.runEpisode(uniformArrivals(5), 5000) {
		t.Fatalf("episode did not complete")
	}
	if rig.guard.Episodes() != 1 {
		t.Fatalf("episodes = %d, want 1", rig.guard.Episodes())
	}
	// A second, fault-free episode must not inherit stale release state.
	second := rig.cycle + 5
	if !rig.runEpisode(uniformArrivals(second), 5000) {
		t.Fatalf("follow-up episode did not complete")
	}
	if rig.guard.Episodes() != 2 {
		t.Fatalf("episodes = %d, want 2", rig.guard.Episodes())
	}
	for core, at := range rig.releasedAt {
		if at < second || at > second+30 {
			t.Fatalf("core %d released at cycle %d, outside the clean episode's window [%d,%d]",
				core, at, second, second+30)
		}
	}
	if rig.guard.Fallbacks() != 0 {
		t.Fatalf("fallbacks = %d, want 0", rig.guard.Fallbacks())
	}
}

func TestRecoveringBackToBackEpisodeRetries(t *testing.T) {
	// Two consecutive episodes, each wedged by its own arrival-line drop
	// window that outlives the first attempt but not the first retry. Both
	// must recover with exactly one retry each — proving the retry counter
	// and the backoff deadline re-arm freshly at every episode boundary
	// instead of leaking doubled timeouts or exhausted budgets forward.
	plan := &fault.Plan{
		Seed: 1,
		Events: []fault.Event{
			{Site: fault.GLDrop, From: 0, Until: 60, Loc: 0},
			{Site: fault.GLDrop, From: 390, Until: 460, Loc: 0},
		},
		Recovery: fault.Recovery{Timeout: 100, MaxRetries: 4},
	}
	rig := newGuardRig(t, plan)
	obs := &countingObserver{}
	rig.guard.SetObserver(obs)
	if !rig.runEpisode(uniformArrivals(5), 5000) {
		t.Fatalf("episode 1 did not complete")
	}
	if rig.guard.Retries() != 1 {
		t.Fatalf("episode 1 retries = %d, want 1", rig.guard.Retries())
	}
	if !rig.runEpisode(uniformArrivals(400), 5000) {
		t.Fatalf("episode 2 did not complete")
	}
	if rig.guard.Retries() != 2 {
		t.Fatalf("total retries = %d, want 2 (one per episode)", rig.guard.Retries())
	}
	if rig.guard.Fallbacks() != 0 {
		t.Fatalf("fallbacks = %d, want 0", rig.guard.Fallbacks())
	}
	if rig.guard.Episodes() != 2 {
		t.Fatalf("episodes = %d, want 2", rig.guard.Episodes())
	}
	// Episode 2's deadline must be armed from its own arrival with the
	// un-backed-off timeout: all arrive at 400, deadline ~500, retry and
	// release shortly after. A leaked backoff (timeout<<1) would push the
	// release past cycle 600.
	for core, at := range rig.releasedAt {
		if at < 500 || at > 560 {
			t.Fatalf("core %d released at cycle %d, want the first-retry window [500,560]", core, at)
		}
	}
	if obs.retries != 2 || obs.episodes != 2 {
		t.Fatalf("observer saw retries=%d episodes=%d, want 2/2", obs.retries, obs.episodes)
	}
}
