// Package config defines the configuration of the simulated tiled CMP.
//
// The defaults reproduce Table 1 of the paper: a 32-core CMP with in-order
// 2-way cores, 32 KB 4-way L1 caches, a shared distributed L2 of 256 KB per
// core with 6+2-cycle access, a 400-cycle memory, and a 2D-mesh network.
package config

import (
	"fmt"

	"repro/internal/fault"
)

// Config holds every tunable parameter of the simulated system.
type Config struct {
	// Cores is the number of tiles; it must equal MeshCols*MeshRows.
	Cores int
	// MeshCols and MeshRows give the 2D-mesh geometry.
	MeshCols, MeshRows int
	// IssueWidth is the in-order issue width of each core (Table 1: 2-way).
	IssueWidth int
	// ClockGHz is only used for reporting; all simulation is in cycles.
	ClockGHz float64

	// LineSize is the cache line size in bytes (Table 1: 64).
	LineSize int
	// L1Size and L1Ways configure the private L1 data cache (32 KB, 4-way).
	L1Size, L1Ways int
	// L1HitLatency is the L1 access time in cycles (Table 1: 1).
	L1HitLatency uint64
	// L2SizePerCore and L2Ways configure each shared L2 bank (256 KB, 4-way).
	L2SizePerCore, L2Ways int
	// L2TagLatency and L2DataLatency model the 6+2-cycle L2 access.
	L2TagLatency, L2DataLatency uint64
	// MemLatency is the off-chip memory access time (Table 1: 400).
	MemLatency uint64

	// FlitBytes is the width of one flit; a data message carries a line.
	FlitBytes int
	// RouterLatency is the per-hop router pipeline delay in cycles
	// (2008-2010 era mesh routers are 3-4 stage pipelines; the EVC work
	// the paper builds on assumes similar baselines).
	RouterLatency uint64
	// LinkLatency is the per-hop wire delay in cycles.
	LinkLatency uint64

	// GLMaxTransmitters is the electrical limit of transmitters per G-line
	// (the paper, following Krishna et al., assumes 6, capping a flat
	// network at 7x7 cores).
	GLMaxTransmitters int
	// GLCallOverhead models the software cost of entering/leaving the
	// barrier library. The paper measures 13 cycles per barrier instead of
	// the ideal 4; the difference (9 cycles) is this overhead.
	GLCallOverhead uint64
	// GLContexts is the number of independent barrier contexts the G-line
	// network supports (space multiplexing; 1 reproduces the paper).
	GLContexts int

	// ThreeHopOwnership enables direct owner-to-requester data transfer on
	// ownership changes (SGI-Origin-style 3-hop) instead of relaying the
	// line through the home bank (4-hop, the calibrated default).
	ThreeHopOwnership bool

	// WorkloadSeed perturbs the deterministic generators that build the
	// randomized benchmark inputs (EM3D's bipartite graph, UNSTRUCTURED's
	// mesh): each benchmark combines it with its own fixed base seed. Zero —
	// the default — reproduces the published inputs bit-identically; any
	// other value yields a different but equally deterministic instance, for
	// input-sensitivity studies.
	WorkloadSeed int64

	// Faults, when non-nil, enables deterministic fault injection driven by
	// the plan's seed and schedule, and (unless the plan disables it) wraps
	// the G-line network in the recovering barrier protocol. Nil runs are
	// bit-identical to builds without the fault subsystem.
	Faults *fault.Plan
}

// Default32 returns the paper's Table 1 baseline: a 32-core, 8x4-mesh CMP.
func Default32() Config {
	c := Default(32)
	return c
}

// Default returns a Table 1 configuration scaled to n cores. n must have an
// integer 2D factorization; Default picks the squarest mesh with cols>=rows.
func Default(n int) Config {
	cols, rows := SquarestMesh(n)
	return Config{
		Cores:             n,
		MeshCols:          cols,
		MeshRows:          rows,
		IssueWidth:        2,
		ClockGHz:          3.0,
		LineSize:          64,
		L1Size:            32 * 1024,
		L1Ways:            4,
		L1HitLatency:      1,
		L2SizePerCore:     256 * 1024,
		L2Ways:            4,
		L2TagLatency:      6,
		L2DataLatency:     2,
		MemLatency:        400,
		FlitBytes:         8,
		RouterLatency:     3,
		LinkLatency:       1,
		GLMaxTransmitters: 6,
		GLCallOverhead:    9,
		GLContexts:        1,
	}
}

// SquarestMesh returns the factorization cols*rows = n with cols >= rows and
// cols-rows minimal. For primes this degenerates to n x 1.
func SquarestMesh(n int) (cols, rows int) {
	if n <= 0 {
		return 0, 0
	}
	rows = 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return n / rows, rows
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("config: Cores must be positive, got %d", c.Cores)
	}
	if c.MeshCols*c.MeshRows != c.Cores {
		return fmt.Errorf("config: mesh %dx%d does not cover %d cores", c.MeshCols, c.MeshRows, c.Cores)
	}
	if c.Cores > 64 {
		return fmt.Errorf("config: at most 64 cores supported (directory sharer bitset), got %d", c.Cores)
	}
	if c.IssueWidth <= 0 {
		return fmt.Errorf("config: IssueWidth must be positive, got %d", c.IssueWidth)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("config: LineSize must be a positive power of two, got %d", c.LineSize)
	}
	for _, p := range []struct {
		name       string
		size, ways int
	}{{"L1", c.L1Size, c.L1Ways}, {"L2", c.L2SizePerCore, c.L2Ways}} {
		if p.size <= 0 || p.ways <= 0 {
			return fmt.Errorf("config: %s size/ways must be positive", p.name)
		}
		if p.size%(p.ways*c.LineSize) != 0 {
			return fmt.Errorf("config: %s size %d not divisible by ways*line (%d*%d)", p.name, p.size, p.ways, c.LineSize)
		}
		sets := p.size / (p.ways * c.LineSize)
		if sets&(sets-1) != 0 {
			return fmt.Errorf("config: %s set count %d must be a power of two", p.name, sets)
		}
	}
	if c.FlitBytes <= 0 || c.LineSize%c.FlitBytes != 0 {
		return fmt.Errorf("config: FlitBytes %d must be positive and divide LineSize %d", c.FlitBytes, c.LineSize)
	}
	if c.GLMaxTransmitters < 1 {
		return fmt.Errorf("config: GLMaxTransmitters must be >=1, got %d", c.GLMaxTransmitters)
	}
	if c.GLContexts < 0 {
		return fmt.Errorf("config: GLContexts must be >=0, got %d", c.GLContexts)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DataFlits returns the number of flits in a message carrying one cache line
// plus one header flit.
func (c Config) DataFlits() int { return 1 + c.LineSize/c.FlitBytes }

// NodeOf returns the mesh coordinates of a core.
func (c Config) NodeOf(core int) (col, row int) {
	return core % c.MeshCols, core / c.MeshCols
}

// CoreAt returns the core index at mesh coordinates (col,row).
func (c Config) CoreAt(col, row int) int { return row*c.MeshCols + col }

// GLLinesPerBarrier returns the number of G-lines one barrier context needs:
// two per row plus two for the first column (paper Section 3.1).
func (c Config) GLLinesPerBarrier() int { return 2 * (c.MeshRows + 1) }

// GLFitsFlat reports whether a single flat G-line network can span this mesh
// given the per-line transmitter limit (paper: up to 7x7 with 6 transmitters).
func (c Config) GLFitsFlat() bool {
	return c.MeshCols-1 <= c.GLMaxTransmitters && c.MeshRows-1 <= c.GLMaxTransmitters
}
