package config

import (
	"testing"
	"testing/quick"
)

func TestDefault32MatchesTable1(t *testing.T) {
	c := Default32()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"Cores", c.Cores, 32},
		{"IssueWidth", c.IssueWidth, 2},
		{"ClockGHz", c.ClockGHz, 3.0},
		{"LineSize", c.LineSize, 64},
		{"L1Size", c.L1Size, 32 * 1024},
		{"L1Ways", c.L1Ways, 4},
		{"L1HitLatency", c.L1HitLatency, uint64(1)},
		{"L2SizePerCore", c.L2SizePerCore, 256 * 1024},
		{"L2Ways", c.L2Ways, 4},
		{"L2TagLatency", c.L2TagLatency, uint64(6)},
		{"L2DataLatency", c.L2DataLatency, uint64(2)},
		{"MemLatency", c.MemLatency, uint64(400)},
		{"GLMaxTransmitters", c.GLMaxTransmitters, 6},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %v, want %v (Table 1)", ck.name, ck.got, ck.want)
		}
	}
	if c.MeshCols*c.MeshRows != 32 {
		t.Errorf("mesh %dx%d does not cover 32 cores", c.MeshCols, c.MeshRows)
	}
}

func TestSquarestMesh(t *testing.T) {
	cases := []struct{ n, cols, rows int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4},
		{32, 8, 4}, {36, 6, 6}, {48, 8, 6}, {64, 8, 8}, {7, 7, 1},
	}
	for _, c := range cases {
		cols, rows := SquarestMesh(c.n)
		if cols != c.cols || rows != c.rows {
			t.Errorf("SquarestMesh(%d) = %dx%d, want %dx%d", c.n, cols, rows, c.cols, c.rows)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 65; c.MeshCols = 65; c.MeshRows = 1 },
		func(c *Config) { c.MeshCols = 3 },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.LineSize = 48 },
		func(c *Config) { c.L1Size = 0 },
		func(c *Config) { c.L1Size = 3 * 1024 }, // 12 sets: not a power of two
		func(c *Config) { c.FlitBytes = 7 },
		func(c *Config) { c.GLMaxTransmitters = 0 },
		func(c *Config) { c.GLContexts = -1 },
	}
	for i, mutate := range bad {
		c := Default32()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGLGeometry(t *testing.T) {
	c := Default32() // 8x4
	if got := c.GLLinesPerBarrier(); got != 2*(4+1) {
		t.Errorf("GLLinesPerBarrier = %d, want 10", got)
	}
	if c.GLFitsFlat() {
		t.Error("8x4 mesh should exceed the 6-transmitter flat limit (7 slaves per row)")
	}
	c16 := Default(16) // 4x4
	if !c16.GLFitsFlat() {
		t.Error("4x4 mesh should fit a flat network")
	}
	// The paper's example: 16-core CMP needs 10 G-lines per barrier.
	if got := c16.GLLinesPerBarrier(); got != 10 {
		t.Errorf("16-core GLLinesPerBarrier = %d, want 10 (paper Figure 1)", got)
	}
}

func TestNodeCoordsRoundTrip(t *testing.T) {
	f := func(nRaw uint8, coreRaw uint16) bool {
		n := int(nRaw%64) + 1
		c := Default(n)
		core := int(coreRaw) % n
		col, row := c.NodeOf(core)
		return c.CoreAt(col, row) == core && col < c.MeshCols && row < c.MeshRows
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataFlits(t *testing.T) {
	c := Default32()
	if got := c.DataFlits(); got != 9 {
		t.Errorf("DataFlits = %d, want 9 (header + 64B/8B)", got)
	}
}
