package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/fault"
)

// runBarriers runs `episodes` barrier episodes of the given kind on an
// n-core system and returns the report.
func runBarriers(t *testing.T, n, episodes int, kind barrier.Kind) *Report {
	t.Helper()
	s := newTestSystem(t, n)
	b, err := s.NewBarrier(kind, n)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]cpu.Program, n)
	for i := range progs {
		tid := i
		progs[i] = func(c *cpu.Ctx) {
			for e := 0; e < episodes; e++ {
				c.Compute(uint64(tid * 3)) // skewed arrivals
				b.Wait(c, tid)
			}
		}
	}
	if err := s.Launch(progs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestGLEpisodeHistograms(t *testing.T) {
	rep := runBarriers(t, 16, 5, barrier.KindGL)
	h, ok := rep.Metrics.Histograms["barrier.gl.latency"]
	if !ok {
		t.Fatal("no barrier.gl.latency histogram in report")
	}
	if h.Count != 5 {
		t.Errorf("latency samples = %d, want 5 (one per episode)", h.Count)
	}
	if h.Max == 0 {
		t.Error("episode latency must be nonzero (release takes cycles)")
	}
	skew, ok := rep.Metrics.Histograms["barrier.gl.skew"]
	if !ok {
		t.Fatal("no barrier.gl.skew histogram")
	}
	if skew.Count != 5 {
		t.Errorf("skew samples = %d, want 5", skew.Count)
	}
	// Arrivals are staggered by tid*3 compute, so skew must be visible.
	if skew.Max == 0 {
		t.Error("arrival skew should be nonzero for staggered arrivals")
	}
}

func TestGLEpisodeHistogramsHierarchical(t *testing.T) {
	// 32 cores forces the hierarchical network with staggered releases —
	// the case the meter's outstanding-drain logic exists for.
	rep := runBarriers(t, 32, 4, barrier.KindGL)
	h := rep.Metrics.Histograms["barrier.gl.latency"]
	if h.Count != 4 {
		t.Errorf("hierarchical latency samples = %d, want 4", h.Count)
	}
}

func TestSWEpisodeHistograms(t *testing.T) {
	for _, kind := range []barrier.Kind{barrier.KindCSW, barrier.KindDSW} {
		rep := runBarriers(t, 8, 3, kind)
		h, ok := rep.Metrics.Histograms["barrier.sw.latency"]
		if !ok {
			t.Fatalf("%s: no barrier.sw.latency histogram", kind)
		}
		if h.Count != 3 {
			t.Errorf("%s: latency samples = %d, want 3", kind, h.Count)
		}
		if h.Max == 0 {
			t.Errorf("%s: software release must cost cycles", kind)
		}
		if s := rep.Metrics.Histograms["barrier.sw.skew"]; s.Count != 3 {
			t.Errorf("%s: skew samples = %d, want 3", kind, s.Count)
		}
	}
}

func TestReportCarriesComponentMetrics(t *testing.T) {
	rep := runBarriers(t, 8, 3, barrier.KindCSW)
	if rep.Metrics.Counters["engine.events.executed"] == 0 {
		t.Error("engine event counter missing from merged snapshot")
	}
	if rep.Metrics.Counters["coh.dir.transitions"] == 0 {
		t.Error("directory transitions missing (a contended CSW barrier must transition)")
	}
	if rep.Metrics.Counters["coh.inv.sent"] == 0 {
		t.Error("invalidation counter missing (sense flips must invalidate spinners)")
	}
	if rep.NoC.Cols*rep.NoC.Rows != 8 {
		t.Errorf("NoC stats grid %dx%d, want 8 tiles", rep.NoC.Cols, rep.NoC.Rows)
	}
	var flits uint64
	for _, ports := range rep.NoC.LinkFlits {
		for _, f := range ports {
			flits += f
		}
	}
	if flits == 0 {
		t.Error("per-link flit counts all zero despite barrier traffic")
	}
}

func TestReportJSON(t *testing.T) {
	rep := runBarriers(t, 8, 2, barrier.KindGL)
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	for _, key := range []string{"cycles", "time_breakdown", "traffic", "metrics", "noc", "fingerprint"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("JSON missing key %q", key)
		}
	}
	if _, ok := doc["hang"]; ok {
		t.Error("clean run must not carry a hang dump")
	}
	// Percentiles must be reachable at the documented path.
	mets := doc["metrics"].(map[string]any)
	hists := mets["histograms"].(map[string]any)
	lat := hists["barrier.gl.latency"].(map[string]any)
	for _, q := range []string{"p50", "p95", "p99", "max"} {
		if _, ok := lat[q]; !ok {
			t.Errorf("latency histogram missing %q", q)
		}
	}
}

func TestWatchdogDumpOnBudgetExhaustion(t *testing.T) {
	s := newTestSystem(t, 4)
	s.AttachRing(64)
	b, err := s.NewBarrier(barrier.KindCSW, 4)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]cpu.Program, 4)
	for i := range progs {
		tid := i
		progs[i] = func(c *cpu.Ctx) {
			if tid == 3 {
				c.Compute(1 << 40) // never reaches the barrier
			}
			b.Wait(c, tid)
		}
	}
	if err := s.Launch(progs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(20_000)
	defer s.Close()
	if err == nil {
		t.Fatal("expected a cycle-budget error")
	}
	if rep == nil || rep.Hang == nil {
		t.Fatal("failed run must carry a hang dump")
	}
	d := rep.Hang
	if d.Cycle == 0 || d.Reason == "" {
		t.Errorf("dump incomplete: %+v", d)
	}
	if len(d.Cores) != 4 {
		t.Fatalf("dump has %d cores, want 4", len(d.Cores))
	}
	if d.PendingEvents == 0 || len(d.NextEvents) == 0 {
		t.Error("dump must summarize pending events (the 2^40 compute is queued)")
	}
	if len(d.Trace) == 0 {
		t.Error("dump must include the attached trace ring (CSW spins emit protocol events)")
	}
	text := d.String()
	for _, want := range []string{"watchdog dump", "reason:", "pending events:", "core "} {
		if !strings.Contains(text, want) {
			t.Errorf("dump text missing %q:\n%s", want, text)
		}
	}
}

// TestHangDumpIncludesGuardState wedges a guarded G-line barrier (all
// arrival assertions dropped, recovery timeout beyond the cycle budget) and
// checks the watchdog dump carries the guard's shadow state: without it a
// chaos-found hang is not diagnosable from the dump alone.
func TestHangDumpIncludesGuardState(t *testing.T) {
	cfg := config.Default(4)
	plan := &fault.Plan{Seed: 1, Recovery: fault.Recovery{Timeout: 1 << 30}}
	plan.Events = []fault.Event{{Site: fault.GLDrop, From: 0, Until: 1 << 40, Loc: -1}}
	cfg.Faults = plan
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.NewBarrier(barrier.KindGL, 4)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]cpu.Program, 4)
	for i := range progs {
		tid := i
		progs[i] = func(c *cpu.Ctx) { b.Wait(c, tid) }
	}
	if err := s.Launch(progs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(20_000)
	defer s.Close()
	if err == nil {
		t.Fatal("expected the wedged barrier to exhaust the budget")
	}
	if rep == nil || rep.Hang == nil {
		t.Fatal("failed run must carry a hang dump")
	}
	if len(rep.Hang.Guard) == 0 {
		t.Fatal("hang dump is missing the recovery guard state")
	}
	g := rep.Hang.Guard[0]
	if g.Arrived != 4 || g.Expected != 4 {
		t.Errorf("guard arrived=%d/%d, want 4/4", g.Arrived, g.Expected)
	}
	if g.Released != 0 || g.Deadline == 0 {
		t.Errorf("guard released=%d deadline=%d, want 0 released and an armed deadline", g.Released, g.Deadline)
	}
	text := rep.Hang.String()
	if !strings.Contains(text, "guard ctx 0:") || !strings.Contains(text, "arrived=4/4") {
		t.Errorf("dump text missing guard line:\n%s", text)
	}
}
