package sim

import (
	"runtime/debug"
	"sync"
)

// Provenance identifies the build that produced a report: Go toolchain,
// module version and VCS state, read once per process from the binary's
// embedded build info. Exported reports and timeline artifacts carry it so
// a saved JSON can always be traced back to the code that generated it.
type Provenance struct {
	GoVersion     string `json:"go_version"`
	Module        string `json:"module,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	VCSRevision   string `json:"vcs_revision,omitempty"`
	VCSTime       string `json:"vcs_time,omitempty"`
	VCSModified   bool   `json:"vcs_modified,omitempty"`
}

var (
	provOnce sync.Once
	provVal  Provenance
)

// BuildProvenance returns the current binary's provenance. `go test` and
// `go run` binaries outside a module checkout carry no VCS stamps; the
// fields stay empty then.
func BuildProvenance() Provenance {
	provOnce.Do(func() {
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		provVal.GoVersion = info.GoVersion
		provVal.Module = info.Main.Path
		provVal.ModuleVersion = info.Main.Version
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				provVal.VCSRevision = s.Value
			case "vcs.time":
				provVal.VCSTime = s.Value
			case "vcs.modified":
				provVal.VCSModified = s.Value == "true"
			}
		}
	})
	return provVal
}

// configEcho is the snake_case JSON echo of the resolved config.Config a
// run used. An explicit mirror rather than tags on Config itself, so the
// exported shape is a deliberate contract.
type configEcho struct {
	Cores             int     `json:"cores"`
	MeshCols          int     `json:"mesh_cols"`
	MeshRows          int     `json:"mesh_rows"`
	IssueWidth        int     `json:"issue_width"`
	ClockGHz          float64 `json:"clock_ghz"`
	LineSize          int     `json:"line_size"`
	L1Size            int     `json:"l1_size"`
	L1Ways            int     `json:"l1_ways"`
	L1HitLatency      uint64  `json:"l1_hit_latency"`
	L2SizePerCore     int     `json:"l2_size_per_core"`
	L2Ways            int     `json:"l2_ways"`
	L2TagLatency      uint64  `json:"l2_tag_latency"`
	L2DataLatency     uint64  `json:"l2_data_latency"`
	MemLatency        uint64  `json:"mem_latency"`
	FlitBytes         int     `json:"flit_bytes"`
	RouterLatency     uint64  `json:"router_latency"`
	LinkLatency       uint64  `json:"link_latency"`
	GLMaxTransmitters int     `json:"gl_max_transmitters"`
	GLCallOverhead    uint64  `json:"gl_call_overhead"`
	GLContexts        int     `json:"gl_contexts"`
	ThreeHopOwnership bool    `json:"three_hop_ownership,omitempty"`
	WorkloadSeed      int64   `json:"workload_seed,omitempty"`
	// FaultPlan is the plan in fault.ParsePlan syntax. Named fault_plan
	// (not faults) so decoding a report back into a struct that embeds
	// config.Config never tries to parse the string into a fault.Plan.
	FaultPlan string `json:"fault_plan,omitempty"`
}

func echoConfig(r *Report) *configEcho {
	c := r.Config
	if c.Cores == 0 {
		// Zero-value Config: the report predates config echoing (or was
		// built by hand in a test); omit the block rather than echo noise.
		return nil
	}
	e := &configEcho{
		Cores:             c.Cores,
		MeshCols:          c.MeshCols,
		MeshRows:          c.MeshRows,
		IssueWidth:        c.IssueWidth,
		ClockGHz:          c.ClockGHz,
		LineSize:          c.LineSize,
		L1Size:            c.L1Size,
		L1Ways:            c.L1Ways,
		L1HitLatency:      c.L1HitLatency,
		L2SizePerCore:     c.L2SizePerCore,
		L2Ways:            c.L2Ways,
		L2TagLatency:      c.L2TagLatency,
		L2DataLatency:     c.L2DataLatency,
		MemLatency:        c.MemLatency,
		FlitBytes:         c.FlitBytes,
		RouterLatency:     c.RouterLatency,
		LinkLatency:       c.LinkLatency,
		GLMaxTransmitters: c.GLMaxTransmitters,
		GLCallOverhead:    c.GLCallOverhead,
		GLContexts:        c.GLContexts,
		ThreeHopOwnership: c.ThreeHopOwnership,
		WorkloadSeed:      c.WorkloadSeed,
	}
	if c.Faults != nil {
		e.FaultPlan = c.Faults.String()
	}
	return e
}
