package sim

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/stats"
)

func TestFingerprintStableAndSensitive(t *testing.T) {
	base := func() *Report {
		r := &Report{Cycles: 1000, BarrierEpisodes: 40}
		r.Breakdown.Add(stats.RegionBusy, 700)
		r.Breakdown.Add(stats.RegionBarrier, 300)
		r.PerCore = []stats.TimeBreakdown{{500, 0, 0, 0, 100}, {200, 0, 0, 0, 200}}
		r.Traffic.Add(stats.ClassRequest, 5)
		r.Traffic.Add(stats.ClassReply, 9)
		return r
	}

	fp := base().Fingerprint()
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q: want 16 hex digits", fp)
	}
	if again := base().Fingerprint(); again != fp {
		t.Errorf("identical reports fingerprint differently: %s vs %s", fp, again)
	}

	// Every hashed dimension must perturb the fingerprint.
	mutations := map[string]func(*Report){
		"cycles":    func(r *Report) { r.Cycles++ },
		"episodes":  func(r *Report) { r.BarrierEpisodes++ },
		"breakdown": func(r *Report) { r.Breakdown.Add(stats.RegionLock, 1) },
		"per-core":  func(r *Report) { r.PerCore[1].Add(stats.RegionRead, 1) },
		"messages":  func(r *Report) { r.Traffic.Add(stats.ClassCoherence, 0) },
		"flits":     func(r *Report) { r.Traffic.Flits[stats.ClassReply]++ },
	}
	for name, mutate := range mutations {
		r := base()
		mutate(r)
		if got := r.Fingerprint(); got == fp {
			t.Errorf("%s mutation did not change the fingerprint", name)
		}
	}

	// Non-hashed derived fields (cache stats, energy) must not matter:
	// they are functions of the hashed counters.
	r := base()
	r.L1Hits = 99999
	if got := r.Fingerprint(); got != fp {
		t.Errorf("L1 stats changed the fingerprint: %s vs %s", got, fp)
	}
}

// TestFingerprintFreshSystemsAgree runs the same tiny program on two fresh
// systems and requires identical fingerprints end-to-end.
func TestFingerprintFreshSystemsAgree(t *testing.T) {
	run := func() string {
		s := newTestSystem(t, 16)
		progs := make([]cpu.Program, 16)
		for i := range progs {
			progs[i] = func(c *cpu.Ctx) {
				c.Work(10)
				c.GLBarrier(0)
				c.Store(uint64(0x1000_0000 + 64*c.CoreID()))
				c.GLBarrier(0)
			}
		}
		if err := s.Launch(progs); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Fingerprint()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("fresh identical systems fingerprint differently: %s vs %s", a, b)
	}
}
