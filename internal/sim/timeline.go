package sim

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// Timeline span names on the barrier tracks. Each completed G-line episode
// renders as one spanEpisode with nested phase spans whose durations sum
// exactly to the episode span; arrivals and guard recovery events are
// instants.
const (
	spanEpisode       = "barrier.episode"
	spanArrive        = "barrier.arrive"
	spanPhaseArrive   = "barrier.phase.arrive"
	spanPhaseRetry    = "barrier.phase.retry"
	spanPhaseGather   = "barrier.phase.gather"
	spanPhaseRelease  = "barrier.phase.release"
	spanPhaseFallback = "barrier.phase.fallback"
	spanGLSuppress    = "gl.suppress"
	spanGLRetry       = "gl.retry"
	spanGLFallback    = "gl.fallback"
)

// EpisodeAttribution breaks one G-line barrier episode's cycles down by
// phase. All phases are disjoint intervals covering [Start, End]:
//
//	ArriveWait  first arrival -> last arrival (stragglers),
//	Retry       last arrival -> last guard retry (timeout/backoff rounds),
//	Gather      retry end -> protocol completion at the vertical master,
//	Release     completion -> first core release (release propagation),
//	Fallback    cycles spent in the software fallback path instead of
//	            gather+release, when the guard gave up on the wires.
//
// Latency (= End - last arrival = Retry+Gather+Release+Fallback) matches
// the barrier.gl.latency histogram sample of the same episode exactly.
type EpisodeAttribution struct {
	Ctx         int    `json:"ctx"`
	Episode     uint64 `json:"episode"`
	Start       uint64 `json:"start"`
	End         uint64 `json:"end"`
	ArriveWait  uint64 `json:"arrive_wait"`
	Gather      uint64 `json:"gather"`
	Release     uint64 `json:"release"`
	Retry       uint64 `json:"retry_backoff"`
	Fallback    uint64 `json:"fallback"`
	Latency     uint64 `json:"latency"`
	Retries     int    `json:"retries,omitempty"`
	ViaFallback bool   `json:"via_fallback,omitempty"`
}

// ctxScratch accumulates one context's in-flight episode marks between
// arrivals and the closing release.
type ctxScratch struct {
	ordinal      uint64 // completed episodes, 1-based after close
	lastRetry    uint64 // cycle of the latest guard retry, 0 if none
	fallbackAt   uint64 // cycle the guard fell back, 0 if none
	lastComplete uint64 // cycle the hardware protocol completed, 0 if none
	retries      int
}

// tlCollector turns barrier metering events (arrivals and first releases
// from the glMeter, completions from the network's episode probe, recovery
// events from the guard) into barrier-track timeline spans and the
// per-episode attribution table. It implements core.GuardObserver and
// forwards every guard event to fwd, so chaos oracles keep observing when a
// timeline is attached.
type tlCollector struct {
	tl       *trace.Timeline
	scratch  map[int]*ctxScratch
	episodes []EpisodeAttribution
	fwd      core.GuardObserver
}

func newTLCollector(tl *trace.Timeline) *tlCollector {
	return &tlCollector{tl: tl, scratch: make(map[int]*ctxScratch)}
}

func (c *tlCollector) ctx(id int) *ctxScratch {
	s := c.scratch[id]
	if s == nil {
		s = &ctxScratch{}
		c.scratch[id] = s
	}
	return s
}

// arrive records one core's arrival (glMeter.Arrive hook).
func (c *tlCollector) arrive(ctx, coreID int, cycle uint64) {
	s := c.ctx(ctx)
	c.tl.Instant(trace.BarrierTrack(ctx), spanArrive, cycle, s.ordinal+1, uint64(coreID))
}

// complete records the hardware protocol's completion cycle (the network's
// episode probe).
func (c *tlCollector) complete(ctx int, cycle uint64) {
	c.ctx(ctx).lastComplete = cycle
}

func clamp(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// close attributes one finished episode: first/last are the meter's first
// and last arrival cycles, end the first-release cycle that closed the
// episode. Called by glMeter.release exactly when it samples the latency
// histogram, so Latency reconciles with barrier.gl.latency by construction.
func (c *tlCollector) close(ctx int, first, last, end uint64) {
	s := c.ctx(ctx)
	s.ordinal++

	a := EpisodeAttribution{
		Ctx:         ctx,
		Episode:     s.ordinal,
		Start:       first,
		End:         end,
		Retries:     s.retries,
		ViaFallback: s.fallbackAt != 0,
	}
	arriveEnd := clamp(last, first, end)
	a.ArriveWait = arriveEnd - first
	a.Latency = end - arriveEnd
	if a.ViaFallback {
		// The guard abandoned the wires: retry rounds up to the fallback
		// decision, then the software fallback path carries the episode to
		// the release. No hardware gather/release phases to attribute.
		retryEnd := clamp(s.fallbackAt, arriveEnd, end)
		a.Retry = retryEnd - arriveEnd
		a.Fallback = end - retryEnd
	} else {
		retryEnd := arriveEnd
		if s.lastRetry != 0 {
			retryEnd = clamp(s.lastRetry, arriveEnd, end)
		}
		gatherEnd := end
		if s.lastComplete != 0 {
			gatherEnd = clamp(s.lastComplete, retryEnd, end)
		}
		a.Retry = retryEnd - arriveEnd
		a.Gather = gatherEnd - retryEnd
		a.Release = end - gatherEnd
	}

	tr := trace.BarrierTrack(ctx)
	c.tl.Span(tr, spanEpisode, first, end, s.ordinal, uint64(s.retries))
	cursor := first
	phase := func(name string, d uint64) {
		if d > 0 {
			//lint:allow spanname forwards the spanPhase* consts passed below
			c.tl.Span(tr, name, cursor, cursor+d, s.ordinal, 0)
		}
		cursor += d
	}
	phase(spanPhaseArrive, a.ArriveWait)
	phase(spanPhaseRetry, a.Retry)
	phase(spanPhaseGather, a.Gather)
	phase(spanPhaseRelease, a.Release)
	phase(spanPhaseFallback, a.Fallback)

	c.episodes = append(c.episodes, a)
	s.lastRetry, s.fallbackAt, s.lastComplete, s.retries = 0, 0, 0, 0
}

// GuardSuppressed implements core.GuardObserver: a spurious hardware
// release was filtered; arg carries the core it targeted.
func (c *tlCollector) GuardSuppressed(ctx, coreID int, cycle uint64) {
	s := c.ctx(ctx)
	c.tl.Instant(trace.BarrierTrack(ctx), spanGLSuppress, cycle, s.ordinal+1, uint64(coreID))
	if c.fwd != nil {
		c.fwd.GuardSuppressed(ctx, coreID, cycle)
	}
}

// GuardRetry implements core.GuardObserver: the guard reset the wedged
// context and replayed arrivals; arg carries the attempt number.
func (c *tlCollector) GuardRetry(ctx, attempt int, cycle uint64) {
	s := c.ctx(ctx)
	s.lastRetry = cycle
	s.retries = attempt
	c.tl.Instant(trace.BarrierTrack(ctx), spanGLRetry, cycle, s.ordinal+1, uint64(attempt))
	if c.fwd != nil {
		c.fwd.GuardRetry(ctx, attempt, cycle)
	}
}

// GuardFallback implements core.GuardObserver: the guard abandoned the
// wires for the software fallback; arg is 1 when the fallback is sticky.
func (c *tlCollector) GuardFallback(ctx int, cycle uint64, sticky bool) {
	s := c.ctx(ctx)
	s.fallbackAt = cycle
	var arg uint64
	if sticky {
		arg = 1
	}
	c.tl.Instant(trace.BarrierTrack(ctx), spanGLFallback, cycle, s.ordinal+1, arg)
	if c.fwd != nil {
		c.fwd.GuardFallback(ctx, cycle, sticky)
	}
}

// GuardEpisode implements core.GuardObserver; the collector closes episodes
// on the metering path instead, so this only forwards.
func (c *tlCollector) GuardEpisode(ctx int, opened, closed uint64, retries int, viaFallback bool) {
	if c.fwd != nil {
		c.fwd.GuardEpisode(ctx, opened, closed, retries, viaFallback)
	}
}

// AttachTimeline installs a span timeline of the given capacity across the
// whole system — engine fast-forwards, coherence transactions, NoC port
// occupancy, CPU op handshakes, G-line pulses and barrier episodes — and
// returns it. Must be called before Launch. Observation only: simulated
// timing and fingerprints are unchanged.
func (s *System) AttachTimeline(capacity int) *trace.Timeline {
	tl := trace.NewTimeline(capacity)
	s.tl = tl
	s.tlc = newTLCollector(tl)
	s.Eng.SetTimeline(tl)
	s.Prot.SetTimeline(tl)
	for _, c := range s.Cores {
		c.SetTimeline(tl)
	}
	if s.glm != nil {
		s.glm.tlc = s.tlc
	}
	s.wireGLTimeline()
	s.installGuardObs()
	return tl
}

// wireGLTimeline attaches the timeline and episode probe to the concrete
// G-line network, looking through the recovering guard if present.
func (s *System) wireGLTimeline() {
	if s.tl == nil || s.GL == nil {
		return
	}
	gl := s.GL
	if guard, ok := gl.(*core.Recovering); ok {
		gl = guard.Unwrap()
	}
	probe := func(ctx int, cycle uint64) {
		if s.tlc != nil {
			s.tlc.complete(ctx, cycle)
		}
	}
	switch g := gl.(type) {
	case *core.Network:
		g.SetTimeline(s.tl)
		g.SetEpisodeProbe(probe)
	case *core.Hierarchical:
		g.SetTimeline(s.tl)
		g.SetEpisodeProbe(probe)
	}
}

// installGuardObs points the recovering guard's observer at the timeline
// collector (which forwards to any user observer) or, with no timeline, at
// the user observer directly.
func (s *System) installGuardObs() {
	guard, ok := s.GL.(*core.Recovering)
	if !ok {
		return
	}
	if s.tlc != nil {
		s.tlc.fwd = s.guardObs
		guard.SetObserver(s.tlc)
	} else if s.guardObs != nil {
		guard.SetObserver(s.guardObs)
	}
}
