package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Fingerprint returns a stable 64-bit hash (16 hex digits) over the
// determinism-relevant outputs of a run: the final cycle, the aggregate
// and per-core time breakdowns, the traffic counters and the barrier
// episode count. Two runs of the same workload on identically configured
// fresh systems must produce identical fingerprints — the simulator is a
// pure function of its inputs — so fingerprints detect both accidental
// nondeterminism (e.g. after parallelizing a sweep) and unintended
// behavioral changes against committed goldens.
func (r *Report) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(r.Cycles)
	word(r.BarrierEpisodes)
	for _, v := range r.Breakdown {
		word(v)
	}
	word(uint64(len(r.PerCore)))
	for _, bd := range r.PerCore {
		for _, v := range bd {
			word(v)
		}
	}
	for _, v := range r.Traffic.Messages {
		word(v)
	}
	for _, v := range r.Traffic.Flits {
		word(v)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
