package sim

import (
	"strings"
	"testing"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stats"
)

func TestHierarchicalAutoSelection(t *testing.T) {
	// 32 cores = 8x4: exceeds the 6-transmitter flat limit, so New must
	// build a hierarchical network transparently.
	s := newTestSystem(t, 32)
	if _, ok := s.GL.(*core.Hierarchical); !ok {
		t.Fatalf("expected hierarchical network for 8x4 mesh, got %T", s.GL)
	}
	// 16 cores = 4x4: flat.
	s16 := newTestSystem(t, 16)
	if _, ok := s16.GL.(*core.Network); !ok {
		t.Fatalf("expected flat network for 4x4 mesh, got %T", s16.GL)
	}
}

func TestGLBarrierOn32CoresHierarchical(t *testing.T) {
	s := newTestSystem(t, 32)
	progs := make([]cpu.Program, 32)
	for i := range progs {
		progs[i] = func(c *cpu.Ctx) {
			c.GLBarrier(0)
			c.GLBarrier(0)
		}
	}
	if err := s.Launch(progs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BarrierEpisodes != 2 {
		t.Errorf("episodes=%d, want 2", rep.BarrierEpisodes)
	}
	// Hierarchical ideal: 6 cycles + 9 overhead = 15 per barrier.
	perBarrier := float64(rep.Cycles) / 2
	if perBarrier < 14 || perBarrier > 17 {
		t.Errorf("hierarchical barrier cost %.1f cycles, want ~15", perBarrier)
	}
}

func TestChooseSpan(t *testing.T) {
	cases := []struct {
		cols, rows, maxTx int
		want              int
	}{
		{8, 8, 6, 4}, // 2x2 clusters of 4x4
		{8, 4, 6, 3}, // 3x2 cluster grid (smallest span with <=7 clusters)
		{14, 14, 6, 7},
	}
	for _, tc := range cases {
		got, err := ChooseSpan(tc.cols, tc.rows, tc.maxTx)
		if err != nil {
			t.Errorf("ChooseSpan(%d,%d,%d): %v", tc.cols, tc.rows, tc.maxTx, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ChooseSpan(%d,%d,%d)=%d, want %d", tc.cols, tc.rows, tc.maxTx, got, tc.want)
		}
	}
	if _, err := ChooseSpan(100, 100, 2); err == nil {
		t.Error("impossible span accepted")
	}
}

func TestReplaceGLInstallsTDM(t *testing.T) {
	cfg := config.Default(16)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.NewNetwork(core.NetworkConfig{
		Cols: 4, Rows: 4, MaxTransmitters: 6, Contexts: 2, Mux: core.MuxTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.ReplaceGL(net)
	progs := make([]cpu.Program, 16)
	for i := range progs {
		progs[i] = func(c *cpu.Ctx) { c.GLBarrier(1) } // second TDM context
	}
	if err := s.Launch(progs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BarrierEpisodes != 1 {
		t.Errorf("episodes=%d", rep.BarrierEpisodes)
	}
}

func TestBarrierOnThreadSubset(t *testing.T) {
	s := newTestSystem(t, 16)
	b, err := s.NewBarrier(barrier.KindGL, 6)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]cpu.Program, 6)
	for i := range progs {
		i := i
		progs[i] = func(c *cpu.Ctx) {
			c.Compute(uint64(i))
			b.Wait(c, i)
		}
	}
	if err := s.Launch(progs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BarrierEpisodes != 1 {
		t.Errorf("episodes=%d", rep.BarrierEpisodes)
	}
}

func TestRunWithoutLaunchFails(t *testing.T) {
	s := newTestSystem(t, 4)
	if _, err := s.Run(100); err == nil {
		t.Error("Run without Launch should fail")
	}
}

func TestLaunchValidation(t *testing.T) {
	s := newTestSystem(t, 4)
	if err := s.Launch(make([]cpu.Program, 5)); err == nil {
		t.Error("too many programs accepted")
	}
	if err := s.Launch([]cpu.Program{nil}); err == nil {
		t.Error("nil program accepted")
	}
}

func TestCycleBudgetExhaustionReported(t *testing.T) {
	s := newTestSystem(t, 4)
	hang := func(c *cpu.Ctx) {
		for {
			c.Compute(100)
		}
	}
	if err := s.Launch([]cpu.Program{hang}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(5_000)
	if err == nil {
		t.Fatal("expected budget error")
	}
	if rep == nil || rep.Cycles == 0 {
		t.Error("partial report missing")
	}
	s.Close()
}

func TestDeadlockDetected(t *testing.T) {
	s := newTestSystem(t, 4)
	// A spinner on a value nobody ever writes: the watch sleeps, no events
	// remain, and the engine must report a deadlock rather than hang.
	addr := s.Alloc.Line()
	spin := func(c *cpu.Ctx) { c.SpinUntilEq(addr, 1) }
	if err := s.Launch([]cpu.Program{spin}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
	s.Close()
}

func TestReportBreakdownSumsToCoreTime(t *testing.T) {
	s := newTestSystem(t, 8)
	b, err := s.NewBarrier(barrier.KindDSW, 8)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]cpu.Program, 8)
	for i := range progs {
		i := i
		progs[i] = func(c *cpu.Ctx) {
			for it := 0; it < 3; it++ {
				c.Compute(uint64(10 + i))
				c.Load(s.Alloc.Line()) // distinct cold lines
				b.Wait(c, i)
			}
		}
	}
	if err := s.Launch(progs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var perCore uint64
	for _, bd := range rep.PerCore {
		perCore += bd.Total()
	}
	if rep.Breakdown.Total() != perCore {
		t.Errorf("aggregate %d != per-core sum %d", rep.Breakdown.Total(), perCore)
	}
	// Every core's breakdown total is bounded by the run length.
	for i, bd := range rep.PerCore {
		if bd.Total() > rep.Cycles {
			t.Errorf("core %d accounted %d cycles in a %d-cycle run", i, bd.Total(), rep.Cycles)
		}
	}
	if rep.GLLines == 0 {
		t.Error("report missing G-line count")
	}
	out := rep.String()
	for _, want := range []string{"cycles", "time.Barrier", "traffic.Request", "energy.noc-pJ"} {
		if !strings.Contains(out, want) {
			t.Errorf("report String() missing %q", want)
		}
	}
}

func TestEnergyReported(t *testing.T) {
	s := newTestSystem(t, 16)
	progs := make([]cpu.Program, 16)
	for i := range progs {
		progs[i] = func(c *cpu.Ctx) { c.GLBarrier(0) }
	}
	if err := s.Launch(progs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(1_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GLToggles == 0 {
		t.Error("no G-line toggles recorded")
	}
	if rep.Energy.GLinePJ <= 0 {
		t.Error("no G-line energy estimated")
	}
	if rep.Energy.NoCPJ != 0 {
		t.Error("pure GL run should have zero NoC energy")
	}
}

func TestNoGLNetworkConfigured(t *testing.T) {
	cfg := config.Default(4)
	cfg.GLContexts = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.GL != nil {
		t.Fatal("GL built despite GLContexts=0")
	}
	if _, err := s.NewBarrier(barrier.KindGL, 4); err == nil {
		t.Error("GL barrier without network accepted")
	}
	if _, err := s.NewBarrier(barrier.KindDSW, 4); err != nil {
		t.Errorf("software barrier should work without GL: %v", err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, stats.Traffic) {
		s := newTestSystem(t, 8)
		b, err := s.NewBarrier(barrier.KindDSW, 8)
		if err != nil {
			t.Fatal(err)
		}
		progs := make([]cpu.Program, 8)
		for i := range progs {
			i := i
			progs[i] = func(c *cpu.Ctx) {
				for it := 0; it < 5; it++ {
					c.Compute(uint64(1 + (i*3+it)%7))
					b.Wait(c, i)
				}
			}
		}
		if err := s.Launch(progs); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles, rep.Traffic
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("non-deterministic: %d/%v vs %d/%v", c1, t1, c2, t2)
	}
}
