package sim

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// DefaultStallLimit is the engine watchdog default installed by New: abort
// when tickers stay active but no event executes for this many consecutive
// cycles. It must exceed any legitimate event-free active-ticker stretch —
// a G-line context stays "active" from the first arrival until the release,
// which spans the longest compute phase of any participant — so the limit
// is set far above the workloads' phase lengths while still cutting a real
// livelock ~1000x earlier than the 4G-cycle default budget.
const DefaultStallLimit = 5_000_000

// glMeter sits between the cores' bar_reg and the G-line network, stamping
// per-episode arrival and release cycles into latency/skew histograms. It
// is pure observation: every Arrive is forwarded unchanged and releases are
// metered on their way to the cores, so simulated timing is untouched.
//
// Releases can straggle (a hierarchical network releases clusters over
// several cycles) and a released core may re-arrive before the last
// straggler, so the meter samples at the FIRST release of an episode —
// latency = firstRelease-lastArrival — and drains the remaining releases
// without restarting the episode.
// Metric names for the per-episode barrier distributions, G-line and
// software flavors.
const (
	metricGLLatency = "barrier.gl.latency"
	metricGLSkew    = "barrier.gl.skew"
	metricSWLatency = "barrier.sw.latency"
	metricSWSkew    = "barrier.sw.skew"
)

// BarrierObserver sees every core-visible G-line barrier event: arrivals as
// cores issue them and releases as they reach the cores (after any guard
// filtering). Pure observation on the metering path — implementations must
// not mutate simulation state. The chaos oracles are the main client.
type BarrierObserver interface {
	BarrierArrive(ctx, core int, cycle uint64)
	BarrierRelease(ctx, core int, cycle uint64)
}

type glMeter struct {
	gl    GLNetwork
	eng   *engine.Engine
	cores []*cpu.Core
	lat   *metrics.Histogram
	skew  *metrics.Histogram

	eps   map[int]*glEpisode
	ctxOf []int // last barrier context each core arrived on
	obs   BarrierObserver
	// tlc, when a timeline is attached, receives arrivals and episode
	// closures for span emission and latency attribution.
	tlc *tlCollector
}

type glEpisode struct {
	arrived     int
	first, last uint64
	outstanding int // releases still due from the already-sampled episode
}

func newGLMeter(gl GLNetwork, eng *engine.Engine, cores []*cpu.Core, reg *metrics.Registry) *glMeter {
	m := &glMeter{
		gl:    gl,
		eng:   eng,
		cores: cores,
		lat:   reg.Histogram(metricGLLatency, metrics.CycleBuckets()),
		skew:  reg.Histogram(metricGLSkew, metrics.CycleBuckets()),
		eps:   make(map[int]*glEpisode),
		ctxOf: make([]int, len(cores)),
	}
	return m
}

// Arrive implements cpu.BarrierEngine: meter the arrival, forward it.
func (m *glMeter) Arrive(core, barrierCtx int) {
	ep := m.eps[barrierCtx]
	if ep == nil {
		ep = &glEpisode{}
		m.eps[barrierCtx] = ep
	}
	now := m.eng.Now()
	if ep.arrived == 0 {
		ep.first, ep.last = now, now
	} else if now > ep.last {
		ep.last = now
	}
	ep.arrived++
	m.ctxOf[core] = barrierCtx
	if m.obs != nil {
		m.obs.BarrierArrive(barrierCtx, core, now)
	}
	if m.tlc != nil {
		m.tlc.arrive(barrierCtx, core, now)
	}
	m.gl.Arrive(core, barrierCtx)
}

// release is the network's release callback: sample the episode at its
// first release, then hand the release to the core.
func (m *glMeter) release(core int) {
	ep := m.eps[m.ctxOf[core]]
	if ep != nil {
		if ep.outstanding == 0 {
			// First release of this episode closes it.
			now := m.eng.Now()
			m.lat.Observe(now - ep.last)
			m.skew.Observe(ep.last - ep.first)
			if m.tlc != nil {
				// Attribute the episode with the exact cycles the latency
				// sample was computed from, so the table reconciles with
				// the histogram.
				m.tlc.close(m.ctxOf[core], ep.first, ep.last, now)
			}
			ep.outstanding = ep.arrived - 1
			ep.arrived = 0
		} else {
			ep.outstanding--
		}
	}
	// Observe before forwarding: a faulty release that the unguarded
	// protocol delivers to a non-waiting core panics inside GLRelease, and
	// the oracle must have seen the violation by then.
	if m.obs != nil {
		m.obs.BarrierRelease(m.ctxOf[core], core, m.eng.Now())
	}
	m.cores[core].GLRelease()
}

// ObserveBarrier installs obs on the barrier metering path. When the G-line
// network runs behind the recovering guard and obs also implements
// core.GuardObserver, the guard's recovery events (suppressions, retries,
// fallbacks, episode closures) are delivered to it as well.
func (s *System) ObserveBarrier(obs BarrierObserver) {
	if s.glm != nil {
		s.glm.obs = obs
	}
	if gobs, ok := obs.(core.GuardObserver); ok {
		s.guardObs = gobs
	}
	// With a timeline attached the collector sits in front of the user
	// observer (it forwards every guard event); otherwise the user observer
	// is installed directly, as before.
	s.installGuardObs()
}

// AttachRing installs a trace ring of the given capacity as the coherence
// protocol's tracer and keeps it for the hang watchdog's post-mortem dump.
// Returns the ring so callers can dump it on demand.
func (s *System) AttachRing(capacity int) *trace.Ring {
	s.ring = trace.NewRing(capacity)
	s.Prot.SetTracer(s.ring)
	return s.ring
}

// HangDump is the post-mortem a failed run carries in its report: where the
// simulation stopped, what was queued, what every core was doing, and the
// tail of the protocol trace (when a ring was attached).
type HangDump struct {
	Cycle         uint64                `json:"cycle"`
	Reason        string                `json:"reason"`
	PendingEvents int                   `json:"pending_events"`
	NextEvents    []engine.CyclePending `json:"next_events,omitempty"`
	Cores         []cpu.Status          `json:"cores"`
	// Guard carries the recovering barrier guard's per-context shadow
	// state (arrivals, buffered early arrivals, retry/backoff progress)
	// when the run used one; chaos-found hangs are diagnosed from this.
	Guard []core.GuardCtxStatus `json:"guard,omitempty"`
	Trace []string              `json:"trace,omitempty"`
	// TimelineTail is the most recent slice of the structured span timeline
	// (when one was attached): the typed counterpart of Trace, showing
	// exactly which barrier phases, transactions and releases were in
	// flight when the run wedged.
	TimelineTail []string `json:"timeline_tail,omitempty"`
}

// hangDump snapshots the system state after an engine error.
func (s *System) hangDump(err error) *HangDump {
	d := &HangDump{
		Cycle:         s.Eng.Now(),
		Reason:        err.Error(),
		PendingEvents: s.Eng.Pending(),
		NextEvents:    s.Eng.PendingByCycle(16),
	}
	for i := 0; i < s.launched; i++ {
		d.Cores = append(d.Cores, s.Cores[i].Status())
	}
	if guard, ok := s.GL.(*core.Recovering); ok {
		d.Guard = guard.Status()
	}
	if s.ring != nil {
		for _, e := range s.ring.Events() {
			d.Trace = append(d.Trace, e.String())
		}
	}
	if s.tl != nil {
		for _, e := range s.tl.Tail(hangTimelineTail) {
			d.TimelineTail = append(d.TimelineTail, e.String())
		}
	}
	return d
}

// hangTimelineTail is how many timeline events the watchdog post-mortem
// keeps: enough to cover the wedged episode's recent phases without
// drowning the dump.
const hangTimelineTail = 48

// String renders the dump in the shape of a crash report.
func (d *HangDump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "--- watchdog dump at cycle %d ---\n", d.Cycle)
	fmt.Fprintf(&b, "reason: %s\n", d.Reason)
	fmt.Fprintf(&b, "pending events: %d\n", d.PendingEvents)
	for _, cp := range d.NextEvents {
		fmt.Fprintf(&b, "  cycle %12d: %d event(s)\n", cp.Cycle, cp.Count)
	}
	for _, cs := range d.Cores {
		fmt.Fprintf(&b, "%s\n", cs)
	}
	for _, gs := range d.Guard {
		fmt.Fprintf(&b, "%s\n", gs)
	}
	if len(d.Trace) > 0 {
		fmt.Fprintf(&b, "last %d protocol events:\n", len(d.Trace))
		for _, line := range d.Trace {
			fmt.Fprintf(&b, "%s\n", line)
		}
	}
	if len(d.TimelineTail) > 0 {
		fmt.Fprintf(&b, "last %d timeline events:\n", len(d.TimelineTail))
		for _, line := range d.TimelineTail {
			fmt.Fprintf(&b, "%s\n", line)
		}
	}
	return b.String()
}
