package sim

import (
	"encoding/json"

	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/stats"
)

// reportJSON is the machine-readable shape of a Report. Regions and message
// classes serialize under their paper names instead of array indices, so
// downstream tooling never depends on internal enum ordering.
type reportJSON struct {
	Cycles          uint64              `json:"cycles"`
	TimeBreakdown   map[string]uint64   `json:"time_breakdown"`
	PerCore         []map[string]uint64 `json:"per_core,omitempty"`
	Traffic         map[string]flows    `json:"traffic"`
	BarrierEpisodes uint64              `json:"barrier_episodes"`
	BarrierPeriod   float64             `json:"barrier_period"`

	L1Hits        uint64 `json:"l1_hits"`
	L1Misses      uint64 `json:"l1_misses"`
	L2Hits        uint64 `json:"l2_hits"`
	L2Misses      uint64 `json:"l2_misses"`
	MemFetches    uint64 `json:"mem_fetches"`
	MemWritebacks uint64 `json:"mem_writebacks"`

	FlitHops       uint64  `json:"flit_hops"`
	GLLines        int     `json:"gl_lines"`
	GLToggles      uint64  `json:"gl_toggles"`
	GLActiveCycles uint64  `json:"gl_active_cycles"`
	EnergyNoCPJ    float64 `json:"energy_noc_pj"`
	EnergyGLinePJ  float64 `json:"energy_gline_pj"`

	Metrics metrics.Snapshot `json:"metrics"`
	NoC     noc.Stats        `json:"noc"`
	Hang    *HangDump        `json:"hang,omitempty"`
	// GLEpisodes is the per-episode latency attribution table (present
	// when the run had a timeline attached).
	GLEpisodes []EpisodeAttribution `json:"gl_episodes,omitempty"`
	// Provenance and Config make the report self-describing: which build
	// produced it and which resolved configuration it simulated.
	Provenance  Provenance  `json:"provenance"`
	Config      *configEcho `json:"config,omitempty"`
	Fingerprint string      `json:"fingerprint"`
}

type flows struct {
	Messages uint64 `json:"messages"`
	Flits    uint64 `json:"flits"`
}

func breakdownMap(b stats.TimeBreakdown) map[string]uint64 {
	m := make(map[string]uint64, stats.NumRegions)
	for reg := stats.Region(0); reg < stats.NumRegions; reg++ {
		m[reg.String()] = b[reg]
	}
	return m
}

// MarshalJSON serializes the report with named regions, traffic classes and
// the full metrics snapshot.
func (r *Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{
		Cycles:          r.Cycles,
		TimeBreakdown:   breakdownMap(r.Breakdown),
		Traffic:         make(map[string]flows, stats.NumMsgClasses),
		BarrierEpisodes: r.BarrierEpisodes,
		BarrierPeriod:   r.BarrierPeriod,
		L1Hits:          r.L1Hits,
		L1Misses:        r.L1Misses,
		L2Hits:          r.L2Hits,
		L2Misses:        r.L2Misses,
		MemFetches:      r.MemFetches,
		MemWritebacks:   r.MemWritebacks,
		FlitHops:        r.FlitHops,
		GLLines:         r.GLLines,
		GLToggles:       r.GLToggles,
		GLActiveCycles:  r.GLActiveCycles,
		EnergyNoCPJ:     r.Energy.NoCPJ,
		EnergyGLinePJ:   r.Energy.GLinePJ,
		Metrics:         r.Metrics,
		NoC:             r.NoC,
		Hang:            r.Hang,
		GLEpisodes:      r.Episodes,
		Provenance:      BuildProvenance(),
		Config:          echoConfig(r),
		Fingerprint:     r.Fingerprint(),
	}
	for _, bd := range r.PerCore {
		out.PerCore = append(out.PerCore, breakdownMap(bd))
	}
	for c := stats.MsgClass(0); c < stats.NumMsgClasses; c++ {
		out.Traffic[c.String()] = flows{Messages: r.Traffic.Messages[c], Flits: r.Traffic.Flits[c]}
	}
	return json.Marshal(out)
}

// JSON renders the report as an indented JSON document.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
