package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/config"
)

// InputSpec is the canonicalized description of one simulation cell's
// *inputs*: everything that determines the run's outputs, and nothing
// else. Because the simulator is a pure function of these fields (the
// determinism contract Report.Fingerprint pins on the output side), two
// cells with equal input fingerprints must produce byte-identical reports
// — which is what makes simulation results content-addressable: the serve
// cache, artifact dedup and cross-client sharing all key on this hash.
type InputSpec struct {
	// Config is the full resolved machine configuration, including
	// WorkloadSeed and the fault plan (hashed through its canonical
	// String() round-trip form).
	Config config.Config
	// Bench is the workload name ("SYNTH", "KERN2", ..., "PIPE").
	Bench string
	// Tier is the input-scale tier ("test", "scaled", "repro", "paper").
	Tier string
	// Barrier is the barrier implementation name ("GL", "CSW", "DSW").
	Barrier string
	// Threads is the resolved thread count (never 0; callers resolve the
	// "all cores" default before fingerprinting).
	Threads int
	// MaxCycles is the simulation cycle budget. It is part of the inputs
	// because an insufficient budget truncates the run and changes the
	// outputs; callers wanting budget-insensitive keys must canonicalize
	// the budget themselves.
	MaxCycles uint64
}

// Fingerprint returns a stable 64-bit hash (16 hex digits) over the spec.
// It is invariant across processes, architectures and Go releases (FNV-1a
// over explicitly ordered little-endian words — no map iteration, no
// pointers, no floats compared by formatting) and sensitive to every
// field: each field is hashed under its own label so field values cannot
// alias across fields. TestInputFingerprintCoversEveryConfigField enforces
// that a new Config field cannot be added without extending this hash.
func (in InputSpec) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	field := func(label string, v uint64) {
		h.Write([]byte(label))
		word(v)
	}
	str := func(label, s string) {
		h.Write([]byte(label))
		word(uint64(len(s)))
		h.Write([]byte(s))
	}
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}

	c := in.Config
	field("cores", uint64(c.Cores))
	field("mesh.cols", uint64(c.MeshCols))
	field("mesh.rows", uint64(c.MeshRows))
	field("issue.width", uint64(c.IssueWidth))
	field("clock.ghz", math.Float64bits(c.ClockGHz))
	field("line.size", uint64(c.LineSize))
	field("l1.size", uint64(c.L1Size))
	field("l1.ways", uint64(c.L1Ways))
	field("l1.hit", c.L1HitLatency)
	field("l2.size", uint64(c.L2SizePerCore))
	field("l2.ways", uint64(c.L2Ways))
	field("l2.tag", c.L2TagLatency)
	field("l2.data", c.L2DataLatency)
	field("mem.latency", c.MemLatency)
	field("flit.bytes", uint64(c.FlitBytes))
	field("router.latency", c.RouterLatency)
	field("link.latency", c.LinkLatency)
	field("gl.maxtx", uint64(c.GLMaxTransmitters))
	field("gl.call", c.GLCallOverhead)
	field("gl.contexts", uint64(c.GLContexts))
	field("threehop", b2u(c.ThreeHopOwnership))
	field("workload.seed", uint64(c.WorkloadSeed))
	// The fault plan hashes through its canonical grammar round-trip:
	// ParsePlan(p.String()) is equivalent to p, so two plans that print the
	// same are the same inputs. A nil plan is the empty string.
	str("faults", c.Faults.String())

	str("bench", in.Bench)
	str("tier", in.Tier)
	str("barrier", in.Barrier)
	field("threads", uint64(in.Threads))
	field("max.cycles", in.MaxCycles)
	return fmt.Sprintf("%016x", h.Sum64())
}
