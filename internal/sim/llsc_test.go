package sim

import (
	"testing"

	"repro/internal/cpu"
)

func TestLLSCContention(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		s := newTestSystem(t, n)
		addr := s.Alloc.Line()
		wins := make([]uint64, n)
		progs := make([]cpu.Program, n)
		for i := 0; i < n; i++ {
			i := i
			progs[i] = func(c *cpu.Ctx) {
				for k := 0; k < 5; k++ {
					wins[i] = c.FetchAddLLSC(addr, 1)
				}
			}
		}
		if err := s.Launch(progs); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(500_000); err != nil {
			t.Fatalf("n=%d: %v wins=%v final=%d", n, err, wins, s.Memv.Load(addr))
		}
		if got := s.Memv.Load(addr); got != uint64(5*n) {
			t.Errorf("n=%d: counter=%d want %d", n, got, 5*n)
		}
	}
}
