// Package sim assembles the full simulated CMP — cores, coherent memory
// hierarchy, mesh NoC and G-line barrier network — and runs programs on it
// to completion, producing the statistics the paper's evaluation reports.
package sim

import (
	"fmt"

	"repro/internal/barrier"
	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/trace"
)

// heapBase is where workload allocations start; any non-zero line-aligned
// value works (addresses are synthetic).
const heapBase = 0x1000_0000

// GLNetwork is the interface both the flat and the hierarchical G-line
// networks satisfy.
type GLNetwork interface {
	Arrive(core int, barrierCtx int)
	Tick(cycle uint64) bool
	OnRelease(schedule func(delay uint64, fn func()), release func(core int))
	SetParticipants(ctxID int, cores []int) error
	Episodes() uint64
	Toggles() uint64
	LineCount() int
	ActiveCycles() uint64
}

// System is one simulated CMP instance. Build it with New, install
// programs with Launch, then Run.
type System struct {
	Cfg   config.Config
	Eng   *engine.Engine
	Prot  *coherence.Protocol
	Memv  *mem.Store
	Alloc *mem.Allocator
	GL    GLNetwork
	Cores []*cpu.Core

	// SWEpisodes counts software barrier episodes (the G-line network
	// counts hardware episodes itself).
	SWEpisodes uint64

	// Metrics is the system-level registry: barrier episode latency and
	// skew histograms for both hardware and software barriers. Component
	// registries (engine, protocol, mesh) are merged into the report's
	// snapshot alongside it.
	Metrics *metrics.Registry

	glm      *glMeter
	ring     *trace.Ring
	inj      *fault.Injector
	launched int

	// tl/tlc are set by AttachTimeline: the structured span timeline and
	// the collector deriving barrier-episode attribution from it. guardObs
	// is the user's guard observer (chaos oracles), kept so timeline
	// attachment can chain in front of it.
	tl       *trace.Timeline
	tlc      *tlCollector
	guardObs core.GuardObserver
}

// New builds a system for the given configuration. A flat G-line network
// is used when the mesh fits the electrical limit; otherwise a hierarchical
// one is built automatically.
func New(cfg config.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := engine.New()
	memv := mem.NewStore()
	prot := coherence.New(eng, cfg, memv)

	var inj *fault.Injector
	if cfg.Faults != nil {
		inj = fault.NewInjector(cfg.Faults)
		prot.SetInjector(inj)
	}

	var gl GLNetwork
	if cfg.GLContexts > 0 {
		var err error
		gl, err = buildGL(cfg)
		if err != nil {
			return nil, err
		}
	}

	s := &System{
		Cfg:     cfg,
		Eng:     eng,
		Prot:    prot,
		Memv:    memv,
		Alloc:   mem.NewAllocator(heapBase, cfg.LineSize),
		GL:      gl,
		Metrics: metrics.NewRegistry(),
		inj:     inj,
	}
	if inj != nil {
		inj.Bind(s.Metrics)
		if gl != nil {
			gl = s.instrumentGL(gl)
			s.GL = gl
		}
	}
	eng.StallLimit = DefaultStallLimit
	s.Cores = make([]*cpu.Core, cfg.Cores)
	// The meter wraps the G-line network as the cores' BarrierEngine; with
	// no network the cores get a true nil interface (a nil *glMeter would
	// defeat the core's nil check).
	var be cpu.BarrierEngine
	if gl != nil {
		s.glm = newGLMeter(gl, eng, s.Cores, s.Metrics)
		be = s.glm
	}
	for i := 0; i < cfg.Cores; i++ {
		s.Cores[i] = cpu.NewCore(i, eng, cfg.IssueWidth, cfg.GLCallOverhead, prot.L1(i), be)
	}
	if gl != nil {
		gl.OnRelease(eng.After, s.glm.release)
		eng.AddTicker(gl)
	}
	return s, nil
}

// instrumentGL hooks the fault injector into a G-line network and, unless
// the plan opts out, wraps it in the recovering barrier protocol.
func (s *System) instrumentGL(gl GLNetwork) GLNetwork {
	switch g := gl.(type) {
	case *core.Network:
		g.SetInjector(s.inj)
	case *core.Hierarchical:
		g.SetInjector(s.inj)
	}
	if s.Cfg.Faults.Recovery.Disabled {
		return gl
	}
	bn, ok := gl.(core.BarrierNetwork)
	if !ok {
		// A custom network without ResetContext can be injected into but
		// not guarded.
		return gl
	}
	guard := core.NewRecovering(bn, s.Cfg.Cores, s.Cfg.Faults.Recovery, s.Eng.Now)
	guard.SetMetrics(s.Metrics)
	return guard
}

// buildGL constructs the barrier network matching the mesh size.
func buildGL(cfg config.Config) (GLNetwork, error) {
	if cfg.GLFitsFlat() {
		return core.NewNetwork(core.NetworkConfig{
			Cols:            cfg.MeshCols,
			Rows:            cfg.MeshRows,
			MaxTransmitters: cfg.GLMaxTransmitters,
			Contexts:        cfg.GLContexts,
			Mux:             core.MuxSpace,
		})
	}
	span, err := ChooseSpan(cfg.MeshCols, cfg.MeshRows, cfg.GLMaxTransmitters)
	if err != nil {
		return nil, err
	}
	return core.NewHierarchical(cfg.MeshCols, cfg.MeshRows, span, cfg.GLMaxTransmitters, cfg.GLContexts)
}

// ChooseSpan picks the smallest balanced cluster span for a mesh exceeding
// the flat limit, such that both the cluster dimensions and the number of
// clusters respect the per-line transmitter limit.
func ChooseSpan(cols, rows, maxTx int) (int, error) {
	for span := 2; span <= maxTx+1; span++ {
		gridC := (cols + span - 1) / span
		gridR := (rows + span - 1) / span
		if gridC*gridR-1 <= maxTx {
			return span, nil
		}
	}
	return 0, fmt.Errorf("sim: no single-level cluster span covers a %dx%d mesh with %d transmitters per line", cols, rows, maxTx)
}

// ReplaceGL swaps the barrier network before any program launches; used by
// ablation studies to install hierarchical or time-multiplexed variants.
func (s *System) ReplaceGL(gl GLNetwork) {
	if s.launched > 0 {
		panic("sim: ReplaceGL after Launch")
	}
	if s.inj != nil {
		gl = s.instrumentGL(gl)
	}
	s.GL = gl
	if s.glm == nil {
		s.glm = newGLMeter(gl, s.Eng, s.Cores, s.Metrics)
	} else {
		s.glm.gl = gl
	}
	gl.OnRelease(s.Eng.After, s.glm.release)
	s.Eng.AddTicker(gl)
	for _, c := range s.Cores {
		c.SetBarrierEngine(s.glm)
	}
	if s.tl != nil {
		s.glm.tlc = s.tlc
		s.wireGLTimeline()
		s.installGuardObs()
	}
}

// NewBarrier builds a barrier of the given kind over this system's memory
// for n threads (tids 0..n-1), using G-line context 0 for KindGL.
func (s *System) NewBarrier(kind barrier.Kind, n int) (barrier.Barrier, error) {
	if kind == barrier.KindGL {
		if s.GL == nil {
			return nil, fmt.Errorf("sim: configuration has no G-line network (GLContexts=0)")
		}
		if n != s.Cfg.Cores {
			if err := s.GL.SetParticipants(0, firstN(n)); err != nil {
				return nil, err
			}
		}
	}
	b, err := barrier.New(kind, s.Alloc, n, &s.SWEpisodes, 0)
	if err != nil {
		return nil, err
	}
	if rb, ok := b.(barrier.Recordable); ok {
		rb.SetRecorder(&barrier.EpisodeRecorder{
			Latency: s.Metrics.Histogram(metricSWLatency, metrics.CycleBuckets()),
			Skew:    s.Metrics.Histogram(metricSWSkew, metrics.CycleBuckets()),
		})
	}
	return b, nil
}

func firstN(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = i
	}
	return v
}

// Launch starts one program per core, programs[i] on core i. Fewer
// programs than cores leaves the remaining cores idle.
func (s *System) Launch(programs []cpu.Program) error {
	if len(programs) > len(s.Cores) {
		return fmt.Errorf("sim: %d programs for %d cores", len(programs), len(s.Cores))
	}
	for i, p := range programs {
		if p == nil {
			return fmt.Errorf("sim: nil program for core %d", i)
		}
		s.Cores[i].Start(p)
	}
	s.launched = len(programs)
	return nil
}

// Run drives the simulation until every launched program finishes or
// maxCycles elapses. It returns the report even on error (partial stats
// are useful for diagnosing hangs).
func (s *System) Run(maxCycles uint64) (*Report, error) {
	if s.launched == 0 {
		return nil, fmt.Errorf("sim: no programs launched")
	}
	done := func() bool {
		for i := 0; i < s.launched; i++ {
			if !s.Cores[i].Done() {
				return false
			}
		}
		return true
	}
	endCycle, engErr := s.Eng.Run(maxCycles, done)
	err := engErr
	if err == nil {
		for i := 0; i < s.launched; i++ {
			if cerr := s.Cores[i].Err(); cerr != nil {
				err = cerr
				break
			}
		}
	}
	rep := s.report(endCycle)
	if engErr != nil {
		// Budget exhaustion or stall: attach the post-mortem.
		rep.Hang = s.hangDump(engErr)
	}
	return rep, err
}

// Close unwinds any program goroutines still blocked (after an error or
// cycle-budget exhaustion).
func (s *System) Close() {
	for i := 0; i < s.launched; i++ {
		s.Cores[i].Abort()
	}
}

// Report is the complete result of one simulation run.
type Report struct {
	Cycles    uint64
	PerCore   []stats.TimeBreakdown
	Breakdown stats.TimeBreakdown
	Traffic   stats.Traffic

	BarrierEpisodes uint64
	BarrierPeriod   float64

	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64
	MemFetches       uint64
	MemWritebacks    uint64

	FlitHops       uint64
	GLToggles      uint64
	GLLines        int
	GLActiveCycles uint64
	Energy         energy.Estimate

	// Metrics is the merged snapshot of every component registry: barrier
	// episode latency histograms, coherence event counters, NoC latency
	// distributions, engine queue statistics. Observability only — none of
	// these feed Fingerprint.
	Metrics metrics.Snapshot
	// NoC summarizes per-link flit occupancy and peak queue depth.
	NoC noc.Stats
	// Hang carries the watchdog post-mortem when the run stalled or ran
	// out of cycle budget; nil on clean runs.
	Hang *HangDump
	// Episodes is the per-episode latency attribution table, filled when a
	// timeline was attached. Observability only — not fingerprinted.
	Episodes []EpisodeAttribution
	// Config echoes the resolved configuration the run used, so exported
	// reports and timelines are self-describing.
	Config config.Config
}

func (s *System) report(endCycle uint64) *Report {
	r := &Report{
		Cycles:  endCycle,
		Traffic: s.Prot.Traffic(),
		Config:  s.Cfg,
	}
	if s.tlc != nil {
		r.Episodes = s.tlc.episodes
	}
	for i := 0; i < s.launched; i++ {
		b := s.Cores[i].Breakdown()
		r.PerCore = append(r.PerCore, b)
		r.Breakdown = r.Breakdown.Plus(b)
	}
	for i := range s.Cores {
		h, m := s.Prot.L1Stats(i)
		r.L1Hits += h
		r.L1Misses += m
	}
	r.L2Hits, r.L2Misses = s.Prot.L2Stats()
	r.MemFetches, r.MemWritebacks = s.Prot.MemAccesses()

	for _, ports := range s.Prot.Mesh().LinkUtilization() {
		for _, f := range ports {
			r.FlitHops += f
		}
	}
	r.BarrierEpisodes = s.SWEpisodes
	if s.GL != nil {
		r.BarrierEpisodes += s.GL.Episodes()
		r.GLToggles = s.GL.Toggles()
		r.GLLines = s.GL.LineCount()
		r.GLActiveCycles = s.GL.ActiveCycles()
	}
	if r.BarrierEpisodes > 0 {
		r.BarrierPeriod = float64(r.Cycles) / float64(r.BarrierEpisodes)
	}
	r.Energy = energy.New(r.FlitHops, r.GLToggles)
	r.Metrics = s.Metrics.Snapshot().
		Plus(s.Eng.Metrics().Snapshot()).
		Plus(s.Prot.Metrics().Snapshot()).
		Plus(s.Prot.Mesh().Metrics().Snapshot())
	r.NoC = s.Prot.Mesh().Stats()
	return r
}

// String renders a human-readable summary of the report.
func (r *Report) String() string {
	t := stats.Table{Header: []string{"metric", "value"}}
	t.AddRow("cycles", fmt.Sprintf("%d", r.Cycles))
	f := r.Breakdown.Fractions()
	for reg := stats.Region(0); reg < stats.NumRegions; reg++ {
		t.AddRow("time."+reg.String(), fmt.Sprintf("%d (%s)", r.Breakdown[reg], stats.Pct(f[reg])))
	}
	for c := stats.MsgClass(0); c < stats.NumMsgClasses; c++ {
		t.AddRow("traffic."+c.String(), fmt.Sprintf("%d msgs / %d flits", r.Traffic.Messages[c], r.Traffic.Flits[c]))
	}
	t.AddRow("barrier.episodes", fmt.Sprintf("%d", r.BarrierEpisodes))
	t.AddRow("barrier.period", fmt.Sprintf("%.0f", r.BarrierPeriod))
	if len(r.Episodes) > 0 {
		var wait, gather, rel, retry, fb uint64
		for _, e := range r.Episodes {
			wait += e.ArriveWait
			gather += e.Gather
			rel += e.Release
			retry += e.Retry
			fb += e.Fallback
		}
		t.AddRow("barrier.attr.episodes", fmt.Sprintf("%d", len(r.Episodes)))
		t.AddRow("barrier.attr.arrive-wait", fmt.Sprintf("%d", wait))
		t.AddRow("barrier.attr.gather", fmt.Sprintf("%d", gather))
		t.AddRow("barrier.attr.release", fmt.Sprintf("%d", rel))
		t.AddRow("barrier.attr.retry", fmt.Sprintf("%d", retry))
		t.AddRow("barrier.attr.fallback", fmt.Sprintf("%d", fb))
	}
	t.AddRow("l1.hits/misses", fmt.Sprintf("%d/%d", r.L1Hits, r.L1Misses))
	t.AddRow("l2.hits/misses", fmt.Sprintf("%d/%d", r.L2Hits, r.L2Misses))
	t.AddRow("mem.fetch/writeback", fmt.Sprintf("%d/%d", r.MemFetches, r.MemWritebacks))
	t.AddRow("noc.flit-hops", fmt.Sprintf("%d", r.FlitHops))
	t.AddRow("gl.lines", fmt.Sprintf("%d", r.GLLines))
	t.AddRow("gl.toggles", fmt.Sprintf("%d", r.GLToggles))
	t.AddRow("energy.noc-pJ", fmt.Sprintf("%.0f", r.Energy.NoCPJ))
	t.AddRow("energy.gl-pJ", fmt.Sprintf("%.1f", r.Energy.GLinePJ))
	for _, name := range r.Metrics.SortedHistogramNames() {
		h := r.Metrics.Histograms[name]
		if h.Count == 0 {
			continue
		}
		t.AddRow(name, fmt.Sprintf("n=%d p50=%d p95=%d p99=%d max=%d", h.Count, h.P50, h.P95, h.P99, h.Max))
	}
	for _, name := range r.Metrics.SortedCounterNames() {
		if v := r.Metrics.Counters[name]; v > 0 {
			t.AddRow(name, fmt.Sprintf("%d", v))
		}
	}
	t.AddRow("fingerprint", r.Fingerprint())
	return t.String()
}
