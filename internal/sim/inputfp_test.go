package sim

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/fault"
)

// baseInput is the reference spec the fingerprint tests perturb.
func baseInput() InputSpec {
	return InputSpec{
		Config:    config.Default(16),
		Bench:     "SYNTH",
		Tier:      "test",
		Barrier:   "GL",
		Threads:   16,
		MaxCycles: 1 << 22,
	}
}

// TestInputFingerprintGolden pins the hash values themselves: the input
// fingerprint keys the on-disk result cache, so it must be invariant
// across processes, machines and releases. If this test fails the hash
// changed shape and every persisted cache entry is orphaned — bump
// deliberately, never accidentally.
func TestInputFingerprintGolden(t *testing.T) {
	plan, err := fault.ParsePlan("seed=7,gl.drop=1e-4")
	if err != nil {
		t.Fatal(err)
	}
	faulty := baseInput()
	faulty.Config.Faults = plan

	cases := []struct {
		name string
		spec InputSpec
		want string
	}{
		{"base", baseInput(), baseInput().Fingerprint()},
		{"faulty", faulty, faulty.Fingerprint()},
	}
	// First run prints the values to pin; the committed constants below are
	// the cross-process contract.
	const wantBase = "0be82462931c90fc"
	const wantFaulty = "b8af64bebcd798fa"
	cases[0].want = wantBase
	cases[1].want = wantFaulty
	for _, c := range cases {
		if got := c.spec.Fingerprint(); got != c.want {
			t.Errorf("%s: fingerprint %s, want %s", c.name, got, c.want)
		}
	}
	// Stability within a process: hashing is a pure function.
	if a, b := baseInput().Fingerprint(), baseInput().Fingerprint(); a != b {
		t.Errorf("fingerprint not stable: %s then %s", a, b)
	}
}

// configMutators perturbs each config.Config field in a
// fingerprint-visible way. The companion test walks config.Config by
// reflection: adding a field to Config without extending both
// InputSpec.Fingerprint and this table fails the build's tests, so the
// hash can never silently ignore a new input.
var configMutators = map[string]func(*config.Config){
	"Cores":             func(c *config.Config) { c.Cores++ },
	"MeshCols":          func(c *config.Config) { c.MeshCols++ },
	"MeshRows":          func(c *config.Config) { c.MeshRows++ },
	"IssueWidth":        func(c *config.Config) { c.IssueWidth++ },
	"ClockGHz":          func(c *config.Config) { c.ClockGHz += 0.5 },
	"LineSize":          func(c *config.Config) { c.LineSize *= 2 },
	"L1Size":            func(c *config.Config) { c.L1Size *= 2 },
	"L1Ways":            func(c *config.Config) { c.L1Ways *= 2 },
	"L1HitLatency":      func(c *config.Config) { c.L1HitLatency++ },
	"L2SizePerCore":     func(c *config.Config) { c.L2SizePerCore *= 2 },
	"L2Ways":            func(c *config.Config) { c.L2Ways *= 2 },
	"L2TagLatency":      func(c *config.Config) { c.L2TagLatency++ },
	"L2DataLatency":     func(c *config.Config) { c.L2DataLatency++ },
	"MemLatency":        func(c *config.Config) { c.MemLatency++ },
	"FlitBytes":         func(c *config.Config) { c.FlitBytes *= 2 },
	"RouterLatency":     func(c *config.Config) { c.RouterLatency++ },
	"LinkLatency":       func(c *config.Config) { c.LinkLatency++ },
	"GLMaxTransmitters": func(c *config.Config) { c.GLMaxTransmitters++ },
	"GLCallOverhead":    func(c *config.Config) { c.GLCallOverhead++ },
	"GLContexts":        func(c *config.Config) { c.GLContexts++ },
	"ThreeHopOwnership": func(c *config.Config) { c.ThreeHopOwnership = true },
	"WorkloadSeed":      func(c *config.Config) { c.WorkloadSeed = 42 },
	"Faults":            func(c *config.Config) { c.Faults = &fault.Plan{Seed: 9} },
}

// TestInputFingerprintCoversEveryConfigField requires (a) a mutator for
// every Config field and (b) that each mutation, plus each non-config
// field of InputSpec, changes the fingerprint.
func TestInputFingerprintCoversEveryConfigField(t *testing.T) {
	base := baseInput().Fingerprint()
	rt := reflect.TypeOf(config.Config{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		mut, ok := configMutators[name]
		if !ok {
			t.Errorf("config.Config.%s has no fingerprint mutator: extend InputSpec.Fingerprint and configMutators", name)
			continue
		}
		spec := baseInput()
		mut(&spec.Config)
		if got := spec.Fingerprint(); got == base {
			t.Errorf("mutating config.Config.%s left the fingerprint unchanged (%s)", name, got)
		}
	}
	specMutators := map[string]func(*InputSpec){
		"Bench":     func(s *InputSpec) { s.Bench = "KERN2" },
		"Tier":      func(s *InputSpec) { s.Tier = "scaled" },
		"Barrier":   func(s *InputSpec) { s.Barrier = "CSW" },
		"Threads":   func(s *InputSpec) { s.Threads-- },
		"MaxCycles": func(s *InputSpec) { s.MaxCycles++ },
	}
	st := reflect.TypeOf(InputSpec{})
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		if name == "Config" {
			continue
		}
		mut, ok := specMutators[name]
		if !ok {
			t.Errorf("InputSpec.%s has no fingerprint mutator: extend InputSpec.Fingerprint and specMutators", name)
			continue
		}
		spec := baseInput()
		mut(&spec)
		if got := spec.Fingerprint(); got == base {
			t.Errorf("mutating InputSpec.%s left the fingerprint unchanged (%s)", name, got)
		}
	}
}

// TestInputFingerprintFieldsDoNotAlias checks the per-field labels keep
// equal values in different fields from colliding: moving the same number
// between two adjacent uint64 fields must change the hash.
func TestInputFingerprintFieldsDoNotAlias(t *testing.T) {
	a := baseInput()
	a.Threads = 7
	a.MaxCycles = 13
	b := baseInput()
	b.Threads = 13
	b.MaxCycles = 7
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("swapping Threads and MaxCycles values collides: %s", a.Fingerprint())
	}
	// Equivalent fault plans (different spelling, same canonical form)
	// must collide — the grammar round-trip is the canonicalizer.
	p1, err := fault.ParsePlan("gl.drop=1e-3,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := fault.ParsePlan(p1.String())
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := baseInput(), baseInput()
	s1.Config.Faults, s2.Config.Faults = p1, p2
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Fatalf("canonically equal fault plans fingerprint differently: %s vs %s", s1.Fingerprint(), s2.Fingerprint())
	}
}
