package sim

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/stats"
)

// newTestSystem builds a small system, failing the test on error.
func newTestSystem(t *testing.T, n int) *System {
	t.Helper()
	s, err := New(config.Default(n))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestSingleCoreComputeOnly(t *testing.T) {
	s := newTestSystem(t, 4)
	prog := func(c *cpu.Ctx) { c.Compute(100) }
	if err := s.Launch([]cpu.Program{prog}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	rep, err := s.Run(10_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Breakdown[stats.RegionBusy] != 100 {
		t.Errorf("busy cycles = %d, want 100", rep.Breakdown[stats.RegionBusy])
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s := newTestSystem(t, 4)
	addr := s.Alloc.Line()
	var got uint64
	prog := func(c *cpu.Ctx) {
		c.StoreV(addr, 42)
		got = c.Load(addr)
	}
	if err := s.Launch([]cpu.Program{prog}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if _, err := s.Run(100_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 42 {
		t.Errorf("loaded %d, want 42", got)
	}
}

func TestGLBarrierAllCores(t *testing.T) {
	s := newTestSystem(t, 16)
	var after []uint64
	progs := make([]cpu.Program, 16)
	order := make(chan int, 16)
	for i := 0; i < 16; i++ {
		i := i
		progs[i] = func(c *cpu.Ctx) {
			c.Compute(uint64(i * 3)) // staggered arrivals
			c.GLBarrier(0)
			order <- i
			after = append(after, c.Now())
		}
	}
	if err := s.Launch(progs); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	rep, err := s.Run(100_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.BarrierEpisodes != 1 {
		t.Errorf("episodes = %d, want 1", rep.BarrierEpisodes)
	}
	// All cores resume at the same cycle.
	first := after[0]
	for _, cyc := range after {
		if cyc != first {
			t.Errorf("cores released at different cycles: %v", after)
			break
		}
	}
	if rep.Traffic.TotalMessages() != 0 {
		t.Errorf("G-line barrier generated %d NoC messages, want 0", rep.Traffic.TotalMessages())
	}
}

func TestSoftwareBarriers(t *testing.T) {
	for _, kind := range []barrier.Kind{barrier.KindCSW, barrier.KindDSW} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			const n = 8
			const iters = 5
			s := newTestSystem(t, n)
			b, err := s.NewBarrier(kind, n)
			if err != nil {
				t.Fatalf("NewBarrier: %v", err)
			}
			counts := make([]int, n)
			progs := make([]cpu.Program, n)
			for i := 0; i < n; i++ {
				i := i
				progs[i] = func(c *cpu.Ctx) {
					for it := 0; it < iters; it++ {
						c.Compute(uint64(1 + i))
						b.Wait(c, i)
						counts[i]++
					}
				}
			}
			if err := s.Launch(progs); err != nil {
				t.Fatalf("Launch: %v", err)
			}
			rep, err := s.Run(10_000_000)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.BarrierEpisodes != iters {
				t.Errorf("episodes = %d, want %d", rep.BarrierEpisodes, iters)
			}
			for i, c := range counts {
				if c != iters {
					t.Errorf("thread %d completed %d iterations, want %d", i, c, iters)
				}
			}
			if rep.Traffic.TotalMessages() == 0 {
				t.Error("software barrier generated no NoC traffic")
			}
		})
	}
}
