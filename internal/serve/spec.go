// Package serve turns the one-shot simulator CLI into a long-running
// simulation-as-a-service: an HTTP/JSON job server that expands sweep-grid
// job specs into independent cells, schedules them on the bounded
// internal/sweep pool, streams progress, and serves results out of a
// content-addressed cache keyed by the cells' input fingerprints
// (sim.InputSpec.Fingerprint) — identical cells, common when many clients
// sweep overlapping grids, cost one simulation ever.
//
// The job spec grammar follows the fault.ParsePlan house style: a flat
// directive list with a canonical String() round-trip. Directives are
// whitespace-separated key=value pairs (values may contain '=' and ',',
// so a fault plan embeds verbatim); bench, barrier, cores and seed accept
// '|'-separated alternatives that expand into the cross-product grid:
//
//	bench=SYNTH|KERN2 barrier=GL|CSW cores=16|32 tier=test
//
// expands to 8 cells. Unset directives default to bench=SYNTH barrier=GL
// cores=32 seed=0 tier=test threads=<cores> max_cycles=4000000000.
package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultMaxCycles is the per-cell cycle budget when a spec does not set
// max_cycles; it matches the CLI harness default (the paper-scale OCEAN
// run, the largest cell, needs ~75M cycles).
const DefaultMaxCycles = 4_000_000_000

// MaxGridCells bounds a single job's cross-product expansion; a spec
// expanding past it is rejected at parse time.
const MaxGridCells = 1024

// JobSpec is one parsed job: a grid of simulation cells. The zero value
// is not useful; build with ParseJobSpec.
type JobSpec struct {
	// Bench, Barrier, Cores and Seeds are the grid axes, each at least one
	// entry, deduplicated, in spec order.
	Bench   []string
	Barrier []barrier.Kind
	Cores   []int
	Seeds   []int64
	// Tier is the input-scale tier shared by every cell.
	Tier workload.Tier
	// Threads is the per-cell thread count; 0 means all cores of the cell.
	Threads int
	// MaxCycles is the per-cell cycle budget.
	MaxCycles uint64
	// Faults is the shared fault plan (nil = no injection).
	Faults *fault.Plan
}

// Cell is one fully resolved simulation of a job grid: the unit of
// execution, caching and fingerprinting.
type Cell struct {
	Bench     string
	Barrier   barrier.Kind
	Cores     int
	Seed      int64
	Tier      workload.Tier
	Threads   int // resolved: never 0
	MaxCycles uint64
	Faults    *fault.Plan
}

// Label renders the cell's human-facing name, stable across processes.
func (c Cell) Label() string {
	l := fmt.Sprintf("%s/%s/%d", c.Bench, c.Barrier, c.Cores)
	if c.Seed != 0 {
		l += fmt.Sprintf("/seed%d", c.Seed)
	}
	return l
}

// Input returns the canonicalized input spec the cell's fingerprint (and
// hence its cache identity) derives from.
func (c Cell) Input() sim.InputSpec {
	cfg := config.Default(c.Cores)
	cfg.WorkloadSeed = c.Seed
	cfg.Faults = c.Faults
	if c.Bench == "PIPE" {
		// The pipeline workload runs two concurrent barrier groups; mirror
		// the CLI harness.
		cfg.GLContexts = 2
	}
	return sim.InputSpec{
		Config:    cfg,
		Bench:     c.Bench,
		Tier:      string(c.Tier),
		Barrier:   string(c.Barrier),
		Threads:   c.Threads,
		MaxCycles: c.MaxCycles,
	}
}

// Fingerprint returns the cell's 64-bit content address (16 hex digits).
func (c Cell) Fingerprint() string { return c.Input().Fingerprint() }

// ParseJobSpec parses and validates the job grammar. Every cell of the
// expanded grid is validated eagerly — a bad spec is rejected at submit
// time, never discovered mid-sweep.
func ParseJobSpec(s string) (*JobSpec, error) {
	spec := &JobSpec{
		Tier:      workload.TierTest,
		MaxCycles: DefaultMaxCycles,
	}
	for _, tok := range strings.Fields(s) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("serve: directive %q is not key=value", tok)
		}
		switch key {
		case "bench":
			for _, b := range splitAlts(val) {
				spec.Bench = appendUnique(spec.Bench, b)
			}
		case "barrier":
			for _, b := range splitAlts(val) {
				kind, err := barrier.ParseKind(b)
				if err != nil {
					return nil, fmt.Errorf("serve: %v", err)
				}
				if !containsKind(spec.Barrier, kind) {
					spec.Barrier = append(spec.Barrier, kind)
				}
			}
		case "cores":
			for _, c := range splitAlts(val) {
				n, err := strconv.Atoi(c)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("serve: bad cores value %q", c)
				}
				if !containsInt(spec.Cores, n) {
					spec.Cores = append(spec.Cores, n)
				}
			}
		case "seed":
			for _, c := range splitAlts(val) {
				n, err := strconv.ParseInt(c, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("serve: bad seed value %q", c)
				}
				if !containsInt64(spec.Seeds, n) {
					spec.Seeds = append(spec.Seeds, n)
				}
			}
		case "tier":
			tier, err := workload.ParseTier(val)
			if err != nil {
				return nil, fmt.Errorf("serve: %v", err)
			}
			spec.Tier = tier
		case "threads":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("serve: bad threads value %q", val)
			}
			spec.Threads = n
		case "max_cycles":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("serve: bad max_cycles value %q", val)
			}
			spec.MaxCycles = n
		case "faults":
			plan, err := fault.ParsePlan(val)
			if err != nil {
				return nil, fmt.Errorf("serve: %v", err)
			}
			spec.Faults = plan
		default:
			return nil, fmt.Errorf("serve: unknown directive %q", key)
		}
	}
	spec.applyDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

func (s *JobSpec) applyDefaults() {
	if len(s.Bench) == 0 {
		s.Bench = []string{"SYNTH"}
	}
	if len(s.Barrier) == 0 {
		s.Barrier = []barrier.Kind{barrier.KindGL}
	}
	if len(s.Cores) == 0 {
		s.Cores = []int{32}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{0}
	}
}

// validate checks every expanded cell against the workload registry and
// the machine configuration's own Validate.
func (s *JobSpec) validate() error {
	n := len(s.Bench) * len(s.Barrier) * len(s.Cores) * len(s.Seeds)
	if n > MaxGridCells {
		return fmt.Errorf("serve: grid expands to %d cells, limit %d", n, MaxGridCells)
	}
	for _, b := range s.Bench {
		if _, err := workload.ByName(b, s.Tier); err != nil {
			return fmt.Errorf("serve: %v", err)
		}
	}
	for _, c := range s.Cores {
		if err := config.Default(c).Validate(); err != nil {
			return fmt.Errorf("serve: cores=%d: %v", c, err)
		}
		if s.Threads > c {
			return fmt.Errorf("serve: threads=%d exceeds cores=%d", s.Threads, c)
		}
	}
	return nil
}

// Cells expands the grid in deterministic order: bench (outer), barrier,
// cores, seed (inner).
func (s *JobSpec) Cells() []Cell {
	var cells []Cell
	for _, b := range s.Bench {
		for _, k := range s.Barrier {
			for _, c := range s.Cores {
				for _, seed := range s.Seeds {
					threads := s.Threads
					if threads == 0 {
						threads = c
					}
					cells = append(cells, Cell{
						Bench:     b,
						Barrier:   k,
						Cores:     c,
						Seed:      seed,
						Tier:      s.Tier,
						Threads:   threads,
						MaxCycles: s.MaxCycles,
						Faults:    s.Faults,
					})
				}
			}
		}
	}
	return cells
}

// String renders the spec back into canonical grammar; ParseJobSpec of
// the result reproduces an equivalent spec (grid axes sorted, defaults
// elided), so String is the job-level canonicalization the way
// fault.Plan.String is the plan-level one.
func (s *JobSpec) String() string {
	bench := append([]string(nil), s.Bench...)
	sort.Strings(bench)
	kinds := make([]string, len(s.Barrier))
	for i, k := range s.Barrier {
		kinds[i] = string(k)
	}
	sort.Strings(kinds)
	cores := append([]int(nil), s.Cores...)
	sort.Ints(cores)
	coreStrs := make([]string, len(cores))
	for i, c := range cores {
		coreStrs[i] = strconv.Itoa(c)
	}
	seeds := append([]int64(nil), s.Seeds...)
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })

	toks := []string{
		"bench=" + strings.Join(bench, "|"),
		"barrier=" + strings.Join(kinds, "|"),
		"cores=" + strings.Join(coreStrs, "|"),
		"tier=" + string(s.Tier),
	}
	if len(seeds) != 1 || seeds[0] != 0 {
		seedStrs := make([]string, len(seeds))
		for i, v := range seeds {
			seedStrs[i] = strconv.FormatInt(v, 10)
		}
		toks = append(toks, "seed="+strings.Join(seedStrs, "|"))
	}
	if s.Threads != 0 {
		toks = append(toks, fmt.Sprintf("threads=%d", s.Threads))
	}
	if s.MaxCycles != DefaultMaxCycles {
		toks = append(toks, fmt.Sprintf("max_cycles=%d", s.MaxCycles))
	}
	if s.Faults != nil {
		toks = append(toks, "faults="+s.Faults.String())
	}
	return strings.Join(toks, " ")
}

func splitAlts(v string) []string {
	parts := strings.Split(v, "|")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func containsKind(s []barrier.Kind, v barrier.Kind) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsInt64(s []int64, v int64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
