package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeEntryJSON builds a minimal report document the cache peek
// understands.
func fakeEntryJSON(fp string, episodes uint64, hang bool) []byte {
	hangField := ""
	if hang {
		hangField = `"hang": {"cycle": 1, "reason": "stuck"},`
	}
	return []byte(fmt.Sprintf(`{
  "barrier_episodes": %d,
  %s
  "metrics": {"histograms": {"barrier.gl.latency": {"count": 2, "sum": 10, "min": 3, "max": 7}}},
  "fingerprint": "rep-%s"
}`, episodes, hangField, fp))
}

func TestNewEntryPeek(t *testing.T) {
	e, err := newEntry("aabb", fakeEntryJSON("aabb", 5, true))
	if err != nil {
		t.Fatal(err)
	}
	if e.InputFP != "aabb" || e.ReportFP != "rep-aabb" || e.Episodes != 5 || !e.Hung {
		t.Fatalf("peek = %+v", e)
	}
	if e.GLLatency.Count != 2 || e.GLLatency.Sum != 10 {
		t.Fatalf("histogram peek = %+v", e.GLLatency)
	}
	if e2, _ := newEntry("ccdd", fakeEntryJSON("ccdd", 1, false)); e2.Hung {
		t.Fatal("hang=false peeked as hung")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	var evicted atomic.Uint64
	c := NewCache(cacheShards, "") // one entry per shard
	c.onEvict = func() { evicted.Add(1) }
	// Fill far past capacity; every shard must stay at its bound.
	const n = 10 * cacheShards
	for i := 0; i < n; i++ {
		fp := fmt.Sprintf("%016x", i)
		if err := c.Put(&Entry{InputFP: fp, ReportFP: "r", JSON: []byte("{}")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got > cacheShards {
		t.Fatalf("cache holds %d entries, capacity %d", got, cacheShards)
	}
	if int(evicted.Load())+c.Len() != n {
		t.Fatalf("evictions %d + resident %d != %d inserted", evicted.Load(), c.Len(), n)
	}
	// Refreshing an existing key must not evict.
	before := evicted.Load()
	for i := 0; i < cacheShards; i++ {
		fp := fmt.Sprintf("%016x", n-1-i)
		if e, ok := c.Get(fp); ok {
			c.Put(e)
		}
	}
	if evicted.Load() != before {
		t.Fatalf("refresh evicted %d entries", evicted.Load()-before)
	}
}

func TestCacheDiskSpill(t *testing.T) {
	dir := t.TempDir()
	var diskHits atomic.Uint64
	c := NewCache(cacheShards, dir)
	c.onDiskHit = func() { diskHits.Add(1) }
	fp := "00000000000000aa"
	e, err := newEntry(fp, fakeEntryJSON(fp, 3, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, fp+".json")); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	// A fresh cache over the same dir (cold memory tier) serves from disk
	// and re-admits.
	c2 := NewCache(cacheShards, dir)
	c2.onDiskHit = func() { diskHits.Add(1) }
	got, ok := c2.Get(fp)
	if !ok {
		t.Fatal("disk tier miss")
	}
	if got.ReportFP != e.ReportFP || got.Episodes != 3 {
		t.Fatalf("disk entry = %+v", got)
	}
	if diskHits.Load() != 1 {
		t.Fatalf("disk hits = %d, want 1", diskHits.Load())
	}
	// Second Get is a memory hit: no new disk read.
	if _, ok := c2.Get(fp); !ok {
		t.Fatal("re-admitted entry missing")
	}
	if diskHits.Load() != 1 {
		t.Fatalf("re-admission did not stick (disk hits %d)", diskHits.Load())
	}
	// Garbage on disk is ignored, not served.
	bad := "00000000000000bb"
	os.WriteFile(filepath.Join(dir, bad+".json"), []byte("not json"), 0o644)
	if _, ok := c2.Get(bad); ok {
		t.Fatal("corrupt spill file served")
	}
}

func TestFlightGroupDedup(t *testing.T) {
	var g flightGroup
	var calls atomic.Int32
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	sharedCount := atomic.Int32{}
	// One designated leader: its fn runs only after the flight is
	// registered, so once leaderIn closes every follower deterministically
	// joins the existing flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		e, shared, err := g.Do(context.Background(), "key", func() (*Entry, error) {
			calls.Add(1)
			close(leaderIn)
			<-release
			return &Entry{InputFP: "key"}, nil
		})
		if err != nil || e.InputFP != "key" || shared {
			t.Errorf("leader: e=%+v shared=%v err=%v", e, shared, err)
		}
	}()
	<-leaderIn
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, shared, err := g.Do(context.Background(), "key", func() (*Entry, error) {
				calls.Add(1)
				return &Entry{InputFP: "key"}, nil
			})
			if err != nil || e.InputFP != "key" {
				t.Errorf("follower: e=%+v err=%v", e, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Release only once every follower is provably blocked on the flight.
	for g.waiting("key") != n-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if sharedCount.Load() != n-1 {
		t.Fatalf("%d callers shared, want %d", sharedCount.Load(), n-1)
	}
	// After the flight lands, a new Do runs fresh.
	_, shared, _ := g.Do(context.Background(), "key", func() (*Entry, error) {
		calls.Add(1)
		return &Entry{InputFP: "key"}, nil
	})
	if shared || calls.Load() != 2 {
		t.Fatalf("post-flight Do: shared=%v calls=%d", shared, calls.Load())
	}
}

func TestFlightGroupFollowerCancel(t *testing.T) {
	var g flightGroup
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		e, shared, err := g.Do(context.Background(), "key", func() (*Entry, error) {
			close(leaderIn)
			<-release
			return &Entry{InputFP: "key"}, nil
		})
		if err != nil || shared || e.InputFP != "key" {
			t.Errorf("leader: e=%+v shared=%v err=%v", e, shared, err)
		}
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		e, shared, err := g.Do(ctx, "key", func() (*Entry, error) {
			t.Error("follower must not run fn")
			return nil, nil
		})
		if e != nil || !shared {
			t.Errorf("canceled follower: e=%+v shared=%v", e, shared)
		}
		followerErr <- err
	}()
	// Wait until the follower is provably parked on the flight, then pull
	// its context: it must return promptly with the context error while the
	// leader's flight is still in progress.
	for g.waiting("key") != 1 {
		runtime.Gosched()
	}
	cancel()
	if err := <-followerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	if w := g.waiting("key"); w != 0 {
		t.Fatalf("waiters after cancel = %d, want 0", w)
	}
	close(release)
	<-leaderDone
}
