package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// smokeSpec is the job the smoke test submits: the smallest real
// simulation the server can run (test-tier SYNTH on 8 cores).
const smokeSpec = "bench=SYNTH barrier=GL cores=8 tier=test"

// Smoke starts a real server on a loopback port, submits a test-tier job,
// waits for it, resubmits the identical spec and proves the second pass is
// a pure cache hit: no new simulation, cache.hits counts every cell, and
// the served report bytes are identical. It is the end-to-end gate `make
// serve-smoke` runs in CI — a few seconds, no fixtures.
func Smoke(out io.Writer) error {
	srv := NewServer(Options{ConcurrentJobs: 1, CacheEntries: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "serve-smoke: listening on %s\n", base)

	first, err := smokeJob(base)
	if err != nil {
		return err
	}
	stats, err := smokeStats(base)
	if err != nil {
		return err
	}
	simulated := stats.Counters[metricCellsSim]
	if simulated == 0 {
		return fmt.Errorf("serve-smoke: first job simulated nothing (%+v)", first)
	}
	cellFP := first.Cells[0].InputFP
	firstReport, err := smokeGet(base + "/v1/cells/" + cellFP)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serve-smoke: first run simulated %d cell(s), report fingerprint %s\n",
		simulated, first.Cells[0].ReportFP)

	second, err := smokeJob(base)
	if err != nil {
		return err
	}
	stats2, err := smokeStats(base)
	if err != nil {
		return err
	}
	if got := stats2.Counters[metricCellsSim]; got != simulated {
		return fmt.Errorf("serve-smoke: resubmission simulated again (%d -> %d); cache miss", simulated, got)
	}
	if hits := stats2.Counters[metricCacheHits]; hits < uint64(len(second.Cells)) {
		return fmt.Errorf("serve-smoke: cache hits %d < %d cells", hits, len(second.Cells))
	}
	for _, c := range second.Cells {
		if !c.Cached {
			return fmt.Errorf("serve-smoke: cell %s not served from cache", c.Label)
		}
	}
	secondReport, err := smokeGet(base + "/v1/cells/" + cellFP)
	if err != nil {
		return err
	}
	if !bytes.Equal(firstReport, secondReport) {
		return fmt.Errorf("serve-smoke: cached report bytes differ between fetches")
	}
	if q := stats2.Histograms[metricQueueWaitMs]; q.Count < 2 {
		return fmt.Errorf("serve-smoke: queue latency histogram observed %d jobs, want >= 2", q.Count)
	}
	fmt.Fprintf(out, "serve-smoke: resubmission was a pure cache hit (%d bytes byte-identical)\n", len(secondReport))
	fmt.Fprintln(out, "serve-smoke: PASS")
	hs.Shutdown(context.Background())
	return srv.Drain(context.Background())
}

// smokeJob submits smokeSpec and polls the job to a terminal state.
func smokeJob(base string) (jobResult, error) {
	body, _ := json.Marshal(map[string]string{"spec": smokeSpec})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobResult{}, err
	}
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return jobResult{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return jobResult{}, fmt.Errorf("serve-smoke: submit: HTTP %d", resp.StatusCode)
	}
	// Bounded poll: test-tier SYNTH takes well under a second.
	for i := 0; i < 600; i++ {
		raw, err := smokeGet(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return jobResult{}, err
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return jobResult{}, err
		}
		if st.State.terminal() {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.State != StateDone {
		return jobResult{}, fmt.Errorf("serve-smoke: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	raw, err := smokeGet(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		return jobResult{}, err
	}
	var res jobResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return jobResult{}, err
	}
	if len(res.Cells) == 0 {
		return jobResult{}, fmt.Errorf("serve-smoke: job %s has no cells", st.ID)
	}
	return res, nil
}

func smokeStats(base string) (metrics.Snapshot, error) {
	raw, err := smokeGet(base + "/v1/stats")
	if err != nil {
		return metrics.Snapshot{}, err
	}
	var s metrics.Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return metrics.Snapshot{}, err
	}
	return s, nil
}

func smokeGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve-smoke: GET %s: HTTP %d: %s", url, resp.StatusCode, raw)
	}
	return raw, nil
}
