package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve/hostfault"
	"repro/internal/sim"
)

// flakyRunner fails (or panics) the first `failures` calls per process,
// then succeeds with a template report.
type flakyRunner struct {
	failures int32
	panics   bool
	calls    atomic.Int32
	template *sim.Report
}

func newFlakyRunner(t *testing.T, failures int, panics bool) *flakyRunner {
	t.Helper()
	rep, err := RunCell(context.Background(), Cell{
		Bench: "SYNTH", Barrier: "GL", Cores: 8, Tier: "test",
		Threads: 8, MaxCycles: DefaultMaxCycles,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &flakyRunner{failures: int32(failures), panics: panics, template: rep}
}

func (f *flakyRunner) run(ctx context.Context, c Cell) (*sim.Report, error) {
	n := f.calls.Add(1)
	if n <= f.failures {
		if f.panics {
			panic(fmt.Sprintf("flaky runner crash %d", n))
		}
		return nil, fmt.Errorf("flaky runner failure %d", n)
	}
	return f.template, nil
}

// TestRetryRecoversFromPanics: a runner that crashes twice then succeeds
// completes the job — the recover guard converts each panic into a
// retryable error and backoff retries absorb them.
func TestRetryRecoversFromPanics(t *testing.T) {
	runner := newFlakyRunner(t, 2, true)
	srv, ts := testServer(t, Options{
		ConcurrentJobs: 1, CellWorkers: 1, Runner: runner.run,
		CellAttempts: 3, RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
	})
	st := postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test")
	st = waitTerminal(t, srv, st.ID)
	if st.State != StateDone {
		t.Fatalf("job: %+v", st)
	}
	if st.Retries != 2 {
		t.Fatalf("job retries = %d, want 2", st.Retries)
	}
	if len(st.Cells) != 1 || st.Cells[0].Retries != 2 {
		t.Fatalf("cell retries: %+v", st.Cells)
	}
	stats := srv.Stats()
	if got := stats.Counters[MetricCellPanics]; got != 2 {
		t.Fatalf("%s = %d, want 2", MetricCellPanics, got)
	}
	if got := stats.Counters[MetricCellRetries]; got != 2 {
		t.Fatalf("%s = %d, want 2", MetricCellRetries, got)
	}
	if got := stats.Counters[MetricCellsQuarantined]; got != 0 {
		t.Fatalf("%s = %d, want 0", MetricCellsQuarantined, got)
	}
}

// TestQuarantineLifecycle: a cell that never succeeds exhausts its
// attempts and is quarantined; resubmitting fails fast without touching
// the runner; clearing via DELETE /v1/quarantine/{fp} re-enables runs.
func TestQuarantineLifecycle(t *testing.T) {
	runner := newFlakyRunner(t, 2, false) // attempts 1..2 fail, 3+ would succeed
	srv, ts := testServer(t, Options{
		ConcurrentJobs: 1, CellWorkers: 1, Runner: runner.run,
		CellAttempts: 2, RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
	})
	st := postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test")
	st = waitTerminal(t, srv, st.ID)
	if st.State != StateFailed {
		t.Fatalf("poisoned job: %+v", st)
	}
	if !strings.Contains(st.Error, "quarantined after 2 attempt(s)") {
		t.Fatalf("job error = %q, want quarantine reason", st.Error)
	}
	if got := srv.Stats().Counters[MetricCellsQuarantined]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricCellsQuarantined, got)
	}

	var qlist struct {
		Quarantined []QuarantineInfo `json:"quarantined"`
	}
	if code := getJSON(t, ts.URL+"/v1/quarantine", &qlist); code != http.StatusOK {
		t.Fatalf("quarantine list: HTTP %d", code)
	}
	if len(qlist.Quarantined) != 1 || qlist.Quarantined[0].Attempts != 2 {
		t.Fatalf("quarantine list: %+v", qlist.Quarantined)
	}
	fp := qlist.Quarantined[0].FP

	// Fail-fast: the resubmitted job fails without another runner call.
	callsBefore := runner.calls.Load()
	st2 := postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test")
	st2 = waitTerminal(t, srv, st2.ID)
	if st2.State != StateFailed {
		t.Fatalf("fail-fast job: %+v", st2)
	}
	if got := runner.calls.Load(); got != callsBefore {
		t.Fatalf("quarantined cell re-ran: %d -> %d calls", callsBefore, got)
	}
	if got := srv.Stats().Counters[MetricQuarantineHits]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricQuarantineHits, got)
	}

	// Clear and rerun: the runner is past its failures now.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/quarantine/"+fp, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quarantine clear: HTTP %d", resp.StatusCode)
	}
	st3 := postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test")
	st3 = waitTerminal(t, srv, st3.ID)
	if st3.State != StateDone {
		t.Fatalf("post-clear job: %+v", st3)
	}
	// Clearing an unknown fingerprint is a 404.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/quarantine/ffff", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("clear unknown: HTTP %d", resp.StatusCode)
	}
}

// TestJobRetryBudget: a grid of poisoned cells stops retrying once the
// job's cross-cell budget is spent instead of serially burning every
// cell's full attempt schedule.
func TestJobRetryBudget(t *testing.T) {
	var calls atomic.Int32
	runner := func(ctx context.Context, c Cell) (*sim.Report, error) {
		return nil, fmt.Errorf("always failing (call %d)", calls.Add(1))
	}
	srv, ts := testServer(t, Options{
		ConcurrentJobs: 1, CellWorkers: 1, Runner: runner,
		CellAttempts: 4, JobRetryBudget: 2,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
	})
	st := postJob(t, ts.URL, "bench=SYNTH barrier=GL|CSW cores=8|16 tier=test")
	st = waitTerminal(t, srv, st.ID)
	if st.State != StateFailed {
		t.Fatalf("job: %+v", st)
	}
	if st.Retries != 2 {
		t.Fatalf("job retries = %d, want the budget (2)", st.Retries)
	}
	// 4 cells, 2 budgeted retries: at most 6 runner calls in total.
	if got := calls.Load(); got > 6 {
		t.Fatalf("runner calls = %d, want <= 6", got)
	}
	if got := srv.Stats().Counters[MetricCellRetries]; got != 2 {
		t.Fatalf("%s = %d, want 2", MetricCellRetries, got)
	}
}

// TestHostFaultExecInjection: a first-N exec.fail plan is absorbed by the
// retry loop, and the injector's fired ledger reconciles exactly with the
// retry metric (the conservation identity the chaos oracles rely on).
func TestHostFaultExecInjection(t *testing.T) {
	plan, err := hostfault.ParsePlan("seed=7,exec.fail#2")
	if err != nil {
		t.Fatal(err)
	}
	runner := newFlakyRunner(t, 0, false)
	srv, ts := testServer(t, Options{
		ConcurrentJobs: 1, CellWorkers: 1, Runner: runner.run,
		CellAttempts: 3, RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
		HostFaults: plan,
	})
	st := postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test")
	st = waitTerminal(t, srv, st.ID)
	if st.State != StateDone {
		t.Fatalf("job: %+v", st)
	}
	stats := srv.Stats()
	if got := stats.Counters[MetricCellRetries]; got != 2 {
		t.Fatalf("%s = %d, want 2", MetricCellRetries, got)
	}
}

// TestBackoffDelay: deterministic, exponential in shape, bounded by max,
// jittered within [d/2, d).
func TestBackoffDelay(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	var prev time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		d := backoffDelay(base, max, "fp-x", attempt)
		if d != backoffDelay(base, max, "fp-x", attempt) {
			t.Fatalf("attempt %d: not deterministic", attempt)
		}
		full := base << uint(attempt-1)
		if full <= 0 || full > max {
			full = max
		}
		if d < full/2 || d >= full {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, full/2, full)
		}
		if attempt >= 4 && d > max {
			t.Fatalf("attempt %d: delay %v exceeds max %v", attempt, d, max)
		}
		prev = d
	}
	_ = prev
	if a, b := backoffDelay(base, max, "fp-x", 2), backoffDelay(base, max, "fp-y", 2); a == b {
		t.Fatalf("distinct fingerprints produced identical jitter %v", a)
	}
}

// TestRecoverMiddleware: a panicking handler becomes a 500 JSON error and
// a counted panic instead of a dropped connection.
func TestRecoverMiddleware(t *testing.T) {
	srv := NewServer(Options{ConcurrentJobs: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	h := srv.recoverHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	var body struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, ts.URL+"/boom", &body); code != http.StatusInternalServerError {
		t.Fatalf("HTTP %d, want 500", code)
	}
	if body.Error == "" {
		t.Fatal("500 body missing error field")
	}
	if got := srv.Stats().Counters[MetricHTTPPanics]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricHTTPPanics, got)
	}
}

// TestSSEHeartbeat: with a long snapshot interval and a short heartbeat,
// the events stream carries comment heartbeats while the job runs — and
// the stream survives a RequestTimeout far shorter than its lifetime
// (the SSE route is exempt from the timeout handler).
func TestSSEHeartbeat(t *testing.T) {
	runner := newBlockingRunner(t)
	srv, ts := testServer(t, Options{
		ConcurrentJobs: 1, CellWorkers: 1, Runner: runner.run,
		WatchInterval:  10 * time.Second,
		SSEHeartbeat:   10 * time.Millisecond,
		RequestTimeout: 50 * time.Millisecond,
	})
	st := postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test")
	<-runner.started

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	var got strings.Builder
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(got.String(), ": heartbeat") && time.Now().Before(deadline) {
		n, err := resp.Body.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(got.String(), ": heartbeat") {
		t.Fatalf("no heartbeat in stream:\n%s", got.String())
	}
	// The stream outlived RequestTimeout by virtue of the heartbeats above
	// (reading them took > 10ms > nothing, and the connection is open).
	close(runner.release)
	waitTerminal(t, srv, st.ID)
	// Non-streaming routes still answer under the timeout handler.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz under timeout handler: HTTP %d", code)
	}
}
