package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestJournalRoundTrip: records survive a close/reopen cycle, terminal
// jobs are compacted away, and the id high-water mark is recovered.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, pending, maxID, torn, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 || maxID != 0 || torn != 0 {
		t.Fatalf("fresh journal: pending=%v maxID=%d torn=%d", pending, maxID, torn)
	}
	must := func(rec journalRecord) {
		t.Helper()
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(journalRecord{T: journalSubmitted, ID: "j1", Spec: "spec-one"})
	must(journalRecord{T: journalStarted, ID: "j1"})
	must(journalRecord{T: journalTerminal, ID: "j1", State: StateDone})
	must(journalRecord{T: journalSubmitted, ID: "j2", Spec: "spec-two"})
	must(journalRecord{T: journalSubmitted, ID: "j7", Spec: "spec-seven"})
	if j.Records() != 5 {
		t.Fatalf("records = %d, want 5", j.Records())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord{T: journalStarted, ID: "j2"}); err == nil {
		t.Fatal("append after close succeeded")
	}

	j2, pending, maxID, torn, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if torn != 0 {
		t.Fatalf("torn = %d, want 0", torn)
	}
	if maxID != 7 {
		t.Fatalf("maxID = %d, want 7", maxID)
	}
	want := []PendingJob{{ID: "j2", Spec: "spec-two"}, {ID: "j7", Spec: "spec-seven"}}
	if len(pending) != len(want) {
		t.Fatalf("pending = %+v, want %+v", pending, want)
	}
	for i := range want {
		if pending[i] != want[i] {
			t.Fatalf("pending[%d] = %+v, want %+v", i, pending[i], want[i])
		}
	}
	// Compaction dropped the terminal job: the file holds the id mark plus
	// the two pending submissions.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(raw), "\n"); lines != 3 {
		t.Fatalf("compacted journal has %d lines, want 3:\n%s", lines, raw)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial line; open
// tolerates it, reports it, and compaction scrubs it.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord{T: journalSubmitted, ID: "j1", Spec: "spec-one"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate the torn tail: half a frame, no newline discipline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("deadbeef {\"t\":\"submi")
	f.Close()

	j2, pending, _, torn, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if torn != 1 {
		t.Fatalf("torn = %d, want 1", torn)
	}
	if len(pending) != 1 || pending[0].ID != "j1" {
		t.Fatalf("pending = %+v", pending)
	}
	// The compacted file is clean: reopening reports no torn lines.
	j3, _, _, torn, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if torn != 0 {
		t.Fatalf("torn after compaction = %d, want 0", torn)
	}
}

// TestJournalCorruptLineStopsTrust: a bit-flipped line in the middle
// invalidates everything after it — later records may be framing debris.
func TestJournalCorruptLineStopsTrust(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRecord{T: journalSubmitted, ID: "j1", Spec: "spec-one"})
	j.Append(journalRecord{T: journalSubmitted, ID: "j2", Spec: "spec-two"})
	j.Append(journalRecord{T: journalTerminal, ID: "j1", State: StateDone})
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the second line's JSON.
	lines := strings.SplitAfter(string(raw), "\n")
	lines[1] = strings.Replace(lines[1], "spec-two", "spec-tw0", 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, pending, _, torn, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	// Lines 2 and 3 are both dropped: j1 never saw its terminal record, so
	// it is (conservatively) pending again — re-execution is safe.
	if torn != 2 {
		t.Fatalf("torn = %d, want 2", torn)
	}
	if len(pending) != 1 || pending[0].ID != "j1" {
		t.Fatalf("pending = %+v, want j1 only", pending)
	}
}

// TestServerJournalReplay: an abandoned server's unfinished jobs replay on
// the next server with ids preserved, the id sequence continues past them,
// and completed jobs stay completed.
func TestServerJournalReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")

	// Server A: one job finishes, one is still running when the "crash"
	// happens (we simply abandon A without draining).
	runnerA := newBlockingRunner(t)
	a := NewServer(Options{ConcurrentJobs: 2, CellWorkers: 1, Runner: runnerA.run})
	if _, err := a.AttachJournal(path); err != nil {
		t.Fatal(err)
	}
	j1, err := a.Submit("bench=SYNTH barrier=GL cores=8 tier=test")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := a.Submit("bench=SYNTH barrier=CSW cores=8 tier=test")
	if err != nil {
		t.Fatal(err)
	}
	<-runnerA.started
	<-runnerA.started
	close(runnerA.release)
	waitTerminal(t, a, j1.id)
	waitTerminal(t, a, j2.id)

	// Both terminal: replay finds nothing pending.
	b := NewServer(Options{ConcurrentJobs: 1, CellWorkers: 1})
	replayed, err := b.AttachJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("replayed = %d, want 0 (all jobs terminal)", replayed)
	}

	// Submit to B, then abandon it mid-run: C must replay exactly that job
	// with its id preserved and its result byte-identical to a clean run.
	runnerB := newBlockingRunner(t)
	b2 := NewServer(Options{ConcurrentJobs: 1, CellWorkers: 1, Runner: runnerB.run})
	if _, err := b2.AttachJournal(path); err != nil {
		t.Fatal(err)
	}
	jb, err := b2.Submit("bench=SYNTH barrier=GL cores=16 tier=test")
	if err != nil {
		t.Fatal(err)
	}
	if jb.id != "j3" {
		t.Fatalf("id after replayed high-water mark = %s, want j3", jb.id)
	}
	<-runnerB.started // the job is started (and journaled as such), now "crash"

	c := NewServer(Options{ConcurrentJobs: 1, CellWorkers: 1})
	replayed, err = c.AttachJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Fatalf("replayed = %d, want 1", replayed)
	}
	jc, ok := c.Job("j3")
	if !ok {
		t.Fatal("replayed job j3 missing")
	}
	st := waitTerminal(t, c, "j3")
	if st.State != StateDone {
		t.Fatalf("replayed job: %+v", st)
	}
	if st.Spec != "bench=SYNTH barrier=GL cores=16 tier=test" {
		t.Fatalf("replayed spec = %q", st.Spec)
	}
	_ = jc
	if got := c.Stats().Counters[MetricJournalReplayed]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricJournalReplayed, got)
	}
	// A fresh submission on C continues the sequence after the replayed id.
	j4, err := c.Submit("bench=SYNTH barrier=CSW cores=16 tier=test")
	if err != nil {
		t.Fatal(err)
	}
	if j4.id != "j4" {
		t.Fatalf("next id = %s, want j4", j4.id)
	}
	waitTerminal(t, c, j4.id)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Drain closed the journal; the next open sees a fully terminal log.
	_, pending, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("pending after drained server = %+v", pending)
	}

	// Cleanup for the abandoned servers (their executors are blocked or
	// idle; cancel everything so goroutines unwind).
	close(runnerB.release)
	for _, s := range []*Server{a, b, b2} {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		s.Drain(ctx)
		cancel()
	}
}

// TestJournalReplayBadSpec: a journaled spec that no longer parses is
// terminally failed in the journal (so it never replays again) instead of
// wedging recovery.
func TestJournalReplayBadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRecord{T: journalSubmitted, ID: "j1", Spec: "bench=NOPE nonsense"})
	j.Close()

	s := NewServer(Options{ConcurrentJobs: 1})
	replayed, err := s.AttachJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("replayed = %d, want 0", replayed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Drain(ctx)

	_, pending, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("bad-spec job still pending: %+v", pending)
	}
}
