package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sync"

	"repro/internal/metrics"
)

// Entry is one cached simulation result: the report's rendered JSON plus
// the handful of fields the server needs without re-parsing (progress
// aggregation, watchdog state, the determinism fingerprint echoed to
// clients). Entries are immutable once built — shared freely across jobs
// and requests.
type Entry struct {
	// InputFP is the content address (sim.InputSpec.Fingerprint).
	InputFP string
	// ReportFP is the report's output-side determinism fingerprint.
	ReportFP string
	// JSON is the report as rendered by sim.Report.JSON, byte-identical
	// for every client that ever asks for this input.
	JSON []byte
	// Episodes is the run's barrier-episode count.
	Episodes uint64
	// GLLatency and SWLatency are the barrier latency histograms (either
	// may be zero depending on the barrier kind).
	GLLatency metrics.HistogramSnapshot
	SWLatency metrics.HistogramSnapshot
	// Hung records whether the run ended in a watchdog hang dump.
	Hung bool
}

// entryPeek is the slice of the report JSON the cache needs; decoding into
// a local struct keeps the full report opaque.
type entryPeek struct {
	Episodes    uint64          `json:"barrier_episodes"`
	Fingerprint string          `json:"fingerprint"`
	Hang        json.RawMessage `json:"hang"`
	Metrics     struct {
		Histograms map[string]metrics.HistogramSnapshot `json:"histograms"`
	} `json:"metrics"`
}

// newEntry builds an Entry from a report's rendered JSON.
func newEntry(inputFP string, raw []byte) (*Entry, error) {
	var peek entryPeek
	if err := json.Unmarshal(raw, &peek); err != nil {
		return nil, fmt.Errorf("serve: cache entry %s: %w", inputFP, err)
	}
	return &Entry{
		InputFP:   inputFP,
		ReportFP:  peek.Fingerprint,
		JSON:      raw,
		Episodes:  peek.Episodes,
		GLLatency: peek.Metrics.Histograms["barrier.gl.latency"],
		SWLatency: peek.Metrics.Histograms["barrier.sw.latency"],
		Hung:      len(peek.Hang) > 0 && string(peek.Hang) != "null",
	}, nil
}

// cacheShards keeps lock contention low without per-entry locks; the shard
// is picked by fingerprint hash, so distribution is uniform by
// construction.
const cacheShards = 16

// Cache is the content-addressed result store: a sharded in-memory LRU
// over input fingerprints with an optional write-through disk spill. An
// entry evicted from memory but spilled to disk is transparently re-read
// (and re-admitted) on the next Get, so the effective capacity is the
// disk, with the LRU as the hot set.
type Cache struct {
	shards [cacheShards]cacheShard
	// dir is the spill directory; empty disables the disk tier.
	dir string
	// perShard is the per-shard entry capacity.
	perShard int
	// fs is the disk-spill filesystem seam (osFS outside tests and
	// host-fault runs).
	fs spillFS

	// onEvict, onDiskHit are metric hooks (may be nil).
	onEvict   func()
	onDiskHit func()
}

type cacheShard struct {
	mu sync.Mutex
	// order: front = most recent; values are *Entry.
	//glvet:guardedby mu
	order *list.List
	//glvet:guardedby mu
	byFP map[string]*list.Element
}

// NewCache builds a cache holding at least maxEntries reports in memory
// (rounded up to a multiple of the shard count; <= 0 means 1024). dir,
// when non-empty, enables the write-through disk tier and is created on
// first use.
func NewCache(maxEntries int, dir string) *Cache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	per := (maxEntries + cacheShards - 1) / cacheShards
	c := &Cache{dir: dir, perShard: per, fs: osFS{}}
	for i := range c.shards {
		c.shards[i].order = list.New()
		c.shards[i].byFP = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shard(fp string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(fp))
	return &c.shards[h.Sum32()%cacheShards]
}

// Get returns the entry for fp, consulting memory then disk. A disk hit
// is re-admitted to the memory tier.
func (c *Cache) Get(fp string) (*Entry, bool) {
	s := c.shard(fp)
	s.mu.Lock()
	if el, ok := s.byFP[fp]; ok {
		s.order.MoveToFront(el)
		e := el.Value.(*Entry)
		s.mu.Unlock()
		return e, true
	}
	s.mu.Unlock()
	if c.dir == "" {
		return nil, false
	}
	raw, err := c.fs.ReadFile(c.spillPath(fp))
	if err != nil {
		return nil, false
	}
	e, err := newEntry(fp, raw)
	if err != nil || e.ReportFP == "" {
		// A truncated or foreign file is not a result; ignore it.
		return nil, false
	}
	if c.onDiskHit != nil {
		c.onDiskHit()
	}
	c.admit(e)
	return e, true
}

// Put stores the entry in memory and, when the disk tier is enabled,
// spills it write-through (temp file + rename, so readers never observe a
// torn write). Spill failures are returned but the memory tier still
// holds the entry — the cache degrades, it does not fail the job.
func (c *Cache) Put(e *Entry) error {
	c.admit(e)
	if c.dir == "" {
		return nil
	}
	if err := c.fs.MkdirAll(c.dir); err != nil {
		return fmt.Errorf("serve: cache spill: %w", err)
	}
	tmp, err := c.fs.WriteTemp(c.dir, e.JSON)
	if err != nil {
		return fmt.Errorf("serve: cache spill: %w", err)
	}
	if err := c.fs.Rename(tmp, c.spillPath(e.InputFP)); err != nil {
		c.fs.Remove(tmp)
		return fmt.Errorf("serve: cache spill: %w", err)
	}
	return nil
}

// admit inserts (or refreshes) the entry in its memory shard, evicting
// from the cold end past capacity.
func (c *Cache) admit(e *Entry) {
	s := c.shard(e.InputFP)
	s.mu.Lock()
	if el, ok := s.byFP[e.InputFP]; ok {
		s.order.MoveToFront(el)
		el.Value = e
		s.mu.Unlock()
		return
	}
	s.byFP[e.InputFP] = s.order.PushFront(e)
	var evicted int
	for s.order.Len() > c.perShard {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.byFP, back.Value.(*Entry).InputFP)
		evicted++
	}
	s.mu.Unlock()
	for i := 0; i < evicted; i++ {
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// Len returns the number of in-memory entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

func (c *Cache) spillPath(fp string) string {
	return filepath.Join(c.dir, fp+".json")
}

// flightGroup deduplicates concurrent computation of the same key: N
// callers asking for one fingerprint cost one simulation, with everyone
// sharing the leader's result. (The stdlib's singleflight lives in
// golang.org/x/sync; this is the same contract, scoped to what the server
// needs.)
type flightGroup struct {
	mu sync.Mutex
	//glvet:guardedby mu
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	waiters int
	e       *Entry
	err     error
}

// waiting reports how many followers are blocked on key's in-progress
// flight (0 when no flight is up) — test observability for the dedup
// window.
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.calls[key]; ok {
		return call.waiters
	}
	return 0
}

// Do runs fn for key unless a flight for key is already in progress, in
// which case it waits for that flight and shares its outcome. shared
// reports whether this caller got someone else's result. A follower whose
// ctx expires stops waiting and returns the context error; the leader's
// flight keeps running for any remaining waiters. The leader itself is
// not interrupted here — fn observes cancellation through its own context.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*Entry, error)) (e *Entry, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if call, ok := g.calls[key]; ok {
		call.waiters++
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.e, true, call.err
		case <-ctx.Done():
			g.mu.Lock()
			// The flight may have completed and been replaced by a newer
			// one for the same key; only un-count ourselves from ours.
			if g.calls[key] == call {
				call.waiters--
			}
			g.mu.Unlock()
			return nil, true, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	call.e, call.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(call.done)
	return call.e, false, call.err
}
