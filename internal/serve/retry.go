// Self-healing executor path: panic isolation, bounded retries with
// exponential backoff and deterministic jitter, and a poison-cell
// quarantine. The design mirrors core.Recovering one level up — the
// simulated barrier survives stuck-at lines with timeout retries and a
// software fallback; the host service survives crashing executors and
// flaky disks with attempt retries and a quarantine fallback. Re-running
// a cell is always safe because results are content-addressed: a
// recovered attempt resolves to byte-identical bytes or a pure cache hit.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/serve/hostfault"
	"repro/internal/sim"
)

// Retry defaults; see Options.
const (
	// DefaultCellAttempts is the per-cell attempt bound (1 run + 2
	// retries) before the cell is quarantined.
	DefaultCellAttempts = 3
	// DefaultRetryBase is the first backoff step.
	DefaultRetryBase = 25 * time.Millisecond
	// DefaultRetryMax caps one backoff sleep.
	DefaultRetryMax = 2 * time.Second
	// DefaultJobRetryBudget bounds total retries across one job's cells —
	// a grid of poisoned cells fails fast instead of serially burning
	// per-cell retries.
	DefaultJobRetryBudget = 16
)

func (o Options) cellAttempts() int {
	if o.CellAttempts > 0 {
		return o.CellAttempts
	}
	return DefaultCellAttempts
}

func (o Options) retryBase() time.Duration {
	if o.RetryBase > 0 {
		return o.RetryBase
	}
	return DefaultRetryBase
}

func (o Options) retryMax() time.Duration {
	if o.RetryMax > 0 {
		return o.RetryMax
	}
	return DefaultRetryMax
}

func (o Options) jobRetryBudget() int {
	if o.JobRetryBudget > 0 {
		return o.JobRetryBudget
	}
	return DefaultJobRetryBudget
}

// panicError is a cell attempt that crashed; the recover guard converts
// it into this retryable error instead of killing the executor goroutine
// (and with it the whole queue).
type panicError struct {
	cell  string
	value any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("serve: cell %s panicked: %v", p.cell, p.value)
}

// QuarantineError is the structured reason a poisoned cell fails with
// after exhausting its attempts. The job carrying the cell fails with
// this reason; subsequent jobs naming the same fingerprint fail fast
// until the quarantine entry is cleared.
type QuarantineError struct {
	FP       string
	Label    string
	Attempts int
	Reason   string
}

func (q *QuarantineError) Error() string {
	return fmt.Sprintf("serve: cell %s (fp %s) quarantined after %d attempt(s): %s",
		q.Label, q.FP, q.Attempts, q.Reason)
}

// errRetryBudget marks a job whose cross-cell retry budget ran out; the
// failing cell reports it instead of quarantining (the cell itself may be
// healthy — the job just spent its budget elsewhere).
var errRetryBudget = errors.New("serve: job retry budget exhausted")

// retryable reports whether a failed attempt is worth retrying.
// Cancellation is not (the caller is gone); everything else is — panics,
// injected host faults, and even deterministic failures, which simply
// exhaust their bounded attempts and land in quarantine with a structured
// reason instead of wedging the queue.
func retryable(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// QuarantineInfo is one quarantined fingerprint, surfaced via
// GET /v1/quarantine.
type QuarantineInfo struct {
	FP       string `json:"fp"`
	Label    string `json:"label"`
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason"`
	// SinceMillis is the quarantine time in server-monotonic milliseconds.
	SinceMillis int64 `json:"since_ms"`
}

// quarantineSet is the poison-cell registry: fingerprints that exhausted
// their retry attempts. Entries persist until cleared by an operator
// (DELETE /v1/quarantine/{fp}) — a poisoned input re-submitted in a loop
// must not re-burn its full retry schedule every time.
type quarantineSet struct {
	mu sync.Mutex
	//glvet:guardedby mu
	byFP map[string]QuarantineInfo
}

func (q *quarantineSet) add(info QuarantineInfo) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.byFP == nil {
		q.byFP = make(map[string]QuarantineInfo)
	}
	if _, ok := q.byFP[info.FP]; !ok {
		q.byFP[info.FP] = info
	}
}

func (q *quarantineSet) get(fp string) (QuarantineInfo, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	info, ok := q.byFP[fp]
	return info, ok
}

func (q *quarantineSet) clear(fp string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.byFP[fp]; !ok {
		return false
	}
	delete(q.byFP, fp)
	return true
}

func (q *quarantineSet) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.byFP)
}

// list snapshots the registry sorted by fingerprint.
func (q *quarantineSet) list() []QuarantineInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	fps := make([]string, 0, len(q.byFP))
	for fp := range q.byFP {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	out := make([]QuarantineInfo, 0, len(fps))
	for _, fp := range fps {
		out = append(out, q.byFP[fp])
	}
	return out
}

// backoffDelay computes the attempt's backoff: exponential from base,
// capped at max, with deterministic jitter hashed from (fp, attempt) —
// replays sleep identically, and a thundering herd of same-fp retries
// still decorrelates across attempts.
func backoffDelay(base, max time.Duration, fp string, attempt int) time.Duration {
	d := base << uint(attempt-1)
	if d <= 0 || d > max {
		d = max
	}
	// Jitter in [d/2, d): the top bit keeps the exponential shape.
	h := fnv64(fp) ^ uint64(attempt)*0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return time.Duration(half + h%half)
}

// fnv64 is FNV-1a over a string (stable across processes).
func fnv64(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// sleepBackoff waits out a backoff delay or the context, whichever ends
// first.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// callRunner executes one attempt with the panic guard: a crash inside
// the runner (or the simulator it drives) becomes a retryable error
// carrying the stack, not a dead executor. Host-fault exec sites fire
// here, inside the guard, keyed by the cell fingerprint — exactly where a
// real executor would crash, stall, or error.
func (s *Server) callRunner(ctx context.Context, cell Cell) (rep *sim.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.count(s.m.cellPanics, 1)
			err = &panicError{cell: cell.Label(), value: r, stack: debug.Stack()}
		}
	}()
	fp := cell.Fingerprint()
	if s.inj.Hit(hostfault.ExecSlow, fp) {
		time.Sleep(time.Duration(s.inj.SlowMillis()) * time.Millisecond)
	}
	if s.inj.Hit(hostfault.ExecPanic, fp) {
		panic(fmt.Sprintf("hostfault: injected executor panic (cell %s)", cell.Label()))
	}
	if s.inj.Hit(hostfault.ExecFail, fp) {
		return nil, fmt.Errorf("hostfault: injected executor failure (cell %s)", cell.Label())
	}
	runner := s.opts.Runner
	if runner == nil {
		runner = RunCell
	}
	return runner(ctx, cell)
}

// runCellOnce executes one attempt (as the flight leader) and admits the
// result into the cache.
func (s *Server) runCellOnce(ctx context.Context, cell Cell) (*Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", cell.Label(), err)
	}
	runStart := s.monoMs()
	rep, err := s.callRunner(ctx, cell)
	s.observe(s.m.cellRunMs, uint64(s.monoMs()-runStart))
	if err != nil {
		return nil, err
	}
	raw, err := rep.JSON()
	if err != nil {
		return nil, err
	}
	e, err := newEntry(cell.Fingerprint(), raw)
	if err != nil {
		return nil, err
	}
	s.count(s.m.cellsSim, 1)
	if perr := s.cache.Put(e); perr != nil {
		// Disk-tier degradation only; the entry is in memory.
		s.count(s.m.spillErrors, 1)
	}
	return e, nil
}

// runCellAttempts is the retry loop around runCellOnce: up to
// Options.CellAttempts attempts with backoff between them, drawing
// retries from the owning job's budget. Exhausting the attempts
// quarantines the fingerprint and fails with a QuarantineError.
func (s *Server) runCellAttempts(ctx context.Context, cell Cell, j *job) (*Entry, error) {
	fp := cell.Fingerprint()
	attempts := s.opts.cellAttempts()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if !j.takeRetry() {
				return nil, fmt.Errorf("%w after %d attempt(s) of cell %s: %v",
					errRetryBudget, a, cell.Label(), lastErr)
			}
			s.count(s.m.cellRetries, 1)
			j.noteRetry(fp)
			if err := sleepBackoff(ctx, backoffDelay(s.opts.retryBase(), s.opts.retryMax(), fp, a)); err != nil {
				return nil, err
			}
		}
		e, err := s.runCellOnce(ctx, cell)
		if err == nil {
			return e, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
	}
	qerr := &QuarantineError{
		FP:       fp,
		Label:    cell.Label(),
		Attempts: attempts,
		Reason:   lastErr.Error(),
	}
	s.quarantine.add(QuarantineInfo{
		FP:          fp,
		Label:       cell.Label(),
		Attempts:    attempts,
		Reason:      lastErr.Error(),
		SinceMillis: s.monoMs(),
	})
	s.count(s.m.cellsQuarantined, 1)
	return nil, qerr
}
