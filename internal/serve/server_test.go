package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// testServer wires a Server to an httptest frontend.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv, ts
}

func postJob(t *testing.T, base, spec string) JobStatus {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"spec": spec})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%+v)", resp.StatusCode, st)
	}
	return st
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitTerminal blocks until the job finishes (or the test times out).
func waitTerminal(t *testing.T, srv *Server, id string) JobStatus {
	t.Helper()
	j, ok := srv.Job(id)
	if !ok {
		t.Fatalf("no job %s", id)
	}
	select {
	case <-j.finished:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish: %+v", id, j.status())
	}
	return j.status()
}

// TestServerEndToEndCacheHit runs a real two-cell sweep twice over HTTP
// and proves the second submission is a pure cache hit: zero new
// simulations, every cell served from cache, byte-identical report bytes.
func TestServerEndToEndCacheHit(t *testing.T) {
	srv, ts := testServer(t, Options{ConcurrentJobs: 1, CellWorkers: 2})
	const spec = "bench=SYNTH barrier=GL|CSW cores=8 tier=test"

	st1 := postJob(t, ts.URL, spec)
	st1 = waitTerminal(t, srv, st1.ID)
	if st1.State != StateDone {
		t.Fatalf("first job: %+v", st1)
	}
	if st1.Simulated != 2 || st1.CacheHits != 0 {
		t.Fatalf("first job simulated=%d cacheHits=%d, want 2/0", st1.Simulated, st1.CacheHits)
	}
	if st1.Episodes == 0 || st1.GLLatency.Count == 0 || st1.SWLatency.Count == 0 {
		t.Fatalf("aggregates missing: episodes=%d gl=%d sw=%d",
			st1.Episodes, st1.GLLatency.Count, st1.SWLatency.Count)
	}
	statsBefore := srv.Stats()

	var res1 jobResult
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st1.ID+"/result", &res1); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}

	st2 := postJob(t, ts.URL, spec)
	st2 = waitTerminal(t, srv, st2.ID)
	if st2.State != StateDone {
		t.Fatalf("second job: %+v", st2)
	}
	if st2.Simulated != 0 || st2.CacheHits != 2 {
		t.Fatalf("second job simulated=%d cacheHits=%d, want 0/2", st2.Simulated, st2.CacheHits)
	}
	for _, c := range st2.Cells {
		if !c.Cached {
			t.Errorf("cell %s not cached", c.Label)
		}
	}
	stats := srv.Stats()
	if got, before := stats.Counters[metricCellsSim], statsBefore.Counters[metricCellsSim]; got != before {
		t.Fatalf("resubmission simulated: %d -> %d", before, got)
	}
	if hits := stats.Counters[metricCacheHits] - statsBefore.Counters[metricCacheHits]; hits != 2 {
		t.Fatalf("cache hits grew by %d, want 2", hits)
	}
	if stats.Histograms[metricQueueWaitMs].Count != 2 {
		t.Fatalf("queue wait histogram count = %d, want 2", stats.Histograms[metricQueueWaitMs].Count)
	}

	// Result documents agree byte-for-byte per cell, and the cell endpoint
	// serves verbatim bytes both times.
	var res2 jobResult
	getJSON(t, ts.URL+"/v1/jobs/"+st2.ID+"/result", &res2)
	for i := range res1.Cells {
		if !bytes.Equal(res1.Cells[i].Report, res2.Cells[i].Report) {
			t.Errorf("cell %s report bytes differ between submissions", res1.Cells[i].Label)
		}
		if res1.Cells[i].ReportFP == "" || res1.Cells[i].ReportFP != res2.Cells[i].ReportFP {
			t.Errorf("cell %s report fingerprints: %q vs %q",
				res1.Cells[i].Label, res1.Cells[i].ReportFP, res2.Cells[i].ReportFP)
		}
		raw1 := fetchCell(t, ts.URL, res1.Cells[i].InputFP)
		raw2 := fetchCell(t, ts.URL, res1.Cells[i].InputFP)
		if !bytes.Equal(raw1, raw2) {
			t.Errorf("cell endpoint bytes differ across fetches")
		}
		var echo struct {
			Fingerprint string `json:"fingerprint"`
		}
		if err := json.Unmarshal(raw1, &echo); err != nil || echo.Fingerprint != res1.Cells[i].ReportFP {
			t.Errorf("cell endpoint fingerprint %q, want %q (err %v)", echo.Fingerprint, res1.Cells[i].ReportFP, err)
		}
	}
}

func fetchCell(t *testing.T, base, fp string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/cells/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cell %s: HTTP %d", fp, resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes()
}

// blockingRunner counts executions and blocks each one until released.
type blockingRunner struct {
	mu       sync.Mutex
	started  chan string // receives a label as each run enters
	release  chan struct{}
	runs     atomic.Int32
	template *sim.Report
}

func newBlockingRunner(t *testing.T) *blockingRunner {
	t.Helper()
	// One real tiny report serves as the template result for every fake
	// run; Report marshaling is read-only, so sharing is safe.
	rep, err := RunCell(context.Background(), Cell{
		Bench: "SYNTH", Barrier: "GL", Cores: 8, Tier: "test",
		Threads: 8, MaxCycles: DefaultMaxCycles,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &blockingRunner{
		started:  make(chan string, 64),
		release:  make(chan struct{}),
		template: rep,
	}
}

func (b *blockingRunner) run(ctx context.Context, c Cell) (*sim.Report, error) {
	b.runs.Add(1)
	b.started <- c.Label()
	select {
	case <-b.release:
		return b.template, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestSingleFlightConcurrentSubmissions submits N identical jobs
// concurrently and proves exactly one simulation executes, with every
// other cell either sharing the flight or hitting the cache.
func TestSingleFlightConcurrentSubmissions(t *testing.T) {
	runner := newBlockingRunner(t)
	srv, ts := testServer(t, Options{ConcurrentJobs: 8, CellWorkers: 2, Runner: runner.run})
	const n = 5
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[i] = postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test").ID
		}()
	}
	wg.Wait()
	// The leader is inside the runner; wait for it, then release everyone.
	<-runner.started
	close(runner.release)

	var simulated, cached, shared int
	for _, id := range ids {
		st := waitTerminal(t, srv, id)
		if st.State != StateDone {
			t.Fatalf("job %s: %+v", id, st)
		}
		c := st.Cells[0]
		if c.ReportFP == "" {
			t.Fatalf("job %s has no report fingerprint", id)
		}
		switch {
		case c.Cached:
			cached++
		case c.SharedFlight:
			shared++
		default:
			simulated++
		}
	}
	if got := runner.runs.Load(); got != 1 {
		t.Fatalf("runner executed %d times for %d identical submissions, want 1", got, n)
	}
	if simulated != 1 || cached+shared != n-1 {
		t.Fatalf("simulated=%d cached=%d shared=%d, want 1 and %d combined", simulated, cached, shared, n-1)
	}
	stats := srv.Stats()
	if stats.Counters[metricCellsSim] != 1 {
		t.Fatalf("cells.simulated = %d, want 1", stats.Counters[metricCellsSim])
	}
	if stats.Counters[metricFlightShared] != uint64(shared) {
		t.Fatalf("flight.shared metric %d != %d shared cells", stats.Counters[metricFlightShared], shared)
	}
}

// TestCancelMidJob cancels a job whose only cell is blocked inside the
// runner and checks the job terminates promptly as canceled, with the
// late runner result dropped.
func TestCancelMidJob(t *testing.T) {
	runner := newBlockingRunner(t)
	srv, ts := testServer(t, Options{ConcurrentJobs: 1, CellWorkers: 1, Runner: runner.run})
	st := postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test")
	<-runner.started // the cell is in flight

	resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}

	final := waitTerminal(t, srv, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state %s, want canceled", final.State)
	}
	if cs := final.Cells[0].State; !cs.terminal() {
		t.Fatalf("cell state %s not terminal", cs)
	}
	// Releasing the abandoned runner later must not corrupt the job.
	close(runner.release)
	time.Sleep(20 * time.Millisecond)
	again := waitTerminal(t, srv, st.ID)
	if again.State != StateCanceled || again.CellsDone != final.CellsDone {
		t.Fatalf("late runner result mutated a terminal job: %+v -> %+v", final, again)
	}
	// A second cancel reports conflict.
	resp2, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: HTTP %d, want 409", resp2.StatusCode)
	}
}

// TestResultConflictBeforeTerminal asserts /result answers 409 while the
// job is still running.
func TestResultConflictBeforeTerminal(t *testing.T) {
	runner := newBlockingRunner(t)
	srv, ts := testServer(t, Options{ConcurrentJobs: 1, CellWorkers: 1, Runner: runner.run})
	st := postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test")
	<-runner.started
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result while running: HTTP %d, want 409", code)
	}
	close(runner.release)
	if got := waitTerminal(t, srv, st.ID); got.State != StateDone {
		t.Fatalf("job: %+v", got)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", nil); code != http.StatusOK {
		t.Fatalf("result when done: HTTP %d", code)
	}
	_ = srv
}

// TestEventsStream reads the SSE endpoint to the terminal event.
func TestEventsStream(t *testing.T) {
	runner := newBlockingRunner(t)
	srv, ts := testServer(t, Options{
		ConcurrentJobs: 1, CellWorkers: 1, Runner: runner.run,
		WatchInterval: 10 * time.Millisecond,
	})
	st := postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test")
	<-runner.started

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(runner.release)
	}()
	var events []string
	var last JobStatus
	done := false
	sc := bufio.NewScanner(resp.Body)
	for !done && sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, name)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(data), &last); err != nil {
				t.Fatalf("bad event payload %q: %v", data, err)
			}
			// The data line completes the pending event; stop after the
			// terminal one's payload.
			done = len(events) > 0 && events[len(events)-1] == "done"
		}
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("events = %v, want trailing done", events)
	}
	if last.State != StateDone || last.Episodes == 0 {
		t.Fatalf("final event: %+v", last)
	}
	waitTerminal(t, srv, st.ID)
}

// TestDrain: in-flight and queued jobs finish, new submissions are
// rejected with 503, healthz flips to draining.
func TestDrain(t *testing.T) {
	srv := NewServer(Options{ConcurrentJobs: 1, CellWorkers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st1 := postJob(t, ts.URL, "bench=SYNTH barrier=GL cores=8 tier=test")
	st2 := postJob(t, ts.URL, "bench=SYNTH barrier=CSW cores=8 tier=test")

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// Submissions during drain bounce with 503. Drain may win the race to
	// set the flag after the goroutine starts, so poll until observed.
	deadline := time.After(10 * time.Second)
	for {
		body, _ := json.Marshal(map[string]string{"spec": "bench=SYNTH cores=8 tier=test"})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		select {
		case <-deadline:
			t.Fatal("drain never started rejecting submissions")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{st1.ID, st2.ID} {
		j, _ := srv.Job(id)
		if got := j.status(); got.State != StateDone {
			t.Fatalf("job %s after drain: %+v", id, got)
		}
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: HTTP %d, want 503", code)
	}
}

// TestSubmitValidation: bad specs are rejected with 400 and counted.
func TestSubmitValidation(t *testing.T) {
	srv, ts := testServer(t, Options{ConcurrentJobs: 1})
	body, _ := json.Marshal(map[string]string{"spec": "bench=NOPE"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: HTTP %d", resp.StatusCode)
	}
	if srv.Stats().Counters[metricJobsRejected] != 1 {
		t.Fatalf("jobs.rejected = %d, want 1", srv.Stats().Counters[metricJobsRejected])
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/zzz", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/cells/ffffffffffffffff", nil); code != http.StatusNotFound {
		t.Fatalf("unknown cell: HTTP %d", code)
	}
}

func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke exercises the full loopback server")
	}
	var buf bytes.Buffer
	if err := Smoke(&buf); err != nil {
		t.Fatalf("smoke: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatalf("smoke output missing PASS:\n%s", buf.String())
	}
}
