package serve

import (
	"errors"
	"os"

	"repro/internal/serve/hostfault"
)

// spillFS is the cache's filesystem seam: every disk-spill operation goes
// through it, so tests (and the host-fault injector) can fail or corrupt
// the disk tier without touching the real filesystem semantics. The
// default implementation is osFS.
type spillFS interface {
	// MkdirAll ensures the spill directory exists.
	MkdirAll(dir string) error
	// ReadFile reads one spill file.
	ReadFile(name string) ([]byte, error)
	// WriteTemp creates a temp file in dir, writes data, closes it, and
	// returns the temp path.
	WriteTemp(dir string, data []byte) (string, error)
	// Rename publishes a temp file at its final path.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (cleanup of failed writes).
	Remove(name string) error
}

// osFS is the real-filesystem spillFS.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteTemp(dir string, data []byte) (string, error) {
	tmp, err := os.CreateTemp(dir, "spill-*.tmp")
	if err != nil {
		return "", err
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return "", werr
	}
	return tmp.Name(), nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

// errInjectedFS marks host-fault-injected spill failures; errors.Is lets
// tests and oracles tell injected degradation from real disk trouble.
var errInjectedFS = errors.New("hostfault: injected spill fault")

// faultFS wraps a spillFS with the host-fault injector: reads fail or
// come back corrupted, writes and renames fail, per the plan's spill
// sites. Decisions are keyed by the file path, so one fingerprint's spill
// schedule is independent of every other's.
type faultFS struct {
	fs  spillFS
	inj *hostfault.Injector
}

func (f faultFS) MkdirAll(dir string) error { return f.fs.MkdirAll(dir) }

func (f faultFS) ReadFile(name string) ([]byte, error) {
	if f.inj.Hit(hostfault.SpillReadFail, name) {
		return nil, errInjectedFS
	}
	raw, err := f.fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if f.inj.Hit(hostfault.SpillCorrupt, name) {
		return hostfault.Corrupt(raw), nil
	}
	return raw, nil
}

func (f faultFS) WriteTemp(dir string, data []byte) (string, error) {
	if f.inj.Hit(hostfault.SpillWriteFail, dir) {
		return "", errInjectedFS
	}
	return f.fs.WriteTemp(dir, data)
}

func (f faultFS) Rename(oldpath, newpath string) error {
	if f.inj.Hit(hostfault.SpillRenameFail, newpath) {
		return errInjectedFS
	}
	return f.fs.Rename(oldpath, newpath)
}

func (f faultFS) Remove(name string) error { return f.fs.Remove(name) }
