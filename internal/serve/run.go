package serve

import (
	"context"

	"repro/internal/sim"
	"repro/internal/workload"
)

// RunCell is the default CellRunner: a fresh system per cell, the ring
// attached for hang dumps, the workload run to completion. The simulator
// core is not interruptible mid-run — cancellation is handled one level
// up, where internal/sweep abandons the goroutine and the eventual result
// still lands in the cache (work already paid for is never discarded).
func RunCell(ctx context.Context, c Cell) (*sim.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	in := c.Input()
	bench, err := workload.ByName(c.Bench, c.Tier)
	if err != nil {
		return nil, err
	}
	sys, err := sim.New(in.Config)
	if err != nil {
		return nil, err
	}
	// The ring gives the watchdog protocol history to dump on a hang;
	// unread tracing is lazy and near-free.
	sys.AttachRing(256)
	return workload.Run(sys, bench, c.Barrier, c.Threads, c.MaxCycles)
}
