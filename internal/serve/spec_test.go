package serve

import (
	"strings"
	"testing"

	"repro/internal/barrier"
	"repro/internal/workload"
)

func TestParseJobSpecDefaults(t *testing.T) {
	spec, err := ParseJobSpec("")
	if err != nil {
		t.Fatal(err)
	}
	cells := spec.Cells()
	if len(cells) != 1 {
		t.Fatalf("default spec expands to %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Bench != "SYNTH" || c.Barrier != barrier.KindGL || c.Cores != 32 ||
		c.Seed != 0 || c.Tier != workload.TierTest || c.Threads != 32 ||
		c.MaxCycles != DefaultMaxCycles {
		t.Fatalf("default cell = %+v", c)
	}
}

func TestParseJobSpecGrid(t *testing.T) {
	spec, err := ParseJobSpec("bench=SYNTH|KERN2 barrier=GL|CSW cores=16|32 seed=0|7 tier=test")
	if err != nil {
		t.Fatal(err)
	}
	cells := spec.Cells()
	if len(cells) != 16 {
		t.Fatalf("grid expands to %d cells, want 16", len(cells))
	}
	// Deterministic order: bench outer, then barrier, cores, seed.
	if got := cells[0].Label(); got != "SYNTH/GL/16" {
		t.Errorf("cells[0] = %s", got)
	}
	if got := cells[1].Label(); got != "SYNTH/GL/16/seed7" {
		t.Errorf("cells[1] = %s", got)
	}
	if got := cells[15].Label(); got != "KERN2/CSW/32/seed7" {
		t.Errorf("cells[15] = %s", got)
	}
	// Every cell fingerprint is distinct: the grid has no duplicate inputs.
	seen := map[string]string{}
	for _, c := range cells {
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("cells %s and %s share fingerprint %s", prev, c.Label(), fp)
		}
		seen[fp] = c.Label()
	}
}

func TestParseJobSpecFaults(t *testing.T) {
	spec, err := ParseJobSpec("bench=SYNTH cores=8 tier=test faults=seed=7,gl.drop=1e-4")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Faults == nil {
		t.Fatal("faults directive not parsed")
	}
	in := spec.Cells()[0].Input()
	if in.Config.Faults == nil || in.Config.Faults.Seed != 7 {
		t.Fatalf("cell input lost the fault plan: %+v", in.Config.Faults)
	}
	// Fault plan changes the content address.
	plain, err := ParseJobSpec("bench=SYNTH cores=8 tier=test")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cells()[0].Fingerprint() == plain.Cells()[0].Fingerprint() {
		t.Fatal("fault plan does not contribute to the cell fingerprint")
	}
}

func TestParseJobSpecRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"bench=KERN2|SYNTH barrier=CSW|GL cores=16|32 tier=test",
		"bench=SYNTH cores=8 tier=test seed=1|2 threads=4 max_cycles=1000000",
		"bench=SYNTH cores=8 tier=test faults=seed=7,gl.drop=1e-4",
	}
	for _, s := range specs {
		spec, err := ParseJobSpec(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		canon := spec.String()
		again, err := ParseJobSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if got := again.String(); got != canon {
			t.Errorf("%q: round-trip %q != %q", s, got, canon)
		}
	}
}

func TestParseJobSpecErrors(t *testing.T) {
	bad := map[string]string{
		"not-a-directive":     "key=value",
		"bench=NOPE":          "",
		"barrier=XX":          "",
		"cores=0":             "cores",
		"cores=-1":            "cores",
		"tier=huge":           "",
		"threads=64 cores=16": "exceeds",
		"max_cycles=0":        "max_cycles",
		"faults=zz.bogus=1":   "",
		"frobnicate=1":        "unknown directive",
	}
	for spec, frag := range bad {
		_, err := ParseJobSpec(spec)
		if err == nil {
			t.Errorf("%q: expected error", spec)
			continue
		}
		if frag != "" && !strings.Contains(err.Error(), frag) {
			t.Errorf("%q: error %q does not mention %q", spec, err, frag)
		}
	}
	// Grid-size limit.
	var b strings.Builder
	b.WriteString("bench=SYNTH cores=8 tier=test seed=")
	for i := 0; i <= MaxGridCells; i++ {
		if i > 0 {
			b.WriteByte('|')
		}
		fmtInt(&b, i)
	}
	if _, err := ParseJobSpec(b.String()); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized grid: got %v, want limit error", err)
	}
}

func fmtInt(b *strings.Builder, v int) {
	if v >= 10 {
		fmtInt(b, v/10)
	}
	b.WriteByte(byte('0' + v%10))
}
