// Package hostfault is the job server's deterministic host-fault
// injection layer: the internal/fault idea lifted one level up, from the
// simulated substrate to the host process serving it. A Plan describes
// which host failures to inject — executor panics, failing or corrupting
// disk-spill I/O, queue stalls — and an Injector compiled from the plan
// answers the server's questions ("does this run attempt panic?", "does
// this spill write fail?").
//
// Decisions are a pure function of (seed, site, key, opportunity index)
// through the same splitmix-style hash internal/fault uses, where the key
// is a stable identity (a cell fingerprint, a spill path, a job id) and
// the opportunity index counts that key's visits to the site. Same plan,
// same call pattern per key: same faults — which is what lets the
// hostchaos campaign replay a finding and lets a quarantine reproducer be
// committed to a corpus. Per-key opportunity counters make decisions
// independent of interleaving across keys, mirroring the
// order-independence contract of fault.Plan under parallel sweeps.
//
// A nil *Injector is the canonical "host faults disabled" value: every
// method is nil-safe and answers "no fault".
package hostfault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
)

// Site identifies one class of injectable host fault.
type Site uint8

// The host-fault sites, covering the executor path, the cache's disk
// spill and the job queue.
const (
	// ExecPanic panics the cell executor mid-attempt; the server's panic
	// guard must convert it into a retryable error.
	ExecPanic Site = iota
	// ExecFail makes the cell executor return an injected error.
	ExecFail
	// ExecSlow stalls the cell executor for Plan.SlowMillis before it runs.
	ExecSlow
	// SpillWriteFail fails the disk-spill temp-file write.
	SpillWriteFail
	// SpillRenameFail fails the spill's publishing rename.
	SpillRenameFail
	// SpillReadFail fails a disk-spill read (a cache disk hit becomes a
	// miss).
	SpillReadFail
	// SpillCorrupt corrupts the bytes read back from a disk spill; the
	// cache must reject them instead of serving garbage.
	SpillCorrupt
	// QueueStall stalls an executor for Plan.SlowMillis after it dequeues
	// a job, before the job runs.
	QueueStall

	// NumSites is the number of host-fault sites.
	NumSites
)

// siteNames maps sites to their plan-syntax keys.
var siteNames = [NumSites]string{
	ExecPanic:       "exec.panic",
	ExecFail:        "exec.fail",
	ExecSlow:        "exec.slow",
	SpillWriteFail:  "spill.writefail",
	SpillRenameFail: "spill.renamefail",
	SpillReadFail:   "spill.readfail",
	SpillCorrupt:    "spill.corrupt",
	QueueStall:      "queue.stall",
}

// String returns the site's plan-syntax key.
func (s Site) String() string {
	if s < NumSites {
		return siteNames[s]
	}
	return fmt.Sprintf("hostsite(%d)", uint8(s))
}

// siteByName resolves a plan-syntax key to its site.
func siteByName(name string) (Site, bool) {
	for s := Site(0); s < NumSites; s++ {
		if siteNames[s] == name {
			return s, true
		}
	}
	return 0, false
}

// DefaultSlowMillis is the stall duration of ExecSlow and QueueStall when
// the plan does not set one.
const DefaultSlowMillis = 5

// Plan is a complete host-fault schedule. The zero value is a valid empty
// plan injecting nothing.
type Plan struct {
	// Seed drives every rate decision; same seed, same plan, same faults.
	Seed uint64
	// Rates holds the per-opportunity fault probability of each site.
	Rates [NumSites]float64
	// First makes the first N opportunities of each key at a site fire
	// deterministically — "the first 3 attempts of every cell panic" is
	// First[ExecPanic] = 3. Rate decisions apply from opportunity N on.
	First [NumSites]int
	// SlowMillis is the ExecSlow/QueueStall stall length (0 selects
	// DefaultSlowMillis).
	SlowMillis int
}

// Validate checks the plan for internal consistency.
func (p *Plan) Validate() error {
	for s := Site(0); s < NumSites; s++ {
		r := p.Rates[s]
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("hostfault: rate %g for %s outside [0,1]", r, s)
		}
		if p.First[s] < 0 {
			return fmt.Errorf("hostfault: first count %d for %s negative", p.First[s], s)
		}
	}
	if p.SlowMillis < 0 {
		return fmt.Errorf("hostfault: slow.ms must be >= 0, got %d", p.SlowMillis)
	}
	return nil
}

// Empty reports whether the plan schedules no faults at all.
func (p *Plan) Empty() bool {
	for s := Site(0); s < NumSites; s++ {
		if p.Rates[s] > 0 || p.First[s] > 0 {
			return false
		}
	}
	return true
}

// ParsePlan parses the host-fault plan syntax: a comma-separated list of
// directives, in the fault.ParsePlan house style. An empty string yields
// a nil plan (host faults disabled).
//
//	seed=N            hash seed (default 1)
//	<site>=<rate>     per-opportunity rate, e.g. exec.panic=0.2
//	<site>#<n>        first n opportunities of every key fire, e.g. exec.fail#2
//	slow.ms=N         ExecSlow/QueueStall stall length in milliseconds
//
// Example: "seed=7,exec.panic#2,spill.readfail=0.5,slow.ms=1"
func ParsePlan(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if name, count, ok := strings.Cut(tok, "#"); ok {
			site, isSite := siteByName(name)
			if !isSite {
				return nil, fmt.Errorf("hostfault: unknown site %q", name)
			}
			n, err := strconv.Atoi(count)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("hostfault: first count for %s: %q", name, count)
			}
			p.First[site] = n
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("hostfault: directive %q is not key=value, site#n or site", tok)
		}
		if site, isSite := siteByName(key); isSite {
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("hostfault: rate for %s: %v", key, err)
			}
			p.Rates[site] = rate
			continue
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("hostfault: seed: %v", err)
			}
			p.Seed = n
		case "slow.ms":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("hostfault: slow.ms: %v", err)
			}
			p.SlowMillis = n
		default:
			return nil, fmt.Errorf("hostfault: unknown directive %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// String renders the plan back into ParsePlan syntax: seed first, then
// rates and first-counts in site order, then slow.ms when set. ParsePlan
// of the result reproduces the plan.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	toks := []string{fmt.Sprintf("seed=%d", p.Seed)}
	for s := Site(0); s < NumSites; s++ {
		if p.Rates[s] > 0 {
			toks = append(toks, fmt.Sprintf("%s=%s", s, strconv.FormatFloat(p.Rates[s], 'g', -1, 64)))
		}
		if p.First[s] > 0 {
			toks = append(toks, fmt.Sprintf("%s#%d", s, p.First[s]))
		}
	}
	if p.SlowMillis > 0 {
		toks = append(toks, fmt.Sprintf("slow.ms=%d", p.SlowMillis))
	}
	return strings.Join(toks, ",")
}

// Atoms decomposes the plan into independently removable directives (the
// shrink units): one atom per active site setting. seed and slow.ms are
// carrier state, not atoms.
func (p *Plan) Atoms() []string {
	var atoms []string
	for s := Site(0); s < NumSites; s++ {
		if p.Rates[s] > 0 {
			atoms = append(atoms, fmt.Sprintf("%s=%s", s, strconv.FormatFloat(p.Rates[s], 'g', -1, 64)))
		}
		if p.First[s] > 0 {
			atoms = append(atoms, fmt.Sprintf("%s#%d", s, p.First[s]))
		}
	}
	return atoms
}

// FromAtoms rebuilds a plan from a subset of Atoms, keeping this plan's
// seed and slow.ms.
func (p *Plan) FromAtoms(atoms []string) (*Plan, error) {
	toks := []string{fmt.Sprintf("seed=%d", p.Seed)}
	toks = append(toks, atoms...)
	if p.SlowMillis > 0 {
		toks = append(toks, fmt.Sprintf("slow.ms=%d", p.SlowMillis))
	}
	return ParsePlan(strings.Join(toks, ","))
}

// Injector answers the server's host-fault questions for one compiled
// plan. Safe for concurrent use: decisions are keyed by (site, key) with
// a per-pair opportunity counter, so interleaving across keys cannot
// change any key's fault schedule.
type Injector struct {
	seed      uint64
	threshold [NumSites]uint64
	first     [NumSites]int
	slowMs    int

	mu sync.Mutex
	// seen counts opportunities per (site, key).
	//glvet:guardedby mu
	seen map[injKey]int
	// fired counts injected faults per site — the conservation ledger the
	// hostchaos oracles reconcile server metrics against.
	//glvet:guardedby mu
	fired [NumSites]uint64
}

type injKey struct {
	site Site
	key  string
}

// NewInjector compiles a plan. A nil or empty plan yields a nil injector
// (host faults disabled).
func NewInjector(p *Plan) *Injector {
	if p == nil || p.Empty() {
		return nil
	}
	j := &Injector{
		seed:   p.Seed,
		first:  p.First,
		slowMs: p.SlowMillis,
		seen:   make(map[injKey]int),
	}
	if j.slowMs == 0 {
		j.slowMs = DefaultSlowMillis
	}
	for s := Site(0); s < NumSites; s++ {
		j.threshold[s] = rateToThreshold(p.Rates[s])
	}
	return j
}

// rateToThreshold scales a probability to a uint64 comparison threshold.
func rateToThreshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return ^uint64(0)
	}
	return uint64(rate * float64(1<<63) * 2)
}

// mix is the splitmix64-style avalanche hash behind every rate decision
// (the same construction internal/fault uses).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashKey folds a string key into the decision hash (FNV-1a then mix).
func hashKey(key string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return mix(h)
}

// Hit decides — and consumes — one fault opportunity for site s at key.
// The first Plan.First[s] opportunities of each key fire
// deterministically; later ones fire at the site's rate, hashed from
// (seed, site, key, opportunity index).
func (j *Injector) Hit(s Site, key string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	k := injKey{site: s, key: key}
	n := j.seen[k]
	j.seen[k] = n + 1
	hit := n < j.first[s]
	if !hit && j.threshold[s] != 0 {
		hit = mix(j.seed^(uint64(s)+1)*0x9e3779b97f4a7c15^hashKey(key)^mix(uint64(n))) < j.threshold[s]
	}
	if hit {
		j.fired[s]++
	}
	return hit
}

// SlowMillis returns the stall length for ExecSlow/QueueStall hits.
func (j *Injector) SlowMillis() int {
	if j == nil {
		return 0
	}
	return j.slowMs
}

// Corrupt deterministically mangles spill bytes for a SpillCorrupt hit:
// the content is damaged (first byte flipped, tail truncated) but the
// mutation is a pure function of the input, so replays corrupt
// identically.
func Corrupt(b []byte) []byte {
	if len(b) == 0 {
		return []byte{0xff}
	}
	out := append([]byte(nil), b[:len(b)-len(b)/4]...)
	out[0] ^= 0xff
	return out
}

// Fired returns how many faults site s has injected.
func (j *Injector) Fired(s Site) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fired[s]
}

// FiredTotal returns the total injected-fault count across sites.
func (j *Injector) FiredTotal() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var n uint64
	for s := Site(0); s < NumSites; s++ {
		n += j.fired[s]
	}
	return n
}

// FiredBySite snapshots the per-site ledger as site-name keys in sorted
// order — the shape hostchaos reports embed.
func (j *Injector) FiredBySite() map[string]uint64 {
	out := make(map[string]uint64)
	if j == nil {
		return out
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for s := Site(0); s < NumSites; s++ {
		if j.fired[s] > 0 {
			out[s.String()] = j.fired[s]
		}
	}
	return out
}

// SiteNames returns every site key in site order — the generator's menu.
func SiteNames() []string {
	names := make([]string, NumSites)
	for s := Site(0); s < NumSites; s++ {
		names[s] = s.String()
	}
	return names
}

// FiredSummary renders the ledger as a stable one-line summary in site
// order.
func (j *Injector) FiredSummary() string {
	if j == nil {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var toks []string
	for s := Site(0); s < NumSites; s++ {
		if j.fired[s] > 0 {
			toks = append(toks, fmt.Sprintf("%s=%d", s, j.fired[s]))
		}
	}
	return strings.Join(toks, ",")
}
