package hostfault

import (
	"strings"
	"sync"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"seed=1,exec.panic#2",
		"seed=7,exec.panic=0.25,spill.readfail#1,slow.ms=3",
		"seed=9,exec.fail#3,spill.writefail=0.5,spill.corrupt=1,queue.stall#1",
	}
	for _, in := range cases {
		p, err := ParsePlan(in)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", in, err)
		}
		if got := p.String(); got != in {
			t.Errorf("round trip %q -> %q", in, got)
		}
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", p.String(), err)
		}
		if *p2 != *p {
			t.Errorf("reparse of %q differs: %+v vs %+v", in, p2, p)
		}
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if p, err := ParsePlan("  "); err != nil || p != nil {
		t.Fatalf("empty plan: %v %v", p, err)
	}
	for _, bad := range []string{
		"nope=1",
		"exec.panic=2.0",
		"exec.panic#0",
		"exec.panic#x",
		"bogus#3",
		"slow.ms=-1",
		"exec.panic",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestFirstSemantics(t *testing.T) {
	p, err := ParsePlan("seed=3,exec.panic#2")
	if err != nil {
		t.Fatal(err)
	}
	j := NewInjector(p)
	for i := 0; i < 2; i++ {
		if !j.Hit(ExecPanic, "cellA") {
			t.Fatalf("opportunity %d of cellA did not fire", i)
		}
	}
	// With no rate, later opportunities never fire.
	for i := 0; i < 50; i++ {
		if j.Hit(ExecPanic, "cellA") {
			t.Fatalf("opportunity %d fired past the first-2 window", i+2)
		}
	}
	// Another key has its own first-2 window.
	if !j.Hit(ExecPanic, "cellB") {
		t.Fatal("cellB's first opportunity did not fire")
	}
	if got := j.Fired(ExecPanic); got != 3 {
		t.Fatalf("fired ledger = %d, want 3", got)
	}
	if j.Hit(ExecFail, "cellA") {
		t.Fatal("unconfigured site fired")
	}
}

func TestRateDeterminismAndKeyIndependence(t *testing.T) {
	p, err := ParsePlan("seed=11,exec.fail=0.5")
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference: 40 opportunities for each of 4 keys.
	keys := []string{"a", "b", "c", "d"}
	ref := map[string][]bool{}
	j1 := NewInjector(p)
	for _, k := range keys {
		for i := 0; i < 40; i++ {
			ref[k] = append(ref[k], j1.Hit(ExecFail, k))
		}
	}
	any := false
	for _, k := range keys {
		for _, h := range ref[k] {
			any = any || h
		}
	}
	if !any {
		t.Fatal("rate 0.5 never fired in 160 opportunities")
	}
	// Concurrent interleaving across keys must reproduce each key's
	// schedule exactly.
	j2 := NewInjector(p)
	var wg sync.WaitGroup
	got := make([][]bool, len(keys))
	for i, k := range keys {
		i, k := i, k
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 40; n++ {
				got[i] = append(got[i], j2.Hit(ExecFail, k))
			}
		}()
	}
	wg.Wait()
	for i, k := range keys {
		for n := range ref[k] {
			if got[i][n] != ref[k][n] {
				t.Fatalf("key %s opportunity %d: concurrent %v != sequential %v", k, n, got[i][n], ref[k][n])
			}
		}
	}
	if j1.FiredTotal() != j2.FiredTotal() {
		t.Fatalf("fired totals differ: %d vs %d", j1.FiredTotal(), j2.FiredTotal())
	}
}

func TestNilInjector(t *testing.T) {
	var j *Injector
	if j.Hit(ExecPanic, "x") || j.FiredTotal() != 0 || j.SlowMillis() != 0 || j.FiredSummary() != "" {
		t.Fatal("nil injector is not inert")
	}
	if NewInjector(nil) != nil {
		t.Fatal("nil plan compiled to a non-nil injector")
	}
	if NewInjector(&Plan{Seed: 5}) != nil {
		t.Fatal("empty plan compiled to a non-nil injector")
	}
}

func TestCorruptIsDeterministicAndDamaging(t *testing.T) {
	in := []byte(`{"fingerprint":"abc","data":[1,2,3,4,5,6,7,8]}`)
	a := Corrupt(in)
	b := Corrupt(in)
	if string(a) != string(b) {
		t.Fatal("corruption is not deterministic")
	}
	if string(a) == string(in) {
		t.Fatal("corruption left bytes intact")
	}
	if len(Corrupt(nil)) == 0 {
		t.Fatal("corrupting empty bytes produced empty bytes")
	}
}

func TestAtomsRoundTrip(t *testing.T) {
	p, err := ParsePlan("seed=5,exec.panic#2,spill.readfail=0.25,slow.ms=2")
	if err != nil {
		t.Fatal(err)
	}
	atoms := p.Atoms()
	if len(atoms) != 2 {
		t.Fatalf("atoms = %v, want 2", atoms)
	}
	full, err := p.FromAtoms(atoms)
	if err != nil {
		t.Fatal(err)
	}
	if *full != *p {
		t.Fatalf("FromAtoms(all) = %+v, want %+v", full, p)
	}
	sub, err := p.FromAtoms(atoms[:1])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sub.String(), "exec.panic#2") || strings.Contains(sub.String(), "spill.readfail") {
		t.Fatalf("subset plan = %q", sub)
	}
	if sub.Seed != p.Seed || sub.SlowMillis != p.SlowMillis {
		t.Fatalf("subset lost carrier state: %+v", sub)
	}
}

func TestFiredSummary(t *testing.T) {
	p, _ := ParsePlan("seed=1,exec.panic#1,spill.readfail#2")
	j := NewInjector(p)
	j.Hit(ExecPanic, "k")
	j.Hit(SpillReadFail, "k")
	j.Hit(SpillReadFail, "k")
	if got := j.FiredSummary(); got != "exec.panic=1,spill.readfail=2" {
		t.Fatalf("summary = %q", got)
	}
	fired := j.FiredBySite()
	if fired["exec.panic"] != 1 || fired["spill.readfail"] != 2 {
		t.Fatalf("by-site = %v", fired)
	}
}
