package serve

import (
	"context"
	"encoding/json"
	"sync"

	"repro/internal/metrics"
)

// JobState is a job's (or cell's) lifecycle state.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// CellStatus is the externally visible state of one grid cell.
type CellStatus struct {
	Label   string   `json:"label"`
	InputFP string   `json:"input_fingerprint"`
	State   JobState `json:"state"`
	// Cached: the result came out of the cache without simulating.
	Cached bool `json:"cached,omitempty"`
	// SharedFlight: the result came from another in-flight computation of
	// the same fingerprint (single-flight dedup).
	SharedFlight bool   `json:"shared_flight,omitempty"`
	ReportFP     string `json:"report_fingerprint,omitempty"`
	// Retries counts extra attempts this cell's fingerprint consumed while
	// this job owned the flight.
	Retries int    `json:"retries,omitempty"`
	Error   string `json:"error,omitempty"`
}

// JobStatus is the externally visible state of one job: identity, spec,
// per-cell progress, and the merged barrier-latency/watchdog aggregates
// the events stream ships as snapshots.
type JobStatus struct {
	ID    string   `json:"id"`
	Spec  string   `json:"spec"`
	State JobState `json:"state"`

	Cells     []CellStatus `json:"cells"`
	CellsDone int          `json:"cells_done"`
	CacheHits int          `json:"cache_hits"`
	Simulated int          `json:"simulated"`
	Failed    int          `json:"failed"`

	// Episodes is the barrier-episode total across finished cells.
	Episodes uint64 `json:"episodes"`
	// GLLatency and SWLatency merge the finished cells' barrier latency
	// histograms (metrics.HistogramSnapshot.Plus).
	GLLatency metrics.HistogramSnapshot `json:"gl_latency"`
	SWLatency metrics.HistogramSnapshot `json:"sw_latency"`
	// Hangs counts cells that ended in a watchdog hang dump — the events
	// stream's watchdog state.
	Hangs int `json:"hangs"`

	// Retries is the job's total retried cell attempts (bounded by the
	// server's per-job retry budget).
	Retries int `json:"retries,omitempty"`

	// QueueWaitMillis is how long the job sat queued before running.
	QueueWaitMillis int64  `json:"queue_wait_ms"`
	Error           string `json:"error,omitempty"`
}

// job is the server-side state behind a JobStatus.
type job struct {
	id   string
	spec *JobSpec
	// canonical spec string, rendered once at submit.
	specStr string
	cells   []Cell

	// ctx aborts the job's cells; cancel is idempotent.
	ctx    context.Context
	cancel context.CancelFunc

	// enqueuedAt/startedAt are server-relative milliseconds (monotonic
	// since server start — never wall-clock).
	enqueuedAt int64

	// onFinish, when set, observes the first terminal transition (journal
	// terminal records). Called outside the job lock, exactly once.
	onFinish func(JobState, string)

	mu sync.Mutex
	//glvet:guardedby mu
	state JobState
	//glvet:guardedby mu
	startedAt int64
	//glvet:guardedby mu
	cellState []CellStatus
	//glvet:guardedby mu
	done int
	//glvet:guardedby mu
	cacheHits int
	//glvet:guardedby mu
	simulated int
	//glvet:guardedby mu
	failed int
	//glvet:guardedby mu
	episodes uint64
	//glvet:guardedby mu
	glLat metrics.HistogramSnapshot
	//glvet:guardedby mu
	swLat metrics.HistogramSnapshot
	//glvet:guardedby mu
	hangs int
	//glvet:guardedby mu
	waitMs int64
	//glvet:guardedby mu
	errMsg string
	// retryBudget is the remaining cross-cell retry allowance; retries is
	// the total consumed (mirrored into JobStatus).
	//glvet:guardedby mu
	retryBudget int
	//glvet:guardedby mu
	retries int
	// results holds each finished cell's cache entry, indexed like cells;
	// nil for failed/aborted cells.
	//glvet:guardedby mu
	results []*Entry
	// finished closes when the job reaches a terminal state.
	finished chan struct{}
}

func newJob(id string, spec *JobSpec, cells []Cell, enqueuedAt int64, retryBudget int) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:          id,
		spec:        spec,
		specStr:     spec.String(),
		cells:       cells,
		ctx:         ctx,
		cancel:      cancel,
		enqueuedAt:  enqueuedAt,
		state:       StateQueued,
		cellState:   make([]CellStatus, len(cells)),
		results:     make([]*Entry, len(cells)),
		retryBudget: retryBudget,
		finished:    make(chan struct{}),
	}
	for i, c := range cells {
		j.cellState[i] = CellStatus{
			Label:   c.Label(),
			InputFP: c.Fingerprint(),
			State:   StateQueued,
		}
	}
	return j
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:              j.id,
		Spec:            j.specStr,
		State:           j.state,
		Cells:           append([]CellStatus(nil), j.cellState...),
		CellsDone:       j.done,
		CacheHits:       j.cacheHits,
		Simulated:       j.simulated,
		Failed:          j.failed,
		Episodes:        j.episodes,
		GLLatency:       j.glLat,
		SWLatency:       j.swLat,
		Hangs:           j.hangs,
		Retries:         j.retries,
		QueueWaitMillis: j.waitMs,
		Error:           j.errMsg,
	}
	return st
}

// takeRetry draws one retry from the job's cross-cell budget; false means
// the budget is spent and the caller must fail instead of retrying.
func (j *job) takeRetry() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.retryBudget <= 0 {
		return false
	}
	j.retryBudget--
	return true
}

// noteRetry attributes one consumed retry to the cells carrying fp (for
// per-cell Retries in status; a grid never repeats a fingerprint, but the
// scan tolerates duplicates).
func (j *job) noteRetry(fp string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.retries++
	for i := range j.cellState {
		if j.cellState[i].InputFP == fp {
			j.cellState[i].Retries++
		}
	}
}

// start transitions queued -> running and records the queue wait.
func (j *job) start(nowMs int64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.startedAt = nowMs
	j.waitMs = nowMs - j.enqueuedAt
	for i := range j.cellState {
		if j.cellState[i].State == StateQueued {
			j.cellState[i].State = StateRunning
		}
	}
	return true
}

// finishCell records one cell's outcome. Late writes from abandoned cell
// goroutines (a timed-out or canceled cell whose simulation eventually
// completed) are dropped: once a cell or the whole job is terminal its
// state never changes again.
func (j *job) finishCell(i int, e *Entry, cached, shared bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cs := &j.cellState[i]
	if j.state.terminal() || cs.State.terminal() {
		return
	}
	j.done++
	if err != nil {
		cs.State = StateFailed
		cs.Error = err.Error()
		j.failed++
		return
	}
	cs.State = StateDone
	cs.Cached = cached
	cs.SharedFlight = shared
	cs.ReportFP = e.ReportFP
	j.results[i] = e
	if cached {
		j.cacheHits++
	} else if !shared {
		j.simulated++
	}
	j.episodes += e.Episodes
	j.glLat = j.glLat.Plus(e.GLLatency)
	j.swLat = j.swLat.Plus(e.SWLatency)
	if e.Hung {
		j.hangs++
	}
}

// finish moves the job to a terminal state (first transition wins) and
// releases waiters.
func (j *job) finish(state JobState, errMsg string) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	if errMsg != "" {
		j.errMsg = errMsg
	}
	for i := range j.cellState {
		if !j.cellState[i].State.terminal() {
			j.cellState[i].State = StateCanceled
		}
	}
	onFinish := j.onFinish
	j.mu.Unlock()
	if onFinish != nil {
		onFinish(state, errMsg)
	}
	close(j.finished)
}

// cellResult is one cell's slice of a job result document.
type cellResult struct {
	Label        string          `json:"label"`
	InputFP      string          `json:"input_fingerprint"`
	ReportFP     string          `json:"report_fingerprint,omitempty"`
	Cached       bool            `json:"cached,omitempty"`
	SharedFlight bool            `json:"shared_flight,omitempty"`
	Error        string          `json:"error,omitempty"`
	Report       json.RawMessage `json:"report,omitempty"`
}

// jobResult is the full result document for a terminal job.
type jobResult struct {
	ID    string       `json:"id"`
	Spec  string       `json:"spec"`
	State JobState     `json:"state"`
	Cells []cellResult `json:"cells"`
}

// result builds the full result document; ok is false until the job is
// terminal.
func (j *job) result() (jobResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.terminal() {
		return jobResult{}, false
	}
	res := jobResult{ID: j.id, Spec: j.specStr, State: j.state}
	for i, cs := range j.cellState {
		cr := cellResult{
			Label:        cs.Label,
			InputFP:      cs.InputFP,
			ReportFP:     cs.ReportFP,
			Cached:       cs.Cached,
			SharedFlight: cs.SharedFlight,
			Error:        cs.Error,
		}
		if e := j.results[i]; e != nil {
			cr.Report = json.RawMessage(e.JSON)
		}
		res.Cells = append(res.Cells, cr)
	}
	return res, true
}
