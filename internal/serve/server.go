package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve/hostfault"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// CellRunner executes one simulation cell. The default (RunCell) builds a
// fresh system and runs the workload; tests inject fakes to count and
// block executions.
type CellRunner func(ctx context.Context, c Cell) (*sim.Report, error)

// Options configure a Server. The zero value serves with sensible
// defaults: 2 concurrent jobs, GOMAXPROCS cell workers, a 1024-entry
// memory cache and no disk spill.
type Options struct {
	// ConcurrentJobs is the number of jobs simulating at once; <= 0 means 2.
	ConcurrentJobs int
	// CellWorkers is the sweep worker count within one job; <= 0 means
	// GOMAXPROCS.
	CellWorkers int
	// QueueDepth bounds jobs waiting to run; <= 0 means 64. A submit past
	// the bound is rejected with 429.
	QueueDepth int
	// CacheEntries sizes the in-memory result cache; <= 0 means 1024.
	CacheEntries int
	// CacheDir enables the write-through disk tier when non-empty.
	CacheDir string
	// CellTimeout bounds one cell's wall-clock run; 0 means unbounded.
	CellTimeout time.Duration
	// Runner overrides the cell executor (tests); nil means RunCell.
	Runner CellRunner
	// WatchInterval is the SSE progress-snapshot period; <= 0 means 500ms.
	WatchInterval time.Duration

	// CellAttempts bounds runs of one cell before it is quarantined;
	// <= 0 means DefaultCellAttempts. 1 disables retries.
	CellAttempts int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts; zero selects DefaultRetryBase/DefaultRetryMax.
	RetryBase time.Duration
	RetryMax  time.Duration
	// JobRetryBudget bounds total retries across one job's cells; <= 0
	// means DefaultJobRetryBudget.
	JobRetryBudget int
	// HostFaults injects deterministic host failures (executor panics,
	// spill I/O faults, queue stalls) for chaos runs and drills; nil
	// disables injection.
	HostFaults *hostfault.Plan
	// SSEHeartbeat is the period of comment-line heartbeats on the events
	// stream (dead-client detection between progress snapshots); <= 0
	// means 15s.
	SSEHeartbeat time.Duration
	// RequestTimeout bounds non-streaming request handling; 0 means
	// unbounded. The SSE events route is exempt (heartbeats bound it).
	RequestTimeout time.Duration
}

func (o Options) concurrentJobs() int {
	if o.ConcurrentJobs > 0 {
		return o.ConcurrentJobs
	}
	return 2
}

func (o Options) cellWorkers() int {
	if o.CellWorkers > 0 {
		return o.CellWorkers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 64
}

func (o Options) watchInterval() time.Duration {
	if o.WatchInterval > 0 {
		return o.WatchInterval
	}
	return 500 * time.Millisecond
}

func (o Options) sseHeartbeat() time.Duration {
	if o.SSEHeartbeat > 0 {
		return o.SSEHeartbeat
	}
	return 15 * time.Second
}

// Server metric names. All server observability flows through one
// internal/metrics registry (guarded by a mutex — the registry itself is
// single-threaded by contract) and out via GET /v1/stats.
const (
	metricJobsSubmitted = "serve.jobs.submitted"
	metricJobsRejected  = "serve.jobs.rejected"
	metricJobsDone      = "serve.jobs.done"
	metricJobsFailed    = "serve.jobs.failed"
	metricJobsCanceled  = "serve.jobs.canceled"
	metricJobsQueued    = "serve.jobs.queued"
	metricJobsRunning   = "serve.jobs.running"
	metricCacheHits     = "serve.cache.hits"
	metricCacheMisses   = "serve.cache.misses"
	metricCacheEvicted  = "serve.cache.evictions"
	metricCacheDiskHits = "serve.cache.disk_hits"
	metricFlightShared  = "serve.flight.shared"
	metricCellsSim      = "serve.cells.simulated"
	metricCellsFailed   = "serve.cells.failed"
	metricQueueWaitMs   = "serve.queue.wait_ms"
	metricCellRunMs     = "serve.cell.run_ms"
)

// Self-healing metric names, exported for cross-package reads (the
// hostchaos conservation oracles and the glsimd e2e recovery test
// reconcile these against the injector's fired ledger).
const (
	// MetricCellRetries counts retried cell attempts.
	MetricCellRetries = "serve.cell.retries"
	// MetricCellPanics counts executor panics converted into retryable
	// errors by the recover guard.
	MetricCellPanics = "serve.cell.panics"
	// MetricCellsQuarantined counts cells that exhausted their attempts
	// and entered quarantine.
	MetricCellsQuarantined = "serve.cells.quarantined"
	// MetricQuarantineHits counts cells failed fast because their
	// fingerprint was already quarantined.
	MetricQuarantineHits = "serve.quarantine.hits"
	// MetricHTTPPanics counts HTTP handler panics absorbed by the recover
	// middleware.
	MetricHTTPPanics = "serve.http.panics"
	// MetricSpillErrors counts disk-spill failures the cache degraded
	// through (entry stayed in memory).
	MetricSpillErrors = "serve.spill.errors"
	// MetricJournalRecords counts journal appends this process fsync'd.
	MetricJournalRecords = "serve.journal.records"
	// MetricJournalReplayed counts jobs re-submitted from the journal on
	// startup recovery.
	MetricJournalReplayed = "serve.journal.replayed"
	// MetricJournalTorn counts torn/corrupt journal lines dropped on open.
	MetricJournalTorn = "serve.journal.torn"
)

// msBuckets are exponential millisecond buckets for server latencies
// (1ms .. ~17min).
func msBuckets() []uint64 {
	b := make([]uint64, 21)
	for i := range b {
		b[i] = 1 << uint(i)
	}
	return b
}

// serverMetrics holds the server's registered metric handles. Registering
// once at construction keeps every name a package-level const (the
// metricname invariant) and makes updates a locked pointer touch.
type serverMetrics struct {
	jobsSubmitted *metrics.Counter
	jobsRejected  *metrics.Counter
	jobsDone      *metrics.Counter
	jobsFailed    *metrics.Counter
	jobsCanceled  *metrics.Counter
	cacheHits     *metrics.Counter
	cacheMisses   *metrics.Counter
	cacheEvicted  *metrics.Counter
	cacheDiskHits *metrics.Counter
	flightShared  *metrics.Counter
	cellsSim      *metrics.Counter
	cellsFailed   *metrics.Counter
	jobsQueued    *metrics.Gauge
	jobsRunning   *metrics.Gauge
	queueWaitMs   *metrics.Histogram
	cellRunMs     *metrics.Histogram

	cellRetries      *metrics.Counter
	cellPanics       *metrics.Counter
	cellsQuarantined *metrics.Counter
	quarantineHits   *metrics.Counter
	httpPanics       *metrics.Counter
	spillErrors      *metrics.Counter
	journalRecords   *metrics.Counter
	journalReplayed  *metrics.Counter
	journalTorn      *metrics.Counter
}

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	return &serverMetrics{
		jobsSubmitted: reg.Counter(metricJobsSubmitted),
		jobsRejected:  reg.Counter(metricJobsRejected),
		jobsDone:      reg.Counter(metricJobsDone),
		jobsFailed:    reg.Counter(metricJobsFailed),
		jobsCanceled:  reg.Counter(metricJobsCanceled),
		cacheHits:     reg.Counter(metricCacheHits),
		cacheMisses:   reg.Counter(metricCacheMisses),
		cacheEvicted:  reg.Counter(metricCacheEvicted),
		cacheDiskHits: reg.Counter(metricCacheDiskHits),
		flightShared:  reg.Counter(metricFlightShared),
		cellsSim:      reg.Counter(metricCellsSim),
		cellsFailed:   reg.Counter(metricCellsFailed),
		jobsQueued:    reg.Gauge(metricJobsQueued),
		jobsRunning:   reg.Gauge(metricJobsRunning),
		queueWaitMs:   reg.Histogram(metricQueueWaitMs, msBuckets()),
		cellRunMs:     reg.Histogram(metricCellRunMs, msBuckets()),

		cellRetries:      reg.Counter(MetricCellRetries),
		cellPanics:       reg.Counter(MetricCellPanics),
		cellsQuarantined: reg.Counter(MetricCellsQuarantined),
		quarantineHits:   reg.Counter(MetricQuarantineHits),
		httpPanics:       reg.Counter(MetricHTTPPanics),
		spillErrors:      reg.Counter(MetricSpillErrors),
		journalRecords:   reg.Counter(MetricJournalRecords),
		journalReplayed:  reg.Counter(MetricJournalReplayed),
		journalTorn:      reg.Counter(MetricJournalTorn),
	}
}

// Server is the glsimd job server: a submit queue, a bounded executor
// running jobs through internal/sweep, the content-addressed result
// cache, and the HTTP API.
type Server struct {
	opts   Options
	cache  *Cache
	flight flightGroup

	// inj is the compiled host-fault plan (nil = no injection).
	inj *hostfault.Injector
	// quarantine is the poison-cell registry.
	quarantine quarantineSet

	// lm serializes registry access: internal/metrics registries are
	// single-threaded by contract, and the server is the one concurrent
	// component in the repo, so the lock lives here rather than in the hot
	// simulator path. m holds the pre-registered handles; it is written
	// once at construction and immutable after.
	lm *metrics.Locked
	m  *serverMetrics

	mu   sync.Mutex
	cond *sync.Cond
	//glvet:guardedby mu
	jobs map[string]*job
	//glvet:guardedby mu
	order []string
	//glvet:guardedby mu
	queue []*job
	//glvet:guardedby mu
	nextID int
	//glvet:guardedby mu
	running int
	//glvet:guardedby mu
	draining bool
	//glvet:guardedby mu
	closed bool
	// journal is the attached write-ahead log (nil = not journaling); set
	// once by AttachJournal before the server takes traffic.
	//glvet:guardedby mu
	journal *Journal

	// base anchors the server's monotonic clock.
	base time.Time
	wg   sync.WaitGroup
}

// NewServer builds a server and starts its executor pool.
func NewServer(opts Options) *Server {
	reg := metrics.NewRegistry()
	s := &Server{
		opts:  opts,
		inj:   hostfault.NewInjector(opts.HostFaults),
		cache: NewCache(opts.CacheEntries, opts.CacheDir),
		lm:    metrics.NewLocked(reg),
		m:     newServerMetrics(reg),
		jobs:  make(map[string]*job),
		base:  now(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.cache.onEvict = func() { s.count(s.m.cacheEvicted, 1) }
	s.cache.onDiskHit = func() { s.count(s.m.cacheDiskHits, 1) }
	if s.inj != nil {
		s.cache.fs = faultFS{fs: s.cache.fs, inj: s.inj}
	}
	for i := 0; i < opts.concurrentJobs(); i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// now reads the wall clock for server bookkeeping (queue waits, SSE
// pacing). The serve package is host-side infrastructure, not simulator
// code: nothing cycle-accurate derives from these reads, and results stay
// content-addressed by inputs alone.
//
//lint:allow detrand server bookkeeping time, not simulated time
func now() time.Time { return time.Now() }

// monoMs returns milliseconds since server start.
func (s *Server) monoMs() int64 { return now().Sub(s.base).Milliseconds() }

// count adds n to a counter under the registry lock.
func (s *Server) count(c *metrics.Counter, n uint64) { s.lm.Count(c, n) }

// gauge sets a gauge under the registry lock.
func (s *Server) gauge(g *metrics.Gauge, v uint64) { s.lm.SetGauge(g, v) }

// observe records a histogram sample under the registry lock.
func (s *Server) observe(h *metrics.Histogram, v uint64) { s.lm.Observe(h, v) }

// Stats snapshots the server's metrics.
func (s *Server) Stats() metrics.Snapshot { return s.lm.Snapshot() }

// FiredFaults returns the host-fault injector's per-site fired counts
// (empty when no plan is armed). Chaos oracles reconcile these against
// the retry/quarantine metrics: every injected executor fault must be
// accounted for as a retry or a quarantine.
func (s *Server) FiredFaults() map[string]uint64 { return s.inj.FiredBySite() }

// Submit parses, validates and enqueues a job spec. It returns the job
// immediately; execution is asynchronous. When a journal is attached the
// submission is durably recorded before Submit returns — a crash after
// the caller sees the job exists replays it on restart.
func (s *Server) Submit(specStr string) (*job, error) {
	return s.submit("", specStr, true)
}

// submit is the shared enqueue path. id is empty for fresh submissions
// (the server assigns the next sequence id) and preset for journal
// replays; record controls whether a submitted record is appended (replay
// skips it — compaction already preserved the original).
func (s *Server) submit(id, specStr string, record bool) (*job, error) {
	spec, err := ParseJobSpec(specStr)
	if err != nil {
		s.count(s.m.jobsRejected, 1)
		return nil, err
	}
	cells := spec.Cells()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.count(s.m.jobsRejected, 1)
		return nil, errDraining
	}
	if len(s.queue) >= s.opts.queueDepth() {
		s.mu.Unlock()
		s.count(s.m.jobsRejected, 1)
		return nil, errQueueFull
	}
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("j%d", s.nextID)
	}
	j := newJob(id, spec, cells, s.monoMs(), s.opts.jobRetryBudget())
	j.onFinish = func(st JobState, errMsg string) {
		s.appendJournal(journalRecord{T: journalTerminal, ID: j.id, State: st, Err: errMsg})
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	queued := len(s.queue)
	s.mu.Unlock()
	if record {
		s.appendJournal(journalRecord{T: journalSubmitted, ID: j.id, Spec: j.specStr})
	}
	s.cond.Signal()
	s.count(s.m.jobsSubmitted, 1)
	s.gauge(s.m.jobsQueued, uint64(queued))
	return j, nil
}

// AttachJournal opens (and compacts) the write-ahead log at path, wires
// every future lifecycle transition through it, and re-submits the
// journaled jobs that never reached a terminal state, preserving their
// ids. Call it once, after NewServer and before serving traffic. It
// returns how many jobs were replayed.
func (s *Server) AttachJournal(path string) (replayed int, err error) {
	jr, pending, maxID, torn, err := OpenJournal(path)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.journal = jr
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.mu.Unlock()
	if torn > 0 {
		s.count(s.m.journalTorn, uint64(torn))
	}
	for _, p := range pending {
		j, err := s.submit(p.ID, p.Spec, false)
		if err != nil {
			// The journaled spec no longer parses or fits (version skew, a
			// full queue): record a terminal failure so the journal converges
			// instead of replaying it forever.
			s.appendJournal(journalRecord{
				T: journalTerminal, ID: p.ID, State: StateFailed, Err: err.Error(),
			})
			continue
		}
		_ = j
		replayed++
	}
	if replayed > 0 {
		s.count(s.m.journalReplayed, uint64(replayed))
	}
	return replayed, nil
}

// appendJournal writes one record to the attached journal, if any.
// Journal trouble is counted but never fails the job path — a full disk
// must not take the queue down.
func (s *Server) appendJournal(rec journalRecord) {
	s.mu.Lock()
	jr := s.journal
	s.mu.Unlock()
	if jr == nil {
		return
	}
	if err := jr.Append(rec); err == nil {
		s.count(s.m.journalRecords, 1)
	}
}

var (
	errDraining  = errors.New("serve: server is draining")
	errQueueFull = errors.New("serve: job queue is full")
)

// Job looks up a job by ID.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobStatuses lists every job in submission order.
func (s *Server) JobStatuses() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel aborts a job; queued cells are skipped, in-flight cells are
// abandoned. Canceling a terminal job is a no-op returning false.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	terminal := j.state.terminal()
	j.mu.Unlock()
	if terminal {
		return false
	}
	j.cancel()
	// A queued job never reaches its executor slot's finish path, so it is
	// finalized here; a running one is finalized by runJob.
	j.finish(StateCanceled, "canceled by client")
	s.count(s.m.jobsCanceled, 1)
	return true
}

// executor is one job-execution worker: it pulls queued jobs until the
// server drains or closes.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			if s.draining {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		queued := len(s.queue)
		s.mu.Unlock()
		s.gauge(s.m.jobsQueued, uint64(queued))
		if s.inj.Hit(hostfault.QueueStall, j.id) {
			time.Sleep(time.Duration(s.inj.SlowMillis()) * time.Millisecond)
		}
		s.runJob(j)
	}
}

// runJob executes one job's cells through the sweep pool.
func (s *Server) runJob(j *job) {
	startMs := s.monoMs()
	if !j.start(startMs) {
		// Canceled while queued.
		return
	}
	s.appendJournal(journalRecord{T: journalStarted, ID: j.id})
	s.observe(s.m.queueWaitMs, uint64(startMs-j.enqueuedAt))
	s.mu.Lock()
	s.running++
	running := s.running
	s.mu.Unlock()
	s.gauge(s.m.jobsRunning, uint64(running))
	defer func() {
		s.mu.Lock()
		s.running--
		running := s.running
		s.mu.Unlock()
		s.gauge(s.m.jobsRunning, uint64(running))
	}()

	specs := make([]sweep.Spec, len(j.cells))
	for i := range j.cells {
		i := i
		cell := j.cells[i]
		specs[i] = sweep.Spec{
			Label: cell.Label(),
			Run: func() (*sim.Report, error) {
				e, cached, shared, err := s.resolveCell(j.ctx, cell, j)
				j.finishCell(i, e, cached, shared, err)
				if err != nil {
					s.count(s.m.cellsFailed, 1)
					return nil, err
				}
				// The report already lives in the cache entry; the sweep
				// result itself is unused.
				return nil, nil
			},
		}
	}
	results := sweep.Run(sweep.Options{
		Jobs: s.opts.cellWorkers(),
		Ctx:  j.ctx,
	}, specs)

	if err := j.ctx.Err(); err != nil {
		j.finish(StateCanceled, "canceled")
		s.count(s.m.jobsCanceled, 1)
		return
	}
	if err := sweep.Errs(results); err != nil {
		j.finish(StateFailed, err.Error())
		s.count(s.m.jobsFailed, 1)
		return
	}
	j.finish(StateDone, "")
	s.count(s.m.jobsDone, 1)
}

// resolveCell produces one cell's result: cache lookup, quarantine
// fast-fail, then single-flight computation (with the retry/backoff loop
// inside the flight, so concurrent identical cells share one retry
// schedule). Identical concurrent cells — within one job or across jobs
// — collapse onto one simulation; identical later cells are pure cache
// hits. Errors are never cached: a failed cell re-runs on resubmit,
// except quarantined fingerprints, which fail fast until cleared.
func (s *Server) resolveCell(ctx context.Context, cell Cell, j *job) (e *Entry, cached, shared bool, err error) {
	fp := cell.Fingerprint()
	if e, ok := s.cache.Get(fp); ok {
		s.count(s.m.cacheHits, 1)
		return e, true, false, nil
	}
	if info, ok := s.quarantine.get(fp); ok {
		s.count(s.m.quarantineHits, 1)
		return nil, false, false, &QuarantineError{
			FP: info.FP, Label: info.Label, Attempts: info.Attempts, Reason: info.Reason,
		}
	}
	s.count(s.m.cacheMisses, 1)
	// A shared flight can fail with the *leader's* context error; when our
	// own context is still live that failure is not ours — retry, at worst
	// becoming the new leader.
	for attempt := 0; ; attempt++ {
		e, shared, err := s.flight.Do(ctx, fp, func() (*Entry, error) {
			return s.runCellAttempts(ctx, cell, j)
		})
		if err != nil && shared && ctx.Err() == nil && attempt < 4 &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		if err != nil {
			return nil, false, shared, err
		}
		if shared {
			s.count(s.m.flightShared, 1)
		}
		return e, false, shared, nil
	}
}

// Drain stops accepting jobs, lets queued and running jobs finish, and
// returns when the server is idle. When ctx expires first, every
// remaining job is canceled and Drain waits for the executors to unwind.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cond.Broadcast()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		s.closeJournal()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		s.closed = true
		pending := make([]*job, 0, len(s.queue))
		pending = append(pending, s.queue...)
		s.queue = nil
		all := make([]*job, 0, len(s.jobs))
		for _, id := range s.order {
			all = append(all, s.jobs[id])
		}
		s.mu.Unlock()
		s.cond.Broadcast()
		for _, j := range pending {
			j.finish(StateCanceled, "server shutdown")
		}
		for _, j := range all {
			j.cancel()
		}
		// The context already expired and every job has been canceled; this
		// final wait is bounded by the executors unwinding and must not be
		// abandoned, or Drain would return with workers still running.
		<-idle //lint:allow ctxflow bounded executor unwind after cancellation, must complete
		s.closeJournal()
		return ctx.Err()
	}
}

// closeJournal detaches and closes the write-ahead log (idempotent); the
// drained server appends nothing further, so the file can be released for
// the next process to compact.
func (s *Server) closeJournal() {
	s.mu.Lock()
	jr := s.journal
	s.journal = nil
	s.mu.Unlock()
	jr.Close()
}

// Handler returns the server's HTTP API.
//
// POST /v1/jobs                 submit {"spec": "..."} -> 202 + status
// GET  /v1/jobs                 list job statuses
// GET  /v1/jobs/{id}            one job's status
// GET  /v1/jobs/{id}/result     full result document (409 until terminal)
// GET  /v1/jobs/{id}/events     SSE progress snapshots until terminal
// POST /v1/jobs/{id}/cancel     abort a job
// GET  /v1/cells/{fp}           one cached report, verbatim bytes
// GET  /v1/quarantine           quarantined fingerprints
// DELETE /v1/quarantine/{fp}    clear one quarantine entry
// GET  /v1/stats                metrics snapshot
// GET  /healthz                 liveness (503 while draining)
//
// The whole API sits behind a recover middleware (handler panics become
// 500s and count serve.http.panics) and, when Options.RequestTimeout is
// set, a timeout handler for every route except the SSE events stream.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.JobStatuses()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		writeJSON(w, http.StatusOK, j.status())
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.withJob(s.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.withJob(s.handleEvents))
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		if !s.Cancel(j.id) {
			writeError(w, http.StatusConflict, "job is already terminal")
			return
		}
		writeJSON(w, http.StatusOK, j.status())
	}))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		s.Cancel(j.id)
		writeJSON(w, http.StatusOK, j.status())
	}))
	mux.HandleFunc("GET /v1/cells/{fp}", s.handleCell)
	mux.HandleFunc("GET /v1/quarantine", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"quarantined": s.quarantine.list()})
	})
	mux.HandleFunc("DELETE /v1/quarantine/{fp}", func(w http.ResponseWriter, r *http.Request) {
		fp := strings.ToLower(r.PathValue("fp"))
		if !s.quarantine.clear(fp) {
			writeError(w, http.StatusNotFound, "fingerprint is not quarantined")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"cleared": fp})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	var h http.Handler = mux
	if d := s.opts.RequestTimeout; d > 0 {
		// The events stream is exempt: it is long-lived by design, bounded
		// by its own heartbeats and the client context instead.
		outer := http.NewServeMux()
		outer.HandleFunc("GET /v1/jobs/{id}/events", s.withJob(s.handleEvents))
		outer.Handle("/", http.TimeoutHandler(h, d, `{"error":"request timed out"}`))
		h = outer
	}
	return s.recoverHandler(h)
}

// recoverHandler is the outermost middleware: a panicking handler becomes
// a 500 with a JSON body instead of a killed connection, and the panic is
// counted. http.ErrAbortHandler re-panics — it is net/http's sanctioned
// way to abort a response and must keep propagating.
func (s *Server) recoverHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.count(s.m.httpPanics, 1)
			writeError(w, http.StatusInternalServerError, "internal server error")
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Spec string `json:"spec"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, err := s.Submit(body.Spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, j.status())
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		h(w, r, j)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, j *job) {
	res, ok := j.result()
	if !ok {
		writeError(w, http.StatusConflict, "job is not terminal yet; poll status or watch events")
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleEvents streams progress snapshots as server-sent events: one
// `progress` event per tick while the job runs, then a final `done` event
// with the terminal status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string, st JobStatus) bool {
		raw, err := json.Marshal(st)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	ticker := time.NewTicker(s.opts.watchInterval())
	defer ticker.Stop()
	// Heartbeat comments keep the connection visibly alive (and dead
	// clients detectable) when the snapshot interval is long.
	heartbeat := time.NewTicker(s.opts.sseHeartbeat())
	defer heartbeat.Stop()
	for {
		st := j.status()
		if st.State.terminal() {
			send("done", st)
			return
		}
		if !send("progress", st) {
			return
		}
		select {
		case <-ticker.C:
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-j.finished:
		case <-r.Context().Done():
			return
		}
	}
}

// handleCell serves one cached report verbatim — the exact bytes
// sim.Report.JSON produced, so a client diffing two fetches of one
// fingerprint sees byte identity.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	fp := strings.ToLower(r.PathValue("fp"))
	e, ok := s.cache.Get(fp)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for this fingerprint")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Input-Fingerprint", e.InputFP)
	w.Header().Set("X-Report-Fingerprint", e.ReportFP)
	w.WriteHeader(http.StatusOK)
	w.Write(e.JSON)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	raw, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(raw)
	w.Write([]byte("\n"))
}
