// Crash-safe job journal: an append-only write-ahead log of job lifecycle
// records under the cache directory (or wherever -journal points). The
// journal is the Yu et al. move at the service layer — durable state kept
// off the fragile path — so a SIGKILL'd glsimd restarted with the same
// -journal replays every non-terminal job. Re-execution is safe because
// results are content-addressed: recovered cells resolve as byte-identical
// cache hits (with -cache-dir) or re-simulate to the same bytes.
//
// On-disk format: one record per line, "crc32hex json\n", where the CRC
// (IEEE) covers the JSON bytes. Appends are fsync'd. A torn tail — the
// partial last line a crash mid-append leaves — is tolerated on open:
// scanning stops at the first record whose CRC or framing fails, and the
// journal is compacted (pending submissions only, temp file + rename)
// before reopening for append, so torn bytes never accumulate.
package serve

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"encoding/json"
)

// Journal record types.
const (
	journalSubmitted = "submitted"
	journalStarted   = "started"
	journalTerminal  = "terminal"
	// journalMark carries the job-id high-water mark through compaction:
	// terminal jobs are dropped, but their ids must never be reissued (a
	// client holding an old job URL would silently watch a stranger).
	journalMark = "mark"
)

// journalRecord is one WAL line's payload.
type journalRecord struct {
	// T is the record type: submitted, started, terminal.
	T string `json:"t"`
	// ID is the job id the record describes.
	ID string `json:"id"`
	// Spec is the canonical job spec (submitted records only).
	Spec string `json:"spec,omitempty"`
	// State is the terminal state (terminal records only).
	State JobState `json:"state,omitempty"`
	// Err is the terminal error message, if any.
	Err string `json:"err,omitempty"`
}

// PendingJob is one journaled job that never reached a terminal state —
// the unit of restart recovery.
type PendingJob struct {
	ID   string
	Spec string
}

// Journal is the open write-ahead log. Appends are serialized and
// fsync'd; a Journal is safe for concurrent use.
type Journal struct {
	path string

	mu sync.Mutex
	//glvet:guardedby mu
	f *os.File
	//glvet:guardedby mu
	records uint64
}

// OpenJournal opens (creating if absent) the journal at path, replays its
// records, compacts it down to the pending submissions, and returns the
// journal ready for appends plus the recovery state: the pending jobs in
// submission order, the highest numeric job id seen (so the server's id
// sequence continues past recovered jobs), and how many torn/corrupt
// trailing lines were dropped.
func OpenJournal(path string) (j *Journal, pending []PendingJob, maxID int, torn int, err error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, 0, 0, fmt.Errorf("serve: journal: %w", err)
		}
	}
	pending, maxID, torn, err = scanJournal(path)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	// Compact: rewrite only the pending submissions (temp file + rename),
	// dropping terminal jobs and any torn tail. A crash during compaction
	// leaves either the old or the new file — both are valid journals.
	tmp, err := os.CreateTemp(filepath.Dir(path), "journal-*.tmp")
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("serve: journal compact: %w", err)
	}
	recs := make([]journalRecord, 0, len(pending)+1)
	if maxID > 0 {
		recs = append(recs, journalRecord{T: journalMark, ID: fmt.Sprintf("j%d", maxID)})
	}
	for _, p := range pending {
		recs = append(recs, journalRecord{T: journalSubmitted, ID: p.ID, Spec: p.Spec})
	}
	for _, rec := range recs {
		line, err := journalLine(rec)
		if err == nil {
			_, err = tmp.WriteString(line)
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, nil, 0, 0, fmt.Errorf("serve: journal compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, nil, 0, 0, fmt.Errorf("serve: journal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, 0, 0, fmt.Errorf("serve: journal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, 0, 0, fmt.Errorf("serve: journal compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("serve: journal: %w", err)
	}
	return &Journal{path: path, f: f}, pending, maxID, torn, nil
}

// scanJournal reads every valid record, stopping at the first torn or
// corrupt line.
func scanJournal(path string) (pending []PendingJob, maxID int, torn int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("serve: journal: %w", err)
	}
	defer f.Close()

	type jobLog struct {
		spec     string
		order    int
		terminal bool
	}
	jobs := map[string]*jobLog{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	valid := true
	for sc.Scan() {
		if !valid {
			// Records past the first bad line are unreachable: the bad line
			// may have swallowed framing, so nothing after it is trusted.
			torn++
			continue
		}
		rec, ok := parseJournalLine(sc.Text())
		if !ok {
			valid = false
			torn++
			continue
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.ID, "j")); err == nil && n > maxID {
			maxID = n
		}
		switch rec.T {
		case journalSubmitted:
			if _, dup := jobs[rec.ID]; !dup {
				jobs[rec.ID] = &jobLog{spec: rec.Spec, order: len(order)}
				order = append(order, rec.ID)
			}
		case journalTerminal:
			if jl, ok := jobs[rec.ID]; ok {
				jl.terminal = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, 0, fmt.Errorf("serve: journal scan: %w", err)
	}
	for _, id := range order {
		if jl := jobs[id]; !jl.terminal {
			pending = append(pending, PendingJob{ID: id, Spec: jl.spec})
		}
	}
	return pending, maxID, torn, nil
}

// journalLine frames one record: crc32(json) in fixed-width hex, a space,
// the JSON, a newline.
func journalLine(rec journalRecord) (string, error) {
	raw, err := json.Marshal(rec)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(raw), raw), nil
}

// parseJournalLine validates framing and CRC; ok is false for torn or
// corrupt lines.
func parseJournalLine(line string) (journalRecord, bool) {
	crcHex, raw, found := strings.Cut(line, " ")
	if !found || len(crcHex) != 8 {
		return journalRecord{}, false
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return journalRecord{}, false
	}
	if crc32.ChecksumIEEE([]byte(raw)) != uint32(want) {
		return journalRecord{}, false
	}
	var rec journalRecord
	if err := json.Unmarshal([]byte(raw), &rec); err != nil {
		return journalRecord{}, false
	}
	return rec, true
}

// Append writes one record and fsyncs. Errors degrade to best-effort:
// the caller logs/counts but never fails the job — a full disk must not
// take the queue down with it.
func (j *Journal) Append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	line, err := journalLine(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serve: journal is closed")
	}
	if _, err := j.f.WriteString(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.records++
	return nil
}

// Records returns how many records this process appended.
func (j *Journal) Records() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Close closes the underlying file; further appends fail.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}
