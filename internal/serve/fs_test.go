package serve

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/serve/hostfault"
)

// fakeFS is an in-memory spillFS with switchable failures per operation.
type fakeFS struct {
	mu    sync.Mutex
	files map[string][]byte
	tmpN  int

	failMkdir  bool
	failRead   bool
	failWrite  bool
	failRename bool
	removed    []string
}

var errFakeFS = errors.New("fakefs: injected failure")

func newFakeFS() *fakeFS { return &fakeFS{files: map[string][]byte{}} }

func (f *fakeFS) MkdirAll(dir string) error {
	if f.failMkdir {
		return errFakeFS
	}
	return nil
}

func (f *fakeFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failRead {
		return nil, errFakeFS
	}
	raw, ok := f.files[name]
	if !ok {
		return nil, errFakeFS
	}
	return append([]byte(nil), raw...), nil
}

func (f *fakeFS) WriteTemp(dir string, data []byte) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failWrite {
		return "", errFakeFS
	}
	f.tmpN++
	name := dir + "/tmp-" + string(rune('a'+f.tmpN))
	f.files[name] = append([]byte(nil), data...)
	return name, nil
}

func (f *fakeFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failRename {
		return errFakeFS
	}
	f.files[newpath] = f.files[oldpath]
	delete(f.files, oldpath)
	return nil
}

func (f *fakeFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.files, name)
	f.removed = append(f.removed, name)
	return nil
}

func testEntry(t *testing.T) *Entry {
	t.Helper()
	e, err := newEntry("cafef00dcafef00d", []byte(`{"fingerprint":"beadbeadbeadbead","barrier_episodes":3}`))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCacheSpillWriteFailureDegrades: a failed spill write returns an
// error but the entry still serves from the memory tier.
func TestCacheSpillWriteFailureDegrades(t *testing.T) {
	fs := newFakeFS()
	fs.failWrite = true
	c := NewCache(8, "spill")
	c.fs = fs
	e := testEntry(t)
	if err := c.Put(e); err == nil {
		t.Fatal("Put with failing WriteTemp returned nil error")
	}
	if got, ok := c.Get(e.InputFP); !ok || !bytes.Equal(got.JSON, e.JSON) {
		t.Fatalf("memory tier lost the entry: ok=%v", ok)
	}
}

// TestCacheSpillRenameFailureCleansTemp: a failed publish removes the
// orphaned temp file and degrades like a write failure.
func TestCacheSpillRenameFailureCleansTemp(t *testing.T) {
	fs := newFakeFS()
	fs.failRename = true
	c := NewCache(8, "spill")
	c.fs = fs
	if err := c.Put(testEntry(t)); err == nil {
		t.Fatal("Put with failing Rename returned nil error")
	}
	if len(fs.removed) != 1 {
		t.Fatalf("temp file not cleaned up: removed=%v", fs.removed)
	}
}

// TestCacheSpillReadFailureIsMiss: an unreadable spill file is a plain
// cache miss, not an error surfaced to the job.
func TestCacheSpillReadFailureIsMiss(t *testing.T) {
	fs := newFakeFS()
	c := NewCache(8, "spill")
	c.fs = fs
	e := testEntry(t)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	// Evict the memory copy by building a fresh cache over the same fs
	// (same spill dir), then fail reads.
	c2 := NewCache(8, "spill")
	c2.fs = fs
	fs.failRead = true
	if _, ok := c2.Get(e.InputFP); ok {
		t.Fatal("failing read produced a hit")
	}
	fs.failRead = false
	if got, ok := c2.Get(e.InputFP); !ok || !bytes.Equal(got.JSON, e.JSON) {
		t.Fatalf("disk tier did not recover: ok=%v", ok)
	}
}

// TestCacheSpillCorruptionIsMiss: corrupt spill bytes (injected through
// faultFS, as a host-fault plan would) fail entry validation and read as
// a miss instead of poisoning the cache.
func TestCacheSpillCorruptionIsMiss(t *testing.T) {
	fs := newFakeFS()
	c := NewCache(8, "spill")
	c.fs = fs
	e := testEntry(t)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	plan, err := hostfault.ParsePlan("seed=3,spill.corrupt#1")
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCache(8, "spill")
	c2.fs = faultFS{fs: fs, inj: hostfault.NewInjector(plan)}
	if _, ok := c2.Get(e.InputFP); ok {
		t.Fatal("corrupted spill bytes produced a hit")
	}
	// The second read passes the first-1 window and recovers cleanly.
	if got, ok := c2.Get(e.InputFP); !ok || !bytes.Equal(got.JSON, e.JSON) {
		t.Fatalf("post-corruption read did not recover: ok=%v", ok)
	}
}

// TestCacheSpillMkdirFailure: an unwritable spill root degrades Put the
// same way.
func TestCacheSpillMkdirFailure(t *testing.T) {
	fs := newFakeFS()
	fs.failMkdir = true
	c := NewCache(8, "spill")
	c.fs = fs
	if err := c.Put(testEntry(t)); err == nil {
		t.Fatal("Put with failing MkdirAll returned nil error")
	}
}
