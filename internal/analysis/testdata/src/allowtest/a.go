// Package allowtest exercises the suppression machinery: same-line and
// previous-line allows, doc-comment (whole-function) allows, and the
// malformed allow (no reason), which is itself reported.
package allowtest

func f() {
	mark() //lint:allow demo same-line suppression
	//lint:allow demo previous-line suppression
	mark()
	mark() // reported: no allow covers this line
}

// scoped has a doc-comment allow covering the whole function.
//
//lint:allow demo the entire body is exempt
func scoped() {
	mark()
	mark()
}

//lint:allow demo
func malformed() { mark() }

// stale carries an allow that matches no diagnostic: the code it once
// excused is gone, and the comment itself is reported.
func stale() {
	//lint:allow demo nothing here calls the flagged function anymore
	_ = 0
}

func mark() {}
