package lockguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata/src/lockguardtest", lockguard.Analyzer)
}
