// Package lockguardtest is the lockguard fixture: guardedby annotations
// checked across the lock idioms the repo uses.
package lockguardtest

import "sync"

type table struct {
	mu sync.Mutex
	// count is the running total.
	//glvet:guardedby mu
	count int
	items []int //glvet:guardedby mu
}

// get reads under the lock: clean.
func (t *table) get() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// put writes under a paired Lock/Unlock: clean.
func (t *table) put(v int) {
	t.mu.Lock()
	t.count = v
	t.mu.Unlock()
}

// bareRead reads without the lock.
func (t *table) bareRead() int {
	return t.count // want `read of table.count requires holding t.mu`
}

// bareWrite writes without the lock.
func (t *table) bareWrite() {
	t.count++ // want `write to table.count requires holding t.mu`
}

// afterUnlock touches the field once the lock is gone.
func (t *table) afterUnlock() int {
	t.mu.Lock()
	t.mu.Unlock()
	return t.count // want `read of table.count requires holding t.mu`
}

// oneArmOnly locks on a single branch, so the access is not dominated.
func (t *table) oneArmOnly(p bool) int {
	if p {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	return t.count // want `read of table.count requires holding t.mu`
}

// bothArms locks on every path: clean.
func (t *table) bothArms(p bool) int {
	if p {
		t.mu.Lock()
	} else {
		t.mu.Lock()
	}
	defer t.mu.Unlock()
	return t.count
}

// elementWrite mutates through the field, which is a write.
func (t *table) elementWrite(i int) {
	t.items[i] = 1 // want `write to table.items requires holding t.mu`
}

// loopHeld keeps the lock across the loop: clean.
func (t *table) loopHeld() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := 0
	for _, v := range t.items {
		s += v
	}
	return s
}

// closureEscapes runs later with no lock of its own.
func (t *table) closureEscapes() func() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return func() int {
		return t.count // want `read of table.count requires holding t.mu`
	}
}

// closureLocks takes the lock inside the literal: clean.
func (t *table) closureLocks() func() int {
	return func() int {
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.count
	}
}

// newTable initializes a fresh object: no lock needed yet.
func newTable() *table {
	t := &table{}
	t.count = 1
	t.items = []int{1, 2, 3}
	return t
}

// wrongInstance holds a's lock while touching b.
func wrongInstance(a, b *table) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.count // want `read of table.count requires holding b.mu`
}

// sanctioned documents a lock-free fast path.
func (t *table) sanctioned() int {
	return t.count //lint:allow lockguard publish-once field read on the fast path
}

type rwtable struct {
	mu sync.RWMutex
	//glvet:guardedby mu
	vals map[string]int
}

// rlockRead reads under the shared lock: clean.
func (r *rwtable) rlockRead(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.vals[k]
}

// rlockWrite writes under only the shared lock.
func (r *rwtable) rlockWrite(k string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.vals[k] = 1 // want `write to rwtable.vals holds r.mu read-locked`
}

// lockWrite writes under the exclusive lock: clean.
func (r *rwtable) lockWrite(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vals[k] = 1
}

type shardSet struct {
	shards [4]shard
}

type shard struct {
	mu sync.Mutex
	//glvet:guardedby mu
	n int
}

// shardAccess locks the same indexed shard it touches: clean.
func (s *shardSet) shardAccess(i int) int {
	s.shards[i].mu.Lock()
	defer s.shards[i].mu.Unlock()
	return s.shards[i].n
}

// crossShard locks one shard and reads another.
func (s *shardSet) crossShard(i, j int) int {
	s.shards[i].mu.Lock()
	defer s.shards[i].mu.Unlock()
	return s.shards[j].n // want `read of shard.n requires holding s.shards\[j\].mu`
}

type badAnnot struct {
	lock sync.Mutex
	//glvet:guardedby mux
	x int // want `glvet:guardedby mux: struct badAnnot has no sync.Mutex/RWMutex field "mux"`
}

// use keeps the fixture free of unused warnings. b.x is not guarded — its
// annotation was rejected — so the bare access is clean.
func use(t *table, r *rwtable, s *shardSet, b *badAnnot) {
	_ = t.get()
	t.put(1)
	_ = newTable()
	_ = b.x
}
