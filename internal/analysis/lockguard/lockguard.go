// Package lockguard implements the glvet analyzer that machine-enforces
// the repo's locking discipline: a struct field annotated
//
//	//glvet:guardedby mu
//
// (in the field's doc or trailing comment; mu names a sync.Mutex or
// sync.RWMutex field of the same struct) may only be read while the same
// receiver's mutex is held (Lock or RLock) and only be written under the
// exclusive Lock. Before PR 9 this discipline lived in prose comments
// ("guarded by mu") and the runtime race detector; the annotation makes it
// a compile-time contract, the way //glvet:cyclepath made determinism one.
//
// The check runs the framework's intra-procedural held-locks flow analysis
// (analysis.WalkLocks) over every function in the target packages: an
// access to a guarded field through base expression B must be dominated by
// B.mu.Lock() (or RLock for reads) on every path reaching it. Lock
// identity is syntactic — the access base and the lock receiver must print
// identically ("s.order" is guarded by "s.mu", "c.shards[i].order" by
// "c.shards[i].mu") — which under-approximates "held" and so errs toward
// reporting, the safe direction for a guard.
//
// Two sanctioned escapes:
//
//   - Constructors: accesses through a variable the function itself
//     created (&T{...}, T{...} or new(T)) are skipped — an object that has
//     not escaped needs no lock.
//   - `//lint:allow lockguard <reason>` suppresses a finding for sanctioned
//     lock-free fast paths (atomics, publish-once fields), with the reason
//     documenting why the access is safe.
//
// Writes through a guarded field (element stores, taking its address) are
// writes for guard purposes: mutating what the field reaches needs the
// same exclusion as replacing the field. Method calls on a guarded field
// count as reads — a pointer-receiver method may mutate, so packages using
// RWMutex should annotate with that in mind.
//
// Malformed annotations (naming a missing or non-mutex field) are reported
// at the annotation itself, so the contract cannot silently rot.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "check //glvet:guardedby struct-field annotations: guarded fields accessed only under the annotated mutex",
	Run:  run,
}

// directive is the annotation prefix inside a comment.
const directive = "//glvet:guardedby"

// guardedField records one annotated field.
type guardedField struct {
	structName string
	mutex      string
}

func run(pass *analysis.Pass) error {
	for _, pkg := range pass.Packages {
		guarded := collectGuarded(pass, pkg)
		if len(guarded) == 0 {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFunc(pass, pkg, fd, guarded)
			}
		}
	}
	return nil
}

// collectGuarded parses every //glvet:guardedby annotation in the package
// and validates the named mutex, reporting malformed annotations.
func collectGuarded(pass *analysis.Pass, pkg *analysis.Package) map[*types.Var]guardedField {
	guarded := map[*types.Var]guardedField{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutexName, ok := fieldDirective(field)
				if !ok {
					continue
				}
				if !structHasMutex(pkg.Info, st, mutexName) {
					pass.Reportf(field.Pos(), "glvet:guardedby %s: struct %s has no sync.Mutex/RWMutex field %q",
						mutexName, ts.Name.Name, mutexName)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guarded[v] = guardedField{structName: ts.Name.Name, mutex: mutexName}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// fieldDirective extracts the guardedby mutex name from a field's doc or
// trailing comment.
func fieldDirective(field *ast.Field) (mutex string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, directive)
			if !found {
				continue
			}
			if name := strings.TrimSpace(rest); name != "" {
				return name, true
			}
		}
	}
	return "", false
}

// structHasMutex reports whether the struct declares a field of the given
// name whose type is sync.Mutex or sync.RWMutex.
func structHasMutex(info *types.Info, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			t := info.TypeOf(field.Type)
			if t == nil {
				return false
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return false
			}
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
		}
	}
	return false
}

// checkFunc runs the held-locks flow analysis over one function and checks
// every guarded-field access against it.
func checkFunc(pass *analysis.Pass, pkg *analysis.Package, fd *ast.FuncDecl, guarded map[*types.Var]guardedField) {
	writes := writeTargets(fd.Body)
	fresh := freshLocals(pkg.Info, fd.Body)
	analysis.WalkLocks(pkg.Info, pkg.Path, fd.Name.Name, fd.Body, func(n ast.Node, held analysis.LockSet) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		v, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return
		}
		g, ok := guarded[v]
		if !ok {
			return
		}
		if id := rootIdent(sel.X); id != nil {
			if obj, ok := pkg.Info.Uses[id].(*types.Var); ok && fresh[obj] {
				return // object created here; not shared yet
			}
		}
		key := types.ExprString(sel.X) + "." + g.mutex
		lock, heldNow := held[key]
		isWrite := writes[sel]
		switch {
		case !heldNow && isWrite:
			pass.Reportf(sel.Sel.Pos(), "write to %s.%s requires holding %s (//glvet:guardedby %s)",
				g.structName, sel.Sel.Name, key, g.mutex)
		case !heldNow:
			pass.Reportf(sel.Sel.Pos(), "read of %s.%s requires holding %s (//glvet:guardedby %s)",
				g.structName, sel.Sel.Name, key, g.mutex)
		case isWrite && lock.Mode == analysis.LockShared:
			pass.Reportf(sel.Sel.Pos(), "write to %s.%s holds %s read-locked (RLock); the write needs the exclusive Lock",
				g.structName, sel.Sel.Name, key)
		}
	})
}

// writeTargets marks the SelectorExprs written through: every selector in
// the chain of an assignment LHS, an IncDec operand, or an address-taken
// expression. Writing an element (or handing out the address) mutates what
// the field reaches, so it needs the same exclusion as replacing the
// field.
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := map[*ast.SelectorExpr]bool{}
	markChain := func(e ast.Expr) {
		for {
			switch t := e.(type) {
			case *ast.ParenExpr:
				e = t.X
			case *ast.StarExpr:
				e = t.X
			case *ast.IndexExpr:
				e = t.X
			case *ast.SliceExpr:
				e = t.X
			case *ast.SelectorExpr:
				writes[t] = true
				e = t.X
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markChain(lhs)
			}
		case *ast.IncDecStmt:
			markChain(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markChain(n.X)
			}
		}
		return true
	})
	return writes
}

// freshLocals collects local variables bound to objects this function
// itself creates (&T{...}, T{...}, new(T)): accesses through them need no
// lock because nothing else can see the object yet.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !isFreshExpr(info, as.Rhs[i]) {
				continue
			}
			if v, ok := info.Defs[id].(*types.Var); ok {
				fresh[v] = true
			}
		}
		return true
	})
	return fresh
}

// isFreshExpr reports whether the expression constructs a brand-new object.
func isFreshExpr(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, lit := e.X.(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new"
			}
		}
	}
	return false
}

// rootIdent unwraps an access base to its leftmost identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.Ident:
			return t
		default:
			return nil
		}
	}
}
