// Package analysistest runs a glvet analyzer over a fixture package and
// checks its diagnostics against `// want` comment expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's stdlib-only
// framework.
//
// A fixture line that should trigger a diagnostic carries a trailing
//
//	// want `regexp`
//
// comment (back-quoted Go string; multiple expectations may follow each
// other on one line). Run fails the test for every diagnostic without a
// matching want on its line and every want with no diagnostic.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package rooted at dir (a path relative to the test's
// working directory, conventionally "testdata/src/<name>") and checks the
// analyzer's diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	prog, targets, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(targets) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", dir, len(targets))
	}
	wants := collectWants(t, prog, targets[0])
	diags, err := analysis.Run(prog, targets, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		if !match(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// match marks and returns whether some want covers the diagnostic.
func match(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// wantRE extracts the back-quoted expectations from a want comment.
var wantRE = regexp.MustCompile("`[^`]*`")

// collectWants parses every `// want` comment in the package.
func collectWants(t *testing.T, prog *analysis.Program, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				exprs := wantRE.FindAllString(rest, -1)
				if len(exprs) == 0 {
					t.Fatalf("%s:%d: malformed want comment (need back-quoted regexp)", pos.Filename, pos.Line)
				}
				for _, q := range exprs {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
