package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockMode distinguishes exclusive from shared (reader) acquisition.
type LockMode int

const (
	// LockExclusive is a Lock() acquisition.
	LockExclusive LockMode = iota + 1
	// LockShared is an RLock() acquisition.
	LockShared
)

// HeldLock describes one lock the flow analysis believes is held at a
// program point.
type HeldLock struct {
	// Mode is the acquisition mode (exclusive or shared).
	Mode LockMode
	// Class names the lock class — "pkgpath.Type.field" for a mutex stored
	// in a named struct's field, "pkgpath.func.var" for a function-local or
	// package-level mutex. Lock-order analysis works over classes; instance
	// identity is the expression key.
	Class string
	// Pos is the acquisition site.
	Pos token.Pos
}

// A LockSet maps a canonical lock expression (the printed receiver of the
// Lock call, e.g. "s.mu" or "c.shards[i].mu") to what is known about the
// held lock. Keys are syntactic: two aliases of one mutex under different
// names are different keys, which under-approximates "held" and so errs
// toward reporting (the safe direction for a guard check).
type LockSet map[string]HeldLock

// clone copies a LockSet.
func (ls LockSet) clone() LockSet {
	out := make(LockSet, len(ls))
	for k, v := range ls {
		out[k] = v
	}
	return out
}

// intersectLocks keeps only locks held on both paths, weakening the mode to
// shared when the two paths disagree.
func intersectLocks(a, b LockSet) LockSet {
	out := LockSet{}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			continue
		}
		v := va
		if vb.Mode != va.Mode {
			v.Mode = LockShared
		}
		out[k] = v
	}
	return out
}

// equalLocks reports whether two sets hold the same keys and modes.
func equalLocks(a, b LockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.Mode != vb.Mode {
			return false
		}
	}
	return true
}

// lockMethods classifies the sync mutex methods by effect.
var lockMethods = map[string]struct {
	acquire bool
	mode    LockMode
}{
	"Lock":    {acquire: true, mode: LockExclusive},
	"RLock":   {acquire: true, mode: LockShared},
	"Unlock":  {acquire: false, mode: LockExclusive},
	"RUnlock": {acquire: false, mode: LockShared},
}

// isMutexType reports whether t (or its pointee) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockOpOf recognizes a mutex Lock/RLock/Unlock/RUnlock call and returns
// the canonical lock key, the lock class, the effect and mode. ok is false
// for anything else (including sync.Once.Do and sync.Cond methods).
func lockOpOf(info *types.Info, funcName string, pkgPath string, call *ast.CallExpr) (key, class string, acquire bool, mode LockMode, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, 0, false
	}
	effect, known := lockMethods[sel.Sel.Name]
	if !known {
		return "", "", false, 0, false
	}
	if !isMutexType(info.TypeOf(sel.X)) {
		return "", "", false, 0, false
	}
	key = types.ExprString(sel.X)
	class = lockClassOf(info, funcName, pkgPath, sel.X)
	return key, class, effect.acquire, effect.mode, true
}

// LockAcquisition recognizes a mutex Lock/RLock call and returns the lock
// class and mode. ok is false for releases and non-lock calls. It is the
// acquisition-site hook for analyzers (lockorder) that work over lock
// classes rather than held sets.
func LockAcquisition(info *types.Info, pkgPath, funcName string, call *ast.CallExpr) (class string, mode LockMode, ok bool) {
	_, class, acquire, mode, ok := lockOpOf(info, funcName, pkgPath, call)
	if !ok || !acquire {
		return "", 0, false
	}
	return class, mode, true
}

// lockClassOf derives the lock class of a mutex expression: the owning
// named struct type plus field name when the mutex is a field, otherwise
// the enclosing function (local vars) or package (package-level vars).
func lockClassOf(info *types.Info, funcName, pkgPath string, x ast.Expr) string {
	switch x := x.(type) {
	case *ast.ParenExpr:
		return lockClassOf(info, funcName, pkgPath, x.X)
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			if named := ReceiverNamed(info.TypeOf(x.X)); named != nil {
				owner := named.Obj()
				path := pkgPath
				if owner.Pkg() != nil {
					path = owner.Pkg().Path()
				}
				return path + "." + owner.Name() + "." + x.Sel.Name
			}
		}
		return pkgPath + "." + types.ExprString(x)
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			if v.Parent() != nil && v.Parent().Parent() == types.Universe {
				// Package-level mutex.
				return pkgPath + "." + x.Name
			}
		}
		return pkgPath + "." + funcName + "." + x.Name
	}
	return pkgPath + "." + types.ExprString(x)
}

// WalkLocks runs the intra-procedural held-locks flow analysis over one
// function body and invokes visit for every AST node with the LockSet held
// on entry to that node (read-only; the walker owns the map).
//
// The analysis is a forward abstract interpretation over the statement
// tree:
//
//   - mu.Lock()/mu.RLock() add the printed receiver expression to the set;
//     mu.Unlock()/mu.RUnlock() remove it; `defer mu.Unlock()` keeps the
//     lock held to the end of the enclosing scope (the dominant idiom).
//   - Branches (if/switch/select) analyze each arm independently and join
//     with set intersection over the arms that fall through; an arm ending
//     in return/break/continue/goto/panic does not contribute.
//   - Loops run the body to a fixpoint (mutely, so visit fires exactly once
//     per node) before the reporting pass; break statements contribute
//     their held set to the loop's exit state.
//   - Function literals are separate execution contexts: their bodies are
//     walked with an empty held set, and lock operations inside them do not
//     leak into the enclosing function's state.
//
// Keys are syntactic, so the analysis under-approximates "held" (aliases
// don't match) — the safe direction for a guardedby check, which would
// rather report a guarded access than silently trust an alias.
func WalkLocks(info *types.Info, pkgPath, funcName string, body *ast.BlockStmt, visit func(n ast.Node, held LockSet)) {
	w := &lockWalker{info: info, pkgPath: pkgPath, funcName: funcName, visit: visit}
	w.walkStmt(body, LockSet{})
}

// lockWalker carries the traversal state.
type lockWalker struct {
	info     *types.Info
	pkgPath  string
	funcName string
	visit    func(ast.Node, LockSet)
	mute     int // >0 during loop fixpoint dry runs
	// breakables collects break-edge states; loops additionally collect
	// continue-edge states.
	breakables []*exitCollector
}

// exitCollector gathers the held sets flowing out of break/continue
// statements targeting one loop or switch.
type exitCollector struct {
	isLoop    bool
	breaks    []LockSet
	continues []LockSet
}

func (w *lockWalker) see(n ast.Node, held LockSet) {
	if w.mute == 0 && w.visit != nil && n != nil {
		w.visit(n, held)
	}
}

// walkStmt interprets one statement. It returns the held set after the
// statement and whether control cannot fall through (return, panic, break,
// continue, goto, or an infinite loop with no break).
func (w *lockWalker) walkStmt(s ast.Stmt, held LockSet) (LockSet, bool) {
	if s == nil {
		return held, false
	}
	w.see(s, held)
	switch s := s.(type) {
	case *ast.BlockStmt:
		term := false
		for _, st := range s.List {
			if term {
				// Unreachable; still visit for completeness with the last
				// known state.
				held, _ = w.walkStmt(st, held)
				continue
			}
			held, term = w.walkStmt(st, held)
		}
		return held, term

	case *ast.ExprStmt:
		return w.walkExpr(s.X, held), false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			held = w.walkExpr(e, held)
		}
		return held, false

	case *ast.IncDecStmt:
		return w.walkExpr(s.X, held), false

	case *ast.SendStmt:
		held = w.walkExpr(s.Chan, held)
		return w.walkExpr(s.Value, held), false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.walkExpr(v, held)
					}
				}
			}
		}
		return held, false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.walkExpr(e, held)
		}
		return held, true

	case *ast.DeferStmt:
		// Arguments and the callee expression evaluate now; the call itself
		// runs at function exit, so a deferred Unlock does not release here
		// (the Lock+defer-Unlock idiom keeps the lock held to scope end).
		w.walkCallParts(s.Call, held)
		return held, false

	case *ast.GoStmt:
		// The spawned call's function/args evaluate now; the body runs on
		// another goroutine with its own (empty) lock context.
		w.walkCallParts(s.Call, held)
		return held, false

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if c := w.nearestBreakable(); c != nil {
				c.breaks = append(c.breaks, held.clone())
			}
		case token.CONTINUE:
			if c := w.nearestLoop(); c != nil {
				c.continues = append(c.continues, held.clone())
			}
		}
		return held, true

	case *ast.IfStmt:
		held, _ = w.walkStmt(s.Init, held)
		held = w.walkExpr(s.Cond, held)
		thenOut, thenTerm := w.walkStmt(s.Body, held.clone())
		elseOut, elseTerm := held.clone(), false
		if s.Else != nil {
			elseOut, elseTerm = w.walkStmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return intersectLocks(thenOut, elseOut), false
		}

	case *ast.SwitchStmt:
		held, _ = w.walkStmt(s.Init, held)
		held = w.walkExpr(s.Tag, held)
		return w.walkClauses(s.Body, held, false)

	case *ast.TypeSwitchStmt:
		held, _ = w.walkStmt(s.Init, held)
		if as, ok := s.Assign.(*ast.AssignStmt); ok {
			for _, e := range as.Rhs {
				held = w.walkExpr(e, held)
			}
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			held = w.walkExpr(es.X, held)
		}
		return w.walkClauses(s.Body, held, false)

	case *ast.SelectStmt:
		return w.walkClauses(s.Body, held, true)

	case *ast.ForStmt:
		held, _ = w.walkStmt(s.Init, held)
		return w.walkLoop(held, s.Cond != nil, func(h LockSet) (LockSet, bool) {
			h = w.walkExpr(s.Cond, h)
			h, term := w.walkStmt(s.Body, h)
			if !term {
				h, _ = w.walkStmt(s.Post, h)
			}
			return h, term
		})

	case *ast.RangeStmt:
		held = w.walkExpr(s.X, held)
		return w.walkLoop(held, true, func(h LockSet) (LockSet, bool) {
			return w.walkStmt(s.Body, h)
		})

	default:
		// EmptyStmt and anything exotic: no flow effect.
		return held, false
	}
}

// walkClauses interprets the case/comm clauses of a switch or select.
// exhaustive marks constructs where some clause always runs (select with
// cases); a switch without a default contributes a pass-through path.
func (w *lockWalker) walkClauses(body *ast.BlockStmt, held LockSet, exhaustive bool) (LockSet, bool) {
	col := &exitCollector{}
	w.breakables = append(w.breakables, col)
	defer func() { w.breakables = w.breakables[:len(w.breakables)-1] }()

	var outs []LockSet
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		entry := held.clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			w.see(cl, entry)
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				entry = w.walkExpr(e, entry)
			}
			stmts = cl.Body
		case *ast.CommClause:
			w.see(cl, entry)
			if cl.Comm == nil {
				hasDefault = true
			} else {
				entry, _ = w.walkStmt(cl.Comm, entry)
			}
			stmts = cl.Body
		default:
			continue
		}
		term := false
		for _, st := range stmts {
			entry, term = w.walkStmt(st, entry)
			if term {
				break
			}
		}
		if !term {
			outs = append(outs, entry)
		}
	}
	outs = append(outs, col.breaks...)
	if !exhaustive && !hasDefault {
		outs = append(outs, held)
	}
	if len(outs) == 0 {
		if len(body.List) == 0 && exhaustive {
			return held, true // select{} blocks forever
		}
		return held, true
	}
	out := outs[0]
	for _, o := range outs[1:] {
		out = intersectLocks(out, o)
	}
	return out, false
}

// walkLoop runs one loop body to fixpoint mutely, then once for real, and
// joins the exit states (normal exit when the loop has a condition, plus
// every break edge).
func (w *lockWalker) walkLoop(held LockSet, canExitNormally bool, body func(LockSet) (LockSet, bool)) (LockSet, bool) {
	entry := held.clone()
	// Dry runs to a fixpoint: the entry state must cover every iteration,
	// so intersect with the state flowing around the back edge.
	w.mute++
	for i := 0; i < 4; i++ {
		col := &exitCollector{isLoop: true}
		w.breakables = append(w.breakables, col)
		out, term := body(entry.clone())
		w.breakables = w.breakables[:len(w.breakables)-1]
		next := entry
		if !term {
			next = intersectLocks(next, out)
		}
		for _, c := range col.continues {
			next = intersectLocks(next, c)
		}
		if equalLocks(next, entry) {
			break
		}
		entry = next
	}
	w.mute--

	// Reporting pass with the converged entry state.
	col := &exitCollector{isLoop: true}
	w.breakables = append(w.breakables, col)
	out, term := body(entry.clone())
	w.breakables = w.breakables[:len(w.breakables)-1]

	var outs []LockSet
	if canExitNormally {
		outs = append(outs, entry)
	} else if !term {
		_ = out // for{} without breaks: fallthrough impossible
	}
	outs = append(outs, col.breaks...)
	if len(outs) == 0 {
		return held, true
	}
	res := outs[0]
	for _, o := range outs[1:] {
		res = intersectLocks(res, o)
	}
	return res, false
}

func (w *lockWalker) nearestBreakable() *exitCollector {
	if len(w.breakables) == 0 {
		return nil
	}
	return w.breakables[len(w.breakables)-1]
}

func (w *lockWalker) nearestLoop() *exitCollector {
	for i := len(w.breakables) - 1; i >= 0; i-- {
		if w.breakables[i].isLoop {
			return w.breakables[i]
		}
	}
	return nil
}

// walkCallParts visits a go/defer statement's call expression without
// applying its lock effects to the current flow.
func (w *lockWalker) walkCallParts(call *ast.CallExpr, held LockSet) {
	w.see(call, held)
	w.visitSubExprs(call.Fun, held)
	for _, a := range call.Args {
		w.visitSubExprs(a, held)
	}
}

// visitSubExprs visits an expression tree without lock effects; function
// literals still get their isolated walk.
func (w *lockWalker) visitSubExprs(e ast.Expr, held LockSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.see(fl, held)
			w.walkFuncLit(fl)
			return false
		}
		if n != nil {
			w.see(n, held)
		}
		return true
	})
}

// walkFuncLit analyzes a function literal body as its own execution
// context with an empty held set.
func (w *lockWalker) walkFuncLit(fl *ast.FuncLit) {
	sub := &lockWalker{info: w.info, pkgPath: w.pkgPath, funcName: w.funcName + ".func", visit: w.visit, mute: w.mute}
	sub.walkStmt(fl.Body, LockSet{})
}

// walkExpr visits one expression tree in evaluation-ish order, applying
// mutex Lock/Unlock effects as they are encountered and isolating function
// literals.
func (w *lockWalker) walkExpr(e ast.Expr, held LockSet) LockSet {
	if e == nil {
		return held
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		w.see(e, held)
		w.walkFuncLit(e)
		return held
	case *ast.CallExpr:
		w.see(e, held)
		held = w.walkExpr(e.Fun, held)
		for _, a := range e.Args {
			held = w.walkExpr(a, held)
		}
		if key, class, acquire, mode, ok := lockOpOf(w.info, w.funcName, w.pkgPath, e); ok {
			if acquire {
				held[key] = HeldLock{Mode: mode, Class: class, Pos: e.Pos()}
			} else {
				delete(held, key)
			}
		}
		return held
	case *ast.ParenExpr:
		w.see(e, held)
		return w.walkExpr(e.X, held)
	case *ast.SelectorExpr:
		w.see(e, held)
		held = w.walkExpr(e.X, held)
		w.see(e.Sel, held)
		return held
	case *ast.IndexExpr:
		w.see(e, held)
		held = w.walkExpr(e.X, held)
		return w.walkExpr(e.Index, held)
	case *ast.SliceExpr:
		w.see(e, held)
		held = w.walkExpr(e.X, held)
		held = w.walkExpr(e.Low, held)
		held = w.walkExpr(e.High, held)
		return w.walkExpr(e.Max, held)
	case *ast.StarExpr:
		w.see(e, held)
		return w.walkExpr(e.X, held)
	case *ast.UnaryExpr:
		w.see(e, held)
		return w.walkExpr(e.X, held)
	case *ast.BinaryExpr:
		w.see(e, held)
		held = w.walkExpr(e.X, held)
		return w.walkExpr(e.Y, held)
	case *ast.KeyValueExpr:
		w.see(e, held)
		held = w.walkExpr(e.Key, held)
		return w.walkExpr(e.Value, held)
	case *ast.CompositeLit:
		w.see(e, held)
		for _, el := range e.Elts {
			held = w.walkExpr(el, held)
		}
		return held
	case *ast.TypeAssertExpr:
		w.see(e, held)
		return w.walkExpr(e.X, held)
	default:
		// Idents, literals, types: visit the subtree, no effects.
		w.visitSubExprs(e, held)
		return held
	}
}
