package faultsite_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/faultsite"
)

func TestFaultsite(t *testing.T) {
	analysistest.Run(t, "testdata/src/faultsitetest", faultsite.Analyzer)
}
