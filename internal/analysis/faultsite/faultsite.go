// Package faultsite implements the glvet analyzer guarding the fault
// subsystem's stringly-typed edges. Fault sites are a typed enum
// (fault.Site), but their plan-syntax keys ("gl.drop", "noc.corrupt", …)
// cross the code as strings in three places where a typo silently disables
// or misreads injection:
//
//   - plan specs passed to fault.ParsePlan: the analyzer evaluates every
//     constant argument with the real parser at analysis time, so a
//     misspelled directive fails the lint run instead of the experiment;
//   - "fault.injected.<site>" metric keys: the per-site counters are named
//     by Site.String(), so a constant string with an undeclared site suffix
//     reads zero forever;
//   - numeric conversions fault.Site(<literal>) outside the fault package:
//     sites must be referenced by their declared constants, which the
//     compiler can check, not by raw indices that rot when the enum grows.
package faultsite

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/fault"
)

// Analyzer is the faultsite analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "faultsite",
	Doc:  "verify fault-plan strings parse and fault.Site references use declared constants",
	Run:  run,
}

// faultPkgSuffix identifies the fault package by import-path suffix.
const faultPkgSuffix = "internal/fault"

// injectedPrefix is the per-site fault counter family (fault.MetricInjected
// + "."); constant strings under it must end in a declared site key.
var injectedPrefix = fault.MetricInjected + "."

// siteKeys are the declared plan-syntax site keys, taken from the enum
// itself so the analyzer can never drift from the parser.
var siteKeys = func() map[string]bool {
	keys := map[string]bool{}
	//lint:allow faultsite enumerating every site starts from the zero value
	for s := fault.Site(0); s < fault.NumSites; s++ {
		keys[s.String()] = true
	}
	return keys
}()

func run(pass *analysis.Pass) error {
	for _, pkg := range pass.Packages {
		// The fault package itself builds these strings dynamically.
		if strings.HasSuffix(pkg.Path, faultPkgSuffix) {
			continue
		}
		for _, f := range pkg.Files {
			checkFile(pass, pkg, f)
		}
	}
	return nil
}

func checkFile(pass *analysis.Pass, pkg *analysis.Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok {
			checkParsePlan(pass, pkg, call)
			checkSiteConversion(pass, pkg, call)
			return true
		}
		if lit, ok := n.(*ast.BasicLit); ok {
			checkInjectedKey(pass, pkg, lit)
		}
		return true
	})
}

// checkParsePlan runs the real plan parser over constant arguments of
// fault.ParsePlan.
func checkParsePlan(pass *analysis.Pass, pkg *analysis.Package, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ParsePlan" || len(call.Args) != 1 {
		return
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), faultPkgSuffix) {
		return
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // dynamic spec (flag value); checked at run time
	}
	spec := constant.StringVal(tv.Value)
	if _, err := fault.ParsePlan(spec); err != nil {
		pass.Reportf(call.Args[0].Pos(), "fault plan %q does not parse: %v", spec, err)
	}
}

// checkSiteConversion flags fault.Site(<literal>) conversions.
func checkSiteConversion(pass *analysis.Pass, pkg *analysis.Package, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Site" {
		return
	}
	tn, ok := pkg.Info.Uses[sel.Sel].(*types.TypeName)
	if !ok || tn.Pkg() == nil || !strings.HasSuffix(tn.Pkg().Path(), faultPkgSuffix) {
		return
	}
	if _, isLit := call.Args[0].(*ast.BasicLit); isLit {
		pass.Reportf(call.Pos(), "raw fault.Site(%s) conversion; use a declared site constant (fault.GLDrop, …)", exprText(call.Args[0]))
	}
}

// checkInjectedKey validates "fault.injected.<site>" string literals.
func checkInjectedKey(pass *analysis.Pass, pkg *analysis.Package, lit *ast.BasicLit) {
	tv, ok := pkg.Info.Types[lit]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	s := constant.StringVal(tv.Value)
	suffix, ok := strings.CutPrefix(s, injectedPrefix)
	if !ok || suffix == "" {
		return
	}
	if !siteKeys[suffix] {
		pass.Reportf(lit.Pos(), "%q names no declared fault site; per-site counters are %q + Site.String()", s, injectedPrefix)
	}
}

func exprText(e ast.Expr) string {
	if lit, ok := e.(*ast.BasicLit); ok {
		return lit.Value
	}
	return "…"
}
