// Package faultsitetest is the faultsite analyzer fixture. Constant plan
// specs run through the real fault.ParsePlan at analysis time; site
// references and injected-counter keys must use declared names.
package faultsitetest

import "repro/internal/fault"

const goodPlan = "seed=7,gl.drop=1e-4,noc.corrupt=2e-5,recovery.retries=2"

const typoPlan = "gl.dorp=1e-4"

func plans() {
	if _, err := fault.ParsePlan(goodPlan); err != nil {
		panic(err)
	}
	if _, err := fault.ParsePlan(typoPlan); err == nil { // want `fault plan "gl.dorp=1e-4" does not parse`
		panic("accepted")
	}
}

func declaredSite() fault.Site {
	return fault.GLDrop
}

func rawSite() fault.Site {
	return fault.Site(3) // want `raw fault.Site\(3\) conversion`
}

// goodKey uses a declared site suffix under the injected-counter family.
const goodKey = "fault.injected.gl.drop"

// badKey misspells the site: the per-site counter would read zero forever.
const badKey = "fault.injected.gl.dorp" // want `"fault.injected.gl.dorp" names no declared fault site`
