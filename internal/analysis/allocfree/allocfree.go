// Package allocfree implements the glvet analyzer that keeps the per-cycle
// hot path allocation-free (DESIGN.md §10). Functions marked with the
// `//glvet:cyclepath` doc-comment directive are scanned for constructs
// that allocate on the Go heap:
//
//   - function literals (closure construction captures variables on the
//     heap; hot paths schedule package-level typed Callbacks instead);
//   - the new and make builtins;
//   - append (may grow the backing array; cycle-path queues preallocate or
//     recycle through free lists);
//   - address-taken composite literals (&T{...}) and slice/map literals
//     (plain struct literals assigned by value are stack zeroing and stay
//     allowed — that is exactly the pool-reset idiom `*m = msg{}`);
//   - implicit interface conversions of non-pointer-shaped values in call
//     arguments (boxing). Pointers, funcs, chans, maps and other interface
//     values convert for free and are not flagged — this is the contract
//     the engine's Callback recv/obj operands rely on.
//
// Intentional allocations — pool warm-up paths, once-per-line directory
// entries, opt-in trace emission — carry a `//lint:allow allocfree <reason>`
// comment, which both suppresses the diagnostic and documents why the
// allocation is acceptable. Calls into fmt are ignored: the cycle path only
// formats on panic/failure paths, which are cold by definition (and
// cyclepure separately bans the printing variants).
//
// The check is local to directive-marked functions rather than call-graph
// driven: allocation is a property of the code that executes, and the
// steady-state gates (testing.AllocsPerRun) catch anything reachable that
// slips through; the analyzer's job is pinpointing the construct.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the allocfree analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "flag allocating constructs (closures, new/make/append, composite literals, interface boxing) in //glvet:cyclepath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, pkg := range pass.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !analysis.HasDirective(fd, "cyclepath") {
					continue
				}
				checkBody(pass, pkg.Info, fd)
			}
		}
	}
	return nil
}

// checkBody scans one cycle-path function for allocating constructs.
func checkBody(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure construction allocates in cycle path; schedule a package-level Callback instead")
			return false // the literal body runs elsewhere; one report is enough
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, lit := n.X.(*ast.CompositeLit); lit {
					pass.Reportf(n.Pos(), "&composite literal allocates in cycle path; recycle from a pool")
					return false
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal allocates in cycle path", kindName(t))
				}
			}
		case *ast.CallExpr:
			checkCall(pass, info, n)
		}
		return true
	})
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}

// checkCall flags allocating builtins and boxing interface conversions in
// one call expression.
func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	// Allocating builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				pass.Reportf(call.Pos(), "new allocates in cycle path; recycle from a pool")
			case "make":
				pass.Reportf(call.Pos(), "make allocates in cycle path; preallocate at construction time")
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in cycle path; preallocate or recycle")
			}
			return
		}
	}

	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}

	// Explicit conversion to an interface type: T(x) where T is an
	// interface boxes non-pointer-shaped x.
	if tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "converting %s to %s boxes (allocates) in cycle path", info.TypeOf(call.Args[0]), tv.Type)
		}
		return
	}

	// Implicit conversions at call boundaries: a non-pointer-shaped
	// argument passed for an interface parameter allocates its box.
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return // cold panic/error formatting; cyclepure bans the printers
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "passing %s as %s boxes (allocates) in cycle path", info.TypeOf(arg), pt)
		}
	}
}

// calleeFunc resolves the called *types.Func when the call is direct.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// boxes reports whether converting a value of type t to an interface
// allocates. Pointer-shaped values (pointers, funcs, chans, maps, unsafe
// pointers) fit in the interface word directly; interfaces re-wrap without
// allocating; untyped nil has no box at all.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Map, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.UnsafePointer
	}
	return true
}
