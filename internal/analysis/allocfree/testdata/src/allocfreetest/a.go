// Package allocfreetest is the allocfree analyzer fixture. Only functions
// carrying the //glvet:cyclepath directive are scanned; coldSetup shows the
// same constructs passing unflagged, and the pool warm-up in hotRecycle
// shows the //lint:allow suppression idiom.
package allocfreetest

type node struct {
	v    int
	next *node
}

type pool struct {
	free  *node
	queue []*node
	cbs   []func()
}

func sched(cb func(recv, obj any, a, b uint64), recv, obj any, a, b uint64) {}

func consume(vals ...any) {}

type stepper interface{ step() }

// hotAllocs exercises every flagged construct.
//
//glvet:cyclepath
func (p *pool) hotAllocs(s stepper, n *node, now uint64) {
	p.cbs = append(p.cbs, func() { _ = now }) // want `append may grow its backing array in cycle path` `closure construction allocates in cycle path`
	q := new(node)                            // want `new allocates in cycle path`
	buf := make([]int, 4)                     // want `make allocates in cycle path`
	r := &node{v: 1}                          // want `&composite literal allocates in cycle path`
	ids := []int{1, 2}                        // want `slice literal allocates in cycle path`
	sched(nil, now, nil, 0, 0)                // want `passing uint64 as any boxes \(allocates\) in cycle path`
	consume(n, now)                           // want `passing uint64 as any boxes \(allocates\) in cycle path`
	_ = any(now)                              // want `converting uint64 to any boxes \(allocates\) in cycle path`
	_, _, _, _ = q, buf, r, ids
	_ = s
}

// hotClean is a correct cycle-path function: pool recycling, value resets,
// and pointer-shaped operands produce no diagnostics.
//
//glvet:cyclepath
func (p *pool) hotClean(now uint64) {
	n := p.free
	if n != nil {
		p.free = n.next
		*n = node{} // value reset: stack zeroing, not an allocation
	}
	sched(nil, p, n, now, 0) // pointer-shaped recv/obj: no boxing
	_ = any(p)               // pointer to interface: free
}

// hotRecycle documents an intentional warm-up allocation with the allow
// idiom; the suppressed line needs no want comment.
//
//glvet:cyclepath
func (p *pool) hotRecycle() *node {
	n := p.free
	if n == nil {
		//lint:allow allocfree pool warm-up; steady state reuses freed nodes
		n = &node{}
	} else {
		p.free = n.next
	}
	return n
}

// coldSetup has no directive: construction-time allocation is fine.
func coldSetup() *pool {
	p := &pool{queue: make([]*node, 0, 64)}
	p.cbs = append(p.cbs, func() {})
	return p
}
