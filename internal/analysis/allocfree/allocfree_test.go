package allocfree_test

import (
	"testing"

	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	analysistest.Run(t, "testdata/src/allocfreetest", allocfree.Analyzer)
}
