// Package ctxflowtest is the ctxflow fixture: blocking channel operations
// on context-carrying paths, with and without cancellation guards.
package ctxflowtest

import (
	"context"
	"time"
)

// waitGuarded selects on ctx.Done alongside the receive: clean.
func waitGuarded(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// bareRecv blocks with no escape hatch.
func bareRecv(ctx context.Context, ch chan int) int {
	_ = ctx
	return <-ch // want `blocking channel receive on the context path \(bareRecv\) without a ctx\.Done\(\) select`
}

// dropped promises cancellation in its signature and never consults it.
func dropped(ctx context.Context, ch chan int) int { // want `context parameter ctx is never used: cancellation is dropped before the function blocks`
	return <-ch // want `blocking channel receive on the context path \(dropped\) without a ctx\.Done\(\) select`
}

// entry reaches the blocking helper; the helper carries no ctx of its own,
// so the finding names the path from the entry.
func entry(ctx context.Context, ch chan int) int {
	_ = ctx
	return helper(ch)
}

func helper(ch chan int) int {
	return <-ch // want `blocking channel receive on the context path \(entry → helper\) without a ctx\.Done\(\) select`
}

// orphan is not reachable from any context entry: clean.
func orphan(ch chan int) int {
	return <-ch
}

// useOrphan keeps orphan referenced without putting it on a context path.
func useOrphan(ch chan int) int {
	return orphan(ch)
}

// deliverOnce sends into a channel it made with buffer 1 (the result
// deliver-once idiom): the send always has room, clean.
func deliverOnce(ctx context.Context) int {
	ch := make(chan int, 1)
	go func() { ch <- 42 }()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// pushUnbuffered blocks on an unbuffered send.
func pushUnbuffered(ctx context.Context, ch chan int) {
	_ = ctx
	ch <- 1 // want `blocking channel send on the context path \(pushUnbuffered\) without a ctx\.Done\(\) select`
}

// raceTwo selects between two data channels with no done case or default.
func raceTwo(ctx context.Context, a, b chan int) int {
	_ = ctx
	select { // want `select on the context path \(raceTwo\) has no ctx\.Done\(\) case and no default`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// pollNonBlocking has a default clause: clean.
func pollNonBlocking(ctx context.Context, ch chan int) int {
	_ = ctx
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// timedWait blocks on a bounded timer, not a hang: clean.
func timedWait(ctx context.Context) {
	_ = ctx
	<-time.After(time.Millisecond)
}

// sanctioned documents an intentional uncancellable wait.
func sanctioned(ctx context.Context, ch chan int) int {
	_ = ctx
	return <-ch //lint:allow ctxflow final handoff must complete even after cancellation
}

// use keeps the fixture free of unused warnings.
func use(ctx context.Context, ch chan int) {
	_ = waitGuarded(ctx, ch)
	_ = bareRecv(ctx, ch)
	_ = dropped(ctx, ch)
	_ = entry(ctx, ch)
	_ = deliverOnce(ctx)
	pushUnbuffered(ctx, ch)
	_ = raceTwo(ctx, ch, ch)
	_ = pollNonBlocking(ctx, ch)
	timedWait(ctx)
	_ = sanctioned(ctx, ch)
}
