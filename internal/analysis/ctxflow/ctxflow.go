// Package ctxflow implements the glvet analyzer that enforces context
// cancellation on the serving-side blocking paths. The simulator core is
// single-threaded and cyclepure keeps it that way; the packages around it
// (internal/serve, internal/sweep, internal/chaos) block on channels by
// design — and every such wait reachable from a context-carrying entry
// point must be abandonable, or a dead peer turns into a leaked goroutine
// and a stuck drain.
//
// Entry points are functions (in the analyzed packages) whose signature
// carries a context.Context or *http.Request parameter. The analyzer walks
// the shared call graph (analysis.BuildCallGraph) from those entries and
// flags, in every reachable function of the target packages:
//
//   - a bare channel receive or send outside any select;
//   - a select with neither a `case <-ctx.Done():` (a receive from Done()
//     on a context.Context value, e.g. `ctx.Done()` or `r.Context().Done()`)
//     nor a `default` clause.
//
// Two idioms are exempt because they cannot hang:
//
//   - sends to a channel the function itself made with a constant positive
//     buffer (`ch := make(chan T, 1)`), the deliver-once result idiom —
//     the first send always has room;
//   - receives from time.After(...), a bounded timed wait.
//
// Separately, a function that accepts a context.Context but never mentions
// it while its body blocks is reported at the parameter: it promises
// cancellation in its signature and drops it before the wait.
//
// Intentional uncancellable waits carry `//lint:allow ctxflow <reason>`.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flag blocking channel ops reachable from context entry points that do not select on ctx.Done()",
	Run:  run,
}

// targetPkgs are the packages whose blocking paths must honor
// cancellation. Fixture packages (under testdata) are always targets.
var targetPkgs = map[string]bool{
	"repro/internal/serve": true,
	"repro/internal/sweep": true,
	"repro/internal/chaos": true,
}

func isTarget(path string) bool {
	return targetPkgs[path] || strings.Contains(path, "/testdata/")
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass.Prog)

	// Only packages in this pass are checked: a package loaded merely as a
	// dependency is not analyzed here (and the driver collects allow
	// comments only from the packages under analysis). isTarget narrows
	// further to the concurrency-relevant tree.
	analyzed := map[*analysis.Package]bool{}
	for _, pkg := range pass.Packages {
		analyzed[pkg] = true
	}
	checked := func(node *analysis.CallNode) bool {
		return analyzed[node.Pkg] && isTarget(node.Pkg.Path)
	}

	// Entry points: context-carrying functions of the target packages,
	// deterministically ordered.
	var entries []*types.Func
	for fn, node := range g.Nodes {
		if checked(node) && ctxParam(fn) != nil {
			entries = append(entries, fn)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Pos() < entries[j].Pos() })

	// BFS with parent links for path rendering in diagnostics.
	parent := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, e := range entries {
		if _, ok := parent[e]; !ok {
			parent[e] = nil
			queue = append(queue, e)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		if checked(node) {
			checkBody(pass, node, chain(parent, fn))
			checkDroppedCtx(pass, node)
		}
		for _, callee := range node.Out {
			if _, seen := parent[callee]; !seen {
				parent[callee] = fn
				queue = append(queue, callee)
			}
		}
	}
	return nil
}

// checkBody flags unguarded blocking channel operations in one reachable
// function.
func checkBody(pass *analysis.Pass, node *analysis.CallNode, path string) {
	info := node.Pkg.Info
	comm := commOps(node.Decl.Body)
	buffered := bufferedLocalChans(info, node.Decl.Body)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if !selectGuarded(info, n) {
				pass.Reportf(n.Pos(), "select on the context path (%s) has no ctx.Done() case and no default", path)
			}
		case *ast.SendStmt:
			if comm[n] {
				return true
			}
			if id, ok := n.Chan.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && buffered[v] {
					return true // deliver-once: buffered channel made here
				}
			}
			pass.Reportf(n.Pos(), "blocking channel send on the context path (%s) without a ctx.Done() select", path)
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || comm[n] || isTimeAfter(info, n.X) {
				return true
			}
			pass.Reportf(n.Pos(), "blocking channel receive on the context path (%s) without a ctx.Done() select", path)
		}
		return true
	})
}

// checkDroppedCtx reports a context.Context parameter that the blocking
// function never uses.
func checkDroppedCtx(pass *analysis.Pass, node *analysis.CallNode) {
	sig, ok := node.Fn.Type().(*types.Signature)
	if !ok {
		return
	}
	var param *types.Var
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isContextType(p.Type()) {
			param = p
			break
		}
	}
	if param == nil || param.Name() == "" || param.Name() == "_" {
		return
	}
	info := node.Pkg.Info
	used := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == param {
			used = true
		}
		return !used
	})
	if used || !hasBlockingOp(info, node.Decl.Body) {
		return
	}
	pass.Reportf(param.Pos(), "context parameter %s is never used: cancellation is dropped before the function blocks",
		param.Name())
}

// hasBlockingOp reports whether the body contains any potentially
// unbounded wait (ignoring guards — the caller already knows no guard can
// reference the dropped context).
func hasBlockingOp(info *types.Info, body *ast.BlockStmt) bool {
	comm := commOps(body)
	buffered := bufferedLocalChans(info, body)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if !hasDefaultClause(n) {
				found = true
			}
		case *ast.SendStmt:
			if comm[n] {
				return true
			}
			if id, ok := n.Chan.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && buffered[v] {
					return true
				}
			}
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !comm[n] && !isTimeAfter(info, n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// commOps collects the channel operations that are select communication
// clauses; their blocking behavior is judged at the select, not the op.
func commOps(body *ast.BlockStmt) map[ast.Node]bool {
	ops := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch s := cc.Comm.(type) {
			case *ast.SendStmt:
				ops[s] = true
			case *ast.ExprStmt:
				if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					ops[u] = true
				}
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 {
					if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						ops[u] = true
					}
				}
			}
		}
		return true
	})
	return ops
}

// selectGuarded reports whether a select can always make progress or be
// cancelled: it has a default clause or receives from a context's Done
// channel.
func selectGuarded(info *types.Info, sel *ast.SelectStmt) bool {
	if hasDefaultClause(sel) {
		return true
	}
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv = s.Rhs[0]
			}
		}
		u, ok := recv.(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			continue
		}
		if isDoneCall(info, u.X) {
			return true
		}
	}
	return false
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isDoneCall matches a call to Done() on a context.Context value.
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isContextType(info.TypeOf(sel.X))
}

// isTimeAfter matches a direct time.After(...) receive operand.
func isTimeAfter(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "After"
}

// bufferedLocalChans collects variables bound to channels the body itself
// makes with a constant positive buffer.
func bufferedLocalChans(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !isBufferedMake(info, as.Rhs[i]) {
				continue
			}
			if v, ok := info.Defs[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// isBufferedMake matches make(chan T, k) with constant k > 0.
func isBufferedMake(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if _, ok := info.TypeOf(call.Args[0]).Underlying().(*types.Chan); !ok {
		return false
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	return constantPositive(tv.Value.ExactString())
}

// constantPositive reports whether a constant's exact decimal string is a
// positive integer.
func constantPositive(s string) bool {
	if s == "" || s[0] == '-' || s == "0" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// ctxParam returns the first context-carrying parameter (context.Context
// or *http.Request) of a function, or nil.
func ctxParam(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) || isHTTPRequest(p.Type()) {
			return p
		}
	}
	return nil
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHTTPRequest matches *net/http.Request, whose Context() carries the
// request's cancellation.
func isHTTPRequest(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// chain renders the entry→fn call path for diagnostics.
func chain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for f := fn; f != nil; f = parent[f] {
		names = append(names, shortName(f))
		if len(names) > 6 {
			names = append(names, "…")
			break
		}
	}
	s := names[len(names)-1]
	for i := len(names) - 2; i >= 0; i-- {
		s += " → " + names[i]
	}
	return s
}

func shortName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := analysis.ReceiverNamed(sig.Recv().Type()); named != nil {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}
