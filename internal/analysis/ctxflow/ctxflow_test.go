package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxflowtest", ctxflow.Analyzer)
}
