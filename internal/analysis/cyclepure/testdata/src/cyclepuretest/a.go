// Package cyclepuretest is the cyclepure analyzer fixture. The root is
// marked with the //glvet:cyclepath directive (the interface-based root
// discovery needs the real engine/barrier packages, which fixtures do not
// import); everything reachable from it is checked, coldPath is not.
package cyclepuretest

import (
	"fmt"
	"os"
	"sync"
	"time"
)

type machine struct {
	mu   sync.Mutex
	work chan int
	out  []int
}

// Tick is the fixture's cycle-path root.
//
//glvet:cyclepath
func (m *machine) Tick(now uint64) bool {
	go m.drain()             // want `goroutine spawned in cycle path`
	m.work <- 1              // want `channel send in cycle path`
	fmt.Println("tick", now) // want `fmt.Println prints from the cycle path`
	m.helper()
	return true
}

// helper is reachable from Tick, so its impurities are flagged too.
func (m *machine) helper() {
	m.mu.Lock()                  // want `sync.Lock in cycle path`
	defer m.mu.Unlock()          // want `sync.Unlock in cycle path`
	time.Sleep(time.Millisecond) // want `time.Sleep blocks the cycle path`
	_ = os.Getenv("SIM_DEBUG")   // want `operating-system call os.Getenv in cycle path`
	select {}                    // want `select in cycle path`
}

func (m *machine) drain() {
	v := <-m.work // want `channel receive in cycle path`
	m.out = append(m.out, v)
}

// coldPath is unreachable from any root: printing here is fine.
func coldPath() {
	fmt.Println("cold")
}
