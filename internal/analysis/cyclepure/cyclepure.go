// Package cyclepure implements the glvet analyzer that enforces purity of
// the simulator's per-cycle hot path. It builds a static call graph over
// the whole loaded program, walks it from the registered cycle-path roots,
// and flags constructs that have no business inside a cycle:
//
//   - goroutine spawns (the simulated system is single-threaded by design;
//     concurrency lives only in internal/sweep, outside the cycle path);
//   - channel operations and select statements;
//   - sync primitives (mutexes block; the cycle path never contends);
//   - fmt/log printing and os/io/bufio/net/syscall calls (I/O stalls and
//     interleaves nondeterministically under parallel sweeps);
//   - time.Sleep and friends.
//
// Roots are discovered three ways: functions carrying a `//glvet:cyclepath`
// doc-comment directive; methods named Tick on types implementing
// repro/internal/engine.Ticker (the per-cycle component contract: G-line
// network FSMs, the NoC router, the recovering-barrier guard); and methods
// named Wait on types implementing repro/internal/barrier.Barrier (the
// per-episode barrier entry points).
//
// The call graph is the framework's shared one (analysis.BuildCallGraph):
// it follows static calls and interface method calls (resolved to every
// in-module implementation); function values that cross a data
// structure — e.g. engine event closures — are not traced, so their
// creation sites should carry the directive when they feed the cycle path.
// Formatting that only builds strings (fmt.Sprintf, fmt.Errorf) is allowed:
// error construction on failure paths is deterministic and cold.
package cyclepure

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the cyclepure analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "cyclepure",
	Doc:  "flag goroutines, channel ops, blocking I/O and printing reachable from the per-cycle hot path",
	Run:  run,
}

// rootIfaces names the interfaces whose in-module implementations are
// cycle-path roots, by (package path, interface name, method name).
var rootIfaces = []struct{ pkg, iface, method string }{
	{"repro/internal/engine", "Ticker", "Tick"},
	{"repro/internal/barrier", "Barrier", "Wait"},
}

// bannedPkgs are packages whose calls block, print or interleave; any call
// into them from the cycle path is flagged.
var bannedPkgs = map[string]string{
	"os":      "operating-system call",
	"io":      "I/O call",
	"bufio":   "buffered I/O call",
	"net":     "network call",
	"syscall": "syscall",
	"log":     "logging call",
}

// printers are the fmt functions that write to a stream (pure string
// builders like Sprintf and Errorf stay allowed).
var printers = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass.Prog)
	roots := findRoots(pass, g)

	// BFS with parent links for path reconstruction in diagnostics.
	parent := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := parent[r]; !ok {
			parent[r] = nil
			queue = append(queue, r)
		}
	}
	targets := map[*analysis.Package]bool{}
	for _, pkg := range pass.Packages {
		targets[pkg] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		if targets[node.Pkg] {
			checkBody(pass, node, chain(parent, fn))
		}
		for _, callee := range node.Out {
			if _, seen := parent[callee]; !seen {
				parent[callee] = fn
				queue = append(queue, callee)
			}
		}
	}
	return nil
}

// chain renders the root→fn call path for diagnostics.
func chain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for f := fn; f != nil; f = parent[f] {
		names = append(names, shortName(f))
		if len(names) > 6 { // keep messages readable on deep paths
			names = append(names, "…")
			break
		}
	}
	s := names[len(names)-1]
	for i := len(names) - 2; i >= 0; i-- {
		s += " → " + names[i]
	}
	return s
}

func shortName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := analysis.ReceiverNamed(sig.Recv().Type()); named != nil {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

// findRoots returns the cycle-path root functions, deterministically
// ordered.
func findRoots(pass *analysis.Pass, g *analysis.CallGraph) []*types.Func {
	ifaces := loadRootIfaces(pass)
	var roots []*types.Func
	for fn, node := range g.Nodes {
		if analysis.HasDirective(node.Decl, "cyclepath") {
			roots = append(roots, fn)
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		for _, ri := range ifaces {
			if fn.Name() == ri.method && analysis.ImplementsVia(fn, ri.iface) {
				roots = append(roots, fn)
				break
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	return roots
}

type rootIface struct {
	method string
	iface  *types.Interface
}

// loadRootIfaces resolves the root interface types from the loaded program
// (absent packages — e.g. in fixtures — are simply skipped; fixtures mark
// roots with the directive instead).
func loadRootIfaces(pass *analysis.Pass) []rootIface {
	var out []rootIface
	for _, ri := range rootIfaces {
		pkg, ok := pass.Prog.ByPath[ri.pkg]
		if !ok {
			continue
		}
		obj, ok := pkg.Types.Scope().Lookup(ri.iface).(*types.TypeName)
		if !ok {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		out = append(out, rootIface{method: ri.method, iface: iface})
	}
	return out
}

// checkBody scans one reachable function (including its nested function
// literals, which run on the same path when invoked) for impure constructs.
func checkBody(pass *analysis.Pass, node *analysis.CallNode, path string) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine spawned in cycle path (%s)", path)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in cycle path (%s)", path)
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in cycle path (%s)", path)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive in cycle path (%s)", path)
			}
		case *ast.CallExpr:
			checkCall(pass, info, n, path)
		}
		return true
	})
}

// checkCall flags calls into banned packages and printing functions.
func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, path string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch p := fn.Pkg().Path(); {
	case p == "fmt" && printers[fn.Name()]:
		pass.Reportf(call.Pos(), "fmt.%s prints from the cycle path (%s)", fn.Name(), path)
	case p == "time" && fn.Name() == "Sleep":
		pass.Reportf(call.Pos(), "time.Sleep blocks the cycle path (%s)", path)
	case p == "sync":
		pass.Reportf(call.Pos(), "sync.%s in cycle path (%s); the simulated system is single-threaded", fn.Name(), path)
	default:
		if why, banned := bannedPkgs[p]; banned {
			pass.Reportf(call.Pos(), "%s %s.%s in cycle path (%s)", why, p, fn.Name(), path)
		}
	}
}
