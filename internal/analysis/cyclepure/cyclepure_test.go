package cyclepure_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cyclepure"
)

func TestCyclepure(t *testing.T) {
	analysistest.Run(t, "testdata/src/cyclepuretest", cyclepure.Analyzer)
}
