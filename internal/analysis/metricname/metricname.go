// Package metricname implements the glvet analyzer for metrics hygiene.
// Every metrics.Registry registration (Counter, Gauge, Histogram) must name
// its metric through a package-level const matching
//
//	^[a-z][a-z0-9._]*$
//
// so the name exists exactly once, greps cleanly, and typos cannot mint a
// second time series. Dynamic name families ("fault.injected." + site) are
// allowed when the leftmost operand of the concatenation is such a const
// (the family prefix). The analyzer also flags one name value registered
// from two different packages (cross-package collisions merge silently in
// Snapshot.Plus), and checks constant-string reads of Snapshot maps
// (Counters/Gauges/Histograms indexing) against the registered names — a
// misspelled read returns zero forever instead of failing.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the metricname analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "require package-level const metric names (lowercase dotted), flag cross-package duplicates and unregistered reads",
	Run:  run,
}

// nameRE is the required metric-name shape.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9._]*$`)

// metricsPkgSuffix identifies the registry package by import-path suffix,
// so fixtures importing the real package and the simulator packages both
// resolve.
const metricsPkgSuffix = "internal/metrics"

// registrationMethods are the Registry methods that mint a metric.
var registrationMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// snapshotMaps are the Snapshot fields whose reads are checked.
var snapshotMaps = map[string]bool{"Counters": true, "Gauges": true, "Histograms": true}

// site is one registration occurrence.
type site struct {
	pos    token.Pos
	pkg    string
	value  string
	prefix bool // value is a family prefix, not a full name
}

func run(pass *analysis.Pass) error {
	var sites []site
	for _, pkg := range pass.Packages {
		for _, f := range pkg.Files {
			collectRegistrations(pass, pkg, f, &sites)
		}
	}
	reportDuplicates(pass, sites)
	checkReads(pass, sites)
	return nil
}

// collectRegistrations finds Registry.{Counter,Gauge,Histogram} calls and
// validates their name argument.
func collectRegistrations(pass *analysis.Pass, pkg *analysis.Package, f *ast.File, sites *[]site) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !registrationMethods[sel.Sel.Name] || len(call.Args) == 0 {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), metricsPkgSuffix) {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		checkName(pass, pkg, call.Args[0], sites)
		return true
	})
}

// checkName validates one registration's name argument: a package-level
// const, or a concatenation led by one (a name family).
func checkName(pass *analysis.Pass, pkg *analysis.Package, arg ast.Expr, sites *[]site) {
	leftmost := arg
	prefix := false
	for {
		bin, ok := leftmost.(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			break
		}
		leftmost = bin.X
		prefix = true
	}
	id := constIdent(leftmost)
	if id == nil {
		pass.Reportf(arg.Pos(), "metric name must be (or start with) a package-level const matching %s, not an inline value", nameRE)
		return
	}
	obj, ok := pkg.Info.Uses[id].(*types.Const)
	if !ok {
		pass.Reportf(arg.Pos(), "metric name must be (or start with) a package-level const, not %s", id.Name)
		return
	}
	if obj.Parent() != obj.Pkg().Scope() {
		pass.Reportf(arg.Pos(), "metric name const %s must be declared at package level", id.Name)
		return
	}
	if obj.Val().Kind() != constant.String {
		pass.Reportf(arg.Pos(), "metric name const %s is not a string", id.Name)
		return
	}
	val := constant.StringVal(obj.Val())
	if !nameRE.MatchString(val) {
		pass.Reportf(arg.Pos(), "metric name %q does not match %s", val, nameRE)
		return
	}
	*sites = append(*sites, site{pos: arg.Pos(), pkg: obj.Pkg().Path(), value: val, prefix: prefix})
}

// constIdent unwraps a (possibly package-qualified) identifier.
func constIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.ParenExpr:
		return constIdent(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// reportDuplicates flags one metric name registered from several packages.
func reportDuplicates(pass *analysis.Pass, sites []site) {
	byValue := map[string][]site{}
	for _, s := range sites {
		byValue[s.value] = append(byValue[s.value], s)
	}
	values := make([]string, 0, len(byValue))
	for v := range byValue {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		group := byValue[v]
		pkgs := map[string]bool{}
		for _, s := range group {
			pkgs[s.pkg] = true
		}
		if len(pkgs) < 2 {
			continue
		}
		for _, s := range group {
			pass.Reportf(s.pos, "metric name %q is registered by %d packages; one name, one owner", v, len(pkgs))
		}
	}
}

// checkReads verifies constant-string indexing of Snapshot maps against the
// registered names (exact match, or a registered family prefix).
func checkReads(pass *analysis.Pass, sites []site) {
	names := map[string]bool{}
	var prefixes []string
	for _, s := range sites {
		if s.prefix {
			prefixes = append(prefixes, s.value)
		} else {
			names[s.value] = true
		}
	}
	sort.Strings(prefixes)
	for _, pkg := range pass.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ix, ok := n.(*ast.IndexExpr)
				if !ok {
					return true
				}
				sel, ok := ix.X.(*ast.SelectorExpr)
				if !ok || !snapshotMaps[sel.Sel.Name] {
					return true
				}
				if !isSnapshotField(pkg, sel) {
					return true
				}
				tv, ok := pkg.Info.Types[ix.Index]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					return true
				}
				name := constant.StringVal(tv.Value)
				if names[name] || hasPrefix(prefixes, name) {
					return true
				}
				pass.Reportf(ix.Index.Pos(), "metric read %q matches no registered metric name; a typo here reads zero forever", name)
				return true
			})
		}
	}
}

// isSnapshotField reports whether the selector resolves to a field of
// metrics.Snapshot.
func isSnapshotField(pkg *analysis.Package, sel *ast.SelectorExpr) bool {
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), metricsPkgSuffix)
}

func hasPrefix(prefixes []string, name string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
