package metricname_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	analysistest.Run(t, "testdata/src/metricnametest", metricname.Analyzer)
}

// TestCrossPackageDuplicate loads two fixture packages registering the same
// metric name and expects the duplicate diagnostic at both sites (the
// analysistest harness is single-package, so this one is hand-rolled).
func TestCrossPackageDuplicate(t *testing.T) {
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	prog, targets, err := loader.Load("testdata/src/dupa", "testdata/src/dupb")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(prog, targets, []*analysis.Analyzer{metricname.Analyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (one per site):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, `"fixture.shared" is registered by 2 packages`) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}
