// Package dupb registers a metric name that package dupa also registers.
package dupb

import "repro/internal/metrics"

const metricShared = "fixture.shared"

func Register(reg *metrics.Registry) {
	reg.Counter(metricShared)
}
