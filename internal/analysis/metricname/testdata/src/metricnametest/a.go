// Package metricnametest is the metricname analyzer fixture. It imports the
// real registry package; registrations and Snapshot reads are the analyzer's
// two subjects.
package metricnametest

import "repro/internal/metrics"

const (
	goodName  = "fixture.events"
	badShape  = "Fixture-Events"
	prefixFam = "fixture.lat."
)

func register(reg *metrics.Registry, kinds []string) {
	reg.Counter(goodName)
	reg.Counter(badShape)         // want `metric name "Fixture-Events" does not match`
	reg.Counter("fixture.inline") // want `must be \(or start with\) a package-level const`
	const local = "fixture.local"
	reg.Gauge(local) // want `must be declared at package level`
	for _, k := range kinds {
		reg.Histogram(prefixFam+k, nil)
	}
	reg.Counter(dynamic(kinds) + goodName) // want `must be \(or start with\) a package-level const`
}

func dynamic(kinds []string) string { return kinds[0] }

func read(snap metrics.Snapshot) uint64 {
	n := snap.Counters[goodName]
	n += snap.Counters["fixture.evnets"] // want `matches no registered metric name`
	if h, ok := snap.Histograms[prefixFam+"noc"]; ok {
		n += h.Count
	}
	return n
}
