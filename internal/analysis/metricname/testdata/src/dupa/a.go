// Package dupa registers a metric name that package dupb also registers.
package dupa

import "repro/internal/metrics"

const metricShared = "fixture.shared"

func Register(reg *metrics.Registry) {
	reg.Counter(metricShared)
}
