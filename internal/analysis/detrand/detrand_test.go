package detrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrandtest", detrand.Analyzer)
}
