// Package detrand implements the glvet analyzer that flags nondeterminism
// sources in non-test simulator code. The reproduction's whole methodology
// rests on bit-identical, seed-deterministic runs (Report.Fingerprint,
// testdata/fingerprints.golden); this analyzer moves that invariant from
// runtime goldens into the static gate.
//
// It reports:
//
//   - wall-clock reads: time.Now, time.Since, time.Until;
//   - global math/rand state: any package-level math/rand (or rand/v2)
//     function other than the generator constructors — simulator code must
//     draw from a per-run seeded *rand.Rand;
//   - `range` over a map composite literal — the key set is static, so the
//     iteration order is gratuitous nondeterminism (the experiments.go
//     Figure 6/7 normalization bug);
//   - `range` over a map whose loop body is order-sensitive: any effect
//     other than per-iteration locals, writes keyed by the range key,
//     commutative integer reductions, constant returns, or the sorted-keys
//     idiom (append the keys, sort, iterate the slice).
//
// The body classification is deliberately conservative: a bare call, an
// append that is never sorted, or a write through anything but the range
// key is assumed to leak iteration order into output. Use the sorted-keys
// idiom (stats.SortedKeys) or a fixed key slice; suppress a genuine
// order-insensitive case with `//lint:allow detrand <reason>`.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "flag nondeterminism sources: wall-clock reads, global math/rand, order-sensitive map iteration",
	Run:  run,
}

// randConstructors are the math/rand functions that build seeded
// generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 seeded sources.
	"NewPCG": true, "NewChaCha8": true,
}

// wallClock are the time package's nondeterministic reads.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	for _, pkg := range pass.Packages {
		for _, f := range pkg.Files {
			checkFile(pass, pkg, f)
		}
	}
	return nil
}

func checkFile(pass *analysis.Pass, pkg *analysis.Package, f *ast.File) {
	// Bodies of every function declaration and literal, for enclosing-scope
	// lookups (the sorted-keys idiom scans the rest of the function).
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkPackageUse(pass, pkg, n)
		case *ast.RangeStmt:
			checkRange(pass, pkg, n, enclosingBody(bodies, n))
		}
		return true
	})
}

// checkPackageUse flags uses of wall-clock and global-rand package
// functions.
func checkPackageUse(pass *analysis.Pass, pkg *analysis.Package, sel *ast.SelectorExpr) {
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if wallClock[obj.Name()] {
			pass.Reportf(sel.Pos(), "wall-clock read time.%s in simulator code; derive timing from engine cycles", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions touch the global source; methods on
		// *rand.Rand have a receiver and are fine.
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[obj.Name()] {
			pass.Reportf(sel.Pos(), "global math/rand source (rand.%s); draw from a per-run seeded *rand.Rand", obj.Name())
		}
	}
}

// enclosingBody returns the smallest recorded function body containing n.
func enclosingBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}

// checkRange analyzes one range statement.
func checkRange(pass *analysis.Pass, pkg *analysis.Package, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if lit := stripParens(rs.X); isCompositeMapLit(lit) {
		pass.Reportf(rs.Pos(), "range over a map literal iterates a static key set in nondeterministic order; iterate a fixed key slice")
		return
	}
	c := &rangeChecker{pass: pass, pkg: pkg, rs: rs}
	c.keyObjs = map[types.Object]bool{}
	c.addKey(rs.Key)
	c.sortedAfter = sortedSlices(pkg, encl, rs)
	if ok, why := c.allowedBlock(rs.Body); !ok {
		pass.Reportf(rs.Pos(), "nondeterministic map iteration: %s; iterate sorted keys (stats.SortedKeys) or a fixed order", why)
	}
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isCompositeMapLit(e ast.Expr) bool {
	_, ok := e.(*ast.CompositeLit)
	return ok
}

// sortedSlices collects objects of slices that a sort.* / slices.Sort* call
// touches after the range statement inside the enclosing function body —
// the back half of the sorted-keys idiom.
func sortedSlices(pkg *analysis.Package, encl *ast.BlockStmt, rs *ast.RangeStmt) map[types.Object]bool {
	sorted := map[types.Object]bool{}
	if encl == nil {
		return sorted
	}
	ast.Inspect(encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := stripParens(arg).(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil {
					sorted[obj] = true
				}
			}
		}
		return true
	})
	return sorted
}

// rangeChecker classifies a map-range body as order-insensitive or not.
type rangeChecker struct {
	pass        *analysis.Pass
	pkg         *analysis.Package
	rs          *ast.RangeStmt
	keyObjs     map[types.Object]bool
	sortedAfter map[types.Object]bool
}

func (c *rangeChecker) addKey(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if obj := c.pkg.Info.Defs[id]; obj != nil {
		c.keyObjs[obj] = true
	}
}

// local reports whether the object is declared inside the range statement
// (per-iteration state, including nested loop variables).
func (c *rangeChecker) local(obj types.Object) bool {
	return obj != nil && c.rs.Pos() <= obj.Pos() && obj.Pos() <= c.rs.End()
}

// rootObj peels selectors, indexes, stars and parens down to the base
// identifier's object.
func (c *rangeChecker) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return c.pkg.Info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// keyedMapIndex reports whether e is m[k] where m is a map and k is one of
// the range keys in scope — a write slot unique to this iteration.
func (c *rangeChecker) keyedMapIndex(e ast.Expr) bool {
	ix, ok := stripParens(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := c.pkg.Info.Types[ix.X]
	if !ok {
		return false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return false
	}
	id, ok := stripParens(ix.Index).(*ast.Ident)
	return ok && c.keyObjs[c.pkg.Info.Uses[id]]
}

// isInteger reports whether the expression has integer type (commutative,
// associative reductions).
func (c *rangeChecker) isInteger(e ast.Expr) bool {
	t := c.pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// allowedBlock walks a statement list; it returns ok=false with the first
// offending construct's description.
func (c *rangeChecker) allowedBlock(b *ast.BlockStmt) (ok bool, why string) {
	for _, s := range b.List {
		if ok, why := c.allowedStmt(s); !ok {
			return false, why
		}
	}
	return true, ""
}

func (c *rangeChecker) allowedStmt(s ast.Stmt) (bool, string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.allowedBlock(s)
	case *ast.DeclStmt, *ast.EmptyStmt:
		return true, ""
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE || s.Tok == token.BREAK {
			return true, ""
		}
		return false, "goto in loop body"
	case *ast.IfStmt:
		if s.Init != nil {
			if ok, why := c.allowedStmt(s.Init); !ok {
				return false, why
			}
		}
		if ok, why := c.allowedBlock(s.Body); !ok {
			return false, why
		}
		if s.Else != nil {
			return c.allowedStmt(s.Else)
		}
		return true, ""
	case *ast.SwitchStmt:
		return c.allowedCases(s.Body)
	case *ast.TypeSwitchStmt:
		return c.allowedCases(s.Body)
	case *ast.ForStmt:
		return c.allowedBlock(s.Body)
	case *ast.RangeStmt:
		c.addKey(s.Key)
		return c.allowedBlock(s.Body)
	case *ast.IncDecStmt:
		return c.allowedReduce(s.X)
	case *ast.AssignStmt:
		return c.allowedAssign(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			tv, ok := c.pkg.Info.Types[r]
			if !(ok && (tv.Value != nil || tv.IsNil())) {
				return false, "return of an iteration-dependent value"
			}
		}
		return true, ""
	case *ast.ExprStmt:
		if call, ok := stripParens(s.X).(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 && c.keyedDelete(call) {
				return true, ""
			}
		}
		return false, "call with effects outside the iteration"
	default:
		return false, "statement with effects outside the iteration"
	}
}

func (c *rangeChecker) allowedCases(body *ast.BlockStmt) (bool, string) {
	for _, s := range body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, cs := range cc.Body {
			if ok, why := c.allowedStmt(cs); !ok {
				return false, why
			}
		}
	}
	return true, ""
}

// keyedDelete allows delete(m, k) with a range key.
func (c *rangeChecker) keyedDelete(call *ast.CallExpr) bool {
	id, ok := stripParens(call.Args[1]).(*ast.Ident)
	return ok && c.keyObjs[c.pkg.Info.Uses[id]]
}

// allowedReduce permits ++/-- and op-assign on per-iteration locals, keyed
// map slots, and integer accumulators (commutative reductions).
func (c *rangeChecker) allowedReduce(target ast.Expr) (bool, string) {
	if c.local(c.rootObj(target)) || c.keyedMapIndex(target) {
		return true, ""
	}
	if c.isInteger(target) {
		return true, ""
	}
	return false, "non-commutative accumulation across iterations"
}

func (c *rangeChecker) allowedAssign(s *ast.AssignStmt) (bool, string) {
	switch s.Tok {
	case token.DEFINE:
		return true, "" // fresh per-iteration locals
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			if id, ok := stripParens(lhs).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if c.local(c.rootObj(lhs)) || c.keyedMapIndex(lhs) {
				continue
			}
			if c.sortedAppend(s, lhs) {
				continue
			}
			return false, "iteration-order-dependent write to " + exprString(lhs)
		}
		return true, ""
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		for _, lhs := range s.Lhs {
			if ok, why := c.allowedReduce(lhs); !ok {
				return false, why
			}
		}
		return true, ""
	default:
		return false, "iteration-order-dependent update"
	}
}

// sortedAppend recognizes the sorted-keys idiom: `s = append(s, ...)` where
// s is sorted after the loop in the same function.
func (c *rangeChecker) sortedAppend(s *ast.AssignStmt, lhs ast.Expr) bool {
	id, ok := stripParens(lhs).(*ast.Ident)
	if !ok || len(s.Rhs) != len(s.Lhs) {
		return false
	}
	obj := c.pkg.Info.Uses[id]
	if obj == nil || !c.sortedAfter[obj] {
		return false
	}
	for i, l := range s.Lhs {
		if l != lhs {
			continue
		}
		call, ok := stripParens(s.Rhs[i]).(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		return ok && fn.Name == "append"
	}
	return false
}

// exprString renders a short description of an lvalue for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return "expression"
	}
}
