// Package detrandtest is the detrand analyzer fixture: each `want` line
// seeds one violation; the unmarked functions are the allowed idioms.
package detrandtest

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `wall-clock read time.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time.Since`
}

func globalRand() int {
	return rand.Intn(6) // want `global math/rand source \(rand.Intn\)`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// mapLitRange reproduces the experiments.go Figure 6/7 normalization bug: a
// range over a map composite literal leaks iteration order into the output.
func mapLitRange() []string {
	var out []string
	for k := range map[string]int{"dsw": 1, "gl": 2} { // want `range over a map literal`
		out = append(out, k)
	}
	return out
}

func orderSensitive(m map[string]int) []string {
	var out []string
	for k := range m { // want `nondeterministic map iteration`
		out = append(out, k)
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func keyedCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intReduce(m map[string]uint64) uint64 {
	var sum uint64
	for _, v := range m {
		sum += v
	}
	return sum
}

func floatReduce(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `nondeterministic map iteration`
		sum += v
	}
	return sum
}

func callsOut(m map[string]int) {
	for k := range m { // want `nondeterministic map iteration`
		process(k)
	}
}

func process(string) {}

func keyedDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func anyNonzero(m map[string]int) bool {
	for _, v := range m {
		if v != 0 {
			return true
		}
	}
	return false
}

// suppressed shows an allow comment absorbing a true positive.
func suppressed(m map[string]int) {
	//lint:allow detrand the fixture exercises suppression
	for k := range m {
		process(k)
	}
}
