package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// writeModule lays out a throwaway module for loader edge-case tests:
// files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module loadertest\n\ngo 1.21\n"
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoaderSkipsConstrainedFiles pins build-constraint handling: a file
// behind `//go:build ignore` (the generator idiom) and another platform's
// _GOOS file must not leak their contents — or their type errors — into
// the loaded package.
func TestLoaderSkipsConstrainedFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/a.go": "package p\n\nfunc A() int { return 1 }\n",
		// Would collide with A and reference an undefined name if loaded.
		"p/gen.go": "//go:build ignore\n\npackage main\n\nfunc main() { undefinedHelper() }\n",
		// Another platform's file: excluded by filename suffix alone.
		"p/b_plan9.go": "package p\n\nfunc A() int { return 2 }\n",
	})
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	_, targets, err := loader.Load(filepath.Join(root, "p"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(targets))
	}
	pkg := targets[0]
	if len(pkg.TypeErrors) != 0 {
		t.Errorf("constrained files leaked type errors: %v", pkg.TypeErrors)
	}
	if len(pkg.Files) != 1 {
		t.Errorf("loaded %d files, want 1 (a.go only)", len(pkg.Files))
	}
}

// TestLoaderTestOnlyPackage pins the test-only-directory contract: a
// directory holding nothing but _test.go files is not a loadable package —
// both an explicit path and a wildcard walk must skip it without error.
func TestLoaderTestOnlyPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"q/q_test.go": "package q\n\nimport \"testing\"\n\nfunc TestQ(t *testing.T) {}\n",
		"r/r.go":      "package r\n\nfunc R() {}\n",
	})
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	_, targets, err := loader.Load(filepath.Join(root, "q"), filepath.Join(root, "..."))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, pkg := range targets {
		if pkg.Path == "loadertest/q" {
			t.Errorf("test-only package loaded as a target: %s", pkg.Path)
		}
	}
	if len(targets) != 1 || targets[0].Path != "loadertest/r" {
		t.Errorf("targets = %v, want [loadertest/r]", paths(targets))
	}
}

// TestLoaderTypeErrorIsSoft pins the broken-package contract: a target
// that fails type-checking loads without panicking, carries its errors in
// TypeErrors, and still exposes a usable (partial) types.Package.
func TestLoaderTypeErrorIsSoft(t *testing.T) {
	root := writeModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nfunc B() int { return undefinedName }\n",
	})
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	_, targets, err := loader.Load(filepath.Join(root, "bad"))
	if err != nil {
		t.Fatalf("load returned hard error for soft type failure: %v", err)
	}
	if len(targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(targets))
	}
	pkg := targets[0]
	if len(pkg.TypeErrors) == 0 {
		t.Error("broken package reported no type errors")
	}
	if pkg.Types == nil {
		t.Error("broken package has no types.Package")
	}
}

func paths(pkgs []*analysis.Package) []string {
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = p.Path
	}
	return out
}
