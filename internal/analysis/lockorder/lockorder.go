// Package lockorder implements the glvet analyzer that detects potential
// deadlocks from inconsistent lock-acquisition order. It builds a
// whole-program lock-order graph whose vertices are lock classes (the named
// struct type plus mutex field, e.g. serve.Server.mu) and whose edges say
// "a lock of class A was held while a lock of class B was acquired". Any
// cycle in that graph is a potential deadlock: two goroutines taking the
// same pair of locks in opposite orders can each end up waiting on the
// other forever.
//
// Edges come from two sources, both driven by the framework's held-locks
// flow analysis (analysis.WalkLocks):
//
//   - direct: inside one function, mu2.Lock() reached while mu1 is held
//     adds mu1→mu2;
//   - transitive: a call reached while mu1 is held adds mu1→C for every
//     class C the callee acquires anywhere in its own call tree, computed
//     as a fixpoint over the shared call graph (analysis.BuildCallGraph),
//     including interface dispatch fanned out to in-module implementations.
//
// Calls under `go` and `defer` statements contribute no transitive edges:
// a spawned goroutine runs with its own (empty) lock context, and a
// deferred call runs at scope exit where the held set is no longer the one
// at the defer statement. Their direct acquisitions still enter the graph
// through their own bodies.
//
// A self-edge — class A acquired while another lock of class A is held —
// is reported too: sync mutexes are not reentrant, and ordering two
// instances of one class is a caller convention the analyzer cannot check,
// so it must be explicitly sanctioned with `//lint:allow lockorder
// <reason>` (e.g. a documented address-ordered pairwise lock).
//
// Each cycle produces exactly one diagnostic, at the earliest edge site in
// the analyzed packages, naming the full cycle path. The analysis is
// class-level, not instance-level: locking b.mu of a *different* B while
// holding a.mu still draws A→B. That over-approximates real deadlocks, the
// useful direction for an order check — a consistent global class order is
// also the discipline human reviewers enforce.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/stats"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "detect lock-order cycles (potential deadlocks) in the whole-program lock-acquisition graph",
	Run:  run,
}

// edgeKey is one ordered pair of lock classes.
type edgeKey struct{ from, to string }

// edgeInfo records where an edge was first observed, preferring sites
// inside the analyzed (target) packages so diagnostics land where the user
// asked to look.
type edgeInfo struct {
	pos      token.Pos
	inTarget bool
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass.Prog)

	target := map[*analysis.Package]bool{}
	for _, pkg := range pass.Packages {
		target[pkg] = true
	}

	nodes := make([]*analysis.CallNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Fn.Pos() < nodes[j].Fn.Pos() })

	edges := map[edgeKey]edgeInfo{}
	addEdge := func(from, to string, pos token.Pos, inTarget bool) {
		k := edgeKey{from, to}
		old, ok := edges[k]
		switch {
		case !ok,
			inTarget && !old.inTarget,
			inTarget == old.inTarget && pos < old.pos:
			edges[k] = edgeInfo{pos: pos, inTarget: inTarget}
		}
	}

	// Scan every function once: record direct acquisitions (for the
	// transitive fixpoint), direct held→acquired edges, and the call sites
	// reached with locks held.
	type callRec struct {
		held     []string
		callees  []*types.Func
		pos      token.Pos
		inTarget bool
	}
	var calls []callRec
	direct := map[*types.Func]map[string]bool{}
	outs := map[*types.Func][]*types.Func{} // call edges minus go/defer calls

	for _, node := range nodes {
		node := node
		fnName := node.Decl.Name.Name
		inTarget := target[node.Pkg]
		skip := skippedCalls(node.Decl.Body)
		dir := map[string]bool{}
		outSeen := map[*types.Func]bool{}
		analysis.WalkLocks(node.Pkg.Info, node.Pkg.Path, fnName, node.Decl.Body, func(n ast.Node, held analysis.LockSet) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if class, _, ok := analysis.LockAcquisition(node.Pkg.Info, node.Pkg.Path, fnName, call); ok {
				dir[class] = true
				for _, h := range classesOf(held) {
					addEdge(h, class, call.Pos(), inTarget)
				}
				return
			}
			if skip[call] {
				return
			}
			callees := g.CalleesAt(node.Pkg.Info, call)
			if len(callees) == 0 {
				return
			}
			for _, f := range callees {
				if !outSeen[f] {
					outSeen[f] = true
					outs[node.Fn] = append(outs[node.Fn], f)
				}
			}
			if len(held) > 0 {
				calls = append(calls, callRec{held: classesOf(held), callees: callees, pos: call.Pos(), inTarget: inTarget})
			}
		})
		if len(dir) > 0 {
			direct[node.Fn] = dir
		}
	}

	// Fixpoint: trans[f] = every lock class f acquires anywhere in its call
	// tree (go/defer calls excluded — see package doc).
	trans := map[*types.Func]map[string]bool{}
	for _, node := range nodes {
		d := direct[node.Fn]
		if d == nil {
			continue
		}
		t := make(map[string]bool, len(d))
		for _, c := range stats.SortedKeys(d) {
			t[c] = true
		}
		trans[node.Fn] = t
	}
	for changed := true; changed; {
		changed = false
		for _, node := range nodes {
			t := trans[node.Fn]
			for _, callee := range outs[node.Fn] {
				for _, c := range stats.SortedKeys(trans[callee]) {
					if t == nil {
						t = map[string]bool{}
						trans[node.Fn] = t
					}
					if !t[c] {
						t[c] = true
						changed = true
					}
				}
			}
		}
	}

	// Transitive edges: held classes at a call site → everything the callee
	// acquires.
	for _, rec := range calls {
		for _, callee := range rec.callees {
			for _, c := range stats.SortedKeys(trans[callee]) {
				for _, h := range rec.held {
					addEdge(h, c, rec.pos, rec.inTarget)
				}
			}
		}
	}

	report(pass, edges)
	return nil
}

// report finds the strongly connected components of the lock-order graph
// and emits one diagnostic per cycle, at its earliest in-target edge site.
func report(pass *analysis.Pass, edges map[edgeKey]edgeInfo) {
	keys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})

	vertSet := map[string]bool{}
	adj := map[string][]string{}
	var verts []string
	for _, k := range keys {
		adj[k.from] = append(adj[k.from], k.to)
		for _, v := range [2]string{k.from, k.to} {
			if !vertSet[v] {
				vertSet[v] = true
				verts = append(verts, v)
			}
		}
	}
	sort.Strings(verts)

	for _, comp := range stronglyConnected(verts, adj) {
		selfLoop := len(comp) == 1
		if selfLoop {
			if _, ok := edges[edgeKey{comp[0], comp[0]}]; !ok {
				continue // single vertex, no cycle through it
			}
		}
		member := map[string]bool{}
		for _, v := range comp {
			member[v] = true
		}
		// The diagnostic site: earliest in-target edge inside the component.
		best := edgeInfo{}
		found := false
		for _, k := range keys {
			info := edges[k]
			if !info.inTarget || !member[k.from] || !member[k.to] {
				continue
			}
			if !found || info.pos < best.pos {
				best, found = info, true
			}
		}
		if !found {
			continue // cycle lives entirely outside the analyzed packages
		}
		if selfLoop {
			pass.Reportf(best.pos, "potential deadlock: %s acquired while already held (lock-order self-cycle)",
				display(comp[0]))
			continue
		}
		path := shortestCycle(comp[0], member, adj)
		parts := make([]string, len(path))
		for i, c := range path {
			parts[i] = display(c)
		}
		pass.Reportf(best.pos, "potential deadlock: lock-order cycle %s", strings.Join(parts, " → "))
	}
}

// stronglyConnected is Tarjan's algorithm; components come out with sorted
// members, ordered by discovery over the sorted vertex list, so reporting
// is deterministic.
func stronglyConnected(verts []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range verts {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	// Order components by smallest member for deterministic reporting.
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// shortestCycle finds a shortest path from start back to itself inside the
// component (BFS over sorted adjacency), rendered with start at both ends.
func shortestCycle(start string, member map[string]bool, adj map[string][]string) []string {
	parent := map[string]string{}
	visited := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !member[v] {
				continue
			}
			if v == start {
				path := []string{start}
				var rev []string
				for x := u; x != start; x = parent[x] {
					rev = append(rev, x)
				}
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return append(path, start)
			}
			if !visited[v] {
				visited[v] = true
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return []string{start, start} // unreachable for a genuine SCC
}

// skippedCalls collects the call expressions under go and defer statements,
// which run in a different lock context than the statement's.
func skippedCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	skip := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			skip[n.Call] = true
		case *ast.DeferStmt:
			skip[n.Call] = true
		}
		return true
	})
	return skip
}

// classesOf returns the sorted distinct lock classes of a held set.
func classesOf(held analysis.LockSet) []string {
	classes := make([]string, 0, len(held))
	for _, k := range stats.SortedKeys(held) {
		classes = append(classes, held[k].Class)
	}
	sort.Strings(classes)
	var out []string
	for _, c := range classes {
		if len(out) == 0 || out[len(out)-1] != c {
			out = append(out, c)
		}
	}
	return out
}

// display trims a lock class to its short package name for diagnostics:
// "repro/internal/serve.Server.mu" → "serve.Server.mu".
func display(class string) string {
	if i := strings.LastIndexByte(class, '/'); i >= 0 {
		return class[i+1:]
	}
	return class
}
