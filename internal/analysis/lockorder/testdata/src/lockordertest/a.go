// Package lockordertest is the lockorder fixture: acquisition-order cycles
// across direct nesting, calls, goroutines and instance pairs.
package lockordertest

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// aThenB nests B's lock inside A's: the first half of the cycle. The
// diagnostic lands here because this is the cycle's earliest edge site.
func aThenB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `potential deadlock: lock-order cycle lockordertest\.A\.mu → lockordertest\.B\.mu → lockordertest\.A\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

// bThenA closes the cycle transitively: A's lock is taken inside a callee
// while B's is held.
func bThenA(a *A, b *B) {
	b.mu.Lock()
	lockA(a)
	b.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

type S struct {
	mu sync.Mutex
	n  int
}

// outer re-enters its own lock class through a callee: sync mutexes are
// not reentrant, so this self-cycle is an unconditional deadlock.
func (s *S) outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner() // want `potential deadlock: lockordertest\.S\.mu acquired while already held \(lock-order self-cycle\)`
}

func (s *S) inner() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

type P struct{ mu sync.Mutex }

// pairLock orders two instances of one class by parameter position — a
// convention the analyzer cannot verify, so the class-level self-edge is
// flagged.
func pairLock(x, y *P) {
	x.mu.Lock()
	y.mu.Lock() // want `potential deadlock: lockordertest\.P\.mu acquired while already held \(lock-order self-cycle\)`
	y.mu.Unlock()
	x.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// first and second take C before D both directly and through a call: a
// consistent order, no cycle.
func first(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func second(c *C, d *D) {
	c.mu.Lock()
	lockD(d)
	c.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

// spawn launches a goroutine that locks F while E is held. The goroutine
// runs with its own lock context, so no E→F edge exists and the F→E order
// in fThenE stays acyclic.
func spawn(e *E, f *F) {
	e.mu.Lock()
	go lockF(f)
	e.mu.Unlock()
}

func fThenE(e *E, f *F) {
	f.mu.Lock()
	lockE(e)
	f.mu.Unlock()
}

func lockE(e *E) {
	e.mu.Lock()
	e.mu.Unlock()
}

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

// use keeps the fixture free of unused warnings.
func use(a *A, b *B, c *C, d *D, e *E, f *F, s *S, p *P) {
	aThenB(a, b)
	bThenA(a, b)
	s.outer()
	pairLock(p, p)
	first(c, d)
	second(c, d)
	spawn(e, f)
	fThenE(e, f)
}
