package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and type-checked module package.
type Package struct {
	// Path is the import path ("repro/internal/sim").
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info carry the go/types results for Files.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check problems. The glvet suite analyzes a
	// building tree, so targets are expected to be error-free; fixtures
	// under testdata may tolerate soft errors.
	TypeErrors []error
}

// A Program is the result of one Loader.Load call.
type Program struct {
	Fset *token.FileSet
	// ByPath maps import path -> package for every module package loaded,
	// including dependencies of the requested patterns.
	ByPath map[string]*Package
}

// SortedPackages returns every loaded module package in import-path order.
func (p *Program) SortedPackages() []*Package {
	paths := make([]string, 0, len(p.ByPath))
	for path := range p.ByPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, len(paths))
	for i, path := range paths {
		pkgs[i] = p.ByPath[path]
	}
	return pkgs
}

// Loader loads module packages from source: it parses and type-checks each
// package exactly once (so type objects are identical across importers'
// views, which the whole-program analyzers rely on) and delegates stdlib
// imports to the go/importer source importer.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module containing dir (or the working
// directory when dir is empty), found by walking up to go.mod.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load expands the patterns to package directories, loads each, and returns
// the program together with the target package list (in pattern order).
// Patterns: a directory path, or a `dir/...` wildcard walking every package
// under dir; `testdata` subtrees are skipped by wildcards but loadable by
// explicit path (the analyzer fixtures live there on purpose).
func (l *Loader) Load(patterns ...string) (*Program, []*Package, error) {
	var dirs []string
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, nil, err
		}
		dirs = append(dirs, expanded...)
	}
	var targets []*Package
	seen := map[string]bool{}
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		if pkg == nil || seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		targets = append(targets, pkg)
	}
	return &Program{Fset: l.Fset, ByPath: l.pkgs}, targets, nil
}

// expand resolves one pattern to absolute package directories.
func (l *Loader) expand(pattern string) ([]string, error) {
	walk := false
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		walk = true
		pattern = rest
		if pattern == "." || pattern == "" {
			pattern = "."
		}
	}
	dir, err := filepath.Abs(pattern)
	if err != nil {
		return nil, err
	}
	if !walk {
		return []string{dir}, nil
	}
	var dirs []string
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps an absolute directory inside the module to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path back to its absolute directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	rel := strings.TrimPrefix(path, l.ModPath+"/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// inModule reports whether the import path belongs to this module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// Import implements types.Importer: module paths load from source through
// the loader's own cache (one canonical types.Package per path); everything
// else — the standard library — goes to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if !l.inModule(path) {
		return l.std.Import(path)
	}
	pkg, err := l.loadDir(l.dirFor(path))
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", path)
	}
	return pkg.Types, nil
}

// loadDir parses and type-checks the package in dir once, caching by import
// path. Returns (nil, nil) when dir has no non-test Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		// Respect build constraints the way the go tool does: both
		// `//go:build` lines and _GOOS/_GOARCH filename suffixes. A file
		// excluded from the host build (generators behind `ignore`, other
		// platforms' sources) must not leak type errors into analysis.
		if match, err := build.Default.MatchFile(dir, e.Name()); err != nil || !match {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{Path: path, Dir: dir, Files: files}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}
