package analysis

import (
	"go/ast"
	"go/types"
)

// A CallNode is one declared function in the whole-program call graph.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out lists the static callees: direct calls, concrete method calls,
	// and interface method calls resolved to every in-module
	// implementation. Calls inside nested function literals count as the
	// enclosing declaration's edges (the literal runs on behalf of its
	// creator as far as reachability is concerned).
	Out []*types.Func
}

// A CallGraph maps every declared function with a body to its node. It is
// the shared substrate of the flow-aware analyzers: cyclepure walks it from
// the cycle-path roots, ctxflow from context-carrying entry points, and
// lockorder propagates transitive lock acquisitions over it.
type CallGraph struct {
	Nodes map[*types.Func]*CallNode

	impls map[string][]*types.Func
}

// BuildCallGraph collects every declared function in the loaded program and
// its static call edges. Function values that cross a data structure (e.g.
// engine event closures) are not traced; analyzers that care mark their
// creation sites with directives instead.
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*CallNode{}}
	pkgs := prog.SortedPackages()
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[fn] = &CallNode{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
	}
	g.impls = methodImplementers(pkgs)
	for _, node := range g.Nodes {
		node.Out = g.callEdges(node)
	}
	return g
}

// CalleesAt resolves one call expression to its static callees: the direct
// or concrete-method target, or — for interface dispatch — every in-module
// implementation of the method.
func (g *CallGraph) CalleesAt(info *types.Info, call *ast.CallExpr) []*types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return []*types.Func{f}
		}
	case *ast.SelectorExpr:
		f, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
			iface := sel.Recv().Underlying().(*types.Interface)
			var out []*types.Func
			for _, impl := range g.impls[f.Name()] {
				if ImplementsVia(impl, iface) {
					out = append(out, impl)
				}
			}
			return out
		}
		return []*types.Func{f}
	}
	return nil
}

// methodImplementers maps a method name to every in-module concrete method
// with that name, for interface-call resolution.
func methodImplementers(pkgs []*Package) map[string][]*types.Func {
	impls := map[string][]*types.Func{}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				impls[m.Name()] = append(impls[m.Name()], m)
			}
		}
	}
	return impls
}

// callEdges extracts the call edges of one function body.
func (g *CallGraph) callEdges(node *CallNode) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, f := range g.CalleesAt(info, call) {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
		return true
	})
	return out
}

// ImplementsVia reports whether the method's receiver type (or its pointer)
// satisfies the interface.
func ImplementsVia(m *types.Func, iface *types.Interface) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if types.Implements(recv, iface) {
		return true
	}
	if _, isPtr := recv.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(recv), iface)
	}
	return false
}

// ReceiverNamed unwraps a receiver (or any) type to its named type, through
// one level of pointer.
func ReceiverNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
