package analysis_test

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// demoAnalyzer reports every call to a function named "mark" — enough
// surface to exercise the suppression machinery end to end.
var demoAnalyzer = &analysis.Analyzer{
	Name: "demo",
	Doc:  "test analyzer: flags calls to mark()",
	Run: func(pass *analysis.Pass) error {
		for _, pkg := range pass.Packages {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						pass.Reportf(call.Pos(), "mark called")
					}
					return true
				})
			}
		}
		return nil
	},
}

// TestSuppression checks every //lint:allow placement against the allowtest
// fixture: same line, previous line, doc comment (function scope), the
// reason-less allow that is reported instead of honored, and the stale
// allow that suppresses nothing and is reported itself.
func TestSuppression(t *testing.T) {
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	prog, targets, err := loader.Load("testdata/src/allowtest")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(prog, targets, []*analysis.Analyzer{demoAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s@%d: %s", d.Analyzer, d.Pos.Line, d.Message))
	}
	// Line 10: the uncovered mark() in f. Line 21: the reason-less allow is
	// reported. Line 22: mark() inside malformed() survives because its
	// allow was rejected. Line 27: the allow in stale() suppresses nothing
	// and is reported as a stale suppression.
	want := []string{
		"demo@10: mark called",
		"glvet@21: allow comment needs an analyzer name and a reason: //lint:allow <analyzer> <reason>",
		"demo@22: mark called",
		"glvet@27: stale suppression: //lint:allow demo no longer matches any demo diagnostic; remove it",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("diagnostics mismatch:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}
