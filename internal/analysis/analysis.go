// Package analysis is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis. The container this repo builds
// in has no module proxy access, so instead of vendoring x/tools the repo
// carries the ~minimal subset the glvet suite needs: an Analyzer/Pass pair,
// a module-aware source loader built on go/types plus the stdlib source
// importer, `// want`-style fixture testing (internal/analysis/analysistest)
// and `//lint:allow` suppressions.
//
// The suite enforces the invariants the reproduction's methodology rests
// on: bit-identical seed-deterministic runs (detrand), a pure per-cycle hot
// path (cyclepure), const-declared metric names (metricname) and verifiable
// fault-plan site keys (faultsite). See DESIGN.md §8 "Static invariants".
//
// Suppression: a diagnostic is suppressed by a comment
//
//	//lint:allow <analyzer> <reason>
//
// on the same line as the diagnostic or on the line directly above it; an
// allow comment inside a function's doc comment covers the whole function.
// The reason is mandatory; an allow comment without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Unlike x/tools, every analyzer
// runs over the whole target package set at once: per-package checks loop
// over pass.Packages, whole-program checks (call graphs, cross-package
// duplicate detection) see everything they need without a facts mechanism.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is the one-paragraph help text shown by `glvet -help`.
	Doc string
	// Run performs the analysis and reports findings through the pass.
	Run func(*Pass) error
}

// A Pass connects one analyzer run to the loaded program.
type Pass struct {
	Analyzer *Analyzer
	// Prog is the full load result, including dependency packages
	// (Prog.ByPath) for interface lookups and call-graph construction.
	Prog *Program
	// Packages are the target packages the analyzer must check; analyzers
	// report only into these (dependencies outside the target set are
	// context, not subjects).
	Packages []*Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run executes the analyzers over the program's target packages and returns
// the surviving (unsuppressed) diagnostics in file/line order, plus any
// analyzer errors.
func Run(prog *Program, targets []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Prog: prog, Packages: targets, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = filterSuppressed(prog, targets, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowDirective is the suppression comment prefix.
const allowDirective = "//lint:allow "

// allowRange is one parsed allow comment's effect: diagnostics from the
// named analyzer are suppressed on lines [start, end] of file. pos is the
// comment's own position (for stale-suppression reporting) and used records
// whether the range ever suppressed anything this run.
type allowRange struct {
	analyzer   string
	start, end int
	pos        token.Position
	used       bool
}

// filterSuppressed drops diagnostics covered by a `//lint:allow` comment on
// the same or preceding line (or, for a comment in a function's doc comment,
// anywhere in that function), and reports malformed allow comments (missing
// reason) as diagnostics of their own. An allow comment that suppressed
// nothing is stale and reported too — but only when its analyzer actually
// ran, so a `-only` subset run (or a single-analyzer fixture test) does not
// condemn the other analyzers' suppressions.
func filterSuppressed(prog *Program, targets []*Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	allowed := map[string][]*allowRange{}
	var files []string
	var out []Diagnostic
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			// Doc-comment groups cover their whole declaration.
			docSpan := map[*ast.CommentGroup][2]int{}
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
					docSpan[fd.Doc] = [2]int{
						prog.Fset.Position(fd.Pos()).Line,
						prog.Fset.Position(fd.End()).Line,
					}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowDirective) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowDirective))
					name, reason, _ := strings.Cut(rest, " ")
					if name == "" || strings.TrimSpace(reason) == "" {
						out = append(out, Diagnostic{
							Pos:      pos,
							Analyzer: "glvet",
							Message:  "allow comment needs an analyzer name and a reason: //lint:allow <analyzer> <reason>",
						})
						continue
					}
					span := [2]int{pos.Line, pos.Line + 1}
					if s, ok := docSpan[cg]; ok {
						span = s
					}
					if _, seen := allowed[pos.Filename]; !seen {
						files = append(files, pos.Filename)
					}
					allowed[pos.Filename] = append(allowed[pos.Filename],
						&allowRange{analyzer: name, start: span[0], end: span[1], pos: pos})
				}
			}
		}
	}
	for _, d := range diags {
		suppressed := false
		for _, r := range allowed[d.Pos.Filename] {
			if r.analyzer == d.Analyzer && d.Pos.Line >= r.start && d.Pos.Line <= r.end {
				r.used = true
				suppressed = true
				// Keep scanning: overlapping ranges for the same analyzer
				// (same-line plus previous-line comments) are all live for
				// this diagnostic.
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	// Stale suppressions: allow comments whose analyzer ran but matched
	// nothing. They rot silently otherwise — the code they excused has moved
	// or been fixed, and the comment now licenses a future regression.
	for _, file := range files {
		for _, r := range allowed[file] {
			if r.used || !ran[r.analyzer] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      r.pos,
				Analyzer: "glvet",
				Message: fmt.Sprintf("stale suppression: //lint:allow %s no longer matches any %s diagnostic; remove it",
					r.analyzer, r.analyzer),
			})
		}
	}
	return out
}

// HasDirective reports whether the function declaration carries the given
// `//glvet:` directive (e.g. "cyclepath") in its doc comment.
func HasDirective(decl *ast.FuncDecl, directive string) bool {
	if decl.Doc == nil {
		return false
	}
	want := "//glvet:" + directive
	for _, c := range decl.Doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}
