// Package spannametest is the spanname analyzer fixture. It imports the
// real timeline package; every Timeline emit call (Span, Instant, Begin)
// is a subject.
package spannametest

import "repro/internal/trace"

const (
	goodSpan  = "fixture.span"
	badShape  = "Fixture-Span"
	prefixFam = "fixture.phase."
)

var table = [2]string{goodSpan, "fixture.other"}

func emit(tl *trace.Timeline, kinds []string, i int) {
	tr := trace.CoreTrack(1)
	tl.Instant(tr, goodSpan, 10, 1, 0)
	tl.Span(tr, badShape, 10, 20, 1, 0)        // want `span name "Fixture-Span" does not match`
	tl.Instant(tr, "fixture.inline", 10, 1, 0) // want `must be \(or start with\) a package-level const`
	const local = "fixture.local"
	s := tl.Begin(tr, local, 10, 1, 0) // want `must be declared at package level`
	tl.End(s, 20)
	for _, k := range kinds {
		tl.Span(tr, prefixFam+k, 10, 20, 1, 0)
	}
	//lint:allow spanname the table is const-initialized
	tl.Instant(tr, table[i], 10, 1, 0)
}
