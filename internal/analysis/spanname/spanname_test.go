package spanname_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/spanname"
)

func TestSpanname(t *testing.T) {
	analysistest.Run(t, "testdata/src/spannametest", spanname.Analyzer)
}
