// Package spanname implements the glvet analyzer for timeline hygiene.
// Every span or instant emitted on a trace.Timeline (Span, Instant, Begin)
// must name itself through a package-level const matching
//
//	^[a-z][a-z0-9._]*$
//
// so each span family exists exactly once, greps cleanly, and a typo cannot
// mint a second track lane in the Perfetto UI. Dynamic name families
// ("barrier.phase." + kind) are allowed when the leftmost operand of the
// concatenation is such a const. Table-driven names (a const-initialized
// array indexed at the call site) carry a `//lint:allow spanname <reason>`
// comment instead.
package spanname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the spanname analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanname",
	Doc:  "require package-level const span/instant names (lowercase dotted) on Timeline emit calls",
	Run:  run,
}

// nameRE is the required span-name shape (the metricname shape: one
// grep-able lowercase dotted vocabulary across metrics and spans).
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9._]*$`)

// tracePkgSuffix identifies the timeline package by import-path suffix, so
// fixtures importing the real package and the simulator packages both
// resolve.
const tracePkgSuffix = "internal/trace"

// emitMethods are the Timeline methods whose second argument is a span
// name.
var emitMethods = map[string]bool{"Span": true, "Instant": true, "Begin": true}

func run(pass *analysis.Pass) error {
	for _, pkg := range pass.Packages {
		if strings.HasSuffix(pkg.Path, tracePkgSuffix) {
			// The timeline package's own forwarding (Instant and End
			// delegate to Span with their name parameter) defines the API;
			// it mints no names.
			continue
		}
		for _, f := range pkg.Files {
			checkFile(pass, pkg, f)
		}
	}
	return nil
}

// checkFile finds Timeline.{Span,Instant,Begin} calls and validates their
// name argument.
func checkFile(pass *analysis.Pass, pkg *analysis.Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !emitMethods[sel.Sel.Name] || len(call.Args) < 2 {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), tracePkgSuffix) {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		checkName(pass, pkg, call.Args[1])
		return true
	})
}

// checkName validates one emit call's name argument: a package-level
// const, or a concatenation led by one (a name family).
func checkName(pass *analysis.Pass, pkg *analysis.Package, arg ast.Expr) {
	leftmost := arg
	for {
		bin, ok := leftmost.(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			break
		}
		leftmost = bin.X
	}
	id := constIdent(leftmost)
	if id == nil {
		pass.Reportf(arg.Pos(), "span name must be (or start with) a package-level const matching %s, not an inline value", nameRE)
		return
	}
	obj, ok := pkg.Info.Uses[id].(*types.Const)
	if !ok {
		pass.Reportf(arg.Pos(), "span name must be (or start with) a package-level const, not %s", id.Name)
		return
	}
	if obj.Parent() != obj.Pkg().Scope() {
		pass.Reportf(arg.Pos(), "span name const %s must be declared at package level", id.Name)
		return
	}
	if obj.Val().Kind() != constant.String {
		pass.Reportf(arg.Pos(), "span name const %s is not a string", id.Name)
		return
	}
	if val := constant.StringVal(obj.Val()); !nameRE.MatchString(val) {
		pass.Reportf(arg.Pos(), "span name %q does not match %s", val, nameRE)
	}
}

// constIdent unwraps a (possibly package-qualified) identifier.
func constIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.ParenExpr:
		return constIdent(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}
