package stats

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestTimeBreakdownTotalsAndFractions(t *testing.T) {
	var b TimeBreakdown
	b.Add(RegionBusy, 50)
	b.Add(RegionBarrier, 30)
	b.Add(RegionRead, 20)
	if b.Total() != 100 {
		t.Fatalf("total %d, want 100", b.Total())
	}
	f := b.Fractions()
	if f[RegionBusy] != 0.5 || f[RegionBarrier] != 0.3 || f[RegionRead] != 0.2 {
		t.Errorf("fractions %v", f)
	}
	if f[RegionLock] != 0 || f[RegionWrite] != 0 {
		t.Errorf("unused regions nonzero: %v", f)
	}
}

func TestEmptyBreakdownFractionsZero(t *testing.T) {
	var b TimeBreakdown
	for _, v := range b.Fractions() {
		if v != 0 {
			t.Fatalf("empty breakdown fractions %v", b.Fractions())
		}
	}
}

func TestBreakdownPlus(t *testing.T) {
	f := func(a, b [NumRegions]uint16) bool {
		var x, y TimeBreakdown
		for i := range a {
			x[i] = uint64(a[i])
			y[i] = uint64(b[i])
		}
		sum := x.Plus(y)
		for i := range sum {
			if sum[i] != uint64(a[i])+uint64(b[i]) {
				return false
			}
		}
		return sum.Total() == x.Total()+y.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrafficAccounting(t *testing.T) {
	var tr Traffic
	tr.Add(ClassRequest, 1)
	tr.Add(ClassRequest, 1)
	tr.Add(ClassReply, 9)
	tr.Add(ClassCoherence, 1)
	if tr.TotalMessages() != 4 {
		t.Errorf("messages %d, want 4", tr.TotalMessages())
	}
	if tr.TotalFlits() != 12 {
		t.Errorf("flits %d, want 12", tr.TotalFlits())
	}
	sum := tr.Plus(tr)
	if sum.TotalMessages() != 8 || sum.TotalFlits() != 24 {
		t.Errorf("Plus: %+v", sum)
	}
}

func TestBarrierPeriod(t *testing.T) {
	b := BarrierStats{Barriers: 4, TotalCycles: 1000}
	if b.Period() != 250 {
		t.Errorf("period %f, want 250", b.Period())
	}
	if (BarrierStats{}).Period() != 0 {
		t.Error("empty period should be 0")
	}
}

func TestRegionAndClassNames(t *testing.T) {
	wantRegions := []string{"Busy", "Read", "Write", "Lock", "Barrier"}
	for r := Region(0); r < NumRegions; r++ {
		if r.String() != wantRegions[r] {
			t.Errorf("Region(%d) = %q, want %q", r, r.String(), wantRegions[r])
		}
	}
	wantClasses := []string{"Request", "Reply", "Coherence"}
	for c := MsgClass(0); c < NumMsgClasses; c++ {
		if c.String() != wantClasses[c] {
			t.Errorf("MsgClass(%d) = %q, want %q", c, c.String(), wantClasses[c])
		}
	}
	if !strings.Contains(Region(99).String(), "99") {
		t.Error("unknown region should include its number")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Header: []string{"a", "bee"}}
	tab.AddRow("xxxx", "y")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a    ") {
		t.Errorf("header not padded to widest cell: %q", lines[0])
	}
	csv := tab.CSV()
	if csv != "a,bee\nxxxx,y\n" {
		t.Errorf("CSV = %q", csv)
	}
	quoted := Table{Header: []string{"k", "v"}}
	quoted.AddRow("a,b", `say "hi"`)
	if got := quoted.CSV(); got != "k,v\n\"a,b\",\"say \"\"hi\"\"\"\n" {
		t.Errorf("quoted CSV = %q", got)
	}
}

func TestReduction(t *testing.T) {
	if r := Reduction(100, 32); r != 0.68 {
		t.Errorf("Reduction(100,32) = %v, want 0.68", r)
	}
	if r := Reduction(0, 5); r != 0 {
		t.Errorf("Reduction(0,5) = %v, want 0", r)
	}
	if r := Reduction(50, 60); r != -0.2 {
		t.Errorf("Reduction(50,60) = %v, want -0.2", r)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.685); got != "68.5%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Errorf("SortedKeys = %v", keys)
	}
}

func TestErrCell(t *testing.T) {
	if got := ErrCell(nil); got != "" {
		t.Errorf("ErrCell(nil) = %q", got)
	}
	got := ErrCell(fmt.Errorf("boom"))
	if got != "error: boom" {
		t.Errorf("ErrCell = %q", got)
	}
	multi := ErrCell(fmt.Errorf("first line\nsecond line"))
	if strings.Contains(multi, "second") || strings.Contains(multi, "\n") {
		t.Errorf("ErrCell kept extra lines: %q", multi)
	}
	long := ErrCell(fmt.Errorf("%s", strings.Repeat("x", 200)))
	if len(long) > len("error: ")+70 {
		t.Errorf("ErrCell too long (%d): %q", len(long), long)
	}
}

func TestErrCellRuneSafeTruncation(t *testing.T) {
	// A multi-byte rune straddling the 60-byte cut must be dropped whole,
	// never split: the result has to stay valid UTF-8.
	for pad := 55; pad < 62; pad++ {
		msg := strings.Repeat("x", pad) + "日本語テキスト"
		got := ErrCell(fmt.Errorf("%s", msg))
		if !utf8.ValidString(got) {
			t.Errorf("pad=%d: truncation split a rune: %q", pad, got)
		}
		if !strings.HasSuffix(got, "…") {
			t.Errorf("pad=%d: missing ellipsis: %q", pad, got)
		}
	}
	// Short multi-byte messages pass through untouched.
	if got := ErrCell(fmt.Errorf("état invalide")); got != "error: état invalide" {
		t.Errorf("short UTF-8 message mangled: %q", got)
	}
}
