// Package stats collects and renders the two result families the paper
// reports: per-core execution-time breakdowns (Figure 6) and network-traffic
// breakdowns (Figure 7), plus the derived barrier metrics of Table 2.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"
)

// Region classifies what a core is doing on a given cycle. The categories
// are exactly those of the paper's Figure 6.
type Region int

const (
	// RegionBusy is computational work (arithmetic and private activity).
	RegionBusy Region = iota
	// RegionRead is time stalled on memory loads outside synchronization.
	RegionRead
	// RegionWrite is time stalled on memory stores outside synchronization.
	RegionWrite
	// RegionLock is time spent in lock acquire/release.
	RegionLock
	// RegionBarrier is time spent in barrier notification, busy-wait and
	// release (the paper's S1+S2+S3).
	RegionBarrier

	// NumRegions is the number of Region values.
	NumRegions
)

// String returns the paper's label for the region.
func (r Region) String() string {
	switch r {
	case RegionBusy:
		return "Busy"
	case RegionRead:
		return "Read"
	case RegionWrite:
		return "Write"
	case RegionLock:
		return "Lock"
	case RegionBarrier:
		return "Barrier"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// MsgClass classifies network messages as in the paper's Figure 7.
type MsgClass int

const (
	// ClassRequest is a load/store request travelling to a home bank or
	// memory controller.
	ClassRequest MsgClass = iota
	// ClassReply carries requested data (or an atomic result) back.
	ClassReply
	// ClassCoherence is protocol traffic: invalidations, acks, forwards,
	// writebacks.
	ClassCoherence

	// NumMsgClasses is the number of MsgClass values.
	NumMsgClasses
)

// String returns the paper's label for the message class.
func (m MsgClass) String() string {
	switch m {
	case ClassRequest:
		return "Request"
	case ClassReply:
		return "Reply"
	case ClassCoherence:
		return "Coherence"
	}
	return fmt.Sprintf("MsgClass(%d)", int(m))
}

// TimeBreakdown accumulates cycles per region.
type TimeBreakdown [NumRegions]uint64

// Add attributes n cycles to region r.
func (t *TimeBreakdown) Add(r Region, n uint64) { t[r] += n }

// Total returns the sum over all regions.
func (t TimeBreakdown) Total() uint64 {
	var s uint64
	for _, v := range t {
		s += v
	}
	return s
}

// Plus returns the element-wise sum of two breakdowns.
func (t TimeBreakdown) Plus(o TimeBreakdown) TimeBreakdown {
	var r TimeBreakdown
	for i := range t {
		r[i] = t[i] + o[i]
	}
	return r
}

// Fractions returns each region's share of the total (zeros if empty).
func (t TimeBreakdown) Fractions() [NumRegions]float64 {
	var f [NumRegions]float64
	tot := t.Total()
	if tot == 0 {
		return f
	}
	for i, v := range t {
		f[i] = float64(v) / float64(tot)
	}
	return f
}

// Traffic accumulates message and flit counts per class.
type Traffic struct {
	Messages [NumMsgClasses]uint64
	Flits    [NumMsgClasses]uint64
}

// Add records one message of class c with the given flit count.
func (t *Traffic) Add(c MsgClass, flits int) {
	t.Messages[c]++
	t.Flits[c] += uint64(flits)
}

// TotalMessages returns the message count over all classes.
func (t Traffic) TotalMessages() uint64 {
	var s uint64
	for _, v := range t.Messages {
		s += v
	}
	return s
}

// TotalFlits returns the flit count over all classes.
func (t Traffic) TotalFlits() uint64 {
	var s uint64
	for _, v := range t.Flits {
		s += v
	}
	return s
}

// Plus returns the element-wise sum of two traffic counters.
func (t Traffic) Plus(o Traffic) Traffic {
	var r Traffic
	for i := range t.Messages {
		r.Messages[i] = t.Messages[i] + o.Messages[i]
		r.Flits[i] = t.Flits[i] + o.Flits[i]
	}
	return r
}

// BarrierStats summarizes barrier activity for Table 2.
type BarrierStats struct {
	// Barriers is the number of completed barrier episodes.
	Barriers uint64
	// TotalCycles is the run length used to derive the period.
	TotalCycles uint64
}

// Period returns the average number of cycles between consecutive barriers
// (Table 2's "Barrier Period"), or 0 if no barrier executed.
func (b BarrierStats) Period() float64 {
	if b.Barriers == 0 {
		return 0
	}
	return float64(b.TotalCycles) / float64(b.Barriers)
}

// Table renders rows as an aligned plain-text table, the format used by the
// cmd/reproduce output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values; cells
// containing commas or quotes are quoted.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats v as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// ErrCell formats a failed sweep cell for a rendered table: the error's
// first line, truncated so one bad run cannot wreck column alignment.
func ErrCell(err error) string {
	if err == nil {
		return ""
	}
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	const max = 60
	if len(msg) > max {
		// Back the cut point up to a rune boundary so a multi-byte
		// character is dropped whole rather than split into mojibake.
		cut := max - 1
		for cut > 0 && !utf8.RuneStart(msg[cut]) {
			cut--
		}
		msg = msg[:cut] + "…"
	}
	return "error: " + msg
}

// Reduction returns the relative reduction of with versus base, e.g. 0.68
// for a 68% improvement. Returns 0 when base is 0.
func Reduction(base, with float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - with) / base
}

// SortedKeys returns the keys of m in sorted order; a helper for rendering
// deterministic reports from maps.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
