package energy

import "testing"

func TestEstimate(t *testing.T) {
	e := New(1000, 50)
	if e.NoCPJ != 1000*FlitHopPJ {
		t.Errorf("NoC energy %f", e.NoCPJ)
	}
	if e.GLinePJ != 50*GLTogglePJ {
		t.Errorf("G-line energy %f", e.GLinePJ)
	}
	if e.Total() != e.NoCPJ+e.GLinePJ {
		t.Errorf("total %f", e.Total())
	}
}

func TestGLineCheaperPerEvent(t *testing.T) {
	// The premise of the paper's power argument: one G-line toggle costs
	// less than one flit-hop.
	if GLTogglePJ >= FlitHopPJ {
		t.Error("G-line toggle should be cheaper than a flit-hop")
	}
}

func TestZeroCounts(t *testing.T) {
	if e := New(0, 0); e.Total() != 0 {
		t.Error("zero events should cost zero energy")
	}
}
