// Package energy estimates interconnect energy, supporting the paper's
// claim (and future-work item) that removing barrier traffic from the data
// NoC saves power: the mesh accounts energy per flit-hop; the G-line
// network per wire toggle.
//
// Constants are nominal 45 nm-class values in the range of Wang et al.
// ("Power-driven Design of Router Microarchitectures", MICRO'03) and
// Krishna et al. (HOTI'08) that the paper cites; absolute joules are not
// the point — the ratio between NoC traffic energy and G-line energy is.
package energy

// Nominal per-event energies, in picojoules.
const (
	// FlitHopPJ is the energy to move one flit one hop (link + router).
	FlitHopPJ = 0.98
	// GLTogglePJ is the energy of one G-line transition; a full-chip
	// broadcast wire with a low-swing driver (Krishna et al. report
	// G-lines are far cheaper than router traversals).
	GLTogglePJ = 0.36
)

// Estimate is the energy attributed to each interconnect.
type Estimate struct {
	// NoCPJ is flit-hops times FlitHopPJ.
	NoCPJ float64
	// GLinePJ is G-line toggles times GLTogglePJ.
	GLinePJ float64
}

// Total returns the combined estimate in picojoules.
func (e Estimate) Total() float64 { return e.NoCPJ + e.GLinePJ }

// New computes an Estimate from raw event counts.
func New(flitHops, glToggles uint64) Estimate {
	return Estimate{
		NoCPJ:   float64(flitHops) * FlitHopPJ,
		GLinePJ: float64(glToggles) * GLTogglePJ,
	}
}
