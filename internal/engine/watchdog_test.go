package engine

import (
	"strings"
	"testing"
)

// alwaysActiveTicker claims work every cycle without ever scheduling an
// event — the shape of a livelocked spin.
type alwaysActiveTicker struct{}

func (alwaysActiveTicker) Tick(uint64) bool { return true }

func TestStallWatchdogFires(t *testing.T) {
	e := New()
	e.StallLimit = 100
	e.AddTicker(alwaysActiveTicker{})
	end, err := e.Run(1_000_000, func() bool { return false })
	if err == nil {
		t.Fatal("expected stall error")
	}
	if !strings.Contains(err.Error(), "stall") {
		t.Fatalf("error %q does not mention stall", err)
	}
	if end >= 1_000_000 {
		t.Fatalf("watchdog should abort well before the budget, stopped at %d", end)
	}
}

func TestStallWatchdogResetsOnProgress(t *testing.T) {
	e := New()
	e.StallLimit = 50
	e.AddTicker(alwaysActiveTicker{})
	// An event every 40 cycles keeps resetting the idle counter; the run
	// must reach its natural end (done at cycle 200) without a stall error.
	var schedule func()
	schedule = func() {
		if e.Now() < 200 {
			e.After(40, schedule)
		}
	}
	e.After(40, schedule)
	done := func() bool { return e.Now() > 220 }
	if _, err := e.Run(10_000, done); err != nil {
		t.Fatalf("watchdog fired despite periodic progress: %v", err)
	}
}

func TestStallWatchdogDisabledByDefault(t *testing.T) {
	e := New()
	e.AddTicker(alwaysActiveTicker{})
	_, err := e.Run(5_000, func() bool { return false })
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("with StallLimit 0 the run must only stop on budget exhaustion, got %v", err)
	}
}

func TestPendingByCycle(t *testing.T) {
	e := New()
	if got := e.PendingByCycle(0); got != nil {
		t.Fatalf("empty queue: %v", got)
	}
	for _, c := range []uint64{7, 3, 7, 7, 12, 3} {
		e.At(c, func() {})
	}
	got := e.PendingByCycle(0)
	want := []CyclePending{{3, 2}, {7, 3}, {12, 1}}
	if len(got) != len(want) {
		t.Fatalf("groups %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("groups %v, want %v", got, want)
		}
	}
	if lim := e.PendingByCycle(2); len(lim) != 2 || lim[1].Cycle != 7 {
		t.Fatalf("limited groups %v", lim)
	}
}

func TestEngineMetrics(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(uint64(i*10), func() {})
	}
	done := false
	e.At(100, func() { done = true })
	if _, err := e.Run(1_000, func() bool { return done }); err != nil {
		t.Fatal(err)
	}
	s := e.Metrics().Snapshot()
	if s.Counters["engine.events.executed"] != 6 {
		t.Errorf("events executed = %d, want 6", s.Counters["engine.events.executed"])
	}
	if g := s.Gauges["engine.queue.depth"]; g.Peak < 6 {
		t.Errorf("peak queue depth = %d, want >= 6", g.Peak)
	}
	if s.Counters["engine.fastforward.jumps"] == 0 {
		t.Error("expected fast-forward jumps over the idle gaps")
	}
	if s.Counters["engine.fastforward.cycles"] < 90 {
		t.Errorf("fast-forwarded cycles = %d, want >= 90", s.Counters["engine.fastforward.cycles"])
	}
}
