// Package engine provides the deterministic cycle-driven event core shared
// by every simulated component: a virtual clock and an event queue ordered
// by (cycle, insertion sequence).
//
// All components of the simulator schedule work through a single Engine, so
// a whole-system run is a pure function of its inputs: events due on the
// same cycle execute in the exact order they were scheduled.
package engine

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Event is a callback scheduled to run at a specific cycle.
type event struct {
	cycle uint64
	seq   uint64
	fn    func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Ticker is a component that must be stepped every cycle while it is active
// (e.g. a network router or a G-line controller). A Ticker reports whether
// it still has work; idle tickers let the engine fast-forward to the next
// scheduled event.
type Ticker interface {
	// Tick advances the component by one cycle and reports whether the
	// component remains active (has buffered or in-flight work).
	Tick(cycle uint64) (active bool)
}

// Engine is the deterministic simulation core.
type Engine struct {
	now     uint64
	seq     uint64
	events  eventHeap
	tickers []Ticker

	// StallLimit arms the hang watchdog: if tickers stay active but no
	// event executes for this many consecutive cycles, Run aborts with a
	// stall error instead of burning the whole cycle budget. 0 disables.
	StallLimit uint64

	reg       *metrics.Registry
	executed  *metrics.Counter
	peakQueue *metrics.Gauge
	ffJumps   *metrics.Counter
	ffCycles  *metrics.Counter
}

// Metric names registered by the engine.
const (
	metricEventsExecuted   = "engine.events.executed"
	metricQueueDepth       = "engine.queue.depth"
	metricFastforwardJumps = "engine.fastforward.jumps"
	metricFastforwardCycs  = "engine.fastforward.cycles"
)

// New returns an Engine at cycle 0 with an empty event queue.
func New() *Engine {
	e := &Engine{reg: metrics.NewRegistry()}
	e.executed = e.reg.Counter(metricEventsExecuted)
	e.peakQueue = e.reg.Gauge(metricQueueDepth)
	e.ffJumps = e.reg.Counter(metricFastforwardJumps)
	e.ffCycles = e.reg.Counter(metricFastforwardCycs)
	return e
}

// Metrics returns the engine's metric registry (event counts, queue depth,
// fast-forward statistics).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// At schedules fn to run at the given absolute cycle. Scheduling in the past
// panics: it always indicates a component bug, never a recoverable state.
func (e *Engine) At(cycle uint64, fn func()) {
	if cycle < e.now {
		panic(fmt.Sprintf("engine: scheduling at cycle %d, now %d", cycle, e.now))
	}
	heap.Push(&e.events, event{cycle: cycle, seq: e.seq, fn: fn})
	e.seq++
	e.peakQueue.Set(uint64(len(e.events)))
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay uint64, fn func()) { e.At(e.now+delay, fn) }

// AddTicker registers a per-cycle component. Tickers run after all events
// due on a cycle, in registration order.
func (e *Engine) AddTicker(t Ticker) { e.tickers = append(e.tickers, t) }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// CyclePending summarizes queued events grouped by due cycle.
type CyclePending struct {
	Cycle uint64 `json:"cycle"`
	Count int    `json:"count"`
}

// PendingByCycle returns up to limit (cycle, count) groups of queued events
// in ascending cycle order — the raw material of a hang post-mortem. A
// limit <= 0 returns every group.
func (e *Engine) PendingByCycle(limit int) []CyclePending {
	if len(e.events) == 0 {
		return nil
	}
	cycles := make([]uint64, len(e.events))
	for i, ev := range e.events {
		cycles[i] = ev.cycle
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	var out []CyclePending
	for _, c := range cycles {
		if n := len(out); n > 0 && out[n-1].Cycle == c {
			out[n-1].Count++
			continue
		}
		if limit > 0 && len(out) == limit {
			break
		}
		out = append(out, CyclePending{Cycle: c, Count: 1})
	}
	return out
}

// Step advances the simulation by exactly one cycle: it runs every event due
// at the current cycle (including events those events schedule for the same
// cycle), then ticks all registered tickers, then advances the clock.
// It reports whether any ticker remains active.
//
//glvet:cyclepath
func (e *Engine) Step() (tickersActive bool) {
	for len(e.events) > 0 && e.events[0].cycle == e.now {
		ev := heap.Pop(&e.events).(event)
		ev.fn()
		e.executed.Inc()
	}
	for _, t := range e.tickers {
		if t.Tick(e.now) {
			tickersActive = true
		}
	}
	e.now++
	return tickersActive
}

// Run drives the simulation until done() reports true or no work remains or
// maxCycles elapses. It fast-forwards over cycles where all tickers are idle
// and no events are due. It returns the cycle at which it stopped and an
// error if the cycle budget was exhausted with work still pending, or — when
// StallLimit is set — if tickers stayed active without a single event
// executing for StallLimit consecutive cycles (a livelocked spin).
func (e *Engine) Run(maxCycles uint64, done func() bool) (uint64, error) {
	var idle uint64 // consecutive active-ticker cycles with no event executed
	for e.now < maxCycles {
		if done() {
			return e.now, nil
		}
		before := e.executed.Value()
		active := e.Step()
		if e.executed.Value() != before {
			idle = 0
		} else if active {
			idle++
			if e.StallLimit > 0 && idle >= e.StallLimit {
				return e.now, fmt.Errorf("engine: stall at cycle %d: no event executed for %d cycles with tickers active", e.now, idle)
			}
		}
		if !active && len(e.events) > 0 && e.events[0].cycle > e.now {
			// Nothing happens until the next event: jump.
			e.ffJumps.Inc()
			e.ffCycles.Add(e.events[0].cycle - e.now)
			e.now = e.events[0].cycle
		}
		if !active && len(e.events) == 0 {
			if done() {
				return e.now, nil
			}
			return e.now, fmt.Errorf("engine: deadlock at cycle %d: no events, idle tickers, simulation not done", e.now)
		}
	}
	if done() {
		return e.now, nil
	}
	return e.now, fmt.Errorf("engine: cycle budget %d exhausted", maxCycles)
}
