// Package engine provides the deterministic cycle-driven event core shared
// by every simulated component: a virtual clock and an event queue ordered
// by (cycle, insertion sequence).
//
// All components of the simulator schedule work through a single Engine, so
// a whole-system run is a pure function of its inputs: events due on the
// same cycle execute in the exact order they were scheduled.
//
// The queue is built for zero steady-state allocation (DESIGN.md §10):
// events live in a slab recycled through an intrusive free list, the
// priority queue is a 4-ary min-heap of small (cycle, seq, slot) keys that
// never boxes through interfaces, and hot callers schedule typed Callbacks
// whose operands are pointer-shaped (so the any fields don't allocate
// either). The closure-based At/After remain for cold paths and tests.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// spanEngineFF is the timeline instant marking a fast-forward jump; arg
// carries the number of cycles skipped.
const spanEngineFF = "engine.ff"

// Callback is the typed form of a scheduled event: a shared function
// applied to the receiver/operand words captured at schedule time. Hot
// paths pass pointer-shaped recv/obj values (pointers, funcs), which
// convert to `any` without allocating; integer operands ride in a and b.
type Callback func(recv, obj any, a, b uint64)

// event is one slot of the engine's event slab. A slot is live between
// Call and its dispatch (or Cancel + dispatch of the dead heap entry);
// free slots chain through next.
type event struct {
	cycle uint64
	seq   uint64
	cb    Callback
	recv  any
	obj   any
	a, b  uint64
	next  int32 // free-list link while the slot is unused
}

// heapEntry mirrors one queued event in the priority queue. Keeping the
// ordering key outside the slab means sift compares never touch event
// payloads, and the heap never holds pointers.
type heapEntry struct {
	cycle uint64
	seq   uint64
	idx   int32
}

// EventID identifies a scheduled event for Cancel. The zero EventID is
// never valid: sequence numbers start at 1.
type EventID struct {
	idx int32
	seq uint64
}

// Ticker is a component that must be stepped every cycle while it is active
// (e.g. a network router or a G-line controller). A Ticker reports whether
// it still has work; idle tickers let the engine fast-forward to the next
// scheduled event.
type Ticker interface {
	// Tick advances the component by one cycle and reports whether the
	// component remains active (has buffered or in-flight work).
	Tick(cycle uint64) (active bool)
}

// Engine is the deterministic simulation core.
type Engine struct {
	now     uint64
	seq     uint64
	slab    []event
	free    int32 // head of the slot free list, -1 when empty
	heap    []heapEntry
	live    int // scheduled events not yet dispatched or cancelled
	tickers []Ticker

	// StallLimit arms the hang watchdog: if tickers stay active but no
	// event executes for this many consecutive cycles, Run aborts with a
	// stall error instead of burning the whole cycle budget. 0 disables.
	StallLimit uint64

	reg       *metrics.Registry
	executed  *metrics.Counter
	peakQueue *metrics.Gauge
	ffJumps   *metrics.Counter
	ffCycles  *metrics.Counter

	// tl, when set, records fast-forward jumps as timeline instants.
	tl *trace.Timeline
}

// Metric names registered by the engine.
const (
	metricEventsExecuted   = "engine.events.executed"
	metricQueueDepth       = "engine.queue.depth"
	metricFastforwardJumps = "engine.fastforward.jumps"
	metricFastforwardCycs  = "engine.fastforward.cycles"
)

// New returns an Engine at cycle 0 with an empty event queue.
func New() *Engine {
	e := &Engine{reg: metrics.NewRegistry(), free: -1, seq: 1}
	e.executed = e.reg.Counter(metricEventsExecuted)
	e.peakQueue = e.reg.Gauge(metricQueueDepth)
	e.ffJumps = e.reg.Counter(metricFastforwardJumps)
	e.ffCycles = e.reg.Counter(metricFastforwardCycs)
	return e
}

// SetTimeline attaches a span timeline recording fast-forward jumps.
func (e *Engine) SetTimeline(tl *trace.Timeline) { e.tl = tl }

// Metrics returns the engine's metric registry (event counts, queue depth,
// fast-forward statistics).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// callFunc adapts the closure-based At/After API onto the typed slot: the
// closure itself is the receiver. The func-to-any conversion is free; only
// building the closure at the call site may allocate.
func callFunc(recv, _ any, _, _ uint64) { recv.(func())() }

// At schedules fn to run at the given absolute cycle. Scheduling in the past
// panics: it always indicates a component bug, never a recoverable state.
func (e *Engine) At(cycle uint64, fn func()) {
	e.Call(cycle, callFunc, fn, nil, 0, 0)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay uint64, fn func()) { e.Call(e.now+delay, callFunc, fn, nil, 0, 0) }

// Call schedules cb(recv, obj, a, b) at the given absolute cycle and
// returns the event's id for Cancel. This is the allocation-free
// scheduling path: the event occupies a recycled slab slot and recv/obj
// only avoid boxing when they hold pointer-shaped values. Scheduling in
// the past panics, as with At.
//
//glvet:cyclepath
func (e *Engine) Call(cycle uint64, cb Callback, recv, obj any, a, b uint64) EventID {
	if cycle < e.now {
		panic(fmt.Sprintf("engine: scheduling at cycle %d, now %d", cycle, e.now))
	}
	if cb == nil {
		panic("engine: scheduling a nil callback")
	}
	idx := e.free
	if idx >= 0 {
		e.free = e.slab[idx].next
	} else {
		//lint:allow allocfree slab warm-up; steady state pops recycled slots from the free list
		e.slab = append(e.slab, event{})
		idx = int32(len(e.slab) - 1)
	}
	ev := &e.slab[idx]
	ev.cycle, ev.seq = cycle, e.seq
	ev.cb, ev.recv, ev.obj = cb, recv, obj
	ev.a, ev.b = a, b
	e.push(heapEntry{cycle: cycle, seq: e.seq, idx: idx})
	id := EventID{idx: idx, seq: e.seq}
	e.seq++
	e.live++
	e.peakQueue.Set(uint64(e.live))
	return id
}

// CallAfter schedules cb(recv, obj, a, b) delay cycles from now.
//
//glvet:cyclepath
func (e *Engine) CallAfter(delay uint64, cb Callback, recv, obj any, a, b uint64) EventID {
	return e.Call(e.now+delay, cb, recv, obj, a, b)
}

// Cancel revokes a scheduled event. It reports whether the event was still
// pending (false for already-dispatched, already-cancelled, or foreign
// ids). Cancellation is lazy: the slot is cleared immediately so the
// callback and its operands drop their references, and the dead heap entry
// is discarded when its cycle drains. Cancelled events do not count as
// executed and do not disturb the (cycle, seq) order of live ones.
func (e *Engine) Cancel(id EventID) bool {
	if id.idx < 0 || int(id.idx) >= len(e.slab) {
		return false
	}
	ev := &e.slab[id.idx]
	if ev.seq != id.seq || ev.cb == nil {
		return false
	}
	ev.cb, ev.recv, ev.obj = nil, nil, nil
	e.live--
	return true
}

// AddTicker registers a per-cycle component. Tickers run after all events
// due on a cycle, in registration order.
func (e *Engine) AddTicker(t Ticker) { e.tickers = append(e.tickers, t) }

// Pending reports the number of scheduled events (cancelled ones excluded).
func (e *Engine) Pending() int { return e.live }

// CyclePending summarizes queued events grouped by due cycle.
type CyclePending struct {
	Cycle uint64 `json:"cycle"`
	Count int    `json:"count"`
}

// PendingByCycle returns up to limit (cycle, count) groups of queued events
// in ascending cycle order — the raw material of a hang post-mortem. A
// limit <= 0 returns every group.
func (e *Engine) PendingByCycle(limit int) []CyclePending {
	if e.live == 0 {
		return nil
	}
	cycles := make([]uint64, 0, len(e.heap))
	for _, he := range e.heap {
		if e.slab[he.idx].cb == nil {
			continue // cancelled, still awaiting its cycle
		}
		cycles = append(cycles, he.cycle)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	var out []CyclePending
	for _, c := range cycles {
		if n := len(out); n > 0 && out[n-1].Cycle == c {
			out[n-1].Count++
			continue
		}
		if limit > 0 && len(out) == limit {
			break
		}
		out = append(out, CyclePending{Cycle: c, Count: 1})
	}
	return out
}

// entryLess orders heap entries by (cycle, seq): same-cycle events run in
// the exact order they were scheduled.
func entryLess(x, y heapEntry) bool {
	if x.cycle != y.cycle {
		return x.cycle < y.cycle
	}
	return x.seq < y.seq
}

// push inserts a key into the 4-ary min-heap. The wide node keeps the tree
// two levels shallower than a binary heap at typical queue depths, and the
// backing array only grows until the run's peak depth.
func (e *Engine) push(he heapEntry) {
	h := append(e.heap, he)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// pop removes the minimum key and returns its slab slot.
func (e *Engine) pop() int32 {
	h := e.heap
	idx := h[0].idx
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	e.heap = h
	i := 0
	for {
		first := 4*i + 1
		if first >= len(h) {
			break
		}
		m := first
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		for c := first + 1; c < end; c++ {
			if entryLess(h[c], h[m]) {
				m = c
			}
		}
		if !entryLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return idx
}

// Step advances the simulation by exactly one cycle: it runs every event due
// at the current cycle (including events those events schedule for the same
// cycle), then ticks all registered tickers, then advances the clock.
// It reports whether any ticker remains active.
//
// A slot is returned to the free list before its callback runs, so the
// callback's own scheduling reuses it immediately; ordering is untouched
// because dispatch order is fixed by the already-assigned (cycle, seq).
//
//glvet:cyclepath
func (e *Engine) Step() (tickersActive bool) {
	for len(e.heap) > 0 && e.heap[0].cycle == e.now {
		idx := e.pop()
		ev := &e.slab[idx]
		cb, recv, obj, a, b := ev.cb, ev.recv, ev.obj, ev.a, ev.b
		ev.cb, ev.recv, ev.obj = nil, nil, nil
		ev.next = e.free
		e.free = idx
		if cb == nil {
			continue // cancelled; the slot is reclaimed above
		}
		e.live--
		cb(recv, obj, a, b)
		e.executed.Inc()
	}
	for _, t := range e.tickers {
		if t.Tick(e.now) {
			tickersActive = true
		}
	}
	e.now++
	return tickersActive
}

// Run drives the simulation until done() reports true or no work remains or
// maxCycles elapses. It fast-forwards over cycles where all tickers are idle
// and no events are due. It returns the cycle at which it stopped and an
// error if the cycle budget was exhausted with work still pending, or — when
// StallLimit is set — if tickers stayed active without a single event
// executing for StallLimit consecutive cycles (a livelocked spin).
func (e *Engine) Run(maxCycles uint64, done func() bool) (uint64, error) {
	var idle uint64 // consecutive active-ticker cycles with no event executed
	for e.now < maxCycles {
		if done() {
			return e.now, nil
		}
		before := e.executed.Value()
		active := e.Step()
		if e.executed.Value() != before {
			idle = 0
		} else if active {
			idle++
			if e.StallLimit > 0 && idle >= e.StallLimit {
				return e.now, fmt.Errorf("engine: stall at cycle %d: no event executed for %d cycles with tickers active", e.now, idle)
			}
		}
		if !active && e.live > 0 && e.heap[0].cycle > e.now {
			// Nothing happens until the next event: jump. (The root may be
			// a cancelled entry at an earlier cycle; the jump then lands on
			// it, Step discards it, and the next iteration jumps again.)
			e.ffJumps.Inc()
			e.ffCycles.Add(e.heap[0].cycle - e.now)
			e.tl.Instant(trace.EngineTrack(), spanEngineFF, e.now, 0, e.heap[0].cycle-e.now)
			e.now = e.heap[0].cycle
		}
		if !active && e.live == 0 {
			if done() {
				return e.now, nil
			}
			return e.now, fmt.Errorf("engine: deadlock at cycle %d: no events, idle tickers, simulation not done", e.now)
		}
	}
	if done() {
		return e.now, nil
	}
	return e.now, fmt.Errorf("engine: cycle budget %d exhausted", maxCycles)
}
