package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInCycleOrder(t *testing.T) {
	e := New()
	var got []uint64
	for _, cyc := range []uint64{5, 1, 3, 1, 0, 5} {
		cyc := cyc
		e.At(cyc, func() { got = append(got, cyc) })
	}
	for i := 0; i < 10; i++ {
		e.Step()
	}
	want := []uint64{0, 1, 1, 3, 5, 5}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 20; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	for e.Now() <= 7 {
		e.Step()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events reordered: %v", got)
		}
	}
}

func TestEventScheduledDuringOwnCycleRuns(t *testing.T) {
	e := New()
	ran := false
	e.At(3, func() {
		e.At(3, func() { ran = true })
	})
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if !ran {
		t.Error("event chained at the same cycle did not run")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(0, func() {})
	e.Step()
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(0, func() {})
}

type countTicker struct {
	ticks  int
	active int // remain active for this many ticks
}

func (c *countTicker) Tick(cycle uint64) bool {
	c.ticks++
	c.active--
	return c.active > 0
}

func TestRunFastForwardsIdleGaps(t *testing.T) {
	e := New()
	tk := &countTicker{active: 3}
	e.AddTicker(tk)
	done := false
	e.At(1000, func() { done = true })
	end, err := e.Run(10_000, func() bool { return done })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The event fires during cycle 1000; Run returns after that cycle.
	if end != 1001 {
		t.Errorf("ended at %d, want 1001", end)
	}
	// The ticker goes idle after 3 ticks; the engine must not tick it 1000
	// times.
	if tk.ticks > 10 {
		t.Errorf("ticker stepped %d times despite idling", tk.ticks)
	}
}

func TestRunDeadlockDetection(t *testing.T) {
	e := New()
	_, err := e.Run(1000, func() bool { return false })
	if err == nil {
		t.Error("expected deadlock error with no events and no done")
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	e := New()
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.After(1, reschedule)
	_, err := e.Run(100, func() bool { return false })
	if err == nil {
		t.Error("expected budget-exhausted error")
	}
}

// Property: events fire exactly at their scheduled cycles regardless of
// insertion order.
func TestPropEventTiming(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rand.New(rand.NewSource(seed))
		e := New()
		cycles := make([]uint64, n)
		fired := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			cycles[i] = uint64(r.Intn(200))
			cyc := cycles[i]
			e.At(cyc, func() {
				if e.Now() != cyc {
					t.Errorf("event for %d fired at %d", cyc, e.Now())
				}
				fired = append(fired, cyc)
			})
		}
		for i := 0; i < 220; i++ {
			e.Step()
		}
		sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
		if len(fired) != n {
			return false
		}
		for i := range cycles {
			if fired[i] != cycles[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
