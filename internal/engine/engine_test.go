package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInCycleOrder(t *testing.T) {
	e := New()
	var got []uint64
	for _, cyc := range []uint64{5, 1, 3, 1, 0, 5} {
		cyc := cyc
		e.At(cyc, func() { got = append(got, cyc) })
	}
	for i := 0; i < 10; i++ {
		e.Step()
	}
	want := []uint64{0, 1, 1, 3, 5, 5}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 20; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	for e.Now() <= 7 {
		e.Step()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events reordered: %v", got)
		}
	}
}

func TestEventScheduledDuringOwnCycleRuns(t *testing.T) {
	e := New()
	ran := false
	e.At(3, func() {
		e.At(3, func() { ran = true })
	})
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if !ran {
		t.Error("event chained at the same cycle did not run")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(0, func() {})
	e.Step()
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(0, func() {})
}

type countTicker struct {
	ticks  int
	active int // remain active for this many ticks
}

func (c *countTicker) Tick(cycle uint64) bool {
	c.ticks++
	c.active--
	return c.active > 0
}

func TestRunFastForwardsIdleGaps(t *testing.T) {
	e := New()
	tk := &countTicker{active: 3}
	e.AddTicker(tk)
	done := false
	e.At(1000, func() { done = true })
	end, err := e.Run(10_000, func() bool { return done })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The event fires during cycle 1000; Run returns after that cycle.
	if end != 1001 {
		t.Errorf("ended at %d, want 1001", end)
	}
	// The ticker goes idle after 3 ticks; the engine must not tick it 1000
	// times.
	if tk.ticks > 10 {
		t.Errorf("ticker stepped %d times despite idling", tk.ticks)
	}
}

func TestRunDeadlockDetection(t *testing.T) {
	e := New()
	_, err := e.Run(1000, func() bool { return false })
	if err == nil {
		t.Error("expected deadlock error with no events and no done")
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	e := New()
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.After(1, reschedule)
	_, err := e.Run(100, func() bool { return false })
	if err == nil {
		t.Error("expected budget-exhausted error")
	}
}

// Property: events fire exactly at their scheduled cycles regardless of
// insertion order.
func TestPropEventTiming(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rand.New(rand.NewSource(seed))
		e := New()
		cycles := make([]uint64, n)
		fired := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			cycles[i] = uint64(r.Intn(200))
			cyc := cycles[i]
			e.At(cyc, func() {
				if e.Now() != cyc {
					t.Errorf("event for %d fired at %d", cyc, e.Now())
				}
				fired = append(fired, cyc)
			})
		}
		for i := 0; i < 220; i++ {
			e.Step()
		}
		sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
		if len(fired) != n {
			return false
		}
		for i := range cycles {
			if fired[i] != cycles[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestRunFastForwardEdges pins the edge cases of Run's fast-forward path:
// an event scheduled exactly at maxCycles, a ticker going idle on the same
// cycle an event fires, and same-cycle re-entrant At ordering.
func TestRunFastForwardEdges(t *testing.T) {
	cases := []struct {
		name    string
		budget  uint64
		setup   func(e *Engine, log *[]string) func() bool // returns done()
		wantEnd uint64
		wantErr bool
		wantLog []string
	}{
		{
			// The fast-forward jumps now straight to maxCycles, the
			// `now < maxCycles` guard exits, and the event never runs:
			// the budget is exhausted with work still pending.
			name:   "event exactly at maxCycles never runs",
			budget: 500,
			setup: func(e *Engine, log *[]string) func() bool {
				e.At(500, func() { *log = append(*log, "edge") })
				return func() bool { return false }
			},
			wantEnd: 500,
			wantErr: true,
			wantLog: nil,
		},
		{
			// One more cycle of budget and the same event fires.
			name:   "event at maxCycles-1 runs",
			budget: 501,
			setup: func(e *Engine, log *[]string) func() bool {
				done := false
				e.At(500, func() { *log = append(*log, "edge"); done = true })
				return func() bool { return done }
			},
			wantEnd: 501,
			wantLog: []string{"edge"},
		},
		{
			// The ticker's last active tick is cycle 2 — the same cycle
			// the event fires and completes the run.
			name:   "ticker idles on the event's cycle",
			budget: 1000,
			setup: func(e *Engine, log *[]string) func() bool {
				e.AddTicker(&countTicker{active: 3})
				done := false
				e.At(2, func() { *log = append(*log, "fire"); done = true })
				return func() bool { return done }
			},
			wantEnd: 3,
			wantLog: []string{"fire"},
		},
		{
			// Same setup but the run never completes: with the ticker idle
			// and the event queue drained the engine must report deadlock
			// rather than spin to the budget.
			name:   "ticker idles on the event's cycle, not done",
			budget: 1000,
			setup: func(e *Engine, log *[]string) func() bool {
				e.AddTicker(&countTicker{active: 3})
				e.At(2, func() { *log = append(*log, "fire") })
				return func() bool { return false }
			},
			wantEnd: 3,
			wantErr: true,
			wantLog: []string{"fire"},
		},
		{
			// A runs first (seq 0) and schedules B for the same cycle
			// (seq 2), so the already-queued C (seq 1) runs before B.
			name:   "same-cycle re-entrant At runs after queued peers",
			budget: 10,
			setup: func(e *Engine, log *[]string) func() bool {
				done := false
				e.At(5, func() {
					*log = append(*log, "A")
					e.At(5, func() { *log = append(*log, "B"); done = true })
				})
				e.At(5, func() { *log = append(*log, "C") })
				return func() bool { return done }
			},
			wantEnd: 6,
			wantLog: []string{"A", "C", "B"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := New()
			var log []string
			done := tc.setup(e, &log)
			end, err := e.Run(tc.budget, done)
			if (err != nil) != tc.wantErr {
				t.Errorf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if end != tc.wantEnd {
				t.Errorf("ended at %d, want %d", end, tc.wantEnd)
			}
			if len(log) != len(tc.wantLog) {
				t.Fatalf("log %v, want %v", log, tc.wantLog)
			}
			for i := range log {
				if log[i] != tc.wantLog[i] {
					t.Fatalf("log %v, want %v", log, tc.wantLog)
				}
			}
		})
	}
}
