package engine

import (
	"testing"
)

// recordCB appends a to the int slice recv points at. Package-level so the
// alloc gates schedule an existing func value rather than building closures.
func recordCB(recv, _ any, a, _ uint64) {
	s := recv.(*[]int)
	*s = append(*s, int(a))
}

// nopCB is a do-nothing typed callback for pure scheduling churn.
func nopCB(_, _ any, _, _ uint64) {}

// TestZeroAllocScheduleDispatch is the engine's alloc regression gate: once
// the slab and heap are warm, a Call/CallAfter + Step round-trip must not
// allocate at all (ISSUE: zero steady-state allocation on the cycle path).
func TestZeroAllocScheduleDispatch(t *testing.T) {
	e := New()
	// Warm up: grow the slab, the heap array, and the free list to their
	// steady-state footprint.
	for i := 0; i < 64; i++ {
		e.Call(e.Now()+uint64(i%4)+1, nopCB, e, nil, 0, 0)
	}
	for e.Pending() > 0 {
		e.Step()
	}

	allocs := testing.AllocsPerRun(200, func() {
		e.Call(e.Now(), nopCB, e, nil, 1, 2)
		e.CallAfter(1, nopCB, e, nil, 3, 4)
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+dispatch round-trip allocates %.1f objects/op, want 0", allocs)
	}
	if e.Pending() != 0 {
		t.Fatalf("queue not drained after gate: %d pending", e.Pending())
	}
}

// TestZeroAllocCancel pins the cancel path: scheduling and cancelling must
// reuse the slab slot without allocating once warm.
func TestZeroAllocCancel(t *testing.T) {
	e := New()
	for i := 0; i < 32; i++ {
		e.Call(e.Now()+1, nopCB, e, nil, 0, 0)
	}
	for e.Pending() > 0 {
		e.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		id := e.Call(e.Now()+1, nopCB, e, nil, 0, 0)
		if !e.Cancel(id) {
			t.Fatal("cancel of live event failed")
		}
		e.Step() // pop the dead heap entry, free the slot
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel round-trip allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPoolReuseKeepsSameCycleFIFO is the adversarial ordering test for slot
// reuse: a schedule/cancel/reschedule pattern that forces freed slab slots
// to be reused within the same cycle must still dispatch surviving events
// in exact schedule (seq) order. This is the determinism invariant that
// makes pooling safe (DESIGN.md §10).
func TestPoolReuseKeepsSameCycleFIFO(t *testing.T) {
	e := New()
	var got []int

	// Events A(0), B(1), C(2), D(3) at cycle 5; cancel B before it runs.
	// A's callback schedules E(4) for the same cycle mid-dispatch — its
	// slot comes off the free list populated by A's own just-freed slot.
	idB := e.Call(5, recordCB, &got, nil, 1, 0)
	e.At(5, func() {
		got = append(got, 0)
		e.Call(5, recordCB, &got, nil, 4, 0)
	})
	e.Call(5, recordCB, &got, nil, 2, 0)
	e.Call(5, recordCB, &got, nil, 3, 0)
	if !e.Cancel(idB) {
		t.Fatal("cancel of pending event returned false")
	}
	if e.Cancel(idB) {
		t.Fatal("double cancel returned true")
	}
	for e.Pending() > 0 {
		e.Step()
	}
	// Scheduling order (by seq): B=1(cancelled), A=0, C=2, D=3, then E=4
	// scheduled during A's dispatch.
	want := []int{0, 2, 3, 4}
	if !equalInts(got, want) {
		t.Fatalf("same-cycle order with cancel+reuse = %v, want %v", got, want)
	}

	// A stale EventID whose slot has been recycled must not cancel the new
	// occupant: seq disambiguates generations of the same slot.
	got = got[:0]
	stale := e.Call(e.Now()+1, recordCB, &got, nil, 9, 0)
	if !e.Cancel(stale) {
		t.Fatal("cancel failed")
	}
	e.Step() // advance to the dead entry's cycle
	e.Step() // pop it: the slot returns to the free list
	e.Call(e.Now()+1, recordCB, &got, nil, 7, 0)
	if e.Cancel(stale) {
		t.Fatal("stale EventID cancelled the slot's new occupant")
	}
	for e.Pending() > 0 {
		e.Step()
	}
	if !equalInts(got, []int{7}) {
		t.Fatalf("after stale-cancel attempt got %v, want [7]", got)
	}
}

// TestPoolChurnPreservesOrderAcrossRounds hammers the free list: every
// round schedules a batch at the next cycle, cancels alternating entries,
// and checks the survivors run in schedule order. Round N's slots are all
// recycled from round N-1, so any free-list ordering leak shows up fast.
func TestPoolChurnPreservesOrderAcrossRounds(t *testing.T) {
	e := New()
	var got []int
	ids := make([]EventID, 8)
	for round := 0; round < 100; round++ {
		got = got[:0]
		for i := 0; i < 8; i++ {
			ids[i] = e.Call(e.Now()+1, recordCB, &got, nil, uint64(i), 0)
		}
		for i := 1; i < 8; i += 2 {
			if !e.Cancel(ids[i]) {
				t.Fatalf("round %d: cancel %d failed", round, i)
			}
		}
		e.Step() // advance to the batch's cycle
		e.Step() // dispatch survivors, reclaim every slot
		if !equalInts(got, []int{0, 2, 4, 6}) {
			t.Fatalf("round %d: survivors ran as %v, want [0 2 4 6]", round, got)
		}
		if e.Pending() != 0 {
			t.Fatalf("round %d: %d events leaked", round, e.Pending())
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
