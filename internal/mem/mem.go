// Package mem provides the functional memory state of the simulated CMP.
//
// The simulator is "timing-first": coherence and network components model
// when an access completes, while the value of every word lives in a single
// global Store that is read/written at the access's completion time. This
// standard simplification keeps the directory protocol tractable while
// preserving the visibility order that synchronization code (barrier
// counters, sense flags, locks) depends on.
package mem

// WordSize is the byte size of the words the Store tracks.
const WordSize = 8

// Store is the functional word-addressable memory. The zero value is not
// usable; call NewStore.
type Store struct {
	words map[uint64]uint64

	loads, stores, rmws uint64
}

// NewStore returns an empty memory: every word reads as zero.
func NewStore() *Store {
	return &Store{words: make(map[uint64]uint64)}
}

func wordKey(addr uint64) uint64 { return addr / WordSize }

// Load returns the current value of the word containing addr.
func (s *Store) Load(addr uint64) uint64 {
	s.loads++
	return s.words[wordKey(addr)]
}

// StoreWord sets the value of the word containing addr.
func (s *Store) StoreWord(addr, v uint64) {
	s.stores++
	s.words[wordKey(addr)] = v
}

// RMW atomically (in simulated time the caller has already serialized the
// access) applies f to the word and returns the previous value.
func (s *Store) RMW(addr uint64, f func(uint64) uint64) (old uint64) {
	s.rmws++
	k := wordKey(addr)
	old = s.words[k]
	s.words[k] = f(old)
	return old
}

// FetchAdd atomically adds delta to the word containing addr, returning
// the previous value. Equivalent to RMW with an addition function, without
// making the caller build a closure.
func (s *Store) FetchAdd(addr, delta uint64) (old uint64) {
	s.rmws++
	k := wordKey(addr)
	old = s.words[k]
	s.words[k] = old + delta
	return old
}

// FetchStore atomically replaces the word containing addr with v,
// returning the previous value (the test&set / swap primitive).
func (s *Store) FetchStore(addr, v uint64) (old uint64) {
	s.rmws++
	k := wordKey(addr)
	old = s.words[k]
	s.words[k] = v
	return old
}

// Counters returns the number of functional loads, stores and RMWs.
func (s *Store) Counters() (loads, stores, rmws uint64) {
	return s.loads, s.stores, s.rmws
}

// Allocator is a bump allocator handing out simulated addresses for
// workload data structures. Consecutive lines interleave across L2 home
// banks (home = line mod cores), so spreading structures over separate
// lines also spreads them over the chip.
type Allocator struct {
	next     uint64
	lineSize uint64
}

// NewAllocator starts allocating at base (rounded up to a line boundary).
func NewAllocator(base uint64, lineSize int) *Allocator {
	a := &Allocator{next: base, lineSize: uint64(lineSize)}
	a.next = a.roundUp(a.next)
	return a
}

func (a *Allocator) roundUp(v uint64) uint64 {
	return (v + a.lineSize - 1) &^ (a.lineSize - 1)
}

// Line returns the address of one fresh, exclusively-owned cache line.
func (a *Allocator) Line() uint64 { return a.Lines(1) }

// Lines returns the base address of n fresh cache lines, aligning to a
// line boundary first.
func (a *Allocator) Lines(n int) uint64 {
	a.next = a.roundUp(a.next)
	base := a.next
	a.next += uint64(n) * a.lineSize
	return base
}

// Words returns a word-aligned block of n words; the block may share cache
// lines with previous Words allocations (dense array layout).
func (a *Allocator) Words(n int) uint64 {
	base := a.next
	a.next += uint64(n) * WordSize
	return base
}

// AlignLine advances the allocation point to the next line boundary.
func (a *Allocator) AlignLine() { a.next = a.roundUp(a.next) }

// Used returns the number of bytes handed out so far.
func (a *Allocator) Used(base uint64) uint64 { return a.next - base }
