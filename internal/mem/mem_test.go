package mem

import (
	"testing"
	"testing/quick"
)

func TestStoreLoadRoundTrip(t *testing.T) {
	s := NewStore()
	if v := s.Load(0x100); v != 0 {
		t.Fatalf("uninitialized word = %d, want 0", v)
	}
	s.StoreWord(0x100, 42)
	if v := s.Load(0x100); v != 42 {
		t.Fatalf("load = %d, want 42", v)
	}
	// Same word, different byte offset.
	if v := s.Load(0x107); v != 42 {
		t.Fatalf("intra-word offset load = %d, want 42", v)
	}
	if v := s.Load(0x108); v != 0 {
		t.Fatalf("next word = %d, want 0", v)
	}
}

func TestRMW(t *testing.T) {
	s := NewStore()
	s.StoreWord(8, 10)
	old := s.RMW(8, func(v uint64) uint64 { return v + 5 })
	if old != 10 || s.Load(8) != 15 {
		t.Errorf("RMW old=%d new=%d, want 10/15", old, s.Load(8))
	}
	loads, stores, rmws := s.Counters()
	if loads != 1 || stores != 1 || rmws != 1 {
		t.Errorf("counters %d/%d/%d", loads, stores, rmws)
	}
}

func TestAllocatorLineAlignment(t *testing.T) {
	a := NewAllocator(100, 64)
	l1 := a.Line()
	l2 := a.Line()
	if l1%64 != 0 || l2%64 != 0 {
		t.Errorf("lines not aligned: %#x %#x", l1, l2)
	}
	if l2 != l1+64 {
		t.Errorf("lines not consecutive: %#x %#x", l1, l2)
	}
}

func TestAllocatorWordsDense(t *testing.T) {
	a := NewAllocator(0, 64)
	w1 := a.Words(3)
	w2 := a.Words(1)
	if w2 != w1+3*WordSize {
		t.Errorf("words not dense: %#x then %#x", w1, w2)
	}
	a.AlignLine()
	l := a.Line()
	if l%64 != 0 || l < w2 {
		t.Errorf("AlignLine produced %#x", l)
	}
}

// Property: allocations never overlap and are properly aligned.
func TestPropAllocatorNoOverlap(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewAllocator(0x1000, 64)
		type span struct{ lo, hi uint64 }
		var spans []span
		for _, op := range ops {
			var lo, hi uint64
			switch {
			case op%3 == 0:
				n := int(op%7) + 1
				lo = a.Lines(n)
				hi = lo + uint64(n)*64
				if lo%64 != 0 {
					return false
				}
			default:
				n := int(op%9) + 1
				lo = a.Words(n)
				hi = lo + uint64(n)*WordSize
				if lo%WordSize != 0 {
					return false
				}
			}
			for _, s := range spans {
				if lo < s.hi && s.lo < hi {
					return false
				}
			}
			spans = append(spans, span{lo, hi})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
