// Package metrics is the simulator's cycle-level observability core: named
// counters, gauges and fixed-bucket histograms that components register once
// and update on hot paths with no allocation, no map lookup and no locking
// (the simulated system is single-threaded; sweeps give every system its own
// registry).
//
// At the end of a run every component registry is snapshotted and merged
// into sim.Report.Metrics, which renders in the plain-text report and
// serializes to JSON — the data behind per-episode barrier latency
// distributions, NoC hot-spot analysis and coherence event accounting.
package metrics

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing event count. The zero value is
// usable, but components normally obtain counters from a Registry so the
// value appears in snapshots.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge tracks a level (queue depth, in-flight count) plus its peak.
type Gauge struct{ v, peak uint64 }

// Set records the current level and updates the peak.
func (g *Gauge) Set(v uint64) {
	g.v = v
	if v > g.peak {
		g.peak = v
	}
}

// Value returns the most recently set level.
func (g *Gauge) Value() uint64 { return g.v }

// Peak returns the maximum level ever set.
func (g *Gauge) Peak() uint64 { return g.peak }

// Histogram is a fixed-bucket distribution of uint64 samples (cycle counts).
// Bucket i counts samples v <= bounds[i]; one implicit overflow bucket
// catches the rest. Observe is allocation-free.
type Histogram struct {
	bounds []uint64 // ascending upper bounds
	counts []uint64 // len(bounds)+1, last = overflow
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds. It panics on an empty or non-ascending bound list: histogram
// shapes are compile-time decisions, never data-dependent.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %d <= %d", i, bounds[i], bounds[i-1]))
		}
	}
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// CycleBuckets returns the default exponential bucket bounds for cycle-count
// samples: powers of two from 1 to 2^26 (~67M cycles), covering everything
// from a single-cycle hit to the longest paper-tier run.
func CycleBuckets() []uint64 {
	b := make([]uint64, 27)
	for i := range b {
		b[i] = 1 << uint(i)
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	// Branchless-ish binary search over the (small, fixed) bound list.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the bucket
// bound below which at least q of the samples fall, sharpened to the exact
// min/max where the distribution's edge makes them tighter. Returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if float64(target) < q*float64(h.count) || target == 0 {
		target++
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i == len(h.bounds) {
				return h.max // overflow bucket: max is the only bound we have
			}
			b := h.bounds[i]
			if b > h.max {
				b = h.max
			}
			if b < h.min {
				b = h.min
			}
			return b
		}
	}
	return h.max
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
		P50:    h.Quantile(0.50),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
	}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
	}
	return s
}

// HistogramSnapshot is the serializable state of one histogram. Bounds are
// bucket upper bounds; Counts has one extra trailing overflow bucket.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`

	Bounds []uint64 `json:"bounds,omitempty"`
	Counts []uint64 `json:"counts,omitempty"`
}

// Plus merges two histogram snapshots. Bucket counts merge only when the
// bucket bounds are identical; otherwise the scalar summaries still merge
// and the receiver's buckets are kept. Percentiles are recomputed from the
// merged buckets when possible, else conservatively upper-bounded by Max.
func (s HistogramSnapshot) Plus(o HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	m := HistogramSnapshot{
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Min:    min(s.Min, o.Min),
		Max:    max(s.Max, o.Max),
		Bounds: s.Bounds,
	}
	m.Mean = float64(m.Sum) / float64(m.Count)
	if boundsEqual(s.Bounds, o.Bounds) {
		m.Counts = make([]uint64, len(s.Counts))
		for i := range s.Counts {
			m.Counts[i] = s.Counts[i] + o.Counts[i]
		}
		h := &Histogram{bounds: m.Bounds, counts: m.Counts, count: m.Count, sum: m.Sum, min: m.Min, max: m.Max}
		m.P50, m.P95, m.P99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	} else {
		m.Counts = s.Counts
		m.P50, m.P95, m.P99 = m.Max, m.Max, m.Max
	}
	return m
}

func boundsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// GaugeSnapshot is the serializable state of one gauge.
type GaugeSnapshot struct {
	Value uint64 `json:"value"`
	Peak  uint64 `json:"peak"`
}

// Snapshot is the serializable state of one registry (or a merge of
// several). Maps serialize with sorted keys, so JSON output is stable.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Empty reports whether the snapshot holds no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Plus merges two snapshots: counters add, gauges keep the element-wise
// maximum (peaks stay peaks), histograms merge per HistogramSnapshot.Plus.
// Neither receiver nor argument is mutated.
func (s Snapshot) Plus(o Snapshot) Snapshot {
	m := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)+len(o.Counters)),
		Gauges:     make(map[string]GaugeSnapshot, len(s.Gauges)+len(o.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms)),
	}
	for k, v := range s.Counters {
		m.Counters[k] = v
	}
	for k, v := range o.Counters {
		m.Counters[k] += v
	}
	for k, v := range s.Gauges {
		m.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		if prev, ok := m.Gauges[k]; ok {
			m.Gauges[k] = GaugeSnapshot{Value: max(prev.Value, v.Value), Peak: max(prev.Peak, v.Peak)}
		} else {
			m.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		m.Histograms[k] = v
	}
	for k, v := range o.Histograms {
		if prev, ok := m.Histograms[k]; ok {
			m.Histograms[k] = prev.Plus(v)
		} else {
			m.Histograms[k] = v
		}
	}
	return m
}

// SortedCounterNames returns the counter names in sorted order, for
// deterministic rendering.
func (s Snapshot) SortedCounterNames() []string { return sortedKeys(s.Counters) }

// SortedGaugeNames returns the gauge names in sorted order.
func (s Snapshot) SortedGaugeNames() []string { return sortedKeys(s.Gauges) }

// SortedHistogramNames returns the histogram names in sorted order.
func (s Snapshot) SortedHistogramNames() []string { return sortedKeys(s.Histograms) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Registry holds one component's named metrics. Registration happens at
// construction time; hot paths touch only the returned pointers. Registry is
// not safe for concurrent use — every simulated system owns its own.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter registers (or returns the already-registered) counter name.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge registers (or returns the already-registered) gauge name.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram registers (or returns the already-registered) histogram name.
// bounds apply only on first registration; a later caller gets the existing
// histogram regardless of the bounds it passes.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Snapshot captures every registered metric's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]GaugeSnapshot, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Peak: g.Peak()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
