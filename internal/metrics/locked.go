package metrics

import "sync"

// Locked serializes access to a Registry for concurrent components. The
// Registry itself is single-threaded by contract (no atomics on the
// simulator hot path); the serve layer is the one place metric handles are
// touched from many goroutines, so the lock lives here — in a wrapper the
// hot path never pays for — rather than inside Counter/Gauge/Histogram.
//
// Register every handle on the underlying Registry before wrapping it;
// after NewLocked, all updates and snapshots must go through the wrapper.
type Locked struct {
	mu sync.Mutex
	//glvet:guardedby mu
	reg *Registry
}

// NewLocked wraps reg. The caller must not touch reg directly afterwards.
func NewLocked(reg *Registry) *Locked {
	return &Locked{reg: reg}
}

// Count adds n to c under the lock.
func (l *Locked) Count(c *Counter, n uint64) {
	l.mu.Lock()
	c.Add(n)
	l.mu.Unlock()
}

// SetGauge sets g to v under the lock.
func (l *Locked) SetGauge(g *Gauge, v uint64) {
	l.mu.Lock()
	g.Set(v)
	l.mu.Unlock()
}

// Observe records v into h under the lock.
func (l *Locked) Observe(h *Histogram, v uint64) {
	l.mu.Lock()
	h.Observe(v)
	l.mu.Unlock()
}

// Snapshot captures the wrapped registry's state under the lock.
func (l *Locked) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reg.Snapshot()
}
