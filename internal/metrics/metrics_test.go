package metrics

import (
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("re-registering a counter name must return the same counter")
	}

	g := r.Gauge("q")
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 || g.Peak() != 7 {
		t.Fatalf("gauge value/peak = %d/%d, want 3/7", g.Value(), g.Peak())
	}
	if r.Gauge("q") != g {
		t.Fatal("re-registering a gauge name must return the same gauge")
	}
}

// Bucket edges: a sample exactly on a bound lands in that bound's bucket,
// one past it lands in the next, and anything beyond the last bound lands in
// the overflow bucket.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]uint64{1, 2, 4, 8})
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 8, 9, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{
		2, // <=1: 0, 1
		1, // <=2: 2
		2, // <=4: 3, 4
		2, // <=8: 5, 8
		2, // overflow: 9, 1000
	}
	if len(s.Counts) != len(want) {
		t.Fatalf("len(Counts) = %d, want %d", len(s.Counts), len(want))
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want[i])
		}
	}
	if s.Min != 0 || s.Max != 1000 || s.Count != 9 || s.Sum != 1032 {
		t.Errorf("min/max/count/sum = %d/%d/%d/%d, want 0/1000/9/1032", s.Min, s.Max, s.Count, s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(CycleBuckets())
	// 100 samples of value 10 → every quantile sits in the <=16 bucket but
	// is sharpened to the exact max, 10.
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		if got := h.Quantile(q); got != 10 {
			t.Errorf("Quantile(%v) = %d, want 10", q, got)
		}
	}

	h2 := NewHistogram([]uint64{10, 20, 30})
	for i := 0; i < 90; i++ {
		h2.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(25)
	}
	if got := h2.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %d, want 10 (bucket bound)", got)
	}
	if got := h2.Quantile(0.95); got != 25 {
		t.Errorf("p95 = %d, want 25 (bound 30 sharpened to max)", got)
	}
	if got := h2.Quantile(0.99); got != 25 {
		t.Errorf("p99 = %d, want 25", got)
	}

	// Overflow-bucket quantile reports the observed max.
	h3 := NewHistogram([]uint64{1})
	h3.Observe(50)
	if got := h3.Quantile(0.99); got != 50 {
		t.Errorf("overflow p99 = %d, want 50", got)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	h := NewHistogram(CycleBuckets())
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Max != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot should be all zero, got %+v", s)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty bounds", func() { NewHistogram(nil) })
	mustPanic("non-ascending", func() { NewHistogram([]uint64{1, 1}) })
}

func TestSnapshotPlus(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(3)
	a.Gauge("g").Set(5)
	ha := a.Histogram("h", []uint64{1, 2, 4})
	ha.Observe(1)
	ha.Observe(3)

	b := NewRegistry()
	b.Counter("c").Add(4)
	b.Counter("only-b").Inc()
	gb := b.Gauge("g")
	gb.Set(9)
	gb.Set(2)
	hb := b.Histogram("h", []uint64{1, 2, 4})
	hb.Observe(100)

	m := a.Snapshot().Plus(b.Snapshot())
	if m.Counters["c"] != 7 {
		t.Errorf("merged counter = %d, want 7", m.Counters["c"])
	}
	if m.Counters["only-b"] != 1 {
		t.Errorf("only-b = %d, want 1", m.Counters["only-b"])
	}
	if g := m.Gauges["g"]; g.Value != 5 || g.Peak != 9 {
		t.Errorf("merged gauge = %+v, want value 5 peak 9", g)
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Min != 1 || h.Max != 100 || h.Sum != 104 {
		t.Errorf("merged histogram count/min/max/sum = %d/%d/%d/%d, want 3/1/100/104", h.Count, h.Min, h.Max, h.Sum)
	}
	wantCounts := []uint64{1, 0, 1, 1} // 1 | (2,4] | overflow
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("merged bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.P99 != 100 {
		t.Errorf("merged p99 = %d, want 100", h.P99)
	}
}

func TestSnapshotPlusMismatchedBounds(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", []uint64{1, 2}).Observe(1)
	b := NewRegistry()
	b.Histogram("h", []uint64{10, 20}).Observe(15)

	h := a.Snapshot().Plus(b.Snapshot()).Histograms["h"]
	if h.Count != 2 || h.Min != 1 || h.Max != 15 || h.Sum != 16 {
		t.Errorf("scalar merge count/min/max/sum = %d/%d/%d/%d, want 2/1/15/16", h.Count, h.Min, h.Max, h.Sum)
	}
	// Percentiles fall back to the conservative upper bound.
	if h.P50 != 15 || h.P99 != 15 {
		t.Errorf("fallback percentiles = %d/%d, want 15/15", h.P50, h.P99)
	}
}

func TestSnapshotPlusEmptySides(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []uint64{1}).Observe(1)
	s := r.Snapshot()
	empty := NewRegistry().Snapshot()
	if got := s.Plus(empty).Histograms["h"]; got.Count != 1 {
		t.Errorf("s+empty count = %d, want 1", got.Count)
	}
	if got := empty.Plus(s).Histograms["h"]; got.Count != 1 {
		t.Errorf("empty+s count = %d, want 1", got.Count)
	}
	if !empty.Empty() {
		t.Error("empty snapshot should report Empty()")
	}
	if s.Empty() {
		t.Error("non-empty snapshot should not report Empty()")
	}
}

func TestSortedNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Counter("a")
	r.Gauge("z")
	r.Histogram("m", []uint64{1})
	s := r.Snapshot()
	cn := s.SortedCounterNames()
	if len(cn) != 2 || cn[0] != "a" || cn[1] != "b" {
		t.Errorf("sorted counters = %v", cn)
	}
	if gn := s.SortedGaugeNames(); len(gn) != 1 || gn[0] != "z" {
		t.Errorf("sorted gauges = %v", gn)
	}
	if hn := s.SortedHistogramNames(); len(hn) != 1 || hn[0] != "m" {
		t.Errorf("sorted histograms = %v", hn)
	}
}

// The hot path — Observe on a registered histogram — must not allocate.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(CycleBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & 0xffff)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
