package barrier

import (
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/stats"
)

// Lock is a test-and-test&set spin lock on one simulated cache line, the
// style of lock the paper's applications (UNSTRUCTURED) use for fine-grain
// mutual exclusion. All time inside Acquire/Release is attributed to
// RegionLock.
type Lock struct {
	addr uint64
}

// NewLock allocates the lock word on its own cache line.
func NewLock(alloc *mem.Allocator) *Lock {
	return &Lock{addr: alloc.Line()}
}

// Addr returns the lock word's simulated address, for tests.
func (l *Lock) Addr() uint64 { return l.addr }

// region attributes lock time to RegionLock, except inside a barrier,
// whose internal locks count as barrier time (the paper's S1/S3 stages).
func region(c *cpu.Ctx) stats.Region {
	if c.Region() == stats.RegionBarrier {
		return stats.RegionBarrier
	}
	return stats.RegionLock
}

// Acquire spins until it owns the lock: read the cached word until it looks
// free, then attempt the test&set; repeat on failure.
func (l *Lock) Acquire(c *cpu.Ctx) {
	c.InRegion(region(c), func() {
		for {
			c.SpinUntilEq(l.addr, 0)
			if c.TestAndSet(l.addr, 1) == 0 {
				return
			}
		}
	})
}

// Release frees the lock; the store invalidates the spinners' cached
// copies, waking them.
func (l *Lock) Release(c *cpu.Ctx) {
	c.InRegion(region(c), func() {
		c.StoreV(l.addr, 0)
	})
}
