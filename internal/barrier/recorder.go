package barrier

import (
	"repro/internal/metrics"
)

// EpisodeRecorder turns software-barrier episodes into latency samples:
// per episode it observes the cycles from the last thread's arrival to the
// release (Latency) and from the first to the last arrival (Skew). Either
// histogram may be nil to skip that series. The recorder relies on the
// simulator's serialized program execution — barrier Wait calls never run
// concurrently — so it needs no locking.
type EpisodeRecorder struct {
	Latency *metrics.Histogram
	Skew    *metrics.Histogram

	arrived     int
	first, last uint64
}

// arrive notes one thread reaching the barrier at the given cycle.
func (r *EpisodeRecorder) arrive(now uint64) {
	if r == nil {
		return
	}
	if r.arrived == 0 {
		r.first = now
	}
	if now > r.last || r.arrived == 0 {
		r.last = now
	}
	r.arrived++
}

// complete closes the episode at the release cycle and resets for the next.
func (r *EpisodeRecorder) complete(now uint64) {
	if r == nil {
		return
	}
	if r.Latency != nil {
		r.Latency.Observe(now - r.last)
	}
	if r.Skew != nil {
		r.Skew.Observe(r.last - r.first)
	}
	r.arrived = 0
}

// Recordable is implemented by barriers that can report per-episode latency
// samples through an EpisodeRecorder.
type Recordable interface {
	SetRecorder(*EpisodeRecorder)
}

// SetRecorder attaches an episode recorder to the centralized barrier.
func (b *Centralized) SetRecorder(r *EpisodeRecorder) { b.rec = r }

// SetRecorder attaches an episode recorder to the combining-tree barrier.
func (b *CombiningTree) SetRecorder(r *EpisodeRecorder) { b.rec = r }
