package barrier

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/mem"
)

// swHarness runs n cores over a coherent memory system, without a G-line
// network (software barriers only).
type swHarness struct {
	t     *testing.T
	eng   *engine.Engine
	cores []*cpu.Core
	alloc *mem.Allocator
	memv  *mem.Store
}

func newSWHarness(t *testing.T, n int) *swHarness {
	t.Helper()
	eng := engine.New()
	cfg := config.Default(n)
	memv := mem.NewStore()
	prot := coherence.New(eng, cfg, memv)
	h := &swHarness{t: t, eng: eng, alloc: mem.NewAllocator(0x100000, cfg.LineSize), memv: memv}
	for i := 0; i < n; i++ {
		h.cores = append(h.cores, cpu.NewCore(i, eng, cfg.IssueWidth, cfg.GLCallOverhead, prot.L1(i), nil))
	}
	return h
}

func (h *swHarness) run(progs []cpu.Program, maxCycles int) {
	h.t.Helper()
	for i, p := range progs {
		h.cores[i].Start(p)
	}
	done := func() bool {
		for _, c := range h.cores[:len(progs)] {
			if !c.Done() {
				return false
			}
		}
		return true
	}
	for i := 0; i < maxCycles && !done(); i++ {
		h.eng.Step()
	}
	if !done() {
		h.t.Fatal("programs did not finish")
	}
	for i, c := range h.cores[:len(progs)] {
		if err := c.Err(); err != nil {
			h.t.Fatalf("core %d: %v", i, err)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, s := range []string{"CSW", "DSW", "GL"} {
		if _, err := ParseKind(s); err != nil {
			t.Errorf("ParseKind(%s): %v", s, err)
		}
	}
	if _, err := ParseKind("XYZ"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := New("nope", nil, 4, nil, 0); err == nil {
		t.Error("New with unknown kind accepted")
	}
	if _, err := New(KindCSW, nil, 0, nil, 0); err == nil {
		t.Error("New with 0 threads accepted")
	}
}

// checkBarrierOrdering runs iters barrier episodes where each thread
// appends to a shared log before the barrier; after each barrier every
// thread must have observed all n pre-barrier entries of that episode.
func checkBarrierOrdering(t *testing.T, kind Kind, n, iters int) {
	t.Helper()
	h := newSWHarness(t, n)
	var episodes uint64
	b, err := New(kind, h.alloc, n, &episodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	arrived := make([]int, iters) // arrivals counted pre-barrier (host-side)
	progs := make([]cpu.Program, n)
	for tid := 0; tid < n; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Ctx) {
			for it := 0; it < iters; it++ {
				c.Work(1 + (tid*7+it*13)%23) // deterministic skew
				arrived[it]++
				b.Wait(c, tid)
				if arrived[it] != n {
					t.Errorf("%s: thread %d passed barrier %d with %d/%d arrivals", kind, tid, it, arrived[it], n)
				}
			}
		}
	}
	h.run(progs, 100_000_000)
	if episodes != uint64(iters) {
		t.Errorf("%s: episodes=%d, want %d", kind, episodes, iters)
	}
}

func TestCentralizedBarrierOrdering(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16} {
		checkBarrierOrdering(t, KindCSW, n, 4)
	}
}

func TestCombiningTreeBarrierOrdering(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 32} {
		checkBarrierOrdering(t, KindDSW, n, 4)
	}
}

func TestCombiningTreeShape(t *testing.T) {
	alloc := mem.NewAllocator(0, 64)
	cases := []struct{ n, depth, nodes int }{
		{1, 1, 1}, {2, 1, 1}, {3, 2, 3}, {4, 2, 3}, {8, 3, 7},
		{16, 4, 15}, {32, 5, 31}, {5, 3, 6},
	}
	for _, tc := range cases {
		b := NewCombiningTree(alloc, tc.n, nil)
		if got := b.Depth(); got != tc.depth {
			t.Errorf("n=%d depth=%d, want %d", tc.n, got, tc.depth)
		}
		if got := b.Nodes(); got != tc.nodes {
			t.Errorf("n=%d nodes=%d, want %d", tc.n, got, tc.nodes)
		}
	}
}

func TestCombiningTreeLLSCVariant(t *testing.T) {
	n := 8
	h := newSWHarness(t, n)
	var episodes uint64
	b := NewCombiningTree(h.alloc, n, &episodes)
	b.UseLLSC(true)
	progs := make([]cpu.Program, n)
	for tid := 0; tid < n; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Ctx) {
			for it := 0; it < 3; it++ {
				b.Wait(c, tid)
			}
		}
	}
	h.run(progs, 100_000_000)
	if episodes != 3 {
		t.Errorf("LL/SC tree episodes=%d, want 3", episodes)
	}
}

// Property: barriers are safe and live for random thread counts and
// deterministic random skews.
func TestPropBarriersSafeAndLive(t *testing.T) {
	f := func(seed int64, kindSel bool, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		kind := KindCSW
		if kindSel {
			kind = KindDSW
		}
		h := newSWHarness(t, n)
		var episodes uint64
		b, err := New(kind, h.alloc, n, &episodes, 0)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		skews := make([][]int, n)
		const iters = 3
		for i := range skews {
			skews[i] = make([]int, iters)
			for j := range skews[i] {
				skews[i][j] = r.Intn(300)
			}
		}
		phase := make([]int, n)
		ok := true
		progs := make([]cpu.Program, n)
		for tid := 0; tid < n; tid++ {
			tid := tid
			progs[tid] = func(c *cpu.Ctx) {
				for it := 0; it < iters; it++ {
					c.Compute(uint64(skews[tid][it] + 1))
					phase[tid] = it + 1
					b.Wait(c, tid)
					for o := 0; o < n; o++ {
						if phase[o] < it+1 {
							ok = false // someone released early
						}
					}
				}
			}
		}
		h.run(progs, 100_000_000)
		return ok && episodes == iters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	const n = 8
	h := newSWHarness(t, n)
	lk := NewLock(h.alloc)
	inside := 0
	violations := 0
	progs := make([]cpu.Program, n)
	for tid := 0; tid < n; tid++ {
		progs[tid] = func(c *cpu.Ctx) {
			for it := 0; it < 5; it++ {
				lk.Acquire(c)
				inside++
				if inside != 1 {
					violations++
				}
				c.Compute(7)
				inside--
				lk.Release(c)
			}
		}
	}
	h.run(progs, 100_000_000)
	if violations != 0 {
		t.Errorf("%d mutual-exclusion violations", violations)
	}
}

// Property: lock-protected counter increments never lose updates.
func TestPropLockedCounter(t *testing.T) {
	f := func(nRaw, itersRaw uint8) bool {
		n := int(nRaw%8) + 2
		iters := int(itersRaw%5) + 1
		h := newSWHarness(t, n)
		lk := NewLock(h.alloc)
		ctr := h.alloc.Line()
		progs := make([]cpu.Program, n)
		for tid := 0; tid < n; tid++ {
			progs[tid] = func(c *cpu.Ctx) {
				for it := 0; it < iters; it++ {
					lk.Acquire(c)
					c.StoreV(ctr, c.Load(ctr)+1)
					lk.Release(c)
				}
			}
		}
		h.run(progs, 100_000_000)
		return h.memv.Load(ctr) == uint64(n*iters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: LL/SC fetch&add is linearizable — the set of returned old
// values is exactly {0..total-1}.
func TestPropLLSCFetchAddLinearizable(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%8) + 2
		const per = 4
		h := newSWHarness(t, n)
		ctr := h.alloc.Line()
		seen := make(map[uint64]bool)
		progs := make([]cpu.Program, n)
		for tid := 0; tid < n; tid++ {
			progs[tid] = func(c *cpu.Ctx) {
				for it := 0; it < per; it++ {
					old := c.FetchAddLLSC(ctr, 1)
					if seen[old] {
						t.Errorf("duplicate fetch&add result %d", old)
					}
					seen[old] = true
				}
			}
		}
		h.run(progs, 100_000_000)
		if len(seen) != n*per {
			return false
		}
		for i := 0; i < n*per; i++ {
			if !seen[uint64(i)] {
				return false
			}
		}
		return h.memv.Load(ctr) == uint64(n*per)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestBarrierNames(t *testing.T) {
	alloc := mem.NewAllocator(0, 64)
	if NewCentralized(alloc, 2, nil).Name() != "CSW" {
		t.Error("CSW name")
	}
	if NewCombiningTree(alloc, 2, nil).Name() != "DSW" {
		t.Error("DSW name")
	}
	if NewGLine(0).Name() != "GL" {
		t.Error("GL name")
	}
}
