// Package barrier provides the three barrier implementations the paper
// compares:
//
//   - CSW: a centralized sense-reversal barrier (atomic counter + global
//     sense flag each core spins on);
//   - DSW: a distributed binary combining-tree barrier (the paper's best
//     software baseline);
//   - GL: the hardware G-line barrier (an adapter over the core's bar_reg).
//
// The software barriers run entirely on the simulated memory system —
// their traffic and latency emerge from the coherence protocol and the
// mesh, exactly as the paper's software baselines do.
package barrier

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/stats"
)

// Barrier synchronizes n threads. Implementations keep per-thread local
// state (sense flags) indexed by tid; tids must be in [0,n).
type Barrier interface {
	// Name returns the paper's label: "CSW", "DSW" or "GL".
	Name() string
	// Wait blocks thread tid at the barrier until all n threads arrive.
	// All simulated time spent inside is attributed to RegionBarrier.
	Wait(c *cpu.Ctx, tid int)
}

// Kind selects a barrier implementation by the paper's label.
type Kind string

// The three barrier kinds of the paper's evaluation.
const (
	KindCSW Kind = "CSW"
	KindDSW Kind = "DSW"
	KindGL  Kind = "GL"
)

// ParseKind validates a barrier label.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case KindCSW, KindDSW, KindGL:
		return Kind(s), nil
	}
	return "", fmt.Errorf("barrier: unknown kind %q (want CSW, DSW or GL)", s)
}

// New builds a barrier of the given kind for n threads. alloc provides
// simulated memory for the software barriers; episodes (may be nil) is
// incremented once per completed software-barrier episode (the G-line
// network counts its own). glCtx is the G-line context used by KindGL.
func New(kind Kind, alloc *mem.Allocator, n int, episodes *uint64, glCtx int) (Barrier, error) {
	if n <= 0 {
		return nil, fmt.Errorf("barrier: need n>=1 threads, got %d", n)
	}
	switch kind {
	case KindCSW:
		return NewCentralized(alloc, n, episodes), nil
	case KindDSW:
		return NewCombiningTree(alloc, n, episodes), nil
	case KindGL:
		return NewGLine(glCtx), nil
	}
	return nil, fmt.Errorf("barrier: unknown kind %q", kind)
}

// Centralized is the CSW baseline, exactly as the paper describes it: "a
// centralized sense-reversal barrier based on locks, where each core
// increments a centralized shared counter as it reaches the barrier, and
// spins until that counter indicates that all cores are present." The
// lock, the counter and the sense word each live on their own cache line;
// all contention focuses there — the hot spot the paper describes.
type Centralized struct {
	n        int
	lock     *Lock
	counter  uint64
	sense    uint64
	local    []uint64 // per-thread sense (private, register-resident)
	episodes *uint64
	rec      *EpisodeRecorder
}

// NewCentralized allocates the lock, counter and sense flag on separate
// lines.
func NewCentralized(alloc *mem.Allocator, n int, episodes *uint64) *Centralized {
	return &Centralized{
		n:        n,
		lock:     NewLock(alloc),
		counter:  alloc.Line(),
		sense:    alloc.Line(),
		local:    make([]uint64, n),
		episodes: episodes,
	}
}

// Name returns "CSW".
func (b *Centralized) Name() string { return string(KindCSW) }

// Wait implements the lock-based sense-reversal barrier.
func (b *Centralized) Wait(c *cpu.Ctx, tid int) {
	c.InRegion(stats.RegionBarrier, func() {
		b.rec.arrive(c.Now())
		sense := 1 - b.local[tid]
		b.local[tid] = sense
		// S1: lock-protected increment of the central counter.
		b.lock.Acquire(c)
		v := c.Load(b.counter) + 1
		c.StoreV(b.counter, v)
		b.lock.Release(c)
		if v == uint64(b.n) {
			// Last arriver: reset the counter and flip the sense,
			// releasing the spinners (S3).
			c.StoreV(b.counter, 0)
			if b.episodes != nil {
				*b.episodes++
			}
			c.StoreV(b.sense, sense)
			b.rec.complete(c.Now())
			return
		}
		c.SpinUntilEq(b.sense, sense) // S2: busy-wait
	})
}

// treeNode is one combining-tree node; lock, counter and sense sit on
// separate cache lines so release traffic does not collide with arrival
// traffic.
type treeNode struct {
	lock    *Lock
	counter uint64
	sense   uint64
	arity   int
	parent  int // index into nodes, -1 for the root
}

// CombiningTree is the DSW baseline: a binary combining tree. Cores are
// split in pairs at the leaves; the last arriver of each node climbs, and
// the release retraces the winners' paths top-down by flipping each node's
// sense word.
type CombiningTree struct {
	n        int
	leafOf   []int // tid -> leaf node index
	nodes    []treeNode
	local    []uint64
	episodes *uint64
	rec      *EpisodeRecorder
	// useLLSC switches node increments from lock-protected load/store
	// (the paper's lock-based software barriers) to a lock-free LL/SC
	// retry loop — kept as an ablation of the baseline's implementation.
	useLLSC bool
}

// NewCombiningTree builds the tree for n threads, allocating two lines per
// node. Node lines interleave across L2 banks, distributing the counters
// over the chip (the "distributed" in DSW).
func NewCombiningTree(alloc *mem.Allocator, n int, episodes *uint64) *CombiningTree {
	t := &CombiningTree{
		n:        n,
		leafOf:   make([]int, n),
		local:    make([]uint64, n),
		episodes: episodes,
	}
	// Level 0: leaves of arity <=2 over the threads.
	level := make([]int, 0, (n+1)/2)
	for i := 0; i < n; i += 2 {
		arity := 2
		if i+1 >= n {
			arity = 1
		}
		idx := t.addNode(alloc, arity)
		t.leafOf[i] = idx
		if i+1 < n {
			t.leafOf[i+1] = idx
		}
		level = append(level, idx)
	}
	// Upper levels: pair the winners.
	for len(level) > 1 {
		next := make([]int, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			arity := 2
			if i+1 >= len(level) {
				arity = 1
			}
			idx := t.addNode(alloc, arity)
			t.nodes[level[i]].parent = idx
			if i+1 < len(level) {
				t.nodes[level[i+1]].parent = idx
			}
			next = append(next, idx)
		}
		level = next
	}
	return t
}

func (t *CombiningTree) addNode(alloc *mem.Allocator, arity int) int {
	t.nodes = append(t.nodes, treeNode{
		lock:    NewLock(alloc),
		counter: alloc.Line(),
		sense:   alloc.Line(),
		arity:   arity,
		parent:  -1,
	})
	return len(t.nodes) - 1
}

// UseLLSC switches the tree's counter increments to lock-free LL/SC (an
// ablation; the default matches the paper's lock-based baseline).
func (b *CombiningTree) UseLLSC(v bool) { b.useLLSC = v }

// inc bumps a node's counter and returns the new value.
func (b *CombiningTree) inc(c *cpu.Ctx, nd *treeNode) uint64 {
	if b.useLLSC {
		return c.FetchAddLLSC(nd.counter, 1) + 1
	}
	nd.lock.Acquire(c)
	v := c.Load(nd.counter) + 1
	c.StoreV(nd.counter, v)
	nd.lock.Release(c)
	return v
}

// Name returns "DSW".
func (b *CombiningTree) Name() string { return string(KindDSW) }

// Depth returns the tree height (levels of nodes), for tests.
func (b *CombiningTree) Depth() int {
	d := 0
	for idx := b.leafOf[0]; idx >= 0; idx = b.nodes[idx].parent {
		d++
	}
	return d
}

// Nodes returns the number of tree nodes.
func (b *CombiningTree) Nodes() int { return len(b.nodes) }

// Wait implements the combining-tree barrier with sense reversal.
func (b *CombiningTree) Wait(c *cpu.Ctx, tid int) {
	c.InRegion(stats.RegionBarrier, func() {
		b.rec.arrive(c.Now())
		sense := 1 - b.local[tid]
		b.local[tid] = sense
		// Climb while winning; remember the winners' path.
		var path []int
		wonRoot := false
		node := b.leafOf[tid]
		for {
			nd := &b.nodes[node]
			v := b.inc(c, nd)
			if v < uint64(nd.arity) {
				// Not the last at this node: spin here (S2).
				c.SpinUntilEq(nd.sense, sense)
				break
			}
			// Last at this node: reset its counter for the next
			// episode and continue up (S1 combining).
			path = append(path, node)
			c.StoreV(nd.counter, 0)
			if nd.parent < 0 {
				if b.episodes != nil {
					*b.episodes++
				}
				wonRoot = true
				break
			}
			node = nd.parent
		}
		// Release top-down along the path this thread won (S3).
		for i := len(path) - 1; i >= 0; i-- {
			c.StoreV(b.nodes[path[i]].sense, sense)
		}
		if wonRoot {
			// The root winner's final sense store is the release wave's
			// start; sample the episode here.
			b.rec.complete(c.Now())
		}
	})
}

// GLine adapts the hardware G-line barrier to the Barrier interface: a
// single bar_reg write plus busy-wait on the register, as in the paper's
// Figure 3.
type GLine struct {
	ctx int
}

// NewGLine returns the hardware barrier bound to a G-line context.
func NewGLine(ctx int) *GLine { return &GLine{ctx: ctx} }

// Name returns "GL".
func (b *GLine) Name() string { return string(KindGL) }

// Wait executes one hardware barrier.
func (b *GLine) Wait(c *cpu.Ctx, tid int) { c.GLBarrier(b.ctx) }
