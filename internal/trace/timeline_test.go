package trace

import (
	"regexp"
	"testing"
)

func TestTimelineWraparound(t *testing.T) {
	tl := NewTimeline(4)
	for i := uint64(1); i <= 6; i++ {
		tl.Instant(CoreTrack(0), "test.ev", i*10, i, i)
	}
	if got := tl.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tl.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if got := tl.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	evs := tl.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	// Oldest first: events 3..6 survive.
	for i, e := range evs {
		want := uint64(i+3) * 10
		if e.Start != want {
			t.Errorf("event %d: Start = %d, want %d", i, e.Start, want)
		}
	}
}

func TestTimelinePartialAndTail(t *testing.T) {
	tl := NewTimeline(8)
	for i := uint64(0); i < 5; i++ {
		tl.Instant(CoreTrack(1), "test.ev", i, 0, 0)
	}
	if got := tl.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	if got := tl.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	tail := tl.Tail(2)
	if len(tail) != 2 || tail[0].Start != 3 || tail[1].Start != 4 {
		t.Fatalf("Tail(2) = %v, want starts 3,4", tail)
	}
	if got := tl.Tail(100); len(got) != 5 {
		t.Fatalf("Tail(100) len = %d, want 5", len(got))
	}
}

func TestTimelineBeginEnd(t *testing.T) {
	tl := NewTimeline(8)
	s := tl.Begin(RouterTrack(2, 3), "test.span", 100, 7, 9)
	tl.End(s, 140)
	evs := tl.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Start != 100 || e.End != 140 || e.Episode != 7 || e.Arg != 9 {
		t.Fatalf("recorded span = %+v", e)
	}
	if e.Instant() {
		t.Fatal("span misclassified as instant")
	}
	// A zero handle (Begin on a nil timeline) must be ignored by End.
	var nilTL *Timeline
	tl.End(nilTL.Begin(CoreTrack(0), "test.span", 1, 0, 0), 2)
	if got := tl.Len(); got != 1 {
		t.Fatalf("End(zero handle) recorded an event: Len = %d", got)
	}
}

func TestNilTimelineIsSafe(t *testing.T) {
	var tl *Timeline
	tl.Span(CoreTrack(0), "test.span", 1, 2, 0, 0)
	tl.Instant(CoreTrack(0), "test.ev", 1, 0, 0)
	tl.End(tl.Begin(CoreTrack(0), "test.span", 1, 0, 0), 2)
	if tl.Len() != 0 || tl.Total() != 0 || tl.Dropped() != 0 {
		t.Fatal("nil timeline reports nonzero counts")
	}
	if evs := tl.Events(); evs != nil {
		t.Fatalf("nil timeline Events = %v", evs)
	}
	if tail := tl.Tail(4); len(tail) != 0 {
		t.Fatalf("nil timeline Tail = %v", tail)
	}
}

// trackNameRE is the hygiene shape every track name must render in — the
// same vocabulary the spanname rule enforces for span names.
var trackNameRE = regexp.MustCompile(`^[a-z][a-z0-9._]*$`)

func TestTrackString(t *testing.T) {
	cases := []struct {
		tr   Track
		want string
	}{
		{CoreTrack(3), "core.3"},
		{LineTrack(2), "gline.2"},
		{BarrierTrack(0), "barrier.ctx0"},
		{RouterTrack(3, 2), "router.3.p2"},
		{EngineTrack(), "engine"},
		{Track(0), "untracked"},
	}
	for _, c := range cases {
		if got := c.tr.String(); got != c.want {
			t.Errorf("Track %#x String = %q, want %q", uint32(c.tr), got, c.want)
		}
		if !trackNameRE.MatchString(c.tr.String()) {
			t.Errorf("track name %q breaks hygiene %s", c.tr, trackNameRE)
		}
	}
}

func TestSpanEventString(t *testing.T) {
	in := SpanEvent{Start: 5, End: 5, Track: CoreTrack(1), Name: "test.ev", Episode: 2, Arg: 3}
	if s := in.String(); !regexp.MustCompile(`test\.ev\s+ep=2 arg=3`).MatchString(s) {
		t.Errorf("instant String = %q", s)
	}
	sp := SpanEvent{Start: 5, End: 9, Track: CoreTrack(1), Name: "test.span"}
	if s := sp.String(); !regexp.MustCompile(`test\.span\s+\+4 ep=0 arg=0`).MatchString(s) {
		t.Errorf("span String = %q", s)
	}
}

// TestZeroAllocSpanDisabled pins the disabled-tracing cost contract: a nil
// timeline's emit path allocates nothing (it is one branch).
func TestZeroAllocSpanDisabled(t *testing.T) {
	var tl *Timeline
	track := CoreTrack(5)
	if n := testing.AllocsPerRun(1000, func() {
		tl.Span(track, "test.span", 10, 20, 1, 2)
		tl.Instant(track, "test.ev", 10, 1, 2)
		tl.End(tl.Begin(track, "test.span", 10, 1, 2), 20)
	}); n != 0 {
		t.Fatalf("disabled emit allocates %v per run, want 0", n)
	}
}

// TestZeroAllocSpanEnabled pins the enabled-tracing cost contract: writing
// into the preallocated ring allocates nothing either.
func TestZeroAllocSpanEnabled(t *testing.T) {
	tl := NewTimeline(64)
	track := RouterTrack(1, 2)
	if n := testing.AllocsPerRun(1000, func() {
		tl.Span(track, "test.span", 10, 20, 1, 2)
		tl.Instant(track, "test.ev", 10, 1, 2)
		tl.End(tl.Begin(track, "test.span", 10, 1, 2), 20)
	}); n != 0 {
		t.Fatalf("enabled emit allocates %v per run, want 0", n)
	}
}
