package trace

import (
	"errors"
	"strings"
	"testing"
)

// countingStringer counts how many times it is formatted, proving the ring
// defers Sprintf until read time.
type countingStringer struct{ formats int }

func (c *countingStringer) String() string {
	c.formats++
	return "x"
}

func TestRingFormatsLazily(t *testing.T) {
	r := NewRing(4)
	c := &countingStringer{}
	for i := 0; i < 100; i++ {
		r.Emit(uint64(i), "src", "v=%v", c)
	}
	if c.formats != 0 {
		t.Fatalf("Emit formatted %d times; formatting must be deferred to read time", c.formats)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len=%d, want 4", len(evs))
	}
	// Only the 4 surviving entries get formatted, not all 100 emits.
	if c.formats != 4 {
		t.Fatalf("read formatted %d entries, want 4", c.formats)
	}
	if evs[0].Msg != "v=x" {
		t.Errorf("msg = %q", evs[0].Msg)
	}
}

func TestRingNoArgsSkipsSprintf(t *testing.T) {
	r := NewRing(2)
	r.Emit(1, "src", "literal %d percent-d stays literal")
	if got := r.Events()[0].Msg; got != "literal %d percent-d stays literal" {
		t.Errorf("no-arg emit must not be reformatted, got %q", got)
	}
}

func TestEnabled(t *testing.T) {
	if Enabled(nil) {
		t.Error("nil tracer must be disabled")
	}
	if Enabled(Nop{}) {
		t.Error("Nop must be disabled")
	}
	if !Enabled(NewRing(1)) {
		t.Error("Ring must be enabled")
	}
	if Enabled(Filtered{}) {
		t.Error("Filtered with nil Next must be disabled")
	}
	if !Enabled(Filtered{Next: NewRing(1)}) {
		t.Error("Filtered with a live Next must be enabled")
	}
}

func TestEmitf(t *testing.T) {
	r := NewRing(4)
	Emitf(r, 5, "src", "n=%d", 9)
	if r.Len() != 1 || r.Events()[0].Msg != "n=9" {
		t.Errorf("Emitf to ring: %v", r.Events())
	}
	Emitf(Nop{}, 5, "src", "dropped %d", 1) // must not panic, must be a no-op
	Emitf(nil, 5, "src", "dropped %d", 1)   // nil tracer tolerated
}

func TestFilteredNilNext(t *testing.T) {
	f := Filtered{Keep: func(string) bool { return true }}
	f.Emit(1, "src", "must not panic") // nil Next: silently dropped
	var asTracer Tracer = Filtered{}
	asTracer.Emit(2, "src", "also fine")
}

type failingWriter struct {
	failAfter int
	writes    int
	err       error
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.failAfter {
		return 0, w.err
	}
	return len(p), nil
}

func TestWriterErrorPropagation(t *testing.T) {
	wantErr := errors.New("disk full")
	fw := &failingWriter{failAfter: 1, err: wantErr}
	w := &Writer{W: fw}
	w.Emit(1, "a", "ok")
	if w.Err() != nil {
		t.Fatalf("unexpected early error: %v", w.Err())
	}
	w.Emit(2, "b", "boom")
	if !errors.Is(w.Err(), wantErr) {
		t.Fatalf("Err() = %v, want %v", w.Err(), wantErr)
	}
	// The sticky error suppresses further writes.
	before := fw.writes
	w.Emit(3, "c", "suppressed")
	if fw.writes != before {
		t.Error("Writer kept writing after a sticky error")
	}
}

func TestWriterStream(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb}
	w.Emit(42, "bank.3", "grant %#x", 0x100)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if !strings.Contains(sb.String(), "bank.3") || !strings.Contains(sb.String(), "0x100") {
		t.Errorf("writer output: %q", sb.String())
	}
}

// The disabled hot path — Enabled guard around an Emit — must cost ~nothing:
// no allocation (the variadic args are never boxed) and ~1ns of branching.
func BenchmarkEmitDisabledGuarded(b *testing.B) {
	var tr Tracer = Nop{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Enabled(tr) {
			tr.Emit(uint64(i), "bank.0", "get %#x from %d", uintptr(i), i&7)
		}
	}
}

// Baseline: the old pattern, emitting into a Nop without a guard — the
// variadic boxing alone allocates.
func BenchmarkEmitDisabledUnguarded(b *testing.B) {
	var tr Tracer = Nop{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(uint64(i), "bank.0", "get %#x from %d", uintptr(i), i&7)
	}
}

// Lazy ring emit: args are captured but never formatted unless read.
func BenchmarkRingEmitLazy(b *testing.B) {
	r := NewRing(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(uint64(i), "bank.0", "get %#x from %d", uintptr(i), i&7)
	}
}
