package trace

import (
	"sync"
	"testing"
)

// TestRingConcurrentEmitEvents interleaves Emit with Events/Len reads from
// another goroutine; under -race this proves the ring's locking covers both
// the write and the snapshot path. Every snapshot must be internally
// consistent: at most capacity events, cycles monotonically increasing.
func TestRingConcurrentEmitEvents(t *testing.T) {
	const capacity, total = 32, 2000
	r := NewRing(capacity)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			r.Emit(uint64(i), "test", "event %d", i)
		}
	}()
	for i := 0; i < 200; i++ {
		evs := r.Events()
		if len(evs) > capacity {
			t.Errorf("snapshot holds %d events, capacity %d", len(evs), capacity)
		}
		for j := 1; j < len(evs); j++ {
			if evs[j].Cycle < evs[j-1].Cycle {
				t.Fatalf("snapshot out of order: %d after %d", evs[j].Cycle, evs[j-1].Cycle)
			}
		}
		_ = r.Len()
	}
	wg.Wait()
	if got := r.Len(); got != capacity {
		t.Fatalf("final Len = %d, want %d", got, capacity)
	}
	evs := r.Events()
	if evs[len(evs)-1].Cycle != total-1 {
		t.Fatalf("last event cycle = %d, want %d", evs[len(evs)-1].Cycle, total-1)
	}
}
