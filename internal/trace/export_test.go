package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteChromeShape round-trips a small timeline through the exporter
// and checks the Chrome trace-event contract: valid shape, per-class
// process metadata, per-track thread metadata, nesting-safe event order and
// verbatim otherData.
func TestWriteChromeShape(t *testing.T) {
	tl := NewTimeline(64)
	// An enclosing span and a contained one at the same start: the long one
	// must export first or Perfetto nests them wrong.
	tl.Span(BarrierTrack(0), "test.inner", 100, 110, 1, 0)
	tl.Span(BarrierTrack(0), "test.outer", 100, 200, 1, 3)
	tl.Instant(CoreTrack(2), "test.mark", 150, 1, 9)
	tl.Span(RouterTrack(1, 0), "test.tx", 120, 125, 0, 5)

	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf, map[string]string{"bench": "SYNTH"}); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}

	var f struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    uint64         `json:"ts"`
			Dur   uint64         `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	if f.OtherData["bench"] != "SYNTH" {
		t.Errorf("otherData not embedded: %v", f.OtherData)
	}

	threadNames := map[string]bool{}
	processNames := map[string]bool{}
	var outerIdx, innerIdx = -1, -1
	instants := 0
	for i, ev := range f.TraceEvents {
		switch ev.Phase {
		case "M":
			name, _ := ev.Args["name"].(string)
			if ev.Name == "thread_name" {
				threadNames[name] = true
			} else if ev.Name == "process_name" {
				processNames[name] = true
			}
		case "X":
			if ev.Name == "test.outer" {
				outerIdx = i
			}
			if ev.Name == "test.inner" {
				innerIdx = i
			}
		case "i":
			instants++
			if ev.Name != "test.mark" || ev.TS != 150 {
				t.Errorf("instant = %+v", ev)
			}
		}
	}
	for _, want := range []string{"barrier.ctx0", "core.2", "router.1.p0"} {
		if !threadNames[want] {
			t.Errorf("missing thread_name %q (have %v)", want, threadNames)
		}
	}
	for _, want := range []string{"barriers", "cores", "routers"} {
		if !processNames[want] {
			t.Errorf("missing process_name %q (have %v)", want, processNames)
		}
	}
	if instants != 1 {
		t.Errorf("instants = %d, want 1", instants)
	}
	if outerIdx == -1 || innerIdx == -1 || outerIdx > innerIdx {
		t.Errorf("nesting order wrong: outer at %d, inner at %d (outer must export first)", outerIdx, innerIdx)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTimeline(4).WriteChrome(&buf, nil); err != nil {
		t.Fatalf("WriteChrome(empty): %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("ValidateChrome(empty): %v", err)
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not json", "nope"},
		{"missing traceEvents", `{"displayTimeUnit":"ms"}`},
		{"bad phase", `{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":0,"tid":0}]}`},
		{"X without dur", `{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":0,"tid":0}]}`},
		{"missing name", `{"traceEvents":[{"ph":"i","ts":1,"pid":0,"tid":0}]}`},
		{"missing ts", `{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0}]}`},
	}
	for _, c := range cases {
		if err := ValidateChrome([]byte(c.data)); err == nil {
			t.Errorf("%s: ValidateChrome accepted %q", c.name, c.data)
		}
	}
}
