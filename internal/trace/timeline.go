// Structured span timelines: the typed, zero-allocation counterpart of the
// format-string Ring. Components record complete spans (begin/end cycle
// pairs) and instant events on per-component tracks; an attached Timeline
// keeps the most recent events in a fixed ring and renders them as a
// Chrome trace-event file (export.go) or a post-mortem tail.
//
// The cost contract mirrors the rest of the cycle path (DESIGN.md §10/§11):
//
//   - Disabled tracing is one branch: every emit method tolerates a nil
//     *Timeline receiver, so components hold a plain possibly-nil field and
//     call unconditionally. No interface, no boxing, no allocation.
//   - Enabled tracing is allocation-free: events are fixed-size values
//     written into a preallocated ring slot. Formatting happens only at
//     export/dump time.
//   - A Timeline is single-writer, like a metrics.Registry: one simulated
//     system owns it. Parallel sweep replicas each attach their own.
package trace

import (
	"fmt"
	"strconv"
)

// Track identifies one timeline row: a component class plus an index.
// Tracks are encoded in a uint32 (class in the top byte) so a SpanEvent
// stays a small flat value.
type Track uint32

// Track classes. The zero Track (class 0) is "untracked" and renders as
// "untracked" — emitting on it is legal but usually a wiring bug.
const (
	classNone uint32 = iota
	classCore
	classLine
	classBarrier
	classRouter
	classEngine
)

// routerPortStride spaces router track ids so every (node, port) pair gets
// its own track; it must exceed the NoC's port count.
const routerPortStride = 8

const trackIDMask = 1<<24 - 1

func makeTrack(class uint32, id int) Track {
	return Track(class<<24 | uint32(id)&trackIDMask)
}

// CoreTrack is the track of core/tile i (CPU op handshakes and coherence
// transactions of that tile).
//
//glvet:cyclepath
func CoreTrack(i int) Track { return makeTrack(classCore, i) }

// LineTrack is the track of the G-line with the given timeline id (assigned
// by the network's SetTimeline traversal, mirroring fault-injector ids).
//
//glvet:cyclepath
func LineTrack(id int) Track { return makeTrack(classLine, id) }

// BarrierTrack is the track of one barrier context: episodes, their phase
// spans and protocol-level instants.
//
//glvet:cyclepath
func BarrierTrack(ctx int) Track { return makeTrack(classBarrier, ctx) }

// RouterTrack is the track of one NoC router output port: per-port flit
// occupancy spans.
//
//glvet:cyclepath
func RouterTrack(node, port int) Track {
	return makeTrack(classRouter, node*routerPortStride+port)
}

// EngineTrack is the single track of the event engine (fast-forward jumps).
//
//glvet:cyclepath
func EngineTrack() Track { return makeTrack(classEngine, 0) }

func (t Track) class() uint32 { return uint32(t) >> 24 }
func (t Track) id() int       { return int(uint32(t) & trackIDMask) }

// String renders the track name. Names follow the metric-name hygiene
// ^[a-z][a-z0-9._]*$ so they grep and export cleanly.
func (t Track) String() string {
	switch t.class() {
	case classCore:
		return "core." + strconv.Itoa(t.id())
	case classLine:
		return "gline." + strconv.Itoa(t.id())
	case classBarrier:
		return "barrier.ctx" + strconv.Itoa(t.id())
	case classRouter:
		return "router." + strconv.Itoa(t.id()/routerPortStride) + ".p" + strconv.Itoa(t.id()%routerPortStride)
	case classEngine:
		return "engine"
	}
	return "untracked"
}

// SpanEvent is one recorded timeline entry: a complete span when End>Start,
// an instant when End==Start. Name must be a package-level constant at the
// emit site (the spanname glvet rule), so the ring retains only static
// strings and the emit path never formats or allocates.
type SpanEvent struct {
	Start   uint64
	End     uint64
	Track   Track
	Name    string
	Episode uint64 // barrier episode ordinal, 0 when not episode-scoped
	Arg     uint64 // event-specific payload (flit count, core id, ...)
}

// Instant reports whether the event is an instant rather than a span.
func (e SpanEvent) Instant() bool { return e.End == e.Start }

// String renders the event as one post-mortem dump line.
func (e SpanEvent) String() string {
	if e.Instant() {
		return fmt.Sprintf("%10d %-14s %-22s ep=%d arg=%d", e.Start, e.Track, e.Name, e.Episode, e.Arg)
	}
	return fmt.Sprintf("%10d %-14s %-22s +%d ep=%d arg=%d", e.Start, e.Track, e.Name, e.End-e.Start, e.Episode, e.Arg)
}

// Span is an in-flight span handle returned by Timeline.Begin; pass it to
// Timeline.End to record the complete span. It is a plain value — no slot
// is held in the ring until End.
type Span struct {
	track   Track
	name    string
	start   uint64
	episode uint64
	arg     uint64
}

// Timeline is a fixed-capacity ring of SpanEvents. All emit methods accept
// a nil receiver as the disabled state; accessors (Events, Tail, Len) are
// cold-path only.
type Timeline struct {
	events []SpanEvent
	next   int
	filled bool
	total  uint64
}

// NewTimeline builds a timeline holding up to capacity events; capacity<=0
// selects a default large enough for a small run's full history.
func NewTimeline(capacity int) *Timeline {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Timeline{events: make([]SpanEvent, capacity)}
}

// Span records a complete span. One branch when t is nil; allocation-free
// when enabled.
//
//glvet:cyclepath
func (t *Timeline) Span(track Track, name string, start, end, episode, arg uint64) {
	if t == nil {
		return
	}
	e := &t.events[t.next]
	e.Start = start
	e.End = end
	e.Track = track
	e.Name = name
	e.Episode = episode
	e.Arg = arg
	t.total++
	t.next++
	if t.next == len(t.events) {
		t.next = 0
		t.filled = true
	}
}

// Instant records a zero-duration event.
//
//glvet:cyclepath
func (t *Timeline) Instant(track Track, name string, cycle, episode, arg uint64) {
	t.Span(track, name, cycle, cycle, episode, arg)
}

// Begin opens a span; the returned handle carries everything but the end
// cycle. Begin on a nil timeline returns a zero handle that End ignores.
//
//glvet:cyclepath
func (t *Timeline) Begin(track Track, name string, cycle, episode, arg uint64) Span {
	if t == nil {
		return Span{}
	}
	return Span{track: track, name: name, start: cycle, episode: episode, arg: arg}
}

// End records the span opened by Begin as complete at the given cycle.
//
//glvet:cyclepath
func (t *Timeline) End(s Span, cycle uint64) {
	if t == nil || s.name == "" {
		return
	}
	t.Span(s.track, s.name, s.start, cycle, s.episode, s.arg)
}

// Len reports how many events are currently held.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	if t.filled {
		return len(t.events)
	}
	return t.next
}

// Total reports how many events were ever emitted (held + overwritten).
func (t *Timeline) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped reports how many events the ring has overwritten.
func (t *Timeline) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.total - uint64(t.Len())
}

// Events returns the held events, oldest first.
func (t *Timeline) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	out := make([]SpanEvent, 0, t.Len())
	if t.filled {
		out = append(out, t.events[t.next:]...)
	}
	out = append(out, t.events[:t.next]...)
	return out
}

// Tail returns the most recent n events, oldest first — the post-mortem
// slice the hang watchdog dumps.
func (t *Timeline) Tail(n int) []SpanEvent {
	evs := t.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}
