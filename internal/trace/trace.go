// Package trace provides the simulator's event-trace facility: components
// emit formatted events tagged with cycle and source; sinks either stream
// them to a writer or keep the last N in a ring buffer for post-mortem
// dumps (the default for debugging protocol hangs).
//
// Tracing sits on simulation hot paths, so the cost model matters:
//
//   - Guard call sites with Enabled(t) — when it returns false the variadic
//     arguments are never boxed and the emit costs one branch.
//   - Ring.Emit captures cycle/source/format/args and defers the Sprintf to
//     Events/Dump time, so an attached ring never formats messages that are
//     overwritten before anyone looks.
//   - Emitf bundles the Enabled check and the forward for call sites that
//     prefer one line over the guard-plus-call pair.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Tracer receives simulation events. Implementations must be cheap when
// disabled: the simulator calls Emit on hot paths.
type Tracer interface {
	// Emit records one event at the given cycle from the named source
	// ("l1.3", "bank.7", "gline", ...). Implementations may retain args
	// and format lazily, so callers must pass values (or pointers they
	// will not mutate afterwards).
	Emit(cycle uint64, source, format string, args ...any)
}

// Enabled reports whether emitting to t can have any effect. It is the
// hot-path guard: when false, skipping the Emit call avoids boxing the
// variadic arguments entirely. nil and Nop tracers are disabled; tracers
// exposing an `Enabled() bool` method (such as Filtered) are consulted;
// anything else is assumed enabled.
func Enabled(t Tracer) bool {
	switch v := t.(type) {
	case nil:
		return false
	case Nop:
		return false
	case interface{ Enabled() bool }:
		return v.Enabled()
	}
	return true
}

// Emitf forwards one event to t if Enabled(t). It trades the explicit
// two-line guard for convenience; the variadic arguments are still boxed at
// this call site, so the hottest paths should keep the `if Enabled` guard.
func Emitf(t Tracer, cycle uint64, source, format string, args ...any) {
	if Enabled(t) {
		t.Emit(cycle, source, format, args...)
	}
}

// Nop discards all events; the zero value is ready to use.
type Nop struct{}

// Emit does nothing.
func (Nop) Emit(uint64, string, string, ...any) {}

// Event is one recorded trace entry.
type Event struct {
	Cycle  uint64
	Source string
	Msg    string
}

// String formats the event as "cycle source: msg".
func (e Event) String() string {
	return fmt.Sprintf("%10d %-8s %s", e.Cycle, e.Source, e.Msg)
}

// record is a not-yet-formatted ring entry; the Sprintf happens only when
// the entry survives until Events/Dump.
type record struct {
	cycle  uint64
	source string
	format string
	args   []any
}

func (rec record) event() Event {
	msg := rec.format
	if len(rec.args) > 0 {
		msg = fmt.Sprintf(rec.format, rec.args...)
	}
	return Event{Cycle: rec.cycle, Source: rec.source, Msg: msg}
}

// Ring keeps the most recent events in a fixed-size circular buffer,
// formatting them only when read — events that are overwritten before a
// Dump never pay for their Sprintf. The zero value is unusable; call
// NewRing. Ring is safe for the simulator's single-threaded use plus
// concurrent Dump calls.
type Ring struct {
	mu sync.Mutex
	//glvet:guardedby mu
	records []record
	//glvet:guardedby mu
	next int
	//glvet:guardedby mu
	filled bool
}

// NewRing builds a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{records: make([]record, capacity)}
}

// Emit implements Tracer. The args are retained until the entry is
// overwritten or formatted; callers must not mutate pointed-to values they
// pass here.
func (r *Ring) Emit(cycle uint64, source, format string, args ...any) {
	// Tracers are opt-in debugging aids: hot paths reach Emit only behind
	// the Protocol.traceOn guard, which is false in measured runs.
	//lint:allow cyclepure trace emission is opt-in debugging, off in measured runs
	r.mu.Lock()
	r.records[r.next] = record{cycle: cycle, source: source, format: format, args: args}
	r.next++
	if r.next == len(r.records) {
		r.next = 0
		r.filled = true
	}
	//lint:allow cyclepure trace emission is opt-in debugging, off in measured runs
	r.mu.Unlock()
}

// Len reports how many events are currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.records)
	}
	return r.next
}

// Events returns the held events, oldest first, formatting each on demand.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.records))
	if r.filled {
		for _, rec := range r.records[r.next:] {
			out = append(out, rec.event())
		}
	}
	for _, rec := range r.records[:r.next] {
		out = append(out, rec.event())
	}
	return out
}

// Dump writes the held events to w, oldest first.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Writer streams every event to an io.Writer as it is emitted. The first
// write error sticks and suppresses all further output; check Err after the
// run.
type Writer struct {
	W   io.Writer
	err error
}

// Emit implements Tracer.
func (t *Writer) Emit(cycle uint64, source, format string, args ...any) {
	if t.err != nil {
		return
	}
	//lint:allow cyclepure trace emission is opt-in debugging, off in measured runs
	_, t.err = fmt.Fprintf(t.W, "%10d %-8s %s\n", cycle, source, fmt.Sprintf(format, args...))
}

// Err returns the first write error encountered, or nil.
func (t *Writer) Err() error { return t.err }

// Filtered forwards events whose source passes Keep. A nil Next makes the
// filter a disabled no-op rather than a panic.
type Filtered struct {
	Next Tracer
	Keep func(source string) bool
}

// Enabled reports whether the downstream tracer can receive anything.
func (f Filtered) Enabled() bool { return Enabled(f.Next) }

// Emit implements Tracer.
func (f Filtered) Emit(cycle uint64, source, format string, args ...any) {
	if f.Next == nil {
		return
	}
	if f.Keep == nil || f.Keep(source) {
		f.Next.Emit(cycle, source, format, args...)
	}
}
