// Package trace provides the simulator's event-trace facility: components
// emit formatted events tagged with cycle and source; sinks either stream
// them to a writer or keep the last N in a ring buffer for post-mortem
// dumps (the default for debugging protocol hangs).
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Tracer receives simulation events. Implementations must be cheap when
// disabled: the simulator calls Emit on hot paths.
type Tracer interface {
	// Emit records one event at the given cycle from the named source
	// ("l1.3", "bank.7", "gline", ...).
	Emit(cycle uint64, source, format string, args ...any)
}

// Nop discards all events; the zero value is ready to use.
type Nop struct{}

// Emit does nothing.
func (Nop) Emit(uint64, string, string, ...any) {}

// Event is one recorded trace entry.
type Event struct {
	Cycle  uint64
	Source string
	Msg    string
}

// String formats the event as "cycle source: msg".
func (e Event) String() string {
	return fmt.Sprintf("%10d %-8s %s", e.Cycle, e.Source, e.Msg)
}

// Ring keeps the most recent events in a fixed-size circular buffer. The
// zero value is unusable; call NewRing. Ring is safe for the simulator's
// single-threaded use plus concurrent Dump calls.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool
}

// NewRing builds a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{events: make([]Event, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(cycle uint64, source, format string, args ...any) {
	r.mu.Lock()
	r.events[r.next] = Event{Cycle: cycle, Source: source, Msg: fmt.Sprintf(format, args...)}
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Len reports how many events are currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.events)
	}
	return r.next
}

// Events returns the held events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	if r.filled {
		out = append(out, r.events[r.next:]...)
	}
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump writes the held events to w, oldest first.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Writer streams every event to an io.Writer as it is emitted.
type Writer struct {
	W io.Writer
}

// Emit implements Tracer.
func (t Writer) Emit(cycle uint64, source, format string, args ...any) {
	fmt.Fprintf(t.W, "%10d %-8s %s\n", cycle, source, fmt.Sprintf(format, args...))
}

// Filtered forwards events whose source passes Keep.
type Filtered struct {
	Next Tracer
	Keep func(source string) bool
}

// Emit implements Tracer.
func (f Filtered) Emit(cycle uint64, source, format string, args ...any) {
	if f.Keep == nil || f.Keep(source) {
		f.Next.Emit(cycle, source, format, args...)
	}
}
