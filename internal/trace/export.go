package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export (the JSON format ui.perfetto.dev and
// chrome://tracing load). Mapping:
//
//   - one process per track class (core / gline / barrier / router / engine)
//     so Perfetto groups related tracks,
//   - one thread per track, named by Track.String(),
//   - complete spans as ph:"X" events (ts + dur), instants as ph:"i",
//   - 1 simulated cycle = 1 exported microsecond tick (ts is integral).
//
// Perfetto nests "X" events on a thread by containment, but only if an
// enclosing span is emitted before the spans it contains — so events are
// sorted (ts ascending, dur descending) before writing.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
	Cat   string         `json:"cat,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

var classNames = map[uint32]string{
	classCore:    "cores",
	classLine:    "glines",
	classBarrier: "barriers",
	classRouter:  "routers",
	classEngine:  "engine",
	classNone:    "untracked",
}

// WriteChrome renders the held events as a Chrome trace-event JSON file.
// otherData (may be nil) is embedded verbatim for provenance. The output is
// deterministic for a given timeline: tracks are enumerated in sorted order
// and events in (ts, -dur) order.
func (t *Timeline) WriteChrome(w io.Writer, otherData map[string]string) error {
	evs := t.Events()

	// Collect the tracks actually seen, sorted numerically, so metadata
	// and tid assignment are deterministic.
	seen := make(map[Track]bool, 16)
	for _, e := range evs {
		seen[e.Track] = true
	}
	tracks := make([]Track, 0, len(seen))
	for tr := range seen {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })

	out := make([]chromeEvent, 0, len(evs)+2*len(tracks))

	// Metadata: process names per class, thread names per track. pid is
	// the class, tid the in-class id — both small and stable.
	emittedClass := make(map[uint32]bool, 8)
	for _, tr := range tracks {
		if !emittedClass[tr.class()] {
			emittedClass[tr.class()] = true
			out = append(out, chromeEvent{
				Name:  "process_name",
				Phase: "M",
				PID:   int(tr.class()),
				Args:  map[string]any{"name": classNames[tr.class()]},
			})
		}
		out = append(out, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   int(tr.class()),
			TID:   tr.id(),
			Args:  map[string]any{"name": tr.String()},
		})
	}

	// Events, sorted for correct nesting.
	sorted := make([]SpanEvent, len(evs))
	copy(sorted, evs)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End-sorted[i].Start > sorted[j].End-sorted[j].Start
	})
	for _, e := range sorted {
		ce := chromeEvent{
			Name: e.Name,
			TS:   e.Start,
			PID:  int(e.Track.class()),
			TID:  e.Track.id(),
			Cat:  classNames[e.Track.class()],
			Args: map[string]any{"episode": e.Episode, "arg": e.Arg},
		}
		if e.Instant() {
			ce.Phase = "i"
			ce.Scope = "t"
		} else {
			ce.Phase = "X"
			dur := e.End - e.Start
			ce.Dur = &dur
		}
		out = append(out, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData:       otherData,
	})
}

// ValidateChrome checks that data has the Chrome trace-event shape this
// package exports: a traceEvents array whose entries carry a known phase,
// a duration on every complete ("X") event, and pid/tid fields. Used by
// the trace-smoke test and CLI round-trip tests.
func ValidateChrome(data []byte) error {
	var f struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	for i, ev := range f.TraceEvents {
		var ph string
		if raw, ok := ev["ph"]; !ok || json.Unmarshal(raw, &ph) != nil {
			return fmt.Errorf("trace: event %d: missing phase", i)
		}
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				return fmt.Errorf("trace: event %d: complete event without dur", i)
			}
		case "i", "M":
		default:
			return fmt.Errorf("trace: event %d: unexpected phase %q", i, ph)
		}
		if _, ok := ev["name"]; !ok {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if _, ok := ev["pid"]; !ok {
			return fmt.Errorf("trace: event %d: missing pid", i)
		}
		if ph != "M" {
			if _, ok := ev["ts"]; !ok {
				return fmt.Errorf("trace: event %d: missing ts", i)
			}
		}
	}
	return nil
}
