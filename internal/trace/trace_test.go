package trace

import (
	"strings"
	"testing"
)

func TestRingKeepsLastN(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(uint64(i), "src", "event %d", i)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len=%d, want 3", len(evs))
	}
	for i, e := range evs {
		wantCycle := uint64(i + 2)
		if e.Cycle != wantCycle {
			t.Errorf("event %d cycle=%d, want %d", i, e.Cycle, wantCycle)
		}
	}
	if r.Len() != 3 {
		t.Errorf("Len=%d", r.Len())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(10)
	r.Emit(1, "a", "x")
	r.Emit(2, "b", "y")
	if r.Len() != 2 {
		t.Fatalf("Len=%d", r.Len())
	}
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "y") {
		t.Errorf("dump: %q", out)
	}
	if strings.Index(out, "x") > strings.Index(out, "y") {
		t.Error("dump not oldest-first")
	}
}

func TestWriterTracer(t *testing.T) {
	var sb strings.Builder
	w := Writer{W: &sb}
	w.Emit(42, "bank.3", "grant %#x", 0x100)
	if !strings.Contains(sb.String(), "bank.3") || !strings.Contains(sb.String(), "0x100") {
		t.Errorf("writer output: %q", sb.String())
	}
}

func TestFiltered(t *testing.T) {
	r := NewRing(10)
	f := Filtered{Next: r, Keep: func(src string) bool { return strings.HasPrefix(src, "gline") }}
	f.Emit(1, "bank.0", "dropped")
	f.Emit(2, "gline", "kept")
	if r.Len() != 1 || r.Events()[0].Msg != "kept" {
		t.Errorf("filter failed: %v", r.Events())
	}
}

func TestNop(t *testing.T) {
	var n Nop
	n.Emit(1, "x", "y") // must not panic
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 7, Source: "l1.2", Msg: "fill"}
	s := e.String()
	if !strings.Contains(s, "7") || !strings.Contains(s, "l1.2") || !strings.Contains(s, "fill") {
		t.Errorf("event string %q", s)
	}
}

func TestRingZeroCapacity(t *testing.T) {
	r := NewRing(0)
	r.Emit(1, "a", "b")
	if r.Len() != 1 {
		t.Errorf("zero-capacity ring should clamp to 1, got %d", r.Len())
	}
}
