package workload

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// runOne builds a fresh small system and executes bench with the barrier.
func runOne(t *testing.T, bench Benchmark, kind barrier.Kind, cores int) *sim.Report {
	t.Helper()
	s, err := sim.New(config.Default(cores))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	rep, err := Run(s, bench, kind, cores, 200_000_000)
	if err != nil {
		t.Fatalf("Run(%s,%s): %v", bench.Name(), kind, err)
	}
	return rep
}

func TestScaledSuiteCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled suite is seconds-long; skipped in -short")
	}
	for _, bench := range append(ScaledSuite(), ScaledSynthetic()) {
		bench := bench
		t.Run(bench.Name(), func(t *testing.T) {
			for _, kind := range []barrier.Kind{barrier.KindGL, barrier.KindDSW} {
				rep := runOne(t, bench, kind, 16)
				if rep.Cycles == 0 {
					t.Errorf("%s/%s: zero cycles", bench.Name(), kind)
				}
				if got, want := rep.BarrierEpisodes, bench.Barriers(16); got != want {
					t.Errorf("%s/%s: %d episodes, want %d", bench.Name(), kind, got, want)
				}
				if sum := rep.Breakdown.Total(); sum == 0 {
					t.Errorf("%s/%s: empty time breakdown", bench.Name(), kind)
				}
			}
		})
	}
}

func TestGLBeatsDSWOnSynthetic(t *testing.T) {
	synth := &Synthetic{Iters: 100}
	gl := runOne(t, synth, barrier.KindGL, 16)
	dsw := runOne(t, synth, barrier.KindDSW, 16)
	csw := runOne(t, synth, barrier.KindCSW, 16)
	glLat := float64(gl.Cycles) / float64(synth.Barriers(16))
	dswLat := float64(dsw.Cycles) / float64(synth.Barriers(16))
	cswLat := float64(csw.Cycles) / float64(synth.Barriers(16))
	t.Logf("per-barrier latency: GL=%.1f DSW=%.1f CSW=%.1f", glLat, dswLat, cswLat)
	if !(glLat < dswLat && dswLat < cswLat) {
		t.Errorf("expected GL < DSW < CSW, got GL=%.1f DSW=%.1f CSW=%.1f", glLat, dswLat, cswLat)
	}
	// Paper: 13 cycles measured per barrier (4 ideal + software overhead).
	if glLat < 4 || glLat > 30 {
		t.Errorf("GL latency %.1f outside plausible range [4,30]", glLat)
	}
	if gl.Traffic.TotalMessages() != 0 {
		t.Errorf("GL synthetic generated %d NoC messages, want 0", gl.Traffic.TotalMessages())
	}
}

func TestChunkCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, threads := range []int{1, 3, 16, 32} {
			covered := 0
			prevHi := 0
			for tid := 0; tid < threads; tid++ {
				lo, hi := chunk(tid, threads, n)
				if lo != prevHi {
					t.Fatalf("chunk(%d,%d,%d): lo=%d, want %d", tid, threads, n, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("chunk(%d,%d,%d): hi<lo", tid, threads, n)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("chunk(*,%d,%d) covered %d ending %d", threads, n, covered, prevHi)
			}
		}
	}
}

func TestUnstructuredUsesLocks(t *testing.T) {
	rep := runOne(t, ScaledUnstructured(), barrier.KindGL, 8)
	if rep.Breakdown[stats.RegionLock] == 0 {
		t.Error("UNSTRUCTURED reported zero lock time")
	}
}

func TestTable2BarrierFormulas(t *testing.T) {
	cases := []struct {
		bench Benchmark
		want  uint64
	}{
		{PaperSynthetic(), 400_000},
		{PaperKernel2(), 10_000},
		{PaperKernel3(), 1_000},
		{PaperKernel6(), 1_022_000},
		{PaperOcean(), 364},
		{PaperUnstructured(), 80},
		{PaperEM3D(), 200}, // paper reports 198; see EXPERIMENTS.md
	}
	for _, tc := range cases {
		if got := tc.bench.Barriers(32); got != tc.want {
			t.Errorf("%s: Barriers=%d, want %d", tc.bench.Name(), got, tc.want)
		}
	}
}
