package workload

import (
	"fmt"

	"repro/internal/barrier"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Ocean models the SPLASH-2 OCEAN application (large-scale ocean-current
// simulation): a red/black relaxation over a square grid, with threads
// owning contiguous row bands and exchanging halo rows at the band
// boundaries. OCEAN's defining property in Table 2 is its very high barrier
// period (205,206 cycles): lots of grid work between synchronizations,
// modelled here by multiple relaxation sweeps per barrier phase.
type Ocean struct {
	// Grid is the square grid dimension including boundary (paper: 258).
	Grid int
	// Steps is the number of time steps.
	Steps int
	// PhasesPerStep is the number of barrier-terminated phases per step
	// (red sweep, black sweep, error reductions...).
	PhasesPerStep int
	// InnerSweeps is how many relaxation sweeps run inside one phase,
	// controlling the barrier period.
	InnerSweeps int
}

// PaperOcean returns the Table 2 configuration: 258x258 and 364 barriers
// (52 steps x 7 phases).
func PaperOcean() *Ocean {
	return &Ocean{Grid: 258, Steps: 52, PhasesPerStep: 7, InnerSweeps: 8}
}

// ReproOcean keeps the paper's grid and sweep depth (hence the paper's
// barrier period) over fewer time steps.
func ReproOcean() *Ocean {
	return &Ocean{Grid: 258, Steps: 6, PhasesPerStep: 7, InnerSweeps: 8}
}

// ScaledOcean returns a fast variant with the same phase structure.
func ScaledOcean() *Ocean {
	return &Ocean{Grid: 66, Steps: 4, PhasesPerStep: 7, InnerSweeps: 2}
}

// TestOcean returns the miniature test-tier variant (goldens/CI).
func TestOcean() *Ocean {
	return &Ocean{Grid: 34, Steps: 2, PhasesPerStep: 7, InnerSweeps: 1}
}

// Name returns "OCEAN".
func (w *Ocean) Name() string { return "OCEAN" }

// Barriers returns Steps*PhasesPerStep.
func (w *Ocean) Barriers(threads int) uint64 {
	return uint64(w.Steps) * uint64(w.PhasesPerStep)
}

// Programs implements Benchmark.
func (w *Ocean) Programs(s *sim.System, b barrier.Barrier, threads int) ([]cpu.Program, error) {
	if err := validateThreads(s, threads); err != nil {
		return nil, err
	}
	if w.Grid < 4 {
		return nil, errf("OCEAN: grid must be >=4, got %d", w.Grid)
	}
	s.Alloc.AlignLine()
	grid := s.Alloc.Words(w.Grid * w.Grid)
	progs := make([]cpu.Program, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		// Row bands over the interior rows [1, Grid-1).
		lo, hi := chunk(tid, threads, w.Grid-2)
		lo, hi = lo+1, hi+1
		progs[tid] = func(c *cpu.Ctx) {
			at := func(r, col int) uint64 { return wordAddr(grid, r*w.Grid+col) }
			for step := 0; step < w.Steps; step++ {
				for phase := 0; phase < w.PhasesPerStep; phase++ {
					color := phase & 1
					for sweep := 0; sweep < w.InnerSweeps; sweep++ {
						for r := lo; r < hi; r++ {
							// 5-point stencil over this row's red or black
							// points: the north/south rows carry the halo
							// traffic between bands; east/west accesses are
							// same-line hits folded into the compute cost.
							col0 := 1 + (r+color)&1
							npts := (w.Grid - 1 - col0 + 1) / 2
							c.LoadRange(at(r-1, col0), npts, 16)
							c.LoadRange(at(r+1, col0), npts, 16)
							c.Work(8 * npts)
							c.StoreRange(at(r, col0), npts, 16)
						}
					}
					b.Wait(c, tid)
				}
			}
		}
	}
	return progs, nil
}

// Input describes the configuration for Table 2.
func (w *Ocean) Input() string { return fmt.Sprintf("%dx%d ocean, %d steps", w.Grid, w.Grid, w.Steps) }
