package workload

import (
	"fmt"

	"repro/internal/barrier"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Synthetic is the paper's barrier-latency microbenchmark (Section 4.2,
// following Culler/Singh/Gupta's methodology): a loop of four consecutive
// barriers with no work between them, so total-cycles / (4*iterations) is
// the average per-barrier latency (Figure 5).
type Synthetic struct {
	// Iters is the number of loop iterations (paper: 100,000).
	Iters int
}

// PaperSynthetic returns the paper-scale microbenchmark.
func PaperSynthetic() *Synthetic { return &Synthetic{Iters: 100_000} }

// ReproSynthetic balances precision and wall-clock for the harness: runs
// are deterministic and steady-state, so 250 iterations (1000 barriers)
// measure the same per-barrier latency as the paper's 100,000.
func ReproSynthetic() *Synthetic { return &Synthetic{Iters: 250} }

// ScaledSynthetic returns a fast variant with identical structure.
func ScaledSynthetic() *Synthetic { return &Synthetic{Iters: 500} }

// TestSynthetic returns the miniature test-tier variant (goldens/CI).
func TestSynthetic() *Synthetic { return &Synthetic{Iters: 50} }

// Name returns "SYNTH".
func (w *Synthetic) Name() string { return "SYNTH" }

// Barriers returns 4 barriers per iteration.
func (w *Synthetic) Barriers(threads int) uint64 { return 4 * uint64(w.Iters) }

// Programs implements Benchmark.
func (w *Synthetic) Programs(s *sim.System, b barrier.Barrier, threads int) ([]cpu.Program, error) {
	if err := validateThreads(s, threads); err != nil {
		return nil, err
	}
	progs := make([]cpu.Program, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Ctx) {
			for it := 0; it < w.Iters; it++ {
				b.Wait(c, tid)
				b.Wait(c, tid)
				b.Wait(c, tid)
				b.Wait(c, tid)
			}
		}
	}
	return progs, nil
}

// AvgBarrierLatency derives Figure 5's metric from a finished run.
func (w *Synthetic) AvgBarrierLatency(rep *sim.Report) float64 {
	return float64(rep.Cycles) / float64(w.Barriers(0))
}

// Input describes the configuration for Table 2.
func (w *Synthetic) Input() string { return fmt.Sprintf("%d iterations", w.Iters) }
