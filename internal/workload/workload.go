// Package workload implements the paper's seven benchmarks at the
// operation level: the synthetic barrier-latency loop, Livermore Kernels 2,
// 3 and 6, and the three scientific applications OCEAN, UNSTRUCTURED and
// EM3D (Table 2).
//
// Each benchmark reproduces the loop and data-access structure that
// determines its barrier count, barrier period and traffic mix — the three
// properties the paper's evaluation depends on. Floating-point values are
// not simulated (latency-only loads/stores); every benchmark's barrier
// count is exact and checked by tests against Table 2's formulas.
//
// Benchmarks come in two scales: Paper*() constructors use the paper's
// input sizes (Table 2); Scaled*() constructors shrink iteration counts so
// the whole suite runs in seconds, preserving per-iteration structure.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/barrier"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Benchmark is one runnable workload.
type Benchmark interface {
	// Name is the paper's label (e.g. "KERN2", "OCEAN").
	Name() string
	// Input describes the input configuration (Table 2's "Input Size").
	Input() string
	// Barriers returns the exact number of barrier episodes the workload
	// executes with the given thread count (Table 2's "#Barriers").
	Barriers(threads int) uint64
	// Programs allocates the benchmark's data on s and returns one
	// program per thread; thread tid runs on core tid and synchronizes
	// through b.
	Programs(s *sim.System, b barrier.Barrier, threads int) ([]cpu.Program, error)
}

// chunk splits n items over threads; it returns the half-open range of
// thread tid. Remainders spread over the first threads.
func chunk(tid, threads, n int) (lo, hi int) {
	base := n / threads
	rem := n % threads
	lo = tid*base + min(tid, rem)
	size := base
	if tid < rem {
		size++
	}
	return lo, lo + size
}

// rng returns the deterministic generator used for synthetic graph
// structure; runs are bit-reproducible. Every benchmark draws from a
// generator seeded here — never from the global math/rand source (the
// glvet detrand analyzer enforces this).
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// seedFor combines a benchmark's fixed base seed with the system's
// configured WorkloadSeed. The default WorkloadSeed of zero leaves the base
// seed unchanged, keeping the determinism goldens bit-identical; a non-zero
// value selects a different deterministic input instance.
func seedFor(s *sim.System, base int64) int64 {
	return base + s.Cfg.WorkloadSeed
}

// validateThreads checks the thread count against the system.
func validateThreads(s *sim.System, threads int) error {
	if threads <= 0 || threads > s.Cfg.Cores {
		return fmt.Errorf("workload: %d threads on a %d-core system", threads, s.Cfg.Cores)
	}
	return nil
}

// Run builds the benchmark on a fresh system and executes it to
// completion: the standard harness path used by cmd/ and the benches.
func Run(s *sim.System, bench Benchmark, kind barrier.Kind, threads int, maxCycles uint64) (*sim.Report, error) {
	b, err := s.NewBarrier(kind, threads)
	if err != nil {
		return nil, err
	}
	return RunWith(s, bench, b, threads, maxCycles)
}

// RunWith is Run with a caller-constructed barrier (used by ablations that
// tweak barrier internals before running).
func RunWith(s *sim.System, bench Benchmark, b barrier.Barrier, threads int, maxCycles uint64) (*sim.Report, error) {
	progs, err := bench.Programs(s, b, threads)
	if err != nil {
		return nil, err
	}
	if err := s.Launch(progs); err != nil {
		return nil, err
	}
	rep, err := s.Run(maxCycles)
	if err != nil {
		s.Close()
		return rep, fmt.Errorf("workload %s/%s: %w", bench.Name(), b.Name(), err)
	}
	if want := bench.Barriers(threads); rep.BarrierEpisodes != want {
		return rep, fmt.Errorf("workload %s/%s: executed %d barriers, expected %d", bench.Name(), b.Name(), rep.BarrierEpisodes, want)
	}
	return rep, nil
}

// PaperSuite returns the six Figure 6/7 benchmarks at the paper's input
// scale (Table 2). These are expensive; the scaled suite is the default.
func PaperSuite() []Benchmark {
	return []Benchmark{
		PaperKernel2(), PaperKernel3(), PaperKernel6(),
		PaperUnstructured(), PaperOcean(), PaperEM3D(),
	}
}

// ReproSuite returns the benchmarks with the paper's data sizes but fewer
// outer iterations: per-barrier structure — and hence every normalized
// Figure 6/7 ratio — matches the paper-scale runs, at a fraction of the
// wall-clock. This is the tier cmd/reproduce and the benches use.
func ReproSuite() []Benchmark {
	return []Benchmark{
		ReproKernel2(), ReproKernel3(), ReproKernel6(),
		ReproUnstructured(), ReproOcean(), ReproEM3D(),
	}
}

// ScaledSuite returns the same benchmarks with reduced iteration counts
// (identical per-iteration structure), for tests and quick reproduction.
func ScaledSuite() []Benchmark {
	return []Benchmark{
		ScaledKernel2(), ScaledKernel3(), ScaledKernel6(),
		ScaledUnstructured(), ScaledOcean(), ScaledEM3D(),
	}
}

// TestSuite returns the benchmarks at the miniature test tier: the same
// per-iteration structure at the smallest inputs that still exercise every
// phase. This is the tier the determinism goldens and the parallel-sweep
// equivalence tests pin.
func TestSuite() []Benchmark {
	return []Benchmark{
		TestKernel2(), TestKernel3(), TestKernel6(),
		TestUnstructured(), TestOcean(), TestEM3D(),
	}
}

// Tier selects an input scale for the suite.
type Tier string

// The four input-scale tiers.
const (
	// TierTest: miniature inputs for goldens and CI gates (sub-second).
	TierTest Tier = "test"
	// TierScaled: small inputs, seconds per run (tests).
	TierScaled Tier = "scaled"
	// TierRepro: the paper's data sizes, reduced iterations (harness
	// default).
	TierRepro Tier = "repro"
	// TierPaper: exact Table 2 inputs (slow).
	TierPaper Tier = "paper"
)

// ParseTier validates a tier name.
func ParseTier(s string) (Tier, error) {
	switch Tier(s) {
	case TierTest, TierScaled, TierRepro, TierPaper:
		return Tier(s), nil
	}
	return "", fmt.Errorf("workload: unknown tier %q (want test, scaled, repro or paper)", s)
}

// Extras returns the beyond-the-paper workloads (not part of the paper's
// evaluation suite): the two-context pipeline.
func Extras() []Benchmark { return []Benchmark{ScaledPipeline()} }

// Suite returns the Figure 6/7 benchmarks of the given tier.
func Suite(tier Tier) []Benchmark {
	switch tier {
	case TierPaper:
		return PaperSuite()
	case TierRepro:
		return ReproSuite()
	case TierTest:
		return TestSuite()
	default:
		return ScaledSuite()
	}
}

// SyntheticFor returns the Figure 5 microbenchmark of the given tier.
func SyntheticFor(tier Tier) *Synthetic {
	switch tier {
	case TierPaper:
		return PaperSynthetic()
	case TierRepro:
		return ReproSynthetic()
	case TierTest:
		return TestSynthetic()
	default:
		return ScaledSynthetic()
	}
}

// ByName returns the benchmark with the given name from the chosen tier.
// Extras (e.g. "PIPE") resolve at every tier.
func ByName(name string, tier Tier) (Benchmark, error) {
	all := append(Suite(tier), SyntheticFor(tier))
	all = append(all, Extras()...)
	for _, b := range all {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names lists the paper benchmarks' names ("PIPE" is an extra).
func Names() []string {
	return []string{"SYNTH", "KERN2", "KERN3", "KERN6", "UNSTR", "OCEAN", "EM3D"}
}
