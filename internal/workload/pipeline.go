package workload

import (
	"repro/internal/barrier"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Pipeline is a beyond-the-paper workload exercising the future-work
// multiplexing features: the cores split into two groups — producers and
// consumers — each synchronizing on its own G-line barrier context, with a
// shared ring of buffers between them (flag-synchronized hand-off). It
// demonstrates several barrier executions coexisting in hardware.
//
// Pipeline only runs with the GL barrier (it needs two hardware contexts);
// Programs returns an error otherwise.
type Pipeline struct {
	// Stages is the number of buffer hand-offs.
	Stages int
	// BufWords is the size of each transferred buffer.
	BufWords int
}

// ScaledPipeline returns a fast configuration.
func ScaledPipeline() *Pipeline { return &Pipeline{Stages: 50, BufWords: 64} }

// Name returns "PIPE".
func (w *Pipeline) Name() string { return "PIPE" }

// Input describes the configuration.
func (w *Pipeline) Input() string {
	return sprintfInput("%d stages, %d-word buffers", w.Stages, w.BufWords)
}

// Barriers returns the per-group episode count: each group barriers once
// per stage on its own context.
func (w *Pipeline) Barriers(threads int) uint64 { return 2 * uint64(w.Stages) }

// Programs implements Benchmark. It requires an even thread count >= 4 and
// a system whose G-line network has at least two contexts; the producers
// run on context 0, consumers on context 1.
func (w *Pipeline) Programs(s *sim.System, b barrier.Barrier, threads int) ([]cpu.Program, error) {
	if err := validateThreads(s, threads); err != nil {
		return nil, err
	}
	if threads < 4 || threads%2 != 0 {
		return nil, errf("PIPE: need an even thread count >= 4, got %d", threads)
	}
	if _, ok := b.(*barrier.GLine); !ok {
		return nil, errf("PIPE: requires the GL barrier (two hardware contexts), got %s", b.Name())
	}
	if s.GL == nil {
		return nil, errf("PIPE: system has no G-line network")
	}
	half := threads / 2
	producers := make([]int, 0, half)
	consumers := make([]int, 0, half)
	for i := 0; i < threads; i++ {
		if i < half {
			producers = append(producers, i)
		} else {
			consumers = append(consumers, i)
		}
	}
	if err := s.GL.SetParticipants(0, producers); err != nil {
		return nil, err
	}
	if err := s.GL.SetParticipants(1, consumers); err != nil {
		return nil, err
	}

	s.Alloc.AlignLine()
	// Double-buffered hand-off: each producer writes its slice of buf[p],
	// the stage flag releases the consumers, who read it while producers
	// fill buf[1-p].
	bufs := [2]uint64{s.Alloc.Words(w.BufWords), s.Alloc.Words(w.BufWords)}
	s.Alloc.AlignLine()
	flags := [2]uint64{s.Alloc.Line(), s.Alloc.Line()} // producer -> consumer
	acks := [2]uint64{s.Alloc.Line(), s.Alloc.Line()}  // consumer -> producer

	progs := make([]cpu.Program, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		if tid < half {
			lo, hi := chunk(tid, half, w.BufWords)
			progs[tid] = func(c *cpu.Ctx) {
				for st := 0; st < w.Stages; st++ {
					p := st & 1
					if st >= 2 {
						// Backpressure: buffer p may only be refilled
						// after the consumers drained it (stage st-2).
						c.SpinUntilEq(acks[p], uint64(st-1))
					}
					c.StoreRange(wordAddr(bufs[p], lo), hi-lo, 8)
					c.Work(4 * (hi - lo))
					c.GLBarrier(0) // producers agree the buffer is full
					if tid == 0 {
						c.StoreV(flags[p], uint64(st+1)) // publish stage
					}
				}
			}
		} else {
			ctid := tid - half
			lo, hi := chunk(ctid, half, w.BufWords)
			progs[tid] = func(c *cpu.Ctx) {
				for st := 0; st < w.Stages; st++ {
					p := st & 1
					c.SpinUntilEq(flags[p], uint64(st+1)) // wait for stage
					c.LoadRange(wordAddr(bufs[p], lo), hi-lo, 8)
					c.Work(6 * (hi - lo))
					c.GLBarrier(1) // consumers agree the buffer is drained
					if ctid == 0 {
						c.StoreV(acks[p], uint64(st+1)) // release the buffer
					}
				}
			}
		}
	}
	return progs, nil
}

func sprintfInput(format string, args ...any) string { return errf(format, args...).Error() }
