package workload

import (
	"fmt"
	"sort"

	"repro/internal/barrier"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Unstructured models the UNSTRUCTURED computational-fluid-dynamics
// application (Mukherjee et al.): an irregular mesh traversed edge-by-edge,
// where each edge update reads both endpoint nodes and accumulates into one
// of them under a per-node lock. It is the only benchmark in the suite with
// lock synchronization, and Table 2 gives it few barriers (80) with a long
// period (67,361 cycles).
type Unstructured struct {
	// Nodes is the mesh node count (paper input Mesh.2K: 2048).
	Nodes int
	// EdgeFactor is edges per node (irregular meshes: ~5).
	EdgeFactor int
	// Phases is the number of barrier-terminated computation phases
	// (Table 2: 80 for one time step).
	Phases int
	// Sweeps is how many passes over the edge list one phase makes.
	Sweeps int
	// Locks is the size of the node-lock array (default: one per node, as
	// in the SPLASH-style per-node locking of irregular mesh codes).
	Locks int
	// Seed drives the deterministic random mesh.
	Seed int64
}

// PaperUnstructured returns the Table 2 configuration.
func PaperUnstructured() *Unstructured {
	return &Unstructured{Nodes: 2048, EdgeFactor: 5, Phases: 80, Sweeps: 2, Locks: 2048, Seed: 7}
}

// ReproUnstructured keeps the paper's mesh with fewer phases.
func ReproUnstructured() *Unstructured {
	return &Unstructured{Nodes: 2048, EdgeFactor: 5, Phases: 20, Sweeps: 2, Locks: 2048, Seed: 7}
}

// ScaledUnstructured returns a fast variant.
func ScaledUnstructured() *Unstructured {
	return &Unstructured{Nodes: 512, EdgeFactor: 5, Phases: 10, Sweeps: 1, Locks: 512, Seed: 7}
}

// TestUnstructured returns the miniature test-tier variant (goldens/CI).
func TestUnstructured() *Unstructured {
	return &Unstructured{Nodes: 256, EdgeFactor: 5, Phases: 4, Sweeps: 1, Locks: 256, Seed: 7}
}

// Name returns "UNSTR".
func (w *Unstructured) Name() string { return "UNSTR" }

// Barriers returns one per phase.
func (w *Unstructured) Barriers(threads int) uint64 { return uint64(w.Phases) }

// Programs implements Benchmark.
func (w *Unstructured) Programs(s *sim.System, b barrier.Barrier, threads int) ([]cpu.Program, error) {
	if err := validateThreads(s, threads); err != nil {
		return nil, err
	}
	if w.Nodes < 2 || w.EdgeFactor < 1 || w.Locks < 1 {
		return nil, errf("UNSTR: invalid mesh parameters %+v", *w)
	}
	nEdges := w.Nodes * w.EdgeFactor
	r := rng(seedFor(s, w.Seed))
	type edge struct{ a, b int }
	edges := make([]edge, nEdges)
	for i := range edges {
		a := r.Intn(w.Nodes)
		bn := r.Intn(w.Nodes)
		if bn == a {
			bn = (a + 1) % w.Nodes
		}
		edges[i] = edge{a: a, b: bn}
	}
	// Partition edges by their accumulation endpoint, as optimized
	// irregular-mesh codes do: each thread owns a contiguous node range
	// and the edges that accumulate into it, so lock conflicts occur only
	// on genuinely shared nodes, not on random collisions.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	s.Alloc.AlignLine()
	nodeVals := s.Alloc.Words(w.Nodes)
	locks := make([]*barrier.Lock, w.Locks)
	for i := range locks {
		locks[i] = barrier.NewLock(s.Alloc)
	}
	progs := make([]cpu.Program, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		lo, hi := chunk(tid, threads, nEdges)
		progs[tid] = func(c *cpu.Ctx) {
			for phase := 0; phase < w.Phases; phase++ {
				for sweep := 0; sweep < w.Sweeps; sweep++ {
					for e := lo; e < hi; e++ {
						ed := edges[e]
						c.Load(wordAddr(nodeVals, ed.a))
						c.Load(wordAddr(nodeVals, ed.b))
						c.Work(6) // force computation on the edge
						lk := locks[ed.a%w.Locks]
						lk.Acquire(c)
						c.Load(wordAddr(nodeVals, ed.a))
						c.Work(2)
						c.Store(wordAddr(nodeVals, ed.a))
						lk.Release(c)
					}
				}
				b.Wait(c, tid)
			}
		}
	}
	return progs, nil
}

// Input describes the configuration for Table 2.
func (w *Unstructured) Input() string {
	return fmt.Sprintf("%d nodes, %d edges, %d phases", w.Nodes, w.Nodes*w.EdgeFactor, w.Phases)
}
