package workload

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestEM3DGraphProperties checks the deterministic graph generator: the
// remote fraction approximates the configured percentage and regeneration
// is bit-identical.
func TestEM3DGraphProperties(t *testing.T) {
	w := ScaledEM3D()
	build := func() [][]int {
		s, err := sim.New(config.Default(16))
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.NewBarrier(barrier.KindGL, 16)
		if err != nil {
			t.Fatal(err)
		}
		// Programs() builds the neighbor table as a side effect; rebuild
		// it here the same way to inspect: instead, run twice and compare
		// runs for determinism below.
		if _, err := w.Programs(s, b, 16); err != nil {
			t.Fatal(err)
		}
		return nil
	}
	build() // must not panic
	// Determinism: two full runs give identical cycle counts.
	run := func() uint64 {
		s, err := sim.New(config.Default(16))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(s, w, barrier.KindGL, 16, 1_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("EM3D non-deterministic: %d vs %d cycles", a, b)
	}
}

// TestKernelsShrinkWithThreads: more threads means less work per thread,
// so (with the cheap GL barrier) the kernels must speed up.
func TestKernelsShrinkWithThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run scaling check")
	}
	// KERN3's work is embarrassingly parallel; KERN2's halving passes run
	// out of parallelism below the thread count, so only KERN3 must scale.
	for _, bench := range []Benchmark{ScaledKernel3()} {
		run := func(n int) uint64 {
			s, err := sim.New(config.Default(16))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(s, bench, barrier.KindGL, n, 1_000_000_000)
			if err != nil {
				t.Fatal(err)
			}
			return rep.Cycles
		}
		c4, c16 := run(4), run(16)
		if c16 >= c4 {
			t.Errorf("%s: 16 threads (%d cycles) not faster than 4 (%d)", bench.Name(), c16, c4)
		}
	}
}

// TestOceanHaloTraffic: the stencil's only coherence traffic after warmup
// comes from halo rows, so traffic must grow with thread count (more band
// boundaries), not with grid size alone.
func TestOceanHaloTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	run := func(threads int) uint64 {
		s, err := sim.New(config.Default(16))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(s, ScaledOcean(), barrier.KindGL, threads, 1_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Traffic.TotalMessages()
	}
	if t2, t16 := run(2), run(16); t16 <= t2 {
		t.Errorf("halo traffic with 16 bands (%d msgs) not above 2 bands (%d)", t16, t2)
	}
}

// TestSyntheticLatencyMetric: AvgBarrierLatency divides correctly.
func TestSyntheticLatencyMetric(t *testing.T) {
	w := &Synthetic{Iters: 10}
	rep := &sim.Report{Cycles: 520}
	if got := w.AvgBarrierLatency(rep); got != 13 {
		t.Errorf("AvgBarrierLatency = %f, want 13", got)
	}
}

// TestWorkloadValidation: invalid parameters are rejected cleanly.
func TestWorkloadValidation(t *testing.T) {
	s, err := sim.New(config.Default(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.NewBarrier(barrier.KindDSW, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Benchmark{
		&Kernel2{N: 100, Iters: 1}, // not a power of two
		&Kernel6{N: 2, Iters: 1},   // too short
		&Ocean{Grid: 2, Steps: 1, PhasesPerStep: 1, InnerSweeps: 1},
		&Unstructured{Nodes: 1, EdgeFactor: 1, Phases: 1, Sweeps: 1, Locks: 1},
		&EM3D{Nodes: 4, Degree: 1, Steps: 1, PhasesPerStep: 3}, // odd phases
	}
	for i, bench := range cases {
		if _, err := bench.Programs(s, b, 4); err == nil {
			t.Errorf("case %d (%s): invalid parameters accepted", i, bench.Name())
		}
	}
	// Thread count beyond cores.
	if _, err := ScaledKernel3().Programs(s, b, 9); err == nil {
		t.Error("9 threads on 4 cores accepted")
	}
}

// TestBarrierRegionDominatesSynthetic: in the 4-barrier loop, essentially
// all time is barrier time under any implementation.
func TestBarrierRegionDominatesSynthetic(t *testing.T) {
	s, err := sim.New(config.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, &Synthetic{Iters: 50}, barrier.KindDSW, 8, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Breakdown.Fractions()
	if f[stats.RegionBarrier] < 0.95 {
		t.Errorf("synthetic barrier fraction %.2f, want >0.95", f[stats.RegionBarrier])
	}
}
