package workload

import (
	"fmt"

	"repro/internal/barrier"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// EM3D models the Split-C EM3D benchmark: electromagnetic-wave propagation
// on a bipartite graph of E and H nodes. Each phase updates a slice of one
// half from its neighbors in the other half; a configurable fraction of
// neighbor references is "remote" (into another thread's partition), which
// is what generates coherence traffic. Table 2: 38,400 nodes, degree 2,
// 15% remote, 25 time steps, 198 barriers, and the shortest application
// barrier period (3,673 cycles) — which is why EM3D is the application
// that benefits most from the hardware barrier.
type EM3D struct {
	// Nodes is the total node count, split evenly into E and H halves
	// (paper: 38,400).
	Nodes int
	// Degree is neighbors per node (paper: 2).
	Degree int
	// PctRemote is the percentage of neighbor references crossing thread
	// partitions (paper: 15).
	PctRemote int
	// Steps is the number of time steps (paper: 25).
	Steps int
	// PhasesPerStep is the number of barrier-terminated sub-phases per
	// step; each phase updates 1/(PhasesPerStep/2) of one half. The paper
	// reports 198 barriers over 25 steps (~8/step).
	PhasesPerStep int
	// Seed drives the deterministic random graph.
	Seed int64
}

// PaperEM3D returns the Table 2 configuration (200 barriers; the paper
// reports 198 — the difference is two init-time synchronizations we fold
// into the steady-state phases).
func PaperEM3D() *EM3D {
	return &EM3D{Nodes: 38_400, Degree: 2, PctRemote: 15, Steps: 25, PhasesPerStep: 8, Seed: 11}
}

// ReproEM3D keeps the paper's graph with fewer time steps.
func ReproEM3D() *EM3D {
	return &EM3D{Nodes: 38_400, Degree: 2, PctRemote: 15, Steps: 6, PhasesPerStep: 8, Seed: 11}
}

// ScaledEM3D returns a fast variant.
func ScaledEM3D() *EM3D {
	return &EM3D{Nodes: 4800, Degree: 2, PctRemote: 15, Steps: 5, PhasesPerStep: 8, Seed: 11}
}

// TestEM3D returns the miniature test-tier variant (goldens/CI).
func TestEM3D() *EM3D {
	return &EM3D{Nodes: 1600, Degree: 2, PctRemote: 15, Steps: 2, PhasesPerStep: 8, Seed: 11}
}

// Name returns "EM3D".
func (w *EM3D) Name() string { return "EM3D" }

// Barriers returns Steps*PhasesPerStep.
func (w *EM3D) Barriers(threads int) uint64 {
	return uint64(w.Steps) * uint64(w.PhasesPerStep)
}

// Programs implements Benchmark.
func (w *EM3D) Programs(s *sim.System, b barrier.Barrier, threads int) ([]cpu.Program, error) {
	if err := validateThreads(s, threads); err != nil {
		return nil, err
	}
	if w.Nodes < 2*threads || w.Degree < 1 || w.PhasesPerStep < 2 || w.PhasesPerStep%2 != 0 {
		return nil, errf("EM3D: invalid parameters %+v", *w)
	}
	half := w.Nodes / 2
	r := rng(seedFor(s, w.Seed))

	// Partition each half into per-thread blocks; neighbors are local to
	// the corresponding block in the other half except for PctRemote%.
	neighbor := make([][]int, w.Nodes) // node -> neighbor indices in other half
	ownerOf := func(pos int) int {
		for t := 0; t < threads; t++ {
			lo, hi := chunk(t, threads, half)
			if pos >= lo && pos < hi {
				return t
			}
		}
		return threads - 1
	}
	for n := 0; n < w.Nodes; n++ {
		pos := n
		if n >= half {
			pos = n - half
		}
		lo, hi := chunk(ownerOf(pos), threads, half)
		nb := make([]int, w.Degree)
		for d := range nb {
			if r.Intn(100) < w.PctRemote {
				nb[d] = r.Intn(half) // anywhere in the other half
			} else {
				nb[d] = lo + r.Intn(hi-lo) // within the owner's block
			}
		}
		neighbor[n] = nb
	}

	s.Alloc.AlignLine()
	eVals := s.Alloc.Words(half)
	hVals := s.Alloc.Words(half)

	progs := make([]cpu.Program, threads)
	subPhases := w.PhasesPerStep / 2
	for tid := 0; tid < threads; tid++ {
		tid := tid
		lo, hi := chunk(tid, threads, half)
		progs[tid] = func(c *cpu.Ctx) {
			for step := 0; step < w.Steps; step++ {
				// E-update sub-phases, then H-update sub-phases.
				for halfSel := 0; halfSel < 2; halfSel++ {
					own, other := eVals, hVals
					base := 0
					if halfSel == 1 {
						own, other = hVals, eVals
						base = half
					}
					for sp := 0; sp < subPhases; sp++ {
						slo, shi := chunk(sp, subPhases, hi-lo)
						for i := lo + slo; i < lo+shi; i++ {
							for _, nb := range neighbor[base+i] {
								c.Load(wordAddr(other, nb))
							}
							c.Work(2 * w.Degree)
							c.Store(wordAddr(own, i))
						}
						b.Wait(c, tid)
					}
				}
			}
		}
	}
	return progs, nil
}

// Input describes the configuration for Table 2.
func (w *EM3D) Input() string {
	return fmt.Sprintf("%d nodes, degree %d, %d%% remote, %d time steps", w.Nodes, w.Degree, w.PctRemote, w.Steps)
}
