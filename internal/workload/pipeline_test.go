package workload

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/sim"
)

func TestPipelineTwoContexts(t *testing.T) {
	cfg := config.Default(16)
	cfg.GLContexts = 2
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := ScaledPipeline()
	rep, err := Run(s, w, barrier.KindGL, 16, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BarrierEpisodes != w.Barriers(16) {
		t.Errorf("episodes=%d, want %d", rep.BarrierEpisodes, w.Barriers(16))
	}
	if rep.Traffic.TotalMessages() == 0 {
		t.Error("the buffer hand-off should generate coherence traffic")
	}
}

func TestPipelineRequiresTwoContexts(t *testing.T) {
	s, err := sim.New(config.Default(16)) // default: 1 context
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.NewBarrier(barrier.KindGL, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScaledPipeline().Programs(s, b, 16); err == nil {
		t.Error("pipeline accepted a single-context network")
	}
}

func TestPipelineRejectsSoftwareBarrier(t *testing.T) {
	cfg := config.Default(16)
	cfg.GLContexts = 2
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.NewBarrier(barrier.KindDSW, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScaledPipeline().Programs(s, b, 16); err == nil {
		t.Error("pipeline accepted a software barrier")
	}
	if _, err := ScaledPipeline().Programs(s, nil, 5); err == nil {
		t.Error("pipeline accepted an odd thread count")
	}
}
