package workload

import (
	"fmt"

	"repro/internal/barrier"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Kernel2 is Livermore Loop 2, an excerpt from an incomplete Cholesky
// conjugate gradient (ICCG). Each iteration reduces the active vector by
// halving passes (log2(N) of them), with a barrier after every pass:
// Table 2 reports 10 barriers per iteration for N=1024.
type Kernel2 struct {
	// N is the vector length (power of two; paper: 1024).
	N int
	// Iters is the outer iteration count (paper: 1000).
	Iters int
}

// PaperKernel2 returns Table 2's configuration.
func PaperKernel2() *Kernel2 { return &Kernel2{N: 1024, Iters: 1000} }

// ReproKernel2 keeps the paper's vector length with fewer iterations: the
// per-barrier structure (and hence the Figure 6/7 ratios) is identical.
func ReproKernel2() *Kernel2 { return &Kernel2{N: 1024, Iters: 50} }

// ScaledKernel2 returns a fast variant with the same per-pass structure.
func ScaledKernel2() *Kernel2 { return &Kernel2{N: 256, Iters: 10} }

// TestKernel2 returns the miniature test-tier variant (goldens/CI).
func TestKernel2() *Kernel2 { return &Kernel2{N: 128, Iters: 3} }

// Name returns "KERN2".
func (w *Kernel2) Name() string { return "KERN2" }

// passes returns log2(N): the halving passes per iteration.
func (w *Kernel2) passes() int {
	p := 0
	for n := w.N; n > 1; n >>= 1 {
		p++
	}
	return p
}

// Barriers returns Iters * log2(N).
func (w *Kernel2) Barriers(threads int) uint64 {
	return uint64(w.Iters) * uint64(w.passes())
}

// Programs implements Benchmark.
func (w *Kernel2) Programs(s *sim.System, b barrier.Barrier, threads int) ([]cpu.Program, error) {
	if err := validateThreads(s, threads); err != nil {
		return nil, err
	}
	if w.N <= 0 || w.N&(w.N-1) != 0 {
		return nil, errf("KERN2: N must be a power of two, got %d", w.N)
	}
	s.Alloc.AlignLine()
	x := s.Alloc.Words(2 * w.N)
	v := s.Alloc.Words(2 * w.N)
	progs := make([]cpu.Program, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Ctx) {
			for it := 0; it < w.Iters; it++ {
				ipnt, ipntp := 0, 0
				for m := w.N; m > 1; m >>= 1 {
					ipntp += m
					out := m / 2
					lo, hi := chunk(tid, threads, out)
					if hi > lo {
						// x[ipntp+i] = x[k]-v[k]*x[k-1]-v[k+1]*x[k+1]:
						// streaming reads of the x and v pair regions,
						// then the compacted writes.
						n := hi - lo
						c.LoadRange(wordAddr(x, ipnt+2*lo), 2*n, 8)
						c.LoadRange(wordAddr(v, ipnt+2*lo), 2*n, 8)
						c.Work(8 * n)
						c.StoreRange(wordAddr(x, ipntp+lo), n, 8)
					}
					ipnt = ipntp
					b.Wait(c, tid)
				}
			}
		}
	}
	return progs, nil
}

// Kernel3 is Livermore Loop 3, a simple inner product. Each thread reduces
// its chunk into a private partial on its own cache line; one barrier per
// iteration separates iterations (Table 2). The partials are combined once
// after the timed loop, so — like the paper's version, whose network
// traffic is 99.8% barrier-induced — the kernel's only steady-state
// communication is the barrier itself.
type Kernel3 struct {
	// N is the vector length (paper: 1024).
	N int
	// Iters is the iteration count (paper: 1000).
	Iters int
}

// PaperKernel3 returns Table 2's configuration.
func PaperKernel3() *Kernel3 { return &Kernel3{N: 1024, Iters: 1000} }

// ReproKernel3 keeps the paper's vector length with fewer iterations.
func ReproKernel3() *Kernel3 { return &Kernel3{N: 1024, Iters: 100} }

// ScaledKernel3 returns a fast variant.
func ScaledKernel3() *Kernel3 { return &Kernel3{N: 256, Iters: 20} }

// TestKernel3 returns the miniature test-tier variant (goldens/CI).
func TestKernel3() *Kernel3 { return &Kernel3{N: 128, Iters: 6} }

// Name returns "KERN3".
func (w *Kernel3) Name() string { return "KERN3" }

// Barriers returns one barrier per iteration.
func (w *Kernel3) Barriers(threads int) uint64 { return uint64(w.Iters) }

// Programs implements Benchmark.
func (w *Kernel3) Programs(s *sim.System, b barrier.Barrier, threads int) ([]cpu.Program, error) {
	if err := validateThreads(s, threads); err != nil {
		return nil, err
	}
	s.Alloc.AlignLine()
	z := s.Alloc.Words(w.N)
	x := s.Alloc.Words(w.N)
	partials := allocSpread(s.Alloc, threads)
	progs := make([]cpu.Program, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		lo, hi := chunk(tid, threads, w.N)
		progs[tid] = func(c *cpu.Ctx) {
			for it := 0; it < w.Iters; it++ {
				c.LoadRange(wordAddr(z, lo), hi-lo, 8)
				c.LoadRange(wordAddr(x, lo), hi-lo, 8)
				c.Work(2 * (hi - lo)) // multiply-accumulate chain
				c.Store(partials[tid])
				b.Wait(c, tid)
			}
			if tid == 0 {
				// Final cross-thread combine, outside the timed loop.
				for t := 0; t < threads; t++ {
					c.Load(partials[t])
				}
				c.Work(threads)
			}
		}
	}
	return progs, nil
}

// Kernel6 is Livermore Loop 6, a general linear recurrence: element i
// depends on all elements before it, so each recurrence step parallelizes
// the inner reduction and then synchronizes. Table 2 reports N-2 barriers
// per iteration (1,022,000 total for N=1024, 1000 iterations).
type Kernel6 struct {
	// N is the recurrence length (paper: 1024).
	N int
	// Iters is the iteration count (paper: 1000).
	Iters int
}

// PaperKernel6 returns Table 2's configuration.
func PaperKernel6() *Kernel6 { return &Kernel6{N: 1024, Iters: 1000} }

// ReproKernel6 keeps the paper's recurrence length with fewer iterations.
func ReproKernel6() *Kernel6 { return &Kernel6{N: 1024, Iters: 2} }

// ScaledKernel6 returns a fast variant.
func ScaledKernel6() *Kernel6 { return &Kernel6{N: 64, Iters: 5} }

// TestKernel6 returns the miniature test-tier variant (goldens/CI).
func TestKernel6() *Kernel6 { return &Kernel6{N: 48, Iters: 2} }

// Name returns "KERN6".
func (w *Kernel6) Name() string { return "KERN6" }

// Barriers returns Iters*(N-2).
func (w *Kernel6) Barriers(threads int) uint64 {
	return uint64(w.Iters) * uint64(w.N-2)
}

// Programs implements Benchmark.
func (w *Kernel6) Programs(s *sim.System, b barrier.Barrier, threads int) ([]cpu.Program, error) {
	if err := validateThreads(s, threads); err != nil {
		return nil, err
	}
	if w.N < 3 {
		return nil, errf("KERN6: N must be >=3, got %d", w.N)
	}
	s.Alloc.AlignLine()
	wv := s.Alloc.Words(w.N)       // w vector
	bm := s.Alloc.Words(w.N * w.N) // b matrix, row-major
	accum := s.Alloc.Line()        // fetch&op reduction target
	progs := make([]cpu.Program, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Ctx) {
			for it := 0; it < w.Iters; it++ {
				for i := 2; i < w.N; i++ {
					// w[i] += sum_{k<i} b[k][i] * w[(i-k)-1]: the inner
					// sum is split over threads; partials combine with a
					// fetch&op on a shared accumulator.
					lo, hi := chunk(tid, threads, i)
					if hi > lo {
						// b[k][i] walks a column (stride N words); the
						// w reads are a contiguous window.
						c.LoadRange(wordAddr(bm, lo*w.N+i), hi-lo, uint64(w.N)*8)
						c.LoadRange(wordAddr(wv, i-hi), hi-lo, 8)
						c.Work(2 * (hi - lo))
						c.FetchAdd(accum, 1)
					}
					b.Wait(c, tid)
					if tid == 0 {
						// The recurrence owner publishes w[i].
						c.Load(accum)
						c.Work(2)
						c.Store(wordAddr(wv, i))
					}
				}
			}
		}
	}
	return progs, nil
}

// wordAddr returns the address of the i-th word of an array base.
func wordAddr(base uint64, i int) uint64 { return base + uint64(i)*mem.WordSize }

// allocSpread returns n addresses on n distinct cache lines (used for
// per-thread partials, avoiding false sharing).
func allocSpread(a *mem.Allocator, n int) []uint64 {
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = a.Line()
	}
	return addrs
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// Input describes the configuration for Table 2.
func (w *Kernel2) Input() string { return fmt.Sprintf("%d elements, %d iterations", w.N, w.Iters) }

// Input describes the configuration for Table 2.
func (w *Kernel3) Input() string { return fmt.Sprintf("%d elements, %d iterations", w.N, w.Iters) }

// Input describes the configuration for Table 2.
func (w *Kernel6) Input() string { return fmt.Sprintf("%d elements, %d iterations", w.N, w.Iters) }
