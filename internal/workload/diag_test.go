package workload

import (
	"testing"

	"repro/internal/barrier"
)

// TestBarrierLatencyScaling checks the Figure 5 shape: GL stays flat near
// the ideal latency while DSW grows and CSW grows much faster, with
// GL < DSW < CSW at every core count.
func TestBarrierLatencyScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point scaling sweep")
	}
	synth := &Synthetic{Iters: 50}
	lat := map[barrier.Kind][]float64{}
	sizes := []int{2, 4, 8, 16, 32}
	for _, kind := range []barrier.Kind{barrier.KindCSW, barrier.KindDSW, barrier.KindGL} {
		for _, n := range sizes {
			rep := runOne(t, synth, kind, n)
			l := float64(rep.Cycles) / float64(synth.Barriers(n))
			lat[kind] = append(lat[kind], l)
			t.Logf("%s n=%2d: %.1f cycles/barrier", kind, n, l)
		}
	}
	for i, n := range sizes {
		gl, dsw, csw := lat[barrier.KindGL][i], lat[barrier.KindDSW][i], lat[barrier.KindCSW][i]
		// At n=2 DSW and CSW degenerate to the same lock+counter shape.
		if !(gl < dsw && dsw <= csw) || (n >= 4 && dsw >= csw) {
			t.Errorf("n=%d: want GL < DSW < CSW, got %.1f / %.1f / %.1f", n, gl, dsw, csw)
		}
		if gl > 20 {
			t.Errorf("n=%d: GL latency %.1f, want near-constant <=20 (4 ideal + call overhead)", n, gl)
		}
	}
	// CSW must degrade faster than DSW as cores double (hot-spot collapse).
	cswGrowth := lat[barrier.KindCSW][len(sizes)-1] / lat[barrier.KindCSW][0]
	dswGrowth := lat[barrier.KindDSW][len(sizes)-1] / lat[barrier.KindDSW][0]
	if cswGrowth <= dswGrowth {
		t.Errorf("CSW growth %.1fx should exceed DSW growth %.1fx", cswGrowth, dswGrowth)
	}
}
