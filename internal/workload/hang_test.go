package workload

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/sim"
)

// TestDSWSmokeSmall pins down the LL/SC combining-tree behaviour on tiny
// configurations (regression for a livelock found during bring-up).
func TestDSWSmokeSmall(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		n := n
		s, err := sim.New(config.Default(n))
		if err != nil {
			t.Fatal(err)
		}
		synth := &Synthetic{Iters: 2}
		rep, err := Run(s, synth, barrier.KindDSW, n, 1_000_000)
		if err != nil {
			t.Fatalf("n=%d: %v (episodes=%d cycles=%d)", n, err, rep.BarrierEpisodes, rep.Cycles)
		}
	}
}
