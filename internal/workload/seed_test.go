package workload

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/config"
	"repro/internal/sim"
)

// runSeeded executes bench on a fresh system configured with the given
// WorkloadSeed and returns the run's determinism fingerprint.
func runSeeded(t *testing.T, bench Benchmark, seed int64) string {
	t.Helper()
	cfg := config.Default(8)
	cfg.WorkloadSeed = seed
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	rep, err := Run(s, bench, barrier.KindGL, 8, 200_000_000)
	if err != nil {
		t.Fatalf("Run(%s, seed=%d): %v", bench.Name(), seed, err)
	}
	return rep.Fingerprint()
}

// TestWorkloadSeedVariesInputs pins the WorkloadSeed contract for the two
// benchmarks with randomized inputs: seed zero is the published instance
// (same fingerprint every run, so the repo goldens stay valid), and a
// different seed yields a different — but still deterministic — instance.
func TestWorkloadSeedVariesInputs(t *testing.T) {
	for _, mk := range []func() Benchmark{
		func() Benchmark { return TestEM3D() },
		func() Benchmark { return TestUnstructured() },
	} {
		bench := mk()
		t.Run(bench.Name(), func(t *testing.T) {
			base := runSeeded(t, mk(), 0)
			if again := runSeeded(t, mk(), 0); again != base {
				t.Errorf("seed 0 not reproducible: %s vs %s", base, again)
			}
			alt := runSeeded(t, mk(), 1)
			if alt == base {
				t.Errorf("seed 1 produced the seed-0 fingerprint %s; WorkloadSeed is not reaching the generator", base)
			}
			if again := runSeeded(t, mk(), 1); again != alt {
				t.Errorf("seed 1 not reproducible: %s vs %s", alt, again)
			}
		})
	}
}
