package hostchaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/serve"
	"repro/internal/serve/hostfault"
)

// Reproducer is one corpus entry: a minimized host-fault plan pinned to
// the behavior it deterministically produces. Two kinds of pin exist:
//
//   - oracle: <oracle>/<kind> — the plan trips that violation (a true
//     finding; none are expected while the self-healing machinery holds).
//   - expect: quarantine — the plan exhausts some cell's attempts so the
//     run quarantines at least one cell and fails at least one job, while
//     every oracle stays green (the pinned self-healing behavior).
//
// The on-disk format is a plain text file of "key: value" lines with '#'
// comments:
//
//	# poison cell: every attempt at every cell fails
//	plan: seed=1,exec.fail#3
//	expect: quarantine
//	attempts: 3
//
// attempts is optional and defaults to the run default; plan and exactly
// one of oracle/expect are required.
type Reproducer struct {
	// Name is the corpus file's base name (without the .repro suffix).
	Name string `json:"name"`
	// Note is free-text provenance, written as comment lines.
	Note string `json:"note,omitempty"`
	// Plan is the minimized host-fault plan in hostfault.ParsePlan syntax.
	Plan string `json:"plan"`
	// Verdict is the pinned oracle/kind (zero when Expect is set).
	Verdict Violation `json:"verdict,omitempty"`
	// Expect is the pinned self-healing behavior ("quarantine"), mutually
	// exclusive with Verdict.
	Expect string `json:"expect,omitempty"`
	// Attempts is the per-cell attempt bound (0 = run default).
	Attempts int `json:"attempts,omitempty"`
}

// ExpectQuarantine pins self-healing behavior: quarantined cells, failed
// jobs, green oracles.
const ExpectQuarantine = "quarantine"

// reproSuffix is the corpus file extension.
const reproSuffix = ".repro"

// ParseVerdict parses "oracle/kind" into a Violation pin.
func ParseVerdict(s string) (Violation, error) {
	oracle, kind, ok := strings.Cut(s, "/")
	if !ok || oracle == "" || kind == "" {
		return Violation{}, fmt.Errorf("hostchaos: verdict %q: want oracle/kind", s)
	}
	switch oracle {
	case OracleAccounting, OracleMonotonic, OracleIdentity, OracleConservation:
	default:
		return Violation{}, fmt.Errorf("hostchaos: verdict %q: unknown oracle %q", s, oracle)
	}
	return Violation{Oracle: oracle, Kind: kind}, nil
}

// runConfig builds the replay RunConfig.
func (r Reproducer) runConfig() RunConfig {
	return RunConfig{CellAttempts: r.Attempts}
}

// Replay runs the reproducer against a fresh fault-free baseline and
// checks its pin. A non-nil error is the regression signal the corpus
// exists for: the plan no longer produces what it was committed for.
func (r Reproducer) Replay() (*Outcome, error) {
	plan, err := hostfault.ParsePlan(r.Plan)
	if err != nil {
		return nil, fmt.Errorf("hostchaos: corpus %q: %w", r.Name, err)
	}
	cfg := r.runConfig()
	baseline, err := Baseline(cfg)
	if err != nil {
		return nil, fmt.Errorf("hostchaos: corpus %q: %w", r.Name, err)
	}
	out, err := RunPlan(cfg, plan)
	if err != nil {
		return nil, fmt.Errorf("hostchaos: corpus %q: %w", r.Name, err)
	}
	Check(cfg, out, baseline)
	if r.Expect == ExpectQuarantine {
		if v := out.Tripped(); v != nil {
			return out, fmt.Errorf("hostchaos: corpus %q: oracles must stay green under quarantine, tripped %s", r.Name, v)
		}
		if q := out.Counters[serve.MetricCellsQuarantined]; q == 0 {
			return out, fmt.Errorf("hostchaos: corpus %q: plan no longer quarantines any cell", r.Name)
		}
		failed := 0
		for _, j := range out.Jobs {
			if j.State == serve.StateFailed {
				failed++
			}
		}
		if failed == 0 {
			return out, fmt.Errorf("hostchaos: corpus %q: quarantine without a failed job", r.Name)
		}
		return out, nil
	}
	if !out.Matches(r.Verdict) {
		got := "no violation at all"
		if v := out.Tripped(); v != nil {
			got = v.String()
		}
		return out, fmt.Errorf("hostchaos: corpus %q: plan no longer trips %s (got %s)", r.Name, r.Verdict.Key(), got)
	}
	return out, nil
}

// format renders the reproducer in corpus file syntax.
func (r Reproducer) format() string {
	var b strings.Builder
	for _, line := range strings.Split(r.Note, "\n") {
		if line != "" {
			fmt.Fprintf(&b, "# %s\n", line)
		}
	}
	fmt.Fprintf(&b, "plan: %s\n", r.Plan)
	if r.Expect != "" {
		fmt.Fprintf(&b, "expect: %s\n", r.Expect)
	} else {
		fmt.Fprintf(&b, "oracle: %s\n", r.Verdict.Key())
	}
	if r.Attempts != 0 {
		fmt.Fprintf(&b, "attempts: %d\n", r.Attempts)
	}
	return b.String()
}

// validate checks the entry is writable: the plan parses and exactly one
// pin is set.
func (r Reproducer) validate() error {
	if r.Name == "" {
		return fmt.Errorf("hostchaos: corpus entry needs a name")
	}
	if _, err := hostfault.ParsePlan(r.Plan); err != nil {
		return fmt.Errorf("hostchaos: corpus %q: %w", r.Name, err)
	}
	switch {
	case r.Expect == "" && r.Verdict.Oracle == "":
		return fmt.Errorf("hostchaos: corpus %q: needs an oracle or expect pin", r.Name)
	case r.Expect != "" && r.Verdict.Oracle != "":
		return fmt.Errorf("hostchaos: corpus %q: oracle and expect pins are mutually exclusive", r.Name)
	case r.Expect != "" && r.Expect != ExpectQuarantine:
		return fmt.Errorf("hostchaos: corpus %q: unknown expectation %q", r.Name, r.Expect)
	case r.Verdict.Oracle != "":
		if _, err := ParseVerdict(r.Verdict.Key()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCorpus saves the reproducer as <dir>/<name>.repro, creating dir if
// needed, and returns the file path.
func WriteCorpus(dir string, r Reproducer) (string, error) {
	if err := r.validate(); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("hostchaos: corpus: %w", err)
	}
	path := filepath.Join(dir, r.Name+reproSuffix)
	if err := os.WriteFile(path, []byte(r.format()), 0o644); err != nil {
		return "", fmt.Errorf("hostchaos: corpus: %w", err)
	}
	return path, nil
}

// ParseReproducer parses one corpus file's contents.
func ParseReproducer(name, text string) (Reproducer, error) {
	r := Reproducer{Name: name}
	var notes []string
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			notes = append(notes, strings.TrimSpace(strings.TrimPrefix(line, "#")))
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return r, fmt.Errorf("hostchaos: corpus %q line %d: want key: value, got %q", name, ln+1, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "plan":
			_, err = hostfault.ParsePlan(val)
			r.Plan = val
		case "oracle":
			r.Verdict, err = ParseVerdict(val)
		case "expect":
			r.Expect = val
		case "attempts":
			r.Attempts, err = strconv.Atoi(val)
		default:
			return r, fmt.Errorf("hostchaos: corpus %q line %d: unknown key %q", name, ln+1, key)
		}
		if err != nil {
			return r, fmt.Errorf("hostchaos: corpus %q line %d: %s: %w", name, ln+1, key, err)
		}
	}
	r.Note = strings.Join(notes, "\n")
	if r.Plan == "" {
		return r, fmt.Errorf("hostchaos: corpus %q: missing plan", name)
	}
	if err := r.validate(); err != nil {
		return r, err
	}
	return r, nil
}

// LoadCorpus reads every *.repro file under dir, sorted by name. A missing
// directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]Reproducer, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("hostchaos: corpus: %w", err)
	}
	var out []Reproducer
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), reproSuffix) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("hostchaos: corpus: %w", err)
		}
		r, err := ParseReproducer(strings.TrimSuffix(e.Name(), reproSuffix), string(raw))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
