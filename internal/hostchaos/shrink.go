package hostchaos

import "repro/internal/serve/hostfault"

// ShrinkStats summarizes one minimization: how many candidate plans were
// run and how far the atom count dropped.
type ShrinkStats struct {
	Runs      int `json:"runs"`
	FromAtoms int `json:"from_atoms"`
	ToAtoms   int `json:"to_atoms"`
}

// Minimize greedily shrinks a tripping plan to a (locally) minimal
// reproducer: repeatedly try dropping one atom — one site's rate or burst
// — and keep the smaller plan whenever trips still holds. The predicate is
// called at most maxRuns times; the loop also stops at a fixpoint, when no
// single-atom removal preserves the trip. The returned plan keeps the
// original's seed and slow-site latency so it replays identically.
func Minimize(plan *hostfault.Plan, trips func(*hostfault.Plan) bool, maxRuns int) (*hostfault.Plan, ShrinkStats) {
	cur := plan.Atoms()
	stats := ShrinkStats{FromAtoms: len(cur), ToAtoms: len(cur)}
	rebuild := func(atoms []string) *hostfault.Plan {
		p, err := plan.FromAtoms(atoms)
		if err != nil {
			// Atoms came from Atoms() on a valid plan; any subset reparses.
			panic("hostchaos: unshrinkable atoms: " + err.Error())
		}
		return p
	}
	for len(cur) > 1 {
		shrunk := false
		for i := 0; i < len(cur) && stats.Runs < maxRuns; i++ {
			next := make([]string, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			stats.Runs++
			if trips(rebuild(next)) {
				cur = next
				shrunk = true
				break
			}
		}
		if !shrunk || stats.Runs >= maxRuns {
			break
		}
	}
	stats.ToAtoms = len(cur)
	return rebuild(cur), stats
}
