package hostchaos

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/hostfault"
)

// Violation is one oracle trip: which invariant broke, the failure kind
// within it, and a human-readable detail.
type Violation struct {
	Oracle string `json:"oracle"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// Key is the stable oracle/kind identity a corpus entry pins.
func (v Violation) Key() string { return v.Oracle + "/" + v.Kind }

func (v Violation) String() string { return v.Key() + ": " + v.Detail }

// Oracle names.
const (
	// OracleAccounting: no lost, duplicated or non-terminal jobs.
	OracleAccounting = "accounting"
	// OracleMonotonic: terminal states never change.
	OracleMonotonic = "monotonic"
	// OracleIdentity: result bytes match the fault-free baseline.
	OracleIdentity = "identity"
	// OracleConservation: injected faults reconcile with the retry,
	// quarantine and spill metrics.
	OracleConservation = "conservation"
)

// checkOutcome runs every oracle; violations come back in oracle order so
// a run's first trip is deterministic.
func checkOutcome(cfg RunConfig, out *Outcome, baseline map[string][]byte) []Violation {
	var vs []Violation
	vs = append(vs, checkAccounting(cfg, out)...)
	vs = append(vs, checkMonotonic(out)...)
	vs = append(vs, checkIdentity(out, baseline)...)
	vs = append(vs, checkConservation(cfg, out)...)
	return vs
}

func checkAccounting(cfg RunConfig, out *Outcome) []Violation {
	var vs []Violation
	if len(out.Jobs) != len(cfg.Specs) {
		vs = append(vs, Violation{OracleAccounting, "lost-job",
			fmt.Sprintf("submitted %d jobs, observed %d", len(cfg.Specs), len(out.Jobs))})
	}
	seen := map[string]bool{}
	for _, j := range out.Jobs {
		if seen[j.ID] {
			vs = append(vs, Violation{OracleAccounting, "duplicate-job",
				fmt.Sprintf("job %s observed twice", j.ID)})
		}
		seen[j.ID] = true
		switch j.State {
		case serve.StateDone, serve.StateFailed, serve.StateCanceled:
		default:
			vs = append(vs, Violation{OracleAccounting, "non-terminal",
				fmt.Sprintf("job %s ended the run in state %s", j.ID, j.State)})
		}
	}
	return vs
}

func checkMonotonic(out *Outcome) []Violation {
	var vs []Violation
	if len(out.JobsRecheck) != len(out.Jobs) {
		return append(vs, Violation{OracleMonotonic, "vanished",
			fmt.Sprintf("%d jobs at finish, %d on recheck", len(out.Jobs), len(out.JobsRecheck))})
	}
	for i, j := range out.Jobs {
		if again := out.JobsRecheck[i]; again.State != j.State {
			vs = append(vs, Violation{OracleMonotonic, "state-change",
				fmt.Sprintf("job %s moved %s -> %s after reaching a terminal state", j.ID, j.State, again.State)})
		}
	}
	return vs
}

func checkIdentity(out *Outcome, baseline map[string][]byte) []Violation {
	var vs []Violation
	for _, fp := range sortedKeys(out.CellBytes) {
		want, ok := baseline[fp]
		if !ok {
			vs = append(vs, Violation{OracleIdentity, "unknown-cell",
				fmt.Sprintf("cell %s produced bytes but is absent from the fault-free baseline", fp)})
			continue
		}
		if !bytes.Equal(out.CellBytes[fp], want) {
			vs = append(vs, Violation{OracleIdentity, "byte-divergence",
				fmt.Sprintf("cell %s bytes differ from the fault-free baseline (%d vs %d bytes)",
					fp, len(out.CellBytes[fp]), len(want))})
		}
	}
	return vs
}

// checkConservation reconciles the fired ledger against the server's
// self-healing metrics. With an ample job retry budget and no client
// cancellation (both guaranteed by RunPlan), every injected executor fault
// is exactly one failed attempt, and every failed attempt is followed by
// exactly one retry or one quarantine entry:
//
//	fired(exec.panic) + fired(exec.fail) == cell.retries + cells.quarantined
//	fired(exec.panic)                    == cell.panics
//	fired(spill.writefail) + fired(spill.renamefail) == spill.errors
func checkConservation(cfg RunConfig, out *Outcome) []Violation {
	var vs []Violation
	fired := func(s hostfault.Site) uint64 { return out.Fired[s.String()] }
	failures := fired(hostfault.ExecPanic) + fired(hostfault.ExecFail)
	absorbed := out.Counters[serve.MetricCellRetries] + out.Counters[serve.MetricCellsQuarantined]
	if failures != absorbed {
		vs = append(vs, Violation{OracleConservation, "exec-leak",
			fmt.Sprintf("injected %d executor faults but %d retries + quarantines", failures, absorbed)})
	}
	if got := out.Counters[serve.MetricCellPanics]; got != fired(hostfault.ExecPanic) {
		vs = append(vs, Violation{OracleConservation, "panic-miscount",
			fmt.Sprintf("injected %d panics, recover guard counted %d", fired(hostfault.ExecPanic), got)})
	}
	spills := fired(hostfault.SpillWriteFail) + fired(hostfault.SpillRenameFail)
	if got := out.Counters[serve.MetricSpillErrors]; got != spills {
		vs = append(vs, Violation{OracleConservation, "spill-miscount",
			fmt.Sprintf("injected %d spill write faults, cache degraded through %d", spills, got)})
	}
	return vs
}

// sortedKeys returns the map's keys in sorted order (deterministic oracle
// output regardless of map iteration).
func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// contextWithTimeout wraps context.WithTimeout on Background.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
