package hostchaos

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/hostfault"
	"repro/internal/sim"
)

// CampaignConfig shapes one host-chaos campaign.
type CampaignConfig struct {
	// Seed drives the plan generator; same seed, same campaign.
	Seed uint64
	// Budget is the number of generated plans to run (0 = 12).
	Budget int
	// Run configures every oracle-checked server run.
	Run RunConfig
	// ShrinkRuns bounds minimization candidates per finding (0 = 24).
	ShrinkRuns int
	// MaxFindings stops minimizing after this many distinct finds (0 = 4).
	MaxFindings int
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Budget == 0 {
		c.Budget = 12
	}
	if c.ShrinkRuns == 0 {
		c.ShrinkRuns = 24
	}
	if c.MaxFindings == 0 {
		c.MaxFindings = 4
	}
	c.Run = c.Run.withDefaults()
	return c
}

// Finding is one oracle trip, minimized to a reproducer plan.
type Finding struct {
	// Index is the plan's position in the generation order.
	Index int `json:"index"`
	// Plan is the original failing plan (ParsePlan syntax).
	Plan string `json:"plan"`
	// Verdict is the run's first violation.
	Verdict Violation `json:"verdict"`
	// Minimized is the shrunken reproducer (ParsePlan syntax).
	Minimized string `json:"minimized"`
	// Shrink summarizes the minimization effort.
	Shrink ShrinkStats `json:"shrink"`
}

// CampaignReport is the JSON document a campaign emits. Every field is a
// pure function of the seed and the run config — two campaigns with the
// same inputs render byte-identical reports.
type CampaignReport struct {
	Seed   uint64 `json:"seed"`
	Budget int    `json:"budget"`
	Runs   int    `json:"runs"`
	Clean  int    `json:"clean"`
	// Tripped counts runs with at least one oracle violation.
	Tripped int `json:"tripped"`
	// QuarantinedRuns counts (clean) runs in which at least one cell was
	// quarantined — expected self-healing behavior, not a violation.
	QuarantinedRuns int `json:"quarantined_runs"`
	// RetriedRuns counts runs that consumed at least one retry.
	RetriedRuns int       `json:"retried_runs"`
	Findings    []Finding `json:"findings,omitempty"`
}

// Campaign explores Budget seeded random host-fault plans sequentially
// against in-process servers, checks every run with the service oracles
// against one fault-free baseline, and shrinks up to MaxFindings trips to
// minimal reproducers. Machinery errors (a wedged server, transport
// failures) abort the campaign — they are bugs in the harness or the
// server, not verdicts.
func Campaign(cfg CampaignConfig) (*CampaignReport, error) {
	cfg = cfg.withDefaults()
	baseline, err := Baseline(cfg.Run)
	if err != nil {
		return nil, err
	}
	gen := newGenerator(cfg.Seed)
	rep := &CampaignReport{Seed: cfg.Seed, Budget: cfg.Budget}
	for i := 0; i < cfg.Budget; i++ {
		plan := gen.plan()
		out, err := RunPlan(cfg.Run, plan)
		if err != nil {
			return rep, fmt.Errorf("hostchaos: plan %d (%s): %w", i, plan, err)
		}
		Check(cfg.Run, out, baseline)
		rep.Runs++
		if out.Counters[serve.MetricCellsQuarantined] > 0 {
			rep.QuarantinedRuns++
		}
		if out.Counters[serve.MetricCellRetries] > 0 {
			rep.RetriedRuns++
		}
		v := out.Tripped()
		if v == nil {
			rep.Clean++
			continue
		}
		rep.Tripped++
		if len(rep.Findings) >= cfg.MaxFindings {
			continue
		}
		min, stats := Minimize(plan, func(p *hostfault.Plan) bool {
			out, err := RunPlan(cfg.Run, p)
			if err != nil {
				return false
			}
			Check(cfg.Run, out, baseline)
			return out.Matches(*v)
		}, cfg.ShrinkRuns)
		rep.Findings = append(rep.Findings, Finding{
			Index:     i,
			Plan:      plan.String(),
			Verdict:   *v,
			Minimized: min.String(),
			Shrink:    stats,
		})
	}
	return rep, nil
}

// generator produces randomized host-fault plans from one seeded source.
// Weights steer the budget toward the sites that stress the self-healing
// machinery (executor panics/failures); stalls and spill faults get a
// lighter tail — they degrade, they don't fail.
type generator struct {
	rng   *rand.Rand
	sites []hostfault.Site
}

func newGenerator(seed uint64) *generator {
	weights := map[hostfault.Site]int{
		hostfault.ExecPanic:       4,
		hostfault.ExecFail:        4,
		hostfault.ExecSlow:        1,
		hostfault.SpillWriteFail:  2,
		hostfault.SpillRenameFail: 1,
		hostfault.SpillReadFail:   2,
		hostfault.SpillCorrupt:    2,
		hostfault.QueueStall:      1,
	}
	g := &generator{rng: rand.New(rand.NewSource(int64(seed)))}
	// Expand the weight table into a draw pool, in site order (map
	// iteration must not shape the sequence).
	for s := hostfault.Site(0); s < hostfault.NumSites; s++ {
		for i := 0; i < weights[s]; i++ {
			g.sites = append(g.sites, s)
		}
	}
	return g
}

// plan draws one randomized plan: 1–3 distinct sites, each either a
// first-N burst (1–3 opportunities) or a rate. Opportunities per run are
// few — a handful of cells times a handful of attempts — so rates are
// drawn high (log-uniform in [0.1, 0.6]) to actually fire.
func (g *generator) plan() *hostfault.Plan {
	p := &hostfault.Plan{
		Seed:       1 + uint64(g.rng.Intn(1_000_000)),
		SlowMillis: 1,
	}
	n := 1 + g.rng.Intn(3)
	var used [hostfault.NumSites]bool
	for picked := 0; picked < n; {
		s := g.sites[g.rng.Intn(len(g.sites))]
		if used[s] {
			continue
		}
		used[s] = true
		picked++
		if g.rng.Intn(2) == 0 {
			p.First[s] = 1 + g.rng.Intn(3)
		} else {
			p.Rates[s] = 0.1 * math.Pow(6, g.rng.Float64())
		}
	}
	return p
}

// harness is one in-process server plus its loopback HTTP frontend.
type harness struct {
	srv *serve.Server
	ts  *httptest.Server
}

func newHarness(cfg RunConfig, cacheDir string, runner serve.CellRunner) harness {
	srv := serve.NewServer(serve.Options{
		ConcurrentJobs: cfg.ConcurrentJobs,
		CellWorkers:    cfg.CellWorkers,
		CacheDir:       cacheDir,
		CellAttempts:   cfg.CellAttempts,
		RetryBase:      time.Millisecond,
		RetryMax:       4 * time.Millisecond,
		JobRetryBudget: 1 << 20,
		Runner:         runner,
	})
	return harness{srv: srv, ts: httptest.NewServer(srv.Handler())}
}

func (h harness) url() string { return h.ts.URL }

// stop closes the frontend and drains the server within d (0 cancels
// everything immediately — the abandoned-server path).
func (h harness) stop(d time.Duration) {
	h.ts.Close()
	ctx, cancel := contextWithTimeout(d)
	defer cancel()
	h.srv.Drain(ctx)
}

// KillRestart is the journal-recovery check: a server with an attached
// journal is abandoned mid-run (its runner never completes a cell — the
// in-process stand-in for SIGKILL), and a second server over the same
// journal and cache directory must replay every job to completion with
// results byte-identical to the fault-free baseline, after which the
// journal must converge to empty.
func KillRestart(cfg RunConfig, baseline map[string][]byte) error {
	cfg = cfg.withDefaults()
	dir, err := os.MkdirTemp("", "hostchaos-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "journal.wal")
	cache := filepath.Join(dir, "cache")

	// Server A: every cell wedges until canceled, so the "crash" finds all
	// jobs durably journaled and none terminal.
	wedged := func(ctx context.Context, c serve.Cell) (*sim.Report, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	a := newHarness(cfg, cache, wedged)
	if _, err := a.srv.AttachJournal(journal); err != nil {
		a.stop(0)
		return err
	}
	for _, spec := range cfg.Specs {
		if _, err := submit(a.url(), spec); err != nil {
			a.stop(0)
			return fmt.Errorf("hostchaos: recovery submit: %w", err)
		}
	}
	// "Crash": abandon A without letting anything finish. Its canceled
	// jobs append terminal records to an unlinked inode once B compacts
	// the journal; nothing observable survives, exactly like a kill.
	defer a.stop(0)

	// Server B: replays the journal with the real runner.
	b := newHarness(cfg, cache, nil)
	defer b.stop(10 * time.Second)
	replayed, err := b.srv.AttachJournal(journal)
	if err != nil {
		return err
	}
	if replayed != len(cfg.Specs) {
		return fmt.Errorf("hostchaos: recovery replayed %d jobs, want %d", replayed, len(cfg.Specs))
	}
	for i := range cfg.Specs {
		id := fmt.Sprintf("j%d", i+1)
		st, err := waitTerminal(b.url(), id, cfg.PollSteps)
		if err != nil {
			return err
		}
		if st.State != serve.StateDone {
			return fmt.Errorf("hostchaos: recovered job %s ended %s (%s)", id, st.State, st.Error)
		}
		doc, err := getResult(b.url(), id)
		if err != nil {
			return err
		}
		for _, c := range doc.Cells {
			want, ok := baseline[c.InputFP]
			if !ok {
				return fmt.Errorf("hostchaos: recovered cell %s missing from baseline", c.InputFP)
			}
			if string(c.Report) != string(want) {
				return fmt.Errorf("hostchaos: recovered cell %s bytes differ from baseline", c.InputFP)
			}
		}
	}
	// Drain B (closing its journal), then a third attach must find nothing
	// pending: recovery converged.
	b.stop(10 * time.Second)
	c := newHarness(cfg, cache, nil)
	defer c.stop(10 * time.Second)
	replayed, err = c.srv.AttachJournal(journal)
	if err != nil {
		return err
	}
	if replayed != 0 {
		return fmt.Errorf("hostchaos: journal did not converge: %d jobs replayed after a clean drain", replayed)
	}
	return nil
}
