package hostchaos

import (
	"encoding/json"
	"testing"

	"repro/internal/serve"
	"repro/internal/serve/hostfault"
)

// skipInShort drops the multi-second server campaigns from -short runs;
// `make serve-chaos-smoke` runs them under the race detector instead.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("campaign-scale test; covered by make serve-chaos-smoke")
	}
}

func mustPlan(t *testing.T, s string) *hostfault.Plan {
	t.Helper()
	p, err := hostfault.ParsePlan(s)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", s, err)
	}
	return p
}

// A burst of executor failures must be absorbed by retries with every
// oracle green and the conservation ledger exact.
func TestRunPlanAbsorbsExecFaults(t *testing.T) {
	skipInShort(t)
	cfg := RunConfig{}
	baseline, err := Baseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunPlan(cfg, mustPlan(t, "seed=7,exec.fail#1,exec.panic#1"))
	if err != nil {
		t.Fatal(err)
	}
	Check(cfg, out, baseline)
	if v := out.Tripped(); v != nil {
		t.Fatalf("oracle tripped: %s", v)
	}
	if out.Counters[serve.MetricCellRetries] == 0 {
		t.Fatal("no retries recorded under injected executor faults")
	}
	if out.Fired[hostfault.ExecFail.String()] == 0 || out.Fired[hostfault.ExecPanic.String()] == 0 {
		t.Fatalf("fault sites never fired: %v", out.Fired)
	}
	for _, j := range out.Jobs {
		if j.State != serve.StateDone {
			t.Fatalf("job %s ended %s (%s), want done", j.ID, j.State, j.Error)
		}
	}
}

// Spill faults must degrade the disk tier without changing bytes or
// failing jobs, and the spill-error metric must reconcile.
func TestRunPlanAbsorbsSpillFaults(t *testing.T) {
	skipInShort(t)
	cfg := RunConfig{SpillDir: t.TempDir()}
	baseline, err := Baseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.SpillDir = t.TempDir()
	out, err := RunPlan(cfg2, mustPlan(t, "seed=3,spill.writefail#1,spill.corrupt#1"))
	if err != nil {
		t.Fatal(err)
	}
	Check(cfg2, out, baseline)
	if v := out.Tripped(); v != nil {
		t.Fatalf("oracle tripped: %s", v)
	}
	if out.Fired[hostfault.SpillWriteFail.String()] == 0 {
		t.Fatalf("spill.writefail never fired: %v", out.Fired)
	}
}

// A seeded campaign is deterministic (two runs render byte-identical
// reports) and the self-healing machinery keeps every run clean.
func TestCampaignDeterministicAndClean(t *testing.T) {
	skipInShort(t)
	cfg := CampaignConfig{Seed: 11, Budget: 5}
	first, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Runs != cfg.Budget {
		t.Fatalf("ran %d plans, want %d", first.Runs, cfg.Budget)
	}
	if first.Tripped != 0 {
		t.Fatalf("campaign tripped %d runs: %+v", first.Tripped, first.Findings)
	}
	if first.RetriedRuns == 0 {
		t.Fatal("no campaign run consumed a retry — the generator is not stressing the executor")
	}
	again, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatalf("campaign not deterministic:\n first: %s\nsecond: %s", a, b)
	}
}

// Minimize must strip atoms that do not contribute to the trip.
func TestMinimize(t *testing.T) {
	plan := mustPlan(t, "seed=1,exec.fail#2,spill.readfail#1,exec.slow=0.5")
	runs := 0
	min, stats := Minimize(plan, func(p *hostfault.Plan) bool {
		runs++
		return p.First[hostfault.ExecFail] > 0
	}, 24)
	if got := min.Atoms(); len(got) != 1 || got[0] != "exec.fail#2" {
		t.Fatalf("minimized to %v, want [exec.fail#2]", got)
	}
	if min.Seed != plan.Seed {
		t.Fatalf("minimization changed the seed: %d -> %d", plan.Seed, min.Seed)
	}
	if stats.Runs != runs || stats.FromAtoms != 3 || stats.ToAtoms != 1 {
		t.Fatalf("stats %+v (predicate ran %d times)", stats, runs)
	}
}

// The committed corpus must replay: every pinned behavior still holds.
func TestCorpusReplay(t *testing.T) {
	corpus, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("corpus is empty — the poison-cell reproducer should be committed")
	}
	for _, r := range corpus {
		if _, err := r.Replay(); err != nil {
			t.Error(err)
		}
	}
}

// Corpus entries survive a write/load round trip.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := Reproducer{
		Name:     "roundtrip",
		Note:     "provenance line",
		Plan:     "seed=5,exec.panic#1",
		Verdict:  Violation{Oracle: OracleConservation, Kind: "exec-leak"},
		Attempts: 4,
	}
	if _, err := WriteCorpus(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(got))
	}
	r := got[0]
	if r.Name != want.Name || r.Note != want.Note || r.Plan != want.Plan ||
		r.Verdict.Key() != want.Verdict.Key() || r.Attempts != want.Attempts {
		t.Fatalf("round trip drifted: %+v vs %+v", r, want)
	}
	if _, err := WriteCorpus(dir, Reproducer{Name: "bad", Plan: "seed=1,exec.fail#1"}); err == nil {
		t.Fatal("entry without a pin must not validate")
	}
}

// The in-process kill/restart check: journaled jobs survive losing their
// server and recover byte-identically.
func TestKillRestartRecovers(t *testing.T) {
	cfg := RunConfig{}
	baseline, err := Baseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := KillRestart(cfg, baseline); err != nil {
		t.Fatal(err)
	}
}
