// Package hostchaos is the service-level analogue of internal/chaos: where
// chaos injects protocol faults under the simulated barrier and checks the
// barrier's safety/liveness oracles, hostchaos injects *host* faults under
// the glsimd job server — executor panics, flaky spill disks, queue stalls
// — and checks the service's invariants:
//
//   - accounting: every submitted job reaches exactly one terminal state;
//     none are lost, none are duplicated.
//   - monotonicity: a terminal job never changes state again.
//   - identity: every result cell a faulty run produces is byte-identical
//     to the fault-free baseline for the same input fingerprint (faults
//     may fail jobs, but they must never change bytes).
//   - conservation: the injector's fired ledger reconciles exactly with
//     the server's retry/quarantine/spill metrics — every injected fault
//     is accounted for, none double-counted.
//
// Campaigns explore seeded random host-fault plans; findings are shrunk to
// minimal reproducers and pinned in a corpus (testdata/corpus), exactly
// like the protocol-chaos corpus.
package hostchaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/hostfault"
)

// RunConfig shapes one oracle-checked server run.
type RunConfig struct {
	// Specs are the job specs submitted, in order (empty = DefaultSpecs).
	Specs []string
	// ConcurrentJobs and CellWorkers shape the server's executor pool
	// (<= 0 means 2 each).
	ConcurrentJobs int
	CellWorkers    int
	// CellAttempts is the per-cell attempt bound (<= 0 means 3).
	CellAttempts int
	// SpillDir, when non-empty, arms the cache's disk tier there so the
	// spill fault sites have opportunities to fire.
	SpillDir string
	// PollSteps bounds the terminal-state wait: steps of pollStep each
	// (<= 0 means 12000, i.e. one minute).
	PollSteps int
}

// DefaultSpecs is the standard submission mix: overlapping small grids, so
// runs exercise cache hits, flight sharing and distinct cells at once.
func DefaultSpecs() []string {
	return []string{
		"bench=SYNTH barrier=GL|CSW cores=8 tier=test",
		"bench=SYNTH barrier=GL cores=8|16 tier=test",
		"bench=SYNTH barrier=CSW cores=8 tier=test",
	}
}

func (c RunConfig) withDefaults() RunConfig {
	if len(c.Specs) == 0 {
		c.Specs = DefaultSpecs()
	}
	if c.ConcurrentJobs <= 0 {
		c.ConcurrentJobs = 2
	}
	if c.CellWorkers <= 0 {
		c.CellWorkers = 2
	}
	if c.CellAttempts <= 0 {
		c.CellAttempts = 3
	}
	if c.PollSteps <= 0 {
		c.PollSteps = 12000
	}
	return c
}

// pollStep is the status-poll interval. Waits are counted in steps, not
// wall-clock reads, so runs stay free of time.Now.
const pollStep = 5 * time.Millisecond

// Outcome is one run's observable record, the input to every oracle.
type Outcome struct {
	// Plan is the injected plan (ParsePlan syntax; empty = fault-free).
	Plan string `json:"plan"`
	// Jobs are the final job statuses, and JobsRecheck the same statuses
	// re-fetched afterwards (the monotonicity witness).
	Jobs        []serve.JobStatus `json:"jobs"`
	JobsRecheck []serve.JobStatus `json:"-"`
	// CellBytes maps input fingerprints to the report bytes the run's done
	// cells produced.
	CellBytes map[string][]byte `json:"-"`
	// Counters is the server's final counter snapshot.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Fired is the injector's per-site fired ledger.
	Fired map[string]uint64 `json:"fired,omitempty"`
	// Violations are the oracle trips (nil = clean run).
	Violations []Violation `json:"violations,omitempty"`
}

// Tripped returns the first violation, or nil for a clean run.
func (o *Outcome) Tripped() *Violation {
	if len(o.Violations) == 0 {
		return nil
	}
	return &o.Violations[0]
}

// Matches reports whether the outcome trips the same oracle/kind as v.
func (o *Outcome) Matches(v Violation) bool {
	for _, got := range o.Violations {
		if got.Oracle == v.Oracle && got.Kind == v.Kind {
			return true
		}
	}
	return false
}

// jobResultDoc mirrors the server's result document (the exported wire
// format; the server-side struct is unexported).
type jobResultDoc struct {
	ID    string         `json:"id"`
	State serve.JobState `json:"state"`
	Cells []struct {
		InputFP string          `json:"input_fingerprint"`
		Error   string          `json:"error,omitempty"`
		Report  json.RawMessage `json:"report,omitempty"`
	} `json:"cells"`
}

// RunPlan drives one in-process glsimd server through the HTTP API under
// the given host-fault plan (nil = fault-free), waits for every job to
// reach a terminal state, and returns the outcome with the oracles in
// baseline-less mode (identity needs a baseline; run it via Check).
// Machinery failures — the server not terminating, HTTP transport errors —
// are returned as errors, never encoded as violations.
func RunPlan(cfg RunConfig, plan *hostfault.Plan) (*Outcome, error) {
	cfg = cfg.withDefaults()
	srv := serve.NewServer(serve.Options{
		ConcurrentJobs: cfg.ConcurrentJobs,
		CellWorkers:    cfg.CellWorkers,
		CacheDir:       cfg.SpillDir,
		CellAttempts:   cfg.CellAttempts,
		RetryBase:      time.Millisecond,
		RetryMax:       4 * time.Millisecond,
		// The budget must never bind in a campaign: a budget-exhausted
		// failure is neither a retry nor a quarantine, which would break
		// the conservation identity the oracles check.
		JobRetryBudget: 1 << 20,
		HostFaults:     plan,
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		drainServer(srv, 10*time.Second)
	}()

	out := &Outcome{Plan: plan.String(), CellBytes: map[string][]byte{}}
	var ids []string
	for _, spec := range cfg.Specs {
		st, err := submit(ts.URL, spec)
		if err != nil {
			return nil, fmt.Errorf("hostchaos: submit %q: %w", spec, err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		st, err := waitTerminal(ts.URL, id, cfg.PollSteps)
		if err != nil {
			return nil, err
		}
		out.Jobs = append(out.Jobs, st)
	}
	// Re-fetch after everything settled: terminal states must not move.
	for _, id := range ids {
		st, err := getStatus(ts.URL, id)
		if err != nil {
			return nil, err
		}
		out.JobsRecheck = append(out.JobsRecheck, st)
	}
	for _, id := range ids {
		doc, err := getResult(ts.URL, id)
		if err != nil {
			return nil, err
		}
		for _, c := range doc.Cells {
			if len(c.Report) > 0 && c.Error == "" {
				out.CellBytes[c.InputFP] = append([]byte(nil), c.Report...)
			}
		}
	}
	out.Counters = srv.Stats().Counters
	out.Fired = srv.FiredFaults()
	return out, nil
}

// Check runs the oracles over an outcome against a fault-free baseline
// (fingerprint -> report bytes) and records any violations on the outcome.
func Check(cfg RunConfig, out *Outcome, baseline map[string][]byte) {
	cfg = cfg.withDefaults()
	out.Violations = checkOutcome(cfg, out, baseline)
}

// Baseline computes the fault-free reference: one clean run's cell bytes
// by fingerprint. A baseline run must be violation-free on its own
// fault-independent oracles; any trip is returned as an error.
func Baseline(cfg RunConfig) (map[string][]byte, error) {
	out, err := RunPlan(cfg, nil)
	if err != nil {
		return nil, err
	}
	Check(cfg, out, out.CellBytes)
	if v := out.Tripped(); v != nil {
		return nil, fmt.Errorf("hostchaos: fault-free baseline tripped %s", v)
	}
	return out.CellBytes, nil
}

// drainServer drains with a bounded context.
func drainServer(srv *serve.Server, d time.Duration) {
	ctx, cancel := contextWithTimeout(d)
	defer cancel()
	srv.Drain(ctx)
}

// submit posts one job spec.
func submit(base, spec string) (serve.JobStatus, error) {
	body, _ := json.Marshal(map[string]string{"spec": spec})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return st, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return st, nil
}

func getStatus(base, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("hostchaos: job %s: HTTP %d", id, resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func getResult(base, id string) (jobResultDoc, error) {
	var doc jobResultDoc
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return doc, err
	}
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("hostchaos: result %s: HTTP %d: %s", id, resp.StatusCode, raw)
	}
	err = json.Unmarshal(raw, &doc)
	return doc, err
}

// waitTerminal polls a job's status until terminal, bounded by steps of
// pollStep.
func waitTerminal(base, id string, steps int) (serve.JobStatus, error) {
	var st serve.JobStatus
	for i := 0; i < steps; i++ {
		var err error
		st, err = getStatus(base, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case serve.StateDone, serve.StateFailed, serve.StateCanceled:
			return st, nil
		}
		time.Sleep(pollStep)
	}
	return st, fmt.Errorf("hostchaos: job %s not terminal after %d polls (%s)", id, steps, st.State)
}
