package fault

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestNilAndEmptyPlan(t *testing.T) {
	if inj := NewInjector(nil); inj != nil {
		t.Fatalf("nil plan must compile to nil injector")
	}
	p := &Plan{}
	if !p.Empty() {
		t.Fatalf("zero plan must be Empty")
	}
	inj := NewInjector(p)
	if inj.GLActive() {
		t.Fatalf("empty plan must leave GL sites inactive")
	}
	for cycle := uint64(0); cycle < 100; cycle++ {
		if got := inj.SampleLine(3, cycle, 5); got != 5 {
			t.Fatalf("empty plan perturbed sample at cycle %d: got %d", cycle, got)
		}
		if inj.LinkDown(cycle, 2, 1) || inj.Corrupt(cycle, 2, 1) {
			t.Fatalf("empty plan injected NoC fault at cycle %d", cycle)
		}
		if d := inj.WatchPerturb(cycle, 4); d != 0 {
			t.Fatalf("empty plan perturbed watch at cycle %d: %d", cycle, d)
		}
	}
}

func TestNilInjectorHooks(t *testing.T) {
	var inj *Injector
	if inj.GLActive() {
		t.Fatalf("nil injector must report GL inactive")
	}
	if inj.LinkDown(1, 0, 0) || inj.Corrupt(1, 0, 0) || inj.WatchPerturb(1, 0) != 0 {
		t.Fatalf("nil injector hooks must be no-ops")
	}
}

func TestDeterminism(t *testing.T) {
	p := &Plan{Seed: 42}
	p.Rates[GLDrop] = 0.05
	p.Rates[GLSpurious] = 0.02
	p.Rates[NoCCorrupt] = 0.03
	a, b := NewInjector(p), NewInjector(p)
	for cycle := uint64(0); cycle < 5000; cycle++ {
		for line := uint64(0); line < 8; line++ {
			if a.SampleLine(line, cycle, 3) != b.SampleLine(line, cycle, 3) {
				t.Fatalf("decision diverged at cycle %d line %d", cycle, line)
			}
		}
		if a.Corrupt(cycle, 1, 2) != b.Corrupt(cycle, 1, 2) {
			t.Fatalf("NoC decision diverged at cycle %d", cycle)
		}
	}
}

func TestDecisionsAreOrderIndependent(t *testing.T) {
	p := &Plan{Seed: 9}
	p.Rates[GLDrop] = 0.1
	a, b := NewInjector(p), NewInjector(p)
	// Query b at the same coordinates in reverse order; decisions must match
	// a's, proving there is no hidden PRNG stream.
	fwd := make(map[[2]uint64]int)
	for cycle := uint64(0); cycle < 200; cycle++ {
		for line := uint64(0); line < 4; line++ {
			fwd[[2]uint64{cycle, line}] = a.SampleLine(line, cycle, 2)
		}
	}
	for cycle := uint64(199); ; cycle-- {
		for line := uint64(3); ; line-- {
			if got := b.SampleLine(line, cycle, 2); got != fwd[[2]uint64{cycle, line}] {
				t.Fatalf("order-dependent decision at cycle %d line %d", cycle, line)
			}
			if line == 0 {
				break
			}
		}
		if cycle == 0 {
			break
		}
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	p := &Plan{Seed: 3}
	p.Rates[GLDrop] = 0.1
	inj := NewInjector(p)
	drops := 0
	const trials = 200_000
	for cycle := uint64(0); cycle < trials; cycle++ {
		if inj.SampleLine(0, cycle, 1) == 0 {
			drops++
		}
	}
	frac := float64(drops) / trials
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("drop rate %g far from configured 0.1", frac)
	}
}

func TestStuckAtWindows(t *testing.T) {
	p := &Plan{
		Seed: 1,
		Events: []Event{
			{Site: GLStuckLow, From: 100, Until: 200, Loc: 2},
			{Site: GLStuckHigh, From: 300, Until: 400, Loc: -1},
		},
	}
	inj := NewInjector(p)
	if got := inj.SampleLine(2, 150, 4); got != 0 {
		t.Fatalf("stuck-low line read %d, want 0", got)
	}
	if got := inj.SampleLine(1, 150, 4); got != 4 {
		t.Fatalf("stuck-low must not leak to other lines: got %d", got)
	}
	if got := inj.SampleLine(2, 99, 4); got != 4 {
		t.Fatalf("stuck-low active before window: got %d", got)
	}
	if got := inj.SampleLine(5, 350, 0); got != 1 {
		t.Fatalf("stuck-high idle line read %d, want 1", got)
	}
	if got := inj.SampleLine(5, 350, 3); got != 3 {
		t.Fatalf("stuck-high must not reduce a live count: got %d", got)
	}
}

func TestMiscountEventK(t *testing.T) {
	p := &Plan{
		Seed:   1,
		Events: []Event{{Site: SCSMAMiscount, From: 10, Until: 10, Loc: 0, K: 3}},
	}
	inj := NewInjector(p)
	got := inj.SampleLine(0, 10, 5)
	if got != 2 && got != 8 {
		t.Fatalf("miscount k=3 on count 5 gave %d, want 2 or 8", got)
	}
}

func TestMetricsBinding(t *testing.T) {
	p := &Plan{Seed: 1, Events: []Event{{Site: GLDrop, From: 0, Until: 50, Loc: -1}}}
	inj := NewInjector(p)
	reg := metrics.NewRegistry()
	inj.Bind(reg)
	for cycle := uint64(0); cycle <= 50; cycle++ {
		inj.SampleLine(0, cycle, 1)
	}
	snap := reg.Snapshot()
	if snap.Counters["fault.injected"] != 51 {
		t.Fatalf("fault.injected = %d, want 51", snap.Counters["fault.injected"])
	}
	if snap.Counters["fault.injected.gl.drop"] != 51 {
		t.Fatalf("per-site counter = %d, want 51", snap.Counters["fault.injected.gl.drop"])
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	src := "seed=7,gl.drop=0.0001,scsma.miscount=0.001,miscount.k=2,watch.recheck=512," +
		"recovery.timeout=4000,recovery.retries=2,recovery.penalty=900,recovery.sticky=3," +
		"@5000-9000:gl.stuckhigh:3,@100:scsma.miscount:0:4"
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 7 || p.Rates[GLDrop] != 1e-4 || p.MiscountK != 2 {
		t.Fatalf("parsed plan wrong: %+v", p)
	}
	if len(p.Events) != 2 || p.Events[0].Site != GLStuckHigh || p.Events[0].Loc != 3 ||
		p.Events[1].K != 4 {
		t.Fatalf("parsed events wrong: %+v", p.Events)
	}
	if p.Recovery.Timeout != 4000 || p.Recovery.MaxRetries != 2 || p.Recovery.StickyAfter != 3 {
		t.Fatalf("parsed recovery wrong: %+v", p.Recovery)
	}
	rt, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", p.String(), err)
	}
	if rt.String() != p.String() {
		t.Fatalf("round trip unstable: %q vs %q", rt.String(), p.String())
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"nope=1",
		"gl.drop=banana",
		"gl.drop=1.5",
		"gl.stucklow=0.1",     // event-only site with a rate
		"@9-3:gl.drop",        // inverted window
		"@x:gl.drop",          // bad cycle
		"@5:unknown.site",     // unknown site
		"@5:gl.drop:1:2:3",    // too many fields
		"recovery.timeout=10", // below the hardware dance length
		"seed",                // not key=value
	}
	for _, s := range bad {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", s)
		}
	}
	p, err := ParsePlan("")
	if err != nil || p != nil {
		t.Fatalf("empty string must yield nil plan, got %v, %v", p, err)
	}
}

func TestRecoveryDefaults(t *testing.T) {
	r := Recovery{}.WithDefaults()
	if r.Timeout != DefaultTimeout || r.MaxRetries != DefaultMaxRetries ||
		r.FallbackPenalty != DefaultFallbackPenalty || r.StickyAfter != DefaultStickyAfter {
		t.Fatalf("defaults not applied: %+v", r)
	}
	r = Recovery{Timeout: 999, StickyAfter: -1}.WithDefaults()
	if r.Timeout != 999 || r.StickyAfter != -1 {
		t.Fatalf("explicit values clobbered: %+v", r)
	}
}

func FuzzParsePlan(f *testing.F) {
	f.Add("seed=7,gl.drop=1e-4")
	f.Add("@5000-9000:gl.stuckhigh:3,recovery.off")
	f.Add("scsma.miscount=0.5,miscount.k=2,@1:scsma.miscount:0:9")
	f.Add("recovery.timeout=70,recovery.retries=1,watch.drop=0.1")
	f.Add(",,,")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			return
		}
		if p == nil {
			if strings.TrimSpace(s) != "" && strings.Trim(strings.TrimSpace(s), ",") != "" &&
				!allBlankTokens(s) {
				t.Fatalf("nil plan from non-empty input %q", s)
			}
			return
		}
		// Accepted plans must validate, compile, and round-trip stably.
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted plan fails Validate: %v (input %q)", err, s)
		}
		if inj := NewInjector(p); inj == nil {
			t.Fatalf("accepted plan compiled to nil injector (input %q)", s)
		}
		canon := p.String()
		rt, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v (input %q)", canon, err, s)
		}
		if rt.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q (input %q)", canon, rt.String(), s)
		}
	})
}

// allBlankTokens reports whether s splits into only empty directives.
func allBlankTokens(s string) bool {
	for _, tok := range strings.Split(s, ",") {
		if strings.TrimSpace(tok) != "" {
			return false
		}
	}
	return true
}
