package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParsePlan parses the -faults flag syntax: a comma-separated list of
// directives. An empty string yields a nil plan (faults disabled).
//
//	seed=N                    hash seed (default 1)
//	<site>=<rate>             per-opportunity rate, e.g. gl.drop=1e-4
//	miscount.k=N              S-CSMA miscount magnitude
//	watch.delay.cycles=N      WatchDelay perturbation
//	watch.recheck=N           spin re-check period for dropped wakeups
//	recovery.off              run the bare protocol unguarded
//	recovery.timeout=N        episode timeout before retry
//	recovery.retries=N        hardware retries before fallback
//	recovery.penalty=N        software-fallback per-core latency
//	recovery.sticky=N         consecutive fallbacks before going sticky
//	@from[-until]:site[:loc[:k]]   explicit event / stuck-at window
//
// Example: "seed=7,gl.drop=1e-4,@5000-9000:gl.stuckhigh:3,recovery.retries=2"
func ParsePlan(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if strings.HasPrefix(tok, "@") {
			ev, err := parseEvent(tok)
			if err != nil {
				return nil, err
			}
			p.Events = append(p.Events, ev)
			continue
		}
		if tok == "recovery.off" {
			p.Recovery.Disabled = true
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("fault: directive %q is not key=value", tok)
		}
		if site, isSite := siteByName(key); isSite {
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: rate for %s: %v", key, err)
			}
			p.Rates[site] = rate
			continue
		}
		// Counted fields (retries, k, sticky) live in ints; cap them at 31
		// bits so huge inputs fail cleanly instead of wrapping negative.
		bits := 64
		switch key {
		case "miscount.k", "recovery.retries", "recovery.sticky":
			bits = 31
		}
		n, err := strconv.ParseUint(val, 10, bits)
		if err != nil {
			return nil, fmt.Errorf("fault: value for %s: %v", key, err)
		}
		switch key {
		case "seed":
			p.Seed = n
		case "miscount.k":
			p.MiscountK = int(n)
		case "watch.delay.cycles":
			p.WatchDelayCycles = n
		case "watch.recheck":
			p.WatchRecheckCycles = n
		case "recovery.timeout":
			p.Recovery.Timeout = n
		case "recovery.retries":
			p.Recovery.MaxRetries = int(n)
		case "recovery.penalty":
			p.Recovery.FallbackPenalty = n
		case "recovery.sticky":
			p.Recovery.StickyAfter = int(n)
		default:
			return nil, fmt.Errorf("fault: unknown directive %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseEvent parses "@from[-until]:site[:loc[:k]]".
func parseEvent(tok string) (Event, error) {
	parts := strings.Split(tok[1:], ":")
	if len(parts) < 2 || len(parts) > 4 {
		return Event{}, fmt.Errorf("fault: event %q is not @from[-until]:site[:loc[:k]]", tok)
	}
	var ev Event
	window := parts[0]
	from, until, ranged := strings.Cut(window, "-")
	f, err := strconv.ParseUint(from, 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("fault: event %q: from cycle: %v", tok, err)
	}
	ev.From, ev.Until = f, f
	if ranged {
		u, err := strconv.ParseUint(until, 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("fault: event %q: until cycle: %v", tok, err)
		}
		ev.Until = u
	}
	site, ok := siteByName(parts[1])
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q: unknown site %q", tok, parts[1])
	}
	ev.Site = site
	ev.Loc = -1
	if len(parts) >= 3 {
		loc, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil || loc < -1 {
			return Event{}, fmt.Errorf("fault: event %q: bad location %q", tok, parts[2])
		}
		ev.Loc = loc
	}
	if len(parts) == 4 {
		k, err := strconv.ParseInt(parts[3], 10, 32)
		if err != nil || k < 0 {
			return Event{}, fmt.Errorf("fault: event %q: bad k %q", tok, parts[3])
		}
		ev.K = int(k)
	}
	return ev, nil
}

// siteByName resolves a plan-syntax site key.
func siteByName(name string) (Site, bool) {
	for s := Site(0); s < NumSites; s++ {
		if siteNames[s] == name {
			return s, true
		}
	}
	return 0, false
}

// String renders the plan back into canonical -faults syntax;
// ParsePlan(p.String()) reproduces an equivalent plan.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var toks []string
	toks = append(toks, fmt.Sprintf("seed=%d", p.Seed))
	var sites []Site
	for s := Site(0); s < NumSites; s++ {
		if p.Rates[s] > 0 {
			sites = append(sites, s)
		}
	}
	sort.Slice(sites, func(i, k int) bool { return sites[i] < sites[k] })
	for _, s := range sites {
		toks = append(toks, fmt.Sprintf("%s=%g", s, p.Rates[s]))
	}
	if p.MiscountK != 0 {
		toks = append(toks, fmt.Sprintf("miscount.k=%d", p.MiscountK))
	}
	if p.WatchDelayCycles != 0 {
		toks = append(toks, fmt.Sprintf("watch.delay.cycles=%d", p.WatchDelayCycles))
	}
	if p.WatchRecheckCycles != 0 {
		toks = append(toks, fmt.Sprintf("watch.recheck=%d", p.WatchRecheckCycles))
	}
	if p.Recovery.Disabled {
		toks = append(toks, "recovery.off")
	}
	if p.Recovery.Timeout != 0 {
		toks = append(toks, fmt.Sprintf("recovery.timeout=%d", p.Recovery.Timeout))
	}
	if p.Recovery.MaxRetries != 0 {
		toks = append(toks, fmt.Sprintf("recovery.retries=%d", p.Recovery.MaxRetries))
	}
	if p.Recovery.FallbackPenalty != 0 {
		toks = append(toks, fmt.Sprintf("recovery.penalty=%d", p.Recovery.FallbackPenalty))
	}
	if p.Recovery.StickyAfter > 0 {
		toks = append(toks, fmt.Sprintf("recovery.sticky=%d", p.Recovery.StickyAfter))
	}
	for _, e := range p.Events {
		tok := fmt.Sprintf("@%d", e.From)
		if e.Until != e.From {
			tok += fmt.Sprintf("-%d", e.Until)
		}
		tok += ":" + e.Site.String()
		if e.Loc >= 0 || e.K > 0 {
			tok += fmt.Sprintf(":%d", e.Loc)
		}
		if e.K > 0 {
			tok += fmt.Sprintf(":%d", e.K)
		}
		toks = append(toks, tok)
	}
	return strings.Join(toks, ",")
}
