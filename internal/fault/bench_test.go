package fault

import "testing"

// BenchmarkFaultHooks_Disabled measures the cost of the injection hooks on
// the hot simulation paths when no faults are configured — the price every
// fault-free run pays. Both shapes must stay in the low single-digit
// nanoseconds: a nil injector (Config.Faults == nil, the default) and an
// armed injector whose plan has no rates or events.
func BenchmarkFaultHooks_Disabled(b *testing.B) {
	bench := func(b *testing.B, j *Injector) {
		b.ReportAllocs()
		var sink int
		var sunk bool
		for i := 0; i < b.N; i++ {
			cycle := uint64(i)
			if j.GLActive() {
				sink += j.SampleLine(3, cycle, 2)
			}
			sunk = j.LinkDown(cycle, 5, 1) || j.Corrupt(cycle, 5, 1) || sunk
			sink += int(j.WatchPerturb(cycle, 7))
		}
		if sink != 0 || sunk {
			b.Fatalf("dormant hooks produced effects: sink=%d sunk=%v", sink, sunk)
		}
	}
	b.Run("nil-injector", func(b *testing.B) {
		bench(b, nil)
	})
	b.Run("empty-plan", func(b *testing.B) {
		bench(b, NewInjector(&Plan{Seed: 1}))
	})
}

// BenchmarkFaultHooks_Enabled is the armed counterpart: every site carries a
// rate, so each hook call pays the full hash-based decision.
func BenchmarkFaultHooks_Enabled(b *testing.B) {
	b.ReportAllocs()
	p := &Plan{Seed: 1}
	for s := Site(0); s < NumSites; s++ {
		if s.eventOnly() {
			continue
		}
		p.Rates[s] = 1e-4
	}
	j := NewInjector(p)
	var sink int
	for i := 0; i < b.N; i++ {
		cycle := uint64(i)
		sink += j.SampleLine(3, cycle, 2)
		if j.LinkDown(cycle, 5, 1) {
			sink++
		}
		if j.Corrupt(cycle, 5, 1) {
			sink++
		}
		sink += int(j.WatchPerturb(cycle, 7))
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}
